package mobilstm_test

import (
	"testing"

	"mobilstm"
)

func TestBenchmarksList(t *testing.T) {
	bs := mobilstm.Benchmarks()
	if len(bs) != 6 {
		t.Fatalf("benchmark count %d", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if b.Hidden <= 0 || b.Layers <= 0 || b.Length <= 0 || b.Classes <= 0 {
			t.Fatalf("bad benchmark %+v", b)
		}
		seen[b.Name] = true
	}
	for _, name := range []string{"IMDB", "MR", "BABI", "SNLI", "PTB", "MT"} {
		if !seen[name] {
			t.Fatalf("missing %s", name)
		}
	}
}

func TestOpenUnknown(t *testing.T) {
	if _, err := mobilstm.Open("bogus", mobilstm.Options{}); err == nil {
		t.Fatal("no error for unknown benchmark")
	}
	if _, err := mobilstm.OpenCustom("bogus", 0, 0, 0, mobilstm.Options{}); err == nil {
		t.Fatal("no error for unknown custom base")
	}
}

func TestPublicAPIFlow(t *testing.T) {
	sys, err := mobilstm.Open("MR", mobilstm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "MR" {
		t.Fatalf("name %q", sys.Name())
	}
	if sys.MTS() < 2 {
		t.Fatalf("MTS %d", sys.MTS())
	}

	base := sys.Evaluate(mobilstm.ModeBaseline, 0)
	if base.Speedup != 1 || base.Accuracy != 1 {
		t.Fatalf("baseline: %+v", base)
	}
	if base.Milliseconds <= 0 || base.DRAMBytes <= 0 {
		t.Fatalf("baseline resources: %+v", base)
	}

	curve := sys.Curve(mobilstm.ModeCombined)
	if len(curve) != 11 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[10].Speedup <= 1 {
		t.Fatalf("max-threshold speedup %v", curve[10].Speedup)
	}

	ao := sys.AO(mobilstm.ModeCombined)
	if ao.Accuracy < 0.98 && ao.Set != 0 {
		t.Fatalf("AO accuracy %v at set %d", ao.Accuracy, ao.Set)
	}
	bpa := sys.BPA(mobilstm.ModeCombined)
	if bpa.Speedup*bpa.Accuracy+1e-9 < ao.Speedup*ao.Accuracy {
		t.Fatalf("BPA (%v) worse than AO (%v) on its own objective",
			bpa.Speedup*bpa.Accuracy, ao.Speedup*ao.Accuracy)
	}

	strict := sys.UO(mobilstm.ModeCombined, 0.9999)
	loose := sys.UO(mobilstm.ModeCombined, 0.5)
	if strict.Set > loose.Set {
		t.Fatalf("UO not monotone in demanded accuracy: %d vs %d", strict.Set, loose.Set)
	}
}

func TestOpenCustomShapes(t *testing.T) {
	sys, err := mobilstm.OpenCustom("MR", 0, 0, 44, mobilstm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Evaluate(mobilstm.ModeBaseline, 0)
	orig, _ := mobilstm.Open("MR", mobilstm.Options{})
	origBase := orig.Evaluate(mobilstm.ModeBaseline, 0)
	// Doubling the length must ~double the baseline latency (it is
	// dominated by per-cell weight re-loads).
	ratio := base.Milliseconds / origBase.Milliseconds
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("2x length latency ratio %v, want ~2", ratio)
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []mobilstm.Mode{
		mobilstm.ModeBaseline, mobilstm.ModeInter, mobilstm.ModeIntra, mobilstm.ModeCombined,
	} {
		if m.String() == "" {
			t.Fatalf("mode %d has no name", m)
		}
	}
}
