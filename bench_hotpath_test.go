// End-to-end benchmarks of the simulator's own float32 hot path: the
// united-gate packed kernels running a full Run per execution mode, at
// the quick-profile PTB shape (the trajectory BENCH_hotpath.json
// records; see `make bench-json`). Unlike bench_test.go — which times
// the *simulated* GPU pipeline — these measure the host-side numerics
// the serving loop actually executes per request.
//
// bytes/op (and the derived MB/s) is the united weight volume streamed
// per Run: every cell streams W_{f,i,c,o} once and every step streams
// U_{f,i,c,o} once, per layer — the paper's §III lower bound on memory
// traffic, so MB/s here is directly comparable across PRs.
package mobilstm_test

import (
	"fmt"
	"sync"
	"testing"

	"mobilstm/internal/gru"
	"mobilstm/internal/intercell"
	"mobilstm/internal/lstm"
	"mobilstm/internal/model"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// hotMTS is the tissue bound used by the inter-cell modes below: the
// quick-profile MTS neighborhood (intercell.FindMTS lands at 4-6 for the
// Table II shapes); a constant keeps the benchmark free of the GPU
// model and bit-stable across platforms.
const hotMTS = 5

var (
	hotOnce sync.Once
	hotInst *model.Instance
	hotPred []intercell.Predictor
)

// hotSetup builds the quick-profile PTB instance shared by every
// hot-path benchmark (and its Eq. 6 predictors, so the inter-cell modes
// run the full predicted-link flow).
func hotSetup(b *testing.B) (*model.Instance, []intercell.Predictor) {
	b.Helper()
	hotOnce.Do(func() {
		bench, ok := model.ByName("PTB")
		if !ok {
			panic("hotpath: PTB benchmark missing")
		}
		hotInst = model.Build(bench, model.Quick())
		hotPred = lstm.CollectPredictors(hotInst.Net, hotInst.Seqs[:2])
	})
	return hotInst, hotPred
}

// hotBytes is the united weight volume one Run streams (see package
// comment).
func hotBytes(n *lstm.Network, length int) int64 {
	var per int64
	for _, l := range n.Layers {
		per += int64(length) * (l.UnitedWBytes() + l.UnitedUBytes())
	}
	return per
}

// hotModes are the four execution modes of the paper, at mid-sweep
// thresholds (aggressive enough that the skip/division paths are
// genuinely exercised).
func hotModes(pred []intercell.Predictor) []struct {
	name string
	opt  lstm.RunOptions
} {
	return []struct {
		name string
		opt  lstm.RunOptions
	}{
		{"baseline", lstm.Baseline()},
		{"inter", lstm.RunOptions{Inter: true, AlphaInter: 0.4, MTS: hotMTS, Predictors: pred}},
		{"intra", lstm.RunOptions{Intra: true, AlphaIntra: 0.1}},
		{"combined", lstm.RunOptions{Inter: true, AlphaInter: 0.4, MTS: hotMTS, Predictors: pred,
			Intra: true, AlphaIntra: 0.1}},
	}
}

// hotChains is the kernel-chain sweep dimension: the canonical SSE2
// chain keeps the unsuffixed benchmark names (so the
// BENCH_hotpath.json trajectory across PRs is uninterrupted) and the
// wide AVX2/FMA chain lands as a /avx2 sub-benchmark next to it.
var hotChains = []struct {
	suffix string
	chain  tensor.KernelChain
}{
	{"", tensor.ChainSSE2},
	{"/avx2", tensor.ChainAVX2},
}

// BenchmarkRun times one end-to-end Network.Run per execution mode on
// the quick-profile PTB shape — the per-request inference cost of the
// serving loop — under both kernel chains.
func BenchmarkRun(b *testing.B) {
	inst, pred := hotSetup(b)
	xs := inst.Seqs[0]
	for _, m := range hotModes(pred) {
		for _, c := range hotChains {
			opt := m.opt
			opt.Chain = c.chain
			b.Run(m.name+c.suffix, func(b *testing.B) {
				b.SetBytes(hotBytes(inst.Net, len(xs)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inst.Net.Run(xs, opt)
				}
			})
		}
	}
}

// BenchmarkRunBatch sweeps the batched forward path over batch sizes
// B ∈ {1, 2, 4, 8, 16}: one RunBatch per op serving B requests, with
// the per-request cost reported as the custom ns/req metric
// (ns/op / B). The sweep quantifies the §II-C server-style weight
// reuse on the host: the united weights stream once per timestep for
// the whole batch, so ns/req must fall as B grows (the acceptance
// bar is B=8 strictly below B=1).
func BenchmarkRunBatch(b *testing.B) {
	inst, _ := hotSetup(b)
	// baseline and intra both take the lockstep batched GEMM path; the
	// inter modes fall back to per-member serial execution (their
	// structure is data-dependent), so batching buys them nothing and
	// they are not swept here.
	modes := []struct {
		name string
		opt  lstm.RunOptions
	}{
		{"baseline", lstm.Baseline()},
		{"intra", lstm.RunOptions{Intra: true, AlphaIntra: 0.1}},
	}
	for _, m := range modes {
		for _, c := range hotChains {
			for _, B := range []int{1, 2, 4, 8, 16} {
				seqs := make([][]tensor.Vector, B)
				var bytes int64
				for i := range seqs {
					seqs[i] = inst.Seqs[i%len(inst.Seqs)]
					bytes += hotBytes(inst.Net, len(seqs[i]))
				}
				opt := m.opt
				opt.Chain = c.chain
				b.Run(fmt.Sprintf("%s%s/B=%d", m.name, c.suffix, B), func(b *testing.B) {
					b.SetBytes(bytes)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						inst.Net.RunBatch(seqs, opt)
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*B), "ns/req")
				})
			}
		}
	}
}

// BenchmarkRunGRU times the GRU counterpart (3h united W, 2h united
// U_{z,r}) at a KWS-like shape.
func BenchmarkRunGRU(b *testing.B) {
	const (
		hidden = 128
		length = 60
		layers = 2
	)
	r := rng.New(0xbeef)
	n := gru.NewNetwork(hidden, hidden, layers, 8)
	n.InitRandom(r.Split(), nil, 0.5)
	gen := r.Split()
	xs := make([]tensor.Vector, length)
	for t := range xs {
		v := tensor.NewVector(hidden)
		for j := range v {
			v[j] = gen.NormF32(0, 1)
		}
		xs[t] = v
	}
	var bytes int64
	for _, l := range n.Layers {
		bytes += int64(length) * (3*int64(l.Hidden)*int64(l.Input)*4 + l.UnitedUBytes())
	}
	modes := []struct {
		name string
		opt  gru.RunOptions
	}{
		{"baseline", gru.Baseline()},
		{"intra", gru.RunOptions{Intra: true, AlphaIntra: 0.1}},
	}
	for _, m := range modes {
		for _, c := range hotChains {
			opt := m.opt
			opt.Chain = c.chain
			b.Run(m.name+c.suffix, func(b *testing.B) {
				b.SetBytes(bytes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n.Run(xs, opt)
				}
			})
		}
	}
	// The GRU batch sweep at the endpoints of the LSTM sweep, enough to
	// track the GRU's GEMV→GEMM win in the trajectory.
	for _, B := range []int{1, 8} {
		seqs := make([][]tensor.Vector, B)
		for i := range seqs {
			seqs[i] = xs
		}
		b.Run(fmt.Sprintf("batch/B=%d", B), func(b *testing.B) {
			b.SetBytes(bytes * int64(B))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.RunBatch(seqs, gru.Baseline())
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*B), "ns/req")
		})
	}
}
