package mobilstm

import (
	"fmt"

	"mobilstm/internal/gpu"
	"mobilstm/internal/gru"
)

// GRUBenchmark describes one of the built-in GRU workloads (§II-B
// extension: the paper's optimizations applied to GRUs).
type GRUBenchmark struct {
	Name    string
	Hidden  int
	Layers  int
	Length  int
	Classes int
}

// GRUBenchmarks lists the built-in GRU workloads.
func GRUBenchmarks() []GRUBenchmark {
	out := make([]GRUBenchmark, 0, 3)
	for _, b := range gru.Zoo() {
		out = append(out, GRUBenchmark{
			Name: b.Name, Hidden: b.Hidden, Layers: b.Layers,
			Length: b.Length, Classes: b.Classes,
		})
	}
	return out
}

// GRUSystem is a GRU benchmark loaded on the simulated platform with the
// paper's optimizations adjusted for the GRU cell: tissue parallelism
// over weak context links, and carry-based Dynamic Row Skip on the
// candidate matrix.
type GRUSystem struct {
	engine *gru.Engine
}

// OpenGRU builds the named GRU benchmark (see GRUBenchmarks) on the
// simulated Tegra X1.
func OpenGRU(benchmark string) (*GRUSystem, error) {
	b, ok := gru.ZooByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("mobilstm: unknown GRU benchmark %q", benchmark)
	}
	return &GRUSystem{engine: gru.NewEngine(b, gru.QuickProfile(), gpu.TegraX1())}, nil
}

// Name returns the benchmark name.
func (s *GRUSystem) Name() string { return s.engine.B.Name }

// MTS returns the platform's maximum tissue size for this GRU benchmark.
func (s *GRUSystem) MTS() int { return s.engine.MTS }

// GRUOutcome is one evaluated GRU operating point.
type GRUOutcome struct {
	Set      int
	Speedup  float64
	Accuracy float64
	// SkipFraction is the share of candidate (U_h) rows carry-skipped.
	SkipFraction float64
	// BreakRate is the fraction of context links cut.
	BreakRate float64
}

// Evaluate measures the combined adjusted optimizations at threshold set
// 0..10.
func (s *GRUSystem) Evaluate(set int) GRUOutcome {
	o := s.engine.Evaluate(set)
	return GRUOutcome{
		Set: o.Set, Speedup: o.Speedup, Accuracy: o.Accuracy,
		SkipFraction: o.SkipFrac, BreakRate: o.BreakRate,
	}
}

// AO returns the accuracy-oriented GRU operating point (loss <= 2%).
func (s *GRUSystem) AO() GRUOutcome {
	best := s.Evaluate(0)
	for set := 1; set <= 10; set++ {
		if o := s.Evaluate(set); o.Accuracy >= 0.98 {
			best = o
		}
	}
	return best
}
