// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section. Each benchmark regenerates its artifact via
// internal/experiments and prints the rows/series the paper reports
// (first iteration only), plus key scalars as benchmark metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The numeric pipeline defaults to the quick profile; set MOBILSTM_FULL=1
// to evaluate at the exact Table II shapes.
package mobilstm_test

import (
	"fmt"
	"sync"
	"testing"

	"mobilstm/internal/experiments"
	"mobilstm/internal/gpu"
	"mobilstm/internal/intercell"
	"mobilstm/internal/kernels"
	"mobilstm/internal/sched"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite shares one experiment suite (and its outcome cache) across
// all benchmarks in the run.
func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.DefaultConfig())
	})
	return suite
}

func BenchmarkTableI_Platform(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.TableI()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTableII_Benchmarks(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.TableII()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig4_StallBreakdown(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.Fig4()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig5_RedundantLoads(b *testing.B) {
	s := benchSuite()
	var factor float64
	for i := 0; i < b.N; i++ {
		factor = s.RedundantLoadFactor("PTB")
		if i == 0 {
			b.Log("\n" + s.Fig5().String())
		}
	}
	b.ReportMetric(factor, "ptb-blowup-x")
}

func BenchmarkFig6_BandwidthUtilization(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.Fig6()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig9_TissueSize(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		perf, util, mts := s.Fig9(10)
		if i == 0 {
			b.Log("\n" + perf.String() + "\n" + util.String() + fmt.Sprintf("\nmeasured MTS: %v", mts))
			b.ReportMetric(float64(mts["PTB"]), "ptb-mts")
		}
	}
}

func BenchmarkFig14_SpeedupEnergy(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, t := s.Fig14()
		if i == 0 {
			b.Log("\n" + t.String())
			avg := experiments.AverageOf(rows)
			b.ReportMetric(avg.Inter, "inter-x")
			b.ReportMetric(avg.Intra, "intra-x")
			b.ReportMetric(avg.Combined, "combined-x")
			b.ReportMetric(avg.CombinedSaving*100, "combined-E%")
		}
	}
}

func BenchmarkFig15_PerLayer(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.Fig15()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig16_CompressionSchemes(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, t := s.Fig16()
		if i == 0 {
			b.Log("\n" + t.String())
			avg := rows[len(rows)-1]
			b.ReportMetric(avg.HWSpeedup, "hw-drs-x")
			b.ReportMetric(avg.SWSpeedup, "sw-drs-x")
			b.ReportMetric(avg.PruneSpeedup, "zero-prune-x")
		}
	}
}

func BenchmarkFig17_ModelCapacity(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		fig := s.Fig17()
		if i == 0 {
			b.Log("\n" + fig.String())
		}
	}
}

func BenchmarkFig18_UserStudy(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.Fig18()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkFig19_TradeoffSweep(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		speed, acc, marks := s.Fig19()
		if i == 0 {
			b.Log("\n" + speed.String() + "\n" + acc.String() + "\n" + marks.String())
		}
	}
}

func BenchmarkOverheads(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.Overheads()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkKernelSgemv measures the simulator's kernel evaluation
// throughput itself (microbenchmark of the substrate, not a paper
// figure).
func BenchmarkKernelSgemv(b *testing.B) {
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	kb := kernels.NewBuilder(cfg)
	spec := kb.SgemvU(650)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run([]gpu.KernelSpec{spec})
	}
}

// BenchmarkTissueAlignment measures the alignment scheduler on a
// PTB-sized layer.
func BenchmarkTissueAlignment(b *testing.B) {
	subs := intercell.Sublayers(200, []int{7, 30, 31, 60, 95, 120, 121, 122, 170})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		intercell.AlignTissues(subs, 5)
	}
}

// BenchmarkPlanLowering measures kernel-sequence generation for the
// combined flow at PTB shape.
func BenchmarkPlanLowering(b *testing.B) {
	p := sched.Plan{
		Cfg: gpu.TegraX1(), Mode: sched.Combined,
		Hidden: 650, Input: 650, Length: 200, Layers: 3, MTS: 5,
		Stats: []sched.LayerStats{{BreakRate: 0.25, SkipFrac: 0.5},
			{BreakRate: 0.1, SkipFrac: 0.5}, {BreakRate: 0.05, SkipFrac: 0.5}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Kernels(p)
	}
}
