module mobilstm

go 1.23
