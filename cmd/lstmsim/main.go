// Command lstmsim runs one Table II benchmark on the simulated mobile GPU
// under a chosen execution mode and threshold set, and prints latency,
// traffic, energy and accuracy. It is the quickest way to poke at the
// system:
//
//	lstmsim -bench PTB -mode combined -set 7
//	lstmsim -bench MR -mode baseline -kernels
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mobilstm/internal/core"
	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/report"
	"mobilstm/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lstmsim: ")
	bench := flag.String("bench", "PTB", "benchmark name (see -list)")
	mode := flag.String("mode", "combined", "baseline | inter | intra | combined | intra-sw | zero-prune")
	set := flag.Int("set", 7, "threshold set 0..10")
	list := flag.Bool("list", false, "list benchmarks and exit")
	showKernels := flag.Bool("kernels", false, "print the per-kernel-group breakdown")
	showTimeline := flag.Bool("timeline", false, "print the kernel execution timeline")
	full := flag.Bool("full", false, "use full Table II shapes for the numeric pipeline")
	savePlan := flag.String("save-plan", "", "write the profiled execution plan to this JSON file")
	loadPlan := flag.String("load-plan", "", "replay a previously saved plan instead of profiling")
	flag.Parse()

	if *loadPlan != "" {
		replayPlan(*loadPlan, *showKernels)
		return
	}

	if *list {
		t := report.NewTable("Benchmarks", "Name", "Task", "Hidden", "Layers", "Length")
		for _, b := range model.Zoo() {
			t.AddRow(b.Name, string(b.Task), b.Hidden, b.Layers, b.Length)
		}
		fmt.Println(t)
		return
	}

	b, ok := model.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q (use -list)", *bench)
	}
	m, err := parseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	prof := model.Quick()
	if *full {
		prof = model.Full()
	}

	e := core.NewEngine(b, prof, gpu.TegraX1())
	var o *core.Outcome
	if m == sched.ZeroPrune {
		o = e.EvaluateZeroPrune(0.315)
	} else {
		ai, aa := e.Thresholds(*set)
		if m == sched.Baseline {
			o = e.Baseline()
		} else {
			o = e.Evaluate(m, ai, aa)
		}
	}

	fmt.Printf("benchmark   %s (hidden %d, %d layers, %d cells)\n", b.Name, b.Hidden, b.Layers, b.Length)
	fmt.Printf("platform    %s\n", gpu.TegraX1().Name)
	fmt.Printf("mode        %v, threshold set %d, MTS %d\n", m, *set, e.MTS)
	fmt.Printf("latency     %.2f ms\n", o.Result.Seconds*1e3)
	fmt.Printf("speedup     %.2fx vs baseline\n", o.Speedup)
	fmt.Printf("energy      %.2f mJ (saving %.1f%%)\n", o.Energy.Total()*1e3, o.EnergySaving*100)
	fmt.Printf("DRAM        %.1f MB moved\n", o.Result.DRAMBytes/(1<<20))
	fmt.Printf("accuracy    %.1f%% (relative to exact flow)\n", o.Accuracy*100)

	if *savePlan != "" {
		p := sched.Plan{
			Cfg: gpu.TegraX1(), Mode: m,
			Hidden: b.Hidden, Input: b.Hidden, Length: b.Length, Layers: b.Layers,
			MTS: e.MTS, Stats: o.Stats, PruneDensity: o.PruneDensity,
			Seed: b.Seed ^ 0xfeed,
		}
		if p.Stats == nil {
			p.Stats = make([]sched.LayerStats, b.Layers)
		}
		f, err := os.Create(*savePlan)
		if err != nil {
			log.Fatal(err)
		}
		if err := sched.SavePlan(f, p); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan        written to %s\n", *savePlan)
	}

	if *showKernels {
		t := report.NewTable("\nPer-kernel groups", "Kernel", "Launches", "Cycles", "Share", "DRAM MB")
		for _, g := range o.Result.Groups() {
			t.AddRowf(g.Name, fmt.Sprintf("%d", g.Launches),
				fmt.Sprintf("%.0f", g.Cycles),
				report.Pct(g.Cycles/o.Result.Cycles),
				fmt.Sprintf("%.1f", g.DRAMBytes/(1<<20)))
		}
		fmt.Println(t)
	}

	if *showTimeline {
		// Re-simulate with per-launch results for the timeline view.
		p := sched.Plan{
			Cfg: gpu.TegraX1(), Mode: m,
			Hidden: b.Hidden, Input: b.Hidden, Length: b.Length, Layers: b.Layers,
			MTS: e.MTS, Stats: o.Stats, PruneDensity: o.PruneDensity,
			Seed: b.Seed ^ 0xfeed,
		}
		if p.Stats == nil {
			p.Stats = make([]sched.LayerStats, b.Layers)
		}
		sim := gpu.NewSimulator(p.Cfg)
		_, launches := sim.RunResults(sched.Kernels(p))
		tl := report.NewTimeline("\nkernel execution timeline")
		for _, kr := range launches {
			tl.Add(kr.Spec.Name, kr.Cycles)
		}
		fmt.Println(tl)
	}
}

// replayPlan loads a saved execution plan and simulates it — the
// DeepBench-style replay half of the paper's methodology (Fig. 13).
func replayPlan(path string, showKernels bool) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	p, err := sched.LoadPlan(f, gpu.TegraX1())
	if err != nil {
		log.Fatal(err)
	}
	sim := gpu.NewSimulator(p.Cfg)
	res := sim.Run(sched.Kernels(p))
	fmt.Printf("replayed    %s (%v, H=%d, %d layers, %d cells)\n",
		path, p.Mode, p.Hidden, p.Layers, p.Length)
	fmt.Printf("latency     %.2f ms\n", res.Seconds*1e3)
	fmt.Printf("DRAM        %.1f MB moved\n", res.DRAMBytes/(1<<20))
	if showKernels {
		t := report.NewTable("\nPer-kernel groups", "Kernel", "Launches", "Cycles", "Share")
		for _, g := range res.Groups() {
			t.AddRowf(g.Name, fmt.Sprintf("%d", g.Launches),
				fmt.Sprintf("%.0f", g.Cycles), report.Pct(g.Cycles/res.Cycles))
		}
		fmt.Println(t)
	}
}

func parseMode(s string) (sched.Mode, error) {
	switch strings.ToLower(s) {
	case "baseline":
		return sched.Baseline, nil
	case "inter", "inter-cell":
		return sched.Inter, nil
	case "intra", "intra-cell":
		return sched.Intra, nil
	case "combined":
		return sched.Combined, nil
	case "intra-sw", "sw":
		return sched.IntraSW, nil
	case "zero-prune", "prune":
		return sched.ZeroPrune, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}
