// Command sweep is a development and calibration tool: it sweeps over all six benchmarks,
// printing speedup/energy/accuracy per threshold set for calibration.
package main

import (
	"fmt"
	"os"
	"time"

	"mobilstm/internal/core"
	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/sched"
)

func main() {
	cfg := gpu.TegraX1()
	names := []string{"IMDB", "MR", "BABI", "SNLI", "PTB", "MT"}
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}
	for _, name := range names {
		bm, ok := model.ByName(name)
		if !ok {
			fmt.Println("unknown benchmark", name)
			continue
		}
		start := time.Now()
		e := core.NewEngine(bm, model.Quick(), cfg)
		fmt.Printf("\n== %s == MTS=%d alphaInterMax=%.1f (%.2f of maxRel) build %v\n",
			name, e.MTS, e.AlphaInterMax, e.AlphaInterMax/(16*float64(e.Inst.Hidden)), time.Since(start))
		for _, set := range []int{2, 4, 5, 6, 7, 8, 10} {
			ai, aa := e.Thresholds(set)
			for _, mode := range []sched.Mode{sched.Inter, sched.Intra, sched.Combined} {
				o := e.Evaluate(mode, ai, aa)
				fmt.Printf("set %2d %-10v speedup %.2f energy %5.1f%% acc %.3f  break=%v skip=%v\n",
					set, mode, o.Speedup, o.EnergySaving*100, o.Accuracy,
					fmtStats(o.Stats, true), fmtStats(o.Stats, false))
			}
		}
		fmt.Println("elapsed:", time.Since(start))
	}
}

func fmtStats(st []sched.LayerStats, breaks bool) string {
	s := "["
	for i, l := range st {
		if i > 0 {
			s += " "
		}
		if breaks {
			s += fmt.Sprintf("%.2f", l.BreakRate)
		} else {
			s += fmt.Sprintf("%.2f", l.SkipFrac)
		}
	}
	return s + "]"
}
