// Command tradeoff sweeps the 11 threshold sets for one benchmark and
// mode, printing the speedup / energy / accuracy curve with the AO and
// BPA operating points marked (§VI-C, Fig. 19).
package main

import (
	"flag"
	"fmt"
	"log"

	"mobilstm/internal/core"
	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/report"
	"mobilstm/internal/sched"
	"mobilstm/internal/tradeoff"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tradeoff: ")
	bench := flag.String("bench", "BABI", "benchmark name")
	modeName := flag.String("mode", "combined", "inter | intra | combined")
	full := flag.Bool("full", false, "use full Table II shapes for the numeric pipeline")
	flag.Parse()

	b, ok := model.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	var mode sched.Mode
	switch *modeName {
	case "inter":
		mode = sched.Inter
	case "intra":
		mode = sched.Intra
	case "combined":
		mode = sched.Combined
	default:
		log.Fatalf("unknown mode %q", *modeName)
	}
	prof := model.Quick()
	if *full {
		prof = model.Full()
	}

	e := core.NewEngine(b, prof, gpu.TegraX1())
	curve := make(tradeoff.Curve, core.ThresholdSets)
	t := report.NewTable(
		fmt.Sprintf("%s / %v: performance-accuracy trade-off", b.Name, mode),
		"set", "alpha_inter", "alpha_intra", "speedup", "energy saving", "accuracy")
	for set := 0; set < core.ThresholdSets; set++ {
		o := e.EvaluateSet(mode, set)
		ai, aa := e.Thresholds(set)
		curve[set] = tradeoff.Point{Set: set, Speedup: o.Speedup, EnergySaving: o.EnergySaving, Accuracy: o.Accuracy}
		t.AddRowf(fmt.Sprintf("%d", set),
			fmt.Sprintf("%.1f", ai), fmt.Sprintf("%.3f", aa),
			report.X(o.Speedup), report.Pct(o.EnergySaving), fmt.Sprintf("%.3f", o.Accuracy))
	}
	fmt.Println(t)
	ao, bpa := curve.AO(), curve.BPA()
	fmt.Printf("AO  (accuracy-oriented, loss <= 2%%): set %d — %s at %.1f%% accuracy\n",
		ao, report.X(curve.At(ao).Speedup), curve.At(ao).Accuracy*100)
	fmt.Printf("BPA (max speedup x accuracy):        set %d — %s at %.1f%% accuracy\n",
		bpa, report.X(curve.At(bpa).Speedup), curve.At(bpa).Accuracy*100)
}
