// Command mobilstm-serve runs the concurrent serving loop against a
// synthetic open-loop workload: requests for several benchmarks arrive
// at exponential inter-arrival times (one independent Poisson stream
// per benchmark — the interactive-IPA regime of §II-C, where requests
// do not wait for each other), flow through the batching window and
// the worker pool, and the run ends with a per-benchmark table of
// throughput, p50/p95 latency, batch occupancy, and accuracy at the
// serving operating point.
//
// With -shards N the workload runs against the fleet tier instead: N
// heterogeneous simulated device classes behind rendezvous affinity
// routing, sharing one warm-engine cache. -fleetcheck runs the
// cold-vs-warm validation protocol: a cold fleet (no pre-warming, the
// first windows absorb measured engine-build charges) followed by a
// pre-warmed fleet on identical traffic, asserting that warm p99 stays
// below cold p99 and that the cache holds the fleet to one cold build
// per benchmark.
//
// Accuracy-bearing evaluation defaults to the quick profile; set
// MOBILSTM_FULL=1 for the exact Table II shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"mobilstm/internal/rng"
	"mobilstm/internal/serve"
	"mobilstm/internal/tensor"
)

func main() {
	benches := flag.String("benches", "MR,BABI", "comma-separated benchmarks to serve")
	requests := flag.Int("requests", 40, "open-loop requests per benchmark")
	interMs := flag.Float64("interarrival", 3, "mean inter-arrival time per stream, ms")
	workers := flag.Int("workers", 0, "worker-pool size (default: serve.DefaultConfig)")
	window := flag.Duration("window", -1, "batching window (default: serve.DefaultConfig)")
	maxBatch := flag.Int("maxbatch", 0, "batch-size cap (default: serve.DefaultConfig)")
	set := flag.Int("set", serve.AutoSet, "threshold set (default: per-benchmark AO point)")
	chain := flag.String("chain", "auto", "kernel chain: auto, generic, sse2 or avx2")
	seed := flag.Uint64("seed", 1, "arrival-process seed")
	shards := flag.Int("shards", 0, "fleet size; 0 serves on a single device")
	prewarm := flag.Bool("prewarm", true, "fleet mode: propagate warmed engines to peer shards")
	hotQueue := flag.Int("hotqueue", 8, "fleet mode: rebalance threshold on per-benchmark queue depth")
	fleetCheck := flag.Bool("fleetcheck", false, "fleet mode: run the cold-then-prewarmed validation protocol")
	flag.Parse()

	cfg := serve.DefaultConfig()
	cfg.Set = *set
	kc, ok := tensor.ParseKernelChain(*chain)
	if !ok {
		fmt.Fprintf(os.Stderr, "mobilstm-serve: unknown -chain %q (want auto, generic, sse2 or avx2)\n", *chain)
		os.Exit(2)
	}
	cfg.Chain = kc
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *window >= 0 {
		cfg.BatchWindow = *window
	}
	if *maxBatch > 0 {
		cfg.MaxBatch = *maxBatch
	}
	if os.Getenv("MOBILSTM_FULL") == "" {
		// Quick profile: capped shapes, full pipeline.
		cfg.Profile.Name = "quick"
		cfg.Profile.HiddenCap = 128
		cfg.Profile.LengthCap = 32
		cfg.Profile.AccSamples = 30
		cfg.Profile.PredictorSamples = 5
		cfg.Profile.StatSamples = 2
	}

	names := strings.Split(*benches, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	if *shards > 0 {
		fcfg := serve.FleetConfig{
			Base:     cfg,
			Shards:   *shards,
			PreWarm:  *prewarm,
			HotQueue: *hotQueue,
		}
		if *fleetCheck {
			os.Exit(fleetCheckRun(fcfg, names, *requests, *interMs, *seed))
		}
		os.Exit(fleetRun(fcfg, names, *requests, *interMs, *seed))
	}

	s := serve.New(cfg)
	for _, bench := range names {
		fmt.Printf("warming %s (engine build + threshold calibration)...\n", bench)
		if err := s.Warm(bench); err != nil {
			fmt.Fprintf(os.Stderr, "warm %s: %v\n", bench, err)
			os.Exit(1)
		}
	}
	start := time.Now()
	fmt.Printf("serving %s: %d requests/stream, %.1f ms mean inter-arrival, "+
		"%d workers, window %v, max batch %d\n\n",
		strings.Join(names, "+"), *requests, *interMs, cfg.Workers, cfg.BatchWindow, cfg.MaxBatch)

	errCount := runStreams(names, *requests, *interMs, *seed, s.Submit)
	s.Close()

	fmt.Println(s.Stats().Report())
	fmt.Printf("total wall time %.1fs, %d submit errors\n",
		time.Since(start).Seconds(), errCount)
	if errCount > 0 {
		os.Exit(1)
	}
}

// runStreams drives one open-loop Poisson stream per benchmark against
// submit: the next request's arrival never waits for the previous
// response (each Submit blocks in its own goroutine, collected by the
// WaitGroup). Returns the submit-error count, printing the first error.
func runStreams(names []string, requests int, interMs float64, seed uint64,
	submit func(context.Context, serve.Request) (*serve.Response, error)) int {
	var wg sync.WaitGroup
	var errMu sync.Mutex
	errCount := 0
	for si, bench := range names {
		wg.Add(1)
		go func(bench string, r *rng.RNG) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := submit(context.Background(), serve.Request{Bench: bench}); err != nil {
						errMu.Lock()
						if errCount == 0 {
							fmt.Fprintf(os.Stderr, "%s: %v\n", bench, err)
						}
						errCount++
						errMu.Unlock()
					}
				}()
				// Exponential inter-arrival via inverse transform.
				wait := -interMs * logUnit(r)
				time.Sleep(time.Duration(wait * float64(time.Millisecond)))
			}
		}(bench, rng.New(seed+uint64(si)*0x9e37))
	}
	wg.Wait()
	return errCount
}

// fleetRun is the plain fleet serving mode: warm (optionally
// propagating), serve the open-loop workload through the router, print
// the per-shard fleet table plus each shard's benchmark table.
func fleetRun(fcfg serve.FleetConfig, names []string, requests int, interMs float64, seed uint64) int {
	f := serve.NewFleet(fcfg)
	for _, bench := range names {
		fmt.Printf("warming %s across the fleet (prewarm=%v)...\n", bench, fcfg.PreWarm)
		if err := f.Warm(bench); err != nil {
			fmt.Fprintf(os.Stderr, "warm %s: %v\n", bench, err)
			return 1
		}
	}
	start := time.Now()
	fmt.Printf("fleet serving %s: %d shards, %d requests/stream, %.1f ms mean inter-arrival\n\n",
		strings.Join(names, "+"), fcfg.Shards, requests, interMs)
	errCount := runStreams(names, requests, interMs, seed, f.Submit)
	f.Close()
	snap := f.Stats()
	fmt.Println(snap.Report())
	fmt.Printf("total wall time %.1fs, %d submit errors, %d cold builds, %d installs\n",
		time.Since(start).Seconds(), errCount, snap.ColdBuilds, snap.Installs)
	if errCount > 0 {
		return 1
	}
	return 0
}

// fleetCheckRun is the cold-vs-warm validation protocol behind the CI
// fleet smoke: phase 1 serves a fully cold fleet (no pre-warming, so
// first windows absorb the measured engine-build charges), phase 2 a
// pre-warmed fleet on identical traffic. The run fails unless the
// shared cache held each phase to one cold build per benchmark, phase 2
// served no cold windows at all, and warm p99 stayed below cold p99.
func fleetCheckRun(fcfg serve.FleetConfig, names []string, requests int, interMs float64, seed uint64) int {
	fail := 0
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			fail = 1
		}
		fmt.Printf("%s: %s\n", status, fmt.Sprintf(format, args...))
	}

	fmt.Printf("fleet check phase 1: cold fleet (%d shards, no pre-warm), traffic pays the builds\n", fcfg.Shards)
	coldCfg := fcfg
	coldCfg.PreWarm = false
	cold := serve.NewFleet(coldCfg)
	coldErrs := runStreams(names, requests, interMs, seed, cold.Submit)
	cold.Close()
	coldSnap := cold.Stats()
	fmt.Println(coldSnap.Report())

	coldP99, coldServed := fleetColdP99(coldSnap)
	check(coldErrs == 0, "cold phase submit errors: %d", coldErrs)
	check(coldServed > 0, "cold phase served %d cold-charged responses", coldServed)
	check(coldSnap.ColdBuilds == int64(len(names)),
		"cold phase cold builds: %d, want one per benchmark (%d)", coldSnap.ColdBuilds, len(names))

	fmt.Printf("\nfleet check phase 2: pre-warmed fleet, identical traffic\n")
	warmCfg := fcfg
	warmCfg.PreWarm = true
	warm := serve.NewFleet(warmCfg)
	warmErrs := 0
	for _, bench := range names {
		if err := warm.Warm(bench); err != nil {
			fmt.Fprintf(os.Stderr, "warm %s: %v\n", bench, err)
			warmErrs++
		}
	}
	warmErrs += runStreams(names, requests, interMs, seed, warm.Submit)
	warm.Close()
	warmSnap := warm.Stats()
	fmt.Println(warmSnap.Report())

	warmP99, warmColdServed := fleetWarmP99(warmSnap)
	check(warmErrs == 0, "warm phase submit errors: %d", warmErrs)
	check(warmSnap.ColdBuilds == int64(len(names)),
		"warm phase cold builds: %d, want one per benchmark (%d)", warmSnap.ColdBuilds, len(names))
	check(warmSnap.Installs == int64(len(names)*(fcfg.Shards-1)),
		"warm phase installs: %d, want every peer pre-warmed (%d)", warmSnap.Installs, len(names)*(fcfg.Shards-1))
	check(warmColdServed == 0, "warm phase cold-charged responses: %d", warmColdServed)
	check(warmP99 > 0 && warmP99 < coldP99,
		"warm p99 %.2f ms < cold p99 %.2f ms", warmP99, coldP99)
	return fail
}

// fleetColdP99 returns the worst per-shard cold-start p99 and the total
// cold-charged responses across the fleet.
func fleetColdP99(snap serve.FleetSnapshot) (p99 float64, served int64) {
	for _, ss := range snap.Shards {
		for _, b := range ss.Benches {
			served += b.ColdServed
		}
		if ss.ColdP99Ms > p99 {
			p99 = ss.ColdP99Ms
		}
	}
	return p99, served
}

// fleetWarmP99 returns the worst per-shard warm p99 and the total
// cold-charged responses (which a pre-warmed fleet must not have).
func fleetWarmP99(snap serve.FleetSnapshot) (p99 float64, coldServed int64) {
	for _, ss := range snap.Shards {
		for _, b := range ss.Benches {
			coldServed += b.ColdServed
		}
		if ss.WarmP99Ms > p99 {
			p99 = ss.WarmP99Ms
		}
	}
	return p99, coldServed
}

// logUnit returns ln(u) for u uniform in (0, 1].
func logUnit(r *rng.RNG) float64 {
	u := r.Float64()
	if u <= 0 {
		u = 1
	}
	return math.Log(u)
}
