// Command mobilstm-serve runs the concurrent serving loop against a
// synthetic open-loop workload: requests for several benchmarks arrive
// at exponential inter-arrival times (one independent Poisson stream
// per benchmark — the interactive-IPA regime of §II-C, where requests
// do not wait for each other), flow through the batching window and
// the worker pool, and the run ends with a per-benchmark table of
// throughput, p50/p95 latency, batch occupancy, and accuracy at the
// serving operating point.
//
// Accuracy-bearing evaluation defaults to the quick profile; set
// MOBILSTM_FULL=1 for the exact Table II shapes.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"mobilstm/internal/rng"
	"mobilstm/internal/serve"
)

func main() {
	benches := flag.String("benches", "MR,BABI", "comma-separated benchmarks to serve")
	requests := flag.Int("requests", 40, "open-loop requests per benchmark")
	interMs := flag.Float64("interarrival", 3, "mean inter-arrival time per stream, ms")
	workers := flag.Int("workers", 0, "worker-pool size (default: serve.DefaultConfig)")
	window := flag.Duration("window", -1, "batching window (default: serve.DefaultConfig)")
	maxBatch := flag.Int("maxbatch", 0, "batch-size cap (default: serve.DefaultConfig)")
	set := flag.Int("set", serve.AutoSet, "threshold set (default: per-benchmark AO point)")
	seed := flag.Uint64("seed", 1, "arrival-process seed")
	flag.Parse()

	cfg := serve.DefaultConfig()
	cfg.Set = *set
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *window >= 0 {
		cfg.BatchWindow = *window
	}
	if *maxBatch > 0 {
		cfg.MaxBatch = *maxBatch
	}
	if os.Getenv("MOBILSTM_FULL") == "" {
		// Quick profile: capped shapes, full pipeline.
		cfg.Profile.Name = "quick"
		cfg.Profile.HiddenCap = 128
		cfg.Profile.LengthCap = 32
		cfg.Profile.AccSamples = 30
		cfg.Profile.PredictorSamples = 5
		cfg.Profile.StatSamples = 2
	}

	names := strings.Split(*benches, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	s := serve.New(cfg)
	for _, bench := range names {
		fmt.Printf("warming %s (engine build + threshold calibration)...\n", bench)
		if err := s.Warm(bench); err != nil {
			fmt.Fprintf(os.Stderr, "warm %s: %v\n", bench, err)
			os.Exit(1)
		}
	}
	start := time.Now()
	fmt.Printf("serving %s: %d requests/stream, %.1f ms mean inter-arrival, "+
		"%d workers, window %v, max batch %d\n\n",
		strings.Join(names, "+"), *requests, *interMs, cfg.Workers, cfg.BatchWindow, cfg.MaxBatch)

	// One open-loop Poisson stream per benchmark: the next request's
	// arrival never waits for the previous response (each Submit blocks
	// in its own goroutine, collected by the WaitGroup).
	var wg sync.WaitGroup
	var errMu sync.Mutex
	errCount := 0
	for si, bench := range names {
		wg.Add(1)
		go func(bench string, r *rng.RNG) {
			defer wg.Done()
			for i := 0; i < *requests; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := s.Submit(context.Background(), serve.Request{Bench: bench}); err != nil {
						errMu.Lock()
						if errCount == 0 {
							fmt.Fprintf(os.Stderr, "%s: %v\n", bench, err)
						}
						errCount++
						errMu.Unlock()
					}
				}()
				// Exponential inter-arrival via inverse transform.
				wait := -*interMs * logUnit(r)
				time.Sleep(time.Duration(wait * float64(time.Millisecond)))
			}
		}(bench, rng.New(*seed+uint64(si)*0x9e37))
	}
	wg.Wait()
	s.Close()

	fmt.Println(s.Stats().Report())
	fmt.Printf("total wall time %.1fs, %d submit errors\n",
		time.Since(start).Seconds(), errCount)
	if errCount > 0 {
		os.Exit(1)
	}
}

// logUnit returns ln(u) for u uniform in (0, 1].
func logUnit(r *rng.RNG) float64 {
	u := r.Float64()
	if u <= 0 {
		u = 1
	}
	return math.Log(u)
}
