// Command replay emulates the paper's user-study replay program (§VI-E):
// it replays pre-produced query outcomes for one application under a
// chosen scheme, showing each response's latency and whether the
// approximated output matched the exact one, and ends with the
// satisfaction score a configurable participant would assign.
//
//	replay -bench BABI -scheme AO -replays 25
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mobilstm/internal/core"
	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/rng"
	"mobilstm/internal/sched"
	"mobilstm/internal/tradeoff"
	"mobilstm/internal/userstudy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replay: ")
	bench := flag.String("bench", "BABI", "benchmark name")
	scheme := flag.String("scheme", "AO", "baseline | AO | BPA | UO")
	replays := flag.Int("replays", 25, "number of replays")
	prefAcc := flag.Float64("pref", 0.98, "UO: the user's preferred accuracy")
	seed := flag.Uint64("seed", 1, "replay seed")
	flag.Parse()

	b, ok := model.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	e := core.NewEngine(b, model.Quick(), gpu.TegraX1())
	curve := make(tradeoff.Curve, core.ThresholdSets)
	for set := 0; set < core.ThresholdSets; set++ {
		o := e.EvaluateSet(sched.Combined, set)
		curve[set] = tradeoff.Point{Set: set, Speedup: o.Speedup, EnergySaving: o.EnergySaving, Accuracy: o.Accuracy}
	}

	var set int
	switch strings.ToUpper(*scheme) {
	case "BASELINE":
		set = 0
	case "AO":
		set = curve.AO()
	case "BPA":
		set = curve.BPA()
	case "UO":
		set = curve.LargestWithAccuracy(*prefAcc)
	default:
		log.Fatalf("unknown scheme %q", *scheme)
	}
	pt := curve.At(set)
	base := curve.At(0)
	baseMs := e.Baseline().Result.Seconds * 1e3
	delayMs := baseMs / pt.Speedup

	fmt.Printf("%s under scheme %s (threshold set %d): %.2f ms per response, %.1f%% accuracy\n\n",
		b.Name, strings.ToUpper(*scheme), set, delayMs, pt.Accuracy*100)

	r := rng.New(*seed)
	correct := 0
	for i := 1; i <= *replays; i++ {
		ok := r.Float64() < pt.Accuracy
		mark := "ok"
		if !ok {
			mark = "MISMATCH vs exact output"
		}
		if ok {
			correct++
		}
		fmt.Printf("replay %3d: %7.2f ms   %s\n", i, delayMs, mark)
	}
	fmt.Printf("\n%d/%d responses matched the exact flow\n", correct, *replays)

	p := userstudy.Participant{DelayWeight: 1.2, ErrWeight: 25, JND: 0.02, PrefAccuracy: *prefAcc}
	score := p.Expected(delayMs/baseMs, pt.Accuracy)
	if score < 1 {
		score = 1
	}
	if score > 5 {
		score = 5
	}
	fmt.Printf("a typical participant would rate this %.1f / 5 (baseline reference: %.1f)\n",
		score, p.Expected(1, base.Accuracy))
}
