// Command experiments regenerates every table and figure of the paper's
// evaluation section (§VI) and prints them as text. Select a subset with
// -only (comma-separated ids: table1,table2,fig4,fig5,fig6,fig9,fig14,
// fig15,fig16,fig17,fig18,fig19,overheads).
//
// Accuracy-bearing experiments default to the quick profile; set
// MOBILSTM_FULL=1 for the exact Table II shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mobilstm/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	maxT := flag.Int("maxt", 10, "largest tissue size for the Fig. 9 sweep")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	s := experiments.NewSuite(experiments.DefaultConfig())
	start := time.Now()

	if sel("table1") {
		fmt.Println(s.TableI())
	}
	if sel("table2") {
		fmt.Println(s.TableII())
	}
	if sel("fig4") {
		fmt.Println(s.Fig4())
	}
	if sel("fig5") {
		fmt.Println(s.Fig5())
	}
	if sel("fig6") {
		fmt.Println(s.Fig6())
	}
	if sel("fig9") {
		perf, util, mts := s.Fig9(*maxT)
		fmt.Println(perf)
		fmt.Println(util)
		fmt.Println("measured MTS per benchmark:", mts)
		fmt.Println()
	}
	if sel("fig14") {
		_, t := s.Fig14()
		fmt.Println(t)
	}
	if sel("fig15") {
		fmt.Println(s.Fig15())
	}
	if sel("fig16") {
		_, t := s.Fig16()
		fmt.Println(t)
	}
	if sel("fig17") {
		fmt.Println(s.Fig17())
	}
	if sel("fig18") {
		fmt.Println(s.Fig18())
	}
	if sel("fig19") {
		speed, acc, marks := s.Fig19()
		fmt.Println(speed)
		fmt.Println(acc)
		fmt.Println(marks)
	}
	if sel("overheads") {
		fmt.Println(s.Overheads())
	}

	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
