// Command mobilstm-lint runs the project's static-analysis suite
// (internal/analysis) over the module: determinism, precision,
// panic-policy, lock-discipline, threshold-constant and concurrency
// contract checks (racecontract, detfloat, goroutinejoin,
// kernelcontracts) that encode the paper-reproduction's correctness
// contract. See docs/STATIC_ANALYSIS.md for the analyzer catalogue and
// the lint:ignore suppression syntax.
//
// Usage:
//
//	mobilstm-lint [flags] [./... | dir ...]
//
// With no arguments (or "./...") the whole module containing the
// current directory is analyzed. Explicit directory arguments restrict
// the report to packages under those directories.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mobilstm/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mobilstm-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array")
		enable  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzers to skip")
		list    = fs.Bool("list", false, "list registered analyzers and exit")
		tests   = fs.Bool("tests", true, "also analyze _test.go packages (test-scoped analyzers only)")
		stale   = fs.Bool("stale", true, "report lint:ignore directives that no longer suppress any finding")
		sumOut  = fs.String("summaries", "", "write the interprocedural function summaries to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "mobilstm-lint:", err)
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "mobilstm-lint:", err)
		return 2
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load()
	if err != nil {
		fmt.Fprintln(stderr, "mobilstm-lint:", err)
		return 2
	}
	pkgs, err = filterPackages(pkgs, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "mobilstm-lint:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "mobilstm-lint: type error in %s: %v\n", pkg.ImportPath, terr)
		}
	}

	cache := analysis.NewSummaryCache()
	findings := analysis.AnalyzeOptions(pkgs, analyzers, analysis.Options{Stale: *stale, Cache: cache})
	if *sumOut != "" {
		// The cache is warm from the analysis run, so this renders the
		// already-computed summaries instead of recomputing them.
		data, err := analysis.DumpSummaries(pkgs, cache)
		if err != nil {
			fmt.Fprintln(stderr, "mobilstm-lint:", err)
			return 2
		}
		if err := os.WriteFile(*sumOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "mobilstm-lint:", err)
			return 2
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "mobilstm-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, relativize(f, loader.Root))
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "mobilstm-lint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable to the registry.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	chosen := analysis.All()
	if enable != "" {
		chosen = nil
		for _, name := range splitList(enable) {
			a := analysis.Lookup(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			chosen = append(chosen, a)
		}
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range splitList(disable) {
			if analysis.Lookup(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			skip[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range chosen {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		chosen = kept
	}
	if len(chosen) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return chosen, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// filterPackages restricts to packages under the given directory
// arguments. "./..." (or no argument) keeps everything.
func filterPackages(pkgs []*analysis.Package, args []string) ([]*analysis.Package, error) {
	var roots []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "." {
			return pkgs, nil
		}
		abs, err := filepath.Abs(strings.TrimSuffix(arg, "/..."))
		if err != nil {
			return nil, err
		}
		roots = append(roots, abs)
	}
	if len(roots) == 0 {
		return pkgs, nil
	}
	var out []*analysis.Package
	for _, pkg := range pkgs {
		for _, root := range roots {
			if pkg.Dir == root || strings.HasPrefix(pkg.Dir, root+string(filepath.Separator)) {
				out = append(out, pkg)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", args)
	}
	return out, nil
}

// relativize shortens finding paths for terminal output.
func relativize(f analysis.Finding, root string) string {
	s := f.String()
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = strings.Replace(s, f.Pos.Filename, rel, 1)
	}
	return s
}
