package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilstm/internal/analysis"
)

// capture invokes run with file-backed stdout/stderr and returns the
// exit code and both streams.
func capture(t *testing.T, args []string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	stdout, err := os.Create(filepath.Join(dir, "stdout"))
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := os.Create(filepath.Join(dir, "stderr"))
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, stdout, stderr)
	stdout.Close()
	stderr.Close()
	read := func(p string) string {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return code, read(filepath.Join(dir, "stdout")), read(filepath.Join(dir, "stderr"))
}

// inModule materializes a one-package module and chdirs into it, so
// run's NewLoader(".") resolves the fixture instead of this repo.
func inModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module lintfix\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
	return dir
}

// badSrc trips detfloat on line 7 and nothing else.
const badSrc = `package lintfix

// Sum reduces serially.
func Sum(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x
	}
	return s
}
`

const cleanSrc = `package lintfix

// Scale is element-wise: no reduction, nothing to flag.
func Scale(dst []float32, a float32) {
	for i := range dst {
		dst[i] *= a
	}
}
`

func TestListAnalyzers(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"detfloat", "racecontract", "goroutinejoin", "kernelcontracts", "shapecheck"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := capture(t, []string{"-enable", "nosuch"}); code != 2 {
		t.Errorf("unknown -enable analyzer: exit = %d, want 2", code)
	}
	if code, _, _ := capture(t, []string{"-disable", "nosuch"}); code != 2 {
		t.Errorf("unknown -disable analyzer: exit = %d, want 2", code)
	}
	if code, _, _ := capture(t, []string{"-bogusflag"}); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
}

func TestFindingsExitAndText(t *testing.T) {
	inModule(t, map[string]string{"bad.go": badSrc})
	code, out, _ := capture(t, nil)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on findings\n%s", code, out)
	}
	if !strings.Contains(out, "bad.go:7") || !strings.Contains(out, "[detfloat]") {
		t.Errorf("text output should locate the finding:\n%s", out)
	}
	if !strings.Contains(out, "1 finding(s)") {
		t.Errorf("text output should count findings:\n%s", out)
	}
}

func TestCleanExit(t *testing.T) {
	inModule(t, map[string]string{"ok.go": cleanSrc})
	if code, out, errOut := capture(t, nil); code != 0 {
		t.Fatalf("exit = %d, want 0 on clean module\n%s%s", code, out, errOut)
	}
}

// TestJSONGolden decodes the -json stream back into findings and pins
// the shape the CI artifact consumers rely on.
func TestJSONGolden(t *testing.T) {
	dir := inModule(t, map[string]string{"bad.go": badSrc})
	code, out, _ := capture(t, []string{"-json"})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "detfloat" || f.Pos.Line != 7 {
		t.Errorf("finding = %+v, want detfloat at line 7", f)
	}
	resolved, err := filepath.EvalSymlinks(dir)
	if err != nil {
		resolved = dir
	}
	if got, _ := filepath.EvalSymlinks(f.Pos.Filename); filepath.Dir(got) != resolved {
		t.Errorf("finding file %s not under module %s", f.Pos.Filename, resolved)
	}
	if !strings.Contains(f.Message, "serial-equivalence") {
		t.Errorf("message lost its contract wording: %s", f.Message)
	}
}

// TestJSONCleanIsEmptyArray: consumers index the artifact, so a clean
// run must emit [] rather than null.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	inModule(t, map[string]string{"ok.go": cleanSrc})
	code, out, _ := capture(t, []string{"-json"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", strings.TrimSpace(out))
	}
}

func TestSummariesFlag(t *testing.T) {
	dir := inModule(t, map[string]string{"ok.go": cleanSrc})
	sumPath := filepath.Join(dir, "sums.json")
	if code, _, errOut := capture(t, []string{"-summaries", sumPath}); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, errOut)
	}
	data, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatalf("-summaries wrote nothing: %v", err)
	}
	var anyJSON any
	if err := json.Unmarshal(data, &anyJSON); err != nil {
		t.Fatalf("summaries file is not JSON: %v", err)
	}
	if !strings.Contains(string(data), "Scale") {
		t.Errorf("summaries should cover the module's functions:\n%s", data)
	}
}

// TestStaleFlag: an ignore directive that suppresses nothing is itself
// a finding by default, and -stale=false turns the check off.
func TestStaleFlag(t *testing.T) {
	inModule(t, map[string]string{"ok.go": `package lintfix

func ok() int {
	//lint:ignore detfloat nothing here needs suppressing
	return 1
}
`})
	code, out, _ := capture(t, nil)
	if code != 1 || !strings.Contains(out, "stale") {
		t.Errorf("stale directive should be reported by default: exit=%d\n%s", code, out)
	}
	if code, out, _ := capture(t, []string{"-stale=false"}); code != 0 {
		t.Errorf("-stale=false should silence the stale check: exit=%d\n%s", code, out)
	}
}

func TestDisableSilencesAnalyzer(t *testing.T) {
	inModule(t, map[string]string{"bad.go": badSrc})
	if code, out, _ := capture(t, []string{"-disable", "detfloat"}); code != 0 {
		t.Errorf("-disable detfloat should leave the module clean: exit=%d\n%s", code, out)
	}
	if code, _, _ := capture(t, []string{"-enable", "detfloat"}); code != 1 {
		t.Errorf("-enable detfloat should still flag it: exit=%d", code)
	}
}
