// Command userstudy runs the simulated 30-participant study (§VI-E) for
// one or all benchmarks, printing the Fig. 18 satisfaction scores per
// scheme.
package main

import (
	"flag"
	"fmt"
	"log"

	"mobilstm/internal/core"
	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/report"
	"mobilstm/internal/rng"
	"mobilstm/internal/sched"
	"mobilstm/internal/tradeoff"
	"mobilstm/internal/userstudy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("userstudy: ")
	bench := flag.String("bench", "", "benchmark name (default: all)")
	participants := flag.Int("participants", 30, "panel size")
	replays := flag.Int("replays", 100, "replays per participant per application")
	seed := flag.Uint64("seed", 0x57ed, "panel seed")
	flag.Parse()

	names := []string{}
	if *bench != "" {
		names = append(names, *bench)
	} else {
		for _, b := range model.Zoo() {
			names = append(names, b.Name)
		}
	}

	r := rng.New(*seed)
	panel := userstudy.Panel(*participants, r.Split())
	t := report.NewTable("Fig. 18: user satisfaction (1-5)",
		"Benchmark", "baseline", "AO", "BPA", "UO", "mean UO set")
	for _, name := range names {
		b, ok := model.ByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %q", name)
		}
		e := core.NewEngine(b, model.Quick(), gpu.TegraX1())
		curve := make(tradeoff.Curve, core.ThresholdSets)
		for set := 0; set < core.ThresholdSets; set++ {
			o := e.EvaluateSet(sched.Combined, set)
			curve[set] = tradeoff.Point{Set: set, Speedup: o.Speedup, EnergySaving: o.EnergySaving, Accuracy: o.Accuracy}
		}
		res := userstudy.Run(name, curve, panel, *replays, r.Split())
		t.AddRowf(name,
			fmt.Sprintf("%.2f", res.Scores[userstudy.SchemeBaseline]),
			fmt.Sprintf("%.2f", res.Scores[userstudy.SchemeAO]),
			fmt.Sprintf("%.2f", res.Scores[userstudy.SchemeBPA]),
			fmt.Sprintf("%.2f", res.Scores[userstudy.SchemeUO]),
			fmt.Sprintf("%.1f", res.ChosenUOSet))
	}
	fmt.Println(t)
}
