// Command validate cross-checks the fast analytic GPU timing model
// against the cycle-level warp simulator on the paper's kernel shapes —
// the reproduction's substitute for validating against the Jetson board.
package main

import (
	"fmt"

	"mobilstm/internal/gpu"
	"mobilstm/internal/gpu/cyclesim"
	"mobilstm/internal/kernels"
	"mobilstm/internal/model"
	"mobilstm/internal/report"
)

func main() {
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	kb := kernels.NewBuilder(cfg)

	t := report.NewTable("Analytic roofline model vs cycle-level warp simulator",
		"Kernel", "analytic cyc", "cycle-level cyc", "delta")
	add := func(name string, spec gpu.KernelSpec) {
		a := sim.Run([]gpu.KernelSpec{spec}).Cycles
		c := float64(cyclesim.SimulateSpec(cfg, spec).Cycles)
		t.AddRowf(name, fmt.Sprintf("%.0f", a), fmt.Sprintf("%.0f", c),
			fmt.Sprintf("%+.1f%%", (c-a)/a*100))
	}

	for _, b := range model.Zoo() {
		add(fmt.Sprintf("sgemv_u %s (H=%d)", b.Name, b.Hidden), kb.SgemvU(b.Hidden))
	}
	for _, tt := range []int{2, 4, 5} {
		spec, _ := kb.SgemmTissue(512, tt)
		add(fmt.Sprintf("sgemm_tissue H=512 T=%d", tt), spec)
	}
	add("sgemv_uo H=650", kb.SgemvUo(650))
	add("ufic hw-skip 50% H=650", kb.SgemvUfic(650, 3*650/2, kernels.DRSHardware))
	add("ufic sw-skip 50% H=650", kb.SgemvUfic(650, 3*650/2, kernels.DRSSoftware))
	add("csr prune d=0.315 H=650", kb.PrunedSgemv(650, 0.315))
	fmt.Println(t)
}
