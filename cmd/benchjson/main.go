// Command benchjson turns `go test -bench` text output into a stable
// JSON document (see `make bench-json`, which writes BENCH_hotpath.json
// at the repo root). Each benchmark line contributes ns/op plus the
// optional -benchmem and SetBytes columns (B/op, allocs/op, MB/s) and
// the batch sweep's custom per-request metric (ns/req, reported by
// BenchmarkRunBatch via b.ReportMetric).
//
// When the input holds several samples of the same benchmark (a
// `-count` > 1 run), the emitted entry is the minimum-ns/op sample and
// `samples` records how many were seen. Minimum-over-counts is the
// noise protocol used throughout EXPERIMENTS.md: on a shared, noisy
// machine the fastest sample is the closest estimate of the code's
// cost, while means smear scheduler interference into the trajectory.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > bench.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mobilstm/internal/tensor"
)

// result is one benchmark after sample folding.
type result struct {
	Name        string   `json:"name"`
	Pkg         string   `json:"pkg,omitempty"`
	Procs       int      `json:"procs,omitempty"`
	Runs        int      `json:"runs"`
	Samples     int      `json:"samples"`
	NsPerOp     float64  `json:"ns_per_op"`
	NsPerReq    float64  `json:"ns_per_req,omitempty"`
	MBPerS      float64  `json:"mb_per_s,omitempty"`
	BytesPerOp  float64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

type document struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// KernelChain is the kernel chain this process would dispatch by
	// default (the MOBILSTM_KERNEL_CHAIN-resolved process default) and
	// CPUFeatures the probed SIMD feature set — so a trajectory of
	// BENCH_hotpath.json files records which chain and hardware produced
	// each point. Benchmarks that force a chain per sub-benchmark (the
	// hotpath chain sweep) encode it in the benchmark name instead.
	KernelChain string    `json:"kernel_chain,omitempty"`
	CPUFeatures string    `json:"cpu_features,omitempty"`
	Benchmarks  []*result `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	stampEnv(doc)
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}

// stampEnv records the kernel-dispatch environment the benchmarks ran
// under: the process-default chain and the probed CPU feature set.
func stampEnv(doc *document) {
	doc.KernelChain = tensor.ActiveKernelChain().String()
	doc.CPUFeatures = tensor.CPU().String()
}

func parse(sc *bufio.Scanner) (*document, error) {
	doc := &document{}
	// Insertion-ordered fold: byName finds the slot, order keeps the
	// output in first-appearance order so diffs stay readable.
	byName := map[string]*result{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			r.Pkg = pkg
			key := pkg + "." + r.Name
			if prev, ok := byName[key]; ok {
				prev.Samples++
				if r.NsPerOp < prev.NsPerOp {
					samples := prev.Samples
					*prev = *r
					prev.Samples = samples
				}
			} else {
				byName[key] = r
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, sc.Err()
}

// parseLine decodes one benchmark result line, e.g.
//
//	BenchmarkRun/baseline-8  130  8650000 ns/op  123 B/op  20 allocs/op
//
// The name's trailing -N is the GOMAXPROCS suffix the testing package
// appends; it is split into Procs so names stay comparable across
// machines.
func parseLine(line string) (*result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("want at least name, runs and one value/unit pair")
	}
	r := &result{Samples: 1}
	r.Name = fields[0]
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("runs column: %w", err)
	}
	r.Runs = runs
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "ns/req":
			// The batch sweep's per-request cost: one RunBatch op serves
			// B requests, so ns/req = ns/op / B.
			r.NsPerReq = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			allocs := v
			r.AllocsPerOp = &allocs
		}
	}
	if !sawNs {
		return nil, fmt.Errorf("no ns/op column")
	}
	return r, nil
}
