package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseLineBatchSweep(t *testing.T) {
	r, err := parseLine("BenchmarkRunBatch/combined/B=8-8  50  8650000 ns/op  1081250 ns/req  1234 B/op  20 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "BenchmarkRunBatch/combined/B=8" || r.Procs != 8 {
		t.Fatalf("name/procs: %q/%d", r.Name, r.Procs)
	}
	if r.NsPerOp != 8650000 || r.NsPerReq != 1081250 {
		t.Fatalf("ns/op %v, ns/req %v", r.NsPerOp, r.NsPerReq)
	}
	if r.BytesPerOp != 1234 || r.AllocsPerOp == nil || *r.AllocsPerOp != 20 {
		t.Fatalf("benchmem columns: %v %v", r.BytesPerOp, r.AllocsPerOp)
	}
}

func TestParseFoldsMinNsWithItsMetrics(t *testing.T) {
	// Sample folding is minimum-over-ns/op, and the custom ns/req metric
	// must travel with the winning sample.
	in := `goos: linux
pkg: mobilstm
BenchmarkRunBatch/baseline/B=4-8  100  4000000 ns/op  1000000 ns/req
BenchmarkRunBatch/baseline/B=4-8  100  3600000 ns/op  900000 ns/req
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("%d entries, want 1", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Samples != 2 || b.NsPerOp != 3600000 || b.NsPerReq != 900000 {
		t.Fatalf("folded entry: samples=%d ns/op=%v ns/req=%v", b.Samples, b.NsPerOp, b.NsPerReq)
	}
}

func TestStampEnvRecordsChainAndFeatures(t *testing.T) {
	// The emitted document carries the kernel-dispatch environment: the
	// process-default chain name and the probed CPU feature string.
	doc := &document{}
	stampEnv(doc)
	switch doc.KernelChain {
	case "generic", "sse2", "avx2":
	default:
		t.Fatalf("kernel_chain = %q, want a concrete chain name", doc.KernelChain)
	}
	if doc.CPUFeatures == "" {
		t.Fatal("cpu_features is empty")
	}
}
