package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"mobilstm/internal/gpu"
)

// Plan serialization: the file interface between the numeric profiling
// stage and the platform replay stage — the role the paper's exported
// breakpoint/trivial-row information plays between PyTorch and DeepBench
// (Fig. 13). A saved plan replays bit-identically.

// planFile is the JSON schema; Mode is stored by name for stability.
type planFile struct {
	Version      int          `json:"version"`
	Mode         string       `json:"mode"`
	Hidden       int          `json:"hidden"`
	Input        int          `json:"input"`
	Length       int          `json:"length"`
	Layers       int          `json:"layers"`
	MTS          int          `json:"mts,omitempty"`
	Stats        []LayerStats `json:"stats,omitempty"`
	PruneDensity float64      `json:"prune_density,omitempty"`
	Seed         uint64       `json:"seed"`
	Platform     string       `json:"platform"`
}

// SavePlan writes the plan as JSON (excluding the platform config, which
// is recorded by name only — plans are replayed against a Config the
// loader supplies).
func SavePlan(w io.Writer, p Plan) error {
	if err := p.validate(); err != nil {
		return err
	}
	f := planFile{
		Version: 1,
		Mode:    p.Mode.String(),
		Hidden:  p.Hidden, Input: p.Input, Length: p.Length, Layers: p.Layers,
		MTS: p.MTS, Stats: p.Stats, PruneDensity: p.PruneDensity,
		Seed: p.Seed, Platform: p.Cfg.Name,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// LoadPlan reads a plan saved by SavePlan; cfg supplies the platform to
// replay against (the stored platform name is advisory).
func LoadPlan(r io.Reader, cfg gpu.Config) (Plan, error) {
	var f planFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return Plan{}, fmt.Errorf("sched: decoding plan: %w", err)
	}
	if f.Version != 1 {
		return Plan{}, fmt.Errorf("sched: unsupported plan version %d", f.Version)
	}
	mode, err := modeByName(f.Mode)
	if err != nil {
		return Plan{}, err
	}
	p := Plan{
		Cfg:    cfg,
		Mode:   mode,
		Hidden: f.Hidden, Input: f.Input, Length: f.Length, Layers: f.Layers,
		MTS: f.MTS, Stats: f.Stats, PruneDensity: f.PruneDensity, Seed: f.Seed,
	}
	if err := p.validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func modeByName(name string) (Mode, error) {
	for _, m := range []Mode{Baseline, Inter, Intra, Combined, IntraSW, ZeroPrune} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown mode %q", name)
}
