package sched

import (
	"bytes"
	"strings"
	"testing"

	"mobilstm/internal/gpu"
)

func TestPlanRoundTrip(t *testing.T) {
	p := plan(Combined)
	var buf bytes.Buffer
	if err := SavePlan(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlan(&buf, gpu.TegraX1())
	if err != nil {
		t.Fatal(err)
	}
	// A loaded plan must lower to the identical kernel sequence — the
	// bit-identical replay guarantee of the profiling/replay interface.
	a := Kernels(p)
	b := Kernels(got)
	if len(a) != len(b) {
		t.Fatalf("kernel counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kernel %d differs after round trip", i)
		}
	}
}

func TestPlanJSONReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := SavePlan(&buf, plan(ZeroPrune)); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"mode": "zero-pruning"`, `"hidden": 512`, `"prune_density": 0.315`} {
		if !strings.Contains(s, want) {
			t.Fatalf("serialized plan missing %q:\n%s", want, s)
		}
	}
}

func TestLoadPlanRejectsGarbage(t *testing.T) {
	if _, err := LoadPlan(strings.NewReader("{"), gpu.TegraX1()); err == nil {
		t.Fatal("accepted truncated JSON")
	}
	if _, err := LoadPlan(strings.NewReader(`{"version":9}`), gpu.TegraX1()); err == nil {
		t.Fatal("accepted bad version")
	}
	if _, err := LoadPlan(strings.NewReader(`{"version":1,"mode":"nope"}`), gpu.TegraX1()); err == nil {
		t.Fatal("accepted unknown mode")
	}
	if _, err := LoadPlan(strings.NewReader(
		`{"version":1,"mode":"baseline","hidden":0,"input":1,"length":1,"layers":1}`),
		gpu.TegraX1()); err == nil {
		t.Fatal("accepted invalid shape")
	}
}

func TestSavePlanRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := SavePlan(&buf, Plan{Cfg: gpu.TegraX1(), Mode: Baseline}); err == nil {
		t.Fatal("saved invalid plan")
	}
}
