package sched

import (
	"strings"
	"testing"

	"mobilstm/internal/gpu"
	"mobilstm/internal/kernels"
)

func plan(mode Mode) Plan {
	p := Plan{
		Cfg:    gpu.TegraX1(),
		Mode:   mode,
		Hidden: 512, Input: 512, Length: 40, Layers: 2,
		MTS:  5,
		Seed: 7,
	}
	switch mode {
	case Inter, Combined, Intra, IntraSW:
		p.Stats = []LayerStats{
			{BreakRate: 0.3, SkipFrac: 0.5},
			{BreakRate: 0.2, SkipFrac: 0.4},
		}
	case ZeroPrune:
		p.PruneDensity = 0.315
	}
	return p
}

func TestBaselineKernelSequence(t *testing.T) {
	ks := Kernels(plan(Baseline))
	// Per layer: 1 Sgemm + Length x (Sgemv + EW).
	want := 2 * (1 + 40*2)
	if len(ks) != want {
		t.Fatalf("kernel count %d, want %d", len(ks), want)
	}
	if ks[0].Name != kernels.NameSgemmWx {
		t.Fatalf("first kernel %q", ks[0].Name)
	}
	if ks[1].Name != kernels.NameSgemvU {
		t.Fatalf("second kernel %q", ks[1].Name)
	}
}

func TestBaselineSgemvDominates(t *testing.T) {
	// The §III measurement: Sgemv over 90% of execution time.
	sim := gpu.NewSimulator(gpu.TegraX1())
	res := sim.Run(Kernels(plan(Baseline)))
	if share := res.CycleShareOf(kernels.NameSgemvU); share < 0.85 {
		t.Fatalf("Sgemv share %v, want > 0.85", share)
	}
}

func TestInterLoadsWeightsPerTissue(t *testing.T) {
	sim := gpu.NewSimulator(gpu.TegraX1())
	base := sim.Run(Kernels(plan(Baseline)))
	inter := sim.Run(Kernels(plan(Inter)))
	// Tissue execution must reduce total DRAM traffic substantially.
	if inter.DRAMBytes > 0.7*base.DRAMBytes {
		t.Fatalf("inter DRAM %v vs base %v — insufficient reuse", inter.DRAMBytes, base.DRAMBytes)
	}
	if inter.Cycles >= base.Cycles {
		t.Fatal("inter not faster than baseline")
	}
	// Overhead kernels present.
	if inter.Group(kernels.NameRelevance) == nil || inter.Group(kernels.NamePredict) == nil {
		t.Fatal("missing inter-cell overhead kernels")
	}
}

func TestIntraFlowStructure(t *testing.T) {
	ks := Kernels(plan(Intra))
	// Per layer: Sgemm + Length x (SgemvUo, EW, DRS, SgemvUfic, EW).
	want := 2 * (1 + 40*5)
	if len(ks) != want {
		t.Fatalf("kernel count %d, want %d", len(ks), want)
	}
	names := map[string]bool{}
	for _, k := range ks {
		names[k.Name] = true
	}
	for _, n := range []string{kernels.NameSgemvUo, kernels.NameDRS, kernels.NameSgemvUfic} {
		if !names[n] {
			t.Fatalf("missing kernel %q", n)
		}
	}
}

func TestModeOrdering(t *testing.T) {
	// The Fig. 14/16 ordering: combined < inter < intra < baseline <
	// zero-prune in cycles; software DRS between baseline and hardware
	// intra.
	sim := gpu.NewSimulator(gpu.TegraX1())
	cycles := map[Mode]float64{}
	for _, m := range []Mode{Baseline, Inter, Intra, Combined, IntraSW, ZeroPrune} {
		cycles[m] = sim.Run(Kernels(plan(m))).Cycles
	}
	if !(cycles[Combined] < cycles[Inter] && cycles[Inter] < cycles[Intra] &&
		cycles[Intra] < cycles[Baseline]) {
		t.Fatalf("optimization ordering violated: %+v", cycles)
	}
	if cycles[ZeroPrune] <= cycles[Baseline] {
		t.Fatalf("zero-pruning should be slower than baseline: %v vs %v",
			cycles[ZeroPrune], cycles[Baseline])
	}
	if !(cycles[IntraSW] < cycles[Baseline]*1.05 && cycles[IntraSW] > cycles[Intra]) {
		t.Fatalf("software DRS should sit between hardware DRS and baseline: %+v", cycles)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Plan{
		{Cfg: gpu.TegraX1(), Mode: Baseline},                                 // zero shape
		func() Plan { p := plan(Inter); p.MTS = 0; return p }(),              // no MTS
		func() Plan { p := plan(Intra); p.Stats = nil; return p }(),          // no stats
		func() Plan { p := plan(ZeroPrune); p.PruneDensity = 0; return p }(), // no density
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			Kernels(p)
		}()
	}
}

func TestDeterministicSynthesis(t *testing.T) {
	a := Kernels(plan(Inter))
	b := Kernels(plan(Inter))
	if len(a) != len(b) {
		t.Fatal("synthesis not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kernel %d differs", i)
		}
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{Baseline, Inter, Intra, Combined, IntraSW, ZeroPrune} {
		if strings.HasPrefix(m.String(), "mode(") {
			t.Fatalf("mode %d unnamed", int(m))
		}
	}
	if Mode(99).String() != "mode(99)" {
		t.Fatal("unknown mode string")
	}
}

func TestTissueSizesRespectMTS(t *testing.T) {
	p := plan(Inter)
	ks := Kernels(p)
	for _, k := range ks {
		if k.Name == kernels.NameSgemmT {
			// Shared traffic encodes rows*h*t*4; t <= MTS means traffic
			// <= 4h*h*MTS*4.
			maxShared := float64(4*p.Hidden*p.Hidden*p.MTS) * 4 * 1.5 // reconfig margin
			if k.SharedBytes > maxShared {
				t.Fatalf("tissue kernel exceeds MTS traffic: %v > %v", k.SharedBytes, maxShared)
			}
		}
	}
}

func TestCombinedSkipsReduceTraffic(t *testing.T) {
	sim := gpu.NewSimulator(gpu.TegraX1())
	noSkip := plan(Combined)
	noSkip.Stats = []LayerStats{{BreakRate: 0.3}, {BreakRate: 0.2}}
	withSkip := plan(Combined)
	a := sim.Run(Kernels(noSkip))
	b := sim.Run(Kernels(withSkip))
	if b.DRAMBytes >= a.DRAMBytes {
		t.Fatal("combined skip did not reduce DRAM traffic")
	}
}
