package sched

import (
	"testing"

	"mobilstm/internal/gpu"
)

func wfPlan(cfg gpu.Config, budget int64) WavefrontPlan {
	return WavefrontPlan{
		Cfg: cfg, Hidden: 650, Input: 650, Length: 200, Layers: 3,
		ResidentBudgetBytes: budget,
	}
}

func TestWavefrontStepCount(t *testing.T) {
	r := Wavefront(wfPlan(TeslaM40(), 0))
	if r.Steps != 200+3-1 {
		t.Fatalf("steps %d", r.Steps)
	}
}

func TestActiveLayers(t *testing.T) {
	// 3 layers, 4 cells: step 0 has 1, step 2 has 3, step 5 has 1.
	cases := []struct{ s, want int }{{0, 1}, {1, 2}, {2, 3}, {3, 3}, {4, 2}, {5, 1}}
	for _, c := range cases {
		if got := activeLayers(c.s, 4, 3); got != c.want {
			t.Fatalf("step %d: %d active, want %d", c.s, got, c.want)
		}
	}
}

func TestResidentWeightsRemoveDRAMPressure(t *testing.T) {
	cfg := TeslaM40()
	none := Wavefront(wfPlan(cfg, 0))
	all := Wavefront(wfPlan(cfg, 64<<20))
	if all.ResidentLayers != 3 {
		t.Fatalf("resident layers %d", all.ResidentLayers)
	}
	if all.Cycles >= none.Cycles {
		t.Fatalf("resident weights did not help: %v vs %v", all.Cycles, none.Cycles)
	}
}

func TestResidentBudgetClamps(t *testing.T) {
	if r := Wavefront(wfPlan(TeslaM40(), -5)); r.ResidentLayers != 0 {
		t.Fatal("negative budget not clamped")
	}
}

// The §II-C contrast: the server GPU's layer pipelining plus resident
// weights beats the mobile layer-sequential baseline by a wide margin —
// which is exactly why the paper's mobile-side optimizations are needed.
func TestServerVsMobileContrast(t *testing.T) {
	mobile := gpu.NewSimulator(gpu.TegraX1()).Run(Kernels(Plan{
		Cfg: gpu.TegraX1(), Mode: Baseline,
		Hidden: 650, Input: 650, Length: 200, Layers: 3,
	}))
	server := Wavefront(wfPlan(TeslaM40(), 16<<20))
	if server.Seconds >= mobile.Seconds/3 {
		t.Fatalf("server not clearly faster: %v vs %v", server.Seconds, mobile.Seconds)
	}
	// And the mobile GPU could not have gone resident: 3 layers of PTB
	// weights are ~19 MB against 256 KB of L2.
	if u := int64(16 * 650 * 650 * 3); u < gpu.TegraX1().L2Bytes {
		t.Fatal("test premise broken")
	}
}

func TestWavefrontPanicsOnBadPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Wavefront(WavefrontPlan{Cfg: TeslaM40()})
}
