// Package sched lowers an LSTM execution plan to the GPU kernel sequence
// the paper's flows launch, replaying the structural decisions measured by
// the numeric pipeline (breakpoints, tissue layout, skip rates) on the
// platform model — the same division of labor as the paper's
// PyTorch-produces / DeepBench-replays methodology (Fig. 13).
package sched

import (
	"fmt"

	"mobilstm/internal/gpu"
	"mobilstm/internal/intercell"
	"mobilstm/internal/kernels"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// Mode selects the execution flow.
type Mode int

const (
	// Baseline is the state-of-the-art cuDNN-style flow (Algorithm 1).
	Baseline Mode = iota
	// Inter applies only the inter-cell tissue optimization (§IV).
	Inter
	// Intra applies only hardware Dynamic Row Skip (§V, Algorithm 3).
	Intra
	// Combined applies both (the paper's "overall system").
	Combined
	// IntraSW is DRS without the CRM — the pure-software comparison of
	// Fig. 16.
	IntraSW
	// ZeroPrune is the element-granularity weight-pruning baseline [31].
	ZeroPrune
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case Inter:
		return "inter-cell"
	case Intra:
		return "intra-cell"
	case Combined:
		return "combined"
	case IntraSW:
		return "intra-cell-sw"
	case ZeroPrune:
		return "zero-pruning"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// LayerStats carries the structural statistics of one layer measured by
// the numeric pipeline under given thresholds.
type LayerStats struct {
	// BreakRate is the probability that a context link falls below
	// alpha_inter (breaks per link).
	BreakRate float64
	// SkipFrac is the mean fraction of hidden rows skipped per execution
	// unit (cell, or tissue intersection in combined mode).
	SkipFrac float64
}

// Plan is a fully-specified execution to lower.
type Plan struct {
	Cfg  gpu.Config
	Mode Mode
	// Full Table II shapes.
	Hidden, Input, Length, Layers int
	// MTS bounds tissue sizes (Inter/Combined).
	MTS int
	// Stats holds per-layer structural statistics (Inter/Intra/Combined);
	// len must equal Layers for those modes.
	Stats []LayerStats
	// PruneDensity is the surviving element fraction (ZeroPrune).
	PruneDensity float64
	// Seed drives the synthesis of per-layer breakpoint positions from
	// BreakRate.
	Seed uint64
}

// Kernels lowers the plan to its kernel launch sequence. The sequence is
// also the wall-clock order: LSTM layers execute sequentially on mobile
// GPUs (§II-C).
func Kernels(p Plan) []gpu.KernelSpec {
	if err := p.validate(); err != nil {
		tensor.Panicf("sched: invalid plan: %v", err)
	}
	b := kernels.NewBuilder(p.Cfg)
	r := rng.New(p.Seed ^ 0x9d5c)
	var out []gpu.KernelSpec

	for layer := 0; layer < p.Layers; layer++ {
		in := p.Hidden
		if layer == 0 {
			in = p.Input
		}
		out = append(out, b.SgemmWx(p.Hidden, in, p.Length))

		var st LayerStats
		if len(p.Stats) > 0 {
			st = p.Stats[layer]
		}
		switch p.Mode {
		case Baseline:
			for t := 0; t < p.Length; t++ {
				out = append(out, b.SgemvU(p.Hidden), b.LstmEW(p.Hidden, 1))
			}
		case ZeroPrune:
			for t := 0; t < p.Length; t++ {
				out = append(out, b.PrunedSgemv(p.Hidden, p.PruneDensity), b.LstmEW(p.Hidden, 1))
			}
		case Intra, IntraSW:
			mode := kernels.DRSHardware
			if p.Mode == IntraSW {
				mode = kernels.DRSSoftware
			}
			skipRows := int(st.SkipFrac * float64(3*p.Hidden))
			trivial := skipRows / 3
			for t := 0; t < p.Length; t++ {
				out = append(out,
					b.SgemvUo(p.Hidden),
					b.LstmEWPartial(p.Hidden, 1, 1),
					b.DRS(p.Hidden, trivial),
					b.SgemvUfic(p.Hidden, skipRows, mode),
					b.LstmEWPartial(p.Hidden, 1, 3),
				)
			}
		case Inter, Combined:
			tissues, breaks := synthesizeTissues(r, p.Length, st.BreakRate, p.MTS)
			out = append(out,
				b.Relevance(p.Hidden, p.Length),
				b.Predict(p.Hidden, breaks),
			)
			for _, size := range tissues {
				if p.Mode == Inter {
					k, _ := b.SgemmTissue(p.Hidden, size)
					out = append(out, k, b.LstmEW(p.Hidden, size))
					continue
				}
				skipRows := int(st.SkipFrac * float64(3*p.Hidden))
				trivial := skipRows / 3
				kuo, _ := b.SgemmTissueUo(p.Hidden, size)
				kfic, _ := b.SgemmTissueUfic(p.Hidden, size, skipRows)
				out = append(out,
					kuo,
					b.LstmEWPartial(p.Hidden, size, 1),
					b.DRS(p.Hidden, trivial),
					kfic,
					b.LstmEWPartial(p.Hidden, size, 3),
				)
			}
		}
	}
	return out
}

func (p Plan) validate() error {
	if p.Hidden < 1 || p.Input < 1 || p.Length < 1 || p.Layers < 1 {
		return fmt.Errorf("sched: invalid shape %+v", p)
	}
	switch p.Mode {
	case Inter, Combined:
		if p.MTS < 1 {
			return fmt.Errorf("sched: mode %v requires MTS", p.Mode)
		}
		fallthrough
	case Intra, IntraSW:
		if len(p.Stats) != p.Layers {
			return fmt.Errorf("sched: mode %v requires %d layer stats, got %d", p.Mode, p.Layers, len(p.Stats))
		}
	case ZeroPrune:
		if p.PruneDensity <= 0 || p.PruneDensity > 1 {
			return fmt.Errorf("sched: zero-prune requires density in (0,1], got %g", p.PruneDensity)
		}
	}
	return nil
}

// synthesizeTissues draws breakpoint positions from the measured per-link
// break rate, divides the layer, and aligns tissues under the MTS —
// returning the tissue size sequence the GPU executes and the number of
// breakpoints (each needing one predicted-link injection).
func synthesizeTissues(r *rng.RNG, n int, breakRate float64, mts int) ([]int, int) {
	var breaks []int
	for t := 1; t < n; t++ {
		if r.Bernoulli(breakRate) {
			breaks = append(breaks, t)
		}
	}
	subs := intercell.Sublayers(n, breaks)
	tissues := intercell.AlignTissues(subs, mts)
	return intercell.TissueSizes(tissues), len(breaks)
}
