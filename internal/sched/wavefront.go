package sched

import (
	"mobilstm/internal/gpu"
	"mobilstm/internal/kernels"
	"mobilstm/internal/tensor"
)

// Server-class execution (§II-C): on a large GPU with enough on-chip
// storage for several layers' weights (the paper's Tesla M40 example),
// cells from different layers run in parallel along the wavefront — the
// cell at (layer j, timestamp t+1) overlaps the cell at (layer j+1,
// timestamp t). Mobile GPUs cannot hold multiple layers' weights, which
// is why the paper's layer-sequential baseline (and this repository's
// optimizations) exist.
//
// WavefrontCycles models that upper bound: per wavefront step, all
// eligible layers' per-cell kernels run concurrently, bounded by the
// platform's aggregate resources; the weight matrices of all layers are
// assumed resident (no per-cell re-load) when their combined footprint
// fits the given on-chip budget, which is the regime the paper describes
// for server GPUs.

// TeslaM40 returns the server GPU the paper contrasts with (Table
// §II-C): 3072 cores at 1114 MHz, GDDR5 at 288 GB/s, 3 MB L2 and 24
// SMs — enough on-chip storage to keep several layers' LSTM weights
// resident.
func TeslaM40() gpu.Config {
	return gpu.Config{
		Name:                  "Tesla M40 (Maxwell, 3072 cores @ 1114 MHz, GDDR5 288 GB/s)",
		SMs:                   24,
		CoresPerSM:            128,
		ClockHz:               1114e6,
		DRAMBandwidth:         288e9,
		L2Bytes:               3 << 20,
		L2LineBytes:           64,
		L2Ways:                16,
		SharedBytesPerSM:      96 << 10,
		SharedBWBytesPerCycle: 64,
		WarpSize:              32,
		MaxThreadsPerSM:       2048,
		KernelLaunchCycles:    1500,
		BarrierCycles:         32,
	}
}

// WavefrontPlan describes a server-style pipelined execution.
type WavefrontPlan struct {
	Cfg                           gpu.Config
	Hidden, Input, Length, Layers int
	// ResidentBudgetBytes is the on-chip storage available for keeping
	// recurrent weights resident across cells (the persistent-RNN
	// regime). Layers whose united U fits within the remaining budget
	// skip the per-cell DRAM re-load.
	ResidentBudgetBytes int64
}

// WavefrontResult summarizes the pipelined execution.
type WavefrontResult struct {
	Cycles  float64
	Seconds float64
	// ResidentLayers is how many layers' weights stayed on chip.
	ResidentLayers int
	// Steps is the number of wavefront steps (length + layers - 1).
	Steps int
}

// Wavefront simulates the layer-pipelined execution. Each wavefront step
// runs one cell of every eligible layer concurrently; the step's cost is
// the maximum single-cell cost among them plus launch overhead amortized
// across the concurrent launches (the server GPU issues them to disjoint
// SMs). Cells of a resident layer cost only their compute and on-chip
// traffic; non-resident layers stream U from DRAM, sharing bandwidth.
func Wavefront(p WavefrontPlan) WavefrontResult {
	if p.Hidden < 1 || p.Length < 1 || p.Layers < 1 {
		tensor.Panicf("sched: invalid wavefront plan %+v", p)
	}
	kb := kernels.NewBuilder(p.Cfg)
	sim := gpu.NewSimulator(p.Cfg)

	uBytes := int64(16 * p.Hidden * p.Hidden)
	resident := int(p.ResidentBudgetBytes / uBytes)
	if resident > p.Layers {
		resident = p.Layers
	}
	if resident < 0 {
		resident = 0
	}

	// Per-cell cost for a resident layer: the gemv runs from on-chip
	// storage (shared/L2), no DRAM streaming.
	residentSpec := kb.SgemvU(p.Hidden)
	residentSpec.L2HitBytes += residentSpec.DRAMBytes
	residentSpec.DRAMBytes = 0
	streamSpec := kb.SgemvU(p.Hidden)
	ew := kb.LstmEW(p.Hidden, 1)

	// A wavefront step runs up to min(Layers, active) cells at once. The
	// DRAM-streaming cells share bandwidth: charge their combined DRAM
	// traffic against one window; compute runs on disjoint SMs, so the
	// compute window is a single cell's.
	steps := p.Length + p.Layers - 1
	var total float64
	for s := 0; s < steps; s++ {
		active := activeLayers(s, p.Length, p.Layers)
		streaming := active - resident
		if streaming < 0 {
			streaming = 0
		}
		step := gpu.KernelSpec{
			Name:        "wavefront_step",
			FLOPs:       streamSpec.FLOPs + ew.FLOPs, // per-SM-group critical path
			DRAMBytes:   float64(streaming) * streamSpec.DRAMBytes,
			SharedBytes: streamSpec.SharedBytes,
			L2HitBytes:  float64(minInt(active, resident)) * residentSpec.L2HitBytes,
			Barriers:    1,
		}
		res := sim.Run([]gpu.KernelSpec{step})
		total += res.Cycles
	}
	return WavefrontResult{
		Cycles:         total,
		Seconds:        p.Cfg.CyclesToSeconds(total),
		ResidentLayers: resident,
		Steps:          steps,
	}
}

// activeLayers counts the layers with a cell eligible at wavefront step s.
func activeLayers(s, length, layers int) int {
	n := 0
	for l := 0; l < layers; l++ {
		t := s - l
		if t >= 0 && t < length {
			n++
		}
	}
	return n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
