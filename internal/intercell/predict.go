package intercell

import "mobilstm/internal/tensor"

// Predictor holds the predicted context link injected at each breakpoint
// (§IV-B, "Accuracy Recovery"): the expectation vector of Eq. 6 for the
// hidden output h and — because the cell state also crosses the cut — for
// the cell state c. One predictor is built per LSTM layer.
type Predictor struct {
	H tensor.Vector
	C tensor.Vector
}

// LinkStats accumulates the empirical distribution of context links
// observed while executing the unmodified LSTM offline over a training
// set, and derives the Eq. 6 expectation. With an empirical distribution
// the expectation Σ_i h_j(i)·ρ_ij is exactly the per-element mean.
type LinkStats struct {
	dim  int
	n    int64
	sumH []float64
	sumC []float64
}

// NewLinkStats returns an accumulator for links of the given dimension.
func NewLinkStats(dim int) *LinkStats {
	return &LinkStats{dim: dim, sumH: make([]float64, dim), sumC: make([]float64, dim)}
}

// Observe records one context link (h_t, c_t). The paper collects all
// links, not only weak ones, since weak and strong links share the same
// distribution pattern and the weak set varies with the threshold.
func (ls *LinkStats) Observe(h, c tensor.Vector) {
	if len(h) != ls.dim || len(c) != ls.dim {
		tensor.Panicf("intercell: Observe dimension mismatch")
	}
	for j := 0; j < ls.dim; j++ {
		//lint:ignore float64leak Eq. 6 expectation sums accumulate exactly-widened float32 links in float64 so long profiles don't lose low-order bits
		ls.sumH[j] += float64(h[j])
		//lint:ignore float64leak same Eq. 6 accumulator as sumH above
		ls.sumC[j] += float64(c[j])
	}
	ls.n++
}

// Count returns the number of links observed.
func (ls *LinkStats) Count() int64 { return ls.n }

// Predictor derives the Eq. 6 expectation vectors. With no observations it
// returns zero vectors (equivalent to a cold start at the breakpoint).
func (ls *LinkStats) Predictor() Predictor {
	p := Predictor{H: tensor.NewVector(ls.dim), C: tensor.NewVector(ls.dim)}
	if ls.n == 0 {
		return p
	}
	inv := 1 / float64(ls.n)
	for j := 0; j < ls.dim; j++ {
		p.H[j] = float32(ls.sumH[j] * inv)
		p.C[j] = float32(ls.sumC[j] * inv)
	}
	return p
}
