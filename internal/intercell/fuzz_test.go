package intercell

import "testing"

// FuzzAlignTissues feeds arbitrary divisions to the alignment scheduler:
// every cell must appear exactly once, capacity and per-sub-layer order
// must hold, for any break pattern and MTS.
func FuzzAlignTissues(f *testing.F) {
	f.Add(uint16(20), []byte{3, 7, 11}, uint8(4))
	f.Add(uint16(1), []byte{}, uint8(1))
	f.Add(uint16(200), []byte{1, 2, 3, 4, 5, 6}, uint8(9))
	f.Fuzz(func(t *testing.T, nRaw uint16, breakBytes []byte, mtsRaw uint8) {
		n := int(nRaw%300) + 1
		mts := int(mtsRaw%12) + 1
		var breaks []int
		prev := 0
		for _, b := range breakBytes {
			prev += int(b%17) + 1
			if prev >= n {
				break
			}
			breaks = append(breaks, prev)
		}
		subs := Sublayers(n, breaks)
		tissues := AlignTissues(subs, mts)
		pos := make(map[int]int, n)
		count := 0
		for ti, tis := range tissues {
			if len(tis) > mts {
				t.Fatalf("tissue %d size %d > MTS %d", ti, len(tis), mts)
			}
			for _, c := range tis {
				if _, dup := pos[c]; dup {
					t.Fatalf("cell %d scheduled twice", c)
				}
				pos[c] = ti
				count++
			}
		}
		if count != n {
			t.Fatalf("scheduled %d cells of %d", count, n)
		}
		for _, s := range subs {
			for i := 1; i < len(s); i++ {
				if pos[s[i]] <= pos[s[i-1]] {
					t.Fatalf("dependency violated: cell %d at tissue %d after cell %d at %d",
						s[i], pos[s[i]], s[i-1], pos[s[i-1]])
				}
			}
		}
	})
}
