package intercell

import (
	"testing"
	"testing/quick"

	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

func constMatrix(rows, cols int, v float32) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

func newTestAnalyzer(h int, uval float32) *Analyzer {
	u := constMatrix(h, h, uval)
	b := tensor.NewVector(h)
	return NewAnalyzer(u, u.Clone(), u.Clone(), u.Clone(), b, b.Clone(), b.Clone(), b.Clone())
}

func TestAnalyzerShapesChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for inconsistent shapes")
		}
	}()
	u := tensor.NewMatrix(4, 4)
	NewAnalyzer(u, u, u, tensor.NewMatrix(5, 5),
		tensor.NewVector(4), tensor.NewVector(4), tensor.NewVector(4), tensor.NewVector(4))
}

func TestRelevanceZeroWhenSaturated(t *testing.T) {
	// Tiny U (D ~ 0) and strongly positive X' for every gate: all
	// activation inputs sit deep in their insensitive areas, so the
	// previous cell's output cannot matter: S = 0.
	a := newTestAnalyzer(8, 0.001)
	x := tensor.NewVector(8)
	for i := range x {
		x[i] = 10
	}
	if s := a.Relevance(x, x, x, x); s > 0.5 {
		t.Fatalf("saturated cell has relevance %v, want ~0", s)
	}
}

func TestRelevanceHighWhenSensitive(t *testing.T) {
	// X' = 0 and moderate U: the activation inputs straddle the
	// sensitive area, so the link is strong.
	a := newTestAnalyzer(8, 0.2) // D = 1.6 per row
	x := tensor.NewVector(8)
	s := a.Relevance(x, x, x, x)
	if s < 0.5*float64(a.Dim()) {
		t.Fatalf("sensitive cell has relevance %v", s)
	}
}

func TestRelevanceMonotoneInSaturation(t *testing.T) {
	// Beyond the sensitive boundary (+2), pushing the pre-activations
	// further into saturation cannot increase relevance. (Inside the
	// sensitive area the forget-gate term may still grow toward its
	// cap, so monotonicity starts at the boundary.)
	a := newTestAnalyzer(16, 0.05)
	prev := -1.0
	for _, mag := range []float32{2, 3, 5, 8} {
		x := tensor.NewVector(16)
		for i := range x {
			x[i] = mag
		}
		s := a.Relevance(x, x, x, x)
		if prev >= 0 && s > prev+1e-9 {
			t.Fatalf("relevance increased with saturation: %v -> %v at %v", prev, s, mag)
		}
		prev = s
	}
}

func TestRelevanceBounds(t *testing.T) {
	r := rng.New(17)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		h := 1 + rr.Intn(12)
		u := tensor.NewMatrix(h, h)
		for i := range u.Data {
			u.Data[i] = rr.NormF32(0, 0.5)
		}
		b := tensor.NewVector(h)
		for i := range b {
			b[i] = rr.NormF32(0, 1)
		}
		a := NewAnalyzer(u, u.Clone(), u.Clone(), u.Clone(), b, b.Clone(), b.Clone(), b.Clone())
		x := tensor.NewVector(h)
		for i := range x {
			x[i] = rr.NormF32(0, 2)
		}
		s := a.Relevance(x, x, x, x)
		return s >= 0 && s <= a.MaxRelevance()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Values: quickSeed(r)}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakpoints(t *testing.T) {
	s := []float64{5, 1, 7, 0.5, 3}
	got := Breakpoints(s, 2)
	want := []int{2, 4}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Breakpoints = %v, want %v", got, want)
	}
	if b := Breakpoints(s, 0); b != nil {
		t.Fatalf("alpha 0 broke links: %v", b)
	}
}

func TestSublayers(t *testing.T) {
	subs := Sublayers(6, []int{2, 4})
	if len(subs) != 3 {
		t.Fatalf("sublayers: %v", subs)
	}
	if len(subs[0]) != 2 || subs[0][0] != 0 || subs[0][1] != 1 {
		t.Fatalf("first sublayer: %v", subs[0])
	}
	if subs[2][1] != 5 {
		t.Fatalf("last sublayer: %v", subs[2])
	}
	// No breaks: one sub-layer covering everything.
	one := Sublayers(4, nil)
	if len(one) != 1 || len(one[0]) != 4 {
		t.Fatalf("no-break sublayers: %v", one)
	}
	// Out-of-range breakpoints are ignored.
	same := Sublayers(4, []int{0, 4, 9})
	if len(same) != 1 {
		t.Fatalf("invalid breaks honored: %v", same)
	}
}

func TestSublayersCoverAllCells(t *testing.T) {
	r := rng.New(23)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(50)
		var breaks []int
		for i := 1; i < n; i++ {
			if rr.Bernoulli(0.3) {
				breaks = append(breaks, i)
			}
		}
		subs := Sublayers(n, breaks)
		seen := make([]bool, n)
		prev := -1
		for _, s := range subs {
			for _, c := range s {
				if c <= prev || seen[c] {
					return false
				}
				seen[c] = true
				prev = c
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Values: quickSeed(r)}); err != nil {
		t.Fatal(err)
	}
}

func TestFormTissues(t *testing.T) {
	// The Fig. 8 example: sub-layers {0,1,2}, {3}, {4,5,6}, {7,8}.
	subs := [][]int{{0, 1, 2}, {3}, {4, 5, 6}, {7, 8}}
	tissues := FormTissues(subs)
	if len(tissues) != 3 {
		t.Fatalf("tissue count %d, want 3", len(tissues))
	}
	// Tissue 0 = first cells: 0, 3, 4, 7 (as in the paper's example).
	want0 := []int{0, 3, 4, 7}
	for i, c := range want0 {
		if tissues[0][i] != c {
			t.Fatalf("tissue 0 = %v, want %v", tissues[0], want0)
		}
	}
	// Tissue 1 = 1, 5, 8.
	if len(tissues[1]) != 3 || tissues[1][2] != 8 {
		t.Fatalf("tissue 1 = %v", tissues[1])
	}
}

func TestAlignTissuesRespectsMTS(t *testing.T) {
	subs := [][]int{{0, 1, 2}, {3}, {4, 5, 6}, {7, 8}}
	tissues := AlignTissues(subs, 3)
	for _, tis := range tissues {
		if len(tis) > 3 {
			t.Fatalf("tissue over MTS: %v", tis)
		}
	}
	total := 0
	for _, tis := range tissues {
		total += len(tis)
	}
	if total != 9 {
		t.Fatalf("alignment lost cells: %d", total)
	}
}

// Property: alignment preserves per-sub-layer order (a cell executes in a
// strictly later tissue than its predecessor) and every cell appears
// exactly once.
func TestAlignTissuesDependencyProperty(t *testing.T) {
	r := rng.New(31)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(60)
		mts := 1 + rr.Intn(7)
		var breaks []int
		for i := 1; i < n; i++ {
			if rr.Bernoulli(0.25) {
				breaks = append(breaks, i)
			}
		}
		subs := Sublayers(n, breaks)
		tissues := AlignTissues(subs, mts)
		// Position of each cell in the tissue schedule.
		pos := make(map[int]int, n)
		count := 0
		for ti, tis := range tissues {
			if len(tis) > mts {
				return false
			}
			for _, c := range tis {
				if _, dup := pos[c]; dup {
					return false
				}
				pos[c] = ti
				count++
			}
		}
		if count != n {
			return false
		}
		for _, s := range subs {
			for i := 1; i < len(s); i++ {
				if pos[s[i]] <= pos[s[i-1]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Values: quickSeed(r)}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignTissuesReachesNMin(t *testing.T) {
	// With enough sub-layers, the aligned tissue count hits Eq. 7's
	// minimum.
	subs := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}}
	tissues := AlignTissues(subs, 5)
	if len(tissues) != MinTissues(10, 5) {
		t.Fatalf("tissue count %d, want %d", len(tissues), MinTissues(10, 5))
	}
}

func TestTissueSizes(t *testing.T) {
	sz := TissueSizes([][]int{{1, 2}, {3}, nil})
	if len(sz) != 3 || sz[0] != 2 || sz[1] != 1 || sz[2] != 0 {
		t.Fatalf("TissueSizes: %v", sz)
	}
}

func TestMinTissues(t *testing.T) {
	if MinTissues(86, 5) != 18 {
		t.Fatalf("MinTissues(86,5) = %d", MinTissues(86, 5))
	}
	if MinTissues(10, 0) != 10 {
		t.Fatalf("MinTissues with mts 0: %d", MinTissues(10, 0))
	}
}

func TestLinkStats(t *testing.T) {
	ls := NewLinkStats(2)
	ls.Observe(tensor.Vector{1, 0}, tensor.Vector{2, 2})
	ls.Observe(tensor.Vector{0, 1}, tensor.Vector{0, 0})
	p := ls.Predictor()
	if p.H[0] != 0.5 || p.H[1] != 0.5 {
		t.Fatalf("predicted H: %v", p.H)
	}
	if p.C[0] != 1 || p.C[1] != 1 {
		t.Fatalf("predicted C: %v", p.C)
	}
	if ls.Count() != 2 {
		t.Fatalf("count: %d", ls.Count())
	}
}

func TestLinkStatsEmpty(t *testing.T) {
	p := NewLinkStats(3).Predictor()
	for i := range p.H {
		if p.H[i] != 0 || p.C[i] != 0 {
			t.Fatal("empty predictor not zero")
		}
	}
}

func TestLinkStatsDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	NewLinkStats(3).Observe(tensor.Vector{1}, tensor.Vector{1})
}
