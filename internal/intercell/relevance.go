// Package intercell implements the paper's inter-cell level optimization
// (§IV): quantifying the context-link strength between adjacent LSTM cells
// (Algorithm 2), dividing a layer into independent sub-layers at weak
// links, predicting the lost links (Eq. 6), and re-organizing the
// sub-layers into bandwidth-balanced tissues bounded by the platform's
// maximum tissue size (MTS).
//
//lint:file-ignore float64leak Algorithm 2 saturation scores are defined on float64 gate pre-activations (transcendental domain, like tensor/activation.go); alpha_inter is calibrated from this same float64 pipeline, so threshold comparisons stay self-consistent
package intercell

import (
	"mobilstm/internal/tensor"
)

// Analyzer computes the relevance value S of Algorithm 2 for the links of
// one LSTM layer. It captures the per-layer constants — the per-row L1
// norms D_g of the recurrent matrices (line 2) and the bias vectors — so
// the per-cell work is O(H).
type Analyzer struct {
	dim            int
	df, di, dc, do tensor.Vector
	bf, bi, bc, bo tensor.Vector
}

// NewAnalyzer builds an analyzer from the four recurrent weight matrices
// (each H x H) and bias vectors (each length H) of one layer.
func NewAnalyzer(uf, ui, uc, uo *tensor.Matrix, bf, bi, bc, bo tensor.Vector) *Analyzer {
	h := uf.Rows
	if ui.Rows != h || uc.Rows != h || uo.Rows != h ||
		len(bf) != h || len(bi) != h || len(bc) != h || len(bo) != h {
		tensor.Panicf("intercell: inconsistent layer shapes")
	}
	return &Analyzer{
		dim: h,
		df:  tensor.AbsRowSums(uf),
		di:  tensor.AbsRowSums(ui),
		dc:  tensor.AbsRowSums(uc),
		do:  tensor.AbsRowSums(uo),
		bf:  bf, bi: bi, bc: bc, bo: bo,
	}
}

// Dim returns the hidden size H.
func (a *Analyzer) Dim() int { return a.dim }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sOverlap evaluates Algorithm 2 line 5 for the input/cell/output gates:
// the overlap between the activation-input range [m-D, m+D] (m = X'+b)
// and the sensitive area [-2, 2]. The published formula can go negative
// when the range lies entirely in a saturated region; since an overlap
// length is non-negative we clamp at 0 (and at the full sensitive width
// 4 above), which matches the geometric quantity the text describes.
func sOverlap(m, d float64) float64 {
	am := abs(m)
	t1 := 2 + min2(2, am)
	t2 := min2(2, 2+d-max2(2, am))
	s := t1
	if t2 < s {
		s = t2
	}
	return clamp(s, 0, 4)
}

// sForget evaluates Algorithm 2 line 4 for the forget gate: how far the
// upper end of the input range reaches back into the sensitive area. A
// forget gate pinned in its high saturation (f_t ~ 1) passes the previous
// state through regardless of h_{t-1}, so only the upper-side overlap
// matters.
func sForget(m, d float64) float64 {
	return clamp(m+d+2, 0, 4)
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Relevance computes the relevance value S for the link into one cell,
// given the cell's per-gate input projections X'_g = W_g * x_t (each
// length H). A smaller S means a weaker context link; 0 means the
// previous cell's output cannot influence this cell at all.
func (a *Analyzer) Relevance(xf, xi, xc, xo tensor.Vector) float64 {
	if len(xf) != a.dim || len(xi) != a.dim || len(xc) != a.dim || len(xo) != a.dim {
		tensor.Panicf("intercell: Relevance input length mismatch")
	}
	var s float64
	for j := 0; j < a.dim; j++ {
		sf := sForget(float64(xf[j])+float64(a.bf[j]), float64(a.df[j]))
		si := sOverlap(float64(xi[j])+float64(a.bi[j]), float64(a.di[j]))
		sc := sOverlap(float64(xc[j])+float64(a.bc[j]), float64(a.dc[j]))
		so := sOverlap(float64(xo[j])+float64(a.bo[j]), float64(a.do[j]))
		s += so * (sf + si*sc)
	}
	return s
}

// MaxRelevance returns the largest possible S for this layer's dimension.
// Per element, the forget-gate term saturates at 4 and each line-5
// overlap at 2, so S^j <= 2 * (4 + 2*2) = 16. It is the natural
// normalizer when comparing thresholds across layer sizes.
func (a *Analyzer) MaxRelevance() float64 {
	return 16 * float64(a.dim)
}
