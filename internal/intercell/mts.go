package intercell

import (
	"mobilstm/internal/gpu"
	"mobilstm/internal/kernels"
)

// FindMTS determines the maximum tissue size for one layer shape on one
// platform (§IV-D, offline step 1): the largest tissue size whose
// per-tissue Sgemm still fits under 100% shared-memory bandwidth
// utilization, i.e. does not force a kernel re-configuration. Beyond it,
// performance drops (Fig. 9).
func FindMTS(cfg gpu.Config, hidden, maxT int) int {
	if maxT < 1 {
		maxT = 1
	}
	b := kernels.NewBuilder(cfg)
	mts := 1
	for t := 1; t <= maxT; t++ {
		if _, reconfigured := b.SgemmTissue(hidden, t); reconfigured {
			break
		}
		mts = t
	}
	return mts
}

// MinTissues is Eq. 7: the minimal tissue count for a layer of n cells
// when every tissue reaches the MTS.
func MinTissues(n, mts int) int {
	if mts < 1 {
		mts = 1
	}
	return (n + mts - 1) / mts
}
