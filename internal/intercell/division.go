package intercell

// Breakpoints returns the cell indices whose incoming context link is
// weak: cell t is a breakpoint iff S[t-1] < alpha, where S[t-1] is the
// relevance of the link from cell t-1 into cell t. Indices are in (0, n)
// where n = len(S)+1 cells.
func Breakpoints(s []float64, alpha float64) []int {
	var out []int
	for i, v := range s {
		if v < alpha {
			out = append(out, i+1)
		}
	}
	return out
}

// Sublayers splits n cells at the given breakpoints (ascending cell
// indices in (0, n)) into contiguous runs. Each sub-layer is the slice of
// cell indices it contains, in timestamp order.
func Sublayers(n int, breaks []int) [][]int {
	if n <= 0 {
		return nil
	}
	var subs [][]int
	start := 0
	for _, b := range breaks {
		if b <= start || b >= n {
			continue
		}
		subs = append(subs, cellRange(start, b))
		start = b
	}
	subs = append(subs, cellRange(start, n))
	return subs
}

func cellRange(lo, hi int) []int {
	r := make([]int, hi-lo)
	for i := range r {
		r[i] = lo + i
	}
	return r
}

// FormTissues fuses the sub-layers into tissues (§IV-C, Fig. 8): tissue k
// contains the k-th cell of every sub-layer that has one. The result
// preserves each sub-layer's internal order (cell j of a sub-layer lands
// in tissue j), so the data dependency across cells of a sub-layer becomes
// a dependency across tissues.
func FormTissues(sublayers [][]int) [][]int {
	maxLen := 0
	for _, s := range sublayers {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	tissues := make([][]int, maxLen)
	for k := 0; k < maxLen; k++ {
		for _, s := range sublayers {
			if k < len(s) {
				tissues[k] = append(tissues[k], s[k])
			}
		}
	}
	return tissues
}

// AlignTissues rebalances the raw tissue sequence so no tissue exceeds mts
// cells (§IV-C, "tissue alignment"): cells are moved from fat tissues into
// later, thinner ones. The scheduling constraint is the per-sub-layer
// order — the j-th cell of a sub-layer may only execute in a tissue
// strictly after the (j-1)-th — which alignment never violates, and it
// breaks no additional context links.
//
// The scheduler is greedy list scheduling: tissues are filled in order,
// each sub-layer's next cell going to the earliest tissue after its
// predecessor with spare capacity. The tissue count is
// max(longest sub-layer, ceil(total/mts)), the paper's N_min when the
// division is rich enough.
func AlignTissues(sublayers [][]int, mts int) [][]int {
	if mts < 1 {
		mts = 1
	}
	total := 0
	maxLen := 0
	for _, s := range sublayers {
		total += len(s)
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if total == 0 {
		return nil
	}
	k := (total + mts - 1) / mts
	if maxLen > k {
		k = maxLen
	}
	for {
		tissues, ok := trySchedule(sublayers, mts, k)
		if ok {
			return tissues
		}
		k++
	}
}

// trySchedule attempts to place every cell into k tissues of capacity mts.
func trySchedule(sublayers [][]int, mts, k int) ([][]int, bool) {
	tissues := make([][]int, k)
	load := make([]int, k)
	// Longest sub-layers are the tightest chains; schedule them first so
	// their cells claim the slots they need.
	order := make([]int, len(sublayers))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(sublayers[order[j]]) > len(sublayers[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, si := range order {
		sub := sublayers[si]
		slot := -1
		for _, cell := range sub {
			placed := false
			for t := slot + 1; t < k; t++ {
				if load[t] < mts {
					tissues[t] = append(tissues[t], cell)
					load[t]++
					slot = t
					placed = true
					break
				}
			}
			if !placed {
				return nil, false
			}
		}
	}
	// Drop empty tissues (possible when chains force sparse placement).
	out := tissues[:0]
	for _, t := range tissues {
		if len(t) > 0 {
			out = append(out, t)
		}
	}
	return out, true
}

// TissueSizes returns the size of each tissue.
func TissueSizes(tissues [][]int) []int {
	out := make([]int, len(tissues))
	for i, t := range tissues {
		out[i] = len(t)
	}
	return out
}
