//lint:file-ignore globalrand testing/quick's Values hooks take *math/rand.Rand by signature; all draws actually derive from the seeded internal/rng source
package intercell

import (
	"math/rand"
	"reflect"

	"mobilstm/internal/rng"
)

// quickSeed adapts the deterministic RNG to testing/quick.
func quickSeed(r *rng.RNG) func([]reflect.Value, *rand.Rand) {
	return func(args []reflect.Value, _ *rand.Rand) {
		args[0] = reflect.ValueOf(r.Uint64())
	}
}
