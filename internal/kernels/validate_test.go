package kernels

import (
	"math"
	"testing"

	"mobilstm/internal/gpu"
)

// The fast timing path charges the baseline Sgemv a full re-load of the
// united U every cell (analytic miss model). Validate that against the
// set-associative L2 simulator streaming the same addresses: with U far
// larger than the 256 KB L2, per-cell DRAM traffic must match the
// analytic figure within a few percent (DESIGN.md §5).
func TestAnalyticSgemvTrafficMatchesCacheSim(t *testing.T) {
	cfg := gpu.TegraX1()
	for _, h := range []int{256, 512, 650} {
		spec := NewBuilder(cfg).SgemvU(h)
		l2 := gpu.NewL2(cfg)
		uBytes := int64(16 * h * h)
		hBytes := int64(4 * h)
		outBytes := int64(16 * h)
		const cells = 12
		var missBytes int64
		for c := 0; c < cells; c++ {
			missBytes += l2.AccessRange(0, uBytes) * cfg.L2LineBytes
			missBytes += l2.AccessRange(uBytes+int64(c)*hBytes, hBytes) * cfg.L2LineBytes
			missBytes += l2.AccessRange(uBytes+1<<24+int64(c)*outBytes, outBytes) * cfg.L2LineBytes
		}
		perCell := float64(missBytes) / cells
		if rel := math.Abs(perCell-spec.DRAMBytes) / spec.DRAMBytes; rel > 0.05 {
			t.Errorf("H=%d: cache-sim %.0f B/cell vs analytic %.0f B/cell (%.1f%% off)",
				h, perCell, spec.DRAMBytes, rel*100)
		}
	}
}

// A hypothetical hidden size small enough for U to fit in L2 must show
// reuse in the cache simulator — the reason the analytic model only
// charges full re-loads for Table II shapes (all of which exceed L2).
func TestSmallMatrixWouldBeCached(t *testing.T) {
	cfg := gpu.TegraX1()
	h := 64 // U = 64 KB < 256 KB L2
	l2 := gpu.NewL2(cfg)
	uBytes := int64(16 * h * h)
	first := l2.AccessRange(0, uBytes)
	second := l2.AccessRange(0, uBytes)
	if first == 0 || second != 0 {
		t.Fatalf("expected cold misses then full reuse, got %d then %d", first, second)
	}
}
