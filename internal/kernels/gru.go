package kernels

import "mobilstm/internal/gpu"

// GRU kernel models (§II-B: "the proposed methods can also be applied to
// GRUs with simple adjustment"). A GRU cell has three gates, so the
// united recurrent matrix U_{z,r,h} is (3H x H) — 25% smaller than the
// LSTM's — but the same memory pathology applies: it re-loads every cell
// in the baseline flow.
//
// The DRS adjustment differs from the LSTM's: the update gate z_t plays
// the output-filter role (h_t = (1-z_t)*h_{t-1} + z_t*~h_t), so when
// z_t[j] is near zero the candidate row j of U_h need not be computed at
// all — h_t[j] just carries h_{t-1}[j]. Only U_h rows are skippable
// (a third of the united matrix), so GRU-DRS tops out at lower
// compression than LSTM-DRS.

// GRU kernel group names.
const (
	NameGRUSgemmWx = "gru_sgemm_wx"
	NameGRUSgemvU  = "gru_sgemv_u"
	NameGRUSgemmT  = "gru_sgemm_tissue"
	NameGRUEW      = "gru_ew"
	NameGRUSgemvZR = "gru_sgemv_zr"
	NameGRUDRS     = "gru_drs"
	NameGRUSgemvUh = "gru_sgemv_uh"
)

// GRUSgemmWx is the per-layer input projection W_{z,r,h} x X.
func (b *Builder) GRUSgemmWx(h, e, n int) gpu.KernelSpec {
	flops := 2 * 3 * float64(h) * float64(e) * float64(n)
	return gpu.KernelSpec{
		Name:        NameGRUSgemmWx,
		FLOPs:       flops,
		DRAMBytes:   float64(12*h*e) + float64(4*e*n) + float64(12*h*n),
		SharedBytes: flops * f32 / gemmRegTile,
		Threads:     3 * h,
		Barriers:    2,
	}
}

// GRUSgemvU is the baseline per-cell united gemv U_{z,r,h} x h_{t-1}.
func (b *Builder) GRUSgemvU(h int) gpu.KernelSpec {
	hh := float64(h) * float64(h)
	return gpu.KernelSpec{
		Name:        NameGRUSgemvU,
		FLOPs:       2 * 3 * hh,
		DRAMBytes:   12*hh + float64(4*h) + float64(12*h),
		SharedBytes: 12 * hh,
		Threads:     3 * h,
		Barriers:    1,
	}
}

// GRUSgemmTissue is the per-tissue batched gemm of the inter-cell
// optimization applied to a GRU layer.
func (b *Builder) GRUSgemmTissue(h, t int) (gpu.KernelSpec, bool) {
	return b.tissueGemm(NameGRUSgemmT, 3*h, h, t, 1)
}

// GRUEW is the element-wise gate math for t cells.
func (b *Builder) GRUEW(h, t int) gpu.KernelSpec {
	elems := float64(h) * float64(t)
	return gpu.KernelSpec{
		Name:       NameGRUEW,
		FLOPs:      22 * elems, // z, r, candidate mix + interpolation
		DRAMBytes:  4 * elems,
		L2HitBytes: 16 * elems,
		Threads:    h * t,
	}
}

// GRUSgemvZR is the DRS flow's first kernel: U_{z,r} x h_{t-1} (two of
// the three gate blocks), so z_t exists before U_h is touched.
func (b *Builder) GRUSgemvZR(h int) gpu.KernelSpec {
	hh := float64(h) * float64(h)
	return gpu.KernelSpec{
		Name:        NameGRUSgemvZR,
		FLOPs:       2 * 2 * hh,
		DRAMBytes:   8*hh + float64(4*h) + float64(8*h),
		SharedBytes: 8 * hh,
		Threads:     2 * h,
		Barriers:    1,
	}
}

// GRUDRS is the z_t threshold scan emitting the carry-row list.
func (b *Builder) GRUDRS(h, trivial int) gpu.KernelSpec {
	return gpu.KernelSpec{
		Name:        NameGRUDRS,
		FLOPs:       2 * float64(h),
		L2HitBytes:  4 * float64(h),
		DRAMBytes:   4 * float64(trivial),
		Threads:     h,
		ExtraCycles: 200,
	}
}

// GRUSgemvUh is the candidate gemv U_h x (r .* h_{t-1}) with skipRows of
// the H rows disabled under the given DRS mode.
func (b *Builder) GRUSgemvUh(h, skipRows int, mode DRSMode) gpu.KernelSpec {
	if skipRows < 0 {
		skipRows = 0
	}
	if skipRows > h {
		skipRows = h
	}
	live := h - skipRows
	spec := gpu.KernelSpec{
		Name:        NameGRUSgemvUh,
		FLOPs:       2 * float64(live) * float64(h),
		DRAMBytes:   float64(live)*float64(h)*f32 + float64(4*h) + float64(live)*f32,
		SharedBytes: float64(live) * float64(h) * f32,
		Threads:     live,
		Barriers:    1,
	}
	switch mode {
	case DRSHardware:
		spec.ExtraCycles = b.crm.Reorganize(h, skipRows)
		spec.Threads = b.crm.CompactedThreads(h, skipRows)
	case DRSSoftware:
		if live > 0 {
			spec.ComputeScale = float64(h) / float64(live)
		}
		spec.EffectiveDRAMFrac = swDRSCoalesceFrac
		spec.Threads = h
	}
	return spec
}
