package kernels

import (
	"testing"

	"mobilstm/internal/gpu"
)

func TestGRUUnitedSmallerThanLSTM(t *testing.T) {
	b := builder()
	lstm := b.SgemvU(512)
	gru := b.GRUSgemvU(512)
	// 3 gates vs 4: the GRU united matrix is 25% smaller.
	ratio := gru.DRAMBytes / lstm.DRAMBytes
	if ratio < 0.72 || ratio > 0.78 {
		t.Fatalf("GRU/LSTM traffic ratio %v, want ~0.75", ratio)
	}
}

func TestGRUSgemvDRAMBound(t *testing.T) {
	sim := gpu.NewSimulator(gpu.TegraX1())
	_, krs := sim.RunResults([]gpu.KernelSpec{builder().GRUSgemvU(512)})
	if krs[0].DRAMUtil < 0.9 {
		t.Fatalf("GRU Sgemv DRAM util %v", krs[0].DRAMUtil)
	}
}

func TestGRUTissueReconfigures(t *testing.T) {
	b := builder()
	reconfAt := 0
	for tt := 1; tt <= 12; tt++ {
		if _, re := b.GRUSgemmTissue(512, tt); re {
			reconfAt = tt
			break
		}
	}
	if reconfAt < 4 || reconfAt > 8 {
		t.Fatalf("GRU MTS neighbourhood: reconfig at %d", reconfAt)
	}
}

func TestGRUDRSHardwareBeatsSoftware(t *testing.T) {
	sim := gpu.NewSimulator(gpu.TegraX1())
	b := builder()
	h := 512
	skip := h / 2
	hw := sim.Run([]gpu.KernelSpec{b.GRUSgemvUh(h, skip, DRSHardware)})
	sw := sim.Run([]gpu.KernelSpec{b.GRUSgemvUh(h, skip, DRSSoftware)})
	dense := sim.Run([]gpu.KernelSpec{b.GRUSgemvUh(h, 0, DRSHardware)})
	if !(hw.Cycles < sw.Cycles && hw.Cycles < dense.Cycles) {
		t.Fatalf("GRU DRS ordering: hw %v sw %v dense %v", hw.Cycles, sw.Cycles, dense.Cycles)
	}
}

func TestGRUDRSFlowBeatsBaselinePerCell(t *testing.T) {
	// The split flow (U_{z,r} then skipped U_h) must beat the united
	// per-cell gemv when half the candidate rows are trivial.
	sim := gpu.NewSimulator(gpu.TegraX1())
	b := builder()
	h := 650
	base := sim.Run([]gpu.KernelSpec{b.GRUSgemvU(h), b.GRUEW(h, 1)})
	drs := sim.Run([]gpu.KernelSpec{
		b.GRUSgemvZR(h), b.GRUEW(h, 1), b.GRUDRS(h, h/2),
		b.GRUSgemvUh(h, h/2, DRSHardware), b.GRUEW(h, 1),
	})
	if drs.Cycles >= base.Cycles {
		t.Fatalf("GRU DRS flow slower: %v vs %v", drs.Cycles, base.Cycles)
	}
	// But the ceiling is lower than LSTM DRS (only a third of the matrix
	// is skippable).
	if base.Cycles/drs.Cycles > 1.5 {
		t.Fatalf("GRU DRS gain %v implausibly high", base.Cycles/drs.Cycles)
	}
}

func TestGRUSkipClamps(t *testing.T) {
	b := builder()
	if k := b.GRUSgemvUh(64, 1000, DRSHardware); k.FLOPs != 0 {
		t.Fatal("over-skip not clamped")
	}
	if k := b.GRUSgemvUh(64, -2, DRSHardware); k.FLOPs != b.GRUSgemvUh(64, 0, DRSHardware).FLOPs {
		t.Fatal("negative skip not clamped")
	}
}
