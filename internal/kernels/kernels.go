// Package kernels builds gpu.KernelSpec cost descriptors for the GPU
// kernels of the paper's LSTM execution flows (Algorithm 1 baseline,
// Algorithm 3 DRS flow, and the tissue-parallel inter-cell flow), plus the
// zero-pruning comparison baseline [Han et al., Deep Compression].
//
// Traffic models (H = hidden size, E = input size, N = cells, T = tissue
// size; float32 = 4 bytes):
//
//   - united recurrent matrix U_{f,i,c,o} is (4H x H): 16*H^2 bytes
//   - united input matrix W_{f,i,c,o} is (4H x E): 16*H*E bytes
//
// Baseline Sgemv(U, h): one thread per output row; the input vector h is
// staged in shared memory and read by every row thread (16*H^2 bytes of
// shared traffic), while U streams from DRAM. Because U is far larger than
// the mobile GPU's L2 and is evicted between cells (validated against the
// cache simulator in gpu), every launch re-loads the full matrix — the
// paper's inter-cell redundancy.
//
// Tissue Sgemm(U, H_T): the T batched input vectors are staged in shared
// memory and each row thread reads all of them (16*H^2*T shared bytes),
// while U still streams from DRAM once per tissue. Shared-memory traffic
// grows linearly with T while DRAM traffic stays ~flat, so past a
// crossover tissue size the kernel saturates on-chip bandwidth — the
// mechanism behind the paper's maximum tissue size (Fig. 9). When a
// requested T would exceed 100% shared utilization the kernel must be
// re-configured (more threads, smaller per-thread bandwidth), which costs
// compute efficiency and extra synchronization; the model charges that
// penalty, producing Fig. 9's performance droop.
package kernels

import (
	"mobilstm/internal/gpu"
	"mobilstm/internal/gpu/crm"
	"mobilstm/internal/tensor"
)

// Names used for per-kernel aggregation in simulation results.
const (
	NameSgemmWx    = "sgemm_wx"     // per-layer W_{f,i,c,o} x X
	NameSgemvU     = "sgemv_u"      // baseline per-cell U_{f,i,c,o} x h
	NameSgemmT     = "sgemm_tissue" // per-tissue U_{f,i,c,o} x H_T
	NameLstmEW     = "lstm_ew"      // element-wise gate math
	NameSgemvUo    = "sgemv_uo"     // DRS: U_o x h (o_t first)
	NameDRS        = "drs"          // DRS threshold scan producing R
	NameSgemvUfic  = "sgemv_ufic"   // DRS: U_{f,i,c} x h with rows skipped
	NameSgemmTUo   = "sgemm_t_uo"   // combined: per-tissue U_o gemm
	NameSgemmTUfic = "sgemm_t_ufic" // combined: per-tissue U_{f,i,c} gemm w/ skips
	NamePruned     = "sgemv_csr"    // zero-pruning CSR gemv baseline
	NameRelevance  = "relevance"    // Algorithm 2 breakpoint search
	NamePredict    = "predict"      // predicted-link injection

	NameEngineJit    = "engine_jit"    // cold start: JIT-compile the kernel family
	NameEngineUpload = "engine_upload" // engine materialization: weight upload
)

// Model parameters. These are the documented modelling constants of the
// substitution (see DESIGN.md §5); everything else is derived from shapes
// and the platform config.
const (
	// gemmRegTile is the register-blocking factor of the large per-layer
	// Sgemm(W, x): each shared-memory operand fetch feeds gemmRegTile
	// FMAs, so shared traffic is FLOPs*4/gemmRegTile bytes.
	gemmRegTile = 16

	// swDRSCoalesceFrac derates effective DRAM bandwidth under pure
	// software row skipping: masked-out lanes punch holes in otherwise
	// coalesced row streams, so surviving loads straddle partially-used
	// bursts. The paper measures software DRS at only 1.07x.
	swDRSCoalesceFrac = 0.55

	// csrCoalesceFrac derates effective DRAM bandwidth of the
	// zero-pruning CSR gemv: value+index gather is irregular at element
	// granularity. The paper measures a 35% slowdown despite 37% fewer
	// bytes.
	csrCoalesceFrac = 0.42

	// csrDivergenceScale inflates compute time of the CSR gemv: rows
	// have unequal nonzero counts, so warps serialize on the longest
	// lane.
	csrDivergenceScale = 1.8

	// reconfigComputeScale and reconfigSharedScale model the compile-time
	// kernel re-configuration forced when a tissue would exceed 100%
	// shared-memory bandwidth: the kernel switches to a split-row layout
	// with more threads, paying reduction traffic and lower per-thread
	// efficiency (§IV-C).
	reconfigComputeScale = 1.6
	reconfigSharedScale  = 1.35
	reconfigExtraBarrier = 2

	// ewFLOPsPerElem counts the element-wise gate math of Eqs. 1-5
	// (adds, multiplies and activation evaluations) per hidden element.
	ewFLOPsPerElem = 30

	// engineJitVariants is the number of kernel variants a serving
	// engine JIT-compiles on a cold start: the united-gate gemv/gemm
	// family, the DRS flow, the tissue variants and their reconfigured
	// twins. Driver JIT of a kernel module is host work, charged per
	// variant in GPU-clock cycles (engineJitCyclesPerVariant): on a
	// ~1 GHz mobile part the full family costs a few hundred ms, which
	// matches the cold/warm gap mobile inference stacks measure between
	// first and steady-state runs (FlashMem, PAPERS.md).
	engineJitVariants         = 12
	engineJitCyclesPerVariant = 40e6
	engineInstallUnpackCycles = 2e6 // warm install: unpack a propagated artifact
)

// Builder constructs kernel specs for one platform.
type Builder struct {
	cfg gpu.Config
	crm crm.Module
}

// NewBuilder returns a builder for the platform.
func NewBuilder(cfg gpu.Config) *Builder {
	return &Builder{cfg: cfg, crm: crm.Default()}
}

// CRM returns the CTA-reorganization module model used for hardware DRS.
func (b *Builder) CRM() crm.Module { return b.crm }

const f32 = 4 // bytes per float32

// SgemmWx is the per-layer kernel computing W_{f,i,c,o} x X for all N
// cells at once (Algorithm 1 step 2). With proper tiling W streams from
// DRAM once; the activations and outputs stream as well.
func (b *Builder) SgemmWx(h, e, n int) gpu.KernelSpec {
	flops := 2 * 4 * float64(h) * float64(e) * float64(n)
	dram := float64(16 * h * e) // W once: 4h x e floats * 4 bytes
	dram += float64(4 * e * n)  // X in
	dram += float64(16 * h * n) // pre-activations out
	return gpu.KernelSpec{
		Name:        NameSgemmWx,
		FLOPs:       flops,
		DRAMBytes:   dram,
		SharedBytes: flops * f32 / gemmRegTile,
		Threads:     4 * h,
		Barriers:    2,
	}
}

// SgemvU is the baseline per-cell kernel computing U_{f,i,c,o} x h_{t-1}
// (Algorithm 1 step 1). uInDRAM should be the matrix bytes that miss L2 —
// for every Table II benchmark the united U exceeds the TX1's 256 KB L2
// and the whole matrix re-loads each cell.
func (b *Builder) SgemvU(h int) gpu.KernelSpec {
	hh := float64(h) * float64(h)
	flops := 2 * 4 * hh
	return gpu.KernelSpec{
		Name:        NameSgemvU,
		FLOPs:       flops,
		DRAMBytes:   16*hh + float64(4*h) + float64(16*h), // U + h in + gates out
		SharedBytes: 16 * hh,                              // h broadcast to 4h row threads
		Threads:     4 * h,
		Barriers:    1,
	}
}

// tissueGemm returns the spec of a per-tissue Sgemm over a (rows x h)
// slice of U against T batched vectors, marking whether re-configuration
// was required. liveFrac scales the surviving rows (1.0 when no skipping).
func (b *Builder) tissueGemm(name string, rows, h, t int, liveFrac float64) (gpu.KernelSpec, bool) {
	if liveFrac < 0 {
		liveFrac = 0
	}
	live := float64(rows) * liveFrac
	flops := 2 * live * float64(h) * float64(t)
	dram := live*float64(h)*f32 + float64(h*t)*f32 + live*float64(t)*f32
	shared := live * float64(h) * float64(t) * f32 // each row thread reads the batched inputs
	spec := gpu.KernelSpec{
		Name:        name,
		FLOPs:       flops,
		DRAMBytes:   dram,
		SharedBytes: shared,
		Threads:     int(live),
		Barriers:    1,
	}
	// Would this launch saturate shared bandwidth? Compare the two
	// roofline times; beyond 100% utilization the kernel is re-configured
	// at compile time (§IV-C) and pays the penalty constants.
	sharedCycles := shared / b.cfg.SharedBytesPerCycle()
	dramCycles := dram / b.cfg.DRAMBytesPerCycle()
	computeCycles := flops / (float64(b.cfg.Cores()) * 2)
	bound := dramCycles
	if computeCycles > bound {
		bound = computeCycles
	}
	if sharedCycles > bound {
		spec.ComputeScale = reconfigComputeScale
		spec.SharedBytes *= reconfigSharedScale
		spec.Barriers += reconfigExtraBarrier
		return spec, true
	}
	return spec, false
}

// SgemmTissue is the per-tissue kernel U_{f,i,c,o} x H_T of the inter-cell
// optimization. The boolean reports whether the tissue size forced a
// kernel re-configuration (it is true above the MTS).
func (b *Builder) SgemmTissue(h, t int) (gpu.KernelSpec, bool) {
	return b.tissueGemm(NameSgemmT, 4*h, h, t, 1)
}

// LstmEW is the element-wise kernel of Algorithm 1 step 3, covering t
// cells' worth of gate math (t=1 for the baseline flow).
func (b *Builder) LstmEW(h, t int) gpu.KernelSpec {
	elems := float64(h) * float64(t)
	return gpu.KernelSpec{
		Name:       NameLstmEW,
		FLOPs:      ewFLOPsPerElem * elems,
		DRAMBytes:  8 * elems,  // c_t, h_t write-back
		L2HitBytes: 20 * elems, // freshly-produced gates re-read from L2
		Threads:    h * t,
	}
}

// LstmEWPartial is the element-wise work for a subset of gates (e.g. just
// o_t in the DRS flow, Algorithm 3 line 5). gates is the number of gate
// vectors processed (1..4).
func (b *Builder) LstmEWPartial(h, t, gates int) gpu.KernelSpec {
	elems := float64(h) * float64(t)
	frac := float64(gates) / 4
	return gpu.KernelSpec{
		Name:       NameLstmEW,
		FLOPs:      ewFLOPsPerElem * elems * frac,
		DRAMBytes:  8 * elems * frac,
		L2HitBytes: 20 * elems * frac,
		Threads:    h * t,
	}
}

// SgemvUo is the DRS flow's first kernel, U_o x h_{t-1} (Algorithm 3 line
// 4). U_o is the (H x H) quarter of the united matrix.
func (b *Builder) SgemvUo(h int) gpu.KernelSpec {
	hh := float64(h) * float64(h)
	return gpu.KernelSpec{
		Name:        NameSgemvUo,
		FLOPs:       2 * hh,
		DRAMBytes:   4*hh + float64(4*h) + float64(4*h),
		SharedBytes: 4 * hh,
		Threads:     h,
		Barriers:    1,
	}
}

// DRS is the threshold-scan kernel comparing o_t against alpha_intra and
// emitting the trivial-row list R (Algorithm 3 line 6). trivial is the
// number of rows that will be skipped; the list transfer to the GMU is
// charged as extra cycles.
func (b *Builder) DRS(h, trivial int) gpu.KernelSpec {
	return gpu.KernelSpec{
		Name:        NameDRS,
		FLOPs:       2 * float64(h),
		L2HitBytes:  4 * float64(h),
		DRAMBytes:   4 * float64(trivial), // R list write
		Threads:     h,
		ExtraCycles: 200, // list hand-off to the grid management unit
	}
}

// DRSMode selects how row skipping executes.
type DRSMode int

const (
	// DRSHardware compacts surviving threads with the CRM: savings are
	// proportional to skipped rows and coalescing is preserved.
	DRSHardware DRSMode = iota
	// DRSSoftware masks skipped lanes in the unmodified GPU: loads are
	// saved but the surviving stream is un-coalesced and divergent warps
	// still occupy issue slots.
	DRSSoftware
)

// SgemvUfic is the DRS flow's main kernel, U_{f,i,c} x h_{t-1} with
// skipRows of the 3H rows disabled (Algorithm 3 line 7).
func (b *Builder) SgemvUfic(h, skipRows int, mode DRSMode) gpu.KernelSpec {
	rows := 3 * h
	if skipRows < 0 {
		skipRows = 0
	}
	if skipRows > rows {
		skipRows = rows
	}
	live := rows - skipRows
	flops := 2 * float64(live) * float64(h)
	dram := float64(live)*float64(h)*f32 + float64(4*h) + float64(live)*f32
	spec := gpu.KernelSpec{
		Name:        NameSgemvUfic,
		FLOPs:       flops,
		DRAMBytes:   dram,
		SharedBytes: float64(live) * float64(h) * f32,
		Threads:     live,
		Barriers:    1,
	}
	switch mode {
	case DRSHardware:
		spec.ExtraCycles = b.crm.Reorganize(rows, skipRows)
		spec.Threads = b.crm.CompactedThreads(rows, skipRows)
	case DRSSoftware:
		// Divergent lanes still occupy their warps' issue slots: compute
		// time is that of the full row count, and the holey access
		// pattern derates DRAM efficiency.
		if live > 0 {
			spec.ComputeScale = float64(rows) / float64(live)
		}
		spec.EffectiveDRAMFrac = swDRSCoalesceFrac
		spec.Threads = rows
	}
	return spec
}

// SgemmTissueUo is the combined flow's per-tissue U_o gemm.
func (b *Builder) SgemmTissueUo(h, t int) (gpu.KernelSpec, bool) {
	spec, re := b.tissueGemm(NameSgemmTUo, h, h, t, 1)
	return spec, re
}

// SgemmTissueUfic is the combined flow's per-tissue U_{f,i,c} gemm with
// skipRows of the 3H rows disabled for the whole tissue (rows trivial for
// every cell in the tissue). Hardware DRS semantics: the CRM compacts the
// surviving rows.
func (b *Builder) SgemmTissueUfic(h, t, skipRows int) (gpu.KernelSpec, bool) {
	rows := 3 * h
	if skipRows < 0 {
		skipRows = 0
	}
	if skipRows > rows {
		skipRows = rows
	}
	liveFrac := float64(rows-skipRows) / float64(rows)
	spec, re := b.tissueGemm(NameSgemmTUfic, rows, h, t, liveFrac)
	spec.ExtraCycles += b.crm.Reorganize(rows, skipRows)
	return spec, re
}

// PrunedSgemv is the zero-pruning baseline [31]: the united U stored as
// CSR with the given element density (surviving fraction of weights).
// Data movement shrinks to density*(value+index) but the gather pattern
// un-coalesces and warps diverge on unequal row lengths.
func (b *Builder) PrunedSgemv(h int, density float64) gpu.KernelSpec {
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	hh := float64(h) * float64(h)
	nnz := 4 * hh * density
	return gpu.KernelSpec{
		Name:              NamePruned,
		FLOPs:             2 * nnz,
		DRAMBytes:         nnz*(f32+f32) + float64(4*h) + float64(16*h) + float64(4*h)*f32, // values+indices, h, out, row ptrs
		SharedBytes:       nnz * f32,
		Threads:           4 * h,
		Barriers:          1,
		ComputeScale:      csrDivergenceScale,
		EffectiveDRAMFrac: csrCoalesceFrac,
	}
}

// RequestBatch is the kernel sequence of one exact batch-B inference:
// B concurrent same-shape requests advance in lockstep, so every cell
// runs one Sgemm(U, H_B) over the B requests' hidden vectors — the same
// kernel shape as a tissue of size B, but the batch dimension is
// requests, so the math is exact (§II-C's server-style weight reuse).
// The caller charges the queueing wait separately: the last request of
// a batch pays for the first to arrive.
func (b *Builder) RequestBatch(h, length, layers, batch int) []gpu.KernelSpec {
	var ks []gpu.KernelSpec
	for layer := 0; layer < layers; layer++ {
		ks = append(ks, b.SgemmWx(h, h, length*batch))
		for c := 0; c < length; c++ {
			k, _ := b.SgemmTissue(h, batch)
			ks = append(ks, k, b.LstmEW(h, batch))
		}
	}
	return ks
}

// RequestBatchRagged is RequestBatch for requests of unequal lengths:
// the batch advances in lockstep and members drop out of the active set
// as they finish, so cell t runs its tissue-shaped Sgemm over only the
// still-active requests (no padding compute). The W·x stage covers the
// sum of the lengths. With all lengths equal it reduces to RequestBatch.
func (b *Builder) RequestBatchRagged(h, layers int, lens []int) []gpu.KernelSpec {
	if len(lens) == 0 {
		tensor.Panicf("kernels: RequestBatchRagged of an empty batch")
	}
	total, maxLen := 0, 0
	for _, ln := range lens {
		if ln < 1 {
			tensor.Panicf("kernels: RequestBatchRagged length %d", ln)
		}
		total += ln
		if ln > maxLen {
			maxLen = ln
		}
	}
	var ks []gpu.KernelSpec
	for layer := 0; layer < layers; layer++ {
		ks = append(ks, b.SgemmWx(h, h, total))
		for c := 0; c < maxLen; c++ {
			active := 0
			for _, ln := range lens {
				if c < ln {
					active++
				}
			}
			k, _ := b.SgemmTissue(h, active)
			ks = append(ks, k, b.LstmEW(h, active))
		}
	}
	return ks
}

// engineWeightBytes is the device-resident weight footprint of a
// serving engine: per layer the united recurrent matrix U (4H x H,
// 16*H^2 bytes) and the united input matrix W (4H x H for the zoo's
// E = H models) plus the 4H united bias, and the classifier head is
// charged as one more H-row float block.
func engineWeightBytes(h, layers int) float64 {
	perLayer := float64(16*h*h+16*h*h) + float64(4*h)*f32
	head := float64(h*h) * f32
	return float64(layers)*perLayer + head
}

// EngineBuild is the cold-start cost of materializing a benchmark's
// serving engine on a device that has never built it: the driver
// JIT-compiles the kernel-variant family (host work, the dominant
// term) and streams the united weight matrices into device memory.
// The fleet layer charges this sequence into the latency of the first
// request window a cold shard serves — the §II-C queueing analysis
// extended with the cold/warm distinction the GKM-style engine cache
// makes explicit.
func (b *Builder) EngineBuild(h, layers int) []gpu.KernelSpec {
	if h < 1 || layers < 1 {
		tensor.Panicf("kernels: EngineBuild shape h=%d layers=%d", h, layers)
	}
	return []gpu.KernelSpec{
		{
			Name:       NameEngineJit,
			HostCycles: engineJitVariants * engineJitCyclesPerVariant,
		},
		{
			Name:      NameEngineUpload,
			DRAMBytes: engineWeightBytes(h, layers),
		},
	}
}

// EngineInstall is the warm-start counterpart of EngineBuild: the shard
// adopts a peer's already-built engine artifact (the GKM propagation
// idea — package the warm artifact, push it to peers, skip the JIT), so
// it pays only the artifact unpack and the weight upload.
func (b *Builder) EngineInstall(h, layers int) []gpu.KernelSpec {
	if h < 1 || layers < 1 {
		tensor.Panicf("kernels: EngineInstall shape h=%d layers=%d", h, layers)
	}
	return []gpu.KernelSpec{
		{
			Name:       NameEngineUpload,
			DRAMBytes:  engineWeightBytes(h, layers),
			HostCycles: engineInstallUnpackCycles,
		},
	}
}

// Relevance is the Algorithm 2 breakpoint-search work for one layer: the
// per-cell range arithmetic over all n cells. The per-row L1 norms D of
// the united U are input-independent and computed once per application
// offline (Fig. 10), so the runtime cost is only the O(H) overlap math per
// link against the freshly produced W*x pre-activations (in L2).
func (b *Builder) Relevance(h, n int) gpu.KernelSpec {
	return gpu.KernelSpec{
		Name:       NameRelevance,
		FLOPs:      20 * float64(h) * float64(n),
		L2HitBytes: 16 * float64(h) * float64(n),
		DRAMBytes:  4 * float64(n),
		Threads:    4 * h,
		HostCycles: float64(n) * 60, // threshold compare + sublayer bookkeeping
	}
}

// Predict is the accuracy-recovery step injecting the predicted context
// link at breakpoints (Fig. 10, step 6) — a vector copy per break.
func (b *Builder) Predict(h, breaks int) gpu.KernelSpec {
	return gpu.KernelSpec{
		Name:       NamePredict,
		FLOPs:      float64(h * breaks),
		DRAMBytes:  8 * float64(h*breaks),
		Threads:    h,
		HostCycles: float64(breaks) * 40,
	}
}
