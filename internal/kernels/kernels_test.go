package kernels

import (
	"testing"

	"mobilstm/internal/gpu"
)

func builder() *Builder { return NewBuilder(gpu.TegraX1()) }

func TestSgemvUTraffic(t *testing.T) {
	b := builder()
	h := 650
	k := b.SgemvU(h)
	// The united U is (4H x H) float32: 16*H^2 bytes, plus the input
	// vector and gate outputs.
	wantU := float64(16 * h * h)
	if k.DRAMBytes < wantU || k.DRAMBytes > wantU*1.01 {
		t.Fatalf("DRAM bytes %v, want ~%v", k.DRAMBytes, wantU)
	}
	if k.FLOPs != float64(8*h*h) {
		t.Fatalf("FLOPs %v", k.FLOPs)
	}
}

func TestSgemvUIsDRAMBound(t *testing.T) {
	// The §III observation: Sgemv saturates off-chip bandwidth while
	// shared memory stays lightly used (Fig. 6).
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	_, krs := sim.RunResults([]gpu.KernelSpec{builder().SgemvU(512)})
	k := krs[0]
	if k.DRAMUtil < 0.9 {
		t.Fatalf("DRAM util %v, want > 0.9", k.DRAMUtil)
	}
	if k.SharedUtil > 0.4 {
		t.Fatalf("shared util %v, want light (< 0.4)", k.SharedUtil)
	}
}

func TestSgemmTissueSharedTrafficGrowsLinearly(t *testing.T) {
	b := builder()
	k2, _ := b.SgemmTissue(256, 2)
	k4, _ := b.SgemmTissue(256, 4)
	if k4.SharedBytes < 1.9*k2.SharedBytes {
		t.Fatalf("shared traffic not ~linear in T: %v vs %v", k2.SharedBytes, k4.SharedBytes)
	}
	// DRAM traffic stays ~flat (U loaded once per tissue).
	if k4.DRAMBytes > 1.1*k2.DRAMBytes {
		t.Fatalf("DRAM traffic grew with T: %v vs %v", k2.DRAMBytes, k4.DRAMBytes)
	}
}

func TestSgemmTissueReconfiguresAboveMTS(t *testing.T) {
	b := builder()
	reconfAt := 0
	for tt := 1; tt <= 12; tt++ {
		if _, re := b.SgemmTissue(512, tt); re {
			reconfAt = tt
			break
		}
	}
	// The TX1 shared/DRAM roofline crossover sits near T=5-6 (Fig. 9).
	if reconfAt < 4 || reconfAt > 8 {
		t.Fatalf("reconfiguration at T=%d, want near the paper's MTS ~5-6", reconfAt)
	}
	// Reconfigured kernels must be slower per tissue than the last
	// unconfigured size (the Fig. 9 droop).
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	kGood, _ := b.SgemmTissue(512, reconfAt-1)
	kBad, _ := b.SgemmTissue(512, reconfAt)
	rGood := sim.Run([]gpu.KernelSpec{kGood})
	rBad := sim.Run([]gpu.KernelSpec{kBad})
	perCellGood := rGood.Cycles / float64(reconfAt-1)
	perCellBad := rBad.Cycles / float64(reconfAt)
	if perCellBad < perCellGood {
		t.Fatalf("reconfigured tissue cheaper per cell: %v vs %v", perCellBad, perCellGood)
	}
}

func TestSgemvUficSkipsSaveTraffic(t *testing.T) {
	b := builder()
	full := b.SgemvUfic(512, 0, DRSHardware)
	half := b.SgemvUfic(512, 3*512/2, DRSHardware)
	if half.DRAMBytes > 0.6*full.DRAMBytes {
		t.Fatalf("hardware DRS saved too little: %v vs %v", half.DRAMBytes, full.DRAMBytes)
	}
	if half.FLOPs >= full.FLOPs {
		t.Fatal("hardware DRS did not reduce FLOPs")
	}
}

func TestSoftwareDRSBarelyWins(t *testing.T) {
	// The Fig. 16 result: software DRS ~1.07x, hardware much better.
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	b := builder()
	h := 512
	skip := 3 * h / 2 // 50% of U_{f,i,c} rows
	dense := sim.Run([]gpu.KernelSpec{b.SgemvUfic(h, 0, DRSHardware)})
	sw := sim.Run([]gpu.KernelSpec{b.SgemvUfic(h, skip, DRSSoftware)})
	hw := sim.Run([]gpu.KernelSpec{b.SgemvUfic(h, skip, DRSHardware)})
	swGain := dense.Cycles / sw.Cycles
	hwGain := dense.Cycles / hw.Cycles
	if swGain < 1.0 || swGain > 1.35 {
		t.Fatalf("software DRS gain %v, want small (~1.1)", swGain)
	}
	if hwGain < 1.35 {
		t.Fatalf("hardware DRS gain %v, want substantial", hwGain)
	}
	if hwGain <= swGain {
		t.Fatal("hardware DRS not better than software")
	}
}

func TestSgemvUficClampsSkip(t *testing.T) {
	b := builder()
	k := b.SgemvUfic(64, 10000, DRSHardware)
	if k.FLOPs != 0 {
		t.Fatalf("over-skip FLOPs %v", k.FLOPs)
	}
	k2 := b.SgemvUfic(64, -5, DRSHardware)
	if k2.FLOPs != b.SgemvUfic(64, 0, DRSHardware).FLOPs {
		t.Fatal("negative skip not clamped")
	}
}

func TestPrunedSgemvSlowerDespiteFewerBytes(t *testing.T) {
	// The Fig. 16 zero-pruning result: ~37% fewer bytes moved yet ~35%
	// slower than dense.
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	b := builder()
	h := 512
	dense := sim.Run([]gpu.KernelSpec{b.SgemvU(h)})
	pruned := sim.Run([]gpu.KernelSpec{b.PrunedSgemv(h, 0.315)})
	byteRatio := pruned.DRAMBytes / dense.DRAMBytes
	if byteRatio > 0.75 {
		t.Fatalf("pruned byte ratio %v, want ~0.63", byteRatio)
	}
	slowdown := pruned.Cycles / dense.Cycles
	if slowdown < 1.15 || slowdown > 1.9 {
		t.Fatalf("pruned slowdown %v, want ~1.3-1.6 (the paper's -35%%)", slowdown)
	}
}

func TestPrunedSgemvDensityClamped(t *testing.T) {
	b := builder()
	if k := b.PrunedSgemv(64, -1); k.FLOPs != 0 {
		t.Fatal("negative density not clamped")
	}
	full := b.PrunedSgemv(64, 1)
	over := b.PrunedSgemv(64, 2)
	if full.FLOPs != over.FLOPs {
		t.Fatal("density > 1 not clamped")
	}
}

func TestLstmEWScalesWithTissue(t *testing.T) {
	b := builder()
	k1 := b.LstmEW(256, 1)
	k4 := b.LstmEW(256, 4)
	if k4.FLOPs != 4*k1.FLOPs {
		t.Fatalf("EW FLOPs not linear in tissue size")
	}
}

func TestLstmEWPartial(t *testing.T) {
	b := builder()
	full := b.LstmEW(256, 1)
	quarter := b.LstmEWPartial(256, 1, 1)
	if quarter.FLOPs*4 != full.FLOPs {
		t.Fatalf("partial EW: %v vs full %v", quarter.FLOPs, full.FLOPs)
	}
}

func TestDRSKernelCheap(t *testing.T) {
	// The threshold scan must be negligible next to the gemv it gates.
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	b := builder()
	drs := sim.Run([]gpu.KernelSpec{b.DRS(650, 300)})
	gemv := sim.Run([]gpu.KernelSpec{b.SgemvUfic(650, 0, DRSHardware)})
	if drs.Cycles > 0.15*gemv.Cycles {
		t.Fatalf("DRS kernel %v cycles vs gemv %v — too expensive", drs.Cycles, gemv.Cycles)
	}
}

func TestRelevanceAndPredictOverheadSmall(t *testing.T) {
	// §VI-F: inter-cell runtime operations cost ~2% of the layer.
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	b := builder()
	h, n := 650, 200
	layer := []gpu.KernelSpec{b.SgemmWx(h, h, n)}
	for i := 0; i < n; i++ {
		layer = append(layer, b.SgemvU(h), b.LstmEW(h, 1))
	}
	base := sim.Run(layer)
	over := sim.Run([]gpu.KernelSpec{b.Relevance(h, n), b.Predict(h, 20)})
	if frac := over.Cycles / base.Cycles; frac > 0.05 {
		t.Fatalf("inter-cell overhead fraction %v, want < 5%%", frac)
	}
}

func TestSgemmWxComputeBound(t *testing.T) {
	// The per-layer Sgemm has N-fold weight reuse: it must not be
	// DRAM-bound (that is the whole reason cuDNN batches it).
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	_, krs := sim.RunResults([]gpu.KernelSpec{builder().SgemmWx(650, 650, 200)})
	k := krs[0]
	if k.DRAMCycles > k.ComputeCycles {
		t.Fatalf("Sgemm DRAM-bound: dram %v vs compute %v", k.DRAMCycles, k.ComputeCycles)
	}
}

func TestEngineBuildDominatesInstall(t *testing.T) {
	// The cold/warm gap the fleet's engine cache exists to exploit: a
	// cold build (JIT the kernel-variant family + weight upload) must
	// cost far more than adopting a peer's warm artifact (unpack +
	// upload only) — otherwise pre-warm propagation would be pointless.
	sim := gpu.NewSimulator(gpu.TegraX1())
	b := builder()
	cold := sim.Run(b.EngineBuild(256, 3)).Seconds
	warm := sim.Run(b.EngineInstall(256, 3)).Seconds
	if cold <= 0 || warm <= 0 {
		t.Fatalf("non-positive costs: cold %v warm %v", cold, warm)
	}
	if cold < 10*warm {
		t.Fatalf("cold build %.3fs not >> warm install %.3fs", cold, warm)
	}
}

func TestEngineCostsScaleWithModel(t *testing.T) {
	// The upload term tracks the weight footprint, so bigger models
	// must cost strictly more to materialize on both paths.
	sim := gpu.NewSimulator(gpu.TegraX1())
	b := builder()
	smallB := sim.Run(b.EngineBuild(128, 1)).Seconds
	bigB := sim.Run(b.EngineBuild(650, 3)).Seconds
	if bigB <= smallB {
		t.Fatalf("build cost not monotone: h=128/L=1 %.4fs vs h=650/L=3 %.4fs", smallB, bigB)
	}
	smallI := sim.Run(b.EngineInstall(128, 1)).Seconds
	bigI := sim.Run(b.EngineInstall(650, 3)).Seconds
	if bigI <= smallI {
		t.Fatalf("install cost not monotone: %.4fs vs %.4fs", smallI, bigI)
	}
}
