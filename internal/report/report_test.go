package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "A", "BB")
	tab.AddRow("x", 1)
	tab.AddRow(2.5, "long cell")
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "long cell") {
		t.Fatal("missing cell")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	// Columns aligned: header and rows start their second column at the
	// same offset.
	hdr := lines[1]
	if !strings.HasPrefix(hdr, "A") {
		t.Fatalf("header %q", hdr)
	}
}

func TestTableAddRowFormats(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(float64(1.23456))
	tab.AddRow(float32(2.5))
	tab.AddRow(42)
	out := tab.String()
	if !strings.Contains(out, "1.235") || !strings.Contains(out, "2.500") || !strings.Contains(out, "42") {
		t.Fatalf("formatting: %q", out)
	}
}

func TestPctAndX(t *testing.T) {
	if Pct(0.4723) != "47.23%" {
		t.Fatalf("Pct: %q", Pct(0.4723))
	}
	if X(2.54) != "2.54x" {
		t.Fatalf("X: %q", X(2.54))
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("F", "x", "y")
	f.Add("s1", []float64{1, 2, 3}, []float64{1, 4, 9})
	out := f.String()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "(2, 4.000)") {
		t.Fatalf("figure: %q", out)
	}
}

func TestSpark(t *testing.T) {
	s := spark([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("spark length: %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("spark extremes: %q", s)
	}
	if spark(nil) != "" {
		t.Fatal("empty spark")
	}
	flat := []rune(spark([]float64{2, 2}))
	if flat[0] != flat[1] {
		t.Fatal("flat series should render uniformly")
	}
}
