// Package report renders the reproduction's tables and figure series as
// aligned text, so every benchmark target prints the same rows the paper
// reports.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of pre-formatted cells.
func (t *Table) AddRowf(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.WriteTo(&sb) //nolint:errcheck // strings.Builder cannot fail
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// X formats a ratio as a speedup factor.
func X(f float64) string { return fmt.Sprintf("%.2fx", f) }

// Series is a named sequence of (x, y) points — one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// NewFigure creates a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends one series.
func (f *Figure) Add(name string, xs, ys []float64) {
	f.Series = append(f.Series, Series{Name: name, X: xs, Y: ys})
}

// String renders each series as "name: (x, y) (x, y) ..." rows plus a
// compact sparkline for shape inspection.
func (f *Figure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  [x: %s, y: %s]\n", f.Title, f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "  %-22s", s.Name)
		for i := range s.X {
			fmt.Fprintf(&sb, " (%g, %.3f)", s.X[i], s.Y[i])
		}
		fmt.Fprintf(&sb, "   %s\n", spark(s.Y))
	}
	return sb.String()
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a unicode sparkline (min-max normalized).
func spark(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var sb strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}
