package report

import (
	"strings"
	"testing"
)

func TestTimelineDominantKernel(t *testing.T) {
	tl := NewTimeline("layer")
	tl.Width = 10
	// One giant kernel and one tiny one: the bar should be mostly 'A'.
	for i := 0; i < 5; i++ {
		tl.Add("sgemv", 100)
		tl.Add("ew", 1)
	}
	out := tl.String()
	if !strings.Contains(out, "A = sgemv") {
		t.Fatalf("legend missing dominant kernel:\n%s", out)
	}
	bar := strings.Split(out, "\n")[1]
	if strings.Count(bar, "A") < 9 {
		t.Fatalf("dominant kernel underrepresented: %q", bar)
	}
}

func TestTimelineProportions(t *testing.T) {
	tl := NewTimeline("")
	tl.Width = 20
	tl.Add("a", 50)
	tl.Add("b", 50)
	out := tl.String()
	bar := strings.Split(out, "\n")[0]
	if strings.Count(bar, "A") != 10 || strings.Count(bar, "B") != 10 {
		t.Fatalf("50/50 split misrendered: %q", bar)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline("x")
	if !strings.Contains(tl.String(), "empty") {
		t.Fatal("empty timeline not flagged")
	}
	tl.Add("a", 0) // non-positive spans ignored
	if !strings.Contains(tl.String(), "empty") {
		t.Fatal("zero-cycle span accepted")
	}
}

func TestTimelineLegendShares(t *testing.T) {
	tl := NewTimeline("")
	tl.Add("x", 75)
	tl.Add("y", 25)
	out := tl.String()
	if !strings.Contains(out, "75.00%") || !strings.Contains(out, "25.00%") {
		t.Fatalf("legend percentages wrong:\n%s", out)
	}
}

func TestTimelineManyKernels(t *testing.T) {
	tl := NewTimeline("")
	for i := 0; i < 30; i++ {
		tl.Add(strings.Repeat("k", i+1), float64(i+1))
	}
	out := tl.String()
	if !strings.Contains(out, "+") {
		t.Fatal("overflow glyph missing for >26 kernels")
	}
}

func TestTimelineDeterministic(t *testing.T) {
	mk := func() string {
		tl := NewTimeline("t")
		tl.Add("a", 10)
		tl.Add("b", 10) // tie in totals: glyphs must assign stably
		return tl.String()
	}
	if mk() != mk() {
		t.Fatal("timeline not deterministic")
	}
}
