package report

import (
	"fmt"
	"sort"
	"strings"
)

// Span is one segment of a serial execution timeline.
type Span struct {
	Name   string
	Cycles float64
}

// Timeline renders a serial kernel-launch sequence as a proportional
// single-line chart plus a legend: each column of the bar is the kernel
// that dominates that slice of the execution window. It makes the
// paper's "Sgemv dominates" observation visible at a glance and shows
// how the optimized flows change the mix.
type Timeline struct {
	Title string
	Width int
	Spans []Span
}

// NewTimeline creates a timeline chart (default width 72 columns).
func NewTimeline(title string) *Timeline {
	return &Timeline{Title: title, Width: 72}
}

// Add appends one executed span.
func (tl *Timeline) Add(name string, cycles float64) {
	if cycles <= 0 {
		return
	}
	tl.Spans = append(tl.Spans, Span{Name: name, Cycles: cycles})
}

// letters assigns a stable glyph per kernel name, by total cycles
// descending (the biggest consumer gets 'A').
func (tl *Timeline) letters() (map[string]byte, []string) {
	totals := map[string]float64{}
	for _, s := range tl.Spans {
		totals[s.Name] += s.Cycles
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]] != totals[names[j]] {
			return totals[names[i]] > totals[names[j]]
		}
		return names[i] < names[j]
	})
	glyphs := map[string]byte{}
	for i, n := range names {
		if i < 26 {
			glyphs[n] = byte('A' + i)
		} else {
			glyphs[n] = '+'
		}
	}
	return glyphs, names
}

// String renders the chart.
func (tl *Timeline) String() string {
	if len(tl.Spans) == 0 {
		return tl.Title + "\n(empty timeline)\n"
	}
	width := tl.Width
	if width < 8 {
		width = 8
	}
	var total float64
	for _, s := range tl.Spans {
		total += s.Cycles
	}
	glyphs, names := tl.letters()

	// For each output column, the dominant span inside its time window.
	bar := make([]byte, width)
	perCol := total / float64(width)
	spanIdx := 0
	consumed := 0.0 // cycles consumed from Spans[spanIdx]
	for col := 0; col < width; col++ {
		need := perCol
		weights := map[string]float64{}
		for need > 0 && spanIdx < len(tl.Spans) {
			s := tl.Spans[spanIdx]
			avail := s.Cycles - consumed
			take := avail
			if take > need {
				take = need
			}
			weights[s.Name] += take
			need -= take
			consumed += take
			if consumed >= s.Cycles {
				spanIdx++
				consumed = 0
			}
		}
		bestName, bestW := "", -1.0
		for n, w := range weights {
			if w > bestW || (w == bestW && n < bestName) {
				bestName, bestW = n, w
			}
		}
		if bestName == "" {
			bar[col] = '.'
			continue
		}
		bar[col] = glyphs[bestName]
	}

	var sb strings.Builder
	if tl.Title != "" {
		sb.WriteString(tl.Title)
		sb.WriteByte('\n')
	}
	sb.WriteString("|")
	sb.Write(bar)
	sb.WriteString("|\n")
	totals := map[string]float64{}
	for _, s := range tl.Spans {
		totals[s.Name] += s.Cycles
	}
	for _, n := range names {
		fmt.Fprintf(&sb, "  %c = %-16s %6.2f%%\n", glyphs[n], n, totals[n]/total*100)
	}
	return sb.String()
}
