package thresholds

import "testing"

// The sweep geometry is part of the paper's reported tables; a silent
// change to any of these shifts every regenerated figure.
func TestSweepGeometry(t *testing.T) {
	if Sets != 11 {
		t.Fatalf("Sets = %d, want 11 (§VI-C sweep: sets 0..10)", Sets)
	}
	if AlphaIntraMax != 0.45 {
		t.Fatalf("AlphaIntraMax = %v, want 0.45", AlphaIntraMax)
	}
	// Set i walks i/(Sets-1) of the intra threshold; the top set must
	// land exactly on the max.
	top := AlphaIntraMax * (float64(Sets-1) / float64(Sets-1))
	if top != AlphaIntraMax {
		t.Fatalf("sweep walk does not reach AlphaIntraMax: %v", top)
	}
}

func TestCalibrationFactors(t *testing.T) {
	if TieBreakUp <= 1 || TieBreakUp >= 1.001 {
		t.Fatalf("TieBreakUp = %v, want a hair above 1", TieBreakUp)
	}
	if CalibOvershoot <= TieBreakUp {
		t.Fatalf("CalibOvershoot (%v) must overshoot more than TieBreakUp (%v)",
			CalibOvershoot, TieBreakUp)
	}
	if GRUQuantileDepth <= 0 || GRUQuantileDepth > 1 {
		t.Fatalf("GRUQuantileDepth = %v, want a quantile in (0, 1]", GRUQuantileDepth)
	}
	if UserAccuracyFloor != 0.98 {
		t.Fatalf("UserAccuracyFloor = %v, want 0.98 (2%% imperceptible loss)", UserAccuracyFloor)
	}
}
