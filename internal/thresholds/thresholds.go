// Package thresholds is the single home of the paper's threshold
// constants: the (alpha_inter, alpha_intra) sweep geometry of §VI-C and
// the calibration fudge factors shared by the LSTM and GRU engines.
//
// Scattering these literals across packages is exactly the failure mode
// the threshconst analyzer (cmd/mobilstm-lint) guards against: the DRS
// accuracy numbers at each threshold set are only reproducible if every
// consumer compares against bit-identical constants. New threshold
// constants go here, not inline.
package thresholds

const (
	// AlphaIntraMax is the upper limit of the DRS near-zero threshold:
	// with o_t[j] < 0.45 the corresponding h_t element is bounded by
	// 0.45 — well past what "trivial contribution" can mean, which is
	// the point: the top threshold sets are the paper's "most
	// aggressive case with the maximal performance boost" where
	// accuracy visibly degrades (Fig. 19). Threshold set i uses i/10
	// of it.
	AlphaIntraMax = 0.45

	// Sets is the number of (alpha_inter, alpha_intra) pairs in the
	// paper's sensitivity sweep: set 0 is the exact baseline, set 10
	// the most aggressive (§VI-C).
	Sets = 11

	// UserAccuracyFloor is the user-imperceptible accuracy bound: the
	// accuracy-oriented (AO) threshold set is the most aggressive one
	// whose relative accuracy stays at or above it (98%, i.e. a 2%
	// loss; §VI-C).
	UserAccuracyFloor = 0.98

	// TieBreakUp nudges a calibrated threshold just above an observed
	// relevance value so that the observation itself falls below the
	// threshold. Both engines use the same factor so quantile walks
	// stay bit-reproducible across LSTM and GRU.
	TieBreakUp = 1.0000001

	// CalibOvershoot is the fallback alpha_inter upper limit when even
	// full division cannot reach the minimal tissue count (short
	// layers): just above the largest observed relevance.
	CalibOvershoot = 1.01

	// CalibAlphaIntra is the reference DRS operating point used purely
	// for corpus calibration in internal/model: just below the mid
	// threshold, so accepted sequences have margins that survive
	// realistic approximation.
	CalibAlphaIntra = 0.2

	// CalibInterQuantile is the relevance quantile defining the LSTM
	// corpus-calibration alpha_inter (division at the 35th percentile).
	CalibInterQuantile = 0.35

	// GRUCalibAlphaIntra and GRUCalibInterQuantile are the GRU
	// extension's corpus-calibration operating point (internal/gru);
	// shallower than the LSTM's because carry-dominated GRU units give
	// fewer weak links.
	GRUCalibAlphaIntra    = 0.18
	GRUCalibInterQuantile = 0.2

	// GRUQuantileDepth caps the GRU engine's relevance-quantile walk at
	// the 30th percentile at set 10: carry-dominated units give GRU
	// layers fewer genuinely weak links than LSTM layers, so the
	// extension leans on DRS instead (see internal/gru).
	GRUQuantileDepth = 0.3
)
