package core

import (
	"sync"
	"testing"

	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/sched"
)

// tinyProfile keeps engine tests fast while exercising the full pipeline.
func tinyProfile() model.Profile {
	return model.Profile{Name: "tiny", HiddenCap: 64, LengthCap: 16,
		AccSamples: 10, PredictorSamples: 3, StatSamples: 2}
}

var (
	engOnce sync.Once
	eng     *Engine
)

// testEngine builds one shared MR engine (cheapest benchmark).
func testEngine(t *testing.T) *Engine {
	t.Helper()
	engOnce.Do(func() {
		b, _ := model.ByName("MR")
		eng = NewEngine(b, tinyProfile(), gpu.TegraX1())
	})
	return eng
}

func TestOfflineCalibration(t *testing.T) {
	e := testEngine(t)
	if e.MTS < 2 || e.MTS > 10 {
		t.Fatalf("MTS %d out of plausible range", e.MTS)
	}
	if e.AlphaInterMax <= 0 {
		t.Fatal("alpha_inter upper limit not calibrated")
	}
	if len(e.Predictors) != e.B.Layers {
		t.Fatalf("%d predictors for %d layers", len(e.Predictors), e.B.Layers)
	}
}

func TestThresholdsMonotone(t *testing.T) {
	e := testEngine(t)
	prevI, prevA := -1.0, -1.0
	for set := 0; set < ThresholdSets; set++ {
		ai, aa := e.Thresholds(set)
		if ai < prevI || aa < prevA {
			t.Fatalf("thresholds not monotone at set %d: (%v,%v) after (%v,%v)", set, ai, aa, prevI, prevA)
		}
		prevI, prevA = ai, aa
	}
	if ai, aa := e.Thresholds(0); ai != 0 || aa != 0 {
		t.Fatalf("set 0 not the exact baseline: %v, %v", ai, aa)
	}
	// Clamping.
	loI, loA := e.Thresholds(-5)
	if loI != 0 || loA != 0 {
		t.Fatal("negative set not clamped")
	}
	hiI, _ := e.Thresholds(99)
	wantI, _ := e.Thresholds(10)
	if hiI != wantI {
		t.Fatal("overflow set not clamped")
	}
}

func TestBaselineCachedAndExact(t *testing.T) {
	e := testEngine(t)
	b1 := e.Baseline()
	b2 := e.Baseline()
	if b1 != b2 {
		t.Fatal("baseline not cached")
	}
	if b1.Speedup != 1 || b1.Accuracy != 1 {
		t.Fatalf("baseline outcome: %+v", b1)
	}
	if b3 := e.EvaluateSet(sched.Combined, 0); b3 != b1 {
		t.Fatal("set 0 should return the baseline outcome")
	}
}

func TestEvaluateCombinedImproves(t *testing.T) {
	e := testEngine(t)
	o := e.EvaluateSet(sched.Combined, 10)
	if o.Speedup <= 1 {
		t.Fatalf("combined at max thresholds: speedup %v", o.Speedup)
	}
	if o.EnergySaving <= 0 {
		t.Fatalf("combined saving %v", o.EnergySaving)
	}
	if o.Accuracy < 0.5 {
		t.Fatalf("combined accuracy %v implausibly low", o.Accuracy)
	}
	if len(o.Stats) != e.B.Layers {
		t.Fatalf("stats per layer: %d", len(o.Stats))
	}
}

func TestInterStatsHaveNoSkips(t *testing.T) {
	e := testEngine(t)
	o := e.EvaluateSet(sched.Inter, 8)
	for _, st := range o.Stats {
		if st.SkipFrac != 0 {
			t.Fatal("inter-only mode reported skipped rows")
		}
	}
	o2 := e.EvaluateSet(sched.Intra, 8)
	for _, st := range o2.Stats {
		if st.BreakRate != 0 {
			t.Fatal("intra-only mode reported breakpoints")
		}
	}
}

func TestZeroPruneOutcome(t *testing.T) {
	e := testEngine(t)
	o := e.EvaluateZeroPrune(0.315)
	if o.Speedup >= 1 {
		t.Fatalf("zero-pruning should slow down (got %vx)", o.Speedup)
	}
	if o.PruneDensity != 0.315 {
		t.Fatalf("density: %v", o.PruneDensity)
	}
	// Fewer bytes moved than baseline despite being slower.
	if o.Result.DRAMBytes >= e.Baseline().Result.DRAMBytes {
		t.Fatal("pruning did not reduce traffic")
	}
}

func TestAOAndBPASelectors(t *testing.T) {
	outs := []*Outcome{
		{Speedup: 1.0, Accuracy: 1.0},
		{Speedup: 1.5, Accuracy: 0.99},
		{Speedup: 2.0, Accuracy: 0.97},
		{Speedup: 2.4, Accuracy: 0.90},
	}
	if ao := AOSet(outs); ao != 1 {
		t.Fatalf("AO = %d", ao)
	}
	if bpa := BPASet(outs); bpa != 3 {
		t.Fatalf("BPA = %d (2.4*0.90=2.16 is max)", bpa)
	}
}

func TestOutcomeString(t *testing.T) {
	o := &Outcome{Mode: sched.Combined, Speedup: 2.5, EnergySaving: 0.47, Accuracy: 0.98}
	if s := o.String(); s == "" {
		t.Fatal("empty outcome string")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	e := testEngine(t)
	a := e.EvaluateSet(sched.Combined, 6)
	b := e.EvaluateSet(sched.Combined, 6)
	if a.Speedup != b.Speedup || a.Accuracy != b.Accuracy {
		t.Fatalf("evaluation not deterministic: %+v vs %+v", a, b)
	}
}

func TestAverageResults(t *testing.T) {
	cfg := gpu.TegraX1()
	r1 := &gpu.Result{Cfg: cfg, Cycles: 100, DRAMBytes: 10, Launches: 2}
	r2 := &gpu.Result{Cfg: cfg, Cycles: 200, DRAMBytes: 30, Launches: 4}
	avg := averageResults([]*gpu.Result{r1, r2})
	if avg.Cycles != 150 || avg.DRAMBytes != 20 || avg.Launches != 3 {
		t.Fatalf("average: %+v", avg)
	}
	one := &gpu.Result{Cfg: cfg, Cycles: 7}
	if averageResults([]*gpu.Result{one}) != one {
		t.Fatal("single replica should pass through")
	}
}

// TestBaselineConcurrent is the -race regression test for the lazy
// baseline cache: before the sync.Once guard, concurrent Baseline()
// calls on a shared engine raced on the cache field (the exact bug the
// serving loop's shared-engine registry would have hit). A fresh
// engine is built here so the cache fill itself runs under contention.
func TestBaselineConcurrent(t *testing.T) {
	b, _ := model.ByName("MR")
	e := NewEngine(b, tinyProfile(), gpu.TegraX1())
	var wg sync.WaitGroup
	results := make([]*Outcome, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				results[i] = e.Baseline()
			} else {
				out, err := e.EvaluateSetE(sched.Combined, 4)
				if err != nil {
					t.Errorf("EvaluateSetE: %v", err)
					return
				}
				if out.Speedup <= 0 {
					t.Errorf("speedup %v", out.Speedup)
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < len(results); i += 2 {
		if results[i] == nil || results[i] != results[0] {
			t.Fatalf("Baseline() not a shared cached outcome at %d", i)
		}
	}
}

// TestEvaluateSetE: the error-returning wrapper is identical to
// EvaluateSet on the happy path (the error leg is pinned down by the
// lstm RunE tests, where Panicf validation genuinely fires).
func TestEvaluateSetE(t *testing.T) {
	e := testEngine(t)
	out, err := e.EvaluateSetE(sched.Combined, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := e.EvaluateSet(sched.Combined, 6)
	if out.Speedup != want.Speedup || out.Accuracy != want.Accuracy {
		t.Fatalf("EvaluateSetE %+v != EvaluateSet %+v", out, want)
	}
}
