// Package core is the paper's primary contribution assembled into one
// engine: the memory-friendly LSTM execution system for mobile GPUs. An
// Engine owns a benchmark's synthetic model, the offline calibration
// artifacts of Fig. 10 (MTS, threshold upper limits, predicted context
// links), and evaluates any execution mode for speed, energy and accuracy.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mobilstm/internal/accuracy"
	"mobilstm/internal/energy"
	"mobilstm/internal/gpu"
	"mobilstm/internal/intercell"
	"mobilstm/internal/intracell"
	"mobilstm/internal/lstm"
	"mobilstm/internal/model"
	"mobilstm/internal/rng"
	"mobilstm/internal/sched"
	"mobilstm/internal/stats"
	"mobilstm/internal/tensor"
	"mobilstm/internal/thresholds"
)

// AlphaIntraMax is the upper limit of the DRS near-zero threshold; see
// internal/thresholds for the rationale. Re-exported because this is the
// package consumers build sweeps against.
const AlphaIntraMax = thresholds.AlphaIntraMax

// ThresholdSets is the number of (alpha_inter, alpha_intra) pairs in the
// paper's sensitivity sweep: set 0 is the exact baseline, set 10 the most
// aggressive (§VI-C).
const ThresholdSets = thresholds.Sets

// Engine evaluates the memory-friendly LSTM system on one benchmark.
type Engine struct {
	Cfg     gpu.Config
	EnergyP energy.Params
	B       model.Benchmark
	Inst    *model.Instance

	// Offline artifacts (Fig. 10 steps 1-4).
	MTS           int
	AlphaInterMax float64
	Predictors    []intercell.Predictor

	// relDist is the sorted pooled Algorithm 2 relevance distribution
	// from the offline profiling runs; qMax is the quantile whose
	// threshold reaches the minimal tissue count. Threshold sets walk
	// quantiles of this distribution so every step adds breakpoints.
	relDist []float64
	qMax    float64

	sim *gpu.Simulator

	// baseline is the cached unoptimized evaluation. The sync.Once guard
	// makes the lazy fill safe when one engine is shared by concurrent
	// serve workers; everything else on the engine is immutable after
	// NewEngine.
	baselineOnce sync.Once
	baseline     *Outcome
}

// NewEngine builds the benchmark instance and performs the offline
// calibration: MTS discovery (step 1), the alpha_inter upper limit that
// reaches the minimal tissue count N_min (step 2), and the Eq. 6
// predicted-link collection (step 4).
func NewEngine(b model.Benchmark, prof model.Profile, cfg gpu.Config) *Engine {
	e := &Engine{Cfg: cfg, EnergyP: energy.TegraX1(), B: b}
	e.Inst = model.Build(b, prof)
	e.sim = gpu.NewSimulator(cfg)
	e.MTS = intercell.FindMTS(cfg, b.Hidden, 16)
	e.Predictors = lstm.CollectPredictors(e.Inst.Net, e.Inst.PredictorSeqs())
	e.AlphaInterMax = e.calibrateAlphaInter()
	return e
}

// calibrateAlphaInter implements Fig. 10 step 2: find the smallest
// relevance threshold whose division reaches the minimal tissue count
// N_min = ceil(N/MTS) per layer; that value is the upper limit of
// alpha_inter. If even full division cannot reach N_min (short layers),
// the limit is just above the largest observed relevance.
func (e *Engine) calibrateAlphaInter() float64 {
	rels := e.collectRelevance()
	if len(rels) == 0 {
		return 0
	}
	sort.Float64s(rels)
	e.relDist = rels
	nmin := intercell.MinTissues(e.B.Length, e.MTS)
	// Walk threshold candidates up the observed distribution until the
	// synthesized full-shape division reaches N_min tissues per layer.
	for q := 5; q <= 100; q += 5 {
		rate := float64(q) / 100
		if tissueCountAtRate(e.B.Length, rate, e.MTS) <= nmin {
			e.qMax = rate
			// The repo-wide quantile convention sorted[int(q*(n-1))]
			// (stats.Quantile), the same index rule Thresholds() walks —
			// an ad-hoc int(rate*n)-1 here used to disagree by one index
			// for some (rate, n), making set 10 miss the calibrated limit.
			return stats.Quantile(rels, rate) * thresholds.TieBreakUp // break ties upward
		}
	}
	e.qMax = 1
	return rels[len(rels)-1] * thresholds.CalibOvershoot
}

// collectRelevance gathers Algorithm 2 values across the structural
// sample set and all layers.
func (e *Engine) collectRelevance() []float64 {
	var out []float64
	for _, xs := range e.Inst.StatSeqs() {
		tr := &lstm.Trace{}
		opt := lstm.RunOptions{
			Inter: true, AlphaInter: 0, MTS: e.MTS,
			Predictors: e.Predictors, Trace: tr,
		}
		e.Inst.Net.Run(xs, opt)
		for _, lt := range tr.Layers {
			out = append(out, lt.Relevance...)
		}
	}
	return out
}

// tissueCountAtRate synthesizes a division at the given break rate and
// returns the aligned tissue count (deterministic seed).
func tissueCountAtRate(n int, rate float64, mts int) int {
	r := rng.New(uint64(n)*1315423911 + uint64(rate*1e6))
	var breaks []int
	for t := 1; t < n; t++ {
		if r.Bernoulli(rate) {
			breaks = append(breaks, t)
		}
	}
	subs := intercell.Sublayers(n, breaks)
	return len(intercell.AlignTissues(subs, mts))
}

// Thresholds returns threshold set i (0..10): a walk from the exact
// baseline (set 0) to the calibrated upper limits (set 10). The DRS
// threshold walks linearly; the relevance threshold walks quantiles of
// the offline-profiled relevance distribution, so each step breaks
// additional links — the observed distribution is heavily concentrated
// and a linear walk would leave most sets inert.
func (e *Engine) Thresholds(set int) (alphaInter, alphaIntra float64) {
	if set < 0 {
		set = 0
	}
	if set >= ThresholdSets {
		set = ThresholdSets - 1
	}
	f := float64(set) / float64(ThresholdSets-1)
	alphaIntra = AlphaIntraMax * f
	if set == 0 || len(e.relDist) == 0 {
		return 0, alphaIntra
	}
	alphaInter = stats.Quantile(e.relDist, f*e.qMax) * thresholds.TieBreakUp
	if alphaInter > e.AlphaInterMax {
		alphaInter = e.AlphaInterMax
	}
	return alphaInter, alphaIntra
}

// Structure measures the per-layer structural statistics (break rate,
// skip fraction) of the numeric pipeline under the thresholds — the
// information the paper's PyTorch stage exports to the board replay.
func (e *Engine) Structure(mode sched.Mode, alphaInter, alphaIntra float64) []sched.LayerStats {
	stats := make([]sched.LayerStats, e.B.Layers)
	if mode == sched.Baseline || mode == sched.ZeroPrune {
		return stats
	}
	opt := e.runOptions(mode, alphaInter, alphaIntra)
	links := make([]float64, e.B.Layers)
	breaks := make([]float64, e.B.Layers)
	skipSum := make([]float64, e.B.Layers)
	skipUnits := make([]float64, e.B.Layers)
	for _, xs := range e.Inst.StatSeqs() {
		tr := &lstm.Trace{}
		o := opt
		o.Trace = tr
		e.Inst.Net.Run(xs, o)
		for _, lt := range tr.Layers {
			links[lt.Layer] += float64(len(lt.Relevance))
			breaks[lt.Layer] += float64(len(lt.Breakpoints))
			for _, c := range lt.SkipCounts {
				skipSum[lt.Layer] += float64(c)
				skipUnits[lt.Layer]++
			}
		}
	}
	hidden := float64(e.Inst.Hidden)
	for l := range stats {
		if links[l] > 0 {
			stats[l].BreakRate = breaks[l] / links[l]
		}
		if skipUnits[l] > 0 {
			stats[l].SkipFrac = skipSum[l] / (skipUnits[l] * hidden)
		}
	}
	return stats
}

// runOptions maps a mode and thresholds to numeric execution options.
func (e *Engine) runOptions(mode sched.Mode, alphaInter, alphaIntra float64) lstm.RunOptions {
	opt := lstm.RunOptions{}
	switch mode {
	case sched.Inter:
		opt.Inter, opt.AlphaInter = true, alphaInter
	case sched.Intra, sched.IntraSW:
		opt.Intra, opt.AlphaIntra = true, alphaIntra
	case sched.Combined:
		opt.Inter, opt.AlphaInter = true, alphaInter
		opt.Intra, opt.AlphaIntra = true, alphaIntra
	}
	if opt.Inter {
		opt.MTS = e.MTS
		opt.Predictors = e.Predictors
	}
	return opt
}

// Outcome is one evaluated execution point.
type Outcome struct {
	Mode       sched.Mode
	AlphaInter float64
	AlphaIntra float64

	Result *gpu.Result
	Energy energy.Breakdown
	// Accuracy is relative to the exact flow (1.0 = bit-identical
	// classifications).
	Accuracy float64
	// Speedup and EnergySaving are vs the baseline flow of the same
	// benchmark.
	Speedup      float64
	EnergySaving float64
	// Stats are the structural statistics the plan replayed.
	Stats []sched.LayerStats
	// PruneDensity is set for zero-pruning outcomes.
	PruneDensity float64
}

// Baseline evaluates (and caches) the unoptimized Algorithm 1 flow.
// Safe for concurrent use: serve workers share one engine per benchmark
// and all race to fill the cache on their first request.
func (e *Engine) Baseline() *Outcome {
	e.baselineOnce.Do(func() {
		res := e.sim.Run(sched.Kernels(e.plan(sched.Baseline, nil, 0)))
		e.baseline = &Outcome{
			Mode:     sched.Baseline,
			Result:   res,
			Energy:   energy.Of(e.EnergyP, res, false),
			Accuracy: 1,
			Speedup:  1,
		}
	})
	return e.baseline
}

// Evaluate measures one mode at the given thresholds: numeric accuracy
// and structure at the profile shape, timing and energy at the full
// Table II shape.
func (e *Engine) Evaluate(mode sched.Mode, alphaInter, alphaIntra float64) *Outcome {
	base := e.Baseline()
	if mode == sched.Baseline {
		return base
	}
	stats := e.Structure(mode, alphaInter, alphaIntra)
	res := e.simulate(mode, stats, 0)
	out := &Outcome{
		Mode:       mode,
		AlphaInter: alphaInter,
		AlphaIntra: alphaIntra,
		Result:     res,
		Energy:     energy.Of(e.EnergyP, res, mode == sched.Intra || mode == sched.Combined),
		Stats:      stats,
	}
	seqs, refs := e.Inst.AccSeqs()
	out.Accuracy = accuracy.Score(e.Inst.Net, seqs, refs, e.runOptions(mode, alphaInter, alphaIntra))
	out.Speedup = base.Result.Cycles / res.Cycles
	out.EnergySaving = energy.Saving(base.Energy, out.Energy)
	return out
}

// EvaluateSet evaluates a mode at threshold set i (0..10).
func (e *Engine) EvaluateSet(mode sched.Mode, set int) *Outcome {
	ai, aa := e.Thresholds(set)
	if set == 0 {
		return e.Baseline()
	}
	return e.Evaluate(mode, ai, aa)
}

// EvaluateSetE is the serving-path entry point of EvaluateSet: any
// tensor.Panicf invariant violation raised during the evaluation comes
// back as an error instead of crashing the worker's process.
func (e *Engine) EvaluateSetE(mode sched.Mode, set int) (out *Outcome, err error) {
	defer tensor.Guard(&err)
	return e.EvaluateSet(mode, set), nil
}

// RunOptionsFor exposes the numeric execution options of one (mode,
// threshold set) operating point, so external request loops (the serve
// worker pool) can run per-request inference with the engine's
// calibration artifacts without re-deriving MTS and predictors.
func (e *Engine) RunOptionsFor(mode sched.Mode, set int) lstm.RunOptions {
	ai, aa := e.Thresholds(set)
	return e.runOptions(mode, ai, aa)
}

// EvaluateZeroPrune evaluates the element-pruning baseline [31] at the
// given surviving density: accuracy from a pruned clone of the network,
// timing from the CSR gemv kernel model.
func (e *Engine) EvaluateZeroPrune(density float64) *Outcome {
	base := e.Baseline()
	pruned := e.prunedNetwork(density)
	plan := e.plan(sched.ZeroPrune, nil, density)
	res := e.sim.Run(sched.Kernels(plan))
	out := &Outcome{
		Mode:         sched.ZeroPrune,
		Result:       res,
		Energy:       energy.Of(e.EnergyP, res, false),
		PruneDensity: density,
	}
	seqs, refs := e.Inst.AccSeqs()
	out.Accuracy = accuracy.Score(pruned, seqs, refs, lstm.Baseline())
	out.Speedup = base.Result.Cycles / res.Cycles
	out.EnergySaving = energy.Saving(base.Energy, out.Energy)
	return out
}

// prunedNetwork clones the instance network with its recurrent matrices
// magnitude-pruned to the target density.
func (e *Engine) prunedNetwork(density float64) *lstm.Network {
	src := e.Inst.Net
	dst := lstm.NewNetwork(src.Input(), src.Hidden(), len(src.Layers), src.Classes())
	dst.Gate = src.Gate
	copyM := func(d, s *tensor.Matrix) { copy(d.Data, s.Data) }
	for i, sl := range src.Layers {
		dl := dst.Layers[i]
		copyM(dl.Wf, sl.Wf)
		copyM(dl.Wi, sl.Wi)
		copyM(dl.Wc, sl.Wc)
		copyM(dl.Wo, sl.Wo)
		eps := intracell.PruneEpsForDensity(sl.UMatrices(), density)
		for g, u := range sl.UMatrices() {
			p, _ := intracell.PruneMatrix(u, eps)
			copyM(dl.UMatrices()[g], p)
		}
		copy(dl.Bf, sl.Bf)
		copy(dl.Bi, sl.Bi)
		copy(dl.Bc, sl.Bc)
		copy(dl.Bo, sl.Bo)
	}
	copyM(dst.Head, src.Head)
	copy(dst.HeadBias, src.HeadBias)
	return dst
}

// simulate runs the full-shape plan on the GPU model. Modes whose tissue
// layout is synthesized from break rates are averaged over several
// synthesis seeds: at low break rates the longest-sub-layer tail makes a
// single draw noisy.
func (e *Engine) simulate(mode sched.Mode, stats []sched.LayerStats, density float64) *gpu.Result {
	const replicas = 5
	if mode != sched.Inter && mode != sched.Combined {
		return e.sim.Run(sched.Kernels(e.plan(mode, stats, density)))
	}
	results := make([]*gpu.Result, 0, replicas)
	for i := 0; i < replicas; i++ {
		p := e.plan(mode, stats, density)
		p.Seed += uint64(i) * 0x9e37
		results = append(results, e.sim.Run(sched.Kernels(p)))
	}
	return averageResults(results)
}

// averageResults merges simulation replicas into their mean. Per-kernel
// groups come from the first replica scaled to the mean cycle count;
// totals are arithmetic means.
func averageResults(rs []*gpu.Result) *gpu.Result {
	if len(rs) == 1 {
		return rs[0]
	}
	out := rs[0]
	n := float64(len(rs))
	var cycles, flops, dram, l2, shared float64
	launches := 0
	stalls := out.Stalls // copy of the array; accumulate the rest below
	for _, r := range rs[1:] {
		cycles += r.Cycles
		flops += r.FLOPs
		dram += r.DRAMBytes
		l2 += r.L2HitBytes
		shared += r.SharedBytes
		launches += r.Launches
		for c, v := range r.Stalls {
			stalls[c] += v
		}
	}
	out.Cycles = (out.Cycles + cycles) / n
	out.Seconds = out.Cfg.CyclesToSeconds(out.Cycles)
	out.FLOPs = (out.FLOPs + flops) / n
	out.DRAMBytes = (out.DRAMBytes + dram) / n
	out.L2HitBytes = (out.L2HitBytes + l2) / n
	out.SharedBytes = (out.SharedBytes + shared) / n
	out.Launches = (out.Launches + launches) / len(rs)
	for c := range out.Stalls {
		out.Stalls[c] = stalls[c] / n
	}
	return out
}

// plan assembles the full-shape execution plan for a mode.
func (e *Engine) plan(mode sched.Mode, stats []sched.LayerStats, density float64) sched.Plan {
	if stats == nil {
		stats = make([]sched.LayerStats, e.B.Layers)
	}
	return sched.Plan{
		Cfg:          e.Cfg,
		Mode:         mode,
		Hidden:       e.B.Hidden,
		Input:        e.B.Hidden,
		Length:       e.B.Length,
		Layers:       e.B.Layers,
		MTS:          e.MTS,
		Stats:        stats,
		PruneDensity: density,
		Seed:         e.B.Seed ^ 0xfeed,
	}
}

// AOSet returns the accuracy-oriented threshold set: the largest set whose
// accuracy loss stays within the user-imperceptible 2% (§VI-C). The
// outcomes slice must be indexed by set (EvaluateSet results 0..10).
func AOSet(outcomes []*Outcome) int {
	ao := 0
	for i, o := range outcomes {
		if o.Accuracy >= thresholds.UserAccuracyFloor {
			ao = i
		}
	}
	return ao
}

// BPASet returns the best performance-accuracy set: argmax of
// speedup x accuracy (§VI-C).
func BPASet(outcomes []*Outcome) int {
	best, bestV := 0, math.Inf(-1)
	for i, o := range outcomes {
		v := o.Speedup * o.Accuracy
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// String summarizes an outcome for logs.
func (o *Outcome) String() string {
	return fmt.Sprintf("%v: speedup %.2fx, energy saving %.1f%%, accuracy %.1f%%",
		o.Mode, o.Speedup, o.EnergySaving*100, o.Accuracy*100)
}
