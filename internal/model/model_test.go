package model

import (
	"math"
	"runtime"
	"testing"

	"mobilstm/internal/lstm"
)

// tinyProfile keeps model-package tests fast.
func tinyProfile() Profile {
	return Profile{Name: "tiny", HiddenCap: 48, LengthCap: 12,
		AccSamples: 6, PredictorSamples: 2, StatSamples: 2}
}

func TestZooMatchesTableII(t *testing.T) {
	want := map[string][3]int{ // hidden, layers, length from Table II
		"IMDB": {512, 3, 80},
		"MR":   {256, 1, 22},
		"BABI": {256, 3, 86},
		"SNLI": {300, 2, 100},
		"PTB":  {650, 3, 200},
		"MT":   {500, 4, 50},
	}
	zoo := Zoo()
	if len(zoo) != 6 {
		t.Fatalf("zoo size %d", len(zoo))
	}
	for _, b := range zoo {
		w, ok := want[b.Name]
		if !ok {
			t.Fatalf("unexpected benchmark %q", b.Name)
		}
		if b.Hidden != w[0] || b.Layers != w[1] || b.Length != w[2] {
			t.Fatalf("%s: got (%d,%d,%d), Table II says %v", b.Name, b.Hidden, b.Layers, b.Length, w)
		}
	}
}

func TestZooTasks(t *testing.T) {
	tasks := map[string]Task{"IMDB": SentimentClassification, "MR": SentimentClassification,
		"BABI": QuestionAnswering, "SNLI": Entailment, "PTB": LanguageModeling, "MT": MachineTranslation}
	for _, b := range Zoo() {
		if b.Task != tasks[b.Name] {
			t.Fatalf("%s task %q", b.Name, b.Task)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("PTB"); !ok {
		t.Fatal("PTB not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus benchmark found")
	}
}

func TestProfileCaps(t *testing.T) {
	b, _ := ByName("PTB")
	inst := Build(b, tinyProfile())
	if inst.Hidden != 48 || inst.Length != 12 {
		t.Fatalf("caps not applied: %d, %d", inst.Hidden, inst.Length)
	}
	if inst.Net.Hidden() != 48 {
		t.Fatal("network not at capped shape")
	}
}

func TestDefaultProfileEnv(t *testing.T) {
	t.Setenv("MOBILSTM_FULL", "")
	if Default().Name != "quick" {
		t.Fatal("default should be quick")
	}
	t.Setenv("MOBILSTM_FULL", "1")
	if Default().Name != "full" {
		t.Fatal("MOBILSTM_FULL=1 should select full")
	}
	t.Setenv("MOBILSTM_FULL", "0")
	if Default().Name != "quick" {
		t.Fatal("MOBILSTM_FULL=0 should select quick")
	}
}

func TestBuildDeterministic(t *testing.T) {
	b, _ := ByName("MR")
	a := Build(b, tinyProfile())
	c := Build(b, tinyProfile())
	for i := range a.RefLabels {
		if a.RefLabels[i] != c.RefLabels[i] {
			t.Fatal("labels differ across identical builds")
		}
	}
	for i := range a.Seqs[0][0] {
		if a.Seqs[0][0][i] != c.Seqs[0][0][i] {
			t.Fatal("sequences differ across identical builds")
		}
	}
	w1 := a.Net.Layers[0].Uf.Data
	w2 := c.Net.Layers[0].Uf.Data
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("weights differ across identical builds")
		}
	}
}

func TestCorpusPartition(t *testing.T) {
	b, _ := ByName("MR")
	p := tinyProfile()
	inst := Build(b, p)
	acc, refs := inst.AccSeqs()
	if len(acc) != p.AccSamples || len(refs) != p.AccSamples {
		t.Fatalf("acc slice %d/%d", len(acc), len(refs))
	}
	if len(inst.PredictorSeqs()) != p.PredictorSamples {
		t.Fatalf("predictor slice %d", len(inst.PredictorSeqs()))
	}
	if len(inst.StatSeqs()) != p.StatSamples {
		t.Fatalf("stat slice %d", len(inst.StatSeqs()))
	}
}

func TestRefLabelsAreBaselineClassifications(t *testing.T) {
	b, _ := ByName("MR")
	inst := Build(b, tinyProfile())
	for i, xs := range inst.Seqs {
		if got := inst.Net.Classify(xs, lstm.Baseline()); got != inst.RefLabels[i] {
			t.Fatalf("label %d: %d vs stored %d", i, got, inst.RefLabels[i])
		}
	}
}

func TestMarginFilterRaisesConfidence(t *testing.T) {
	// The corpus margins must be at least as large as the raw
	// distribution's lower tail: verify every accepted sample clears
	// a positive margin.
	b, _ := ByName("BABI")
	inst := Build(b, tinyProfile())
	for i, xs := range inst.Seqs {
		logits := inst.Net.Run(xs, lstm.Baseline())
		best := inst.RefLabels[i]
		for j, v := range logits {
			if j != best && float64(logits[best]-v) < 0 {
				t.Fatalf("sample %d label is not argmax", i)
			}
		}
	}
}

func TestSequenceShapes(t *testing.T) {
	b, _ := ByName("SNLI")
	inst := Build(b, tinyProfile())
	for _, xs := range inst.Seqs {
		if len(xs) != inst.Length {
			t.Fatalf("sequence length %d, want %d", len(xs), inst.Length)
		}
		for _, v := range xs {
			if len(v) != inst.Hidden {
				t.Fatalf("token dim %d, want %d", len(v), inst.Hidden)
			}
		}
	}
}

func TestPauseTokensPresent(t *testing.T) {
	// Boundary tokens must appear with roughly the configured rate and
	// carry larger magnitude — the mechanism behind weak links.
	b, _ := ByName("BABI")
	p := tinyProfile()
	p.LengthCap = 40
	p.AccSamples = 10
	inst := Build(b, p)
	strong := 0
	total := 0
	for _, xs := range inst.Seqs {
		for _, v := range xs {
			var ss float64
			for _, x := range v {
				ss += float64(x) * float64(x)
			}
			rms := math.Sqrt(ss / float64(len(v)))
			if rms > 1.6 {
				strong++
			}
			total++
		}
	}
	rate := float64(strong) / float64(total)
	if rate < 0.1 || rate > 0.6 {
		t.Fatalf("boundary-token rate %v, configured %v", rate, b.PauseRate)
	}
}

func TestCapInt(t *testing.T) {
	if capInt(10, 0) != 10 || capInt(10, 5) != 5 || capInt(3, 5) != 3 {
		t.Fatal("capInt")
	}
}

func TestBuildParallelPath(t *testing.T) {
	// Exercise the multi-worker corpus builder even on single-CPU hosts.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	b, _ := ByName("MR")
	a := Build(b, tinyProfile())
	runtime.GOMAXPROCS(1)
	c := Build(b, tinyProfile())
	for i := range a.RefLabels {
		if a.RefLabels[i] != c.RefLabels[i] {
			t.Fatal("corpus depends on worker count")
		}
	}
}
