// Package model provides the benchmark zoo of Table II — the six
// state-of-the-art NLP applications the paper evaluates — as synthetic,
// fully reproducible workloads: LSTM networks with the paper's exact
// shapes, weight distributions tuned to exhibit the paper's two
// observations (non-uniform context-link strength across cells, and
// DRS-trivial output-gate rows), and input corpora whose reference labels
// are defined by the full-precision network itself (model-as-ground-truth;
// see DESIGN.md §2).
package model

import (
	"math"
	"os"
	"runtime"
	"sync"

	"mobilstm/internal/lstm"
	"mobilstm/internal/rng"
	"mobilstm/internal/stats"
	"mobilstm/internal/tensor"
	"mobilstm/internal/thresholds"
)

// Task is the NLP task class of a benchmark (Table II "Abbr" column).
type Task string

// Task classes from Table II.
const (
	SentimentClassification Task = "SC" // positive/negative attitude
	QuestionAnswering       Task = "QA" // text understanding & reasoning
	Entailment              Task = "ET" // sentence-pair inference
	LanguageModeling        Task = "LM" // word-level language modeling
	MachineTranslation      Task = "MT" // English -> French
)

// Benchmark describes one Table II application.
type Benchmark struct {
	// Name is the dataset name from Table II.
	Name string
	Task Task
	// Hidden is the LSTM hidden size (the weight-matrix dimension).
	Hidden int
	// Layers is the LSTM depth.
	Layers int
	// Length is the number of cells per LSTM layer (input length).
	Length int
	// Classes is the output dimensionality of the classification head.
	Classes int

	// Generator knobs (documented in DESIGN.md §5).
	//
	// PauseRate is the probability that a token is a "boundary" token
	// (punctuation, topic shift) whose strong input projection saturates
	// the gates and weakens the incoming context link.
	PauseRate float64
	// TrivialFrac is the fraction of hidden units whose output-gate bias
	// sits in the low saturation, making their rows DRS-trivial.
	TrivialFrac float64
	// LinkBase and LinkStep set the per-layer recurrent magnitude
	// target: layer l gets D ~ LinkBase + l*LinkStep. Deeper layers
	// carry stronger context links (the Fig. 15 observation).
	LinkBase, LinkStep float64

	// Seed makes the benchmark bit-reproducible.
	Seed uint64
}

// Zoo returns the six Table II benchmarks. Hidden/Layers/Length are the
// paper's values verbatim; class counts and generator knobs are the
// documented synthetic substitution.
func Zoo() []Benchmark {
	return []Benchmark{
		{Name: "IMDB", Task: SentimentClassification, Hidden: 512, Layers: 3, Length: 80,
			Classes: 2, PauseRate: 0.34, TrivialFrac: 0.55, LinkBase: 1.0, LinkStep: 0.15, Seed: 0x1347},
		{Name: "MR", Task: SentimentClassification, Hidden: 256, Layers: 1, Length: 22,
			Classes: 2, PauseRate: 0.38, TrivialFrac: 0.52, LinkBase: 1.1, LinkStep: 0.15, Seed: 0x2259},
		{Name: "BABI", Task: QuestionAnswering, Hidden: 256, Layers: 3, Length: 86,
			Classes: 20, PauseRate: 0.40, TrivialFrac: 0.50, LinkBase: 0.95, LinkStep: 0.15, Seed: 0x33ab},
		{Name: "SNLI", Task: Entailment, Hidden: 300, Layers: 2, Length: 100,
			Classes: 3, PauseRate: 0.32, TrivialFrac: 0.52, LinkBase: 1.05, LinkStep: 0.15, Seed: 0x44cd},
		{Name: "PTB", Task: LanguageModeling, Hidden: 650, Layers: 3, Length: 200,
			Classes: 10, PauseRate: 0.33, TrivialFrac: 0.58, LinkBase: 0.95, LinkStep: 0.15, Seed: 0x55ef},
		{Name: "MT", Task: MachineTranslation, Hidden: 500, Layers: 4, Length: 50,
			Classes: 12, PauseRate: 0.28, TrivialFrac: 0.54, LinkBase: 1.0, LinkStep: 0.15, Seed: 0x6601},
	}
}

// ByName returns the zoo benchmark with the given name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Zoo() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Profile bounds the numeric (accuracy-bearing) instantiation of a
// benchmark. Timing and energy always use the full Table II shapes; the
// numeric shape only feeds accuracy measurements and structural statistics
// (break rates, skip fractions), which are rate-like and transfer across
// the cap (DESIGN.md §4).
type Profile struct {
	Name string
	// HiddenCap and LengthCap bound the numeric network; 0 means no cap.
	HiddenCap, LengthCap int
	// AccSamples sequences score accuracy; PredictorSamples feed the
	// Eq. 6 link statistics; StatSamples feed structural statistics.
	AccSamples, PredictorSamples, StatSamples int
}

// Quick is the default profile: capped shapes, enough samples for stable
// rates, fast enough for the test suite. 50 accuracy samples resolve the
// paper's 2% loss threshold.
func Quick() Profile {
	return Profile{Name: "quick", HiddenCap: 192, LengthCap: 48,
		AccSamples: 50, PredictorSamples: 8, StatSamples: 4}
}

// Full uses the exact Table II shapes (set MOBILSTM_FULL=1 to select it in
// the benchmark harness).
func Full() Profile {
	return Profile{Name: "full", AccSamples: 50, PredictorSamples: 8, StatSamples: 3}
}

// Default returns Full when the MOBILSTM_FULL environment variable is set
// to a non-empty value other than "0", and Quick otherwise.
func Default() Profile {
	if v := os.Getenv("MOBILSTM_FULL"); v != "" && v != "0" {
		return Full()
	}
	return Quick()
}

func capInt(v, c int) int {
	if c > 0 && v > c {
		return c
	}
	return v
}

// Instance is a materialized benchmark: the synthetic network, its input
// corpus, and the reference labels the full-precision flow assigns.
type Instance struct {
	B Benchmark
	// Net is the numeric network at the (possibly capped) profile shape.
	Net *lstm.Network
	// Hidden and Length are the numeric shapes actually used.
	Hidden, Length int
	// Seqs is the input corpus: AccSamples + PredictorSamples +
	// StatSamples sequences.
	Seqs [][]tensor.Vector
	// RefLabels[i] is the full-precision classification of Seqs[i] —
	// the ground truth approximated runs are scored against.
	RefLabels []int

	prof Profile
}

// Build materializes the benchmark under the profile. The same
// (benchmark, profile) pair always yields identical bits.
func Build(b Benchmark, p Profile) *Instance {
	h := capInt(b.Hidden, p.HiddenCap)
	length := capInt(b.Length, p.LengthCap)
	r := rng.New(b.Seed)

	net := lstm.NewNetwork(h, h, b.Layers, b.Classes)
	net.InitRandom(r.Split(), func(layer int) float64 {
		return b.LinkBase + float64(layer)*b.LinkStep
	}, b.TrivialFrac)

	// Pseudo-training (DESIGN.md §5): normalize per-layer pre-activation
	// spreads and co-adapt downstream weights to feature activity on a
	// small calibration set, as gradient training would.
	calGen := r.Split()
	calSeqs := make([][]tensor.Vector, 3)
	for i := range calSeqs {
		calSeqs[i] = genSequence(calGen, h, length, b.PauseRate)
	}
	lstm.Calibrate(net, calSeqs, func(layer int) float64 {
		// Deeper layers see smoother inputs (no boundary tokens); a
		// wider pre-activation spread restores the heavy tail trained
		// deep layers exhibit, so weak links exist at every depth —
		// rarer with depth (Fig. 15).
		return 1.2 + 0.4*float64(layer)
	})

	total := p.AccSamples + p.PredictorSamples + p.StatSamples
	gen := r.Split()
	seqs := make([][]tensor.Vector, total)
	labels := make([]int, total)
	buildSamples(net, gen, seqs, labels, h, length, b.PauseRate)

	return &Instance{B: b, Net: net, Hidden: h, Length: length,
		Seqs: seqs, RefLabels: labels, prof: p}
}

// Corpus confidence calibration. Real NLP corpora are dominated by
// confidently classified inputs; without a margin floor the synthetic
// corpus would be mostly decision-boundary cases and accuracy would
// collapse under any perturbation, matching neither the paper nor
// practice. The floor is set relative to the benchmark's own measured
// approximation noise at a mid-sweep reference point, which aligns the
// six synthetic tasks' robustness with the paper's observation that all
// of them tolerate moderate thresholds with ~2% loss. Both knobs below
// are global, documented constants.
const (
	// noiseMarginFactor is the margin floor in units of the measured
	// reference perturbation (infinity-norm of the logit change).
	noiseMarginFactor = 1.7
	// marginCapQuantile bounds the floor so the acceptance rate never
	// collapses (at most the 90th percentile of raw margins).
	marginCapQuantile = 0.9
	// calibMTS and calibAlphaIntra define the reference operating point
	// used purely for corpus calibration: DRS just below its mid threshold plus
	// layer division at the 35th relevance percentile (constants live in
	// internal/thresholds with the rest of the sweep geometry).
	calibMTS        = 5
	calibAlphaIntra = thresholds.CalibAlphaIntra
)

// buildSamples fills seqs/labels with margin-filtered sequences, running
// reference classification in parallel batches.
func buildSamples(net *lstm.Network, r *rng.RNG, seqs [][]tensor.Vector, labels []int, dim, length int, pauseRate float64) {
	// Probe batch: establish the benchmark's margin scale and its
	// perturbation scale at the reference operating point.
	const probeN = 32
	probeMargins := make([]float64, probeN)
	probeSeqs := make([][]tensor.Vector, probeN)
	probeLabels := make([]int, probeN)
	for i := range probeSeqs {
		probeSeqs[i] = genSequence(r, dim, length, pauseRate)
	}
	parallelFor(probeN, func(i int) {
		probeLabels[i], probeMargins[i] = classifyMargin(net, probeSeqs[i])
	})
	noise := referenceNoise(net, probeSeqs[:8])
	minMargin := noiseMarginFactor * noise
	if cap := stats.QuantileOf(probeMargins, marginCapQuantile); minMargin > cap {
		minMargin = cap
	}

	filled := 0
	for i := 0; i < probeN && filled < len(seqs); i++ {
		if probeMargins[i] >= minMargin {
			seqs[filled], labels[filled] = probeSeqs[i], probeLabels[i]
			filled++
		}
	}
	for filled < len(seqs) {
		batch := len(seqs) - filled
		cand := make([][]tensor.Vector, batch)
		for i := range cand {
			cand[i] = genSequence(r, dim, length, pauseRate)
		}
		lab := make([]int, batch)
		margin := make([]float64, batch)
		parallelFor(batch, func(i int) {
			lab[i], margin[i] = classifyMargin(net, cand[i])
		})
		for i := range cand {
			if margin[i] >= minMargin && filled < len(seqs) {
				seqs[filled], labels[filled] = cand[i], lab[i]
				filled++
			}
		}
	}
}

// referenceNoise measures the benchmark's logit perturbation scale at
// the reference operating point: the combined optimizations with DRS at
// its mid threshold and layer division at the 35th percentile of the
// probe relevance distribution. Returns the median infinity-norm logit
// change across the probe sequences.
func referenceNoise(net *lstm.Network, probe [][]tensor.Vector) float64 {
	if len(probe) == 0 {
		return 0
	}
	preds := lstm.CollectPredictors(net, probe[:1])
	// Relevance distribution from one traced run.
	tr := &lstm.Trace{}
	net.Run(probe[0], lstm.RunOptions{Inter: true, MTS: calibMTS, Predictors: preds, Trace: tr})
	var rels []float64
	for _, lt := range tr.Layers {
		rels = append(rels, lt.Relevance...)
	}
	var alphaInter float64
	if len(rels) > 0 {
		alphaInter = stats.QuantileOf(rels, thresholds.CalibInterQuantile)
	}
	opt := lstm.RunOptions{
		Inter: true, AlphaInter: alphaInter, MTS: calibMTS, Predictors: preds,
		Intra: true, AlphaIntra: calibAlphaIntra,
	}
	dists := make([]float64, len(probe))
	parallelFor(len(probe), func(i int) {
		base := net.Run(probe[i], lstm.Baseline())
		approx := net.Run(probe[i], opt)
		var d float32
		for j := range base {
			v := base[j] - approx[j]
			if v < 0 {
				v = -v
			}
			if v > d {
				d = v
			}
		}
		dists[i] = float64(d)
	})
	return stats.Median(dists)
}

// classifyMargin returns the reference label and the top-2 logit margin.
func classifyMargin(net *lstm.Network, xs []tensor.Vector) (int, float64) {
	logits := net.Run(xs, lstm.Baseline())
	best := tensor.ArgMax(logits)
	margin := float32(math.Inf(1))
	for j, v := range logits {
		if j != best && logits[best]-v < margin {
			margin = logits[best] - v
		}
	}
	return best, float64(margin)
}

// parallelFor runs f(0..n-1) across GOMAXPROCS workers.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// genSequence synthesizes one token-embedding sequence. Ordinary tokens
// are unit-scale Gaussian embeddings; boundary tokens (probability
// pauseRate) are drawn with a 2-4x larger magnitude, pushing the gate
// pre-activations of the following cell toward saturation — the mechanism
// that makes its incoming context link weak.
func genSequence(r *rng.RNG, dim, length int, pauseRate float64) []tensor.Vector {
	xs := make([]tensor.Vector, length)
	for t := range xs {
		v := tensor.NewVector(dim)
		scale := 1.0
		if r.Bernoulli(pauseRate) {
			// Quadratic skew: most boundary tokens are mild, a heavy
			// tail of strong ones (hard punctuation, topic resets)
			// produces the genuinely weak links the division exploits.
			u := r.Float64()
			scale = 1.2 + 5*u*u
		}
		for j := range v {
			v[j] = r.NormF32(0, scale)
		}
		xs[t] = v
	}
	return xs
}

// AccSeqs returns the accuracy-scoring slice of the corpus with its
// reference labels.
func (in *Instance) AccSeqs() ([][]tensor.Vector, []int) {
	n := in.prof.AccSamples
	return in.Seqs[:n], in.RefLabels[:n]
}

// PredictorSeqs returns the sequences reserved for Eq. 6 link collection.
func (in *Instance) PredictorSeqs() [][]tensor.Vector {
	lo := in.prof.AccSamples
	return in.Seqs[lo : lo+in.prof.PredictorSamples]
}

// StatSeqs returns the sequences reserved for structural statistics.
func (in *Instance) StatSeqs() [][]tensor.Vector {
	lo := in.prof.AccSamples + in.prof.PredictorSamples
	return in.Seqs[lo:]
}
