package accuracy

import (
	"runtime"
	"testing"

	"mobilstm/internal/lstm"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

func buildNet(seed uint64) (*lstm.Network, [][]tensor.Vector, []int) {
	n := lstm.NewNetwork(16, 16, 1, 3)
	n.InitRandom(rng.New(seed), nil, 0.5)
	r := rng.New(seed + 1)
	seqs := make([][]tensor.Vector, 12)
	refs := make([]int, 12)
	for i := range seqs {
		xs := make([]tensor.Vector, 8)
		for t := range xs {
			v := tensor.NewVector(16)
			for j := range v {
				v[j] = r.NormF32(0, 1.5)
			}
			xs[t] = v
		}
		seqs[i] = xs
		refs[i] = n.Classify(xs, lstm.Baseline())
	}
	return n, seqs, refs
}

func TestBaselineScoresPerfect(t *testing.T) {
	n, seqs, refs := buildNet(1)
	if s := Score(n, seqs, refs, lstm.Baseline()); s != 1 {
		t.Fatalf("baseline score %v", s)
	}
}

func TestAggressiveSkipLowersScore(t *testing.T) {
	n, seqs, refs := buildNet(2)
	s := Score(n, seqs, refs, lstm.RunOptions{Intra: true, AlphaIntra: 2})
	// Skipping everything collapses outputs to the head bias; with 3
	// classes almost all labels flip.
	if s > 0.7 {
		t.Fatalf("total skip still scores %v", s)
	}
}

func TestScoreEmptyInputs(t *testing.T) {
	n, _, _ := buildNet(3)
	if s := Score(n, nil, nil, lstm.Baseline()); s != 1 {
		t.Fatalf("empty corpus score %v", s)
	}
}

func TestScoreMismatchedPanics(t *testing.T) {
	n, seqs, _ := buildNet(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Score(n, seqs, []int{1}, lstm.Baseline())
}

func TestScoreDeterministicUnderParallelism(t *testing.T) {
	n, seqs, refs := buildNet(5)
	opt := lstm.RunOptions{Intra: true, AlphaIntra: 0.2}
	a := Score(n, seqs, refs, opt)
	b := Score(n, seqs, refs, opt)
	if a != b {
		t.Fatalf("parallel scoring not deterministic: %v vs %v", a, b)
	}
}

func TestScoreIgnoresCallerTrace(t *testing.T) {
	// A caller-supplied trace must not be shared across goroutines; the
	// scorer strips it.
	n, seqs, refs := buildNet(6)
	tr := &lstm.Trace{}
	Score(n, seqs, refs, lstm.RunOptions{Intra: true, AlphaIntra: 0.1, Trace: tr})
	if len(tr.Layers) != 0 {
		t.Fatal("trace was populated during scoring")
	}
}

func TestScoreSequentialPath(t *testing.T) {
	// Force the single-worker path of the parallel scorer.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	n, seqs, refs := buildNet(7)
	if s := Score(n, seqs, refs, lstm.Baseline()); s != 1 {
		t.Fatalf("sequential score %v", s)
	}
}

func TestScoreSingleSample(t *testing.T) {
	n, seqs, refs := buildNet(8)
	if s := Score(n, seqs[:1], refs[:1], lstm.Baseline()); s != 1 {
		t.Fatalf("single-sample score %v", s)
	}
}

func TestScoreParallelPath(t *testing.T) {
	// Force the multi-worker path even on single-CPU machines.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	n, seqs, refs := buildNet(9)
	opt := lstm.RunOptions{Intra: true, AlphaIntra: 0.2}
	a := Score(n, seqs, refs, opt)
	runtime.GOMAXPROCS(1)
	b := Score(n, seqs, refs, opt)
	if a != b {
		t.Fatalf("parallel and sequential scoring disagree: %v vs %v", a, b)
	}
}
