// Package accuracy scores approximated LSTM executions against the
// full-precision reference. The metric is relative output accuracy —
// the fraction of inputs whose classification matches the exact flow —
// which is exactly the quantity the paper's "user preferred accuracy"
// thresholds (98% = 2% user-imperceptible loss) constrain.
package accuracy

import (
	"runtime"
	"sync"

	"mobilstm/internal/lstm"
	"mobilstm/internal/tensor"
)

// Score runs the network on every sequence under the given options and
// returns the fraction of outputs matching the reference labels.
// Sequences are evaluated in parallel.
func Score(net *lstm.Network, seqs [][]tensor.Vector, refs []int, opt lstm.RunOptions) float64 {
	if len(seqs) == 0 {
		return 1
	}
	if len(seqs) != len(refs) {
		tensor.Panicf("accuracy: sequence/reference length mismatch")
	}
	match := make([]bool, len(seqs))
	parallelFor(len(seqs), func(i int) {
		o := opt
		o.Trace = nil // traces are per-goroutine state; scoring never needs them
		match[i] = net.Classify(seqs[i], o) == refs[i]
	})
	n := 0
	for _, m := range match {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(seqs))
}

// parallelFor runs f(0..n-1) across GOMAXPROCS workers.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
