// Package energy models whole-system energy for LSTM inference on a
// mobile SoC, matching the paper's measurement methodology: the Jetson
// board's power rail covers CPU, GPU and DRAM together (§VI-A, "the
// obtained energy result describes the energy consumption of the overall
// system").
//
// The model is the standard decomposition
//
//	E = P_static * T  +  P_host * T  +  e_dram * B_dram
//	    + e_onchip * B_onchip  +  e_flop * F  (+ CRM overhead)
//
// with constants in the range mobile-SoC literature reports (LPDDR4
// ~20-30 pJ/B end to end, on-chip SRAM ~1-2 pJ/B, Maxwell-class FMA a few
// pJ/FLOP, TX1 module idle+leakage a couple of watts). Savings therefore
// come from two places, exactly as in the paper: shorter runtime (static +
// host energy) and fewer DRAM bytes (the dominant dynamic term).
package energy

import (
	"mobilstm/internal/gpu"
	"mobilstm/internal/gpu/crm"
)

// Params are the platform energy constants.
type Params struct {
	// StaticPowerW is the always-on SoC power while the inference runs
	// (leakage, clocks, rails).
	StaticPowerW float64
	// HostPowerW is the CPU-side power while it drives the GPU (kernel
	// launches, list bookkeeping).
	HostPowerW float64
	// DRAMEnergyPerByte is the end-to-end LPDDR4 access energy.
	DRAMEnergyPerByte float64
	// OnChipEnergyPerByte covers L2 hits and shared-memory traffic.
	OnChipEnergyPerByte float64
	// FLOPEnergy is the per-FLOP core energy.
	FLOPEnergy float64
}

// TegraX1 returns the TX1 module constants used throughout the
// reproduction.
func TegraX1() Params {
	return Params{
		StaticPowerW:        2.2,
		HostPowerW:          1.1,
		DRAMEnergyPerByte:   26e-12,
		OnChipEnergyPerByte: 1.6e-12,
		FLOPEnergy:          4.5e-12,
	}
}

// Breakdown is the energy of one simulated execution, in joules.
type Breakdown struct {
	StaticJ  float64
	HostJ    float64
	DRAMJ    float64
	OnChipJ  float64
	ComputeJ float64
	// CRMJ is the CTA-reorganization module's overhead (hardware DRS
	// only), per the paper's gate-level figure of <1% GPU power.
	CRMJ float64
}

// Total returns the system energy in joules.
func (b Breakdown) Total() float64 {
	return b.StaticJ + b.HostJ + b.DRAMJ + b.OnChipJ + b.ComputeJ + b.CRMJ
}

// Of computes the system energy of a simulated kernel sequence.
// hardwareDRS adds the CRM power overhead over the execution window.
func Of(p Params, r *gpu.Result, hardwareDRS bool) Breakdown {
	b := Breakdown{
		StaticJ:  p.StaticPowerW * r.Seconds,
		HostJ:    p.HostPowerW * r.Seconds,
		DRAMJ:    p.DRAMEnergyPerByte * r.DRAMBytes,
		OnChipJ:  p.OnChipEnergyPerByte * (r.L2HitBytes + r.SharedBytes),
		ComputeJ: p.FLOPEnergy * r.FLOPs,
	}
	if hardwareDRS {
		gpuDynamic := b.DRAMJ + b.OnChipJ + b.ComputeJ
		b.CRMJ = crm.PowerOverheadFrac * gpuDynamic
	}
	return b
}

// Saving returns the fractional energy saving of opt relative to base
// (the paper's Fig. 14(b) metric).
func Saving(base, opt Breakdown) float64 {
	bt := base.Total()
	if bt == 0 {
		return 0
	}
	return 1 - opt.Total()/bt
}

// AtVoltage derates the platform energy constants for a DVFS state with
// the given relative supply voltage (see gpu.VoltageScale): per-op
// dynamic energy scales with V^2, and the static/leakage and host rails
// scale with ~V^2 as well (leakage is super-linear in V; the quadratic
// form is the conventional first-order model).
func (p Params) AtVoltage(vScale float64) Params {
	v2 := vScale * vScale
	return Params{
		StaticPowerW:        p.StaticPowerW * v2,
		HostPowerW:          p.HostPowerW,        // CPU rail is independent
		DRAMEnergyPerByte:   p.DRAMEnergyPerByte, // memory rail is independent
		OnChipEnergyPerByte: p.OnChipEnergyPerByte * v2,
		FLOPEnergy:          p.FLOPEnergy * v2,
	}
}
