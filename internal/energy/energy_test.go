package energy

import (
	"math"
	"testing"

	"mobilstm/internal/gpu"
)

func result(seconds, dramBytes, flops float64) *gpu.Result {
	return &gpu.Result{
		Cfg:       gpu.TegraX1(),
		Seconds:   seconds,
		DRAMBytes: dramBytes,
		FLOPs:     flops,
	}
}

func TestBreakdownComponents(t *testing.T) {
	p := TegraX1()
	b := Of(p, result(0.1, 1e9, 1e9), false)
	if math.Abs(b.StaticJ-p.StaticPowerW*0.1) > 1e-12 {
		t.Fatalf("static: %v", b.StaticJ)
	}
	if math.Abs(b.HostJ-p.HostPowerW*0.1) > 1e-12 {
		t.Fatalf("host: %v", b.HostJ)
	}
	if math.Abs(b.DRAMJ-p.DRAMEnergyPerByte*1e9) > 1e-12 {
		t.Fatalf("dram: %v", b.DRAMJ)
	}
	if math.Abs(b.ComputeJ-p.FLOPEnergy*1e9) > 1e-12 {
		t.Fatalf("compute: %v", b.ComputeJ)
	}
	if b.CRMJ != 0 {
		t.Fatal("CRM energy without hardware DRS")
	}
}

func TestCRMOverheadSmall(t *testing.T) {
	p := TegraX1()
	r := result(0.1, 1e9, 1e9)
	with := Of(p, r, true)
	without := Of(p, r, false)
	if with.CRMJ <= 0 {
		t.Fatal("no CRM energy under hardware DRS")
	}
	// §VI-F: <1% of GPU power.
	if with.CRMJ > 0.01*without.Total() {
		t.Fatalf("CRM energy %v too large vs total %v", with.CRMJ, without.Total())
	}
}

func TestTotalIsSum(t *testing.T) {
	b := Breakdown{StaticJ: 1, HostJ: 2, DRAMJ: 3, OnChipJ: 4, ComputeJ: 5, CRMJ: 6}
	if b.Total() != 21 {
		t.Fatalf("total: %v", b.Total())
	}
}

func TestSaving(t *testing.T) {
	base := Breakdown{StaticJ: 10}
	opt := Breakdown{StaticJ: 6}
	if s := Saving(base, opt); math.Abs(s-0.4) > 1e-12 {
		t.Fatalf("saving: %v", s)
	}
	if s := Saving(Breakdown{}, opt); s != 0 {
		t.Fatalf("saving with zero base: %v", s)
	}
}

func TestFasterAndLeanerSavesEnergy(t *testing.T) {
	p := TegraX1()
	base := Of(p, result(0.2, 2e9, 2e9), false)
	opt := Of(p, result(0.1, 1e9, 1.8e9), true)
	if Saving(base, opt) <= 0 {
		t.Fatal("faster + fewer bytes did not save energy")
	}
}

func TestDRAMEnergyMatters(t *testing.T) {
	// At full bandwidth the DRAM term must be a visible share of power —
	// that is what the paper's traffic reductions harvest.
	p := TegraX1()
	seconds := 0.1
	bytes := 25.6e9 * seconds // saturated LPDDR4
	b := Of(p, result(seconds, bytes, 0), false)
	share := b.DRAMJ / b.Total()
	if share < 0.1 || share > 0.6 {
		t.Fatalf("DRAM energy share %v, want 10-60%%", share)
	}
}

func TestAtVoltageScaling(t *testing.T) {
	p := TegraX1()
	low := p.AtVoltage(0.7)
	if low.StaticPowerW >= p.StaticPowerW {
		t.Fatal("static power did not drop")
	}
	if low.FLOPEnergy >= p.FLOPEnergy {
		t.Fatal("per-op energy did not drop")
	}
	if low.DRAMEnergyPerByte != p.DRAMEnergyPerByte {
		t.Fatal("memory rail must be independent of GPU voltage")
	}
	if low.HostPowerW != p.HostPowerW {
		t.Fatal("CPU rail must be independent of GPU voltage")
	}
	if math.Abs(low.StaticPowerW-p.StaticPowerW*0.49) > 1e-12 {
		t.Fatalf("static scaling not quadratic: %v", low.StaticPowerW)
	}
}
