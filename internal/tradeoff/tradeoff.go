// Package tradeoff explores the performance-accuracy design space the two
// thresholds open (§VI-C): threshold-set sweeps, and the AO / BPA / UO
// operating-point selections used in Fig. 18 and Fig. 19.
package tradeoff

import "fmt"

// Point is one evaluated threshold set.
type Point struct {
	// Set is the threshold-set index (0 = exact baseline, 10 = maximal
	// thresholds).
	Set int
	// Speedup and EnergySaving are relative to the baseline flow.
	Speedup      float64
	EnergySaving float64
	// Accuracy is relative output accuracy (1 = exact).
	Accuracy float64
}

// Curve is a full threshold sweep, indexed by set.
type Curve []Point

// Validate checks the curve covers sets 0..n-1 in order.
func (c Curve) Validate() error {
	for i, p := range c {
		if p.Set != i {
			return fmt.Errorf("tradeoff: point %d has set %d", i, p.Set)
		}
	}
	return nil
}

// UserImperceptibleLoss is the accuracy loss end users generally cannot
// perceive (§VI-A): 2%.
const UserImperceptibleLoss = 0.02

// AO returns the accuracy-oriented set: the largest set whose accuracy
// loss stays user-imperceptible.
func (c Curve) AO() int {
	return c.LargestWithAccuracy(1 - UserImperceptibleLoss)
}

// BPA returns the best performance-accuracy set: argmax speedup*accuracy.
func (c Curve) BPA() int {
	best, bestV := 0, -1.0
	for _, p := range c {
		if v := p.Speedup * p.Accuracy; v > bestV {
			best, bestV = p.Set, v
		}
	}
	return best
}

// LargestWithAccuracy returns the largest set whose accuracy is at least
// the bound — the selection rule the UO scheme applies per user with
// their personal preferred accuracy.
func (c Curve) LargestWithAccuracy(bound float64) int {
	set := 0
	for _, p := range c {
		if p.Accuracy >= bound {
			set = p.Set
		}
	}
	return set
}

// At returns the point for a set (clamped to the curve ends).
func (c Curve) At(set int) Point {
	if len(c) == 0 {
		return Point{}
	}
	if set < 0 {
		set = 0
	}
	if set >= len(c) {
		set = len(c) - 1
	}
	return c[set]
}
