package tradeoff

import "testing"

func testCurve() Curve {
	return Curve{
		{Set: 0, Speedup: 1.00, Accuracy: 1.000},
		{Set: 1, Speedup: 1.20, Accuracy: 1.000},
		{Set: 2, Speedup: 1.45, Accuracy: 0.995},
		{Set: 3, Speedup: 1.70, Accuracy: 0.990},
		{Set: 4, Speedup: 1.95, Accuracy: 0.985},
		{Set: 5, Speedup: 2.20, Accuracy: 0.980},
		{Set: 6, Speedup: 2.50, Accuracy: 0.960},
		{Set: 7, Speedup: 2.80, Accuracy: 0.930},
		{Set: 8, Speedup: 3.10, Accuracy: 0.890},
		{Set: 9, Speedup: 3.40, Accuracy: 0.840},
		{Set: 10, Speedup: 3.60, Accuracy: 0.780},
	}
}

func TestValidate(t *testing.T) {
	if err := testCurve().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Curve{{Set: 3}}
	if err := bad.Validate(); err == nil {
		t.Fatal("misordered curve validated")
	}
}

func TestAO(t *testing.T) {
	// Largest set with accuracy >= 0.98.
	if ao := testCurve().AO(); ao != 5 {
		t.Fatalf("AO = %d, want 5", ao)
	}
}

func TestAONonMonotoneAccuracy(t *testing.T) {
	c := testCurve()
	c[8].Accuracy = 0.985 // a wobble back above the bound
	if ao := c.AO(); ao != 8 {
		t.Fatalf("AO = %d, want 8 (largest qualifying set)", ao)
	}
}

func TestBPA(t *testing.T) {
	c := testCurve()
	best := c.BPA()
	v := c.At(best).Speedup * c.At(best).Accuracy
	for _, p := range c {
		if p.Speedup*p.Accuracy > v+1e-12 {
			t.Fatalf("set %d beats chosen BPA %d", p.Set, best)
		}
	}
}

func TestLargestWithAccuracy(t *testing.T) {
	c := testCurve()
	if s := c.LargestWithAccuracy(0.99); s != 3 {
		t.Fatalf("got %d, want 3", s)
	}
	if s := c.LargestWithAccuracy(0.5); s != 10 {
		t.Fatalf("tolerant user: %d, want 10", s)
	}
	if s := c.LargestWithAccuracy(1.1); s != 0 {
		t.Fatalf("impossible demand: %d, want 0 (baseline)", s)
	}
}

func TestAtClamps(t *testing.T) {
	c := testCurve()
	if c.At(-3).Set != 0 || c.At(99).Set != 10 {
		t.Fatal("At does not clamp")
	}
	var empty Curve
	if empty.At(2) != (Point{}) {
		t.Fatal("empty curve At")
	}
}
