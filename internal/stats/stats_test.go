package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantileConvention(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-1, 1}, {2, 5}, // clamped
		{0.49, 2}, // lower empirical quantile (floor index)
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	one := []float64{7}
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"NaN q clamps low", []float64{1, 2, 3}, math.NaN(), 1},
		{"NaN q single", one, math.NaN(), 7},
		{"q=0 single", one, 0, 7},
		{"q=1 single", one, 1, 7},
		{"q=0.5 single", one, 0.5, 7},
		{"q=0 pair", []float64{1, 9}, 0, 1},
		{"q=1 pair", []float64{1, 9}, 1, 9},
		{"+Inf q clamps high", []float64{1, 9}, math.Inf(1), 9},
		{"-Inf q clamps low", []float64{1, 9}, math.Inf(-1), 1},
	}
	for _, c := range cases {
		if got := Quantile(c.sorted, c.q); got != c.want {
			t.Errorf("%s: Quantile(%v, %v) = %v, want %v", c.name, c.sorted, c.q, got, c.want)
		}
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantileOfDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if m := QuantileOf(xs, 0.5); m != 2 {
		t.Fatalf("median %v", m)
	}
	if xs[0] != 3 {
		t.Fatal("input mutated")
	}
	if Median(xs) != 2 {
		t.Fatal("Median")
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("std %v", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("empty/short cases")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax %v %v", lo, hi)
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Fatal("empty minmax")
	}
}

// Property: the Welford accumulator matches the batch formulas.
func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			xs = append(xs, x)
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		if a.N() != int64(len(xs)) {
			return false
		}
		if len(xs) == 0 {
			return a.Mean() == 0 && a.Std() == 0
		}
		scale := 1 + math.Abs(Mean(xs))
		if math.Abs(a.Mean()-Mean(xs))/scale > 1e-9 {
			return false
		}
		return math.Abs(a.Std()-Std(xs))/(1+Std(xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
