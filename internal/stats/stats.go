// Package stats provides the small statistics toolkit the calibration
// and reporting layers share: quantiles with a fixed index convention,
// moments, and a streaming accumulator.
//
// The quantile convention is sorted[int(q*(n-1))] — the lower empirical
// quantile. Every calibration site uses this same convention so that
// threshold sets stay bit-reproducible.
package stats

import (
	"math"
	"sort"

	"mobilstm/internal/tensor"
)

// Quantile returns the q-quantile of sorted data (q clamped to [0, 1];
// a NaN q clamps to 0 — it would otherwise pass both clamp branches and
// reach the platform-defined int(NaN) conversion). It panics on empty
// input.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		tensor.Panicf("stats: Quantile of empty slice")
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// QuantileOf copies, sorts and returns the q-quantile of xs.
func QuantileOf(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantile(sorted, q)
}

// Median returns the 0.5-quantile of xs (copy + sort).
func Median(xs []float64) float64 { return QuantileOf(xs, 0.5) }

// Mean returns the arithmetic mean; 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation; 0 for n < 2.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MinMax returns the extrema; (0, 0) for empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Accumulator computes streaming mean and variance (Welford).
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
}

// Add feeds one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the observation count.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the running mean; 0 before any observation.
func (a *Accumulator) Mean() float64 { return a.mean }

// Std returns the running population standard deviation.
func (a *Accumulator) Std() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}
