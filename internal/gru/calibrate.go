//lint:file-ignore float64leak same rationale as lstm/calibrate.go: offline statistics accumulate exactly-widened float32 samples in float64; no runtime DRS comparison sees these values
package gru

import (
	"math"

	"mobilstm/internal/tensor"
)

// Calibrate applies the same pseudo-training adjustments to a GRU that
// lstm.Calibrate applies to an LSTM (see that package for the rationale):
// per-layer pre-activation spread normalization, activity co-adaptation
// of downstream weights, and head margin normalization.
func Calibrate(n *Network, seqs [][]tensor.Vector, spreadFor func(layer int) float64) {
	if len(seqs) == 0 {
		tensor.Panicf("gru: Calibrate needs at least one sequence")
	}
	cur := seqs
	var act tensor.Vector
	for li, l := range n.Layers {
		if li > 0 {
			scaleColumns(l, act)
		}
		normalizeSpread(l, cur, spreadFor(li))
		cur, act = forwardAll(n, l, cur)
	}
	calibrateHead(n, cur, act)
}

func layerWs(l *Layer) []*tensor.Matrix { return []*tensor.Matrix{l.Wz, l.Wr, l.Wh} }

func scaleColumns(l *Layer, act tensor.Vector) {
	defer l.Invalidate()
	var mean float64
	for _, a := range act {
		mean += float64(a)
	}
	mean /= float64(len(act))
	if mean <= 0 {
		return
	}
	const floor = 0.05
	for _, w := range layerWs(l) {
		for i := 0; i < w.Rows; i++ {
			row := w.Row(i)
			for j := range row {
				s := float64(act[j]) / mean
				if s < floor {
					s = floor
				}
				row[j] *= float32(s)
			}
		}
	}
}

func normalizeSpread(l *Layer, seqs [][]tensor.Vector, target float64) {
	defer l.Invalidate()
	var sumSq float64
	var count int64
	tmp := tensor.NewVector(l.Hidden)
	for _, xs := range seqs {
		for _, x := range xs {
			for _, w := range layerWs(l) {
				tensor.Gemv(tmp, w, x)
				for _, v := range tmp {
					sumSq += float64(v) * float64(v)
				}
				count += int64(len(tmp))
			}
		}
	}
	if count == 0 {
		return
	}
	rms := math.Sqrt(sumSq / float64(count))
	if rms == 0 {
		return
	}
	scale := float32(target / rms)
	for _, w := range layerWs(l) {
		for i := range w.Data {
			w.Data[i] *= scale
		}
	}
}

func forwardAll(n *Network, l *Layer, seqs [][]tensor.Vector) ([][]tensor.Vector, tensor.Vector) {
	out := make([][]tensor.Vector, len(seqs))
	sumAbs := make([]float64, l.Hidden)
	var count int64
	var sc *layerScratch
	for si, xs := range seqs {
		if sc == nil {
			sc = newLayerScratch(l.Hidden, len(xs))
		}
		hs := runLayerExact(n, l, xs, sc)
		out[si] = hs
		for _, h := range hs {
			for j, v := range h {
				sumAbs[j] += math.Abs(float64(v))
			}
			count++
		}
	}
	act := tensor.NewVector(l.Hidden)
	for j := range act {
		act[j] = float32(sumAbs[j] / float64(count))
	}
	return out, act
}

// runLayerExact runs the layer over one sequence and returns hidden
// vectors with their own backing store: forwardAll retains every
// sequence's outputs at once, so they cannot stay in the reused scratch
// slabs.
func runLayerExact(n *Network, l *Layer, xs []tensor.Vector, sc *layerScratch) []tensor.Vector {
	hs := n.runLayer(0, l, xs, Baseline(), nil, sc, &canonicalKernels)
	h := l.Hidden
	buf := make([]float32, len(hs)*h)
	out := make([]tensor.Vector, len(hs))
	for t, v := range hs {
		out[t] = buf[t*h : (t+1)*h]
		copy(out[t], v)
	}
	return out
}

func calibrateHead(n *Network, seqs [][]tensor.Vector, act tensor.Vector) {
	var mean float64
	for _, a := range act {
		mean += float64(a)
	}
	mean /= float64(len(act))
	if mean > 0 {
		const floor = 0.05
		for i := 0; i < n.Head.Rows; i++ {
			row := n.Head.Row(i)
			for j := range row {
				s := float64(act[j]) / mean
				if s < floor {
					s = floor
				}
				row[j] *= float32(s)
			}
		}
	}
	const targetMargin = 0.8
	var marginSum float64
	var count int64
	logits := tensor.NewVector(n.Head.Rows)
	for _, hs := range seqs {
		if len(hs) == 0 {
			continue
		}
		tensor.Gemv(logits, n.Head, hs[len(hs)-1])
		best := tensor.ArgMax(logits)
		m := math.Inf(1)
		for j, v := range logits {
			if j != best && float64(logits[best]-v) < m {
				m = float64(logits[best] - v)
			}
		}
		if !math.IsInf(m, 1) {
			marginSum += m
			count++
		}
	}
	if count == 0 {
		return
	}
	meanMargin := marginSum / float64(count)
	if meanMargin <= 0 {
		return
	}
	scale := float32(targetMargin / meanMargin)
	for i := range n.Head.Data {
		n.Head.Data[i] *= scale
	}
}
