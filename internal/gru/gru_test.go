package gru

import (
	"math"
	"testing"

	"mobilstm/internal/intercell"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

func testNet(seed uint64, layers, classes int) *Network {
	n := NewNetwork(16, 16, layers, classes)
	n.InitRandom(rng.New(seed), func(l int) float64 { return 1 + 0.2*float64(l) }, 0.5)
	return n
}

func seqsFor(seed uint64, length, count int) [][]tensor.Vector {
	r := rng.New(seed)
	out := make([][]tensor.Vector, count)
	for s := range out {
		xs := make([]tensor.Vector, length)
		for t := range xs {
			v := tensor.NewVector(16)
			for j := range v {
				v[j] = r.NormF32(0, 1.5)
			}
			xs[t] = v
		}
		out[s] = xs
	}
	return out
}

func zeroPreds(n *Network) []intercell.Predictor {
	out := make([]intercell.Predictor, len(n.Layers))
	for i, l := range n.Layers {
		out[i] = intercell.Predictor{H: tensor.NewVector(l.Hidden), C: tensor.NewVector(l.Hidden)}
	}
	return out
}

func maxDiff(a, b tensor.Vector) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i] - b[i])); v > d {
			d = v
		}
	}
	return d
}

func TestGRUCellMatchesHandComputation(t *testing.T) {
	n := NewNetwork(2, 2, 1, 2)
	l := n.Layers[0]
	r := rng.New(3)
	for _, m := range []*tensor.Matrix{l.Wz, l.Wr, l.Wh, l.Uz, l.Ur, l.Uh} {
		for i := range m.Data {
			m.Data[i] = r.NormF32(0, 0.6)
		}
	}
	for _, bvec := range []tensor.Vector{l.Bz, l.Br, l.Bh} {
		for i := range bvec {
			bvec[i] = r.NormF32(0, 0.5)
		}
	}
	for j := 0; j < 2; j++ {
		n.Head.Set(j, j, 1)
	}
	x := tensor.Vector{0.4, -0.9}
	sig := func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
	hand := make([]float64, 2)
	for j := 0; j < 2; j++ {
		wz := float64(l.Wz.At(j, 0))*0.4 + float64(l.Wz.At(j, 1))*-0.9
		wr := float64(l.Wr.At(j, 0))*0.4 + float64(l.Wr.At(j, 1))*-0.9
		wh := float64(l.Wh.At(j, 0))*0.4 + float64(l.Wh.At(j, 1))*-0.9
		z := sig(wz + float64(l.Bz[j]))
		// h_{t-1} = 0, so the reset gate and U_h terms vanish.
		cand := math.Tanh(wh + float64(l.Bh[j]))
		_ = wr
		hand[j] = z * cand
	}
	got := n.Run([]tensor.Vector{x}, Baseline())
	for j := 0; j < 2; j++ {
		if math.Abs(float64(got[j])-hand[j]) > 1e-4 {
			t.Fatalf("h[%d] = %v, want %v", j, got[j], hand[j])
		}
	}
}

func TestGRUHiddenBounded(t *testing.T) {
	n := testNet(5, 1, 16)
	for i := range n.Head.Data {
		n.Head.Data[i] = 0
	}
	for j := 0; j < 16; j++ {
		n.Head.Set(j, j, 1)
		n.HeadBias[j] = 0
	}
	out := n.Run(seqsFor(6, 20, 1)[0], Baseline())
	for j, v := range out {
		if v < -1 || v > 1 {
			t.Fatalf("h[%d] = %v out of [-1,1]", j, v)
		}
	}
}

func TestGRUInterAlphaZeroMatchesBaseline(t *testing.T) {
	n := testNet(7, 2, 3)
	xs := seqsFor(8, 12, 1)[0]
	base := n.Run(xs, Baseline())
	opt := n.Run(xs, RunOptions{Inter: true, AlphaInter: 0, MTS: 4, Predictors: zeroPreds(n)})
	if d := maxDiff(base, opt); d > 1e-5 {
		t.Fatalf("inter(0) differs by %v", d)
	}
}

func TestGRUIntraAlphaZeroMatchesBaseline(t *testing.T) {
	n := testNet(9, 2, 3)
	xs := seqsFor(10, 12, 1)[0]
	base := n.Run(xs, Baseline())
	opt := n.Run(xs, RunOptions{Intra: true, AlphaIntra: 0})
	if d := maxDiff(base, opt); d > 1e-5 {
		t.Fatalf("intra(0) differs by %v", d)
	}
}

func TestGRUDRSCarriesPreviousHidden(t *testing.T) {
	// With every update gate pinned near zero and a huge threshold, DRS
	// carries h_{t-1} forward: the output equals the initial state (0)
	// carried through, so logits collapse to the head bias.
	n := testNet(11, 1, 3)
	for j := range n.Layers[0].Bz {
		n.Layers[0].Bz[j] = -12
	}
	xs := seqsFor(12, 6, 1)[0]
	out := n.Run(xs, RunOptions{Intra: true, AlphaIntra: 0.4})
	for j := range out {
		if math.Abs(float64(out[j]-n.HeadBias[j])) > 1e-5 {
			t.Fatalf("logit %d = %v, want head bias %v", j, out[j], n.HeadBias[j])
		}
	}
}

func TestGRUDRSGentlerThanZeroing(t *testing.T) {
	// The carry approximation must stay closer to the exact output than
	// a zeroing approximation at the same threshold would be: compare
	// against an exact run, skipped output should track h_{t-1} which is
	// usually closer to h_t than 0 is.
	n := testNet(13, 1, 4)
	seqs := seqsFor(14, 15, 5)
	var skipDist float64
	for _, xs := range seqs {
		base := n.Run(xs, Baseline())
		approx := n.Run(xs, RunOptions{Intra: true, AlphaIntra: 0.15})
		skipDist += maxDiff(base, approx)
	}
	// The distance must be small relative to the logit scale (~1).
	if skipDist/float64(len(seqs)) > 0.5 {
		t.Fatalf("carry-DRS perturbation too large: %v", skipDist/float64(len(seqs)))
	}
}

func TestGRURelevanceSaturation(t *testing.T) {
	// Tiny U and strong z pre-activation (z ~ 1) with saturated
	// candidate: the link must be weak.
	l := NewLayer(8, 8)
	for _, u := range []*tensor.Matrix{l.Uz, l.Ur, l.Uh} {
		for i := range u.Data {
			u.Data[i] = 0.001
		}
	}
	a := newAnalyzer(l)
	big := tensor.NewVector(8)
	for i := range big {
		big[i] = 10
	}
	if s := a.relevance(big, big, big); s > 0.5 {
		t.Fatalf("saturated GRU link relevance %v, want ~0", s)
	}
	// Carry alive (z input near 0): link strong regardless of candidate.
	zero := tensor.NewVector(8)
	if s := a.relevance(zero, zero, zero); s < 8 {
		t.Fatalf("live-carry link relevance %v, want strong", s)
	}
}

func TestGRUTraceAndTissues(t *testing.T) {
	n := testNet(15, 2, 3)
	xs := seqsFor(16, 14, 1)[0]
	tr := &Trace{}
	n.Run(xs, RunOptions{
		Inter: true, AlphaInter: 1e9, MTS: 3, Predictors: zeroPreds(n),
		Intra: true, AlphaIntra: 0.1, Trace: tr,
	})
	if len(tr.Layers) != 2 {
		t.Fatalf("trace layers %d", len(tr.Layers))
	}
	lt := tr.Layers[0]
	if len(lt.Breakpoints) != 13 {
		t.Fatalf("breakpoints %d, want all 13", len(lt.Breakpoints))
	}
	for _, sz := range lt.TissueSizes {
		if sz > 3 {
			t.Fatalf("tissue %d above MTS", sz)
		}
	}
}

func TestGRUCollectPredictors(t *testing.T) {
	n := testNet(17, 2, 3)
	preds := CollectPredictors(n, seqsFor(18, 10, 2))
	if len(preds) != 2 {
		t.Fatalf("predictors %d", len(preds))
	}
	for _, p := range preds {
		if tensor.MaxAbs(p.H) == 0 {
			t.Fatal("zero predictor")
		}
		if tensor.MaxAbs(p.H) > 1 {
			t.Fatal("predictor out of hidden range")
		}
	}
}

func TestGRUUnitedBytes(t *testing.T) {
	l := NewLayer(100, 80)
	if l.UnitedUBytes() != 3*100*100*4 {
		t.Fatalf("united bytes %d", l.UnitedUBytes())
	}
}

func TestGRUPanics(t *testing.T) {
	n := testNet(19, 1, 2)
	cases := []func(){
		func() { NewNetwork(4, 4, 0, 2) },
		func() { n.Run(nil, Baseline()) },
		func() { n.Run(seqsFor(20, 3, 1)[0], RunOptions{Inter: true}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}
