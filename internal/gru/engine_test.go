package gru

import (
	"testing"

	"mobilstm/internal/gpu"
)

func tinyGRUProfile() EngineProfile {
	return EngineProfile{HiddenCap: 48, LengthCap: 16, AccSamples: 12, StatSamples: 2}
}

func TestZoo(t *testing.T) {
	if len(Zoo()) != 3 {
		t.Fatalf("zoo size %d", len(Zoo()))
	}
	if _, ok := ZooByName("QA-GRU"); !ok {
		t.Fatal("QA-GRU missing")
	}
	if _, ok := ZooByName("nope"); ok {
		t.Fatal("bogus benchmark found")
	}
}

func TestEngineBaseline(t *testing.T) {
	b, _ := ZooByName("KWS-GRU")
	e := NewEngine(b, tinyGRUProfile(), gpu.TegraX1())
	o := e.Evaluate(0)
	if o.Speedup != 1 || o.Accuracy != 1 {
		t.Fatalf("baseline outcome %+v", o)
	}
	if e.MTS < 2 {
		t.Fatalf("GRU MTS %d", e.MTS)
	}
}

func TestEngineCombinedImproves(t *testing.T) {
	b, _ := ZooByName("KWS-GRU")
	e := NewEngine(b, tinyGRUProfile(), gpu.TegraX1())
	o := e.Evaluate(8)
	if o.Speedup <= 1 {
		t.Fatalf("no speedup at set 8: %+v", o)
	}
	if o.Accuracy < 0.6 {
		t.Fatalf("accuracy collapsed: %+v", o)
	}
	if o.SkipFrac <= 0 {
		t.Fatal("no candidate rows skipped")
	}
}

func TestEngineMonotoneThresholds(t *testing.T) {
	b, _ := ZooByName("KWS-GRU")
	e := NewEngine(b, tinyGRUProfile(), gpu.TegraX1())
	prevI, prevA := -1.0, -1.0
	for set := 0; set <= 10; set++ {
		ai, aa := e.Thresholds(set)
		if ai < prevI || aa < prevA {
			t.Fatalf("thresholds not monotone at %d", set)
		}
		prevI, prevA = ai, aa
	}
}

func TestEngineDeterministic(t *testing.T) {
	b, _ := ZooByName("KWS-GRU")
	e1 := NewEngine(b, tinyGRUProfile(), gpu.TegraX1())
	e2 := NewEngine(b, tinyGRUProfile(), gpu.TegraX1())
	a := e1.Evaluate(6)
	c := e2.Evaluate(6)
	if a != c {
		t.Fatalf("engine nondeterministic: %+v vs %+v", a, c)
	}
}

func TestGRUCalibrateSpread(t *testing.T) {
	n := testNet(31, 2, 4)
	seqs := seqsFor(32, 12, 3)
	Calibrate(n, seqs, func(int) float64 { return 1.0 })
	// Layer 0 spread exactly normalized.
	var sumSq float64
	var count int
	tmp := make([]float32, n.Layers[0].Hidden)
	for _, xs := range seqs {
		for _, x := range xs {
			for _, w := range layerWs(n.Layers[0]) {
				for i := 0; i < w.Rows; i++ {
					var s float32
					row := w.Row(i)
					for j := range row {
						s += row[j] * x[j]
					}
					tmp[i] = s
					sumSq += float64(s) * float64(s)
					count++
				}
			}
		}
	}
	rms := sumSq / float64(count)
	if rms < 0.9 || rms > 1.1 {
		t.Fatalf("layer-0 spread^2 %v, want ~1", rms)
	}
}

func TestGRUCalibratePanics(t *testing.T) {
	n := testNet(33, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without sequences")
		}
	}()
	Calibrate(n, nil, func(int) float64 { return 1 })
}
