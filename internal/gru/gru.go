// Package gru applies the paper's optimizations to Gated Recurrent Unit
// networks — the extension the paper sketches in §II-B ("the proposed
// methods can also be applied to GRUs with simple adjustment").
//
// The GRU cell:
//
//	z_t = sigma(W_z x_t + U_z h_{t-1} + b_z)        (update gate)
//	r_t = sigma(W_r x_t + U_r h_{t-1} + b_r)        (reset gate)
//	~h_t = tanh(W_h x_t + U_h (r_t .* h_{t-1}) + b_h)
//	h_t  = (1 - z_t) .* h_{t-1} + z_t .* ~h_t
//
// The adjustments:
//
//   - Inter-cell: the context link carries h_{t-1} both directly (the
//     (1-z) carry) and through the gates. A link is weak for element j
//     only if the update gate is pinned open (z_t[j] ~ 1, killing the
//     carry) AND the candidate's activation input range is saturated.
//     Relevance mirrors Algorithm 2's overlap geometry over those two
//     conditions.
//   - Intra-cell (DRS): the update gate plays the output-filter role.
//     Where z_t[j] < alpha, h_t[j] ~ h_{t-1}[j] and the candidate row j
//     of U_h need not be loaded or computed — the skip approximates
//     h_t[j] by its carry, not by zero. Only the U_h block (a third of
//     the united matrix) is skippable, so GRU-DRS compresses less than
//     LSTM-DRS, but the skip is also gentler on accuracy.
package gru

import (
	"mobilstm/internal/intercell"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// Layer holds one GRU layer's weights, shared by all unrolled cells.
type Layer struct {
	Hidden, Input int

	Wz, Wr, Wh *tensor.Matrix // (Hidden x Input)
	Uz, Ur, Uh *tensor.Matrix // (Hidden x Hidden)
	Bz, Br, Bh tensor.Vector

	// packedCache caches the united weight views (packed.go); mutate a
	// weight matrix after construction only through code that calls
	// Invalidate.
	packedCache
}

// NewLayer returns a zero-weight layer.
func NewLayer(hidden, input int) *Layer {
	return &Layer{
		Hidden: hidden, Input: input,
		Wz: tensor.NewMatrix(hidden, input), Wr: tensor.NewMatrix(hidden, input),
		Wh: tensor.NewMatrix(hidden, input),
		Uz: tensor.NewMatrix(hidden, hidden), Ur: tensor.NewMatrix(hidden, hidden),
		Uh: tensor.NewMatrix(hidden, hidden),
		Bz: tensor.NewVector(hidden), Br: tensor.NewVector(hidden), Bh: tensor.NewVector(hidden),
	}
}

// UnitedUBytes is the footprint of the united U_{z,r,h} matrix.
func (l *Layer) UnitedUBytes() int64 {
	return 3 * int64(l.Hidden) * int64(l.Hidden) * 4
}

// Network is a stack of GRU layers with a linear head.
type Network struct {
	Layers   []*Layer
	Head     *tensor.Matrix
	HeadBias tensor.Vector
}

// NewNetwork builds a zero-weight GRU network.
func NewNetwork(input, hidden, layers, classes int) *Network {
	if layers < 1 || classes < 1 {
		tensor.Panicf("gru: network needs at least one layer and one class")
	}
	n := &Network{}
	in := input
	for i := 0; i < layers; i++ {
		n.Layers = append(n.Layers, NewLayer(hidden, in))
		in = hidden
	}
	n.Head = tensor.NewMatrix(classes, hidden)
	n.HeadBias = tensor.NewVector(classes)
	return n
}

// InitRandom fills the network with the synthetic trained-weight
// distribution, mirroring the LSTM generator: linkScale sets the
// per-layer recurrent magnitude, carryFrac the fraction of units whose
// update-gate bias sits low (z ~ 0, DRS-carry-prone).
func (n *Network) InitRandom(r *rng.RNG, linkScale func(layer int) float64, carryFrac float64) {
	for li, l := range n.Layers {
		d := 1.0
		if linkScale != nil {
			d = linkScale(li)
		}
		initLayer(r.Split(), l, d, carryFrac)
	}
	hr := r.Split()
	scale := 1.4 / sqrtf(float64(n.Head.Cols))
	for i := range n.Head.Data {
		n.Head.Data[i] = hr.NormF32(0, scale)
	}
	for i := range n.HeadBias {
		n.HeadBias[i] = hr.NormF32(0, 0.1)
	}
}

func initLayer(r *rng.RNG, l *Layer, dTarget, carryFrac float64) {
	defer l.Invalidate()
	h := float64(l.Hidden)
	sigmaU := dTarget / (h * 0.7979)
	for _, u := range []*tensor.Matrix{l.Uz, l.Ur, l.Uh} {
		for i := range u.Data {
			u.Data[i] = r.NormF32(0, sigmaU)
		}
	}
	sigmaW := 1.2 / sqrtf(float64(l.Input))
	for _, w := range []*tensor.Matrix{l.Wz, l.Wr, l.Wh} {
		for i := range w.Data {
			w.Data[i] = r.NormF32(0, sigmaW)
		}
	}
	// Update-gate bias spread places ~carryFrac of units below the
	// mid DRS threshold (z < 0.25: carry-dominated, DRS-trivial
	// candidate rows). The anchor is deliberately higher than the
	// LSTM's: a unit with z pinned at 0 carries its state forever, so
	// its context link can never be cut — keeping most carry units at
	// z ~ 0.1-0.25 bounds the carry memory to a few cells.
	muZ := logit(0.25) - probit(carryFrac)*2.0
	for j := 0; j < l.Hidden; j++ {
		l.Bz[j] = r.NormF32(muZ, 1.6)
		l.Br[j] = r.NormF32(0.2, 0.4)
		l.Bh[j] = r.NormF32(0, 0.3)
	}
}

// RunOptions selects the execution mode (mirrors lstm.RunOptions).
type RunOptions struct {
	Inter      bool
	AlphaInter float64
	MTS        int
	Predictors []intercell.Predictor // only the H vector is used

	Intra      bool
	AlphaIntra float64

	// Chain selects the accumulation chain (see lstm.RunOptions.Chain):
	// ChainAuto follows the process default, ChainAVX2 opts into the
	// wide FMA fast mode with its own wide-vs-wide bitwise contract.
	Chain tensor.KernelChain

	Trace *Trace
}

// Baseline returns exact-flow options.
func Baseline() RunOptions { return RunOptions{} }

// Trace records structural decisions (see lstm.Trace).
type Trace struct {
	Layers []LayerTrace
}

// LayerTrace is the per-layer record.
type LayerTrace struct {
	Layer         int
	Cells         int
	Relevance     []float64
	Breakpoints   []int
	SublayerSizes []int
	TissueSizes   []int
	SkipCounts    []int
}

// Run executes the network on one sequence and returns the logits. Like
// lstm.Run, the layer loop owns one scratch arena for the whole call, so
// the hot path performs no per-cell allocation.
func (n *Network) Run(xs []tensor.Vector, opt RunOptions) tensor.Vector {
	if len(xs) == 0 {
		tensor.Panicf("gru: empty input sequence")
	}
	if opt.Inter {
		if opt.MTS < 1 {
			tensor.Panicf("gru: Inter mode requires MTS >= 1")
		}
		if len(opt.Predictors) != len(n.Layers) {
			tensor.Panicf("gru: %d predictors for %d layers", len(opt.Predictors), len(n.Layers))
		}
	}
	kf := kernelsFor(opt.Chain)
	sc := newLayerScratch(n.Layers[0].Hidden, len(xs))
	seq := xs
	for li, l := range n.Layers {
		var lt *LayerTrace
		if opt.Trace != nil {
			opt.Trace.Layers = append(opt.Trace.Layers, LayerTrace{Layer: li, Cells: len(seq)})
			lt = &opt.Trace.Layers[len(opt.Trace.Layers)-1]
		}
		seq = n.runLayer(li, l, seq, opt, lt, sc, kf)
	}
	last := seq[len(seq)-1]
	logits := tensor.NewVector(n.Head.Rows)
	kf.gemv(logits, n.Head, last)
	tensor.Add(logits, logits, n.HeadBias)
	return logits
}

// Classify returns the argmax class.
func (n *Network) Classify(xs []tensor.Vector, opt RunOptions) int {
	return tensor.ArgMax(n.Run(xs, opt))
}

// layerScratch is the arena behind one GRU forward pass, mirroring the
// LSTM arena: per-cell buffers are carved out of a few growth-only
// slabs, and hidden outputs use two ping-pong slabs because layer k+1
// reads layer k's outputs while producing its own.
type layerScratch struct {
	hid      int
	cells    int
	capCells int

	wxFull *tensor.Matrix // capCells × 3h united W·x slab
	wx     *tensor.Matrix // first `cells` rows; row t = [xz|xr|xh]

	uz, ur tensor.Vector   // U_{z,r} · h_{t-1}, views into one 2h slab
	zr     []tensor.Vector // {uz, ur}: the PackedGemv destinations
	uh, rh tensor.Vector   // U_h · (r ⊙ h_{t-1}) and its operand

	zs, rs     []tensor.Vector // per-tissue update/reset gates
	zBuf, rBuf []float32
	skip       []bool

	hsA, hsB       []tensor.Vector // ping-pong per-cell hidden outputs
	hsABuf, hsBBuf []float32
	ping           bool

	states []tensor.Vector // per-sub-layer h, views into stBuf
	stBuf  []float32
	subOf  []int
}

func newLayerScratch(h, cells int) *layerScratch {
	sc := &layerScratch{}
	sc.reset(h, cells)
	return sc
}

// reset prepares the arena for a layer of the given shape, reallocating
// the slabs only when the shape outgrows them.
func (sc *layerScratch) reset(h, cells int) {
	if h != sc.hid || cells > sc.capCells {
		c := cells
		if h == sc.hid && c < sc.capCells {
			c = sc.capCells
		}
		sc.hid, sc.capCells = h, c
		sc.wxFull = tensor.NewMatrix(c, 3*h)
		zrBuf := tensor.NewVector(2 * h)
		sc.uz, sc.ur = zrBuf[:h], zrBuf[h:]
		sc.zr = []tensor.Vector{sc.uz, sc.ur}
		sc.uh = tensor.NewVector(h)
		sc.rh = tensor.NewVector(h)
		sc.skip = make([]bool, h)
		sc.zBuf = make([]float32, c*h)
		sc.rBuf = make([]float32, c*h)
		sc.hsABuf = make([]float32, c*h)
		sc.hsBBuf = make([]float32, c*h)
		sc.zs = make([]tensor.Vector, c)
		sc.rs = make([]tensor.Vector, c)
		sc.hsA = make([]tensor.Vector, c)
		sc.hsB = make([]tensor.Vector, c)
		for i := 0; i < c; i++ {
			sc.zs[i] = sc.zBuf[i*h : (i+1)*h]
			sc.rs[i] = sc.rBuf[i*h : (i+1)*h]
			sc.hsA[i] = sc.hsABuf[i*h : (i+1)*h]
			sc.hsB[i] = sc.hsBBuf[i*h : (i+1)*h]
		}
		sc.stBuf = make([]float32, c*h)
		sc.states = make([]tensor.Vector, c)
		sc.subOf = make([]int, c)
		sc.wx = nil
	}
	if sc.wx == nil || sc.wx.Rows != cells {
		sc.wx = sc.wxFull.RowBlock(0, cells)
	}
	sc.cells = cells
}

// state binds sub-layer si's hidden state to its arena slot without
// initializing the contents.
func (sc *layerScratch) state(si int) tensor.Vector {
	h := sc.hid
	sc.states[si] = sc.stBuf[si*h : (si+1)*h]
	return sc.states[si]
}

// nextHS flips the ping-pong and returns the hidden-output views for the
// current layer.
func (sc *layerScratch) nextHS() []tensor.Vector {
	sc.ping = !sc.ping
	if sc.ping {
		return sc.hsA[:sc.cells]
	}
	return sc.hsB[:sc.cells]
}

func (n *Network) runLayer(li int, l *Layer, xs []tensor.Vector, opt RunOptions, lt *LayerTrace, sc *layerScratch, kf *kernelFns) []tensor.Vector {
	nCells := len(xs)
	h := l.Hidden
	pw := l.packedWeights()
	sc.reset(h, nCells)

	// United input projections for the whole layer: one weight stream
	// over W_{z,r,h} (the §II-B counterpart of the LSTM's united
	// Sgemm(W_{f,i,c,o}, x)). Row t of wx is cell t's [xz|xr|xh].
	kf.packedGemm(sc.wx, pw.w, xs)
	wrow := func(t int) (xz, xr, xh tensor.Vector) {
		row := sc.wx.Row(t)
		return row[:h], row[h : 2*h], row[2*h:]
	}

	if !opt.Inter {
		// Sequential flow: one sub-layer, every cell its own tissue —
		// identical math to the generic path below with tissues of one,
		// without materializing the per-cell tissue slices.
		if lt != nil {
			lt.SublayerSizes = []int{nCells}
			ts := make([]int, nCells)
			for i := range ts {
				ts[i] = 1
			}
			lt.TissueSizes = ts
		}
		st := sc.state(0)
		st.Fill(0)
		hs := sc.nextHS()
		z, rv := sc.zs[0], sc.rs[0]
		for t := 0; t < nCells; t++ {
			kf.packedGemv(sc.zr, pw.uzr, st)
			xz, xr, xh := wrow(t)
			for j := 0; j < h; j++ {
				z[j] = tensor.Sigmoid(xz[j] + sc.uz[j] + l.Bz[j])
				rv[j] = tensor.Sigmoid(xr[j] + sc.ur[j] + l.Br[j])
			}
			var skip []bool
			var skipCount int
			if opt.Intra {
				skip, skipCount = tissueCarryRowsInto(sc.skip, sc.zs[:1], opt.AlphaIntra)
			}
			if lt != nil && opt.Intra {
				lt.SkipCounts = append(lt.SkipCounts, skipCount)
			}
			tensor.Mul(sc.rh, rv, st)
			kf.gemvRows(sc.uh, l.Uh, sc.rh, skip, 0)
			hNew := hs[t]
			for j := 0; j < h; j++ {
				if skip != nil && skip[j] {
					hNew[j] = st[j]
					continue
				}
				cand := tensor.Tanh(xh[j] + sc.uh[j] + l.Bh[j])
				hNew[j] = (1-z[j])*st[j] + z[j]*cand
			}
			copy(st, hNew)
		}
		return hs
	}

	var subs [][]int
	if nCells > 1 {
		an := newAnalyzer(l)
		rel := make([]float64, nCells-1)
		for t := 1; t < nCells; t++ {
			xz, xr, xh := wrow(t)
			rel[t-1] = an.relevance(xz, xr, xh)
		}
		breaks := intercell.Breakpoints(rel, opt.AlphaInter)
		subs = intercell.Sublayers(nCells, breaks)
		if lt != nil {
			lt.Relevance = rel
			lt.Breakpoints = breaks
		}
	} else {
		subs = intercell.Sublayers(nCells, nil)
	}
	tissues := intercell.AlignTissues(subs, opt.MTS)
	if lt != nil {
		lt.SublayerSizes = intercell.TissueSizes(subs)
		lt.TissueSizes = intercell.TissueSizes(tissues)
	}

	subOf := sc.subOf[:nCells]
	for si, s := range subs {
		for _, c := range s {
			subOf[c] = si
		}
	}
	states := sc.states[:len(subs)]
	for si := range states {
		st := sc.state(si)
		if si == 0 {
			st.Fill(0)
			continue
		}
		copy(st, opt.Predictors[li].H)
	}

	hs := sc.nextHS()
	for _, tissue := range tissues {
		// z and r first for every cell in the tissue: z gates the DRS
		// decision, and both need only h_{t-1} — so U_z and U_r run as
		// one united stream per cell.
		zs, rs := sc.zs[:len(tissue)], sc.rs[:len(tissue)]
		for ci, cell := range tissue {
			hPrev := states[subOf[cell]]
			kf.packedGemv(sc.zr, pw.uzr, hPrev)
			xz, xr, _ := wrow(cell)
			z, rv := zs[ci], rs[ci]
			for j := 0; j < h; j++ {
				z[j] = tensor.Sigmoid(xz[j] + sc.uz[j] + l.Bz[j])
				rv[j] = tensor.Sigmoid(xr[j] + sc.ur[j] + l.Br[j])
			}
		}
		// The tissue's shared skip set: candidate rows whose update gate
		// is near zero for every cell in the tissue.
		var skip []bool
		var skipCount int
		if opt.Intra {
			skip, skipCount = tissueCarryRowsInto(sc.skip, zs, opt.AlphaIntra)
		}
		if lt != nil {
			lt.SkipCounts = append(lt.SkipCounts, skipCount)
		}
		for ci, cell := range tissue {
			hPrev := states[subOf[cell]]
			tensor.Mul(sc.rh, rs[ci], hPrev)
			kf.gemvRows(sc.uh, l.Uh, sc.rh, skip, 0)
			z := zs[ci]
			_, _, xh := wrow(cell)
			hNew := hs[cell]
			for j := 0; j < h; j++ {
				if skip != nil && skip[j] {
					// Carry: h_t[j] ~ h_{t-1}[j] since z[j] ~ 0.
					hNew[j] = hPrev[j]
					continue
				}
				cand := tensor.Tanh(xh[j] + sc.uh[j] + l.Bh[j])
				hNew[j] = (1-z[j])*hPrev[j] + z[j]*cand
			}
			// Advance the sub-layer state in place; hNew stays valid in
			// the ping-pong slab as the layer output.
			copy(hPrev, hNew)
		}
	}
	return hs
}

// tissueCarryRows marks candidate rows skippable for a whole tissue: the
// update gate must be near zero for every cell in it.
func tissueCarryRows(zs []tensor.Vector, alpha float64) ([]bool, int) {
	if alpha <= 0 || len(zs) == 0 {
		return nil, 0
	}
	return tissueCarryRowsInto(make([]bool, len(zs[0])), zs, alpha)
}

// tissueCarryRowsInto is tissueCarryRows writing the mask into a
// caller-owned buffer, so per-tissue calls on the hot path do not
// allocate. Every element of dst is rewritten.
func tissueCarryRowsInto(dst []bool, zs []tensor.Vector, alpha float64) ([]bool, int) {
	if alpha <= 0 || len(zs) == 0 {
		return nil, 0
	}
	dim := len(zs[0])
	if len(dst) != dim {
		tensor.Panicf("gru: tissueCarryRowsInto mask length %d, want %d", len(dst), dim)
	}
	a := float32(alpha)
	count := 0
	for j := 0; j < dim; j++ {
		carry := true
		for _, z := range zs {
			if z[j] >= a {
				carry = false
				break
			}
		}
		dst[j] = carry
		if carry {
			count++
		}
	}
	return dst, count
}

// CollectPredictors runs the exact flow over the sequences and returns
// the Eq. 6 mean-link predictor per layer (GRUs have no cell state, so
// only the H vector is meaningful).
func CollectPredictors(n *Network, samples [][]tensor.Vector) []intercell.Predictor {
	stats := make([]*intercell.LinkStats, len(n.Layers))
	for i, l := range n.Layers {
		stats[i] = intercell.NewLinkStats(l.Hidden)
	}
	zero := map[int]tensor.Vector{}
	for i, l := range n.Layers {
		zero[i] = tensor.NewVector(l.Hidden)
	}
	var sc *layerScratch
	for _, xs := range samples {
		if sc == nil {
			sc = newLayerScratch(n.Layers[0].Hidden, len(xs))
		}
		seq := xs
		for li, l := range n.Layers {
			// Predictors are offline artifacts shared across chains:
			// always collect them on the canonical chain.
			hs := n.runLayer(li, l, seq, Baseline(), nil, sc, &canonicalKernels)
			for _, h := range hs {
				stats[li].Observe(h, zero[li])
			}
			seq = hs
		}
	}
	out := make([]intercell.Predictor, len(n.Layers))
	for i, s := range stats {
		out[i] = s.Predictor()
	}
	return out
}
