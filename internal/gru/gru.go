// Package gru applies the paper's optimizations to Gated Recurrent Unit
// networks — the extension the paper sketches in §II-B ("the proposed
// methods can also be applied to GRUs with simple adjustment").
//
// The GRU cell:
//
//	z_t = sigma(W_z x_t + U_z h_{t-1} + b_z)        (update gate)
//	r_t = sigma(W_r x_t + U_r h_{t-1} + b_r)        (reset gate)
//	~h_t = tanh(W_h x_t + U_h (r_t .* h_{t-1}) + b_h)
//	h_t  = (1 - z_t) .* h_{t-1} + z_t .* ~h_t
//
// The adjustments:
//
//   - Inter-cell: the context link carries h_{t-1} both directly (the
//     (1-z) carry) and through the gates. A link is weak for element j
//     only if the update gate is pinned open (z_t[j] ~ 1, killing the
//     carry) AND the candidate's activation input range is saturated.
//     Relevance mirrors Algorithm 2's overlap geometry over those two
//     conditions.
//   - Intra-cell (DRS): the update gate plays the output-filter role.
//     Where z_t[j] < alpha, h_t[j] ~ h_{t-1}[j] and the candidate row j
//     of U_h need not be loaded or computed — the skip approximates
//     h_t[j] by its carry, not by zero. Only the U_h block (a third of
//     the united matrix) is skippable, so GRU-DRS compresses less than
//     LSTM-DRS, but the skip is also gentler on accuracy.
package gru

import (
	"mobilstm/internal/intercell"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// Layer holds one GRU layer's weights, shared by all unrolled cells.
type Layer struct {
	Hidden, Input int

	Wz, Wr, Wh *tensor.Matrix // (Hidden x Input)
	Uz, Ur, Uh *tensor.Matrix // (Hidden x Hidden)
	Bz, Br, Bh tensor.Vector
}

// NewLayer returns a zero-weight layer.
func NewLayer(hidden, input int) *Layer {
	return &Layer{
		Hidden: hidden, Input: input,
		Wz: tensor.NewMatrix(hidden, input), Wr: tensor.NewMatrix(hidden, input),
		Wh: tensor.NewMatrix(hidden, input),
		Uz: tensor.NewMatrix(hidden, hidden), Ur: tensor.NewMatrix(hidden, hidden),
		Uh: tensor.NewMatrix(hidden, hidden),
		Bz: tensor.NewVector(hidden), Br: tensor.NewVector(hidden), Bh: tensor.NewVector(hidden),
	}
}

// UnitedUBytes is the footprint of the united U_{z,r,h} matrix.
func (l *Layer) UnitedUBytes() int64 {
	return 3 * int64(l.Hidden) * int64(l.Hidden) * 4
}

// Network is a stack of GRU layers with a linear head.
type Network struct {
	Layers   []*Layer
	Head     *tensor.Matrix
	HeadBias tensor.Vector
}

// NewNetwork builds a zero-weight GRU network.
func NewNetwork(input, hidden, layers, classes int) *Network {
	if layers < 1 || classes < 1 {
		tensor.Panicf("gru: network needs at least one layer and one class")
	}
	n := &Network{}
	in := input
	for i := 0; i < layers; i++ {
		n.Layers = append(n.Layers, NewLayer(hidden, in))
		in = hidden
	}
	n.Head = tensor.NewMatrix(classes, hidden)
	n.HeadBias = tensor.NewVector(classes)
	return n
}

// InitRandom fills the network with the synthetic trained-weight
// distribution, mirroring the LSTM generator: linkScale sets the
// per-layer recurrent magnitude, carryFrac the fraction of units whose
// update-gate bias sits low (z ~ 0, DRS-carry-prone).
func (n *Network) InitRandom(r *rng.RNG, linkScale func(layer int) float64, carryFrac float64) {
	for li, l := range n.Layers {
		d := 1.0
		if linkScale != nil {
			d = linkScale(li)
		}
		initLayer(r.Split(), l, d, carryFrac)
	}
	hr := r.Split()
	scale := 1.4 / sqrtf(float64(n.Head.Cols))
	for i := range n.Head.Data {
		n.Head.Data[i] = hr.NormF32(0, scale)
	}
	for i := range n.HeadBias {
		n.HeadBias[i] = hr.NormF32(0, 0.1)
	}
}

func initLayer(r *rng.RNG, l *Layer, dTarget, carryFrac float64) {
	h := float64(l.Hidden)
	sigmaU := dTarget / (h * 0.7979)
	for _, u := range []*tensor.Matrix{l.Uz, l.Ur, l.Uh} {
		for i := range u.Data {
			u.Data[i] = r.NormF32(0, sigmaU)
		}
	}
	sigmaW := 1.2 / sqrtf(float64(l.Input))
	for _, w := range []*tensor.Matrix{l.Wz, l.Wr, l.Wh} {
		for i := range w.Data {
			w.Data[i] = r.NormF32(0, sigmaW)
		}
	}
	// Update-gate bias spread places ~carryFrac of units below the
	// mid DRS threshold (z < 0.25: carry-dominated, DRS-trivial
	// candidate rows). The anchor is deliberately higher than the
	// LSTM's: a unit with z pinned at 0 carries its state forever, so
	// its context link can never be cut — keeping most carry units at
	// z ~ 0.1-0.25 bounds the carry memory to a few cells.
	muZ := logit(0.25) - probit(carryFrac)*2.0
	for j := 0; j < l.Hidden; j++ {
		l.Bz[j] = r.NormF32(muZ, 1.6)
		l.Br[j] = r.NormF32(0.2, 0.4)
		l.Bh[j] = r.NormF32(0, 0.3)
	}
}

// RunOptions selects the execution mode (mirrors lstm.RunOptions).
type RunOptions struct {
	Inter      bool
	AlphaInter float64
	MTS        int
	Predictors []intercell.Predictor // only the H vector is used

	Intra      bool
	AlphaIntra float64

	Trace *Trace
}

// Baseline returns exact-flow options.
func Baseline() RunOptions { return RunOptions{} }

// Trace records structural decisions (see lstm.Trace).
type Trace struct {
	Layers []LayerTrace
}

// LayerTrace is the per-layer record.
type LayerTrace struct {
	Layer         int
	Cells         int
	Relevance     []float64
	Breakpoints   []int
	SublayerSizes []int
	TissueSizes   []int
	SkipCounts    []int
}

// Run executes the network on one sequence and returns the logits.
func (n *Network) Run(xs []tensor.Vector, opt RunOptions) tensor.Vector {
	if len(xs) == 0 {
		tensor.Panicf("gru: empty input sequence")
	}
	if opt.Inter {
		if opt.MTS < 1 {
			tensor.Panicf("gru: Inter mode requires MTS >= 1")
		}
		if len(opt.Predictors) != len(n.Layers) {
			tensor.Panicf("gru: %d predictors for %d layers", len(opt.Predictors), len(n.Layers))
		}
	}
	seq := xs
	for li, l := range n.Layers {
		var lt *LayerTrace
		if opt.Trace != nil {
			opt.Trace.Layers = append(opt.Trace.Layers, LayerTrace{Layer: li, Cells: len(seq)})
			lt = &opt.Trace.Layers[len(opt.Trace.Layers)-1]
		}
		seq = n.runLayer(li, l, seq, opt, lt)
	}
	last := seq[len(seq)-1]
	logits := tensor.NewVector(n.Head.Rows)
	tensor.Gemv(logits, n.Head, last)
	tensor.Add(logits, logits, n.HeadBias)
	return logits
}

// Classify returns the argmax class.
func (n *Network) Classify(xs []tensor.Vector, opt RunOptions) int {
	return tensor.ArgMax(n.Run(xs, opt))
}

func (n *Network) runLayer(li int, l *Layer, xs []tensor.Vector, opt RunOptions, lt *LayerTrace) []tensor.Vector {
	nCells := len(xs)
	h := l.Hidden

	xz := make([]tensor.Vector, nCells)
	xr := make([]tensor.Vector, nCells)
	xh := make([]tensor.Vector, nCells)
	for t, x := range xs {
		xz[t], xr[t], xh[t] = tensor.NewVector(h), tensor.NewVector(h), tensor.NewVector(h)
		tensor.Gemv(xz[t], l.Wz, x)
		tensor.Gemv(xr[t], l.Wr, x)
		tensor.Gemv(xh[t], l.Wh, x)
	}

	var subs [][]int
	if opt.Inter && nCells > 1 {
		an := newAnalyzer(l)
		rel := make([]float64, nCells-1)
		for t := 1; t < nCells; t++ {
			rel[t-1] = an.relevance(xz[t], xr[t], xh[t])
		}
		breaks := intercell.Breakpoints(rel, opt.AlphaInter)
		subs = intercell.Sublayers(nCells, breaks)
		if lt != nil {
			lt.Relevance = rel
			lt.Breakpoints = breaks
		}
	} else {
		subs = intercell.Sublayers(nCells, nil)
	}
	var tissues [][]int
	if opt.Inter {
		tissues = intercell.AlignTissues(subs, opt.MTS)
	} else {
		tissues = intercell.AlignTissues(subs, 1)
	}
	if lt != nil {
		lt.SublayerSizes = intercell.TissueSizes(subs)
		lt.TissueSizes = intercell.TissueSizes(tissues)
	}

	subOf := make([]int, nCells)
	for si, s := range subs {
		for _, c := range s {
			subOf[c] = si
		}
	}
	states := make([]tensor.Vector, len(subs))
	for si := range states {
		if si == 0 || !opt.Inter {
			states[si] = tensor.NewVector(h)
			continue
		}
		states[si] = opt.Predictors[li].H.Clone()
	}

	hs := make([]tensor.Vector, nCells)
	uz := tensor.NewVector(h)
	ur := tensor.NewVector(h)
	uh := tensor.NewVector(h)
	rh := tensor.NewVector(h)
	zs := make([]tensor.Vector, 0, opt.MTS+1)
	rs := make([]tensor.Vector, 0, opt.MTS+1)

	for _, tissue := range tissues {
		// z and r first for every cell in the tissue: z gates the DRS
		// decision, and both need only h_{t-1}.
		zs, rs = zs[:0], rs[:0]
		for _, cell := range tissue {
			hPrev := states[subOf[cell]]
			tensor.Gemv(uz, l.Uz, hPrev)
			tensor.Gemv(ur, l.Ur, hPrev)
			z := tensor.NewVector(h)
			rv := tensor.NewVector(h)
			for j := 0; j < h; j++ {
				z[j] = tensor.Sigmoid(xz[cell][j] + uz[j] + l.Bz[j])
				rv[j] = tensor.Sigmoid(xr[cell][j] + ur[j] + l.Br[j])
			}
			zs = append(zs, z)
			rs = append(rs, rv)
		}
		// The tissue's shared skip set: candidate rows whose update gate
		// is near zero for every cell in the tissue.
		var skip []bool
		var skipCount int
		if opt.Intra {
			skip, skipCount = tissueCarryRows(zs, opt.AlphaIntra)
		}
		if lt != nil && (opt.Intra || opt.Inter) {
			lt.SkipCounts = append(lt.SkipCounts, skipCount)
		}
		for ci, cell := range tissue {
			hPrev := states[subOf[cell]]
			tensor.Mul(rh, rs[ci], hPrev)
			tensor.GemvRows(uh, l.Uh, rh, skip, 0)
			z := zs[ci]
			hNew := tensor.NewVector(h)
			for j := 0; j < h; j++ {
				if skip != nil && skip[j] {
					// Carry: h_t[j] ~ h_{t-1}[j] since z[j] ~ 0.
					hNew[j] = hPrev[j]
					continue
				}
				cand := tensor.Tanh(xh[cell][j] + uh[j] + l.Bh[j])
				hNew[j] = (1-z[j])*hPrev[j] + z[j]*cand
			}
			states[subOf[cell]] = hNew
			hs[cell] = hNew.Clone()
		}
	}
	return hs
}

// tissueCarryRows marks candidate rows skippable for a whole tissue: the
// update gate must be near zero for every cell in it.
func tissueCarryRows(zs []tensor.Vector, alpha float64) ([]bool, int) {
	if alpha <= 0 || len(zs) == 0 {
		return nil, 0
	}
	a := float32(alpha)
	dim := len(zs[0])
	skip := make([]bool, dim)
	count := 0
	for j := 0; j < dim; j++ {
		carry := true
		for _, z := range zs {
			if z[j] >= a {
				carry = false
				break
			}
		}
		if carry {
			skip[j] = true
			count++
		}
	}
	return skip, count
}

// CollectPredictors runs the exact flow over the sequences and returns
// the Eq. 6 mean-link predictor per layer (GRUs have no cell state, so
// only the H vector is meaningful).
func CollectPredictors(n *Network, samples [][]tensor.Vector) []intercell.Predictor {
	stats := make([]*intercell.LinkStats, len(n.Layers))
	for i, l := range n.Layers {
		stats[i] = intercell.NewLinkStats(l.Hidden)
	}
	zero := map[int]tensor.Vector{}
	for i, l := range n.Layers {
		zero[i] = tensor.NewVector(l.Hidden)
	}
	for _, xs := range samples {
		seq := xs
		for li, l := range n.Layers {
			hs := n.runLayer(li, l, seq, Baseline(), nil)
			for _, h := range hs {
				stats[li].Observe(h, zero[li])
			}
			seq = hs
		}
	}
	out := make([]intercell.Predictor, len(n.Layers))
	for i, s := range stats {
		out[i] = s.Predictor()
	}
	return out
}
