package gru

import (
	"sync"
	"sync/atomic"

	"mobilstm/internal/tensor"
)

// packedWeights holds the united row-wise weight views of one GRU layer
// — the §II-B adjustment of the paper's concatenation trick. The input
// projection packs all three gates; the recurrent side packs only U_z
// and U_r, which share the operand h_{t-1}. U_h stays per-gate because
// it multiplies r_t ⊙ h_{t-1}, an operand that exists only after the
// reset gate — and it is also the DRS-skippable block, served by
// GemvRows.
type packedWeights struct {
	// w is the united input projection (3h × Input), rows [z|r|h] — the
	// order the wx scratch rows are sliced in.
	w *tensor.Matrix
	// uzr is the united recurrent matrix for the two h_{t-1} gates
	// (2h × Hidden), rows [z|r].
	uzr *tensor.Matrix
}

// packedWeights returns the layer's cached united views, building them
// on first use. Same discipline as the LSTM cache: lock-free reads, a
// mutex-serialized double-checked build.
func (l *Layer) packedWeights() *packedWeights {
	if p := l.packed.Load(); p != nil {
		return p
	}
	l.packedMu.Lock()
	defer l.packedMu.Unlock()
	if p := l.packed.Load(); p != nil {
		return p
	}
	p := &packedWeights{
		w:   tensor.Pack(l.Wz, l.Wr, l.Wh),
		uzr: tensor.Pack(l.Uz, l.Ur),
	}
	l.packed.Store(p)
	return p
}

// Invalidate drops the cached united weight views. Every code path that
// mutates W_g or U_g after construction must call it.
func (l *Layer) Invalidate() { l.packed.Store(nil) }

// packedCache is the cache cell embedded in Layer (see lstm/packed.go:
// nil pointer means "not built", the mutex only guards the build).
type packedCache struct {
	packedMu sync.Mutex
	packed   atomic.Pointer[packedWeights]
}
