package gru

import (
	"testing"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// FuzzGRURunBatchEquivalence is the GRU twin of the LSTM batch fuzzer:
// rng-derived batch shapes and modes, every member bitwise identical
// to its serial run.
func FuzzGRURunBatchEquivalence(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r := rng.New(seed)
		n := testNet(r.Uint64(), 1+r.Intn(2), 4)
		b := 1 + r.Intn(6)
		seqs := make([][]tensor.Vector, b)
		for i, ln := range equivtest.RaggedLengths(r, b, 9) {
			xs := make([]tensor.Vector, ln)
			for t := range xs {
				v := tensor.NewVector(16)
				for j := range v {
					v[j] = r.NormF32(0, 1.5)
				}
				xs[t] = v
			}
			seqs[i] = xs
		}
		var opt RunOptions
		switch seed % 4 {
		case 1:
			opt = RunOptions{Intra: true, AlphaIntra: 0.02 + 0.3*r.Float64()}
		case 2:
			opt = RunOptions{Inter: true, AlphaInter: 4 * r.Float64(), MTS: 1 + r.Intn(4), Predictors: zeroPreds(n)}
		case 3:
			opt = RunOptions{
				Inter: true, AlphaInter: 4 * r.Float64(), MTS: 1 + r.Intn(4), Predictors: zeroPreds(n),
				Intra: true, AlphaIntra: 0.02 + 0.3*r.Float64(),
			}
		}
		got, err := n.RunBatchE(seqs, opt)
		if err != nil {
			t.Fatalf("RunBatchE: %v", err)
		}
		for i, xs := range seqs {
			equivtest.Vectors(t, "member", got[i], n.Run(xs, opt))
		}
	})
}
