package gru

import (
	"strings"
	"testing"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// raggedSeqsFor draws count sequences of harness-generated ragged
// lengths in [1, maxLen].
func raggedSeqsFor(seed uint64, maxLen, count int) [][]tensor.Vector {
	r := rng.New(seed)
	lens := equivtest.RaggedLengths(r, count, maxLen)
	out := make([][]tensor.Vector, count)
	for i, ln := range lens {
		xs := make([]tensor.Vector, ln)
		for t := range xs {
			v := tensor.NewVector(16)
			for j := range v {
				v[j] = r.NormF32(0, 1.5)
			}
			xs[t] = v
		}
		out[i] = xs
	}
	return out
}

func gruBatchModes(n *Network) map[string]RunOptions {
	return map[string]RunOptions{
		"baseline": Baseline(),
		"intra":    {Intra: true, AlphaIntra: 0.15},
		"inter":    {Inter: true, AlphaInter: 2, MTS: 4, Predictors: zeroPreds(n)},
		"combined": {Inter: true, AlphaInter: 2, MTS: 4, Predictors: zeroPreds(n), Intra: true, AlphaIntra: 0.15},
	}
}

// TestGRURunBatchMatchesSerial pins the GRU batched-forward contract:
// member i of RunBatch is bitwise identical to serial Run(seqs[i]) in
// every mode, at every batch size, over ragged lengths.
func TestGRURunBatchMatchesSerial(t *testing.T) {
	n := testNet(311, 2, 5)
	for name, opt := range gruBatchModes(n) {
		for bi, b := range []int{1, 2, 3, 5} {
			seqs := raggedSeqsFor(312+uint64(bi), 15, b)
			want := make([]tensor.Vector, b)
			for i, xs := range seqs {
				want[i] = n.Run(xs, opt)
			}
			got := n.RunBatch(seqs, opt)
			equivtest.Batch(t, name, got, want)
		}
	}
}

// TestGRUClassifyBatchMatchesSerial pins the classification wrappers.
func TestGRUClassifyBatchMatchesSerial(t *testing.T) {
	n := testNet(313, 2, 6)
	for name, opt := range gruBatchModes(n) {
		seqs := raggedSeqsFor(314, 12, 4)
		want := make([]int, len(seqs))
		for i, xs := range seqs {
			want[i] = n.Classify(xs, opt)
		}
		equivtest.Classes(t, name, n.ClassifyBatch(seqs, opt), want)
		gotE, err := n.ClassifyBatchE(seqs, opt)
		if err != nil {
			t.Fatalf("%s: ClassifyBatchE: %v", name, err)
		}
		equivtest.Classes(t, name+" (E)", gotE, want)
	}
}

// TestGRURunBatchEValidation pins the error contract of the Guard
// boundary.
func TestGRURunBatchEValidation(t *testing.T) {
	n := testNet(315, 2, 3)
	good := seqsFor(316, 5, 1)[0]
	cases := []struct {
		name string
		seqs [][]tensor.Vector
		opt  RunOptions
		want string
	}{
		{"empty batch", nil, Baseline(), "empty batch"},
		{"empty member", [][]tensor.Vector{good, {}}, Baseline(), "empty input sequence"},
		{"trace", [][]tensor.Vector{good}, RunOptions{Trace: &Trace{}}, "per-sequence"},
		{"inter no mts", [][]tensor.Vector{good}, RunOptions{Inter: true}, "MTS"},
		{"inter predictors", [][]tensor.Vector{good}, RunOptions{Inter: true, MTS: 2}, "predictors"},
	}
	for _, tc := range cases {
		if _, err := n.RunBatchE(tc.seqs, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := n.RunBatchE([][]tensor.Vector{good, good}, Baseline()); err != nil {
		t.Fatalf("valid batch after failures: %v", err)
	}
}
