package gru

import (
	"sort"

	"mobilstm/internal/gpu"
	"mobilstm/internal/intercell"
	"mobilstm/internal/kernels"
	"mobilstm/internal/rng"
	"mobilstm/internal/stats"
	"mobilstm/internal/tensor"
	"mobilstm/internal/thresholds"
)

// Benchmark describes a GRU workload; the zoo mirrors representative
// mobile GRU deployments (GRUs are the lighter RNN of choice on phones).
type Benchmark struct {
	Name                            string
	Hidden, Layers, Length, Classes int
	PauseRate, CarryFrac            float64
	Seed                            uint64
}

// Zoo returns the built-in GRU benchmarks: a keyword-spotting-sized
// model, a BABI-shaped QA model and an MT-shaped translation model.
func Zoo() []Benchmark {
	return []Benchmark{
		{Name: "KWS-GRU", Hidden: 128, Layers: 2, Length: 60, Classes: 8,
			PauseRate: 0.35, CarryFrac: 0.5, Seed: 0x9a01},
		{Name: "QA-GRU", Hidden: 256, Layers: 3, Length: 86, Classes: 12,
			PauseRate: 0.4, CarryFrac: 0.5, Seed: 0x9b02},
		{Name: "MT-GRU", Hidden: 500, Layers: 4, Length: 50, Classes: 12,
			PauseRate: 0.28, CarryFrac: 0.52, Seed: 0x9c03},
	}
}

// ZooByName looks up a GRU benchmark.
func ZooByName(name string) (Benchmark, bool) {
	for _, b := range Zoo() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Engine evaluates the adjusted optimizations on one GRU benchmark —
// the GRU counterpart of core.Engine, kept deliberately lean.
type Engine struct {
	B   Benchmark
	Cfg gpu.Config

	Net        *Network
	Seqs       [][]tensor.Vector
	RefLabels  []int
	Predictors []intercell.Predictor
	MTS        int

	relDist []float64
	sim     *gpu.Simulator
	baseCyc float64
}

// EngineProfile bounds the numeric shapes (mirrors model.Profile).
type EngineProfile struct {
	HiddenCap, LengthCap int
	AccSamples           int
	StatSamples          int
}

// QuickProfile is the default evaluation profile.
func QuickProfile() EngineProfile {
	return EngineProfile{HiddenCap: 128, LengthCap: 40, AccSamples: 30, StatSamples: 3}
}

// NewEngine builds the benchmark: synthetic calibrated network, corpus,
// Eq. 6 predictors and platform MTS.
func NewEngine(b Benchmark, p EngineProfile, cfg gpu.Config) *Engine {
	h := capInt(b.Hidden, p.HiddenCap)
	length := capInt(b.Length, p.LengthCap)
	r := rng.New(b.Seed)

	net := NewNetwork(h, h, b.Layers, b.Classes)
	net.InitRandom(r.Split(), func(l int) float64 { return 1 + 0.15*float64(l) }, b.CarryFrac)
	calGen := r.Split()
	cal := make([][]tensor.Vector, 3)
	for i := range cal {
		cal[i] = genSeq(calGen, h, length, b.PauseRate)
	}
	Calibrate(net, cal, func(l int) float64 { return 1.2 + 0.4*float64(l) })

	e := &Engine{B: b, Cfg: cfg, Net: net, sim: gpu.NewSimulator(cfg)}
	e.MTS = gruMTS(cfg, b.Hidden)
	gen := r.Split()

	// Noise-calibrated margin floor, mirroring the LSTM corpus builder:
	// keep samples whose decision margin exceeds the measured logit
	// perturbation at a mid-sweep reference point.
	minMargin := e.referenceMargin(gen, h, length)

	total := p.AccSamples + p.StatSamples
	for len(e.Seqs) < total {
		xs := genSeq(gen, h, length, b.PauseRate)
		logits := net.Run(xs, Baseline())
		best := tensor.ArgMax(logits)
		margin := float32(1e9)
		for j, v := range logits {
			if j != best && logits[best]-v < margin {
				margin = logits[best] - v
			}
		}
		//lint:ignore float64leak float32-to-float64 widening is exact; this margin filter is corpus acceptance, not a DRS threshold compare
		if float64(margin) < minMargin {
			continue
		}
		e.Seqs = append(e.Seqs, xs)
		e.RefLabels = append(e.RefLabels, best)
	}
	e.Predictors = CollectPredictors(net, e.Seqs[p.AccSamples:])
	e.collectRelevance(p.AccSamples)
	return e
}

// referenceMargin measures the benchmark's margin floor: 1.7x the median
// logit perturbation of the combined adjusted flow at its reference
// point, capped at the 90th percentile of raw margins so acceptance
// never collapses.
func (e *Engine) referenceMargin(gen *rng.RNG, h, length int) float64 {
	const probeN = 16
	probes := make([][]tensor.Vector, probeN)
	margins := make([]float64, probeN)
	for i := range probes {
		probes[i] = genSeq(gen, h, length, e.B.PauseRate)
		logits := e.Net.Run(probes[i], Baseline())
		best := tensor.ArgMax(logits)
		m := float32(1e18)
		for j, v := range logits {
			if j != best && logits[best]-v < m {
				m = logits[best] - v
			}
		}
		margins[i] = float64(m)
	}
	preds := CollectPredictors(e.Net, probes[:1])
	tr := &Trace{}
	e.Net.Run(probes[0], RunOptions{Inter: true, MTS: e.MTS, Predictors: preds, Trace: tr})
	var rels []float64
	for _, lt := range tr.Layers {
		rels = append(rels, lt.Relevance...)
	}
	var alpha float64
	if len(rels) > 0 {
		alpha = stats.QuantileOf(rels, thresholds.GRUCalibInterQuantile)
	}
	opt := RunOptions{Inter: true, AlphaInter: alpha, MTS: e.MTS, Predictors: preds,
		Intra: true, AlphaIntra: thresholds.GRUCalibAlphaIntra}
	dists := make([]float64, 0, 8)
	for _, xs := range probes[:8] {
		base := e.Net.Run(xs, Baseline())
		approx := e.Net.Run(xs, opt)
		// The max-|diff| scan stays in float32 — the pipeline's native
		// precision — and widens only at the stats boundary.
		var d float32
		for j := range base {
			v := base[j] - approx[j]
			if v < 0 {
				v = -v
			}
			if v > d {
				d = v
			}
		}
		dists = append(dists, float64(d))
	}
	noise := stats.Median(dists)
	minMargin := 1.7 * noise
	if cap := stats.QuantileOf(margins, 0.9); minMargin > cap {
		minMargin = cap
	}
	return minMargin
}

func capInt(v, c int) int {
	if c > 0 && v > c {
		return c
	}
	return v
}

func genSeq(r *rng.RNG, dim, length int, pauseRate float64) []tensor.Vector {
	xs := make([]tensor.Vector, length)
	for t := range xs {
		v := tensor.NewVector(dim)
		scale := 1.0
		if r.Bernoulli(pauseRate) {
			u := r.Float64()
			scale = 1.2 + 5*u*u
		}
		for j := range v {
			v[j] = r.NormF32(0, scale)
		}
		xs[t] = v
	}
	return xs
}

// gruMTS finds the GRU tissue bound on this platform.
func gruMTS(cfg gpu.Config, hidden int) int {
	kb := kernels.NewBuilder(cfg)
	mts := 1
	for t := 1; t <= 16; t++ {
		if _, re := kb.GRUSgemmTissue(hidden, t); re {
			break
		}
		mts = t
	}
	return mts
}

func (e *Engine) collectRelevance(accSamples int) {
	for _, xs := range e.Seqs[accSamples:] {
		tr := &Trace{}
		e.Net.Run(xs, RunOptions{Inter: true, MTS: e.MTS, Predictors: e.Predictors, Trace: tr})
		for _, lt := range tr.Layers {
			e.relDist = append(e.relDist, lt.Relevance...)
		}
	}
	sort.Float64s(e.relDist)
}

// Thresholds maps set 0..10 to (alpha_inter, alpha_intra), walking the
// relevance quantiles like the LSTM engine.
func (e *Engine) Thresholds(set int) (float64, float64) {
	if set < 0 {
		set = 0
	}
	if set > 10 {
		set = 10
	}
	f := float64(set) / 10
	alphaIntra := thresholds.AlphaIntraMax * f
	if set == 0 || len(e.relDist) == 0 {
		return 0, alphaIntra
	}
	// The GRU division walk is shallower than the LSTM's (30th
	// percentile at set 10): carry-dominated units give GRU layers
	// fewer genuinely weak links, so the extension leans on DRS.
	return stats.Quantile(e.relDist, f*thresholds.GRUQuantileDepth) * thresholds.TieBreakUp, alphaIntra
}

// Outcome is one evaluated GRU operating point.
type Outcome struct {
	Set               int
	Speedup, Accuracy float64
	SkipFrac          float64
	BreakRate         float64
}

// Evaluate measures the combined adjusted optimizations at one set.
func (e *Engine) Evaluate(set int) Outcome {
	if e.baseCyc == 0 {
		e.baseCyc = e.simulate(0, 0)
	}
	if set <= 0 {
		return Outcome{Set: 0, Speedup: 1, Accuracy: 1}
	}
	ai, aa := e.Thresholds(set)
	opt := RunOptions{
		Inter: true, AlphaInter: ai, MTS: e.MTS, Predictors: e.Predictors,
		Intra: true, AlphaIntra: aa,
	}
	// Structural stats + accuracy from the numeric pipeline.
	var links, breaks, skipSum, skipUnits float64
	match := 0
	for i, xs := range e.Seqs {
		o := opt
		tr := &Trace{}
		o.Trace = tr
		if e.Net.Classify(xs, o) == e.RefLabels[i] {
			match++
		}
		for _, lt := range tr.Layers {
			links += float64(len(lt.Relevance))
			breaks += float64(len(lt.Breakpoints))
			for _, c := range lt.SkipCounts {
				skipSum += float64(c)
				skipUnits++
			}
		}
	}
	out := Outcome{
		Set:      set,
		Accuracy: float64(match) / float64(len(e.Seqs)),
	}
	if links > 0 {
		out.BreakRate = breaks / links
	}
	if skipUnits > 0 {
		out.SkipFrac = skipSum / (skipUnits * float64(e.Net.Layers[0].Hidden))
	}
	out.Speedup = e.baseCyc / e.simulate(out.BreakRate, out.SkipFrac)
	return out
}

// simulate lowers the GRU flow at the given structural rates to kernels
// on the full benchmark shape and returns cycles.
func (e *Engine) simulate(breakRate, skipFrac float64) float64 {
	kb := kernels.NewBuilder(e.Cfg)
	r := rng.New(e.B.Seed ^ 0x6a)
	var ks []gpu.KernelSpec
	h := e.B.Hidden
	for layer := 0; layer < e.B.Layers; layer++ {
		ks = append(ks, kb.GRUSgemmWx(h, h, e.B.Length))
		if breakRate == 0 && skipFrac == 0 {
			for c := 0; c < e.B.Length; c++ {
				ks = append(ks, kb.GRUSgemvU(h), kb.GRUEW(h, 1))
			}
			continue
		}
		var bps []int
		for t := 1; t < e.B.Length; t++ {
			if r.Bernoulli(breakRate) {
				bps = append(bps, t)
			}
		}
		subs := intercell.Sublayers(e.B.Length, bps)
		tissues := intercell.AlignTissues(subs, e.MTS)
		skip := int(skipFrac * float64(h))
		for _, tis := range tissues {
			k, _ := kb.GRUSgemmTissue(h, len(tis))
			// Split flow: z,r first, then the skipped candidate gemm.
			// Model as the united tissue gemm for the z,r share plus
			// the skipped U_h portion.
			zr := k
			zr.FLOPs *= 2.0 / 3
			zr.DRAMBytes *= 2.0 / 3
			zr.SharedBytes *= 2.0 / 3
			uh := k
			live := 1 - float64(skip)/float64(h)
			uh.FLOPs *= live / 3
			uh.DRAMBytes *= live / 3
			uh.SharedBytes *= live / 3
			uh.ExtraCycles += kb.CRM().Reorganize(h, skip)
			ks = append(ks, zr, kb.GRUDRS(h, skip), uh, kb.GRUEW(h, len(tis)))
		}
	}
	return e.sim.Run(ks).Cycles
}
