package gru

import "mobilstm/internal/tensor"

// kernelFns binds the GRU layer loop to one accumulation chain,
// mirroring the lstm binding: a forward pass resolves
// RunOptions.Chain once and routes every chain-sensitive kernel
// through the same family, so a run never mixes the canonical and wide
// chains. Element-wise gate math is chain-independent and stays
// direct; CollectPredictors stays canonical — predictors are offline
// artifacts shared across chains.
type kernelFns struct {
	gemv           func(tensor.Vector, *tensor.Matrix, tensor.Vector)
	gemvRows       func(tensor.Vector, *tensor.Matrix, tensor.Vector, []bool, float32)
	packedGemv     func([]tensor.Vector, *tensor.Matrix, tensor.Vector)
	packedGemm     func(*tensor.Matrix, *tensor.Matrix, []tensor.Vector)
	packedGemmRows func(*tensor.Matrix, *tensor.Matrix, []tensor.Vector, [][]bool, float32)
}

var (
	canonicalKernels = kernelFns{
		gemv:           tensor.Gemv,
		gemvRows:       tensor.GemvRows,
		packedGemv:     tensor.PackedGemv,
		packedGemm:     tensor.PackedGemm,
		packedGemmRows: tensor.PackedGemmRows,
	}
	wideKernels = kernelFns{
		gemv:           tensor.WideGemv,
		gemvRows:       tensor.WideGemvRows,
		packedGemv:     tensor.WidePackedGemv,
		packedGemm:     tensor.WidePackedGemm,
		packedGemmRows: tensor.WidePackedGemmRows,
	}
)

// kernelsFor resolves a RunOptions chain selection to its kernel
// binding (see lstm.kernelsFor).
func kernelsFor(c tensor.KernelChain) *kernelFns {
	if tensor.ResolveChain(c) == tensor.ChainAVX2 {
		return &wideKernels
	}
	return &canonicalKernels
}
