package gru

import (
	"runtime"
	"testing"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/tensor"
)

// TestGRURunBitwiseIdenticalAcrossGOMAXPROCS is the GRU twin of the LSTM
// network-level determinism test: the packed W·x stage may fork worker
// goroutines above the size gate, and sharding must never move a bit.
func TestGRURunBitwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	n := testNet(97, 2, 5)
	xs := seqsFor(98, 40, 1)[0]
	modes := map[string]RunOptions{
		"baseline": Baseline(),
		"intra":    {Intra: true, AlphaIntra: 0.15},
		"combined": {Inter: true, AlphaInter: 2, MTS: 4, Predictors: zeroPreds(n), Intra: true, AlphaIntra: 0.15},
	}
	for name, opt := range modes {
		ref := n.Run(xs, opt)
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := n.Run(xs, opt)
			runtime.GOMAXPROCS(prev)
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("%s: logit %d differs at GOMAXPROCS=%d: %v vs %v",
						name, j, procs, got[j], ref[j])
				}
			}
		}
	}
}

// TestGRUInvalidateRefreshesPackedCache pins the united-weight cache
// contract for GRU layers.
func TestGRUInvalidateRefreshesPackedCache(t *testing.T) {
	n := testNet(99, 1, 3)
	xs := seqsFor(100, 6, 1)[0]
	before := n.Run(xs, Baseline())

	l := n.Layers[0]
	for i := range l.Wz.Data {
		l.Wz.Data[i] *= 1.5
	}
	stale := n.Run(xs, Baseline())
	for j := range before {
		if stale[j] != before[j] {
			t.Fatalf("mutation visible without Invalidate: logit %d %v vs %v", j, stale[j], before[j])
		}
	}

	l.Invalidate()
	fresh := n.Run(xs, Baseline())
	same := true
	for j := range before {
		if fresh[j] != before[j] {
			same = false
		}
	}
	if same {
		t.Fatal("Invalidate did not pick up the weight mutation")
	}
}

// TestGRURunBatchBitwiseIdenticalAcrossGOMAXPROCS is the GRU twin of
// the LSTM batched determinism test: a ragged batch must match its
// per-member serial runs bit for bit at any GOMAXPROCS.
func TestGRURunBatchBitwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	n := testNet(97, 2, 5)
	seqs := [][]tensor.Vector{
		seqsFor(98, 40, 1)[0],
		seqsFor(101, 17, 1)[0],
		seqsFor(102, 29, 1)[0],
		seqsFor(103, 40, 1)[0],
	}
	for name, opt := range gruBatchModes(n) {
		want := make([]tensor.Vector, len(seqs))
		for i, xs := range seqs {
			want[i] = n.Run(xs, opt)
		}
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := n.RunBatch(seqs, opt)
			runtime.GOMAXPROCS(prev)
			equivtest.Batch(t, name, got, want)
		}
	}
}

// TestGRUConcurrentRunBatchSharesColdCache races first-use builds of
// the GRU packed cache through the batch path; run under -race in CI.
func TestGRUConcurrentRunBatchSharesColdCache(t *testing.T) {
	n := testNet(89, 2, 4)
	seqs := [][]tensor.Vector{
		seqsFor(90, 18, 1)[0],
		seqsFor(104, 9, 1)[0],
		seqsFor(105, 18, 1)[0],
	}
	ref := testNet(89, 2, 4)
	want := make([]tensor.Vector, len(seqs))
	for i, xs := range seqs {
		want[i] = ref.Run(xs, Baseline())
	}

	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const workers = 8
	results := make([][]tensor.Vector, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			results[w] = n.RunBatch(seqs, Baseline())
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for _, got := range results {
		equivtest.Batch(t, "worker", got, want)
	}
}
