package gru

import (
	"runtime"
	"testing"
)

// TestGRURunBitwiseIdenticalAcrossGOMAXPROCS is the GRU twin of the LSTM
// network-level determinism test: the packed W·x stage may fork worker
// goroutines above the size gate, and sharding must never move a bit.
func TestGRURunBitwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	n := testNet(97, 2, 5)
	xs := seqsFor(98, 40, 1)[0]
	modes := map[string]RunOptions{
		"baseline": Baseline(),
		"intra":    {Intra: true, AlphaIntra: 0.15},
		"combined": {Inter: true, AlphaInter: 2, MTS: 4, Predictors: zeroPreds(n), Intra: true, AlphaIntra: 0.15},
	}
	for name, opt := range modes {
		ref := n.Run(xs, opt)
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := n.Run(xs, opt)
			runtime.GOMAXPROCS(prev)
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("%s: logit %d differs at GOMAXPROCS=%d: %v vs %v",
						name, j, procs, got[j], ref[j])
				}
			}
		}
	}
}

// TestGRUInvalidateRefreshesPackedCache pins the united-weight cache
// contract for GRU layers.
func TestGRUInvalidateRefreshesPackedCache(t *testing.T) {
	n := testNet(99, 1, 3)
	xs := seqsFor(100, 6, 1)[0]
	before := n.Run(xs, Baseline())

	l := n.Layers[0]
	for i := range l.Wz.Data {
		l.Wz.Data[i] *= 1.5
	}
	stale := n.Run(xs, Baseline())
	for j := range before {
		if stale[j] != before[j] {
			t.Fatalf("mutation visible without Invalidate: logit %d %v vs %v", j, stale[j], before[j])
		}
	}

	l.Invalidate()
	fresh := n.Run(xs, Baseline())
	same := true
	for j := range before {
		if fresh[j] != before[j] {
			same = false
		}
	}
	if same {
		t.Fatal("Invalidate did not pick up the weight mutation")
	}
}
