package gru

import (
	"mobilstm/internal/tensor"
)

// The GRU batch-B forward path, mirroring the LSTM's: per timestep the
// active members' recurrent products run as batched united GEMMs
// (U_{z,r}, then U_h under the per-member carry masks), so the
// recurrent weights stream once for the whole batch instead of once
// per member. Output i of RunBatch(seqs...) is bitwise identical to
// serial Run(seqs[i]) in every mode, at every GOMAXPROCS — the batched
// kernels evaluate the same dotRow chains and float32 expressions in
// the same order; only the loop that walks them changes. Ragged
// lengths batch in lockstep: short members drop out of the active set
// when they finish, with no padding compute.

// RunBatch executes the network on a batch of input sequences and
// returns one logits vector per member, bitwise identical to Run on
// each member alone. A non-nil opt.Trace rejects the batch (tracing is
// per-sequence); Inter mode falls back to per-member execution over
// one shared arena, since its structure is data-dependent per member.
func (n *Network) RunBatch(seqs [][]tensor.Vector, opt RunOptions) []tensor.Vector {
	n.checkBatch(seqs, opt)
	if opt.Inter {
		return n.runBatchSerial(seqs, opt)
	}

	lens := make([]int, len(seqs))
	total := 0
	for i, xs := range seqs {
		lens[i] = len(xs)
		total += len(xs)
	}
	kf := kernelsFor(opt.Chain)
	sc := newBatchScratch(n.Layers[0].Hidden, lens)

	flat := make([]tensor.Vector, 0, total)
	for _, xs := range seqs {
		flat = append(flat, xs...)
	}
	seq := flat
	for _, l := range n.Layers {
		seq = n.runLayerBatch(l, seq, opt, sc, kf)
	}
	out := make([]tensor.Vector, len(seqs))
	for i := range seqs {
		out[i] = n.headLogits(seq[sc.offs[i]+sc.lens[i]-1], kf)
	}
	return out
}

// RunBatchE is the error-returning RunBatch (tensor.Guard boundary).
func (n *Network) RunBatchE(seqs [][]tensor.Vector, opt RunOptions) (logits []tensor.Vector, err error) {
	defer tensor.Guard(&err)
	return n.RunBatch(seqs, opt), nil
}

// ClassifyBatch runs the batch and returns the argmax class per member.
func (n *Network) ClassifyBatch(seqs [][]tensor.Vector, opt RunOptions) []int {
	outs := n.RunBatch(seqs, opt)
	classes := make([]int, len(outs))
	for i, logits := range outs {
		classes[i] = tensor.ArgMax(logits)
	}
	return classes
}

// ClassifyBatchE is the error-returning ClassifyBatch.
func (n *Network) ClassifyBatchE(seqs [][]tensor.Vector, opt RunOptions) (classes []int, err error) {
	defer tensor.Guard(&err)
	return n.ClassifyBatch(seqs, opt), nil
}

// headLogits applies the linear head to a final hidden state, returning
// freshly allocated logits (never an arena view).
func (n *Network) headLogits(last tensor.Vector, kf *kernelFns) tensor.Vector {
	logits := tensor.NewVector(n.Head.Rows)
	kf.gemv(logits, n.Head, last)
	tensor.Add(logits, logits, n.HeadBias)
	return logits
}

// checkBatch applies Run's validation across the batch.
func (n *Network) checkBatch(seqs [][]tensor.Vector, opt RunOptions) {
	if len(seqs) == 0 {
		tensor.Panicf("gru: empty batch")
	}
	for i, xs := range seqs {
		if len(xs) == 0 {
			tensor.Panicf("gru: batch member %d is an empty input sequence", i)
		}
	}
	if opt.Trace != nil {
		tensor.Panicf("gru: Trace is per-sequence; run batch members serially to trace")
	}
	if opt.Inter {
		if opt.MTS < 1 {
			tensor.Panicf("gru: Inter mode requires MTS >= 1")
		}
		if len(opt.Predictors) != len(n.Layers) {
			tensor.Panicf("gru: %d predictors for %d layers", len(opt.Predictors), len(n.Layers))
		}
	}
}

// runBatchSerial is the Inter-mode batch path: members run one at a
// time through the serial layer flow, sharing one arena.
func (n *Network) runBatchSerial(seqs [][]tensor.Vector, opt RunOptions) []tensor.Vector {
	maxLen := 0
	for _, xs := range seqs {
		if len(xs) > maxLen {
			maxLen = len(xs)
		}
	}
	sc := newLayerScratch(n.Layers[0].Hidden, maxLen)
	kf := kernelsFor(opt.Chain)
	out := make([]tensor.Vector, len(seqs))
	for i, xs := range seqs {
		seq := xs
		for li, l := range n.Layers {
			seq = n.runLayer(li, l, seq, opt, nil, sc, kf)
		}
		out[i] = n.headLogits(seq[len(seq)-1], kf)
	}
	return out
}

// batchScratch is the arena behind one batched GRU forward pass,
// mirroring the LSTM batch arena: flat slabs per cell (wx, hidden
// ping-pong), per-member slabs for gates, masks, states and the r⊙h
// operand. Growth-only.
type batchScratch struct {
	hid        int
	members    int
	capMembers int
	total      int
	capTotal   int

	lens []int
	offs []int

	wxFull *tensor.Matrix // capTotal × 3h united W·x slab
	wx     *tensor.Matrix // first `total` rows; row offs[i]+t = member i cell t

	// Batched recurrent products of one step's active set: zrB rows are
	// [uz|ur] (2h wide), uhB rows are U_h·(r⊙h) (h wide). Views are
	// re-headed per step so the hot loop allocates nothing.
	zrBuf, uhBuf []float32
	zrB, uhB     tensor.Matrix

	zs, rs     []tensor.Vector // per-member update/reset gates
	zBuf, rBuf []float32
	rhs        []tensor.Vector // per-member r ⊙ h_{t-1} (the U_h operand)
	rhBuf      []float32

	masks   [][]bool // per-member carry masks, views into maskBuf
	maskBuf []bool
	skips   [][]bool        // active members' masks for PackedGemmRows
	zsOne   []tensor.Vector // single-cell tissue argument for the carry scan

	hsA, hsB       []tensor.Vector
	hsABuf, hsBBuf []float32
	ping           bool

	states []tensor.Vector // per-member h, views into stBuf
	stBuf  []float32

	active []int
	gather []tensor.Vector
}

func newBatchScratch(h int, lens []int) *batchScratch {
	sc := &batchScratch{}
	sc.reset(h, lens)
	return sc
}

func (sc *batchScratch) reset(h int, lens []int) {
	members := len(lens)
	total := 0
	for _, ln := range lens {
		total += ln
	}
	if h != sc.hid || members > sc.capMembers || total > sc.capTotal {
		cm, ct := members, total
		if h == sc.hid {
			if cm < sc.capMembers {
				cm = sc.capMembers
			}
			if ct < sc.capTotal {
				ct = sc.capTotal
			}
		}
		sc.hid, sc.capMembers, sc.capTotal = h, cm, ct
		sc.wxFull = tensor.NewMatrix(ct, 3*h)
		sc.zrBuf = make([]float32, cm*2*h)
		sc.uhBuf = make([]float32, cm*h)
		sc.zBuf = make([]float32, cm*h)
		sc.rBuf = make([]float32, cm*h)
		sc.rhBuf = make([]float32, cm*h)
		sc.maskBuf = make([]bool, cm*h)
		sc.zs = make([]tensor.Vector, cm)
		sc.rs = make([]tensor.Vector, cm)
		sc.rhs = make([]tensor.Vector, cm)
		sc.masks = make([][]bool, cm)
		for i := 0; i < cm; i++ {
			sc.zs[i] = sc.zBuf[i*h : (i+1)*h]
			sc.rs[i] = sc.rBuf[i*h : (i+1)*h]
			sc.rhs[i] = sc.rhBuf[i*h : (i+1)*h]
			sc.masks[i] = sc.maskBuf[i*h : (i+1)*h]
		}
		sc.skips = make([][]bool, cm)
		sc.zsOne = make([]tensor.Vector, 1)
		sc.hsABuf = make([]float32, ct*h)
		sc.hsBBuf = make([]float32, ct*h)
		sc.hsA = make([]tensor.Vector, ct)
		sc.hsB = make([]tensor.Vector, ct)
		for i := 0; i < ct; i++ {
			sc.hsA[i] = sc.hsABuf[i*h : (i+1)*h]
			sc.hsB[i] = sc.hsBBuf[i*h : (i+1)*h]
		}
		sc.stBuf = make([]float32, cm*h)
		sc.states = make([]tensor.Vector, cm)
		sc.active = make([]int, cm)
		sc.gather = make([]tensor.Vector, cm)
		sc.lens = make([]int, 0, cm)
		sc.offs = make([]int, 0, cm)
		sc.wx = nil
	}
	sc.lens = append(sc.lens[:0], lens...)
	sc.offs = sc.offs[:0]
	off := 0
	for _, ln := range lens {
		sc.offs = append(sc.offs, off)
		off += ln
	}
	if sc.wx == nil || sc.wx.Rows != total {
		sc.wx = sc.wxFull.RowBlock(0, total)
	}
	sc.members, sc.total = members, total
}

// state binds member i's hidden state to its arena slot.
func (sc *batchScratch) state(i int) tensor.Vector {
	h := sc.hid
	sc.states[i] = sc.stBuf[i*h : (i+1)*h]
	return sc.states[i]
}

func (sc *batchScratch) nextHS() []tensor.Vector {
	sc.ping = !sc.ping
	if sc.ping {
		return sc.hsA[:sc.total]
	}
	return sc.hsB[:sc.total]
}

// zrView re-heads the scratch-owned U_{z,r} destination header over the
// first rows of its slab — the active-set view, without allocating.
func (sc *batchScratch) zrView(rows int) *tensor.Matrix {
	cols := 2 * sc.hid
	sc.zrB.Rows, sc.zrB.Cols, sc.zrB.Data = rows, cols, sc.zrBuf[:rows*cols]
	return &sc.zrB
}

// uhView is zrView for the h-wide U_h destination.
func (sc *batchScratch) uhView(rows int) *tensor.Matrix {
	sc.uhB.Rows, sc.uhB.Cols, sc.uhB.Data = rows, sc.hid, sc.uhBuf[:rows*sc.hid]
	return &sc.uhB
}

// runLayerBatch is the batched counterpart of runLayer's sequential
// flow.
func (n *Network) runLayerBatch(l *Layer, xs []tensor.Vector, opt RunOptions, sc *batchScratch, kf *kernelFns) []tensor.Vector {
	h := l.Hidden
	pw := l.packedWeights()
	sc.reset(h, sc.lens)

	// United input projections for every cell of every member: one
	// weight stream over W_{z,r,h} for the whole batch.
	kf.packedGemm(sc.wx, pw.w, xs)

	for i := range sc.lens {
		sc.state(i).Fill(0)
	}
	hs := sc.nextHS()
	maxLen := 0
	for _, ln := range sc.lens {
		if ln > maxLen {
			maxLen = ln
		}
	}
	for t := 0; t < maxLen; t++ {
		act := sc.active[:0]
		for i, ln := range sc.lens {
			if t < ln {
				act = append(act, i)
			}
		}
		g := sc.gather[:len(act)]
		for k, i := range act {
			g[k] = sc.states[i]
		}

		// z and r first, batched: U_{z,r} streams once for the active
		// set; z gates the carry (DRS) decision.
		zrB := sc.zrView(len(act))
		kf.packedGemmRows(zrB, pw.uzr, g, nil, 0)
		for k, i := range act {
			row := sc.wx.Row(sc.offs[i] + t)
			xz, xr := row[:h], row[h:2*h]
			zr := zrB.Row(k)
			uz, ur := zr[:h], zr[h:]
			z, rv := sc.zs[i], sc.rs[i]
			for j := 0; j < h; j++ {
				z[j] = tensor.Sigmoid(xz[j] + uz[j] + l.Bz[j])
				rv[j] = tensor.Sigmoid(xr[j] + ur[j] + l.Br[j])
			}
		}

		// Per-member carry masks and the r ⊙ h_{t-1} operands.
		skips := sc.skips[:len(act)]
		for k, i := range act {
			skips[k] = nil
			if opt.Intra {
				sc.zsOne[0] = sc.zs[i]
				skips[k], _ = tissueCarryRowsInto(sc.masks[i], sc.zsOne, opt.AlphaIntra)
			}
			tensor.Mul(sc.rhs[i], sc.rs[i], sc.states[i])
		}
		rh := sc.gather[:len(act)] // reuse the gather slots for r⊙h
		for k, i := range act {
			rh[k] = sc.rhs[i]
		}

		// The candidate's recurrent product under the carry masks: U_h
		// streams once for the active set.
		uhB := sc.uhView(len(act))
		kf.packedGemmRows(uhB, l.Uh, rh, skips, 0)

		for k, i := range act {
			st := sc.states[i]
			row := sc.wx.Row(sc.offs[i] + t)
			xh := row[2*h:]
			uh := uhB.Row(k)
			z := sc.zs[i]
			skip := skips[k]
			hNew := hs[sc.offs[i]+t]
			for j := 0; j < h; j++ {
				if skip != nil && skip[j] {
					// Carry: h_t[j] ~ h_{t-1}[j] since z[j] ~ 0.
					hNew[j] = st[j]
					continue
				}
				cand := tensor.Tanh(xh[j] + uh[j] + l.Bh[j])
				hNew[j] = (1-z[j])*st[j] + z[j]*cand
			}
			copy(st, hNew)
		}
	}
	return hs
}
