package gru

import (
	"runtime"
	"testing"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/tensor"
)

func gruWideModes(n *Network) map[string]RunOptions {
	modes := gruBatchModes(n)
	for name, opt := range modes {
		opt.Chain = tensor.ChainAVX2
		modes[name] = opt
	}
	return modes
}

// TestGRUWideRunBatchMatchesSerial is the wide-chain twin of the GRU
// batch contract: under Chain: ChainAVX2, RunBatch member i is bitwise
// identical to wide serial Run(seqs[i]) in every mode.
func TestGRUWideRunBatchMatchesSerial(t *testing.T) {
	n := testNet(421, 2, 5)
	for name, opt := range gruWideModes(n) {
		for _, b := range []int{1, 2, 3, 5} {
			seqs := raggedSeqsFor(uint64(422+b), 17, b)
			want := make([]tensor.Vector, b)
			for i, xs := range seqs {
				want[i] = n.Run(xs, opt)
			}
			got := n.RunBatch(seqs, opt)
			equivtest.Batch(t, "wide "+name, got, want)
		}
	}
}

// TestGRUWideRunBatchBitwiseIdenticalAcrossGOMAXPROCS sweeps the
// scheduler under the wide chain: row sharding never moves a bit, so
// wide logits are GOMAXPROCS-independent exactly like canonical ones.
func TestGRUWideRunBatchBitwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	n := testNet(421, 2, 5)
	seqs := [][]tensor.Vector{
		seqsFor(423, 40, 1)[0],
		seqsFor(424, 17, 1)[0],
		seqsFor(425, 29, 1)[0],
		seqsFor(426, 40, 1)[0],
	}
	for name, opt := range gruWideModes(n) {
		want := make([]tensor.Vector, len(seqs))
		for i, xs := range seqs {
			want[i] = n.Run(xs, opt)
		}
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := n.RunBatch(seqs, opt)
			runtime.GOMAXPROCS(prev)
			equivtest.Batch(t, "wide "+name, got, want)
		}
	}
}

// TestGRUWideChainULPDrift measures the wide chain's drift from the
// canonical chain on GRU logits and reports it; the bound is a loose
// sanity rail, not a contract (the chains diverge by design).
func TestGRUWideChainULPDrift(t *testing.T) {
	n := testNet(427, 3, 5)
	var worst uint32
	for trial := 0; trial < 8; trial++ {
		xs := seqsFor(uint64(428+trial), 20, 1)[0]
		canon := n.Run(xs, Baseline())
		wide := n.Run(xs, RunOptions{Chain: tensor.ChainAVX2})
		if d := equivtest.MaxULP(t, "drift", wide, canon); d > worst {
			worst = d
		}
	}
	t.Logf("max ULP drift wide vs canonical over 8 sequences: %d", worst)
	if worst > 1<<16 {
		t.Fatalf("wide chain drifted %d ULP from canonical — beyond any plausible rounding divergence", worst)
	}
}
