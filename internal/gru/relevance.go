//lint:file-ignore float64leak GRU relevance scoring mirrors intercell/relevance.go: saturation scores live in float64 by definition and the matching thresholds are calibrated from the same pipeline
package gru

import (
	"math"

	"mobilstm/internal/tensor"
)

// analyzer evaluates the GRU adjustment of Algorithm 2: the context link
// into a cell is weak for element j only when (a) the update gate's input
// range sits in the high saturation (z ~ 1, so the direct carry
// (1-z)*h_{t-1} vanishes) and (b) the candidate path is insensitive —
// either its own activation input is saturated or its recurrent reach D_h
// is negligible. The per-element contributions sum to S as in the LSTM
// case, and a single alpha_inter thresholds it.
type analyzer struct {
	dim        int
	dz, dr, dh tensor.Vector
	bz, br, bh tensor.Vector
}

func newAnalyzer(l *Layer) *analyzer {
	return &analyzer{
		dim: l.Hidden,
		dz:  tensor.AbsRowSums(l.Uz),
		dr:  tensor.AbsRowSums(l.Ur),
		dh:  tensor.AbsRowSums(l.Uh),
		bz:  l.Bz, br: l.Br, bh: l.Bh,
	}
}

func clampf(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// relevance returns S for the link into the cell with the given per-gate
// input projections.
func (a *analyzer) relevance(xz, xr, xh tensor.Vector) float64 {
	var s float64
	for j := 0; j < a.dim; j++ {
		// Carry term: distance of the z input range's lower end from the
		// high saturation boundary (+2). 0 means z is pinned at ~1 and
		// the carry path is dead.
		mz := float64(xz[j]) + float64(a.bz[j])
		sCarry := clampf(2-(mz-float64(a.dz[j])), 0, 4)
		// Candidate term: overlap of the tanh input range with the
		// sensitive area, bounded by the recurrent reach through
		// U_h (r .* h) with |r .* h| <= 1.
		mh := math.Abs(float64(xh[j]) + float64(a.bh[j]))
		t1 := 2 + math.Min(2, mh)
		t2 := math.Min(2, 2+float64(a.dh[j])-math.Max(2, mh))
		sCand := clampf(math.Min(t1, t2), 0, 4)
		s += sCarry + sCand
	}
	return s
}

func logit(p float64) float64 { return math.Log(p / (1 - p)) }

func probit(p float64) float64 {
	if p <= 0 {
		return -8
	}
	if p >= 1 {
		return 8
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Sqrt(x)
}
