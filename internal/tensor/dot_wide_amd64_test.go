package tensor

import (
	"math"
	"testing"

	"mobilstm/internal/rng"
)

// TestDotAVX2MatchesGeneric holds the assembly body itself to the Go
// twin on cancellation-heavy corpora, bitwise. Skipped (not failed)
// where the probe reports no usable AVX2+FMA, exactly as the CI chain
// matrix expects on lowest-common-denominator runners.
func TestDotAVX2MatchesGeneric(t *testing.T) {
	if !HasAVX2FMA() {
		t.Skipf("no AVX2+FMA body on this CPU (%s)", CPU())
	}
	r := rng.New(0x72)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		row := make([]float32, n)
		x := make([]float32, n)
		for i := range row {
			// Wildly varying magnitudes: any reassociation — or a
			// second rounding where the chain fuses — surfaces as a
			// bit difference.
			row[i] = float32(r.Norm() * r.Float64() * 1e6)
			x[i] = float32(r.Norm() / (1 + r.Float64()*1e5))
		}
		got := dotAVX2(&row[0], &x[0], n)
		want := dotRowWideGeneric(row, x)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("trial %d n=%d: dotAVX2=%v dotRowWideGeneric=%v", trial, n, got, want)
		}
	}
}
