//go:build !amd64

package tensor

// dotRow on architectures without an assembly body is the chain
// definition itself (kernel.go's dotRowGeneric).
func dotRow(row, x []float32) float32 { return dotRowGeneric(row, x) }
