package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"mobilstm/internal/rng"
)

func TestSigmoidValues(t *testing.T) {
	if s := Sigmoid(0); math.Abs(float64(s)-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); s < 0.999 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s > 0.001 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
}

func TestHardSigmoidSaturation(t *testing.T) {
	// Exactly 0 below the sensitive area and 1 above (Fig. 7a).
	if HardSigmoid(float32(SensitiveLo)) != 0 {
		t.Fatal("hard sigmoid not 0 at -2")
	}
	if HardSigmoid(float32(SensitiveHi)) != 1 {
		t.Fatal("hard sigmoid not 1 at +2")
	}
	if HardSigmoid(0) != 0.5 {
		t.Fatal("hard sigmoid not 0.5 at 0")
	}
	if HardSigmoid(-5) != 0 || HardSigmoid(5) != 1 {
		t.Fatal("hard sigmoid not clamped")
	}
}

func TestHardSigmoidApproximatesSigmoid(t *testing.T) {
	// Within the sensitive area the two functions stay close — the
	// property frameworks exploit when substituting (§IV-A).
	for x := float32(-2); x <= 2; x += 0.1 {
		d := math.Abs(float64(HardSigmoid(x) - Sigmoid(x)))
		if d > 0.12 {
			t.Fatalf("at %v: |hard - exact| = %v", x, d)
		}
	}
}

func TestTanhRange(t *testing.T) {
	for _, x := range []float32{-10, -1, 0, 1, 10} {
		y := Tanh(x)
		if y < -1 || y > 1 {
			t.Fatalf("tanh(%v) = %v out of [-1,1]", x, y)
		}
	}
}

func TestActivationApplyAndString(t *testing.T) {
	cases := []struct {
		a    Activation
		name string
	}{
		{ActSigmoid, "sigmoid"},
		{ActHardSigmoid, "hard_sigmoid"},
		{ActTanh, "tanh"},
	}
	for _, c := range cases {
		if c.a.String() != c.name {
			t.Errorf("String() = %q, want %q", c.a.String(), c.name)
		}
		// Apply must agree with the direct function.
		x := float32(0.7)
		var want float32
		switch c.a {
		case ActSigmoid:
			want = Sigmoid(x)
		case ActHardSigmoid:
			want = HardSigmoid(x)
		case ActTanh:
			want = Tanh(x)
		}
		if got := c.a.Apply(x); got != want {
			t.Errorf("%s.Apply(0.7) = %v, want %v", c.name, got, want)
		}
	}
}

func TestSigmoidVecAlias(t *testing.T) {
	v := Vector{-1, 0, 1}
	SigmoidVec(v, v)
	if math.Abs(float64(v[1])-0.5) > 1e-6 {
		t.Fatalf("in-place SigmoidVec: %v", v)
	}
}

func TestTanhVec(t *testing.T) {
	src := Vector{0, 1}
	dst := NewVector(2)
	TanhVec(dst, src)
	if dst[0] != 0 || math.Abs(float64(dst[1])-math.Tanh(1)) > 1e-6 {
		t.Fatalf("TanhVec: %v", dst)
	}
}

// Property: sigmoid output is in [0,1], tanh in [-1,1], and both are
// monotone — the saturation property the paper's sensitivity analysis
// depends on.
func TestActivationPropertiesQuick(t *testing.T) {
	r := rng.New(99)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		x := float32(rr.Uniform(-50, 50))
		y := float32(rr.Uniform(-50, 50))
		if x > y {
			x, y = y, x
		}
		sx, sy := Sigmoid(x), Sigmoid(y)
		tx, ty := Tanh(x), Tanh(y)
		hx, hy := HardSigmoid(x), HardSigmoid(y)
		inRange := sx >= 0 && sy <= 1 && tx >= -1 && ty <= 1 && hx >= 0 && hy <= 1
		monotone := sx <= sy && tx <= ty && hx <= hy
		return inRange && monotone
	}
	cfg := &quick.Config{MaxCount: 500, Values: quickSeed(r)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownActivationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown activation")
		}
	}()
	Activation(99).Apply(0)
}
