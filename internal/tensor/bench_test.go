package tensor

import (
	"fmt"
	"testing"

	"mobilstm/internal/rng"
)

// Micro-benchmarks for the kernel tiers. Shapes mirror the hot path:
// h=650 is the paper's PTB hidden size, so the LSTM united U matrix is
// 2600×650 and the GRU's U_{z,r} is 1300×650. SetBytes counts the
// weight stream (the quantity the paper's memory model bounds), so
// ns/op converts to an effective weight bandwidth in MB/s.

func benchDims(h int) (united *Matrix, gates []*Matrix, x Vector) {
	r := rng.New(0xbe9c)
	gates = make([]*Matrix, 4)
	for g := range gates {
		gates[g] = randMatrix(r, h, h)
	}
	return Pack(gates...), gates, randVector(r, h)
}

func BenchmarkGemvPerGate(b *testing.B) {
	const h = 650
	_, gates, x := benchDims(h)
	dsts := []Vector{NewVector(h), NewVector(h), NewVector(h), NewVector(h)}
	b.SetBytes(int64(4*h) * int64(h) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := range gates {
			Gemv(dsts[g], gates[g], x)
		}
	}
}

func BenchmarkPackedGemv(b *testing.B) {
	const h = 650
	united, _, x := benchDims(h)
	dsts := []Vector{NewVector(h), NewVector(h), NewVector(h), NewVector(h)}
	b.SetBytes(united.SizeBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackedGemv(dsts, united, x)
	}
}

func BenchmarkPackedGemvRowsSkipHalf(b *testing.B) {
	const h = 650
	united, _, x := benchDims(h)
	dsts := []Vector{NewVector(h), NewVector(h), NewVector(h), NewVector(h)}
	skip := make([]bool, h)
	for i := range skip {
		skip[i] = i%2 == 0
	}
	b.SetBytes(united.SizeBytes() / 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackedGemvRows(dsts, united, x, skip, -1)
	}
}

func BenchmarkParallelGemv(b *testing.B) {
	const h = 650
	united, _, x := benchDims(h)
	dst := NewVector(4 * h)
	b.SetBytes(united.SizeBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelGemv(dst, united, x)
	}
}

func BenchmarkPackedGemm(b *testing.B) {
	const h, steps = 650, 16
	united, _, _ := benchDims(h)
	r := rng.New(0x9c27)
	xs := make([]Vector, steps)
	for t := range xs {
		xs[t] = randVector(r, h)
	}
	dst := NewMatrix(steps, 4*h)
	b.SetBytes(united.SizeBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackedGemm(dst, united, xs)
	}
}

// BenchmarkWidePackedGemv / BenchmarkWidePackedGemm are the wide-chain
// twins of the canonical packed benchmarks: same shapes, AVX2/FMA
// 32-lane chain. The canonical names stay unsuffixed so the
// BENCH_hotpath.json trajectory is uninterrupted; the Wide entries add
// the fast-mode points alongside.
func BenchmarkWidePackedGemv(b *testing.B) {
	const h = 650
	united, _, x := benchDims(h)
	dsts := []Vector{NewVector(h), NewVector(h), NewVector(h), NewVector(h)}
	b.SetBytes(united.SizeBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WidePackedGemv(dsts, united, x)
	}
}

func BenchmarkWidePackedGemm(b *testing.B) {
	const h, steps = 650, 16
	united, _, _ := benchDims(h)
	r := rng.New(0x9c27)
	xs := make([]Vector, steps)
	for t := range xs {
		xs[t] = randVector(r, h)
	}
	dst := NewMatrix(steps, 4*h)
	b.SetBytes(united.SizeBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WidePackedGemm(dst, united, xs)
	}
}

func BenchmarkGemmSizes(b *testing.B) {
	r := rng.New(0x77aa)
	for _, n := range []int{64, 256} {
		a := randMatrix(r, n, n)
		c := randMatrix(r, n, n)
		dst := NewMatrix(n, n)
		b.Run(fmt.Sprintf("serial/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n) * int64(n) * 4)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Gemm(dst, a, c)
			}
		})
		b.Run(fmt.Sprintf("parallel/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n) * int64(n) * 4)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ParallelGemm(dst, a, c)
			}
		})
	}
}
