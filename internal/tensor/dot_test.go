package tensor

import (
	"testing"

	"mobilstm/internal/rng"
)

// TestDotRowMatchesGeneric pins the dispatching dotRow (SSE2 assembly
// on amd64, alias of the Go chain elsewhere) to the chain definition in
// dotRowGeneric, bitwise, across block boundaries, remainders, and the
// empty row.
func TestDotRowMatchesGeneric(t *testing.T) {
	r := rng.New(0x61)
	sizes := []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 47, 48, 63, 64, 65, 100, 127, 192, 650}
	for _, n := range sizes {
		row := make([]float32, n)
		x := make([]float32, n+3) // x may be longer than row; only x[:n] is read
		for i := range row {
			row[i] = float32(r.Norm())
		}
		for i := range x {
			x[i] = float32(r.Norm())
		}
		got := dotRow(row, x)
		want := dotRowGeneric(row, x)
		if got != want {
			t.Errorf("n=%d: dotRow=%v dotRowGeneric=%v", n, got, want)
		}
	}
}

// TestDotRowAdversarialValues exercises cancellation-heavy inputs where
// any reassociation between the assembly and Go chains would surface as
// a bit difference.
func TestDotRowAdversarialValues(t *testing.T) {
	r := rng.New(0x62)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		row := make([]float32, n)
		x := make([]float32, n)
		for i := range row {
			// Wildly varying magnitudes: rounding differs under any
			// alternative summation order.
			row[i] = float32(r.Norm() * r.Float64() * 1e6)
			x[i] = float32(r.Norm() / (1 + r.Float64()*1e5))
		}
		got := dotRow(row, x)
		want := dotRowGeneric(row, x)
		if got != want {
			t.Fatalf("trial %d n=%d: dotRow=%v dotRowGeneric=%v", trial, n, got, want)
		}
	}
}
