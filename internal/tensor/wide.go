package tensor

// Wide variants of the GEMV family: the same shapes, validation, and
// row-streaming structure as their canonical counterparts, dotted
// through the wide FMA chain (kernel_wide.go) instead of the canonical
// one. They form the fast mode behind ChainAVX2 — faster on AVX2/FMA
// silicon, bitwise self-consistent (wide-vs-wide at any GOMAXPROCS and
// any batch B, pinned like the ParallelGemv/serial contract) but NOT
// bitwise interchangeable with the canonical kernels. Callers select a
// family wholesale per run (lstm/gru kernelFns); mixing chains within
// one forward pass is a bug the determinism tests would catch.

// WideGemv computes dst = m · x through the wide chain. Shape contract
// identical to Gemv.
func WideGemv(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		Panicf("tensor: WideGemv shape mismatch: dst %d, m %dx%d, x %d",
			len(dst), m.Rows, m.Cols, len(x))
	}
	wideGemvSpan(dst, m, x, 0)
}

// WideGemvRows is GemvRows through the wide chain: rows with
// skip[i] == true are set to fill, everything else is one dotRowWide.
func WideGemvRows(dst Vector, m *Matrix, x Vector, skip []bool, fill float32) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		Panicf("tensor: WideGemvRows shape mismatch: dst %d, m %dx%d, x %d",
			len(dst), m.Rows, m.Cols, len(x))
	}
	if skip != nil && len(skip) != m.Rows {
		Panicf("tensor: WideGemvRows skip length mismatch")
	}
	if skip == nil {
		wideGemvSpan(dst, m, x, 0)
		return
	}
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		if skip[i] {
			dst[i] = fill
			continue
		}
		dst[i] = dotRowWide(m.Data[i*n:i*n+n], x)
	}
}

// WidePackedGemv is PackedGemv through the wide chain: the united
// product m · x scattered into the per-gate destinations, each row one
// dotRowWide.
func WidePackedGemv(dsts []Vector, m *Matrix, x Vector) {
	packedRows("WidePackedGemv", dsts, m, x)
	off := 0
	for _, d := range dsts {
		wideGemvSpan(d, m, x, off)
		off += len(d)
	}
}

// WidePackedGemvRows is PackedGemvRows through the wide chain: the
// united DRS kernel with one segment-length skip mask shared by every
// gate block. A nil skip computes every row.
func WidePackedGemvRows(dsts []Vector, m *Matrix, x Vector, skip []bool, fill float32) {
	packedRows("WidePackedGemvRows", dsts, m, x)
	if len(dsts) == 0 {
		return
	}
	seg := len(dsts[0])
	for _, d := range dsts {
		if len(d) != seg {
			Panicf("tensor: WidePackedGemvRows segments differ: %d vs %d", len(d), seg)
		}
	}
	if skip == nil {
		WidePackedGemv(dsts, m, x)
		return
	}
	if len(skip) != seg {
		Panicf("tensor: WidePackedGemvRows skip length %d, segment %d", len(skip), seg)
	}
	n := m.Cols
	for k, d := range dsts {
		base := k * seg
		for i := 0; i < seg; i++ {
			if skip[i] {
				d[i] = fill
				continue
			}
			r := base + i
			d[i] = dotRowWide(m.Data[r*n:r*n+n], x)
		}
	}
}

// WidePackedGemmRows is PackedGemmRows through the wide chain: the
// row-outer batch-B recurrent kernel (each united weight row streams
// once and is dotted against every input) with per-input DRS masks,
// sharded over the weight rows. Every output element is one dotRowWide
// chain, so the result is bitwise identical to len(xs) independent
// WideGemv/WidePackedGemvRows calls at any GOMAXPROCS.
func WidePackedGemmRows(dst *Matrix, m *Matrix, xs []Vector, skips [][]bool, fill float32) {
	if dst.Rows != len(xs) || dst.Cols != m.Rows {
		Panicf("tensor: WidePackedGemmRows shape mismatch: dst %dx%d, m %dx%d, %d inputs",
			dst.Rows, dst.Cols, m.Rows, m.Cols, len(xs))
	}
	for _, x := range xs {
		if len(x) != m.Cols {
			Panicf("tensor: WidePackedGemmRows input length %d, m cols %d", len(x), m.Cols)
		}
	}
	if skips != nil && len(skips) != len(xs) {
		Panicf("tensor: WidePackedGemmRows %d masks for %d inputs", len(skips), len(xs))
	}
	if skips != nil {
		for _, sk := range skips {
			if sk != nil && (len(sk) == 0 || m.Rows%len(sk) != 0) {
				Panicf("tensor: WidePackedGemmRows mask length %d does not tile %d united rows",
					len(sk), m.Rows)
			}
		}
	}
	n := m.Cols
	forkJoin(m.Rows, m.Rows*n*len(xs), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			wrow := m.Data[r*n : r*n+n]
			out := dst.Data[r:]
			for b, x := range xs {
				if skips != nil {
					if sk := skips[b]; sk != nil && sk[r%len(sk)] {
						out[b*dst.Cols] = fill
						continue
					}
				}
				out[b*dst.Cols] = dotRowWide(wrow, x)
			}
		}
	})
}

// WidePackedGemm is PackedGemm through the wide chain: the whole-layer
// united W·x stage with the independent input rows fanned out over the
// parallel worker shards; each row is one wideGemvSpan, so the result
// is bitwise identical to len(xs) serial WideGemv calls at any
// GOMAXPROCS.
func WidePackedGemm(dst *Matrix, m *Matrix, xs []Vector) {
	if dst.Rows != len(xs) || dst.Cols != m.Rows {
		Panicf("tensor: WidePackedGemm shape mismatch: dst %dx%d, m %dx%d, %d inputs",
			dst.Rows, dst.Cols, m.Rows, m.Cols, len(xs))
	}
	for _, x := range xs {
		if len(x) != m.Cols {
			Panicf("tensor: WidePackedGemm input length %d, m cols %d", len(x), m.Cols)
		}
	}
	forkJoin(len(xs), len(xs)*m.Rows*m.Cols, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			wideGemvSpan(dst.Row(t), m, xs[t], 0)
		}
	})
}
