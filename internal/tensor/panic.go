package tensor

import "fmt"

// Panicf is the designated escape hatch for shape and invariant
// violations in library packages. mobilstm's panicpolicy analyzer
// (cmd/mobilstm-lint) forbids raw panic() calls everywhere under
// internal/ except in this file, so that every abort in library code is
// greppable, formatted, and — once the serving path lands — trivially
// convertible to an error return at a single choke point.
//
// Callers pass a message with their own package prefix, e.g.
//
//	tensor.Panicf("lstm: %d predictors for %d layers", p, l)
//
// Panicf never returns. The Go compiler does not know that, so callers
// in value-returning positions must follow it with an unreachable
// return.
func Panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
