package tensor

import "fmt"

// Panicf is the designated escape hatch for shape and invariant
// violations in library packages. mobilstm's panicpolicy analyzer
// (cmd/mobilstm-lint) forbids raw panic() calls everywhere under
// internal/ except in this file, so that every abort in library code is
// greppable, formatted, and — once the serving path lands — trivially
// convertible to an error return at a single choke point.
//
// Callers pass a message with their own package prefix, e.g.
//
//	tensor.Panicf("lstm: %d predictors for %d layers", p, l)
//
// Panicf never returns. The Go compiler does not know that, so callers
// in value-returning positions must follow it with an unreachable
// return.
//
// The panic value is the unexported violation type, so a serving-path
// recover boundary (Guard) can convert exactly these aborts to errors
// while letting genuine bugs — index out of range, nil dereference —
// crash loudly.
func Panicf(format string, args ...any) {
	panic(violation(fmt.Sprintf(format, args...)))
}

// violation is the panic payload of Panicf. It implements error so a
// recovered violation can be returned directly.
type violation string

func (v violation) Error() string { return string(v) }

// Guard is the error boundary of the serving path: deferred in an
// error-returning wrapper (lstm.Network.RunE, core.Engine.EvaluateSetE),
// it converts a Panicf abort into *err and re-panics on anything else.
//
//	func (n *Network) RunE(...) (v Vector, err error) {
//	    defer tensor.Guard(&err)
//	    return n.Run(...), nil
//	}
func Guard(err *error) {
	switch r := recover().(type) {
	case nil:
	case violation:
		*err = r
	default:
		panic(r)
	}
}
