package tensor

import (
	"math"
	"testing"

	"mobilstm/internal/rng"
)

// withChain runs fn with the process-default chain forced to c,
// restoring the previous default afterwards.
func withChain(t *testing.T, c KernelChain, fn func(t *testing.T)) {
	t.Helper()
	prev := ActiveKernelChain()
	SetKernelChain(c)
	defer SetKernelChain(prev)
	fn(t)
}

func TestKernelChainParseStringRoundTrip(t *testing.T) {
	for _, c := range []KernelChain{ChainAuto, ChainGeneric, ChainSSE2, ChainAVX2} {
		got, ok := ParseKernelChain(c.String())
		if !ok || got != c {
			t.Errorf("ParseKernelChain(%q) = %v, %v", c.String(), got, ok)
		}
	}
	for _, bad := range []string{"", "AVX2", "sse", "avx512", "fast"} {
		if _, ok := ParseKernelChain(bad); ok {
			t.Errorf("ParseKernelChain(%q) unexpectedly ok", bad)
		}
	}
}

func TestSetKernelChainResolution(t *testing.T) {
	prev := ActiveKernelChain()
	defer SetKernelChain(prev)
	if got := SetKernelChain(ChainAuto); got != ChainSSE2 {
		t.Fatalf("SetKernelChain(auto) = %v, want sse2", got)
	}
	// Forcing the wide chain sticks even without AVX2 hardware — the
	// dispatch falls back to the pure-Go wide body, not to another
	// chain.
	if got := SetKernelChain(ChainAVX2); got != ChainAVX2 {
		t.Fatalf("SetKernelChain(avx2) = %v, want avx2", got)
	}
	if got := ActiveKernelChain(); got != ChainAVX2 {
		t.Fatalf("ActiveKernelChain = %v after forcing avx2", got)
	}
	if got := ResolveChain(ChainAuto); got != ChainAVX2 {
		t.Fatalf("ResolveChain(auto) = %v, want the forced default", got)
	}
	if got := ResolveChain(ChainGeneric); got != ChainGeneric {
		t.Fatalf("ResolveChain(generic) = %v, explicit selections must pass through", got)
	}
}

func TestChainFromEnv(t *testing.T) {
	cases := []struct {
		in   string
		want KernelChain
	}{
		{"", ChainSSE2},
		{"auto", ChainSSE2},
		{"generic", ChainGeneric},
		{"sse2", ChainSSE2},
		{"avx2", ChainAVX2},
		{"AVX2", ChainSSE2},    // case-sensitive: invalid, ignored
		{"quantum", ChainSSE2}, // invalid, ignored
	}
	for _, c := range cases {
		if got := chainFromEnv(c.in); got != c.want {
			t.Errorf("chainFromEnv(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestForcedGenericDisablesAssemblyBodies pins the CI reference
// configuration: under ChainGeneric both dispatchers must produce the
// pure-Go bodies' bits. The canonical pair is bitwise identical anyway;
// the real assertion is that the forced path executes and agrees, and
// that the switch is visible through forceGenericBody on both settings.
func TestForcedGenericDisablesAssemblyBodies(t *testing.T) {
	r := rng.New(0x91)
	row := make([]float32, 193)
	x := make([]float32, 193)
	for i := range row {
		row[i] = float32(r.Norm())
		x[i] = float32(r.Norm())
	}
	withChain(t, ChainGeneric, func(t *testing.T) {
		if !forceGenericBody() {
			t.Fatal("forceGenericBody() false under ChainGeneric")
		}
		if got, want := dotRow(row, x), dotRowGeneric(row, x); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("forced-generic dotRow %v != dotRowGeneric %v", got, want)
		}
		if got, want := dotRowWide(row, x), dotRowWideGeneric(row, x); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("forced-generic dotRowWide %v != dotRowWideGeneric %v", got, want)
		}
	})
	withChain(t, ChainSSE2, func(t *testing.T) {
		if forceGenericBody() {
			t.Fatal("forceGenericBody() true under ChainSSE2")
		}
	})
}

// TestWideChainStableAcrossBodies pins the fallback semantics the CI
// chain matrix leans on: the wide chain's output is the same bits
// whether the AVX2 body or the pure-Go twin computes it (pinned
// corpora), so forcing avx2 on a runner without the hardware exercises
// the identical contract.
func TestWideChainStableAcrossBodies(t *testing.T) {
	r := rng.New(0x92)
	row := make([]float32, 650)
	x := make([]float32, 650)
	for i := range row {
		row[i] = float32(r.Norm())
		x[i] = float32(r.Norm())
	}
	var viaDispatch, viaGeneric float32
	withChain(t, ChainAVX2, func(t *testing.T) {
		viaDispatch = dotRowWide(row, x)
	})
	withChain(t, ChainGeneric, func(t *testing.T) {
		viaGeneric = dotRowWide(row, x)
	})
	if math.Float32bits(viaDispatch) != math.Float32bits(viaGeneric) {
		t.Fatalf("wide chain differs across bodies: %v vs %v", viaDispatch, viaGeneric)
	}
}

func TestCPUStringStable(t *testing.T) {
	if got := (CPUInfo{}).String(); got != "none" {
		t.Errorf("empty CPUInfo = %q, want none", got)
	}
	all := CPUInfo{SSE2: true, AVX: true, FMA: true, AVX2: true, OSYMM: true}
	if got := all.String(); got != "sse2+avx+fma+avx2+osymm" {
		t.Errorf("full CPUInfo = %q", got)
	}
	if HasAVX2FMA() {
		c := CPU()
		if !c.AVX2 || !c.FMA || !c.OSYMM {
			t.Errorf("HasAVX2FMA true but CPU() = %+v", c)
		}
	}
}
