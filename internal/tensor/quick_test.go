//lint:file-ignore globalrand testing/quick's Values hooks take *math/rand.Rand by signature; all draws actually derive from the seeded internal/rng source
package tensor

import (
	"math/rand"
	"reflect"

	"mobilstm/internal/rng"
)

// quickSeed adapts our deterministic RNG to testing/quick's value
// generator: each property invocation receives a fresh uint64 seed.
func quickSeed(r *rng.RNG) func([]reflect.Value, *rand.Rand) {
	return func(args []reflect.Value, _ *rand.Rand) {
		args[0] = reflect.ValueOf(r.Uint64())
	}
}
