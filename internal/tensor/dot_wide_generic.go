//go:build !amd64

package tensor

// dotRowWide on architectures without an AVX2 body is the wide chain
// definition itself (kernel_wide.go's dotRowWideGeneric).
func dotRowWide(row, x []float32) float32 { return dotRowWideGeneric(row, x) }
