// Package tensor implements the dense float32 linear algebra used by the
// LSTM library: vectors, row-major matrices, the GEMV/GEMM kernel
// family, and the activation functions from the paper (sigmoid, hard
// sigmoid, tanh).
//
// The kernels come in three tiers sharing one inner accumulation chain
// (kernel.go), so they are bitwise interchangeable:
//
//   - serial: Gemv, GemvRows (DRS skip mask), Gemm — every output row
//     is one 16-lane dot-product chain (kernel.go's dotRowGeneric,
//     carried in SSE2 assembly on amd64);
//   - packed (packed.go): Pack/PackedGemv/PackedGemvRows/PackedGemm
//     over a row-wise united gate matrix (the paper's U_{f,i,c,o}),
//     streaming the input once per cell instead of once per gate;
//   - parallel (parallel.go): ParallelGemv/ParallelGemm, row-sharded
//     over a size-gated fork-join pool, bitwise identical to the
//     serial kernels at any GOMAXPROCS.
//
// A second, explicitly selected accumulation chain — the wide 32-lane
// FMA chain (kernel_wide.go, AVX2+FMA assembly on capable amd64) —
// backs the Wide* kernel family (wide.go) behind the KernelChain
// fast-mode switch (chain.go). It carries its own wide-vs-wide bitwise
// contract and is not interchangeable with the canonical chain.
//
// The package is deliberately small and allocation-conscious: LSTM
// inference is a long sequence of GEMV/GEMM calls over the same shapes, so
// every operation writes into a caller-provided destination and no kernel
// allocates.
package tensor

// Vector is a dense float32 vector.
type Vector []float32

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float32) {
	for i := range v {
		v[i] = x
	}
}

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		Panicf("tensor: negative shape %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector {
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float32) { m.Data[i*m.Cols+j] = x }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SizeBytes returns the storage footprint of the matrix in bytes
// (4 bytes per float32), as loaded by a GPU kernel.
func (m *Matrix) SizeBytes() int64 { return int64(m.Rows) * int64(m.Cols) * 4 }

// Gemv computes dst = m · x. dst must have length m.Rows and x length
// m.Cols. Rows run through the shared dotRow kernel: sixteen
// independent accumulation lanes, computed four-at-a-time by packed
// SSE2 on amd64 and by the bitwise-identical pure-Go chain elsewhere.
func Gemv(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		Panicf("tensor: Gemv shape mismatch: dst %d, m %dx%d, x %d",
			len(dst), m.Rows, m.Cols, len(x))
	}
	gemvSpan(dst, m, x, 0)
}

// GemvRows computes dst[i] = m.Row(i) · x only for rows i where
// skip[i] == false; skipped rows of dst are set to fill. skip may be nil,
// in which case all rows are computed. This is the numeric counterpart of
// the paper's Sgemv(U_{f,i,c}, h, R) kernel with trivial rows disabled.
// Computed rows use the same dotRow chain as Gemv, so a nil-skip
// GemvRows is bitwise identical to Gemv.
func GemvRows(dst Vector, m *Matrix, x Vector, skip []bool, fill float32) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		Panicf("tensor: GemvRows shape mismatch: dst %d, m %dx%d, x %d",
			len(dst), m.Rows, m.Cols, len(x))
	}
	if skip != nil && len(skip) != m.Rows {
		Panicf("tensor: GemvRows skip length mismatch")
	}
	if skip == nil {
		gemvSpan(dst, m, x, 0)
		return
	}
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		if skip[i] {
			dst[i] = fill
			continue
		}
		dst[i] = dotRow(m.Data[i*n:i*n+n], x)
	}
}

// Gemm computes dst = a · b, where dst is (a.Rows × b.Cols). It uses a
// simple ikj loop order which is cache-friendly for row-major storage.
func Gemm(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		Panicf("tensor: Gemm shape mismatch: dst %dx%d, a %dx%d, b %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	gemmRange(dst, a, b, 0, a.Rows)
}

// Axpy computes dst[i] += alpha * x[i].
func Axpy(dst Vector, alpha float32, x Vector) {
	if len(dst) != len(x) {
		Panicf("tensor: Axpy length mismatch")
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Add computes dst[i] = a[i] + b[i].
func Add(dst, a, b Vector) {
	if len(dst) != len(a) || len(a) != len(b) {
		Panicf("tensor: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Mul computes dst[i] = a[i] * b[i] (the Hadamard product used by the
// LSTM gate equations).
func Mul(dst, a, b Vector) {
	if len(dst) != len(a) || len(a) != len(b) {
		Panicf("tensor: Mul length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// Dot returns the inner product of a and b, reduced through the same
// dotRow chain as Gemv so a standalone inner product is bitwise
// identical to the matching matrix row product.
func Dot(a, b Vector) float32 {
	if len(a) != len(b) {
		Panicf("tensor: Dot length mismatch")
	}
	return dotRow(a, b)
}

// AbsRowSums returns d[i] = Σ_j |m[i][j]|, the per-row L1 norms used by
// Algorithm 2 of the paper to bound U·h for h ∈ [-1, 1]^n.
func AbsRowSums(m *Matrix) Vector {
	d := NewVector(m.Rows)
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*n : i*n+n]
		var s float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			//lint:ignore detfloat Algorithm 2's L1 norms are a one-time offline bound, never on the logit path; the serial per-row order is itself deterministic
			s += v
		}
		d[i] = s
	}
	return d
}

// ArgMax returns the index of the largest element of v, breaking ties in
// favour of the lower index. It panics on an empty vector.
func ArgMax(v Vector) int {
	if len(v) == 0 {
		Panicf("tensor: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// MaxAbs returns max_i |v[i]|, or 0 for an empty vector.
func MaxAbs(v Vector) float32 {
	var m float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}
