//go:build !amd64

package tensor

// Off amd64 there is no feature probe: both chains run their pure-Go
// bodies and every capability bit stays false.
var cpuFeatures CPUInfo

// hasWideBody: no AVX2 assembly body exists off amd64.
const hasWideBody = false
