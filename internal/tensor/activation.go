package tensor

import "math"

// Activation identifies one of the activation functions used inside an
// LSTM cell. The paper analyses both the exact sigmoid and the "hard
// sigmoid" approximation some frameworks substitute for speed (§IV-A); both
// share the same sensitive area [-2, 2].
type Activation int

const (
	// ActSigmoid is the logistic function 1/(1+e^-x).
	ActSigmoid Activation = iota
	// ActHardSigmoid is the piecewise-linear approximation
	// clamp(0.25x + 0.5, 0, 1) used by fast frameworks.
	ActHardSigmoid
	// ActTanh is the hyperbolic tangent.
	ActTanh
)

// SensitiveLo and SensitiveHi bound the input region in which the sigmoid
// and tanh outputs respond ~linearly to their input (Fig. 7). Outside this
// region the output is saturated and insensitive to the input — the
// property both the inter-cell relevance analysis and the hard sigmoid
// exploit.
const (
	SensitiveLo = -2.0
	SensitiveHi = 2.0
)

// Sigmoid returns 1/(1+e^-x).
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// HardSigmoid returns clamp(0.25x + 0.5, 0, 1), the fast approximation
// from Fig. 7(a). It is exactly 0 below -2 and exactly 1 above +2.
func HardSigmoid(x float32) float32 {
	y := 0.25*x + 0.5
	if y < 0 {
		return 0
	}
	if y > 1 {
		return 1
	}
	return y
}

// Tanh returns the hyperbolic tangent of x.
func Tanh(x float32) float32 {
	return float32(math.Tanh(float64(x)))
}

// Apply evaluates the activation a at x.
func (a Activation) Apply(x float32) float32 {
	switch a {
	case ActSigmoid:
		return Sigmoid(x)
	case ActHardSigmoid:
		return HardSigmoid(x)
	case ActTanh:
		return Tanh(x)
	default:
		Panicf("tensor: unknown activation %d", int(a))
		return 0 // unreachable
	}
}

// String returns the conventional name of the activation.
func (a Activation) String() string {
	switch a {
	case ActSigmoid:
		return "sigmoid"
	case ActHardSigmoid:
		return "hard_sigmoid"
	case ActTanh:
		return "tanh"
	default:
		return "unknown"
	}
}

// SigmoidVec applies the sigmoid element-wise: dst[i] = σ(x[i]).
// dst and x may alias.
func SigmoidVec(dst, x Vector) {
	if len(dst) != len(x) {
		Panicf("tensor: SigmoidVec length mismatch")
	}
	for i, v := range x {
		dst[i] = Sigmoid(v)
	}
}

// TanhVec applies tanh element-wise: dst[i] = tanh(x[i]). dst and x may
// alias.
func TanhVec(dst, x Vector) {
	if len(dst) != len(x) {
		Panicf("tensor: TanhVec length mismatch")
	}
	for i, v := range x {
		dst[i] = Tanh(v)
	}
}
