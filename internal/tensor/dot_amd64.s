// func dotSSE(row, x *float32, n int) float32
//
// SSE2 body of the canonical dot-product chain. The chain is defined by
// dotRowGeneric in kernel.go and must be matched bitwise: four packed
// accumulators A..D hold the sixteen 16-strided lane sums (X0..X3, one
// group of four lanes each), folded lanewise as (A+B)+(C+D) and then
// scalar as ((l0+l1)+l2)+l3, with a serial scalar remainder. MULPS and
// ADDPS apply lanewise IEEE float32 arithmetic, so every lane sum is
// the same operation sequence as its Go counterpart.

#include "textflag.h"

TEXT ·dotSSE(SB), NOSPLIT, $0-28
	MOVQ  row+0(FP), SI
	MOVQ  x+8(FP), DI
	MOVQ  n+16(FP), CX
	XORPS X0, X0             // A: lanes 0..3
	XORPS X1, X1             // B: lanes 4..7
	XORPS X2, X2             // C: lanes 8..11
	XORPS X3, X3             // D: lanes 12..15
	MOVQ  CX, BX
	SHRQ  $4, BX             // BX = number of full 16-float blocks
	JZ    fold

loop16:
	MOVUPS (SI), X4
	MOVUPS (DI), X5
	MULPS  X5, X4
	ADDPS  X4, X0
	MOVUPS 16(SI), X5
	MOVUPS 16(DI), X6
	MULPS  X6, X5
	ADDPS  X5, X1
	MOVUPS 32(SI), X6
	MOVUPS 32(DI), X7
	MULPS  X7, X6
	ADDPS  X6, X2
	MOVUPS 48(SI), X7
	MOVUPS 48(DI), X8
	MULPS  X8, X7
	ADDPS  X7, X3
	ADDQ   $64, SI
	ADDQ   $64, DI
	DECQ   BX
	JNZ    loop16

fold:
	// Lanewise (A+B) + (C+D), then scalar ((l0+l1)+l2)+l3.
	ADDPS  X1, X0
	ADDPS  X3, X2
	ADDPS  X2, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1     // broadcast lane 1
	MOVAPS X0, X2
	SHUFPS $0xAA, X2, X2     // broadcast lane 2
	MOVAPS X0, X3
	SHUFPS $0xFF, X3, X3     // broadcast lane 3
	ADDSS  X1, X0            // l0+l1
	ADDSS  X2, X0            // +l2
	ADDSS  X3, X0            // +l3
	ANDQ   $15, CX
	JZ     done

tail:
	MOVSS (SI), X4
	MULSS (DI), X4
	ADDSS X4, X0
	ADDQ  $4, SI
	ADDQ  $4, DI
	DECQ  CX
	JNZ   tail

done:
	MOVSS X0, ret+24(FP)
	RET
