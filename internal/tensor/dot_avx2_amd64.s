// func dotAVX2(row, x *float32, n int) float32
//
// AVX2+FMA body of the wide dot-product chain. The chain is defined by
// dotRowWideGeneric in kernel_wide.go and must be matched bitwise on
// the pinned corpora: four packed accumulators A..D hold the thirty-two
// 32-strided lane sums (Y0..Y3, one group of eight FMA lanes each),
// folded lanewise as (A+B)+(C+D), halved lanewise (VEXTRACTF128 — lane
// k plus lane k+4), then scalar as ((m0+m1)+m2)+m3, with an FMA serial
// remainder. VFMADD231PS rounds a*b+acc once per lane, exactly the
// fma32 sequence of the Go twin. VZEROUPPER runs before the first
// legacy-SSE instruction so the scalar fold pays no state transition.

#include "textflag.h"

TEXT ·dotAVX2(SB), NOSPLIT, $0-28
	MOVQ   row+0(FP), SI
	MOVQ   x+8(FP), DI
	MOVQ   n+16(FP), CX
	VXORPS Y0, Y0, Y0        // A: lanes 0..7
	VXORPS Y1, Y1, Y1        // B: lanes 8..15
	VXORPS Y2, Y2, Y2        // C: lanes 16..23
	VXORPS Y3, Y3, Y3        // D: lanes 24..31
	MOVQ   CX, BX
	SHRQ   $5, BX            // BX = number of full 32-float blocks
	JZ     fold

loop32:
	VMOVUPS     (SI), Y4
	VMOVUPS     (DI), Y5
	VFMADD231PS Y5, Y4, Y0   // A += row*x, rounded once
	VMOVUPS     32(SI), Y6
	VMOVUPS     32(DI), Y7
	VFMADD231PS Y7, Y6, Y1
	VMOVUPS     64(SI), Y8
	VMOVUPS     64(DI), Y9
	VFMADD231PS Y9, Y8, Y2
	VMOVUPS     96(SI), Y10
	VMOVUPS     96(DI), Y11
	VFMADD231PS Y11, Y10, Y3
	ADDQ        $128, SI
	ADDQ        $128, DI
	DECQ        BX
	JNZ         loop32

fold:
	// Lanewise (A+B) + (C+D), halve lanes, then the canonical scalar
	// fold ((m0+m1)+m2)+m3 — identical shuffle pattern to dotSSE.
	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1  // lanes 4..7
	VZEROUPPER
	ADDPS        X1, X0      // m[k] = l[k] + l[k+4]
	MOVAPS       X0, X1
	SHUFPS       $0x55, X1, X1 // broadcast lane 1
	MOVAPS       X0, X2
	SHUFPS       $0xAA, X2, X2 // broadcast lane 2
	MOVAPS       X0, X3
	SHUFPS       $0xFF, X3, X3 // broadcast lane 3
	ADDSS        X1, X0      // m0+m1
	ADDSS        X2, X0      // +m2
	ADDSS        X3, X0      // +m3
	ANDQ         $31, CX
	JZ           done

tail:
	MOVSS       (SI), X4
	MOVSS       (DI), X5
	VFMADD231SS X5, X4, X0   // s = row*x + s, rounded once
	ADDQ        $4, SI
	ADDQ        $4, DI
	DECQ        CX
	JNZ         tail

done:
	MOVSS X0, ret+24(FP)
	RET
