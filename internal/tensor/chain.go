package tensor

import (
	"os"
	"sync/atomic"
)

// Kernel-chain selection. The package carries two sanctioned
// accumulation chains:
//
//   - the canonical 16-lane chain (kernel.go's dotRowGeneric, carried
//     bitwise by the SSE2 body in dot_amd64.s) — the default, and the
//     chain every historical artifact and cross-box trajectory was
//     recorded under;
//   - the wide 32-lane FMA chain (kernel_wide.go's dotRowWideGeneric,
//     carried by the AVX2+FMA body in dot_avx2_amd64.s) — an explicit
//     fast mode with its own determinism contract (wide-vs-wide bitwise
//     equality at any GOMAXPROCS and any batch B), reachable only
//     through the Wide* kernels.
//
// A KernelChain names one of them. SetKernelChain moves the process
// default; per-call-site selection (lstm/gru RunOptions.Chain,
// serve.Config.Chain) resolves through ResolveChain so ChainAuto
// follows the process default. Forcing ChainGeneric additionally pins
// both chains to their pure-Go bodies, which is how CI exercises the
// reference twins on any runner CPU.

// KernelChain selects which accumulation chain the dispatching kernels
// run. The zero value is ChainAuto.
type KernelChain uint32

const (
	// ChainAuto defers to the process default (ActiveKernelChain).
	ChainAuto KernelChain = iota
	// ChainGeneric is the canonical 16-lane chain through its pure-Go
	// body, with assembly disabled for the wide chain too — the
	// any-CPU reference configuration.
	ChainGeneric
	// ChainSSE2 is the canonical 16-lane chain through the SSE2 body
	// (bitwise identical to ChainGeneric; pure-Go off amd64).
	ChainSSE2
	// ChainAVX2 is the wide 32-lane FMA chain: the AVX2+FMA body when
	// the CPU supports it, the pure-Go wide twin otherwise.
	ChainAVX2
)

// String returns the canonical lower-case chain name, as accepted by
// ParseKernelChain and the MOBILSTM_KERNEL_CHAIN environment variable.
func (c KernelChain) String() string {
	switch c {
	case ChainAuto:
		return "auto"
	case ChainGeneric:
		return "generic"
	case ChainSSE2:
		return "sse2"
	case ChainAVX2:
		return "avx2"
	}
	return "unknown"
}

// ParseKernelChain maps a chain name ("auto", "generic", "sse2",
// "avx2") to its KernelChain. The second result is false for anything
// else, including the empty string.
func ParseKernelChain(s string) (KernelChain, bool) {
	switch s {
	case "auto":
		return ChainAuto, true
	case "generic":
		return ChainGeneric, true
	case "sse2":
		return ChainSSE2, true
	case "avx2":
		return ChainAVX2, true
	}
	return ChainAuto, false
}

// KernelChainEnv is the environment variable consulted once at package
// init: a valid chain name forces the process default, anything else is
// ignored. CI's chain matrix sets it to run the same test body once per
// chain on whatever silicon the runner has.
const KernelChainEnv = "MOBILSTM_KERNEL_CHAIN"

// activeChain holds the resolved process-default chain — never
// ChainAuto. Reads are a single atomic load on the dot dispatch path,
// which x86 serves as a plain MOV.
var activeChain atomic.Uint32

func init() {
	activeChain.Store(uint32(chainFromEnv(os.Getenv(KernelChainEnv))))
}

// chainFromEnv maps the MOBILSTM_KERNEL_CHAIN value to the initial
// process default: a valid explicit chain wins, anything else — empty,
// misspelled, or "auto" — falls back to the canonical default. Invalid
// values are ignored rather than fatal so a stale CI matrix entry can
// never change numerics silently *and* crash the binary.
func chainFromEnv(v string) KernelChain {
	if forced, ok := ParseKernelChain(v); ok && forced != ChainAuto {
		return forced
	}
	return ChainSSE2 // resolves to the pure-Go canonical body off amd64
}

// SetKernelChain sets the process-default chain and returns the
// effective selection: ChainAuto restores the canonical default
// (ChainSSE2), everything else sticks as asked — including ChainAVX2 on
// a CPU without AVX2, where the wide chain simply runs through its
// pure-Go twin (see dotRowWide). The default is consulted wherever a
// caller passes ChainAuto; call sites that pinned an explicit chain are
// unaffected, except that ChainGeneric also forces the assembly bodies
// off process-wide (the reference configuration is all-Go).
//
// The switch is atomic but not synchronized against in-flight kernels;
// set it at startup or between runs, as the serve engine builder and
// the tests do.
func SetKernelChain(c KernelChain) KernelChain {
	if c == ChainAuto {
		c = ChainSSE2
	}
	activeChain.Store(uint32(c))
	return c
}

// ActiveKernelChain returns the current process-default chain.
func ActiveKernelChain() KernelChain {
	return KernelChain(activeChain.Load())
}

// ResolveChain maps ChainAuto to the process default and returns every
// other selection unchanged. lstm/gru resolve RunOptions.Chain through
// this exactly once per Run/RunBatch call.
func ResolveChain(c KernelChain) KernelChain {
	if c == ChainAuto {
		return ActiveKernelChain()
	}
	return c
}

// forceGenericBody reports whether assembly bodies are disabled
// process-wide (the ChainGeneric reference configuration). Both dotRow
// and dotRowWide consult it, so forced-generic CI runs exercise the
// pure-Go twins of *both* chains regardless of runner CPU.
func forceGenericBody() bool {
	return KernelChain(activeChain.Load()) == ChainGeneric
}
