package tensor

import (
	"runtime"
	"testing"
	"testing/quick"

	"mobilstm/internal/rng"
)

// The equivalence contract of the united-gate kernels: packed and
// parallel results must be BITWISE identical to the serial per-gate
// calls — not merely close. The lstm/gru hot paths route every shape
// through these kernels, so one flipped bit here would silently change
// every accuracy table downstream.

// atGOMAXPROCS runs fn at each of the given GOMAXPROCS settings,
// restoring the original value afterwards. Oversubscription (more Ps
// than cores) is legal, so the parallel shards genuinely interleave
// even on a single-core runner.
func atGOMAXPROCS(t *testing.T, procs []int, fn func(t *testing.T)) {
	t.Helper()
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		fn(t)
	}
}

// packedShapes are deliberately awkward: odd segment sizes, columns
// around the 4-lane unroll boundary, single-row segments.
var packedShapes = []struct{ seg, cols, gates int }{
	{1, 1, 2},
	{3, 5, 4},
	{7, 13, 3},
	{17, 16, 4},
	{33, 129, 3},
	{64, 96, 4},
}

func TestPackedGemvBitwiseEqualsPerGateGemv(t *testing.T) {
	r := rng.New(0x41)
	for _, sh := range packedShapes {
		gates := make([]*Matrix, sh.gates)
		for g := range gates {
			gates[g] = randMatrix(r, sh.seg, sh.cols)
		}
		united := Pack(gates...)
		x := randVector(r, sh.cols)

		dsts := make([]Vector, sh.gates)
		want := make([]Vector, sh.gates)
		for g := range dsts {
			dsts[g] = NewVector(sh.seg)
			want[g] = NewVector(sh.seg)
			Gemv(want[g], gates[g], x)
		}
		PackedGemv(dsts, united, x)
		for g := range dsts {
			for i := range dsts[g] {
				if dsts[g][i] != want[g][i] {
					t.Fatalf("shape %v gate %d row %d: packed %v != serial %v",
						sh, g, i, dsts[g][i], want[g][i])
				}
			}
		}
	}
}

func TestPackedGemvRowsBitwiseEqualsGemvRows(t *testing.T) {
	r := rng.New(0x42)
	for _, sh := range packedShapes {
		gates := make([]*Matrix, sh.gates)
		for g := range gates {
			gates[g] = randMatrix(r, sh.seg, sh.cols)
		}
		united := Pack(gates...)
		x := randVector(r, sh.cols)
		skip := make([]bool, sh.seg)
		for i := range skip {
			skip[i] = r.Bernoulli(0.4)
		}
		const fill = -7.5

		dsts := make([]Vector, sh.gates)
		want := make([]Vector, sh.gates)
		for g := range dsts {
			dsts[g] = NewVector(sh.seg)
			want[g] = NewVector(sh.seg)
			GemvRows(want[g], gates[g], x, skip, fill)
		}
		PackedGemvRows(dsts, united, x, skip, fill)
		for g := range dsts {
			for i := range dsts[g] {
				if dsts[g][i] != want[g][i] {
					t.Fatalf("shape %v gate %d row %d: packed %v != serial %v",
						sh, g, i, dsts[g][i], want[g][i])
				}
			}
		}
	}
}

func TestPackedGemvRowsNilSkipEqualsPackedGemv(t *testing.T) {
	r := rng.New(0x43)
	m := randMatrix(r, 3*7, 11)
	x := randVector(r, 11)
	a := []Vector{NewVector(7), NewVector(7), NewVector(7)}
	b := []Vector{NewVector(7), NewVector(7), NewVector(7)}
	PackedGemv(a, m, x)
	PackedGemvRows(b, m, x, nil, 0)
	for g := range a {
		for i := range a[g] {
			if a[g][i] != b[g][i] {
				t.Fatalf("gate %d row %d: %v != %v", g, i, a[g][i], b[g][i])
			}
		}
	}
}

func TestPackedGemmBitwiseEqualsGemvAtAnyGOMAXPROCS(t *testing.T) {
	r := rng.New(0x44)
	// Big enough to cross the parallel gate, odd enough to stress the
	// shard remainders.
	const rows, cols, inputs = 133, 67, 29
	m := randMatrix(r, rows, cols)
	xs := make([]Vector, inputs)
	want := make([]Vector, inputs)
	for t2 := range xs {
		xs[t2] = randVector(r, cols)
		want[t2] = NewVector(rows)
		Gemv(want[t2], m, xs[t2])
	}
	atGOMAXPROCS(t, []int{1, 2, 8}, func(t *testing.T) {
		dst := NewMatrix(inputs, rows)
		PackedGemm(dst, m, xs)
		for t2 := range xs {
			row := dst.Row(t2)
			for i := range row {
				if row[i] != want[t2][i] {
					t.Fatalf("GOMAXPROCS %d input %d row %d: %v != %v",
						runtime.GOMAXPROCS(0), t2, i, row[i], want[t2][i])
				}
			}
		}
	})
}

// TestPackedGemmRowsBitwiseEqualsPerMemberAtAnyGOMAXPROCS pins the
// batch kernel's contract: row b of the batched product must be bitwise
// identical to an independent serial PackedGemvRows for member b — same
// dotRow chains, same fill on masked rows — however the row-outer
// fork-join shards the united weight rows.
func TestPackedGemmRowsBitwiseEqualsPerMemberAtAnyGOMAXPROCS(t *testing.T) {
	r := rng.New(0x48)
	for _, sh := range packedShapes {
		rows := sh.seg * sh.gates
		m := randMatrix(r, rows, sh.cols)
		const members = 5
		xs := make([]Vector, members)
		skips := make([][]bool, members)
		for b := range xs {
			xs[b] = randVector(r, sh.cols)
			if b%2 == 1 { // odd members skip, even compute every row
				mask := make([]bool, sh.seg)
				for i := range mask {
					mask[i] = r.Bernoulli(0.4)
				}
				skips[b] = mask
			}
		}
		const fill = -3.25

		want := make([]Vector, members)
		for b := range want {
			want[b] = NewVector(rows)
			segs := make([]Vector, sh.gates)
			for g := range segs {
				segs[g] = want[b][g*sh.seg : (g+1)*sh.seg]
			}
			PackedGemvRows(segs, m, xs[b], skips[b], fill)
		}
		atGOMAXPROCS(t, []int{1, 2, 8}, func(t *testing.T) {
			dst := NewMatrix(members, rows)
			PackedGemmRows(dst, m, xs, skips, fill)
			for b := range xs {
				row := dst.Row(b)
				for i := range row {
					if row[i] != want[b][i] {
						t.Fatalf("GOMAXPROCS %d shape %v member %d row %d: batched %v != serial %v",
							runtime.GOMAXPROCS(0), sh, b, i, row[i], want[b][i])
					}
				}
			}
		})
	}
}

// TestPackedGemmRowsNilSkipsEqualsPackedGemm: a nil mask set (and a set
// of all-nil member masks) degenerates to the plain batched product.
func TestPackedGemmRowsNilSkipsEqualsPackedGemm(t *testing.T) {
	r := rng.New(0x49)
	const rows, cols, members = 21, 13, 4
	m := randMatrix(r, rows, cols)
	xs := make([]Vector, members)
	for b := range xs {
		xs[b] = randVector(r, cols)
	}
	want := NewMatrix(members, rows)
	PackedGemm(want, m, xs)
	for name, skips := range map[string][][]bool{
		"nil set":   nil,
		"nil masks": make([][]bool, members),
	} {
		dst := NewMatrix(members, rows)
		PackedGemmRows(dst, m, xs, skips, 0)
		for i := range dst.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("%s: element %d: %v != %v", name, i, dst.Data[i], want.Data[i])
			}
		}
	}
}

func TestPackedGemmRowsShapePanics(t *testing.T) {
	m := NewMatrix(8, 4)
	xs := []Vector{NewVector(4), NewVector(4)}
	for name, fn := range map[string]func(){
		"dst rows":    func() { PackedGemmRows(NewMatrix(3, 8), m, xs, nil, 0) },
		"dst cols":    func() { PackedGemmRows(NewMatrix(2, 7), m, xs, nil, 0) },
		"x cols":      func() { PackedGemmRows(NewMatrix(2, 8), m, []Vector{NewVector(4), NewVector(5)}, nil, 0) },
		"skips count": func() { PackedGemmRows(NewMatrix(2, 8), m, xs, make([][]bool, 3), 0) },
		"mask tiling": func() { PackedGemmRows(NewMatrix(2, 8), m, xs, [][]bool{make([]bool, 3), nil}, 0) },
		"empty mask":  func() { PackedGemmRows(NewMatrix(2, 8), m, xs, [][]bool{{}, nil}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParallelGemvBitwiseEqualsGemvProperty(t *testing.T) {
	r := rng.New(0x45)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		// Shapes straddle the size gate: some serial, some sharded.
		rows := 1 + rr.Intn(600)
		cols := 1 + rr.Intn(300)
		m := randMatrix(rr, rows, cols)
		x := randVector(rr, cols)
		want := NewVector(rows)
		Gemv(want, m, x)
		got := NewVector(rows)
		ParallelGemv(got, m, x)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	atGOMAXPROCS(t, []int{1, 2, 8}, func(t *testing.T) {
		cfg := &quick.Config{MaxCount: 25, Values: quickSeed(r)}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("GOMAXPROCS %d: %v", runtime.GOMAXPROCS(0), err)
		}
	})
}

func TestParallelGemmBitwiseEqualsGemm(t *testing.T) {
	r := rng.New(0x46)
	for _, sh := range [][3]int{{1, 1, 1}, {5, 3, 7}, {130, 70, 40}, {257, 129, 65}} {
		a := randMatrix(r, sh[0], sh[1])
		b := randMatrix(r, sh[1], sh[2])
		want := NewMatrix(sh[0], sh[2])
		Gemm(want, a, b)
		atGOMAXPROCS(t, []int{1, 2, 8}, func(t *testing.T) {
			got := NewMatrix(sh[0], sh[2])
			ParallelGemm(got, a, b)
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("GOMAXPROCS %d shape %v elem %d: %v != %v",
						runtime.GOMAXPROCS(0), sh, i, got.Data[i], want.Data[i])
				}
			}
		})
	}
}

func TestGemvRowsNilSkipBitwiseEqualsGemv(t *testing.T) {
	r := rng.New(0x47)
	for _, sh := range [][2]int{{1, 1}, {9, 7}, {33, 130}} {
		m := randMatrix(r, sh[0], sh[1])
		x := randVector(r, sh[1])
		a, b := NewVector(sh[0]), NewVector(sh[0])
		Gemv(a, m, x)
		GemvRows(b, m, x, nil, -1)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("shape %v row %d: %v != %v", sh, i, a[i], b[i])
			}
		}
	}
}

func TestPackValidatesAndConcatenates(t *testing.T) {
	r := rng.New(0x48)
	a := randMatrix(r, 2, 3)
	b := randMatrix(r, 4, 3)
	p := Pack(a, b)
	if p.Rows != 6 || p.Cols != 3 {
		t.Fatalf("packed shape %dx%d, want 6x3", p.Rows, p.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatalf("pack block a mismatch at (%d,%d)", i, j)
			}
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if p.At(2+i, j) != b.At(i, j) {
				t.Fatalf("pack block b mismatch at (%d,%d)", i, j)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on column mismatch")
		}
	}()
	Pack(a, NewMatrix(2, 4))
}

func TestRowBlockAliasesStorage(t *testing.T) {
	m := NewMatrix(6, 3)
	blk := m.RowBlock(2, 5)
	if blk.Rows != 3 || blk.Cols != 3 {
		t.Fatalf("block shape %dx%d, want 3x3", blk.Rows, blk.Cols)
	}
	m.Set(2, 1, 42)
	if blk.At(0, 1) != 42 {
		t.Fatal("RowBlock does not alias the parent storage")
	}
}

func TestPackedShapePanics(t *testing.T) {
	m := NewMatrix(8, 4)
	for name, fn := range map[string]func(){
		"dst rows":   func() { PackedGemv([]Vector{NewVector(3)}, m, NewVector(4)) },
		"x cols":     func() { PackedGemv([]Vector{NewVector(8)}, m, NewVector(5)) },
		"seg differ": func() { PackedGemvRows([]Vector{NewVector(3), NewVector(5)}, m, NewVector(4), nil, 0) },
		"skip len":   func() { PackedGemvRows([]Vector{NewVector(4), NewVector(4)}, m, NewVector(4), make([]bool, 3), 0) },
		"gemm dst":   func() { PackedGemm(NewMatrix(2, 7), m, []Vector{NewVector(4), NewVector(4)}) },
		"gemm x":     func() { PackedGemm(NewMatrix(2, 8), m, []Vector{NewVector(4), NewVector(3)}) },
		"rowblock":   func() { m.RowBlock(3, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
