//go:build amd64

package tensor

// dotRow dispatches the canonical row chain to the SSE2 body in
// dot_amd64.s. The slice contract stays in Go: the re-slice panics
// exactly where dotRowGeneric would if x is shorter than row, and a
// zero-length row never takes the address of an empty slice.
func dotRow(row, x []float32) float32 {
	n := len(row)
	if n == 0 {
		return 0
	}
	x = x[:n]
	return dotSSE(&row[0], &x[0], n)
}

// dotSSE is implemented in dot_amd64.s. It must match dotRowGeneric
// bitwise; see the chain definition in kernel.go.
func dotSSE(row, x *float32, n int) float32
