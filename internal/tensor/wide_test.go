package tensor

import (
	"runtime"
	"testing"

	"mobilstm/internal/rng"
)

// The wide family's own equivalence contract: every Wide* kernel must
// be BITWISE identical to per-row dotRowWide calls — wide-vs-wide, at
// any GOMAXPROCS and any batch B — mirroring the canonical packed/
// parallel contracts. Wide-vs-canonical equality is deliberately NOT
// asserted anywhere: the chains differ by design (see
// TestDotRowWideFusesProducts).

// wideRef computes dst = m·x per row through dotRowWide — the serial
// reference every wide kernel is held to.
func wideRef(m *Matrix, x Vector) Vector {
	dst := NewVector(m.Rows)
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		dst[i] = dotRowWide(m.Data[i*n:i*n+n], x)
	}
	return dst
}

func TestWideGemvBitwiseEqualsWideRef(t *testing.T) {
	r := rng.New(0x81)
	for _, sh := range packedShapes {
		m := randMatrix(r, sh.seg*sh.gates, sh.cols)
		x := randVector(r, sh.cols)
		dst := NewVector(m.Rows)
		WideGemv(dst, m, x)
		want := wideRef(m, x)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("shape %v row %d: WideGemv %v != ref %v", sh, i, dst[i], want[i])
			}
		}
	}
}

func TestWideGemvRowsBitwiseEqualsWideRef(t *testing.T) {
	r := rng.New(0x82)
	for _, sh := range packedShapes {
		m := randMatrix(r, sh.seg*sh.gates, sh.cols)
		x := randVector(r, sh.cols)
		skip := make([]bool, m.Rows)
		for i := range skip {
			skip[i] = r.Bernoulli(0.4)
		}
		const fill = -7.5
		dst := NewVector(m.Rows)
		WideGemvRows(dst, m, x, skip, fill)
		want := wideRef(m, x)
		for i := range dst {
			w := want[i]
			if skip[i] {
				w = fill
			}
			if dst[i] != w {
				t.Fatalf("shape %v row %d: WideGemvRows %v != %v", sh, i, dst[i], w)
			}
		}
		// nil skip degenerates to WideGemv.
		WideGemvRows(dst, m, x, nil, fill)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("shape %v row %d nil-skip: %v != %v", sh, i, dst[i], want[i])
			}
		}
	}
}

func TestWidePackedGemvBitwiseEqualsWideGemv(t *testing.T) {
	r := rng.New(0x83)
	for _, sh := range packedShapes {
		gates := make([]*Matrix, sh.gates)
		for g := range gates {
			gates[g] = randMatrix(r, sh.seg, sh.cols)
		}
		united := Pack(gates...)
		x := randVector(r, sh.cols)
		dsts := make([]Vector, sh.gates)
		want := make([]Vector, sh.gates)
		for g := range dsts {
			dsts[g] = NewVector(sh.seg)
			want[g] = NewVector(sh.seg)
			WideGemv(want[g], gates[g], x)
		}
		WidePackedGemv(dsts, united, x)
		for g := range dsts {
			for i := range dsts[g] {
				if dsts[g][i] != want[g][i] {
					t.Fatalf("shape %v gate %d row %d: packed %v != serial %v",
						sh, g, i, dsts[g][i], want[g][i])
				}
			}
		}
	}
}

func TestWidePackedGemvRowsBitwiseEqualsWideGemvRows(t *testing.T) {
	r := rng.New(0x84)
	for _, sh := range packedShapes {
		gates := make([]*Matrix, sh.gates)
		for g := range gates {
			gates[g] = randMatrix(r, sh.seg, sh.cols)
		}
		united := Pack(gates...)
		x := randVector(r, sh.cols)
		skip := make([]bool, sh.seg)
		for i := range skip {
			skip[i] = r.Bernoulli(0.4)
		}
		const fill = 3.25
		dsts := make([]Vector, sh.gates)
		want := make([]Vector, sh.gates)
		for g := range dsts {
			dsts[g] = NewVector(sh.seg)
			want[g] = NewVector(sh.seg)
			WideGemvRows(want[g], gates[g], x, skip, fill)
		}
		WidePackedGemvRows(dsts, united, x, skip, fill)
		for g := range dsts {
			for i := range dsts[g] {
				if dsts[g][i] != want[g][i] {
					t.Fatalf("shape %v gate %d row %d: packed %v != serial %v",
						sh, g, i, dsts[g][i], want[g][i])
				}
			}
		}
	}
}

// TestWidePackedGemmBitwiseAtAnyGOMAXPROCS pins the wide whole-layer
// W·x stage to serial per-input WideGemv across the fork-join sweep —
// the wide twin of the PackedGemm contract.
func TestWidePackedGemmBitwiseAtAnyGOMAXPROCS(t *testing.T) {
	r := rng.New(0x85)
	const inputs, rows, cols = 37, 68, 96 // big enough to clear the size gate
	m := randMatrix(r, rows, cols)
	xs := make([]Vector, inputs)
	want := make([]Vector, inputs)
	for i := range xs {
		xs[i] = randVector(r, cols)
		want[i] = NewVector(rows)
		WideGemv(want[i], m, xs[i])
	}
	dst := NewMatrix(inputs, rows)
	atGOMAXPROCS(t, []int{1, 2, 8}, func(t *testing.T) {
		for i := range dst.Data {
			dst.Data[i] = 0
		}
		WidePackedGemm(dst, m, xs)
		for t2 := range xs {
			row := dst.Row(t2)
			for i := range row {
				if row[i] != want[t2][i] {
					t.Fatalf("GOMAXPROCS %d input %d row %d: %v != %v",
						runtime.GOMAXPROCS(0), t2, i, row[i], want[t2][i])
				}
			}
		}
	})
}

// TestWidePackedGemmRowsBitwiseAtAnyGOMAXPROCS pins the wide batch-B
// recurrent kernel to per-member serial wide calls across GOMAXPROCS
// and per-member DRS masks — the batch half of the wide determinism
// contract.
func TestWidePackedGemmRowsBitwiseAtAnyGOMAXPROCS(t *testing.T) {
	r := rng.New(0x86)
	const batch, seg, gates, cols = 9, 17, 4, 96
	rows := seg * gates
	m := randMatrix(r, rows, cols)
	xs := make([]Vector, batch)
	skips := make([][]bool, batch)
	const fill = -1.5
	want := make([]Vector, batch)
	for b := range xs {
		xs[b] = randVector(r, cols)
		if b%3 != 0 { // leave every third member maskless
			sk := make([]bool, seg)
			for i := range sk {
				sk[i] = r.Bernoulli(0.3)
			}
			skips[b] = sk
		}
		want[b] = NewVector(rows)
		for i := 0; i < rows; i++ {
			if sk := skips[b]; sk != nil && sk[i%seg] {
				want[b][i] = fill
				continue
			}
			want[b][i] = dotRowWide(m.Data[i*cols:i*cols+cols], xs[b])
		}
	}
	dst := NewMatrix(batch, rows)
	atGOMAXPROCS(t, []int{1, 2, 8}, func(t *testing.T) {
		for i := range dst.Data {
			dst.Data[i] = 0
		}
		WidePackedGemmRows(dst, m, xs, skips, fill)
		for b := range xs {
			row := dst.Row(b)
			for i := range row {
				if row[i] != want[b][i] {
					t.Fatalf("GOMAXPROCS %d member %d row %d: %v != %v",
						runtime.GOMAXPROCS(0), b, i, row[i], want[b][i])
				}
			}
		}
	})
}
