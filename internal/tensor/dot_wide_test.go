package tensor

import (
	"math"
	"testing"

	"mobilstm/internal/rng"
)

// TestDotRowWideMatchesGeneric pins the dispatching dotRowWide (AVX2+FMA
// assembly on capable amd64, alias of the Go wide chain elsewhere) to
// the wide chain definition in dotRowWideGeneric, bitwise, across the
// 32-float block boundaries, remainders, and the empty row. On a CPU
// without the wide body both sides are the same function and the test
// degenerates to a self-check — the assembly half of the contract is
// exercised wherever CI has AVX2.
func TestDotRowWideMatchesGeneric(t *testing.T) {
	r := rng.New(0x71)
	sizes := []int{0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 47, 63, 64, 65, 95, 96, 97, 100, 127, 128, 129, 192, 650}
	for _, n := range sizes {
		row := make([]float32, n)
		x := make([]float32, n+3) // x may be longer than row; only x[:n] is read
		for i := range row {
			row[i] = float32(r.Norm())
		}
		for i := range x {
			x[i] = float32(r.Norm())
		}
		got := dotRowWide(row, x)
		want := dotRowWideGeneric(row, x)
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Errorf("n=%d: dotRowWide=%v dotRowWideGeneric=%v", n, got, want)
		}
	}
}

// TestDotRowWideFusesProducts pins the property that separates the two
// chains: a wide-chain product reaches the accumulator without
// intermediate rounding. With v = 1+2^-12 and a 2^-24 residue already
// in the accumulator, v·v's exact tail (2^-24) combines with the
// residue to a representable 2^-23 under a single rounding, while the
// canonical chain rounds v·v first (tie-to-even drops the tail) and
// then loses the residue to a second tie. The chains MUST disagree
// here — this is the documented ULP drift, not a bug.
func TestDotRowWideFusesProducts(t *testing.T) {
	v := float32(1) + float32(1)/4096 // v² = 1 + 2^-11 + 2^-24 exactly (25 bits)
	eps := float32(1) / (1 << 24)
	row := []float32{eps, v}
	x := []float32{1, v}
	wide := dotRowWide(row, x)
	canon := dotRow(row, x)
	fused := float32(float64(eps) + float64(v)*float64(v)) // one rounding, the wide order
	if math.Float32bits(wide) != math.Float32bits(fused) {
		t.Fatalf("wide dot = %v (%#08x), want single-rounded %v (%#08x)",
			wide, math.Float32bits(wide), fused, math.Float32bits(fused))
	}
	if math.Float32bits(wide) == math.Float32bits(canon) {
		t.Fatalf("wide chain matched the canonical chain (%v); expected the fused tail to survive", canon)
	}
}
