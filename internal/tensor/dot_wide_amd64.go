//go:build amd64

package tensor

// dotRowWide dispatches the wide row chain to the AVX2+FMA body in
// dot_avx2_amd64.s when the CPU probe allows it and assembly is not
// forced off (ChainGeneric), and to the pure-Go wide twin otherwise.
// The fallback keeps ChainAVX2 selectable on any CPU: the chain — and
// its determinism contract — is the same, only the body changes. The
// slice contract stays in Go, exactly as in dotRow.
func dotRowWide(row, x []float32) float32 {
	n := len(row)
	if n == 0 {
		return 0
	}
	x = x[:n]
	if !hasWideBody || forceGenericBody() {
		return dotRowWideGeneric(row, x)
	}
	return dotAVX2(&row[0], &x[0], n)
}

// dotAVX2 is implemented in dot_avx2_amd64.s. It must match
// dotRowWideGeneric bitwise on the pinned corpora; see the wide chain
// definition in kernel_wide.go.
func dotAVX2(row, x *float32, n int) float32
