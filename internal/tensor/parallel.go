package tensor

import (
	"runtime"
	"sync"
)

// Row-sharded parallel kernels. The sharding axis is always a
// destination row (a dot-product chain that no other row touches), so a
// parallel kernel's output is bitwise identical to its serial
// counterpart at any GOMAXPROCS — the shards only partition the row
// space, never an accumulation. Small shapes stay serial: the gate
// below keeps fork-join overhead (goroutine spawn + Wait, on the order
// of microseconds) away from kernels that finish faster than that.

const (
	// parallelMinWork is the size gate: a kernel whose total
	// multiply-accumulate count (rows × cols, × inputs for PackedGemm)
	// falls below this runs serially. 1<<16 MACs is ~25 µs of pure-Go
	// GEMV on a mobile-class core — the break-even region for a
	// handful of goroutine spawns.
	parallelMinWork = 1 << 16
	// parallelMinRows is the smallest shard height: thinner shards
	// spend more time in the scheduler than in the kernel.
	parallelMinRows = 8
	// parallelMaxShards caps the fan-out so a huge kernel under a
	// concurrent caller (the serve worker pool) cannot flood the
	// scheduler with goroutines.
	parallelMaxShards = 16
)

// shardCount returns how many row shards a kernel over rows×(work/rows)
// should fork, gated on size and GOMAXPROCS. One means "stay serial".
func shardCount(rows, work int) int {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || work < parallelMinWork || rows < 2*parallelMinRows {
		return 1
	}
	shards := procs
	if shards > rows/parallelMinRows {
		shards = rows / parallelMinRows
	}
	if shards > parallelMaxShards {
		shards = parallelMaxShards
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// forkJoin runs body over [0, rows) split into contiguous shards: the
// launching goroutine registers every extra shard in a WaitGroup before
// spawning it, computes the first shard inline, and waits for the rest
// — every parallel kernel is a complete unit of work by the time it
// returns (the locklint invariant). With one shard it degenerates to a
// plain call.
func forkJoin(rows, work int, body func(lo, hi int)) {
	shards := shardCount(rows, work)
	if shards <= 1 {
		body(0, rows)
		return
	}
	chunk := (rows + shards - 1) / shards
	var wg sync.WaitGroup
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	body(0, chunk)
	wg.Wait()
}

// ParallelGemv computes dst = m · x with the rows sharded over a
// fork-join worker pool. Bitwise identical to Gemv (each row is the
// same dotRow chain); small shapes fall through to the serial
// path, so callers can route every call site here and let the gate
// decide.
func ParallelGemv(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		Panicf("tensor: ParallelGemv shape mismatch: dst %d, m %dx%d, x %d",
			len(dst), m.Rows, m.Cols, len(x))
	}
	forkJoin(m.Rows, m.Rows*m.Cols, func(lo, hi int) {
		gemvSpan(dst[lo:hi], m, x, lo)
	})
}

// ParallelGemm computes dst = a · b with a's rows sharded over the
// fork-join pool. Bitwise identical to Gemm: dst row i depends only on
// a row i, and each shard runs the serial ikj body over its own rows.
func ParallelGemm(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		Panicf("tensor: ParallelGemm shape mismatch: dst %dx%d, a %dx%d, b %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	forkJoin(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		gemmRange(dst, a, b, lo, hi)
	})
}
