//go:build amd64

package tensor

// Stdlib-only CPUID probe for the wide-chain dispatch. The wide chain
// needs AVX2 and FMA instructions *and* OS-saved YMM state: a kernel
// that does not context-switch the upper register halves (XCR0 bits 1-2
// clear) would silently corrupt them, so the probe checks OSXSAVE +
// XGETBV exactly like runtime·cpuinit does. golang.org/x/sys/cpu is the
// usual home for this; the repo is stdlib-only, and the probe is four
// CPUID leaves.

// cpuid and xgetbv0 are implemented in cpu_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// cpuFeatures is filled once at init; all later reads are immutable.
var cpuFeatures = probeCPU()

func probeCPU() CPUInfo {
	var info CPUInfo
	info.SSE2 = true // amd64 baseline
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return info
	}
	_, _, ecx1, _ := cpuid(1, 0)
	info.FMA = ecx1&(1<<12) != 0
	osxsave := ecx1&(1<<27) != 0
	info.AVX = ecx1&(1<<28) != 0
	if osxsave {
		xcr0, _ := xgetbv0()
		info.OSYMM = xcr0&0x6 == 0x6 // XMM + YMM state saved
	}
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		info.AVX2 = ebx7&(1<<5) != 0
	}
	return info
}

// hasWideBody reports whether the AVX2+FMA assembly body is usable on
// this CPU. dotRowWide falls back to the pure-Go wide twin otherwise.
var hasWideBody = cpuFeatures.AVX && cpuFeatures.AVX2 && cpuFeatures.FMA && cpuFeatures.OSYMM
