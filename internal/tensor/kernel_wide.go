package tensor

import "math"

// The wide (fast-mode) accumulation chain. Where kernel.go's canonical
// chain is sixteen 16-strided multiply-then-add lanes, the wide chain
// is thirty-two 32-strided fused-multiply-add lanes: four groups of
// eight (each group the image of one YMM register), folded lanewise as
// (A+B)+(C+D), halved lanewise (lane k plus lane k+4 — the
// VEXTRACTF128 step), then scalar as ((m0+m1)+m2)+m3, with an FMA
// serial remainder. It is a second sanctioned chain with its own
// bitwise contract (wide-vs-wide, any GOMAXPROCS, any batch B), NOT
// interchangeable with the canonical chain: FMA skips the intermediate
// rounding of a*b, so the two chains drift by a few ULP on real
// weights (measured in EXPERIMENTS.md). Reachable only through the
// Wide* kernels — the canonical kernels never dispatch here.

// fma32 is one float32 fused multiply-add: a*b computed exactly, added
// to acc, rounded once. math.FMA in float64 carries the exact float32
// product and is correctly rounded, so rounding the float64 result back
// to float32 matches hardware VFMADD231SS on all inputs exercised by
// the pinned corpora; the dot_wide tests hold the assembly to it.
// (Double rounding through float64 can in principle differ from a
// native float32 FMA on adversarial 25-bit-midpoint ties; the pinned
// wide contract is therefore wide-vs-wide within one body, with the
// asm-vs-Go equality checked on fixed deterministic corpora.)
func fma32(a, b, acc float32) float32 {
	//lint:ignore float64leak the float64 round-trip IS the FMA semantics: the widening is exact and the single rounding back to float32 is the contract the AVX2 body implements
	return float32(math.FMA(float64(a), float64(b), float64(acc)))
}

// dotRowWideGeneric is the reference wide row kernel and the definition
// of the wide accumulation chain, mirroring dotRowGeneric's structure
// at twice the width: four groups of eight 32-strided FMA lanes
// (a,b,c,d = Y0..Y3 in dot_avx2_amd64.s), lanewise fold (A+B)+(C+D),
// lanewise halving m[k] = l[k] + l[k+4], scalar fold ((m0+m1)+m2)+m3,
// FMA remainder. The x re-slice erases the per-element bounds checks
// exactly as in the canonical twin.
func dotRowWideGeneric(row, x []float32) float32 {
	n := len(row)
	x = x[:n]
	var a, b, c, d [8]float32
	j := 0
	for ; j+32 <= n; j += 32 {
		for k := 0; k < 8; k++ {
			a[k] = fma32(row[j+k], x[j+k], a[k])
			b[k] = fma32(row[j+8+k], x[j+8+k], b[k])
			c[k] = fma32(row[j+16+k], x[j+16+k], c[k])
			d[k] = fma32(row[j+24+k], x[j+24+k], d[k])
		}
	}
	var l [8]float32
	for k := 0; k < 8; k++ {
		l[k] = (a[k] + b[k]) + (c[k] + d[k])
	}
	m0 := l[0] + l[4]
	m1 := l[1] + l[5]
	m2 := l[2] + l[6]
	m3 := l[3] + l[7]
	s := ((m0 + m1) + m2) + m3
	for ; j < n; j++ {
		s = fma32(row[j], x[j], s)
	}
	return s
}

// wideGemvSpan is gemvSpan over the wide chain: dst[i] = row(row0+i)·x
// for every i in [0, len(dst)) — the shared row-range body of the Wide*
// kernels. Every row is one dotRowWide chain, so shard and segment
// boundaries never change a single output bit within the wide mode.
func wideGemvSpan(dst Vector, m *Matrix, x Vector, row0 int) {
	n := m.Cols
	for i := range dst {
		r := row0 + i
		dst[i] = dotRowWide(m.Data[r*n:r*n+n], x)
	}
}
