package tensor

// The shared inner kernels of the GEMV family. Every kernel in this
// package — serial, packed, parallel — reduces each output element to
// exactly one of the accumulation chains below, so results are bitwise
// identical however rows are blocked, sharded across goroutines, or
// scattered across united-gate destinations. Do not add a kernel with a
// different summation order: the equivalence tests (and the lstm/gru
// bitwise-determinism guarantees) all lean on this invariant.

// dotRowGeneric is the reference row kernel and the definition of the
// canonical accumulation chain: sixteen partial sums over the
// 16-strided lanes, held as four groups of four (each group is the
// image of one SSE register), folded lanewise as (A+B)+(C+D) and then
// scalar as ((l0+l1)+l2)+l3, with a serial remainder. dot_amd64.s
// carries the same chain in packed SSE2 — MULPS/ADDPS apply lanewise,
// so each XMM register holds exactly one group's four sums and the
// assembly is bitwise identical to this function (pinned by
// TestDotRowMatchesGeneric). The x re-slice lets the compiler prove
// both index streams in-bounds, erasing the per-element checks.
func dotRowGeneric(row, x []float32) float32 {
	n := len(row)
	x = x[:n]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	var c0, c1, c2, c3 float32
	var d0, d1, d2, d3 float32
	j := 0
	for ; j+16 <= n; j += 16 {
		a0 += row[j] * x[j]
		a1 += row[j+1] * x[j+1]
		a2 += row[j+2] * x[j+2]
		a3 += row[j+3] * x[j+3]
		b0 += row[j+4] * x[j+4]
		b1 += row[j+5] * x[j+5]
		b2 += row[j+6] * x[j+6]
		b3 += row[j+7] * x[j+7]
		c0 += row[j+8] * x[j+8]
		c1 += row[j+9] * x[j+9]
		c2 += row[j+10] * x[j+10]
		c3 += row[j+11] * x[j+11]
		d0 += row[j+12] * x[j+12]
		d1 += row[j+13] * x[j+13]
		d2 += row[j+14] * x[j+14]
		d3 += row[j+15] * x[j+15]
	}
	l0 := (a0 + b0) + (c0 + d0)
	l1 := (a1 + b1) + (c1 + d1)
	l2 := (a2 + b2) + (c2 + d2)
	l3 := (a3 + b3) + (c3 + d3)
	s := ((l0 + l1) + l2) + l3
	for ; j < n; j++ {
		s += row[j] * x[j]
	}
	return s
}

// gemvSpan computes dst[i] = row(row0+i) · x for every i in
// [0, len(dst)) — the shared row-range body of Gemv, ParallelGemv, and
// the packed kernels. Every row is one dotRow chain, so shard and
// segment boundaries never change a single output bit.
func gemvSpan(dst Vector, m *Matrix, x Vector, row0 int) {
	n := m.Cols
	for i := range dst {
		r := row0 + i
		dst[i] = dotRow(m.Data[r*n:r*n+n], x)
	}
}

// gemmRange is the row range [lo, hi) of the serial Gemm body: zero the
// destination rows, then accumulate in ikj order. ParallelGemm shards
// call this over disjoint ranges; dst row i depends only on a's row i,
// so the sharding is bitwise invisible.
func gemmRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : i*n+n]
		for j := range drow {
			drow[j] = 0
		}
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				drow[j] += aik * bv
			}
		}
	}
}
