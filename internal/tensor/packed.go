package tensor

// United-gate packed kernels: the paper's central trick — concatenate
// the per-gate weight matrices row-wise into one united matrix
// (U_{f,i,c,o} is 4h×h, the GRU's U_{z,r} is 2h×h) and stream the input
// vector through it once per cell instead of once per gate. The packed
// kernels below are the host-side float32 counterparts of the
// Sgemv/Sgemm united kernels the GPU model replays: one weight stream,
// multiple gate outputs, bitwise identical to the per-gate serial calls
// (every output element is one dotRow chain; see kernel.go).

// Pack returns the row-wise concatenation of ms — the united matrix.
// All inputs must share a column count; the result owns fresh storage,
// so callers cache it and rebuild after weight mutation.
func Pack(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		Panicf("tensor: Pack of no matrices")
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			Panicf("tensor: Pack column mismatch: %d vs %d", m.Cols, cols)
		}
		rows += m.Rows
	}
	p := NewMatrix(rows, cols)
	off := 0
	for _, m := range ms {
		copy(p.Data[off:off+len(m.Data)], m.Data)
		off += len(m.Data)
	}
	return p
}

// RowBlock returns rows [lo, hi) of m as a matrix view aliasing m's
// storage (row-major rows are contiguous, so a row block is free). The
// packed layers use this to address one gate's block of a united
// matrix without copying.
func (m *Matrix) RowBlock(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		Panicf("tensor: RowBlock [%d, %d) of %d rows", lo, hi, m.Rows)
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// packedRows sums the destination lengths and validates them against
// the united matrix shape.
func packedRows(name string, dsts []Vector, m *Matrix, x Vector) int {
	rows := 0
	for _, d := range dsts {
		rows += len(d)
	}
	if rows != m.Rows || len(x) != m.Cols {
		Panicf("tensor: %s shape mismatch: dsts %d rows, m %dx%d, x %d",
			name, rows, m.Rows, m.Cols, len(x))
	}
	return rows
}

// PackedGemv computes the united product m · x and scatters the result
// into the per-gate destinations: dsts[0] receives the first len(dsts[0])
// rows, dsts[1] the next block, and so on. It is bitwise identical to
// one serial Gemv per row block — the input vector is simply streamed
// once over the united matrix instead of once per gate.
func PackedGemv(dsts []Vector, m *Matrix, x Vector) {
	packedRows("PackedGemv", dsts, m, x)
	off := 0
	for _, d := range dsts {
		gemvSpan(d, m, x, off)
		off += len(d)
	}
}

// PackedGemvRows is PackedGemv with the paper's Dynamic Row Skip mask:
// the destinations must all have the united matrix's segment length
// (m.Rows / len(dsts)), and row i of every segment is skipped — set to
// fill instead of computed — where skip[i] is true. This is the united
// Sgemv(U_{f,i,c}, h, R) kernel with trivial rows disabled: one skip
// decision covers the row in all gates, exactly as Algorithm 3 shares
// o_t's triviality across U_f, U_i, U_c. A nil skip computes every row.
func PackedGemvRows(dsts []Vector, m *Matrix, x Vector, skip []bool, fill float32) {
	packedRows("PackedGemvRows", dsts, m, x)
	if len(dsts) == 0 {
		return
	}
	seg := len(dsts[0])
	for _, d := range dsts {
		if len(d) != seg {
			Panicf("tensor: PackedGemvRows segments differ: %d vs %d", len(d), seg)
		}
	}
	if skip == nil {
		PackedGemv(dsts, m, x)
		return
	}
	if len(skip) != seg {
		Panicf("tensor: PackedGemvRows skip length %d, segment %d", len(skip), seg)
	}
	n := m.Cols
	for k, d := range dsts {
		base := k * seg
		for i := 0; i < seg; i++ {
			if skip[i] {
				d[i] = fill
				continue
			}
			r := base + i
			d[i] = dotRow(m.Data[r*n:r*n+n], x)
		}
	}
}

// PackedGemmRows computes dst row b = m · xs[b] for every input vector,
// with a per-input Dynamic Row Skip mask — the batch-B recurrent kernel
// of the batched forward path. dst is a len(xs) × m.Rows row-major
// matrix; skips is nil (compute everything), or holds one mask per
// input, each mask nil (compute every row for that input) or of a
// length that tiles m.Rows the way PackedGemvRows' segment mask does:
// united row r of input b is skipped — set to fill — where
// skips[b][r % len(skips[b])] is true.
//
// The traversal is row-outer: each united weight row streams from
// memory once and is dotted against every input before the next row is
// touched — the Appleyard-style GEMV→GEMM conversion that amortizes
// weight traffic over the batch, which is why the fork-join shards the
// weight rows (tall: 4h/3h/2h) rather than the batch (wide but short).
// Every output element is the same dotRow chain as the serial
// per-member call, so the result is bitwise identical to len(xs)
// independent Gemv/PackedGemvRows calls at any GOMAXPROCS.
func PackedGemmRows(dst *Matrix, m *Matrix, xs []Vector, skips [][]bool, fill float32) {
	if dst.Rows != len(xs) || dst.Cols != m.Rows {
		Panicf("tensor: PackedGemmRows shape mismatch: dst %dx%d, m %dx%d, %d inputs",
			dst.Rows, dst.Cols, m.Rows, m.Cols, len(xs))
	}
	for _, x := range xs {
		if len(x) != m.Cols {
			Panicf("tensor: PackedGemmRows input length %d, m cols %d", len(x), m.Cols)
		}
	}
	if skips != nil && len(skips) != len(xs) {
		Panicf("tensor: PackedGemmRows %d masks for %d inputs", len(skips), len(xs))
	}
	if skips != nil {
		for _, sk := range skips {
			if sk != nil && (len(sk) == 0 || m.Rows%len(sk) != 0) {
				Panicf("tensor: PackedGemmRows mask length %d does not tile %d united rows",
					len(sk), m.Rows)
			}
		}
	}
	n := m.Cols
	forkJoin(m.Rows, m.Rows*n*len(xs), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			wrow := m.Data[r*n : r*n+n]
			out := dst.Data[r:]
			for b, x := range xs {
				if skips != nil {
					if sk := skips[b]; sk != nil && sk[r%len(sk)] {
						out[b*dst.Cols] = fill
						continue
					}
				}
				out[b*dst.Cols] = dotRow(wrow, x)
			}
		}
	})
}

// PackedGemm computes dst row t = m · xs[t] for every input vector —
// the whole-layer united W·x stage (step 2 of Algorithm 1, where all
// cell inputs are ready up-front): dst is a len(xs) × m.Rows row-major
// matrix whose row t is the united gate pre-activation of cell t. Large
// shapes fan the independent t rows out over the parallel worker shards
// (see parallel.go); each row is one gemvSpan, so the result is bitwise
// identical to len(xs) serial Gemv calls at any GOMAXPROCS.
func PackedGemm(dst *Matrix, m *Matrix, xs []Vector) {
	if dst.Rows != len(xs) || dst.Cols != m.Rows {
		Panicf("tensor: PackedGemm shape mismatch: dst %dx%d, m %dx%d, %d inputs",
			dst.Rows, dst.Cols, m.Rows, m.Cols, len(xs))
	}
	for _, x := range xs {
		if len(x) != m.Cols {
			Panicf("tensor: PackedGemm input length %d, m cols %d", len(x), m.Cols)
		}
	}
	forkJoin(len(xs), len(xs)*m.Rows*m.Cols, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			gemvSpan(dst.Row(t), m, xs[t], 0)
		}
	})
}
