package tensor

import "strings"

// CPUInfo reports the vector capabilities the kernel dispatch cares
// about, as detected at process start. bench tooling records it next to
// the active chain so cross-box trajectories stay comparable.
type CPUInfo struct {
	SSE2  bool // amd64 baseline; false only off amd64
	AVX   bool // CPUID.1:ECX.AVX
	FMA   bool // CPUID.1:ECX.FMA (VFMADD231PS et al.)
	AVX2  bool // CPUID.7.0:EBX.AVX2
	OSYMM bool // OS saves YMM state (OSXSAVE + XCR0[2:1] == 11b)
}

// CPU returns the detected feature set of this machine.
func CPU() CPUInfo { return cpuFeatures }

// String renders the detected features as a stable "+"-joined list
// ("sse2+avx+fma+avx2+osymm"), or "none" when nothing is detected.
func (c CPUInfo) String() string {
	var parts []string
	if c.SSE2 {
		parts = append(parts, "sse2")
	}
	if c.AVX {
		parts = append(parts, "avx")
	}
	if c.FMA {
		parts = append(parts, "fma")
	}
	if c.AVX2 {
		parts = append(parts, "avx2")
	}
	if c.OSYMM {
		parts = append(parts, "osymm")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// HasAVX2FMA reports whether the AVX2+FMA wide-chain body is usable on
// this machine. When false, ChainAVX2 still selects the wide chain —
// it just runs through the pure-Go twin (dotRowWideGeneric), so forced
// wide-chain CI runs exercise the same contracts on any runner.
func HasAVX2FMA() bool { return hasWideBody }
