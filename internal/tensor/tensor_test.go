package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"mobilstm/internal/rng"
)

func randMatrix(r *rng.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormF32(0, 1)
	}
	return m
}

func randVector(r *rng.RNG, n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = r.NormF32(0, 1)
	}
	return v
}

// gemvNaive is the obviously-correct reference implementation.
func gemvNaive(m *Matrix, x Vector) Vector {
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for j := 0; j < m.Cols; j++ {
			s += float64(m.At(i, j)) * float64(x[j])
		}
		out[i] = float32(s)
	}
	return out
}

func maxAbsDiff(a, b Vector) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i] - b[i])); v > d {
			d = v
		}
	}
	return d
}

func TestGemvMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {7, 4}, {16, 16}, {33, 129}, {100, 257}} {
		m := randMatrix(r, shape[0], shape[1])
		x := randVector(r, shape[1])
		got := NewVector(shape[0])
		Gemv(got, m, x)
		want := gemvNaive(m, x)
		if d := maxAbsDiff(got, want); d > 1e-3 {
			t.Errorf("shape %v: max diff %v", shape, d)
		}
	}
}

func TestGemvShapePanics(t *testing.T) {
	m := NewMatrix(3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	Gemv(NewVector(3), m, NewVector(5))
}

func TestGemvRowsNilSkipEqualsGemv(t *testing.T) {
	r := rng.New(2)
	m := randMatrix(r, 20, 30)
	x := randVector(r, 30)
	a, b := NewVector(20), NewVector(20)
	Gemv(a, m, x)
	GemvRows(b, m, x, nil, -1)
	if d := maxAbsDiff(a, b); d > 1e-4 {
		t.Fatalf("GemvRows(nil) differs from Gemv by %v", d)
	}
}

func TestGemvRowsSkips(t *testing.T) {
	r := rng.New(3)
	m := randMatrix(r, 10, 8)
	x := randVector(r, 8)
	skip := make([]bool, 10)
	skip[0], skip[4], skip[9] = true, true, true
	out := NewVector(10)
	GemvRows(out, m, x, skip, 42)
	ref := gemvNaive(m, x)
	for i := range out {
		if skip[i] {
			if out[i] != 42 {
				t.Errorf("row %d: got %v, want fill 42", i, out[i])
			}
		} else if math.Abs(float64(out[i]-ref[i])) > 1e-4 {
			t.Errorf("row %d: got %v, want %v", i, out[i], ref[i])
		}
	}
}

func TestGemmMatchesGemvColumns(t *testing.T) {
	r := rng.New(4)
	a := randMatrix(r, 9, 7)
	b := randMatrix(r, 7, 5)
	dst := NewMatrix(9, 5)
	Gemm(dst, a, b)
	// Column j of dst must equal a * (column j of b).
	for j := 0; j < 5; j++ {
		col := NewVector(7)
		for k := 0; k < 7; k++ {
			col[k] = b.At(k, j)
		}
		want := gemvNaive(a, col)
		for i := 0; i < 9; i++ {
			if math.Abs(float64(dst.At(i, j)-want[i])) > 1e-3 {
				t.Fatalf("dst[%d][%d] = %v, want %v", i, j, dst.At(i, j), want[i])
			}
		}
	}
}

func TestGemmIdentity(t *testing.T) {
	r := rng.New(5)
	a := randMatrix(r, 6, 6)
	id := NewMatrix(6, 6)
	for i := 0; i < 6; i++ {
		id.Set(i, i, 1)
	}
	dst := NewMatrix(6, 6)
	Gemm(dst, a, id)
	for i := range dst.Data {
		if math.Abs(float64(dst.Data[i]-a.Data[i])) > 1e-5 {
			t.Fatalf("A*I != A at %d", i)
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	dst := NewVector(3)
	Add(dst, a, b)
	if dst[0] != 5 || dst[1] != 7 || dst[2] != 9 {
		t.Fatalf("Add: %v", dst)
	}
	Mul(dst, a, b)
	if dst[0] != 4 || dst[1] != 10 || dst[2] != 18 {
		t.Fatalf("Mul: %v", dst)
	}
	Axpy(dst, 2, a)
	if dst[0] != 6 || dst[1] != 14 || dst[2] != 24 {
		t.Fatalf("Axpy: %v", dst)
	}
	if d := Dot(a, b); d != 32 {
		t.Fatalf("Dot: %v", d)
	}
}

func TestAbsRowSums(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, -2, 3, -4, 0, 5})
	d := AbsRowSums(m)
	if d[0] != 6 || d[1] != 9 {
		t.Fatalf("AbsRowSums: %v", d)
	}
}

func TestArgMax(t *testing.T) {
	if i := ArgMax(Vector{0.1, 3, -1, 3}); i != 1 {
		t.Fatalf("ArgMax tie-break: %d, want 1", i)
	}
	if i := ArgMax(Vector{-5}); i != 0 {
		t.Fatalf("ArgMax single: %d", i)
	}
}

func TestMaxAbs(t *testing.T) {
	if m := MaxAbs(Vector{1, -7, 3}); m != 7 {
		t.Fatalf("MaxAbs: %v", m)
	}
	if m := MaxAbs(nil); m != 0 {
		t.Fatalf("MaxAbs(nil): %v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	v := Vector{1, 2}
	cv := v.Clone()
	cv[0] = 9
	if v[0] != 1 {
		t.Fatal("Vector Clone shares storage")
	}
}

func TestSizeBytes(t *testing.T) {
	if n := NewMatrix(10, 20).SizeBytes(); n != 800 {
		t.Fatalf("SizeBytes: %d", n)
	}
}

// Property: Gemv is linear — M(ax + by) = a*Mx + b*My.
func TestGemvLinearityProperty(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		rows, cols := 1+rr.Intn(30), 1+rr.Intn(30)
		m := randMatrix(rr, rows, cols)
		x, y := randVector(rr, cols), randVector(rr, cols)
		a, b := rr.Float32(), rr.Float32()
		xy := NewVector(cols)
		for i := range xy {
			xy[i] = a*x[i] + b*y[i]
		}
		lhs := NewVector(rows)
		Gemv(lhs, m, xy)
		mx, my := NewVector(rows), NewVector(rows)
		Gemv(mx, m, x)
		Gemv(my, m, y)
		for i := range lhs {
			want := a*mx[i] + b*my[i]
			if math.Abs(float64(lhs[i]-want)) > 1e-2 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Values: quickSeed(r)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: AbsRowSums bounds |M h| elementwise for any h in [-1, 1]^n —
// the invariant Algorithm 2 rests on.
func TestAbsRowSumsBoundProperty(t *testing.T) {
	r := rng.New(7)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		rows, cols := 1+rr.Intn(20), 1+rr.Intn(20)
		m := randMatrix(rr, rows, cols)
		h := NewVector(cols)
		for i := range h {
			h[i] = 2*rr.Float32() - 1 // in [-1, 1]
		}
		out := NewVector(rows)
		Gemv(out, m, h)
		d := AbsRowSums(m)
		for i := range out {
			if math.Abs(float64(out[i])) > float64(d[i])+1e-3 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Values: quickSeed(r)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
