// Package equivtest is the shared bitwise-equivalence harness behind
// the batched-forward contract: RunBatch output for member i must be
// bitwise identical to serial Run(seqs[i]) in every mode, at every
// GOMAXPROCS, cold and warm cache. The lstm, gru and serve tests all
// assert through these helpers so the contract reads the same — and
// fails the same way — everywhere.
//
// "Bitwise" is literal: vectors are compared by math.Float32bits, so a
// mismatch in NaN payload or signed zero fails even where == would
// pass. That is the strength of the contract — the batch path may not
// reassociate, fuse or reorder a single float32 operation.
package equivtest

import (
	"math"
	"testing"

	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// Vectors fails the test unless got and want are bitwise identical.
// label names the batch member (or case) in the failure message.
func Vectors(tb testing.TB, label string, got, want tensor.Vector) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: logits length %d, serial %d", label, len(got), len(want))
	}
	for j := range got {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			tb.Fatalf("%s: logit %d batch %v (0x%08x) != serial %v (0x%08x)",
				label, j, got[j], math.Float32bits(got[j]), want[j], math.Float32bits(want[j]))
		}
	}
}

// Batch fails the test unless every member of got is bitwise identical
// to its serial counterpart in want.
func Batch(tb testing.TB, label string, got, want []tensor.Vector) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d batch outputs for %d members", label, len(got), len(want))
	}
	for i := range got {
		Vectors(tb, labelMember(label, i), got[i], want[i])
	}
}

// Classes fails the test unless the batch class of every member equals
// its serial class.
func Classes(tb testing.TB, label string, got, want []int) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d batch classes for %d members", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			tb.Fatalf("%s member %d: batch class %d, serial class %d", label, i, got[i], want[i])
		}
	}
}

// ULPDistance returns the distance between a and b in float32 ULPs —
// the number of representable values between them (0 when bitwise
// equal, 1 for adjacent floats). Opposite signs measure through zero;
// any NaN or a sign-crossing overflow saturates to MaxUint32. The
// wide-chain drift report uses it to quantify how far the fast mode
// strays from the canonical chain.
func ULPDistance(a, b float32) uint32 {
	//lint:ignore float64leak NaN classification only — float32-to-float64 widening preserves NaN-ness exactly and no magnitude is compared
	if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
		return math.MaxUint32
	}
	ai, bi := ulpIndex(a), ulpIndex(b)
	d := ai - bi
	if d < 0 {
		d = -d
	}
	if d > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(d)
}

// ulpIndex maps a float32 onto the integer line where consecutive
// representable values differ by one: non-negative floats map to their
// bit pattern, negative floats to its negation, so distances across
// zero count both sides' ULPs (+0 and -0 coincide).
func ulpIndex(f float32) int64 {
	b := math.Float32bits(f)
	if b&(1<<31) != 0 {
		return -int64(b &^ (1 << 31))
	}
	return int64(b)
}

// MaxULP returns the largest ULPDistance over the element pairs of a
// and b — the drift between two same-shape results computed under
// different chains.
func MaxULP(tb testing.TB, label string, a, b tensor.Vector) uint32 {
	tb.Helper()
	if len(a) != len(b) {
		tb.Fatalf("%s: MaxULP over lengths %d and %d", label, len(a), len(b))
	}
	var max uint32
	for j := range a {
		if d := ULPDistance(a[j], b[j]); d > max {
			max = d
		}
	}
	return max
}

func labelMember(label string, i int) string {
	return label + " member " + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// RaggedLengths draws b sequence lengths in [1, maxLen], biased so at
// least two members differ whenever b > 1 and maxLen > 1 — a batch of
// equal lengths never exercises the active-set shrink.
func RaggedLengths(r *rng.RNG, b, maxLen int) []int {
	lens := make([]int, b)
	for i := range lens {
		lens[i] = 1 + r.Intn(maxLen)
	}
	if b > 1 && maxLen > 1 {
		allEq := true
		for _, ln := range lens[1:] {
			if ln != lens[0] {
				allEq = false
				break
			}
		}
		if allEq {
			lens[0] = 1 + lens[0]%maxLen // shift one member off the common length
		}
	}
	return lens
}
