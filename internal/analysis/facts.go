package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes the non-shape half of a function summary: a
// flow-insensitive origin analysis over one function body. Every
// reference-typed local is mapped to the set of roots its value may
// derive from — a parameter, the weight fields of an invalidatable
// value, or a scratch arena — by iterating the body's assignments to a
// fixpoint (union semantics, no kills: origins only accumulate, which
// is the conservative direction for obligations). On top of the origin
// map the walker detects:
//
//   - heap sinks: an origin-carrying value assigned into storage
//     reachable from a parameter, receiver or package-level variable,
//     sent on a channel, or passed to a callee whose summary escapes
//     that parameter;
//   - returns: which params (and arenas, and weight fields) each
//     result may alias;
//   - weight mutations: writes through weight-derived storage, matched
//     against Invalidate calls by a small all-paths analysis.
//
// The analyzers stay definite-only: an unknown callee is assumed
// neither to escape nor to mutate, so only facts the code provably
// establishes produce findings.

// originKind classifies one origin root.
type originKind int

const (
	originParam   originKind = iota // derives from a parameter/receiver
	originWeights                   // aliases weight fields of the layer at loc
	originArena                     // aliases the scratch arena at loc
)

// originRoot is one provenance of a tracked value. loc identifies the
// layer/arena/parameter variable (or canonical path) it is rooted at.
type originRoot struct {
	kind originKind
	loc  ref
}

type originSet map[originRoot]bool

func (s originSet) add(r originRoot) bool {
	if s[r] {
		return false
	}
	s[r] = true
	return true
}

// arenaSink is one statement that leaks an arena-derived value.
type arenaSink struct {
	pos  token.Pos
	what string
}

// factsWalker runs the origin analysis for one declaration.
type factsWalker struct {
	pass   *Pass
	decl   *ast.FuncDecl
	params []*types.Var
	// canon resolution reuses the dataflow walker's path renderer.
	dw      *dfWalker
	origins map[types.Object]originSet

	// results of the sink scan
	escapes      []bool
	resAliases   [][]int
	resWeights   [][]int
	resArena     []bool
	mutated      map[ref]token.Pos
	mutatedOrder []ref
	arenaSinks   []arenaSink
	arenaReturns []token.Pos
}

func newFactsWalker(pass *Pass, decl *ast.FuncDecl, params []*types.Var) *factsWalker {
	nres := 0
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			nres += n
		}
	}
	return &factsWalker{
		pass:       pass,
		decl:       decl,
		params:     params,
		dw:         &dfWalker{pass: pass},
		origins:    map[types.Object]originSet{},
		escapes:    make([]bool, len(params)),
		resAliases: make([][]int, nres),
		resWeights: make([][]int, nres),
		resArena:   make([]bool, nres),
		mutated:    map[ref]token.Pos{},
	}
}

func (fw *factsWalker) paramIndex(obj types.Object) int {
	for i, p := range fw.params {
		if obj == p {
			return i
		}
	}
	return -1
}

func (fw *factsWalker) run() {
	if fw.decl.Body == nil {
		return
	}
	// Phase 1: iterate assignment propagation to a fixpoint. Chains are
	// short; the bound is a safety valve, not a precision knob.
	for i := 0; i < 6; i++ {
		if !fw.propagate() {
			break
		}
	}
	// Phase 2: single scan for sinks, returns and mutations.
	fw.scanSinks()
	fw.scanMutations()
}

// fill copies the walker's findings into the summary.
func (fw *factsWalker) fill(s *FuncSummary) {
	copy(s.Escapes, fw.escapes)
	for i := range s.Results {
		if i < len(fw.resAliases) {
			s.ResultAliases[i] = fw.resAliases[i]
			s.ResultWeights[i] = fw.resWeights[i]
			s.ResultArena[i] = fw.resArena[i]
		}
	}
	for i, p := range fw.params {
		if !isInvalidatable(p.Type()) {
			continue
		}
		r := ref{obj: p}
		if _, ok := fw.mutated[r]; ok {
			s.Mutates[i] = true
		}
		if fw.allPathsInvalidated(r) {
			s.Invalidates[i] = true
		}
	}
}

// propagate runs one pass over every assignment-like construct,
// unioning RHS origins into LHS variables. Reports whether anything
// changed.
func (fw *factsWalker) propagate() bool {
	changed := false
	join := func(obj types.Object, src originSet) {
		if obj == nil || len(src) == 0 {
			return
		}
		dst := fw.origins[obj]
		if dst == nil {
			dst = originSet{}
			fw.origins[obj] = dst
		}
		for r := range src {
			if dst.add(r) {
				changed = true
			}
		}
	}
	bindIdent := func(e ast.Expr, src originSet) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			join(fw.dw.objectOf(id), src)
		}
	}
	ast.Inspect(fw.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bindIdent(n.Lhs[i], fw.exprOrigin(n.Rhs[i]))
				}
			} else if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					for i, lh := range n.Lhs {
						bindIdent(lh, fw.callResultOrigin(call, i))
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == len(n.Names) {
				for i := range n.Names {
					bindIdent(n.Names[i], fw.exprOrigin(n.Values[i]))
				}
			}
		case *ast.RangeStmt:
			src := fw.exprOrigin(n.X)
			if n.Value != nil {
				bindIdent(n.Value, src)
			}
		}
		return true
	})
	return changed
}

// exprOrigin computes the origin set of an expression's value.
// Scalar-typed expressions never carry origins — reading a float out of
// an arena slice yields a plain number, not an alias.
func (fw *factsWalker) exprOrigin(e ast.Expr) originSet {
	e = ast.Unparen(e)
	if e == nil || !isRefType(fw.pass.TypeOf(e)) {
		return nil
	}
	out := originSet{}
	fw.addExprOrigin(out, e)
	return out
}

func (fw *factsWalker) addExprOrigin(out originSet, e ast.Expr) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := fw.dw.objectOf(e)
		if obj == nil {
			return
		}
		for r := range fw.origins[obj] {
			out.add(r)
		}
		if i := fw.paramIndex(obj); i >= 0 {
			out.add(originRoot{kind: originParam, loc: ref{obj: obj}})
		}
		if isScratchType(obj.Type()) {
			out.add(originRoot{kind: originArena, loc: ref{obj: obj}})
		}
	case *ast.SelectorExpr:
		if fw.isWeightSelect(e) {
			if r, ok := fw.dw.refFor(e.X); ok {
				out.add(originRoot{kind: originWeights, loc: r})
				return
			}
		}
		fw.addExprOrigin(out, e.X)
		if isScratchType(fw.pass.TypeOf(e)) {
			if r, ok := fw.dw.refFor(e); ok {
				out.add(originRoot{kind: originArena, loc: r})
			}
		}
	case *ast.IndexExpr:
		fw.addExprOrigin(out, e.X)
	case *ast.SliceExpr:
		fw.addExprOrigin(out, e.X)
	case *ast.StarExpr:
		fw.addExprOrigin(out, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			fw.addExprOrigin(out, e.X)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			fw.addExprOrigin(out, el)
		}
	case *ast.CallExpr:
		for r := range fw.callResultOrigin(e, 0) {
			out.add(r)
		}
	}
}

// callResultOrigin derives the origins of result res of a call.
func (fw *factsWalker) callResultOrigin(call *ast.CallExpr, res int) originSet {
	out := originSet{}
	info := fw.pass.Pkg.Info
	fun := ast.Unparen(call.Fun)
	// Conversions (tensor.Vector(sc.buf), qualified or not) alias their
	// operand; append aliases (and may extend) its arguments.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			fw.addExprOrigin(out, call.Args[0])
		}
		return out
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				for _, a := range call.Args {
					fw.addExprOrigin(out, a)
				}
			}
			return out
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		recvT := fw.pass.TypeOf(sel.X)
		// Methods of a scratch type hand out arena-backed views.
		if isScratchType(recvT) {
			fw.addExprOrigin(out, sel.X)
		}
		// Matrix views alias their receiver (Row/RowBlock); Clone and
		// the reductions allocate fresh storage.
		if isTensorMatrix(recvT) && (sel.Sel.Name == "Row" || sel.Sel.Name == "RowBlock") {
			fw.addExprOrigin(out, sel.X)
		}
	}
	obj, args := calleeFunc(info, call)
	if obj == nil {
		return out
	}
	s := fw.summaryOf(obj)
	if s == nil || res >= len(s.ResultAliases) {
		return out
	}
	for _, pi := range s.ResultAliases[res] {
		if pi < len(args) {
			fw.addExprOrigin(out, args[pi])
		}
	}
	for _, pi := range s.ResultWeights[res] {
		if pi < len(args) {
			if r, ok := fw.dw.refFor(args[pi]); ok {
				out.add(originRoot{kind: originWeights, loc: r})
			}
		}
	}
	if s.ResultArena[res] {
		out.add(originRoot{kind: originArena, loc: ref{canon: "(arena)"}})
	}
	return out
}

func (fw *factsWalker) summaryOf(obj *types.Func) *FuncSummary {
	return fw.pass.program().summaryFor(obj)
}

// isWeightSelect reports whether e selects a weight field — a
// *tensor.Matrix field of an invalidatable struct.
func (fw *factsWalker) isWeightSelect(e *ast.SelectorExpr) bool {
	if !isInvalidatable(fw.pass.TypeOf(e.X)) {
		return false
	}
	return isTensorMatrix(fw.pass.TypeOf(e))
}

// --- sink scan -------------------------------------------------------

// scanSinks walks the body once, recording heap stores, sends, escaping
// call arguments and returns. Returns inside function literals are the
// literal's, not the function's, so they are skipped; store sinks inside
// literals still count (the literal shares the enclosing frame).
func (fw *factsWalker) scanSinks() {
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				walk(x.Body, true)
				return false
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						fw.checkStore(x.Lhs[i], fw.exprOrigin(x.Rhs[i]), x.Pos())
					}
				} else if len(x.Rhs) == 1 {
					if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
						for i, lh := range x.Lhs {
							fw.checkStore(lh, fw.callResultOrigin(call, i), x.Pos())
						}
					}
				}
			case *ast.SendStmt:
				fw.sinkOrigins(fw.exprOrigin(x.Value), x.Pos(), "sent on a channel")
			case *ast.CallExpr:
				fw.checkCallArgs(x)
			case *ast.ReturnStmt:
				if !inLit {
					fw.checkReturn(x)
				}
			}
			return true
		})
	}
	walk(fw.decl.Body, false)
}

// checkStore decides whether binding src into lhs leaks it to the heap.
func (fw *factsWalker) checkStore(lhs ast.Expr, src originSet, pos token.Pos) {
	if len(src) == 0 {
		return
	}
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		// Rebinding a local accumulates origins (phase 1); only a
		// package-level variable is a heap sink.
		obj := fw.dw.objectOf(id)
		if obj == nil || obj.Parent() != obj.Pkg().Scope() {
			return
		}
		fw.sinkOrigins(src, pos, "stored in package-level variable "+id.Name)
		return
	}
	// A store through a selector/index/star chain leaks src if the
	// container is heap-reachable (param-, weight- or global-rooted)
	// and not itself arena storage.
	var container ast.Expr
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		container = l.X
	case *ast.IndexExpr:
		container = l.X
	case *ast.StarExpr:
		container = l.X
	default:
		return
	}
	co := fw.exprOrigin(container)
	if co.hasKind(originArena) {
		return // writing into the arena itself is the point of the arena
	}
	if co.hasKind(originParam) || co.hasKind(originWeights) || fw.globalRooted(container) {
		fw.sinkOrigins(src, pos, "stored to a heap-reachable location")
	}
}

func (s originSet) hasKind(k originKind) bool {
	for r := range s {
		if r.kind == k {
			return true
		}
	}
	return false
}

// globalRooted reports whether the access path is rooted at a
// package-level variable.
func (fw *factsWalker) globalRooted(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := fw.dw.objectOf(x)
			return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// sinkOrigins records the consequences of one leaking value: escape
// facts for its param roots, an arena sink for its arena roots.
func (fw *factsWalker) sinkOrigins(src originSet, pos token.Pos, what string) {
	for r := range src {
		switch r.kind {
		case originParam:
			if i := fw.paramIndex(r.loc.obj); i >= 0 {
				fw.escapes[i] = true
			}
		case originArena:
			fw.arenaSinks = append(fw.arenaSinks, arenaSink{pos: pos, what: what})
		}
	}
}

// checkCallArgs flags tainted arguments handed to a callee whose
// summary says that parameter escapes.
func (fw *factsWalker) checkCallArgs(call *ast.CallExpr) {
	obj, args := calleeFunc(fw.pass.Pkg.Info, call)
	if obj == nil {
		return
	}
	s := fw.summaryOf(obj)
	if s == nil {
		return
	}
	for i, a := range args {
		if i >= len(s.Escapes) || !s.Escapes[i] {
			continue
		}
		fw.sinkOrigins(fw.exprOrigin(a), call.Pos(),
			"passed to "+obj.Name()+", which stores it")
	}
}

// checkReturn records what each returned value aliases.
func (fw *factsWalker) checkReturn(ret *ast.ReturnStmt) {
	if len(ret.Results) != len(fw.resAliases) {
		return // bare return of named results, or multi-value pass-through
	}
	for i, e := range ret.Results {
		for r := range fw.exprOrigin(e) {
			switch r.kind {
			case originParam:
				if pi := fw.paramIndex(r.loc.obj); pi >= 0 {
					fw.resAliases[i] = addIndex(fw.resAliases[i], pi)
				}
			case originWeights:
				if pi := fw.paramIndex(r.loc.obj); pi >= 0 && r.loc.canon == "" {
					fw.resWeights[i] = addIndex(fw.resWeights[i], pi)
				}
			case originArena:
				if r.loc.obj != nil && fw.paramIndex(r.loc.obj) >= 0 {
					// arena passed in by the caller: covered by the
					// originParam alias entry for the same variable.
					continue
				}
				fw.resArena[i] = true
				fw.arenaReturns = append(fw.arenaReturns, ret.Pos())
			}
		}
	}
}

func addIndex(s []int, i int) []int {
	for _, v := range s {
		if v == i {
			return s
		}
	}
	s = append(s, i)
	sortInts(s)
	return s
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- weight mutation + Invalidate ------------------------------------

// scanMutations records every statement that writes weight-derived
// storage, keyed by the layer value it belongs to.
func (fw *factsWalker) scanMutations() {
	ast.Inspect(fw.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are not path-analyzable here
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lh := range x.Lhs {
				fw.recordWrite(lh, x.Pos())
			}
		case *ast.IncDecStmt:
			fw.recordWrite(x.X, x.Pos())
		case *ast.CallExpr:
			obj, args := calleeFunc(fw.pass.Pkg.Info, x)
			if obj == nil {
				return true
			}
			s := fw.summaryOf(obj)
			if s == nil {
				return true
			}
			for i, a := range args {
				if i >= len(s.Mutates) || !s.Mutates[i] || s.Invalidates[i] {
					continue
				}
				if r, ok := fw.dw.refFor(a); ok {
					fw.recordMutation(r, x.Pos())
				}
			}
		}
		return true
	})
}

// recordWrite classifies one assignment target: a write through
// weight-derived storage is a mutation of that layer.
func (fw *factsWalker) recordWrite(lhs ast.Expr, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	var target originSet
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		// Covers both rebinding a weight field (l.Wf = m) and writing a
		// field of weight-derived storage.
		target = fw.exprOrigin(l)
		if len(target) == 0 && fw.isWeightSelect(l) {
			if r, ok := fw.dw.refFor(l.X); ok {
				target = originSet{originRoot{kind: originWeights, loc: r}: true}
			}
		}
	case *ast.IndexExpr:
		target = fw.exprOrigin(l.X)
	case *ast.StarExpr:
		target = fw.exprOrigin(l.X)
	default:
		return
	}
	for r := range target {
		if r.kind == originWeights {
			fw.recordMutation(r.loc, pos)
		}
	}
}

func (fw *factsWalker) recordMutation(layer ref, pos token.Pos) {
	if _, ok := fw.mutated[layer]; !ok {
		fw.mutated[layer] = pos
		fw.mutatedOrder = append(fw.mutatedOrder, layer)
	}
}

// invState is the abstract state of the all-paths Invalidate check.
type invState struct {
	pending  bool // a mutation has happened with no Invalidate since
	deferred bool // a defer L.Invalidate() is registered on this path
}

func joinInv(a, b invState) invState {
	return invState{pending: a.pending || b.pending, deferred: a.deferred && b.deferred}
}

// allPathsInvalidated reports whether every path from a mutation of the
// layer at L to a return passes an Invalidate of L (a registered defer
// counts for every later return).
func (fw *factsWalker) allPathsInvalidated(L ref) bool {
	st, bad, terminated := fw.invScan(fw.decl.Body.List, invState{}, L)
	if bad {
		return false
	}
	// Falling off the end of the body is an implicit return.
	return terminated || !st.pending
}

// invScan interprets a statement list, tracking whether a mutation of L
// is pending at each point. It returns the fall-through state, whether
// any return was reached with a pending mutation, and whether the list
// always terminates (returns/panics) before falling through.
func (fw *factsWalker) invScan(stmts []ast.Stmt, st invState, L ref) (invState, bool, bool) {
	bad := false
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.DeferStmt:
			if fw.callInvalidates(s.Call, L) {
				st.deferred = true
				st.pending = false
			}
		case *ast.ReturnStmt:
			if fw.stmtMutates(s, L) && !st.deferred {
				st.pending = true
			}
			if st.pending {
				bad = true
			}
			return st, bad, true
		case *ast.BlockStmt:
			var b, term bool
			st, b, term = fw.invScan(s.List, st, L)
			bad = bad || b
			if term {
				return st, bad, true
			}
		case *ast.IfStmt:
			if fw.stmtInvalidates(s.Init, L) {
				st.pending = false
			} else if fw.stmtMutates(s.Init, L) && !st.deferred {
				st.pending = true
			}
			t, tb, tterm := fw.invScan(s.Body.List, st, L)
			var e invState
			eterm := false
			var eb bool
			switch el := s.Else.(type) {
			case nil:
				e = st
			case *ast.BlockStmt:
				e, eb, eterm = fw.invScan(el.List, st, L)
			case *ast.IfStmt:
				e, eb, eterm = fw.invScan([]ast.Stmt{el}, st, L)
			}
			bad = bad || tb || eb
			switch {
			case tterm && eterm:
				return st, bad, true
			case tterm:
				st = e
			case eterm:
				st = t
			default:
				st = joinInv(t, e)
			}
		case *ast.ForStmt:
			st, bad = fw.invLoop(s.Body.List, st, L, bad)
		case *ast.RangeStmt:
			st, bad = fw.invLoop(s.Body.List, st, L, bad)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var body *ast.BlockStmt
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				body = sw.Body
			case *ast.TypeSwitchStmt:
				body = sw.Body
			case *ast.SelectStmt:
				body = sw.Body
			}
			joined := st // the no-clause-taken path
			for _, cl := range body.List {
				var cstmts []ast.Stmt
				switch cl := cl.(type) {
				case *ast.CaseClause:
					cstmts = cl.Body
				case *ast.CommClause:
					cstmts = cl.Body
				}
				cs, cb, cterm := fw.invScan(cstmts, st, L)
				bad = bad || cb
				if !cterm {
					joined = joinInv(joined, cs)
				}
			}
			st = joined
		case *ast.LabeledStmt:
			var b, term bool
			st, b, term = fw.invScan([]ast.Stmt{s.Stmt}, st, L)
			bad = bad || b
			if term {
				return st, bad, true
			}
		case *ast.BranchStmt:
			// The path leaves this list; anything after is unreachable
			// on it. Conservatively assume the jump target handles it.
			return st, bad, true
		default:
			if fw.stmtTerminates(s) {
				return st, bad, true
			}
			if fw.stmtInvalidates(s, L) {
				st.pending = false
			} else if fw.stmtMutates(s, L) && !st.deferred {
				st.pending = true
			}
		}
	}
	return st, bad, false
}

// invLoop approximates a loop body: the body may run zero or more
// times, so the post-loop state joins the entry state with the body's
// fall-through state, iterated twice for stability.
func (fw *factsWalker) invLoop(body []ast.Stmt, st invState, L ref, bad bool) (invState, bool) {
	cur := st
	for i := 0; i < 2; i++ {
		out, b, _ := fw.invScan(body, cur, L)
		bad = bad || b
		cur = joinInv(cur, out)
	}
	return cur, bad
}

// stmtMutates reports whether the statement writes L's weights (by
// direct store or by calling a mutating, non-invalidating callee).
func (fw *factsWalker) stmtMutates(s ast.Stmt, L ref) bool {
	if s == nil {
		return false
	}
	found := false
	inspectNoFuncLit(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lh := range x.Lhs {
				if fw.writeTargets(lh, L) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if fw.writeTargets(x.X, L) {
				found = true
			}
		case *ast.CallExpr:
			obj, args := calleeFunc(fw.pass.Pkg.Info, x)
			if obj == nil {
				return true
			}
			sum := fw.summaryOf(obj)
			if sum == nil {
				return true
			}
			for i, a := range args {
				if i >= len(sum.Mutates) || !sum.Mutates[i] || sum.Invalidates[i] {
					continue
				}
				if r, ok := fw.dw.refFor(a); ok && r == L {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func (fw *factsWalker) writeTargets(lhs ast.Expr, L ref) bool {
	lhs = ast.Unparen(lhs)
	var target originSet
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		target = fw.exprOrigin(l)
		if fw.isWeightSelect(l) {
			if r, ok := fw.dw.refFor(l.X); ok && r == L {
				return true
			}
		}
	case *ast.IndexExpr:
		target = fw.exprOrigin(l.X)
	case *ast.StarExpr:
		target = fw.exprOrigin(l.X)
	default:
		return false
	}
	return target[originRoot{kind: originWeights, loc: L}]
}

// stmtInvalidates reports whether the statement (outside any function
// literal) certainly calls L.Invalidate, directly or through a wrapper
// whose summary guarantees it.
func (fw *factsWalker) stmtInvalidates(s ast.Stmt, L ref) bool {
	if s == nil {
		return false
	}
	found := false
	inspectNoFuncLit(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && fw.callInvalidates(call, L) {
			found = true
		}
		return true
	})
	return found
}

func (fw *factsWalker) callInvalidates(call *ast.CallExpr, L ref) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Invalidate" {
		if isInvalidatable(fw.pass.TypeOf(sel.X)) {
			if r, ok := fw.dw.refFor(sel.X); ok && r == L {
				return true
			}
		}
	}
	obj, args := calleeFunc(fw.pass.Pkg.Info, call)
	if obj == nil {
		return false
	}
	s := fw.summaryOf(obj)
	if s == nil {
		return false
	}
	for i, a := range args {
		if i >= len(s.Invalidates) || !s.Invalidates[i] {
			continue
		}
		if r, ok := fw.dw.refFor(a); ok && r == L {
			return true
		}
	}
	return false
}

// stmtTerminates recognizes statements that never fall through:
// panics (including tensor.Panicf) and process exits.
func (fw *factsWalker) stmtTerminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, b := fw.pass.Pkg.Info.Uses[fun].(*types.Builtin)
			return b
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return name == "Panicf" || name == "Fatal" || name == "Fatalf" || name == "Exit"
	}
	return false
}

// --- type predicates -------------------------------------------------

// isInvalidatable reports whether t (possibly behind a pointer) is a
// named struct that owns cached packed weights: it has an Invalidate
// method and at least one *tensor.Matrix field.
func isInvalidatable(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	hasInv := false
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == "Invalidate" {
			hasInv = true
			break
		}
	}
	if !hasInv {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isTensorMatrix(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isScratchType reports whether t (possibly behind a pointer) is a
// named scratch-arena struct, identified by the *Scratch naming
// convention the hot paths use (layerScratch).
func isScratchType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return false
	}
	return strings.HasSuffix(n.Obj().Name(), "Scratch")
}

// isRefType reports whether values of t can alias other storage:
// slices, pointers, maps, channels, interfaces, and structs/arrays that
// contain any of those. Scalars never carry origins.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isRefType(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return isRefType(u.Elem())
	}
	return false
}
