package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutinejoin requires every go statement to come with a join path:
// evidence that the spawned goroutine is collected or lifetime-bounded
// rather than leaked. Accepted evidence, transitively through helpers
// via summaries:
//
//   - a paired WaitGroup registration: wg.Add positioned before the go
//     in the same declaration, and the spawned body (or a callee it
//     hands the WaitGroup to — DonesParam) calling wg.Done. This is the
//     serve.Daemons registry pattern: Daemons.Go carries the pair, so
//     registering a daemon needs no annotation.
//   - a lifetime bound: the spawned body blocks on a channel or
//     context (receive, range, select, <-ctx.Done()), directly or
//     through a callee (CtxWaits) — the owner of that channel controls
//     the goroutine's exit.
//   - a channel join: the spawned body sends on (or closes) a channel
//     the spawning declaration receives from — the classic result
//     handoff.
//
// A go statement with none of the above is a finding: either join it,
// register it with a registry like serve.Daemons, or bound its lifetime
// on a context. locklint's orphan rule catches functions with no
// collection point at all; this analyzer checks each spawn, so one
// collected goroutine cannot sanction a leaked sibling in the same
// function.
func init() {
	Register(&Analyzer{
		Name: "goroutinejoin",
		Doc:  "every go statement needs a join path: WaitGroup pair, channel join, or ctx-done bound",
		Run:  runGoroutineJoin,
	})
}

func runGoroutineJoin(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			jc := &joinChecker{pass: pass, w: &dfWalker{pass: pass}, decl: fd}
			findings = append(findings, jc.check()...)
		}
	}
	return findings
}

type joinChecker struct {
	pass *Pass
	w    *dfWalker
	decl *ast.FuncDecl

	// adds are the WaitGroup.Add sites of the declaration (any nesting:
	// an Add inside an outer spawned literal still precedes an inner go
	// in source order, which is what the registration pattern needs).
	adds []refPos
	// recvs are the channels the declaration consumes outside spawned
	// bodies — join points for the channel-handoff rule.
	recvs map[ref]bool
}

type refPos struct {
	r   ref
	pos token.Pos
}

func (jc *joinChecker) check() []Finding {
	jc.recvs = map[ref]bool{}
	var gos []*ast.GoStmt

	// First sweep: Add sites, consumption points, go statements. The
	// consumption sweep skips spawned bodies — a goroutine receiving
	// its own sends joins nothing.
	var spawned []*ast.FuncLit
	ast.Inspect(jc.decl.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				spawned = append(spawned, lit)
			}
		}
		return true
	})
	inSpawned := func(pos token.Pos) bool {
		for _, lit := range spawned {
			if pos >= lit.Pos() && pos < lit.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(jc.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Add" && isWaitGroup(jc.pass.TypeOf(sel.X)) {
				if r, ok := jc.w.refFor(sel.X); ok {
					jc.adds = append(jc.adds, refPos{r: r, pos: n.Pos()})
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inSpawned(n.Pos()) {
				jc.markRecv(n.X)
			}
		case *ast.RangeStmt:
			if !inSpawned(n.Pos()) && isChanType(jc.pass.TypeOf(n.X)) {
				jc.markRecv(n.X)
			}
		}
		return true
	})

	var findings []Finding
	for _, g := range gos {
		if jc.joined(g) {
			continue
		}
		findings = append(findings, Finding{
			Analyzer: "goroutinejoin",
			Pos:      jc.pass.Position(g.Pos()),
			Message: "goroutine has no join path (no WaitGroup Add/Done pair, channel join, " +
				"or ctx-done bound); join it, register it like serve.Daemons, or bound it on a context",
		})
	}
	return findings
}

func (jc *joinChecker) markRecv(e ast.Expr) {
	if r, ok := jc.w.refFor(e); ok {
		jc.recvs[r] = true
	}
}

// addBefore reports whether r was registered with a WaitGroup.Add
// positioned before pos.
func (jc *joinChecker) addBefore(r ref, pos token.Pos) bool {
	for _, a := range jc.adds {
		if a.r == r && a.pos < pos {
			return true
		}
	}
	return false
}

func (jc *joinChecker) joined(g *ast.GoStmt) bool {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return jc.litJoined(lit, g.Pos())
	}
	// go fn(args) / go x.m(args): the callee's summary carries the
	// evidence — it Dones a WaitGroup we registered, or it is bounded
	// by a channel/context we hand it (the receiver counts: go
	// s.workerLoop() ranging over s.dispatch is bounded by s).
	obj, rargs := calleeFunc(jc.pass.Pkg.Info, call)
	if obj == nil {
		return false
	}
	sum := jc.pass.program().summaryFor(obj)
	if sum == nil {
		return false
	}
	for j, arg := range rargs {
		if j < len(sum.DonesParam) && sum.DonesParam[j] {
			if r, ok := jc.w.refFor(ast.Unparen(jc.derefArg(arg))); ok && jc.addBefore(r, g.Pos()) {
				return true
			}
		}
		if j < len(sum.CtxWaits) && sum.CtxWaits[j] {
			return true
		}
	}
	return false
}

// derefArg strips one & so go worker(&wg) matches Add sites spelled
// wg.Add(1).
func (jc *joinChecker) derefArg(arg ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return arg
}

// litJoined checks a spawned literal body for join evidence.
func (jc *joinChecker) litJoined(lit *ast.FuncLit, goPos token.Pos) bool {
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				// wg.Done() on a WaitGroup registered before the spawn.
				if sel.Sel.Name == "Done" && isWaitGroup(jc.pass.TypeOf(sel.X)) {
					if r, ok := jc.w.refFor(sel.X); ok && jc.addBefore(r, goPos) {
						joined = true
						return false
					}
				}
				// <-ctx.Done() receives are handled by the ARROW case;
				// a bare ctx.Done() call is not a wait.
			}
			// helper(&wg) / helper(ctx): join evidence through the
			// callee's summary.
			if obj, rargs := calleeFunc(jc.pass.Pkg.Info, n); obj != nil {
				if sum := jc.pass.program().summaryFor(obj); sum != nil {
					for j, arg := range rargs {
						if j < len(sum.DonesParam) && sum.DonesParam[j] {
							if r, ok := jc.w.refFor(ast.Unparen(jc.derefArg(arg))); ok && jc.addBefore(r, goPos) {
								joined = true
								return false
							}
						}
						if j < len(sum.CtxWaits) && sum.CtxWaits[j] {
							joined = true
							return false
						}
					}
				}
			}
		case *ast.UnaryExpr:
			// A blocking receive bounds the goroutine's lifetime on the
			// channel's owner (<-done, <-ctx.Done()).
			if n.Op == token.ARROW {
				joined = true
				return false
			}
		case *ast.RangeStmt:
			if isChanType(jc.pass.TypeOf(n.X)) {
				joined = true
				return false
			}
		case *ast.SelectStmt:
			joined = true
			return false
		case *ast.SendStmt:
			// Channel handoff: the body sends on a channel the spawning
			// declaration receives from.
			if r, ok := jc.w.refFor(n.Chan); ok && jc.recvs[r] {
				joined = true
				return false
			}
		}
		return true
	})
	if joined {
		return true
	}
	// close(ch) as the completion signal, matched against an outer
	// receive or range.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
			if _, isBuiltin := jc.pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				if r, ok := jc.w.refFor(call.Args[0]); ok && jc.recvs[r] {
					joined = true
					return false
				}
			}
		}
		return true
	})
	return joined
}
