package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// shapecheck verifies tensor dimensions at lint time.
//
// The simulator's correctness hinges on dimensions flowing consistently
// through the paper's pipeline — the united recurrent matrix is 4h×h,
// DRS row masks are sized to its 4h rows, Eq. 6 predicted-context
// vectors are h long — but a mismatched Gemv(dst, m, x) only fails at
// runtime through tensor.Panicf. shapecheck runs a symbolic dimension
// lattice over each function body on the dataflow engine: vector and
// matrix shapes are learned from tensor.NewVector/NewMatrix/Row/
// AbsRowSums/Clone/Pack/RowBlock and make(), integer dimensions fold
// through named constants, coef·base products (4*h keeps the base h)
// and same-base sums (4*h - h keeps 3*h for RowBlock views), and every
// Gemv/GemvRows/Gemm/Add/Mul/Axpy/Dot/SigmoidVec/HardSigmoidVec/TanhVec
// call site is checked for compatible dst/m/x dimensions. The packed
// and parallel kernels carry their own contracts: Pack inputs must
// agree on columns, a PackedGemm destination's column count is the
// united row count, a PackedGemvRows skip mask must tile the united
// matrix, and ParallelGemv/ParallelGemm check exactly like their serial
// twins (they are bitwise identical, so the shapes are too). The
// kernels.Builder cost constructors take the same h/e/t integers, so a
// dimension variable shared between a tensor allocation and a kernel
// spec is tracked as one symbol.
//
// Only definite mismatches are reported: both sides known, same
// symbolic base (or both literal), different magnitude. Incomparable
// bases — e.g. a dst allocated from l.Hidden against a matrix loaded
// from disk — stay silent, so intentionally dynamic shapes (DRS-
// compacted rows, calibration subsets) need no annotations; where a
// shape really is recomputed mid-function a //lint:ignore shapecheck
// with a reason documents it.
func init() {
	Register(&Analyzer{
		Name: "shapecheck",
		Doc:  "verify tensor dimensions symbolically at every Gemv/Gemm/element-wise call site",
		Run:  runShapeCheck,
	})
}

// tensorPkgSuffix identifies the tensor package by import-path suffix,
// so fixtures under any module path participate.
const tensorPkgSuffix = "internal/tensor"

// kernelsPkgSuffix identifies the kernels package the same way.
const kernelsPkgSuffix = "internal/kernels"

// kernelArg is one argument's contract in a kernels.Builder cost
// constructor: a literal below minLit is a definite violation, and so is
// a coefficient more than maxScale times the base argument's (compared
// only when both dimensions share a symbolic base — the same
// definite-only discipline as the tensor checks).
type kernelArg struct {
	index   int
	name    string
	minLit  int64
	bounded bool
	baseArg int
	scale   int64
}

// kernelContracts is the dimension contract table of the Builder cost
// constructors (the serving path's RequestBatch included): the legal
// ranges the kernels package enforces with Panicf at runtime, checked
// symbolically here so a bad call site fails in lint, not mid-serve.
var kernelContracts = map[string][]kernelArg{
	// DRS skip counts: trivial in [0, h].
	"DRS": {{index: 1, name: "trivial", bounded: true, baseArg: 0, scale: 1}},
	// United-matrix row skips: skipRows in [0, 3h] (three skippable
	// gates of the 4h united matrix).
	"SgemvUfic":       {{index: 1, name: "skipRows", bounded: true, baseArg: 0, scale: 3}},
	"SgemmTissueUfic": {{index: 2, name: "skipRows", bounded: true, baseArg: 0, scale: 3}},
	// GRU variants: the per-gate z/r skip and the candidate-gate row
	// skip each cover a single h-row gate (scale 1), unlike the LSTM's
	// three-gate united bound.
	"GRUDRS":     {{index: 1, name: "trivial", bounded: true, baseArg: 0, scale: 1}},
	"GRUSgemvUh": {{index: 1, name: "skipRows", bounded: true, baseArg: 0, scale: 1}},
	"GRUSgemmWx": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "e", minLit: 1},
		{index: 2, name: "n", minLit: 1},
	},
	// Shape arguments that must be at least one.
	"SgemmWx": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "e", minLit: 1},
		{index: 2, name: "n", minLit: 1},
	},
	"RequestBatch": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "length", minLit: 1},
		{index: 2, name: "layers", minLit: 1},
		{index: 3, name: "batch", minLit: 1},
	},
	// The ragged window variant: the length vector is validated at
	// runtime (every length >= 1), so only the scalar shape arguments
	// carry symbolic contracts.
	"RequestBatchRagged": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "layers", minLit: 1},
	},
	// Engine-materialization cost sequences (cold build / warm artifact
	// install): both take the model shape, at least one each.
	"EngineBuild": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "layers", minLit: 1},
	},
	"EngineInstall": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "layers", minLit: 1},
	},
	// Single-dimension recurrent kernels: h must be at least one.
	"SgemvU":     {{index: 0, name: "h", minLit: 1}},
	"SgemvUo":    {{index: 0, name: "h", minLit: 1}},
	"GRUSgemvU":  {{index: 0, name: "h", minLit: 1}},
	"GRUSgemvZR": {{index: 0, name: "h", minLit: 1}},
	// density is a float64 ratio, outside the integer lattice; only h
	// carries a contract.
	"PrunedSgemv": {{index: 0, name: "h", minLit: 1}},
	// Tissue and element-wise kernels take h and the tissue/timestep
	// count, both at least one.
	"SgemmTissue": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "t", minLit: 1},
	},
	"SgemmTissueUo": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "t", minLit: 1},
	},
	"GRUSgemmTissue": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "t", minLit: 1},
	},
	"LstmEW": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "t", minLit: 1},
	},
	"GRUEW": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "t", minLit: 1},
	},
	// The partial element-wise kernel additionally counts live gates.
	"LstmEWPartial": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "t", minLit: 1},
		{index: 2, name: "gates", minLit: 1},
	},
	// Eq. 6 relevance scores n candidates; Predict's break count may be
	// zero (no context breaks in the window) but never negative.
	"Relevance": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "n", minLit: 1},
	},
	"Predict": {
		{index: 0, name: "h", minLit: 1},
		{index: 1, name: "breaks", minLit: 0},
	},
}

func runShapeCheck(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	c := &shapeClient{pass: pass}
	runDataflow(pass, pass.Pkg.Files, c)
	return c.findings
}

// dim is one point of the symbolic dimension lattice: coef·base, with
// base nil for pure integer literals; the zero dim is ⊤ (unknown).
type dim struct {
	known bool
	coef  int64
	base  any // nil (literal), types.Object, canonSym, or paramSym (summaries)
}

// canonSym is a dim base naming a derived property of a canonical
// access path ("rows(l.Wf)", "len(xs)", "l.Hidden"). root is the
// path's base identifier, kept so kills invalidate the symbol and so
// summary extraction can translate parameter-rooted spellings into
// param-relative ones.
type canonSym struct {
	canon string
	root  types.Object
}

func litDim(v int64) dim  { return dim{known: true, coef: v} }
func symDim(base any) dim { return dim{known: true, coef: 1, base: base} }
func (d dim) scaled(v int64) dim {
	if !d.known {
		return dim{}
	}
	return dim{known: true, coef: v * d.coef, base: d.base}
}

func (d dim) String() string {
	if !d.known {
		return "?"
	}
	if d.base == nil {
		return strconv.FormatInt(d.coef, 10)
	}
	name := ""
	switch b := d.base.(type) {
	case types.Object:
		name = b.Name()
	case canonSym:
		name = b.canon
	case paramSym:
		name = fmt.Sprintf("p%d%s", b.index, b.path)
		switch b.prop {
		case propRows:
			name = "rows(" + name + ")"
		case propCols:
			name = "cols(" + name + ")"
		case propLen:
			name = "len(" + name + ")"
		case propCount:
			name = "count(" + name + ")"
		}
	}
	if d.coef == 1 {
		return name
	}
	return fmt.Sprintf("%d*%s", d.coef, name)
}

// conflicts reports a definite mismatch: both dims known, comparable
// bases, different magnitude. Different bases are incomparable — not
// wrong — which is what keeps the clean repo at zero findings.
func (a dim) conflicts(b dim) bool {
	if !a.known || !b.known || a.base != b.base {
		return false
	}
	return a.coef != b.coef
}

func mergeDim(a, b dim) dim {
	if a == b {
		return a
	}
	return dim{}
}

// The shape facts: integer dimension variables, vectors (and other
// length-checked slices such as []bool skip masks), matrices, and
// slices of vectors (the packed kernels' dst/x sets).
type intFact struct{ d dim }
type vecFact struct{ n dim }
type matFact struct{ rows, cols dim }
type vovFact struct{ count, elem dim }

type shapeClient struct {
	pass     *Pass
	findings []Finding
}

func (c *shapeClient) evalExpr(ev *env, e ast.Expr) any {
	e = ast.Unparen(e)
	t := c.pass.TypeOf(e)
	switch {
	case isTensorMatrix(t):
		return c.matrixFact(ev, e)
	case isLengthChecked(t):
		return c.vectorFact(ev, e)
	case isVecSlice(t):
		return c.vovValue(ev, e)
	case isIntegerType(t):
		if d := c.dimOf(ev, e); d.known {
			return intFact{d}
		}
	}
	return nil
}

func (c *shapeClient) merge(a, b any) any {
	if a == nil || b == nil || a == b {
		if a == b {
			return a
		}
		return nil
	}
	switch av := a.(type) {
	case vecFact:
		if bv, ok := b.(vecFact); ok {
			return vecFact{mergeDim(av.n, bv.n)}
		}
	case matFact:
		if bv, ok := b.(matFact); ok {
			return matFact{mergeDim(av.rows, bv.rows), mergeDim(av.cols, bv.cols)}
		}
	case vovFact:
		if bv, ok := b.(vovFact); ok {
			return vovFact{mergeDim(av.count, bv.count), mergeDim(av.elem, bv.elem)}
		}
	case intFact:
		if bv, ok := b.(intFact); ok {
			if av.d == bv.d {
				return av
			}
		}
	}
	return nil
}

func (c *shapeClient) scrub(f any, killed ref) any {
	switch f := f.(type) {
	case intFact:
		d := scrubDim(f.d, killed)
		if !d.known {
			return nil
		}
		return intFact{d}
	case vecFact:
		return vecFact{scrubDim(f.n, killed)}
	case matFact:
		return matFact{scrubDim(f.rows, killed), scrubDim(f.cols, killed)}
	case vovFact:
		return vovFact{scrubDim(f.count, killed), scrubDim(f.elem, killed)}
	}
	return f
}

func scrubDim(d dim, killed ref) dim {
	if !d.known {
		return d
	}
	switch b := d.base.(type) {
	case types.Object:
		if killed.obj == b {
			return dim{}
		}
	case canonSym:
		if killed.obj != nil && (b.root == killed.obj || canonMentions(b.canon, killed.obj.Name())) {
			return dim{}
		}
		if killed.canon != "" && strings.Contains(b.canon, killed.canon) {
			return dim{}
		}
	}
	return d
}

// check verifies every tensor call site in the node against the
// environment in force there.
func (c *shapeClient) check(ev *env, n ast.Node) {
	inspectNoFuncLit(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := c.tensorCallee(call)
		if name == "" {
			c.checkKernelCall(ev, call)
			return true
		}
		arg := func(i int) ast.Expr {
			if i < len(call.Args) {
				return call.Args[i]
			}
			return nil
		}
		switch name {
		case "Gemv", "GemvRows", "ParallelGemv", "WideGemv", "WideGemvRows":
			rows, cols := c.mdims(ev, arg(1))
			c.require(call, name, "dst length", c.vdim(ev, arg(0)), "m rows", rows)
			c.require(call, name, "x length", c.vdim(ev, arg(2)), "m cols", cols)
			if name == "GemvRows" || name == "WideGemvRows" {
				c.require(call, name, "skip length", c.vdim(ev, arg(3)), "m rows", rows)
			}
		case "Gemm", "ParallelGemm":
			dr, dc := c.mdims(ev, arg(0))
			ar, ac := c.mdims(ev, arg(1))
			br, bc := c.mdims(ev, arg(2))
			c.require(call, name, "a cols", ac, "b rows", br)
			c.require(call, name, "dst rows", dr, "a rows", ar)
			c.require(call, name, "dst cols", dc, "b cols", bc)
		case "PackedGemv", "PackedGemvRows", "WidePackedGemv", "WidePackedGemvRows":
			rows, cols := c.mdims(ev, arg(1))
			c.require(call, name, "x length", c.vdim(ev, arg(2)), "m cols", cols)
			// The per-gate destinations tile the united matrix: each dst
			// segment length must divide the united row count.
			c.requireDivides(call, name, "dst segment length", c.vovOf(ev, arg(0)).elem, "united rows", rows)
			if name == "PackedGemvRows" || name == "WidePackedGemvRows" {
				// The skip mask covers one segment of the united matrix:
				// its length must divide the united row count (rows =
				// len(dsts) × segment).
				c.requireDivides(call, name, "skip length", c.vdim(ev, arg(3)), "united rows", rows)
			}
		case "PackedGemmRows", "WidePackedGemmRows":
			// The batch-B recurrent kernel: dst is len(xs) × m.Rows, and
			// each per-input skip mask tiles the united row count the way
			// PackedGemvRows' segment mask does.
			dr, dc := c.mdims(ev, arg(0))
			mr, mc := c.mdims(ev, arg(1))
			c.require(call, name, "dst cols", dc, "united rows", mr)
			xs := c.vovOf(ev, arg(2))
			c.require(call, name, "dst rows", dr, "xs count", xs.count)
			c.require(call, name, "xs element length", xs.elem, "m cols", mc)
			skips := c.vovOf(ev, arg(3))
			c.require(call, name, "skips count", skips.count, "xs count", xs.count)
			c.requireDivides(call, name, "skip mask length", skips.elem, "united rows", mr)
		case "PackedGemm", "WidePackedGemm":
			// dst is len(xs) × m.Rows: its column count is the united row
			// count (4h for the LSTM's W_{f,i,c,o}, 3h for the GRU's).
			dr, dc := c.mdims(ev, arg(0))
			mr, mc := c.mdims(ev, arg(1))
			c.require(call, name, "dst cols", dc, "united rows", mr)
			xs := c.vovOf(ev, arg(2))
			c.require(call, name, "dst rows", dr, "xs count", xs.count)
			c.require(call, name, "xs element length", xs.elem, "m cols", mc)
		case "Pack":
			// All inputs to the row-wise concatenation must agree on the
			// column count.
			first := dim{}
			firstIdx := 0
			for i := range call.Args {
				_, cl := c.mdims(ev, call.Args[i])
				if !cl.known {
					continue
				}
				if !first.known {
					first, firstIdx = cl, i
					continue
				}
				c.require(call, name, fmt.Sprintf("arg %d cols", firstIdx), first,
					fmt.Sprintf("arg %d cols", i), cl)
			}
		case "Add", "Mul":
			dn, an, bn := c.vdim(ev, arg(0)), c.vdim(ev, arg(1)), c.vdim(ev, arg(2))
			c.require(call, name, "dst length", dn, "a length", an)
			c.require(call, name, "a length", an, "b length", bn)
		case "Axpy":
			c.require(call, name, "dst length", c.vdim(ev, arg(0)), "x length", c.vdim(ev, arg(2)))
		case "Dot":
			c.require(call, name, "a length", c.vdim(ev, arg(0)), "b length", c.vdim(ev, arg(1)))
		case "SigmoidVec", "HardSigmoidVec", "TanhVec":
			c.require(call, name, "dst length", c.vdim(ev, arg(0)), "x length", c.vdim(ev, arg(1)))
		}
		return true
	})
}

// packFact derives the united shape of a tensor.Pack call: rows are the
// same-base sum of the inputs' rows (Pack(Wf, Wi, Wc, Wo) of four h×e
// gates is 4h×e), columns the agreed column count. A spread call or an
// input with unknown shape leaves the corresponding dimension unknown.
func (c *shapeClient) packFact(ev *env, call *ast.CallExpr) any {
	if call.Ellipsis.IsValid() || len(call.Args) == 0 {
		return nil
	}
	var rows, cols dim
	for i, a := range call.Args {
		r, cl := c.mdims(ev, a)
		if i == 0 {
			rows, cols = r, cl
			continue
		}
		if rows.known && r.known && rows.base == r.base {
			rows = dim{known: true, coef: rows.coef + r.coef, base: rows.base}
		} else {
			rows = dim{}
		}
		cols = mergeDim(cols, cl)
	}
	return matFact{rows, cols}
}

// requireDivides reports a segment mask whose length cannot tile the
// united matrix: both dims known on the same base, with the united row
// coefficient not a multiple of the mask's.
func (c *shapeClient) requireDivides(call *ast.CallExpr, fname, aWhat string, a dim, bWhat string, b dim) {
	if !a.known || !b.known || a.base != b.base || a.coef <= 0 {
		return
	}
	if b.coef%a.coef == 0 {
		return
	}
	c.findings = append(c.findings, Finding{
		Analyzer: "shapecheck",
		Pos:      c.pass.Position(call.Pos()),
		Message: fmt.Sprintf("tensor.%s shape mismatch: %s %s does not divide %s %s",
			fname, aWhat, a, bWhat, b),
	})
}

func (c *shapeClient) require(call *ast.CallExpr, fname, aWhat string, a dim, bWhat string, b dim) {
	if !a.conflicts(b) {
		return
	}
	c.findings = append(c.findings, Finding{
		Analyzer: "shapecheck",
		Pos:      c.pass.Position(call.Pos()),
		Message: fmt.Sprintf("tensor.%s shape mismatch: %s is %s but %s is %s",
			fname, aWhat, a, bWhat, b),
	})
}

// checkKernelCall verifies a kernels.Builder cost-constructor call
// against the contract table: definite literal violations and same-base
// coefficient overruns only, so dataflow-unknown skip counts (the
// sched call sites, where trivial rows come from measured statistics)
// stay silent.
func (c *shapeClient) checkKernelCall(ev *env, call *ast.CallExpr) {
	name := c.kernelCallee(call)
	contracts, ok := kernelContracts[name]
	if !ok {
		return
	}
	report := func(msg string) {
		c.findings = append(c.findings, Finding{
			Analyzer: "shapecheck",
			Pos:      c.pass.Position(call.Pos()),
			Message:  fmt.Sprintf("kernels.%s: %s", name, msg),
		})
	}
	for _, ct := range contracts {
		if ct.index >= len(call.Args) {
			continue
		}
		d := c.dimOf(ev, call.Args[ct.index])
		if !d.known {
			continue
		}
		if d.base == nil && d.coef < ct.minLit {
			report(fmt.Sprintf("%s = %s is below the legal minimum %d", ct.name, d, ct.minLit))
			continue
		}
		if !ct.bounded || ct.baseArg >= len(call.Args) {
			continue
		}
		base := c.dimOf(ev, call.Args[ct.baseArg])
		if !base.known || base.base != d.base {
			continue
		}
		if d.coef > ct.scale*base.coef {
			report(fmt.Sprintf("%s = %s exceeds the contract bound %d*(%s)",
				ct.name, d, ct.scale, base))
		}
	}
}

// kernelCallee returns the bare method name of a kernels.Builder cost
// constructor call (receiver typed *kernels.Builder, matched by
// package-path suffix so fixtures participate), or "".
func (c *shapeClient) kernelCallee(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := c.pass.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	if n.Obj().Name() != "Builder" || !strings.HasSuffix(n.Obj().Pkg().Path(), kernelsPkgSuffix) {
		return ""
	}
	return sel.Sel.Name
}

// tensorCallee returns the bare name of a function from the tensor
// package (qualified tensor.Gemv or an unqualified call inside the
// package itself), or "".
func (c *shapeClient) tensorCallee(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return ""
		}
		pn, ok := c.pass.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok || !strings.HasSuffix(pn.Imported().Path(), tensorPkgSuffix) {
			return ""
		}
		return fun.Sel.Name
	case *ast.Ident:
		obj := c.pass.Pkg.Info.Uses[fun]
		if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), tensorPkgSuffix) {
			return ""
		}
		if _, ok := obj.(*types.Func); !ok {
			return ""
		}
		return fun.Name
	}
	return ""
}

// vdim returns the symbolic length of a vector-valued argument.
func (c *shapeClient) vdim(ev *env, e ast.Expr) dim {
	if e == nil {
		return dim{}
	}
	if f, ok := ev.eval(e).(vecFact); ok {
		return f.n
	}
	return dim{}
}

// mdims returns the symbolic shape of a matrix-valued argument.
func (c *shapeClient) mdims(ev *env, e ast.Expr) (dim, dim) {
	if e == nil {
		return dim{}, dim{}
	}
	if f, ok := ev.eval(e).(matFact); ok {
		return f.rows, f.cols
	}
	return dim{}, dim{}
}

// vectorFact derives the length fact for a vector-typed expression that
// has no environment binding.
func (c *shapeClient) vectorFact(ev *env, e ast.Expr) any {
	if call, ok := e.(*ast.CallExpr); ok {
		switch {
		case c.tensorCallee(call) == "NewVector" && len(call.Args) == 1:
			return vecFact{c.dimOf(ev, call.Args[0])}
		case c.tensorCallee(call) == "AbsRowSums" && len(call.Args) == 1:
			rows, _ := c.mdims(ev, call.Args[0])
			return vecFact{rows}
		case c.isBuiltin(call, "make") && len(call.Args) >= 2:
			return vecFact{c.dimOf(ev, call.Args[1])}
		case c.isBuiltin(call, "append"):
			return nil // growth: length no longer the allocation's
		}
		// Methods preserving or deriving length: v.Clone(), m.Row(i).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recvT := c.pass.TypeOf(sel.X)
			switch {
			case sel.Sel.Name == "Clone" && isLengthChecked(recvT):
				if f, ok := ev.eval(sel.X).(vecFact); ok {
					return f
				}
			case sel.Sel.Name == "Row" && isTensorMatrix(recvT):
				_, cols := c.mdims(ev, sel.X)
				return vecFact{cols}
			}
		}
		// Helper call: the callee's interprocedural summary, resolved
		// against the actual arguments.
		if f, ok := c.summaryFact(ev, call).(vecFact); ok {
			return f
		}
		return nil
	}
	// A subslice's length is the bound difference when both bounds share
	// a base: row[h:2*h] is h long.
	if se, ok := e.(*ast.SliceExpr); ok {
		return vecFact{c.sliceSpan(ev, se, c.vdim(ev, se.X))}
	}
	// Indexing a slice of vectors yields one element's length.
	if ix, ok := e.(*ast.IndexExpr); ok {
		if f, ok := ev.eval(ix.X).(vovFact); ok && f.elem.known {
			return vecFact{f.elem}
		}
	}
	// A canonical path (parameter, field) names its own length: two
	// uses of the same path agree, different paths stay incomparable.
	if cn, root := ev.canonOf(e); cn != "" {
		return vecFact{symDim(canonSym{"len(" + cn + ")", root})}
	}
	return nil
}

// sliceSpan computes the length of a slice expression from its bounds:
// full length when unbounded, hi-lo when both bounds share a base.
func (c *shapeClient) sliceSpan(ev *env, se *ast.SliceExpr, full dim) dim {
	lo := litDim(0)
	if se.Low != nil {
		lo = c.dimOf(ev, se.Low)
	}
	hi := full
	if se.High != nil {
		hi = c.dimOf(ev, se.High)
	}
	if !lo.known || !hi.known {
		return dim{}
	}
	switch {
	case lo.base == nil && lo.coef == 0:
		return hi
	case lo.base == hi.base:
		d := dim{known: true, coef: hi.coef - lo.coef, base: hi.base}
		if d.coef == 0 {
			d.base = nil
		}
		return d
	}
	return dim{}
}

// vovValue derives the fact for a slice-of-vectors expression (the
// packed kernels' dst/x sets).
func (c *shapeClient) vovValue(ev *env, e ast.Expr) any {
	switch e := e.(type) {
	case *ast.CallExpr:
		switch {
		case c.isBuiltin(e, "make") && len(e.Args) >= 2:
			return vovFact{count: c.dimOf(ev, e.Args[1])}
		case c.isBuiltin(e, "append"):
			return nil
		}
		if f, ok := c.summaryFact(ev, e).(vovFact); ok {
			return f
		}
		return nil
	case *ast.SliceExpr:
		prev := c.vovOf(ev, e.X)
		return vovFact{count: c.sliceSpan(ev, e, prev.count), elem: prev.elem}
	case *ast.CompositeLit:
		// []Vector{a, b, c}: the count is the literal element count; the
		// element length is kept only when every element agrees.
		f := vovFact{count: litDim(int64(len(e.Elts)))}
		for i, el := range e.Elts {
			n := c.vdim(ev, el)
			if i == 0 {
				f.elem = n
			} else {
				f.elem = mergeDim(f.elem, n)
			}
		}
		return f
	}
	if cn, root := ev.canonOf(e); cn != "" {
		return vovFact{count: symDim(canonSym{"count(" + cn + ")", root})}
	}
	return nil
}

// vovOf returns the slice-of-vectors fact of an argument, or the
// unknown fact.
func (c *shapeClient) vovOf(ev *env, e ast.Expr) vovFact {
	if e == nil {
		return vovFact{}
	}
	if f, ok := ev.eval(e).(vovFact); ok {
		return f
	}
	return vovFact{}
}

// matrixFact derives the shape fact for a matrix-typed expression that
// has no environment binding.
func (c *shapeClient) matrixFact(ev *env, e ast.Expr) any {
	if call, ok := e.(*ast.CallExpr); ok {
		switch c.tensorCallee(call) {
		case "NewMatrix":
			if len(call.Args) == 2 {
				return matFact{c.dimOf(ev, call.Args[0]), c.dimOf(ev, call.Args[1])}
			}
		case "Pack":
			return c.packFact(ev, call)
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isTensorMatrix(c.pass.TypeOf(sel.X)) {
			switch sel.Sel.Name {
			case "Clone":
				if f, ok := ev.eval(sel.X).(matFact); ok {
					return f
				}
			case "RowBlock":
				// RowBlock(lo, hi) keeps the column count and has hi-lo
				// rows when both bounds share a symbolic base.
				if len(call.Args) == 2 {
					_, cols := c.mdims(ev, sel.X)
					lo, hi := c.dimOf(ev, call.Args[0]), c.dimOf(ev, call.Args[1])
					rows := dim{}
					if lo.known && hi.known && lo.base == hi.base {
						rows = dim{known: true, coef: hi.coef - lo.coef, base: hi.base}
						if rows.coef == 0 {
							rows.base = nil
						}
					}
					return matFact{rows, cols}
				}
			}
		}
		if f, ok := c.summaryFact(ev, call).(matFact); ok {
			return f
		}
		return nil
	}
	if cn, root := ev.canonOf(e); cn != "" {
		return matFact{symDim(canonSym{"rows(" + cn + ")", root}), symDim(canonSym{"cols(" + cn + ")", root})}
	}
	return nil
}

// dimOf evaluates an integer expression on the dimension lattice.
func (c *shapeClient) dimOf(ev *env, e ast.Expr) dim {
	e = ast.Unparen(e)
	// Constant-folded expressions (literals, named constants, products
	// of constants) come straight from the type checker.
	if tv, ok := c.pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return litDim(v)
		}
	}
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		if f, bound := ev.lookup(e); bound {
			if i, ok := f.(intFact); ok {
				return i.d
			}
			return dim{}
		}
		// m.Rows / m.Cols read the matrix fact, or derive a spelling
		// that matches matrixFact's fallback for the same path.
		if sel, ok := e.(*ast.SelectorExpr); ok && isTensorMatrix(c.pass.TypeOf(sel.X)) {
			if sel.Sel.Name == "Rows" || sel.Sel.Name == "Cols" {
				rows, cols := c.mdims(ev, sel.X)
				if sel.Sel.Name == "Rows" {
					return rows
				}
				return cols
			}
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := ev.w.objectOf(id); obj != nil {
				return symDim(obj)
			}
			return dim{}
		}
		if cn, root := ev.canonOf(e); cn != "" {
			return symDim(canonSym{cn, root})
		}
	case *ast.CallExpr:
		if c.isBuiltin(e, "len") && len(e.Args) == 1 {
			switch f := ev.eval(e.Args[0]).(type) {
			case vecFact:
				return f.n
			case vovFact:
				return f.count
			}
		}
		if f, ok := c.summaryFact(ev, e).(intFact); ok {
			return f.d
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL:
			x, y := c.dimOf(ev, e.X), c.dimOf(ev, e.Y)
			if x.known && x.base == nil {
				return y.scaled(x.coef)
			}
			if y.known && y.base == nil {
				return x.scaled(y.coef)
			}
		case token.ADD, token.SUB:
			// Same-base sums and differences stay on the lattice:
			// 4*h - h = 3*h is how RowBlock views of the united matrix
			// keep their symbolic row count.
			x, y := c.dimOf(ev, e.X), c.dimOf(ev, e.Y)
			if x.known && y.known && x.base == y.base {
				co := x.coef + y.coef
				if e.Op == token.SUB {
					co = x.coef - y.coef
				}
				d := dim{known: true, coef: co, base: x.base}
				if d.coef == 0 {
					d.base = nil
				}
				return d
			}
		}
	}
	return dim{}
}

func (c *shapeClient) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := c.pass.Pkg.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin || obj == nil
}

// summaryFact derives the fact of a single-result helper call from the
// callee's interprocedural summary, or nil when the callee has none.
func (c *shapeClient) summaryFact(ev *env, call *ast.CallExpr) any {
	vals := c.evalCallResults(ev, call, 1)
	if len(vals) == 1 {
		return vals[0]
	}
	return nil
}

// evalCallResults implements callResultClient: the per-result facts of
// a call, produced by substituting the actual arguments into the
// callee's summary shape transfer functions.
func (c *shapeClient) evalCallResults(ev *env, call *ast.CallExpr, n int) []any {
	obj, args := calleeFunc(c.pass.Pkg.Info, call)
	if obj == nil {
		return nil
	}
	s := c.pass.program().summaryFor(obj)
	if s == nil || len(s.Results) != n {
		return nil
	}
	cut := variadicCutoff(s, call)
	out := make([]any, n)
	for i, r := range s.Results {
		out[i] = c.substShape(ev, r, args, cut)
	}
	return out
}

func (c *shapeClient) substShape(ev *env, s ShapeSum, args []ast.Expr, cut int) any {
	switch s.Kind {
	case sumInt:
		if d := c.substDim(ev, s.D0, args, cut); d.known {
			return intFact{d}
		}
	case sumVec:
		return vecFact{c.substDim(ev, s.D0, args, cut)}
	case sumMat:
		return matFact{c.substDim(ev, s.D0, args, cut), c.substDim(ev, s.D1, args, cut)}
	case sumVov:
		return vovFact{c.substDim(ev, s.D0, args, cut), c.substDim(ev, s.D1, args, cut)}
	}
	return nil
}

// substDim resolves a summary dim at a call site: a paramSym base is
// replaced by the named property of the matching actual argument, and
// the caller's coefficient scales through. Param indices in a variadic
// tail (at or past cut when cut >= 0) are not substitutable.
func (c *shapeClient) substDim(ev *env, d dim, args []ast.Expr, cut int) dim {
	if !d.known {
		return d
	}
	p, ok := d.base.(paramSym)
	if !ok {
		if d.base == nil {
			return d
		}
		return dim{} // callee-local base: meaningless at the call site
	}
	if p.index >= len(args) || (cut >= 0 && p.index >= cut) {
		return dim{}
	}
	arg := args[p.index]
	var a dim
	if p.path == "" {
		switch p.prop {
		case propVal:
			a = c.dimOf(ev, arg)
		case propRows:
			a, _ = c.mdims(ev, arg)
		case propCols:
			_, a = c.mdims(ev, arg)
		case propLen:
			a = c.vdim(ev, arg)
		case propCount:
			a = c.vovOf(ev, arg).count
		}
	} else {
		// A field-path symbol re-spells against the argument's canonical
		// path, matching what the caller's own direct use of the same
		// path would produce (rows(n2.Head), l2.Hidden).
		cn, root := ev.canonOf(arg)
		if cn == "" {
			return dim{}
		}
		spelling := cn + p.path
		switch p.prop {
		case propRows:
			spelling = "rows(" + spelling + ")"
		case propCols:
			spelling = "cols(" + spelling + ")"
		case propLen:
			spelling = "len(" + spelling + ")"
		case propCount:
			spelling = "count(" + spelling + ")"
		}
		a = symDim(canonSym{spelling, root})
	}
	if !a.known {
		return dim{}
	}
	return a.scaled(d.coef)
}

// isTensorMatrix reports whether t is (a pointer to) the tensor.Matrix
// struct, matched structurally by package-path suffix and name.
func isTensorMatrix(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Matrix" && strings.HasSuffix(n.Obj().Pkg().Path(), tensorPkgSuffix)
}

// isLengthChecked reports whether t participates in the length lattice:
// tensor.Vector and any slice of basic elements (float32 rows, []bool
// DRS skip masks).
func isLengthChecked(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, basic := s.Elem().Underlying().(*types.Basic)
	return basic
}

// isVecSlice reports whether t is a slice of length-checked slices —
// []tensor.Vector, the packed kernels' dst/x sets.
func isVecSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isLengthChecked(s.Elem())
}

// isIntegerType reports whether t is an integer kind (dimension
// variables: h, e, t, rows).
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
