package analysis

import "testing"

// TestInvalidateCheckSeededViolations runs the analyzer over a layer
// fixture that mirrors lstm.Layer: a named struct with weight fields
// and an Invalidate method. Expected findings, in order:
//
//	line 14 — Scale (exported) mutates without any Invalidate
//	line 36 — Leaky invalidates on only one branch
//	line 50 — WrappedBad calls an unexported mutator and never settles
//	          the inherited obligation
//
// scale (unexported, mutates a parameter) is silent: the obligation
// transfers to its callers via the summary, which is how Wrapped stays
// clean and WrappedBad gets flagged at the call site.
func TestInvalidateCheckSeededViolations(t *testing.T) {
	src := `package fix

import "mobilstm/internal/tensor"

type layer struct {
	Wf     *tensor.Matrix
	packed *tensor.Matrix
}

func (l *layer) Invalidate() { l.packed = nil }

func Scale(l *layer, s float32) {
	for i := range l.Wf.Data {
		l.Wf.Data[i] *= s
	}
}

func ScaleGood(l *layer, s float32) {
	defer l.Invalidate()
	for i := range l.Wf.Data {
		l.Wf.Data[i] *= s
	}
}

func Branchy(l *layer, s float32, big bool) {
	if big {
		l.Wf.Data[0] = s
		l.Invalidate()
		return
	}
	l.Wf.Data[0] = -s
	l.Invalidate()
}

func Leaky(l *layer, s float32, big bool) {
	l.Wf.Data[0] = s
	if big {
		l.Invalidate()
	}
}

func scale(l *layer, s float32) { l.Wf.Data[0] = s }

func Wrapped(l *layer, s float32) {
	scale(l, s)
	l.Invalidate()
}

func WrappedBad(l *layer, s float32) {
	scale(l, s)
}
`
	got := runFixtureWith(t, Lookup("invalidatecheck"), "mobilstm/internal/fix", "internal/fix/fix.go", src)
	wantLines(t, got, "invalidatecheck", 14, 36, 50)
}
