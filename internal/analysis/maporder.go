package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// maporder flags map iteration feeding report/figure output.
//
// Go randomizes map iteration order per range statement, so a loop
// like `for k, v := range scores { table.AddRow(...) }` emits rows in
// a different order every run. The repo's reproducibility contract
// (DESIGN's byte-identical regeneration goal) extends to the rendered
// artifacts themselves: tables and figures must diff clean across runs,
// not just contain the same multiset of rows. The rule: inside any
// function that feeds internal/report — its signature mentions a report
// type, or its body calls into the report package — ranging over a map
// is a finding; iterate over sorted keys instead. Accumulation loops in
// functions that never touch report output (per-key sums, histogram
// fills) are order-insensitive and stay out of scope.
//
// internal/report itself is the rendering home and is exempt: its own
// map ranges are required to sort before emission (enforced by its
// tests), and flagging them here would just force annotations where the
// invariant already lives.
func init() {
	Register(&Analyzer{
		Name: "maporder",
		Doc:  "map iteration feeding report/figure output must go through sorted keys",
		Run:  runMapOrder,
	})
}

// reportPkgSuffix identifies the rendering package by import-path
// suffix, so fixtures under any module path participate.
const reportPkgSuffix = "internal/report"

func runMapOrder(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	if strings.HasSuffix(pass.Pkg.ScopePath(), reportPkgSuffix) {
		return nil
	}
	var out []Finding
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !feedsReport(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				out = append(out, Finding{
					Analyzer: "maporder",
					Pos:      pass.Position(rs.Pos()),
					Message:  "map iteration order is randomized and this function feeds report/figure output; iterate over sorted keys so regenerated artifacts are byte-identical",
				})
				return true
			})
		}
	}
	return out
}

// feedsReport reports whether the function touches internal/report:
// a parameter, result or receiver type mentions one of its types, or
// the body references one of its objects (report.NewTable, methods on
// a report value).
func feedsReport(pass *Pass, fd *ast.FuncDecl) bool {
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params, fd.Type.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			if typeMentionsReport(pass.TypeOf(field.Type), map[types.Type]bool{}) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj != nil && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), reportPkgSuffix) {
			found = true
		}
		return !found
	})
	return found
}

// typeMentionsReport walks a type structurally looking for a named type
// declared in internal/report.
func typeMentionsReport(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if t.Obj().Pkg() != nil && strings.HasSuffix(t.Obj().Pkg().Path(), reportPkgSuffix) {
			return true
		}
		return typeMentionsReport(t.Underlying(), seen)
	case *types.Pointer:
		return typeMentionsReport(t.Elem(), seen)
	case *types.Slice:
		return typeMentionsReport(t.Elem(), seen)
	case *types.Array:
		return typeMentionsReport(t.Elem(), seen)
	case *types.Map:
		return typeMentionsReport(t.Key(), seen) || typeMentionsReport(t.Elem(), seen)
	case *types.Chan:
		return typeMentionsReport(t.Elem(), seen)
	case *types.Signature:
		return typeMentionsReport(t.Params(), seen) || typeMentionsReport(t.Results(), seen)
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if typeMentionsReport(t.At(i).Type(), seen) {
				return true
			}
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if typeMentionsReport(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
