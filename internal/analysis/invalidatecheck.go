package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// invalidatecheck guards the packed-weight cache coherence contract
// behind the united-gate hot path: layer weights (W_f/W_i/W_c/W_o, the
// U matrices, and their GRU counterparts) are packed once into a united
// matrix cached behind an atomic pointer, so any mutation of a weight
// field must be followed by Invalidate() on every path to return —
// otherwise a later Run serves stale packed weights.
//
// The check is interprocedural through the summary engine: a helper
// that mutates a parameter's weights and guarantees Invalidate on every
// path (initLayer's defer l.Invalidate()) discharges the obligation for
// its callers; a helper that mutates without invalidating transfers the
// obligation to each call site, where this analyzer requires a local
// Invalidate on every path after the call. A mutation of a parameter's
// weights left pending at return is reported only for exported
// functions — unexported mutators are wrapper-verified at their
// (analyzable) call sites instead, while an exported one hands the
// obligation to callers outside the analyzed world.
func init() {
	Register(&Analyzer{
		Name: "invalidatecheck",
		Doc:  "weight-field mutations must reach Invalidate() on every path before returning",
		Run:  runInvalidateCheck,
	})
}

func runInvalidateCheck(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			findings = append(findings, checkInvalidate(pass, fd)...)
		}
	}
	return findings
}

func checkInvalidate(pass *Pass, fd *ast.FuncDecl) []Finding {
	// The Invalidate method is the discharge mechanism itself; writes to
	// cache fields inside it (also matrix-typed) are not weight updates.
	if fd.Recv != nil && fd.Name.Name == "Invalidate" {
		return nil
	}
	params := declParams(pass, fd)
	fw := newFactsWalker(pass, fd, params)
	fw.run()
	exported := fd.Name.IsExported()
	var out []Finding
	for _, L := range fw.mutatedOrder {
		if fw.allPathsInvalidated(L) {
			continue
		}
		// A pending mutation of a parameter's weights transfers to
		// callers through the function summary (wrapper discipline),
		// unless the function is exported and unknown callers inherit an
		// uncheckable obligation.
		if L.obj != nil && paramIndexOf(params, L.obj) >= 0 && !exported {
			continue
		}
		out = append(out, Finding{
			Analyzer: "invalidatecheck",
			Pos:      pass.Position(fw.mutated[L]),
			Message: fmt.Sprintf(
				"weight fields of %s are mutated without a guaranteed %s.Invalidate() before return (stale packed cache)",
				refName(L), refName(L)),
		})
	}
	return out
}

// declParams returns the receiver-first parameter variables of a
// function declaration, or nil when type information is missing.
func declParams(pass *Pass, fd *ast.FuncDecl) []*types.Var {
	obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return paramVarsOf(sig)
}

func paramIndexOf(params []*types.Var, obj types.Object) int {
	for i, p := range params {
		if obj == p {
			return i
		}
	}
	return -1
}

// refName renders a storage location for a finding message.
func refName(r ref) string {
	if r.obj != nil {
		return r.obj.Name()
	}
	if r.canon != "" {
		return r.canon
	}
	return "the layer"
}
