package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the concurrency half of the summary engine: per-function
// concurrency facts (does a function spawn goroutines, which parameters
// it retains on a spawned goroutine, which WaitGroup parameters it marks
// Done, which channel/context parameters it blocks on) plus a
// per-package ConcurrencyInfo — goroutine spawn sites, value-publication
// points, and a conservative may-happen-in-parallel approximation
// layered on the package call graph. The contract analyzers
// (racecontract, goroutinejoin) consume both: the facts make them
// wrapper-aware (serve.Daemons.Go joins like a literal go statement; a
// helper that defers wg.Done discharges the join obligation at its
// spawn site), and the MHP layer answers "may these two functions run
// at the same time" without a whole-program thread analysis.

// --- type predicates --------------------------------------------------

// namedFrom reports whether t (possibly behind one pointer) is the
// named type pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return namedFrom(t, "sync", "Mutex") || namedFrom(t, "sync", "RWMutex")
}

// isOnceType reports whether t is sync.Once.
func isOnceType(t types.Type) bool { return namedFrom(t, "sync", "Once") }

// isAtomicGuard reports whether t is any named type from sync/atomic
// (Pointer[T], Int64, Bool, Value, ...): accesses through these are
// synchronization, not racy data accesses.
func isAtomicGuard(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool { return namedFrom(t, "context", "Context") }

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// namedStructOf returns the named struct type behind t (dropping one
// pointer), or nil: the owner type a field access attaches to.
func namedStructOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named.Obj()
}

// --- per-function concurrency facts ----------------------------------

// concWalker derives one declaration's concurrency facts for its
// FuncSummary.
type concWalker struct {
	pass   *Pass
	w      *dfWalker
	decl   *ast.FuncDecl
	params []*types.Var
	index  map[types.Object]int

	spawns      bool
	spawnsParam []bool
	donesParam  []bool
	ctxWaits    []bool
}

func newConcWalker(pass *Pass, decl *ast.FuncDecl, params []*types.Var) *concWalker {
	cw := &concWalker{
		pass:        pass,
		w:           &dfWalker{pass: pass},
		decl:        decl,
		params:      params,
		index:       map[types.Object]int{},
		spawnsParam: make([]bool, len(params)),
		donesParam:  make([]bool, len(params)),
		ctxWaits:    make([]bool, len(params)),
	}
	for i, p := range params {
		cw.index[p] = i
	}
	return cw
}

// paramIndex resolves an expression to a parameter index via its plain
// identifier, or -1.
func (cw *concWalker) paramIndex(e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	if i, ok := cw.index[cw.w.objectOf(id)]; ok {
		return i
	}
	return -1
}

// rootParamIndex resolves an access path ("s.dispatch") to the
// parameter index of its root identifier, or -1.
func (cw *concWalker) rootParamIndex(e ast.Expr) int {
	if i := cw.paramIndex(e); i >= 0 {
		return i
	}
	_, root := cw.w.canon(e)
	if root == nil {
		return -1
	}
	if i, ok := cw.index[root]; ok {
		return i
	}
	return -1
}

func (cw *concWalker) run() {
	if cw.decl.Body == nil || cw.pass.Pkg.Info == nil {
		return
	}
	ast.Inspect(cw.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			cw.spawns = true
			cw.spawnRetains(n.Call)
		case *ast.CallExpr:
			cw.call(n)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				cw.waitOn(n.X)
			}
		case *ast.RangeStmt:
			if isChanType(cw.pass.TypeOf(n.X)) {
				cw.waitOn(n.X)
			}
		}
		return true
	})
}

// spawnRetains marks every parameter that escapes onto the goroutine
// spawned by call: the function value itself, arguments, and free
// identifiers of a spawned literal body.
func (cw *concWalker) spawnRetains(call *ast.CallExpr) {
	if i := cw.paramIndex(call.Fun); i >= 0 {
		cw.spawnsParam[i] = true
	}
	for _, arg := range call.Args {
		if i := cw.rootParamIndex(arg); i >= 0 {
			cw.spawnsParam[i] = true
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if i, ok := cw.index[cw.w.objectOf(id)]; ok {
					cw.spawnsParam[i] = true
				}
			}
			return true
		})
	}
}

// waitOn records a blocking receive (or range) whose channel — or
// context, via ctx.Done() — roots at a parameter.
func (cw *concWalker) waitOn(e ast.Expr) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		// <-ctx.Done() style: attribute the wait to the receiver.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if i := cw.rootParamIndex(sel.X); i >= 0 {
				cw.ctxWaits[i] = true
			}
		}
		return
	}
	if i := cw.rootParamIndex(e); i >= 0 {
		cw.ctxWaits[i] = true
	}
}

// call folds one call expression into the facts: direct Done calls on
// WaitGroup parameters, and the transitive closure through callee
// summaries (a callee that spawns, Dones, or waits on what we pass it
// does so on our behalf).
func (cw *concWalker) call(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
		if i := cw.rootParamIndex(sel.X); i >= 0 && isWaitGroup(cw.params[i].Type()) {
			cw.donesParam[i] = true
		}
	}
	obj, rargs := calleeFunc(cw.pass.Pkg.Info, call)
	if obj == nil || obj == cw.pass.Pkg.Info.Defs[cw.decl.Name] {
		return
	}
	sum := cw.pass.program().summaryFor(obj)
	if sum == nil {
		return
	}
	if sum.Spawns {
		cw.spawns = true
	}
	for j, arg := range rargs {
		if j >= sum.NumParams {
			break
		}
		i := cw.rootParamIndex(arg)
		if i < 0 {
			// A spawned function literal is itself a spawn site of this
			// declaration, already visited by the Inspect walk.
			continue
		}
		if j < len(sum.SpawnsParam) && sum.SpawnsParam[j] {
			cw.spawnsParam[i] = true
		}
		if j < len(sum.DonesParam) && sum.DonesParam[j] && isWaitGroup(cw.params[i].Type()) {
			cw.donesParam[i] = true
		}
		if j < len(sum.CtxWaits) && sum.CtxWaits[j] {
			cw.ctxWaits[i] = true
		}
	}
}

func (cw *concWalker) fill(s *FuncSummary) {
	s.Spawns = cw.spawns
	s.SpawnsParam = cw.spawnsParam
	s.DonesParam = cw.donesParam
	s.CtxWaits = cw.ctxWaits
}

// --- package-level MHP approximation ---------------------------------

// SpawnSite is one goroutine creation point of a package: a literal go
// statement, or a call handing a function value to a spawning callee
// (serve.Daemons.Go style, recognized through summaries).
type SpawnSite struct {
	Pos token.Pos
	// Callee names the spawned function when it is a declared function
	// ("(mobilstm/internal/serve.*Server).batchLoop"); "func literal"
	// otherwise.
	Callee string
}

// Publication is one value-publication point: the position where a
// value becomes reachable from another goroutine — captured by a
// spawned literal, sent on a channel, stored through sync/atomic, or
// passed to a callee that retains it on a goroutine.
type Publication struct {
	Pos  token.Pos
	Kind string // "go-capture", "send", "atomic-store", "spawn-arg"
	Type string // the published value's type
}

// ConcurrencyInfo is the package-level concurrency map: spawn sites,
// publication points, and the set of functions that may execute off the
// main goroutine (the transitive call-graph closure of everything
// reachable from a spawn site).
type ConcurrencyInfo struct {
	Spawns       []SpawnSite
	Publications []Publication

	concurrent map[string]bool // summaryKey → may run on a spawned goroutine
}

// Concurrent reports whether fn may execute on a goroutine other than
// the one that entered the package (conservatively: it is reachable
// through the package call graph from any spawn site).
func (ci *ConcurrencyInfo) Concurrent(fn *types.Func) bool {
	return fn != nil && ci.concurrent[summaryKey(fn)]
}

// MHP is the conservative may-happen-in-parallel approximation: the
// spawning goroutine keeps running, so two functions may overlap
// whenever either of them can run off it. Within one goroutine —
// neither function concurrent — they are ordered by the call stack.
func (ci *ConcurrencyInfo) MHP(f, g *types.Func) bool {
	return ci.Concurrent(f) || ci.Concurrent(g)
}

// concurrencyFor computes (or retrieves) pkg's ConcurrencyInfo.
func (pr *Program) concurrencyFor(pkg *Package) *ConcurrencyInfo {
	if ci := pr.conc[pkg.ImportPath]; ci != nil && pkg.ForTest == "" {
		return ci
	}
	ci := buildConcurrencyInfo(pr, pkg)
	if pkg.ForTest == "" {
		pr.conc[pkg.ImportPath] = ci
	}
	return ci
}

// Concurrency returns the per-package concurrency map for this pass.
func (p *Pass) Concurrency() *ConcurrencyInfo {
	return p.program().concurrencyFor(p.Pkg)
}

func buildConcurrencyInfo(pr *Program, pkg *Package) *ConcurrencyInfo {
	ci := &ConcurrencyInfo{concurrent: map[string]bool{}}
	if pkg.Info == nil {
		return ci
	}
	g := buildCallGraph(pkg)
	pass := &Pass{Pkg: pkg, prog: pr}
	w := &dfWalker{pass: pass}

	// roots are the declared functions that may start executing on a
	// fresh goroutine: named go targets, functions referenced inside
	// spawned literals, and function values handed to spawning callees.
	var roots []*types.Func
	markRoot := func(obj *types.Func) {
		if obj != nil {
			roots = append(roots, obj)
		}
	}
	// spawnedExpr records fn (a go target or spawn-bound argument) as a
	// spawn of the package.
	spawnedExpr := func(pos token.Pos, fn ast.Expr) {
		fn = ast.Unparen(fn)
		callee := "func literal"
		switch fn := fn.(type) {
		case *ast.FuncLit:
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj, ok := pkg.Info.Uses[id].(*types.Func); ok {
						markRoot(obj)
					}
				}
				return true
			})
		case *ast.Ident:
			if obj, ok := pkg.Info.Uses[fn].(*types.Func); ok {
				markRoot(obj)
				callee = summaryKey(obj)
			}
		case *ast.SelectorExpr:
			if obj, ok := pkg.Info.Uses[fn.Sel].(*types.Func); ok {
				markRoot(obj)
				callee = summaryKey(obj)
			}
		}
		ci.Spawns = append(ci.Spawns, SpawnSite{Pos: pos, Callee: callee})
	}
	publish := func(pos token.Pos, kind string, e ast.Expr) {
		t := pass.TypeOf(e)
		if namedStructOf(t) == nil {
			return
		}
		ci.Publications = append(ci.Publications, Publication{
			Pos: pos, Kind: kind, Type: types.TypeString(t, types.RelativeTo(pkg.Types)),
		})
	}

	for _, fi := range g.nodes {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				spawnedExpr(n.Pos(), n.Call.Fun)
				for _, arg := range n.Call.Args {
					publish(n.Pos(), "spawn-arg", arg)
				}
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					for _, obj := range capturedVars(w, lit) {
						if namedStructOf(obj.Type()) != nil {
							ci.Publications = append(ci.Publications, Publication{
								Pos: n.Pos(), Kind: "go-capture",
								Type: types.TypeString(obj.Type(), types.RelativeTo(pkg.Types)),
							})
						}
					}
				}
			case *ast.SendStmt:
				publish(n.Pos(), "send", n.Value)
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Store" || sel.Sel.Name == "Swap" || sel.Sel.Name == "CompareAndSwap") &&
					isAtomicGuard(pass.TypeOf(sel.X)) {
					for _, arg := range n.Args {
						publish(n.Pos(), "atomic-store", arg)
					}
				}
				// A function value handed to a spawning callee runs on a
				// goroutine of the callee's making.
				if obj, rargs := calleeFunc(pkg.Info, n); obj != nil {
					if sum := pr.summaryFor(obj); sum != nil {
						for j, arg := range rargs {
							if j < len(sum.SpawnsParam) && sum.SpawnsParam[j] {
								if _, ok := pass.TypeOf(arg).Underlying().(*types.Signature); ok {
									spawnedExpr(n.Pos(), arg)
								} else {
									publish(n.Pos(), "spawn-arg", arg)
								}
							}
						}
					}
				}
			}
			return true
		})
	}

	// Close the root set over the package call graph: a callee of a
	// concurrent function is concurrent.
	var work []*funcInfo
	for _, obj := range roots {
		if fi := g.byObj[obj]; fi != nil && !ci.concurrent[summaryKey(obj)] {
			ci.concurrent[summaryKey(obj)] = true
			work = append(work, fi)
		}
	}
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range fi.callees {
			key := summaryKey(callee.obj)
			if !ci.concurrent[key] {
				ci.concurrent[key] = true
				work = append(work, callee)
			}
		}
	}
	sort.Slice(ci.Spawns, func(i, j int) bool { return ci.Spawns[i].Pos < ci.Spawns[j].Pos })
	sort.Slice(ci.Publications, func(i, j int) bool { return ci.Publications[i].Pos < ci.Publications[j].Pos })
	return ci
}

// capturedVars lists the variables a function literal references but
// does not declare — its closure captures.
func capturedVars(w *dfWalker, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.objectOf(id).(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params included)
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}
