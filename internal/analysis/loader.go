package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module. With
// Loader.IncludeTests, _test.go files load as separate Package values
// (ForTest non-empty): in-package tests are type-checked together with
// the base sources but carry only the test files in Files, so findings
// never duplicate across the base and test passes; external _test
// packages stand alone.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// ForTest is the import path of the package under test when this
	// Package holds _test.go files, and "" for ordinary packages.
	ForTest string
	// TypeErrors holds any type-checker diagnostics. The module is
	// expected to compile, so these normally stay empty; analyzers
	// that need type information degrade gracefully when they don't.
	TypeErrors []error
}

// ScopePath returns the import path analyzers should use for
// package-scoped policy decisions (exemption homes, internal/ rules):
// for a test package, the path of the package under test.
func (p *Package) ScopePath() string {
	if p.ForTest != "" {
		return p.ForTest
	}
	return p.ImportPath
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	Pkg *Package

	// prog is the interprocedural summary program shared by every pass
	// of one Analyze run. Passes constructed directly (fixture tests)
	// leave it nil and program() lazily builds a single-package world.
	prog *Program
}

// program returns the summary program for this pass, building a
// single-package one on first use when none was attached.
func (p *Pass) program() *Program {
	if p.prog == nil {
		p.prog = newProgram([]*Package{p.Pkg}, nil)
	}
	return p.prog
}

// Fileset returns the position table for the pass.
func (p *Pass) Fileset() *token.FileSet { return p.Pkg.Fset }

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// Position resolves a token.Pos.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Pkg.Fset.Position(pos)
}

// Loader walks a module from its go.mod root, parses every non-test
// package, and type-checks them in dependency order. It is stdlib-only:
// module packages are discovered with a directory walk and parsed with
// go/parser; standard-library dependencies are type-checked from source
// via go/importer.
type Loader struct {
	ModulePath string
	Root       string
	// IncludeTests adds _test.go packages to Load's result. Test
	// packages load in a second pass, after every base package is
	// type-checked and memoized, so a test file importing a sibling
	// that imports the package under test cannot report a false cycle.
	IncludeTests bool

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // by import path
	stk  []string            // import stack for cycle reporting
}

// NewLoader locates the module root at or above dir and reads the
// module path from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		Root:       root,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// Load parses and type-checks every package of the module, returned in
// deterministic (import path) order.
func (l *Loader) Load() ([]*Package, error) {
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	if l.IncludeTests {
		for _, dir := range dirs {
			tps, err := l.loadTestPackages(dir)
			if err != nil {
				return nil, err
			}
			out = append(out, tps...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// packageDirs walks the module tree for directories containing non-test
// Go files.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if goSourceFile(e.Name()) || (l.IncludeTests && strings.HasSuffix(e.Name(), "_test.go")) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func goSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// parseFiles parses the named files of dir in sorted order.
func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var files []*ast.File
	for _, name := range sorted {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loadTestPackages builds the test packages of dir: the in-package
// tests (type-checked against the already-loaded base sources, but
// carrying only the test files) and the external _test package.
func (l *Loader) loadTestPackages(dir string) ([]*Package, error) {
	ip, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, err
	}
	base := l.pkgs[ip]
	var out []*Package
	if len(bp.TestGoFiles) > 0 {
		testFiles, err := l.parseFiles(dir, bp.TestGoFiles)
		if err != nil {
			return nil, err
		}
		pkg := &Package{
			ImportPath: ip + " [tests]",
			Dir:        dir,
			Fset:       l.fset,
			Files:      testFiles,
			Info:       newInfo(),
			ForTest:    ip,
		}
		all := testFiles
		if base != nil {
			all = append(append([]*ast.File(nil), base.Files...), testFiles...)
		}
		cfg := types.Config{
			Importer: l,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		pkg.Types, _ = cfg.Check(ip, l.fset, all, pkg.Info)
		out = append(out, pkg)
	}
	if len(bp.XTestGoFiles) > 0 {
		xFiles, err := l.parseFiles(dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		pkg := &Package{
			ImportPath: ip + "_test",
			Dir:        dir,
			Fset:       l.fset,
			Files:      xFiles,
			Info:       newInfo(),
			ForTest:    ip,
		}
		cfg := types.Config{
			Importer: l,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		pkg.Types, _ = cfg.Check(ip+"_test", l.fset, xFiles, pkg.Info)
		out = append(out, pkg)
	}
	return out, nil
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (memoized).
func (l *Loader) loadDir(dir string) (*Package, error) {
	ip, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[ip]; ok {
		return pkg, nil
	}
	for _, s := range l.stk {
		if s == ip {
			return nil, fmt.Errorf("analysis: import cycle through %s", ip)
		}
	}
	l.stk = append(l.stk, ip)
	defer func() { l.stk = l.stk[:len(l.stk)-1] }()

	// go/build applies the usual file constraints (build tags, GOOS).
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, err
	}
	// A directory holding only _test.go files has no base package;
	// loadTestPackages picks it up when IncludeTests is set.
	if len(bp.GoFiles) == 0 {
		return nil, nil
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		ImportPath: ip,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Info:       newInfo(),
	}
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Type errors are collected, not fatal: the repo is expected to
	// compile, and a partial Info still serves the analyzers.
	pkg.Types, _ = cfg.Check(ip, l.fset, files, pkg.Info)
	l.pkgs[ip] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths resolve
// through the loader, everything else through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("analysis: cannot type-check %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// newInfo allocates the full types.Info record set the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
