package analysis

import (
	"fmt"
	"go/ast"
)

// arenaescape guards the scratch-arena lifetime contract of the lstm
// and gru forward passes: every buffer behind Run — gate activations,
// cell states, the hidden-state ping-pong slab — lives in a growth-only
// *Scratch arena that is reused (and overwritten) on the next call.
// A value derived from the arena is therefore only valid inside the
// call that produced it: storing one to a heap-reachable location
// (a receiver field, a package-level variable, a channel) or returning
// one from an exported function publishes memory the next Run will
// silently clobber.
//
// The check is transitive through the summary engine: an unexported
// helper may hand arena-backed views to its caller (runLayer returning
// the ping-pong slab) — that is recorded in its summary, not reported —
// and the obligation follows the value until it either dies inside the
// call tree or hits a real sink, which is reported at the sink.
func init() {
	Register(&Analyzer{
		Name: "arenaescape",
		Doc:  "scratch-arena values must not be stored to heap-reachable locations or escape exported functions",
		Run:  runArenaEscape,
	})
}

func runArenaEscape(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := declParams(pass, fd)
			fw := newFactsWalker(pass, fd, params)
			fw.run()
			for _, sink := range fw.arenaSinks {
				findings = append(findings, Finding{
					Analyzer: "arenaescape",
					Pos:      pass.Position(sink.pos),
					Message: fmt.Sprintf(
						"scratch-arena value %s: the arena is overwritten by the next forward pass", sink.what),
				})
			}
			if fd.Name.IsExported() {
				for _, pos := range fw.arenaReturns {
					findings = append(findings, Finding{
						Analyzer: "arenaescape",
						Pos:      pass.Position(pos),
						Message: fmt.Sprintf(
							"%s returns a scratch-arena value: callers outside the package would hold memory the next forward pass overwrites", fd.Name.Name),
					})
				}
			}
		}
	}
	return findings
}
