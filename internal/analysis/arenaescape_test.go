package analysis

import "testing"

// TestArenaEscapeSeededViolations runs the analyzer over a scratch
// fixture that mirrors lstm's layerScratch arena. Expected findings,
// in order:
//
//	line 19 — Run stores an arena-backed view into a receiver field
//	line 27 — Leak (exported) returns an arena-backed view directly
//	line 34 — LeakVia returns one obtained through the unexported
//	          view helper (transitive via its summary)
//	line 43 — Stash parks an arena-backed view in a package variable
//
// view itself is silent (unexported helpers may hand arena views to
// in-package callers; the fact rides its summary), and fill is silent
// because storing arena values into the arena itself is the intended
// growth pattern.
func TestArenaEscapeSeededViolations(t *testing.T) {
	src := `package fix

import "mobilstm/internal/tensor"

type layerScratch struct {
	buf []float32
	vs  []tensor.Vector
}

type net struct {
	keep tensor.Vector
}

var global tensor.Vector

func (n *net) Run(h int) tensor.Vector {
	sc := &layerScratch{buf: make([]float32, 4*h)}
	v := tensor.Vector(sc.buf[:h])
	n.keep = v
	out := tensor.NewVector(h)
	copy(out, v)
	return out
}

func Leak(h int) tensor.Vector {
	sc := &layerScratch{buf: make([]float32, h)}
	return tensor.Vector(sc.buf)
}

func view(sc *layerScratch, h int) tensor.Vector { return tensor.Vector(sc.buf[:h]) }

func LeakVia(h int) tensor.Vector {
	sc := &layerScratch{buf: make([]float32, h)}
	return view(sc, h)
}

func fill(sc *layerScratch, h int) {
	sc.vs[0] = tensor.Vector(sc.buf[:h])
}

func Stash(h int) {
	sc := &layerScratch{buf: make([]float32, h)}
	global = tensor.Vector(sc.buf)
}
`
	got := runFixtureWith(t, Lookup("arenaescape"), "mobilstm/internal/fix", "internal/fix/fix.go", src)
	wantLines(t, got, "arenaescape", 19, 27, 34, 43)
}
