package analysis

import (
	"strings"
	"testing"
)

// Each analyzer gets at least one violating fixture (asserting the
// exact finding lines) and one clean fixture (asserting silence),
// plus its exemption path (allowlisted file or package).

func TestGlobalRandFires(t *testing.T) {
	src := `package bad

import "math/rand"

func f() int { return rand.Intn(10) }

func g() float64 { return rand.New(rand.NewSource(1)).Float64() }
`
	got := runFixture(t, Lookup("globalrand"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "globalrand", 3, 5, 7, 7)
	if !strings.Contains(got[0].Message, "math/rand") {
		t.Errorf("import finding should name the package: %s", got[0].Message)
	}
	if !strings.Contains(got[2].Message, "generator constructor") {
		t.Errorf("rand.New should be reported as a constructor: %s", got[2].Message)
	}
}

func TestGlobalRandAliasedV2(t *testing.T) {
	src := `package bad

import mr "math/rand/v2"

func f() int { return mr.IntN(3) }
`
	got := runFixture(t, Lookup("globalrand"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "globalrand", 3, 5)
}

func TestGlobalRandSilentOnClean(t *testing.T) {
	src := `package ok

func f(r interface{ Intn(int) int }) int { return r.Intn(10) }
`
	if got := runFixture(t, Lookup("globalrand"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("clean package flagged: %v", got)
	}
}

func TestGlobalRandExemptsRNGPackage(t *testing.T) {
	src := `package rng

import "math/rand"

func bridge() int { return rand.Int() }
`
	if got := runFixture(t, Lookup("globalrand"), "mobilstm/internal/rng", "internal/rng/rng.go", src); len(got) != 0 {
		t.Fatalf("internal/rng must be exempt: %v", got)
	}
}

func TestFloat64LeakFires(t *testing.T) {
	src := `package bad

import "math"

func f(x float32, alpha float64) bool {
	y := float64(x) * 2
	var acc float64
	acc += float64(x)
	_ = y + acc
	_ = math.Exp(float64(x))
	return float64(x) < alpha
}
`
	got := runFixture(t, Lookup("float64leak"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	// Line 9 (`_ = y + acc`) fires too now that taint flows through the
	// locals y and acc instead of stopping at the conversion sites.
	wantLines(t, got, "float64leak", 6, 8, 9, 10, 11)
	if !strings.Contains(got[4].Message, "comparison") {
		t.Errorf("threshold compare should be reported as a comparison: %s", got[4].Message)
	}
}

func TestFloat64LeakSilentOnClean(t *testing.T) {
	src := `package ok

func consume(v float64) {}

func g(x float32, n int) float64 {
	y := float64(x)
	consume(y)
	z := float64(n) * 2.0
	w := z + 1
	return w
}
`
	if got := runFixture(t, Lookup("float64leak"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("boundary conversions and int origins must pass: %v", got)
	}
}

func TestFloat64LeakAllowsActivationFile(t *testing.T) {
	src := `package tensor

import "math"

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}
`
	got := runFixture(t, Lookup("float64leak"), "mobilstm/internal/tensor",
		"mobilstm/internal/tensor/activation.go", src)
	if len(got) != 0 {
		t.Fatalf("activation.go is the designated float64 home: %v", got)
	}
}

func TestPanicPolicyFires(t *testing.T) {
	src := `package bad

func f(n int) {
	if n < 0 {
		panic("negative")
	}
}
`
	got := runFixture(t, Lookup("panicpolicy"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "panicpolicy", 5)
	if !strings.Contains(got[0].Message, "tensor.Panicf") {
		t.Errorf("finding should point at the helper: %s", got[0].Message)
	}
}

func TestPanicPolicySilentOnHelperUse(t *testing.T) {
	src := `package ok

func Panicf(format string, args ...any) {}

func f(n int) {
	if n < 0 {
		Panicf("negative %d", n)
	}
}
`
	if got := runFixture(t, Lookup("panicpolicy"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("Panicf use flagged: %v", got)
	}
}

func TestPanicPolicyIgnoresCmdPackages(t *testing.T) {
	src := `package main

func main() { panic("cli abort is fine") }
`
	if got := runFixture(t, Lookup("panicpolicy"), "mobilstm/cmd/tool", "cmd/tool/main.go", src); len(got) != 0 {
		t.Fatalf("cmd/* is outside the policy: %v", got)
	}
}

func TestPanicPolicyExemptsHelperFile(t *testing.T) {
	src := `package tensor

import "fmt"

func Panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}
`
	got := runFixture(t, Lookup("panicpolicy"), "mobilstm/internal/tensor",
		"mobilstm/internal/tensor/panic.go", src)
	if len(got) != 0 {
		t.Fatalf("the helper's own panic is the one exemption: %v", got)
	}
}

func TestLockLintFires(t *testing.T) {
	src := `package bad

import "sync"

func take(mu sync.Mutex) {}

func copyOut(mu *sync.Mutex) {
	m := *mu
	take(m)
}

func fire() {
	go func() {}()
}
`
	got := runFixture(t, Lookup("locklint"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "locklint", 5, 8, 9, 13)
	if !strings.Contains(got[0].Message, "parameter or result") {
		t.Errorf("by-value parameter should be reported as such: %s", got[0].Message)
	}
	if !strings.Contains(got[3].Message, "goroutine") {
		t.Errorf("orphan goroutine finding missing: %s", got[3].Message)
	}
}

func TestLockLintSeesEmbeddedWaitGroup(t *testing.T) {
	src := `package bad

import "sync"

type pool struct {
	wg sync.WaitGroup
}

func use(p pool) {}
`
	got := runFixture(t, Lookup("locklint"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "locklint", 9)
}

func TestLockLintSilentOnClean(t *testing.T) {
	src := `package ok

import "sync"

func run(mu *sync.Mutex) int {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()

	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}
`
	if got := runFixture(t, Lookup("locklint"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("pointer sharing and collected goroutines must pass: %v", got)
	}
}

func TestThreshConstFires(t *testing.T) {
	src := `package bad

const alphaIntraMax = 0.45

func apply(alphaInter float64) bool {
	return alphaInter > 0.3
}

func ThresholdFor(set int) float64 {
	return float64(set) * 0.045
}
`
	got := runFixture(t, Lookup("threshconst"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "threshconst", 3, 6, 10)
	if !strings.Contains(got[0].Message, "internal/thresholds") {
		t.Errorf("finding should point at the constants home: %s", got[0].Message)
	}
}

func TestThreshConstMasksInnerStatements(t *testing.T) {
	// The alpha ident in the if condition must not condemn literals in
	// the nested block, and vice versa.
	src := `package ok

func f(alphaInter float64) float64 {
	if alphaInter > 0 {
		return 2.5
	}
	return 0
}
`
	if got := runFixture(t, Lookup("threshconst"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("nested-block literal wrongly condemned: %v", got)
	}
}

func TestThreshConstSilentOnClean(t *testing.T) {
	src := `package ok

const sets = 11

func halve(x float64) float64 {
	return x * 0.5
}
`
	if got := runFixture(t, Lookup("threshconst"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("clean package flagged: %v", got)
	}
}

func TestThreshConstExemptsThresholdsPackage(t *testing.T) {
	src := `package thresholds

const AlphaIntraMax = 0.45
`
	got := runFixture(t, Lookup("threshconst"), "mobilstm/internal/thresholds",
		"internal/thresholds/thresholds.go", src)
	if len(got) != 0 {
		t.Fatalf("internal/thresholds is the designated home: %v", got)
	}
}

func TestLockLintSanctionsDaemonRegistry(t *testing.T) {
	// The serve.Daemons pattern: the launching function registers the
	// goroutine in a WaitGroup at creation time; the Wait lives with the
	// owner in another function. No finding, no lint:ignore needed.
	src := `package ok

import "sync"

type daemons struct {
	wg sync.WaitGroup
}

func (d *daemons) launch(fn func()) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		fn()
	}()
}

func (d *daemons) collect() {
	d.wg.Wait()
}
`
	if got := runFixture(t, Lookup("locklint"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("WaitGroup-registered daemon launch must pass: %v", got)
	}
}

func TestLockLintStillFlagsUnregisteredDaemon(t *testing.T) {
	// Add on something that is not a sync.WaitGroup does not sanction
	// the launch: the orphan rule must still fire.
	src := `package bad

type counter struct{ n int }

func (c *counter) Add(k int) { c.n += k }

func fire(c *counter) {
	c.Add(1)
	go func() {}()
}
`
	got := runFixture(t, Lookup("locklint"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "locklint", 9)
}
