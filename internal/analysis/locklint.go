package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// locklint guards the goroutine fan-out paths (internal/accuracy,
// internal/model, internal/experiments and whatever the serving layer
// adds) against the two concurrency mistakes that survive compilation:
//
//  1. sync.Mutex / sync.RWMutex / sync.WaitGroup / sync.Once / sync.Cond
//     values copied instead of shared — by-value parameters, results,
//     plain-assignment copies, and by-value call arguments. A copied
//     WaitGroup's Wait() returns immediately; a copied Mutex guards
//     nothing. (go vet's copylocks catches a subset; this version also
//     understands the project's embedding patterns and runs in the same
//     gate as the other project analyzers.)
//
//  2. goroutines launched in a function that contains no collection
//     point at all — no .Wait() call, no channel receive, no range over
//     a channel, no select, and no registration in a sync.WaitGroup
//     (an in-function `wg.Add(...)` before the launch — the daemon
//     registry pattern of serve.Daemons.Go, where the launch is
//     accounted at creation time and the owner Waits for the fleet at
//     shutdown). Fire-and-forget goroutines in the simulator are bugs:
//     every run must be a complete, deterministic unit of work.
func init() {
	Register(&Analyzer{
		Name: "locklint",
		Doc:  "detect sync primitives copied by value and goroutines launched without a wait/collect",
		Run:  runLockLint,
	})
}

func runLockLint(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	var out []Finding
	for _, file := range pass.Pkg.Files {
		out = append(out, lockCopies(pass, file)...)
		out = append(out, orphanGoroutines(pass, file)...)
	}
	return out
}

// lockCopies reports by-value movement of lock-bearing types.
func lockCopies(pass *Pass, file *ast.File) []Finding {
	var out []Finding
	report := func(pos token.Pos, what string, t types.Type) {
		out = append(out, Finding{
			Analyzer: "locklint",
			Pos:      pass.Position(pos),
			Message:  fmt.Sprintf("%s copies %s by value; share it with a pointer", what, t),
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncType:
			for _, fl := range []*ast.FieldList{n.Params, n.Results} {
				if fl == nil {
					continue
				}
				for _, f := range fl.List {
					if t := pass.TypeOf(f.Type); lockBearing(t) {
						report(f.Type.Pos(), "parameter or result", t)
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			for _, rhs := range n.Rhs {
				if !readsExistingValue(rhs) {
					continue
				}
				if t := pass.TypeOf(rhs); lockBearing(t) {
					report(rhs.Pos(), "assignment", t)
				}
			}
		case *ast.CallExpr:
			if isConversion(pass, n) {
				return true
			}
			for _, arg := range n.Args {
				if !readsExistingValue(arg) {
					continue
				}
				if t := pass.TypeOf(arg); lockBearing(t) {
					report(arg.Pos(), "call argument", t)
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.TypeOf(n.Value); lockBearing(t) {
					report(n.Value.Pos(), "range value", t)
				}
			}
		}
		return true
	})
	return out
}

// readsExistingValue reports whether e denotes an existing stored value
// (as opposed to a fresh composite literal, call result, or address).
func readsExistingValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.IndexExpr:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.MUL
	}
	return false
}

func isConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly behind a
// pointer) — the receiver type whose Add call registers a goroutine in
// the daemon pattern.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// lockBearing reports whether t is (or transitively contains, by value)
// one of the sync primitives that must not be copied.
func lockBearing(t types.Type) bool {
	return lockBearingSeen(t, map[types.Type]bool{})
}

func lockBearingSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
				return true
			}
		}
		return lockBearingSeen(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if lockBearingSeen(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockBearingSeen(t.Elem(), seen)
	}
	return false
}

// orphanGoroutines reports go statements inside functions that contain
// no collection point whatsoever. A collection point is a Wait call, a
// channel receive, a range over a channel, a select — or a
// sync.WaitGroup registration (`wg.Add(...)`): the sanctioned daemon
// registry pattern, where the launching function accounts the goroutine
// in a WaitGroup at creation time and a separate owner collects the
// whole fleet with Wait at shutdown (serve.Daemons.Go).
func orphanGoroutines(pass *Pass, file *ast.File) []Finding {
	var out []Finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		var goStmts []*ast.GoStmt
		collects := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				goStmts = append(goStmts, n)
			case *ast.SelectStmt:
				collects = true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW { // <-ch receive
					collects = true
				}
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						collects = true
					}
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Wait":
						collects = true
					case "Add":
						if isWaitGroup(pass.TypeOf(sel.X)) {
							collects = true
						}
					}
				}
			}
			return true
		})
		if collects {
			continue
		}
		for _, g := range goStmts {
			out = append(out, Finding{
				Analyzer: "locklint",
				Pos:      pass.Position(g.Pos()),
				Message:  fmt.Sprintf("goroutine launched in %s with no wait or collect in the same function; simulator runs must be complete units of work", fn.Name.Name),
			})
		}
	}
	return out
}
