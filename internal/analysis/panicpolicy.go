package analysis

import (
	"go/ast"
	"strings"
)

// panicpolicy forbids raw panic() in internal/* library packages.
//
// The ROADMAP's serving path (batching, sharding, request fan-out)
// will run library code under goroutines owned by a server loop; a
// panic in a library package is then a process crash for every
// in-flight request. Shape and invariant violations must instead go
// through the designated tensor.Panicf helper — a single greppable
// choke point that can later be converted to error returns or a
// recover boundary without hunting down panic sites. Only the file
// defining the helper (internal/tensor/panic.go) may contain panic
// itself.
//
// cmd/* binaries and the example programs are outside the policy: a
// CLI aborting on bad input is fine.
func init() {
	Register(&Analyzer{
		Name: "panicpolicy",
		Doc:  "forbid raw panic() in internal/* packages; use tensor.Panicf",
		// A panicking helper in a test file still crashes the whole
		// test binary mid-run; t.Fatalf / tensor.Panicf keep the abort
		// paths uniform, so the rule extends to _test.go.
		Tests: true,
		Run:   runPanicPolicy,
	})
}

// panicHelperFile is where the designated helper lives; its own panic
// call is the one exemption.
const panicHelperFile = "internal/tensor/panic.go"

func runPanicPolicy(pass *Pass) []Finding {
	if !strings.Contains(pass.Pkg.ScopePath(), "/internal/") {
		return nil
	}
	var out []Finding
	for _, file := range pass.Pkg.Files {
		name := pass.Position(file.Pos()).Filename
		if strings.HasSuffix(name, panicHelperFile) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// A local function named panic would shadow the builtin;
			// the type info distinguishes them.
			if pass.Pkg.Info != nil {
				if obj := pass.Pkg.Info.Uses[id]; obj != nil && obj.Pkg() != nil {
					return true // shadowed: not the builtin
				}
			}
			out = append(out, Finding{
				Analyzer: "panicpolicy",
				Pos:      pass.Position(call.Pos()),
				Message:  "raw panic in library package; report shape/invariant violations via tensor.Panicf so the serving path keeps one abort choke point",
			})
			return true
		})
	}
	return out
}
