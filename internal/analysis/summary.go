package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"reflect"
	"sort"
	"strings"
)

// This file is the interprocedural summary engine. For every function
// declaration of a loaded package it computes a FuncSummary — a shape
// transfer function (param dims → result dims), alias facts (which
// params a result may alias, whether it aliases a callee-local scratch
// arena or a param's weight fields), escape facts (is a param stored to
// a heap-reachable location) and mutation facts (are an invalidatable
// param's weight fields written, and is Invalidate guaranteed on every
// path). Summaries are param-relative and contain no type-checker
// identities, so they survive across runs: a SummaryCache keyed by the
// package's source fingerprint reuses them until a file changes.
//
// Within a package, summaries are computed over the call graph's
// strongly connected components in callees-first order; a cyclic
// component is iterated to a bounded fixpoint and widened to ⊤ (no
// summary) if it has not stabilized. Across packages no cycles exist —
// Go's import graph is acyclic — so a callee package's summaries are
// simply computed on demand first.

// sccFixpointPasses bounds the iteration inside one recursive SCC
// before its members widen to ⊤.
const sccFixpointPasses = 3

// sumKind classifies one summarized result value.
type sumKind int

const (
	sumNone sumKind = iota // not summarized (⊤)
	sumInt                 // integer dimension: D0
	sumVec                 // vector/slice-of-basic: D0 = length
	sumMat                 // tensor matrix: D0 = rows, D1 = cols
	sumVov                 // slice of vectors: D0 = count, D1 = element length
)

// ShapeSum is the shape transfer function of one result: dims whose
// bases are paramSym values (or literals), resolved against the actual
// arguments at each call site.
type ShapeSum struct {
	Kind   sumKind
	D0, D1 dim
}

// propKind names which property of a parameter a summary dim refers to.
type propKind int

const (
	propVal   propKind = iota // the (integer) value itself
	propRows                  // matrix row count
	propCols                  // matrix column count
	propLen                   // vector length
	propCount                 // vector-of-vectors element count
)

// paramSym is a summary dim base: property prop of the value reached
// from parameter index (receiver-first) through the field path. It is
// pure data — no type-checker identities — so cached summaries remain
// valid across type-check worlds.
type paramSym struct {
	index int
	path  string // "" or ".Head" style selector path
	prop  propKind
}

// FuncSummary is the interprocedural abstract of one function. All
// parameter indices are receiver-first: a method's receiver is index 0
// and its first declared parameter index 1.
type FuncSummary struct {
	NumParams int
	Variadic  bool
	// Results holds one shape transfer function per result value.
	Results []ShapeSum
	// ResultAliases[i] lists params result i may alias (arena slabs and
	// plain slice/pointer pass-through both land here).
	ResultAliases [][]int
	// ResultWeights[i] lists invalidatable params whose weight fields
	// result i may alias (l.UMatrices() → receiver's U matrices).
	ResultWeights [][]int
	// ResultArena[i] marks a result aliasing a scratch arena allocated
	// inside the callee — tainted at every call site.
	ResultArena []bool
	// Escapes[i]: a value derived from param i may be stored to a
	// heap-reachable location, sent on a channel, or passed to a callee
	// that escapes it.
	Escapes []bool
	// Mutates[i]: the weight fields of (invalidatable) param i are
	// written without a guaranteed Invalidate — callers inherit the
	// obligation.
	Mutates []bool
	// Invalidates[i]: param i's Invalidate is called on every path to
	// return, so the function also discharges the caller's obligation
	// (wrapper verification).
	Invalidates []bool

	// Concurrency facts (concurrency.go, racecontract.go):

	// Spawns: the function may start a goroutine, directly or through a
	// callee.
	Spawns bool
	// SpawnsParam[i]: param i is retained or invoked on a spawned
	// goroutine (the function value handed to Daemons.Go, a struct
	// captured by a spawned literal), transitively through callees.
	SpawnsParam []bool
	// DonesParam[i]: param i is a WaitGroup the function calls Done on
	// (directly, deferred, or through a callee) — join evidence for a
	// goroutine running this function.
	DonesParam []bool
	// CtxWaits[i]: the function blocks on a channel or context rooted
	// at param i (receive, range, select, <-ctx.Done()) — its lifetime
	// is bounded by that parameter.
	CtxWaits []bool
	// FieldWrites[i]/FieldReads[i] list the fields of param i the
	// function accesses with no guard of its own: the racecontract
	// check transfers to call sites, which know the guard state
	// (non-nil only when any parameter has unguarded accesses).
	FieldWrites [][]string
	FieldReads  [][]string
	// ResultSettled[i]: result i is a value whose sync.Once completed
	// on every return path (engine() returning a built slot) — callers
	// may access its contracted fields without re-guarding.
	ResultSettled []bool
}

// summaryKey names a function across type-check worlds: go/types
// FullName includes the package path and receiver type, and the string
// form is identical whether the object came from the base package or a
// re-type-checked [tests] sibling.
func summaryKey(obj *types.Func) string { return obj.FullName() }

// pkgSummaries holds one package's computed summaries.
type pkgSummaries struct {
	funcs map[string]*FuncSummary
}

// SummaryCache carries summaries across Analyze runs, keyed by import
// path and invalidated by a content fingerprint of the package's source
// files. The zero cache is not usable; construct with NewSummaryCache.
type SummaryCache struct {
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	fingerprint string
	sums        *pkgSummaries
}

// NewSummaryCache returns an empty summary cache.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{entries: map[string]*cacheEntry{}}
}

// defaultSummaryCache backs passes that were constructed without an
// explicit Program (direct fixture tests, single-shot API calls).
var defaultSummaryCache = NewSummaryCache()

// fingerprintPackage hashes the package's source files (sorted name +
// content). An empty string means "not fingerprintable" — in-memory
// fixtures — and disables cross-run caching for the package.
func fingerprintPackage(pkg *Package) string {
	var names []string
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if name == "" || seen[name] {
			return ""
		}
		seen[name] = true
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return ""
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Program is the world of loaded packages one Analyze run shares:
// summaries computed for any package are visible to every pass.
type Program struct {
	pkgs     map[string]*Package // base packages by import path
	computed map[string]*pkgSummaries
	inflight map[string]*pkgSummaries // partially computed (SCC iteration)
	conc     map[string]*ConcurrencyInfo
	cache    *SummaryCache
}

// newProgram indexes the base (non-test) packages. Test packages
// re-type-check the base sources into a fresh types world, but summary
// keys are strings, so their passes resolve into the base summaries.
func newProgram(pkgs []*Package, cache *SummaryCache) *Program {
	if cache == nil {
		cache = defaultSummaryCache
	}
	pr := &Program{
		pkgs:     map[string]*Package{},
		computed: map[string]*pkgSummaries{},
		inflight: map[string]*pkgSummaries{},
		conc:     map[string]*ConcurrencyInfo{},
		cache:    cache,
	}
	for _, pkg := range pkgs {
		if pkg.ForTest == "" {
			pr.pkgs[pkg.ImportPath] = pkg
		}
	}
	return pr
}

// summaryFor resolves the summary of a called function, computing its
// package's summaries on demand. Returns nil (⊤) for functions outside
// the loaded world, interface methods, and widened recursion.
func (pr *Program) summaryFor(obj *types.Func) *FuncSummary {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	pkg := pr.pkgs[obj.Pkg().Path()]
	if pkg == nil {
		return nil
	}
	return pr.packageSummaries(pkg).funcs[summaryKey(obj)]
}

// packageSummaries computes (or retrieves) every summary of pkg.
func (pr *Program) packageSummaries(pkg *Package) *pkgSummaries {
	path := pkg.ImportPath
	if ps := pr.computed[path]; ps != nil {
		return ps
	}
	if ps := pr.inflight[path]; ps != nil {
		return ps
	}
	fp := fingerprintPackage(pkg)
	if fp != "" {
		if ce := pr.cache.entries[path]; ce != nil && ce.fingerprint == fp {
			pr.computed[path] = ce.sums
			return ce.sums
		}
	}
	ps := &pkgSummaries{funcs: map[string]*FuncSummary{}}
	pr.inflight[path] = ps
	g := buildCallGraph(pkg)
	for _, comp := range g.sccs() {
		if !recursive(comp) {
			fi := comp[0]
			ps.funcs[summaryKey(fi.obj)] = pr.summarize(pkg, fi)
			continue
		}
		// Recursive component: iterate to a bounded fixpoint; widen
		// every member to ⊤ if it has not stabilized.
		stable := false
		for iter := 0; iter < sccFixpointPasses && !stable; iter++ {
			stable = true
			for _, fi := range comp {
				key := summaryKey(fi.obj)
				s := pr.summarize(pkg, fi)
				if !reflect.DeepEqual(s, ps.funcs[key]) {
					stable = false
				}
				ps.funcs[key] = s
			}
		}
		if !stable {
			for _, fi := range comp {
				delete(ps.funcs, summaryKey(fi.obj))
			}
		}
	}
	delete(pr.inflight, path)
	pr.computed[path] = ps
	if fp != "" {
		pr.cache.entries[path] = &cacheEntry{fingerprint: fp, sums: ps}
	}
	return ps
}

// paramVarsOf returns the receiver-first parameter variables of sig.
func paramVarsOf(sig *types.Signature) []*types.Var {
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// summarize computes one function's summary from its body, using the
// current state of the program's summary tables for callees.
func (pr *Program) summarize(pkg *Package, fi *funcInfo) *FuncSummary {
	sig, ok := fi.obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := paramVarsOf(sig)
	s := &FuncSummary{
		NumParams:   len(params),
		Variadic:    sig.Variadic(),
		Escapes:     make([]bool, len(params)),
		Mutates:     make([]bool, len(params)),
		Invalidates: make([]bool, len(params)),
	}
	nres := sig.Results().Len()
	s.Results = make([]ShapeSum, nres)
	s.ResultAliases = make([][]int, nres)
	s.ResultWeights = make([][]int, nres)
	s.ResultArena = make([]bool, nres)

	pass := &Pass{Pkg: pkg, prog: pr}
	if nres > 0 {
		rc := &returnCap{
			shapeClient: &shapeClient{pass: pass},
			params:      params,
			nres:        nres,
			named:       namedResults(sig),
		}
		runDataflowFunc(pass, fi.decl.Body, rc)
		if rc.seen {
			s.Results = rc.results
		}
	}
	fw := newFactsWalker(pass, fi.decl, params)
	fw.run()
	fw.fill(s)
	rs := newRaceScanner(pass, fi.decl, params)
	rs.run()
	rs.fill(s)
	cw := newConcWalker(pass, fi.decl, params)
	cw.run()
	cw.fill(s)
	return s
}

// namedResults returns the named result variables of sig, or nil when
// any result is unnamed (bare returns are then not summarized).
func namedResults(sig *types.Signature) []*types.Var {
	res := sig.Results()
	out := make([]*types.Var, res.Len())
	for i := range out {
		v := res.At(i)
		if v.Name() == "" || v.Name() == "_" {
			return nil
		}
		out[i] = v
	}
	return out
}

// returnCap wraps the shape client to capture the facts of every return
// statement and translate them into param-relative shape summaries.
// Findings the wrapped client produces during this pass are discarded —
// the reporting run of shapecheck happens separately.
type returnCap struct {
	*shapeClient
	params  []*types.Var
	nres    int
	named   []*types.Var
	seen    bool
	results []ShapeSum
}

func (rc *returnCap) check(ev *env, n ast.Node) {
	ret, ok := n.(*ast.ReturnStmt)
	if !ok {
		return
	}
	facts := make([]any, rc.nres)
	switch {
	case len(ret.Results) == rc.nres:
		for i, e := range ret.Results {
			facts[i] = ev.eval(e)
		}
	case len(ret.Results) == 0 && rc.named != nil:
		for i, v := range rc.named {
			facts[i] = ev.facts[ref{obj: v}]
		}
	case len(ret.Results) == 1:
		// return f() pass-through of a multi-result callee.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if vals := rc.shapeClient.evalCallResults(ev, call, rc.nres); len(vals) == rc.nres {
				facts = vals
			}
		}
	}
	shapes := make([]ShapeSum, rc.nres)
	for i, f := range facts {
		shapes[i] = translateShape(f, rc.params)
	}
	if !rc.seen {
		rc.seen = true
		rc.results = shapes
		return
	}
	for i := range rc.results {
		rc.results[i] = mergeShapeSum(rc.results[i], shapes[i])
	}
}

func mergeShapeSum(a, b ShapeSum) ShapeSum {
	if a.Kind != b.Kind {
		return ShapeSum{}
	}
	return ShapeSum{Kind: a.Kind, D0: mergeDim(a.D0, b.D0), D1: mergeDim(a.D1, b.D1)}
}

// translateShape maps a body-space shape fact into param space.
func translateShape(f any, params []*types.Var) ShapeSum {
	switch f := f.(type) {
	case intFact:
		return ShapeSum{Kind: sumInt, D0: translateDim(f.d, params)}
	case vecFact:
		return ShapeSum{Kind: sumVec, D0: translateDim(f.n, params)}
	case matFact:
		return ShapeSum{Kind: sumMat, D0: translateDim(f.rows, params), D1: translateDim(f.cols, params)}
	case vovFact:
		return ShapeSum{Kind: sumVov, D0: translateDim(f.count, params), D1: translateDim(f.elem, params)}
	}
	return ShapeSum{}
}

// translateDim rewrites a body-space dim onto param-relative bases.
// Bases that mention anything a caller cannot name (locals, complex
// paths) translate to ⊤.
func translateDim(d dim, params []*types.Var) dim {
	if !d.known {
		return d
	}
	switch b := d.base.(type) {
	case nil:
		return d
	case types.Object:
		for i, p := range params {
			if b == p {
				return dim{known: true, coef: d.coef, base: paramSym{index: i, prop: propVal}}
			}
		}
	case canonSym:
		prop := propVal
		inner := b.canon
		for _, pf := range [...]struct {
			pre string
			p   propKind
		}{{"rows(", propRows}, {"cols(", propCols}, {"len(", propLen}, {"count(", propCount}} {
			if strings.HasPrefix(inner, pf.pre) && strings.HasSuffix(inner, ")") {
				prop = pf.p
				inner = strings.TrimSuffix(strings.TrimPrefix(inner, pf.pre), ")")
				break
			}
		}
		if strings.ContainsAny(inner, "[]()* ") {
			return dim{}
		}
		root, rest, _ := strings.Cut(inner, ".")
		for i, p := range params {
			if b.root == p && p.Name() == root {
				path := ""
				if rest != "" {
					path = "." + rest
				}
				return dim{known: true, coef: d.coef, base: paramSym{index: i, path: path, prop: prop}}
			}
		}
	}
	return dim{}
}

// --- call-site resolution -------------------------------------------

// calleeFunc resolves a call expression to its concrete *types.Func and
// the receiver-first argument list. Interface dispatch, function-typed
// values and method-value calls resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, []ast.Expr) {
	if info == nil {
		return nil, nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj, call.Args
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, nil
			}
			obj, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, nil
			}
			if _, abstract := sel.Recv().Underlying().(*types.Interface); abstract {
				return nil, nil
			}
			return obj, append([]ast.Expr{fun.X}, call.Args...)
		}
		// Package-qualified call: pkg.Func(...).
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj, call.Args
		}
	}
	return nil, nil
}

// variadicCutoff returns the first receiver-first parameter index whose
// summary dims cannot be substituted at this call site (the variadic
// tail), or -1 when every index is usable.
func variadicCutoff(s *FuncSummary, call *ast.CallExpr) int {
	if s.Variadic || call.Ellipsis.IsValid() {
		return s.NumParams - 1
	}
	return -1
}

// --- JSON artifact ---------------------------------------------------

// summaryJSON is the rendered form of one function's summary, written
// by mobilstm-lint -summaries for CI artifacts.
type summaryJSON struct {
	Func        string   `json:"func"`
	Results     []string `json:"results,omitempty"`
	Aliases     []string `json:"result_aliases,omitempty"`
	ArenaResult []int    `json:"arena_results,omitempty"`
	Escapes     []int    `json:"escapes,omitempty"`
	Mutates     []int    `json:"mutates,omitempty"`
	Invalidates []int    `json:"invalidates,omitempty"`

	Spawns        bool     `json:"spawns,omitempty"`
	SpawnsParam   []int    `json:"spawns_param,omitempty"`
	DonesParam    []int    `json:"dones_param,omitempty"`
	CtxWaits      []int    `json:"ctx_waits,omitempty"`
	FieldWrites   []string `json:"field_writes,omitempty"`
	FieldReads    []string `json:"field_reads,omitempty"`
	ResultSettled []int    `json:"result_settled,omitempty"`
}

// DumpSummaries computes (or retrieves) the summaries of every base
// package and renders them as deterministic JSON.
func DumpSummaries(pkgs []*Package, cache *SummaryCache) ([]byte, error) {
	pr := newProgram(pkgs, cache)
	all := map[string]*FuncSummary{}
	for _, pkg := range pkgs {
		if pkg.ForTest != "" {
			continue
		}
		for key, s := range pr.packageSummaries(pkg).funcs {
			all[key] = s
		}
	}
	keys := make([]string, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]summaryJSON, 0, len(keys))
	for _, k := range keys {
		s := all[k]
		j := summaryJSON{Func: k}
		for i, r := range s.Results {
			j.Results = append(j.Results, renderShape(r))
			var parts []string
			for _, p := range s.ResultAliases[i] {
				parts = append(parts, fmt.Sprintf("p%d", p))
			}
			for _, p := range s.ResultWeights[i] {
				parts = append(parts, fmt.Sprintf("weights(p%d)", p))
			}
			j.Aliases = append(j.Aliases, strings.Join(parts, ","))
			if s.ResultArena[i] {
				j.ArenaResult = append(j.ArenaResult, i)
			}
		}
		for i := range s.Escapes {
			if s.Escapes[i] {
				j.Escapes = append(j.Escapes, i)
			}
		}
		for i := range s.Mutates {
			if s.Mutates[i] {
				j.Mutates = append(j.Mutates, i)
			}
		}
		for i := range s.Invalidates {
			if s.Invalidates[i] {
				j.Invalidates = append(j.Invalidates, i)
			}
		}
		j.Spawns = s.Spawns
		for i := range s.SpawnsParam {
			if s.SpawnsParam[i] {
				j.SpawnsParam = append(j.SpawnsParam, i)
			}
		}
		for i := range s.DonesParam {
			if s.DonesParam[i] {
				j.DonesParam = append(j.DonesParam, i)
			}
		}
		for i := range s.CtxWaits {
			if s.CtxWaits[i] {
				j.CtxWaits = append(j.CtxWaits, i)
			}
		}
		for i, fields := range s.FieldWrites {
			if len(fields) > 0 {
				j.FieldWrites = append(j.FieldWrites,
					fmt.Sprintf("p%d:%s", i, strings.Join(fields, "+")))
			}
		}
		for i, fields := range s.FieldReads {
			if len(fields) > 0 {
				j.FieldReads = append(j.FieldReads,
					fmt.Sprintf("p%d:%s", i, strings.Join(fields, "+")))
			}
		}
		for i := range s.ResultSettled {
			if s.ResultSettled[i] {
				j.ResultSettled = append(j.ResultSettled, i)
			}
		}
		// Trim all-empty alias columns for a compact artifact.
		empty := true
		for _, a := range j.Aliases {
			if a != "" {
				empty = false
				break
			}
		}
		if empty {
			j.Aliases = nil
		}
		out = append(out, j)
	}
	return json.MarshalIndent(out, "", "  ")
}

func renderShape(s ShapeSum) string {
	switch s.Kind {
	case sumInt:
		return "int[" + s.D0.String() + "]"
	case sumVec:
		return "vec[" + s.D0.String() + "]"
	case sumMat:
		return "mat[" + s.D0.String() + " x " + s.D1.String() + "]"
	case sumVov:
		return "vecs[" + s.D0.String() + " x " + s.D1.String() + "]"
	}
	return "?"
}
