package analysis

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// globalrand forbids math/rand (and math/rand/v2) outside internal/rng.
//
// Every stochastic component of the simulator — weight synthesis,
// dataset generation, tissue-layout draws, the simulated user panel —
// must flow through the seeded xoshiro256** streams of internal/rng so
// that tables and figures regenerate bit-identically. A single call to
// a math/rand top-level function (process-global, differently seeded
// per run since Go 1.20) or a stray rand.New silently changes every
// downstream number.
func init() {
	Register(&Analyzer{
		Name: "globalrand",
		Doc:  "forbid math/rand use outside internal/rng (simulator determinism)",
		// Tests draw randomness too — an unseeded rand in a property
		// test makes failures unreproducible, so the rule stays on.
		Tests: true,
		Run:   runGlobalRand,
	})
}

// randExemptSuffix is the one package allowed to touch math/rand: the
// deterministic generator facade itself (it currently doesn't, but it
// is the only place a bridge could legitimately live).
const randExemptSuffix = "internal/rng"

func runGlobalRand(pass *Pass) []Finding {
	if strings.HasSuffix(pass.Pkg.ScopePath(), randExemptSuffix) {
		return nil
	}
	var out []Finding
	for _, file := range pass.Pkg.Files {
		names := map[string]string{} // local name -> import path
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || (path != "math/rand" && path != "math/rand/v2") {
				continue
			}
			name := "rand"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name == "_" {
				continue
			}
			names[name] = path
			out = append(out, Finding{
				Analyzer: "globalrand",
				Pos:      pass.Position(imp.Pos()),
				Message:  fmt.Sprintf("import of %s outside internal/rng: simulator randomness must flow through the seeded internal/rng streams", path),
			})
		}
		if len(names) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := names[id.Name]
			if !ok {
				return true
			}
			what := "top-level function"
			if strings.HasPrefix(sel.Sel.Name, "New") {
				what = "generator constructor"
			}
			out = append(out, Finding{
				Analyzer: "globalrand",
				Pos:      pass.Position(call.Pos()),
				Message:  fmt.Sprintf("call to %s.%s (%s) outside internal/rng breaks trace determinism; use rng.New(seed)", path, sel.Sel.Name, what),
			})
			return true
		})
	}
	return out
}
