package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// threshconst requires alpha_inter / alpha_intra threshold literals to
// come from the named constants in internal/thresholds.
//
// The paper's sensitivity sweep (§VI-C) is defined by a handful of
// numbers — AlphaIntraMax = 0.45, the 11-set geometry, the quantile
// tie-break factors. Before this analyzer existed they were scattered
// as magic floats across internal/core, internal/gru, internal/
// intercell, internal/intracell and cmd/*; two copies drifting apart
// would make "threshold set 7" mean different operating points in
// different figures. The rule: any floating-point literal appearing in
// a statement (or constant declaration) that also mentions an
// alpha/threshold-ish identifier — or inside a function whose name
// mentions one — must instead reference internal/thresholds.
func init() {
	Register(&Analyzer{
		Name: "threshconst",
		Doc:  "threshold literals must be named constants in internal/thresholds",
		Run:  runThreshConst,
	})
}

// threshConstHome is the one package allowed to define threshold
// literals.
const threshConstHome = "internal/thresholds"

// threshIdent matches identifiers that talk about thresholds.
var threshIdent = regexp.MustCompile(`(?i)alpha|thresh`)

func runThreshConst(pass *Pass) []Finding {
	if strings.HasSuffix(pass.Pkg.ScopePath(), threshConstHome) {
		return nil
	}
	var out []Finding
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if ok {
						out = append(out, threshLitsIn(pass, vs, "")...)
					}
				}
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				funcName := ""
				if threshIdent.MatchString(d.Name.Name) {
					funcName = d.Name.Name
				}
				for _, stmt := range d.Body.List {
					out = append(out, threshStmts(pass, stmt, funcName)...)
				}
			}
		}
	}
	return out
}

// threshStmts walks a statement tree, re-rooting the ident scan at each
// innermost statement so one matching line doesn't condemn a whole
// block.
func threshStmts(pass *Pass, stmt ast.Stmt, funcName string) []Finding {
	var out []Finding
	var walk func(ast.Stmt)
	walk = func(s ast.Stmt) {
		children := childStmts(s)
		if len(children) == 0 {
			out = append(out, threshLitsIn(pass, s, funcName)...)
			return
		}
		// Scan this statement's non-block parts (e.g. an if condition
		// or for clause) by masking the child blocks out afterwards.
		own := threshLitsIn(pass, s, funcName)
		for _, f := range own {
			inChild := false
			for _, c := range children {
				if posWithin(pass, f, c) {
					inChild = true
					break
				}
			}
			if !inChild {
				out = append(out, f)
			}
		}
		for _, c := range children {
			walk(c)
		}
	}
	walk(stmt)
	return out
}

// childStmts returns the nested statement bodies of s.
func childStmts(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return s.List
	case *ast.IfStmt:
		out := []ast.Stmt{s.Body}
		if s.Else != nil {
			out = append(out, s.Else)
		}
		return out
	case *ast.ForStmt:
		return []ast.Stmt{s.Body}
	case *ast.RangeStmt:
		return []ast.Stmt{s.Body}
	case *ast.SwitchStmt:
		return []ast.Stmt{s.Body}
	case *ast.TypeSwitchStmt:
		return []ast.Stmt{s.Body}
	case *ast.SelectStmt:
		return []ast.Stmt{s.Body}
	case *ast.CaseClause:
		return s.Body
	case *ast.CommClause:
		return s.Body
	case *ast.LabeledStmt:
		return []ast.Stmt{s.Stmt}
	}
	return nil
}

func posWithin(pass *Pass, f Finding, s ast.Stmt) bool {
	start := pass.Position(s.Pos())
	end := pass.Position(s.End())
	if f.Pos.Filename != start.Filename {
		return false
	}
	after := f.Pos.Line > start.Line || (f.Pos.Line == start.Line && f.Pos.Column >= start.Column)
	before := f.Pos.Line < end.Line || (f.Pos.Line == end.Line && f.Pos.Column <= end.Column)
	return after && before
}

// threshLitsIn reports float literals in node when the node (or the
// enclosing function name) mentions a threshold identifier.
func threshLitsIn(pass *Pass, node ast.Node, funcName string) []Finding {
	var lits []*ast.BasicLit
	near := funcName
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.FLOAT {
				lits = append(lits, n)
			}
		case *ast.Ident:
			if near == "" && threshIdent.MatchString(n.Name) {
				near = n.Name
			}
		case *ast.SelectorExpr:
			// thresholds.X references are the fix, not a finding;
			// still scan the receiver side for idents.
		}
		return true
	})
	if near == "" || len(lits) == 0 {
		return nil
	}
	var out []Finding
	for _, lit := range lits {
		out = append(out, Finding{
			Analyzer: "threshconst",
			Pos:      pass.Position(lit.Pos()),
			Message:  fmt.Sprintf("threshold literal %s near %q; use a named constant from internal/thresholds so every consumer compares against the same value", lit.Value, near),
		})
	}
	return out
}
