package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFixture type-checks one in-memory source file as a package with
// the given import path and file name (both matter: analyzers scope by
// package path and allowlist by file suffix).
func parseFixture(t *testing.T, importPath, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := newInfo()
	cfg := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // soft errors (unused vars) are fine in fixtures
	}
	pkgT, _ := cfg.Check(importPath, fset, []*ast.File{f}, info)
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      pkgT,
		Info:       info,
	}
}

// runFixture runs one analyzer over a fixture without suppression
// filtering.
func runFixture(t *testing.T, a *Analyzer, importPath, filename, src string) []Finding {
	t.Helper()
	return a.Run(&Pass{Pkg: parseFixture(t, importPath, filename, src)})
}

// wantLines asserts the findings land exactly on the given lines (in
// order of position).
func wantLines(t *testing.T, findings []Finding, analyzer string, lines ...int) {
	t.Helper()
	if len(findings) != len(lines) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(lines), findings)
	}
	for i, f := range findings {
		if f.Analyzer != analyzer {
			t.Errorf("finding %d analyzer = %q, want %q", i, f.Analyzer, analyzer)
		}
		if f.Pos.Line != lines[i] {
			t.Errorf("finding %d at line %d, want %d (%s)", i, f.Pos.Line, lines[i], f.Message)
		}
	}
}

func TestRegistryHasAllAnalyzers(t *testing.T) {
	want := []string{"arenaescape", "detfloat", "float64leak", "globalrand", "goroutinejoin", "invalidatecheck", "kernelcontracts", "locklint", "maporder", "panicpolicy", "racecontract", "shapecheck", "threshconst"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("%s has no doc", a.Name)
		}
		if Lookup(a.Name) != a {
			t.Errorf("Lookup(%q) did not round-trip", a.Name)
		}
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown analyzer should be nil")
	}
}

func TestSuppressionLineDirectives(t *testing.T) {
	src := `package foo

func a(n int) {
	//lint:ignore panicpolicy fixture: deliberate own-line suppression
	panic("a")
}

func b(n int) {
	panic("b") //lint:ignore panicpolicy fixture: same-line suppression
}

func c(n int) {
	panic("c")
}

func d(n int) {
	//lint:ignore globalrand reason names the wrong analyzer
	panic("d")
}
`
	pkg := parseFixture(t, "mobilstm/internal/foo", "internal/foo/foo.go", src)
	got := Analyze([]*Package{pkg}, []*Analyzer{Lookup("panicpolicy")})
	wantLines(t, got, "panicpolicy", 13, 18)
}

func TestSuppressionFileDirective(t *testing.T) {
	src := `package foo

//lint:file-ignore panicpolicy fixture: whole file is exempt

func a() { panic("a") }

func b() { panic("b") }
`
	pkg := parseFixture(t, "mobilstm/internal/foo", "internal/foo/foo.go", src)
	if got := Analyze([]*Package{pkg}, []*Analyzer{Lookup("panicpolicy")}); len(got) != 0 {
		t.Fatalf("file-ignore should suppress everything, got %v", got)
	}
}

func TestSuppressionAnalyzerList(t *testing.T) {
	src := `package foo

func a() {
	//lint:ignore panicpolicy,globalrand fixture: list form covers both
	panic("a")
}
`
	pkg := parseFixture(t, "mobilstm/internal/foo", "internal/foo/foo.go", src)
	if got := Analyze([]*Package{pkg}, []*Analyzer{Lookup("panicpolicy")}); len(got) != 0 {
		t.Fatalf("comma list should suppress, got %v", got)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	src := `package foo

func a() {
	//lint:ignore panicpolicy
	panic("a")
}
`
	pkg := parseFixture(t, "mobilstm/internal/foo", "internal/foo/foo.go", src)
	got := Analyze([]*Package{pkg}, []*Analyzer{Lookup("panicpolicy")})
	if len(got) != 2 {
		t.Fatalf("want malformed-directive finding plus unsuppressed panic, got %v", got)
	}
	if got[0].Analyzer != "ignore" {
		t.Errorf("first finding analyzer = %q, want \"ignore\"", got[0].Analyzer)
	}
	if got[1].Analyzer != "panicpolicy" {
		t.Errorf("second finding analyzer = %q, want \"panicpolicy\" (reasonless directive must not suppress)", got[1].Analyzer)
	}
}

func TestAnalyzeSortsAcrossAnalyzers(t *testing.T) {
	src := `package foo

const alphaMax = 0.5

func a() { panic("a") }
`
	pkg := parseFixture(t, "mobilstm/internal/foo", "internal/foo/foo.go", src)
	got := Analyze([]*Package{pkg}, []*Analyzer{Lookup("panicpolicy"), Lookup("threshconst")})
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %v", got)
	}
	if got[0].Pos.Line != 3 || got[1].Pos.Line != 5 {
		t.Errorf("findings not position-sorted: %v", got)
	}
}

func TestStaleSuppressionReported(t *testing.T) {
	src := `package foo

func a() {
	//lint:ignore panicpolicy fixture: matches a finding
	panic("a")
}

func b(n int) int {
	//lint:ignore panicpolicy fixture: nothing here fires
	return n + 1
}

func c(n int) int {
	//lint:ignore globalrand fixture: analyzer absent from this run
	return n + 1
}
`
	pkg := parseFixture(t, "mobilstm/internal/foo", "internal/foo/foo.go", src)
	// b's directive suppresses nothing and panicpolicy ran: stale.
	// a's matched; c names an analyzer outside the run: exempt.
	got := Analyze([]*Package{pkg}, []*Analyzer{Lookup("panicpolicy")})
	wantLines(t, got, "stale", 9)
	if got := AnalyzeOptions([]*Package{pkg}, []*Analyzer{Lookup("panicpolicy")}, Options{}); len(got) != 0 {
		t.Fatalf("Stale:false must not report stale directives, got %v", got)
	}
}

func TestStaleStarRequiresFullRegistry(t *testing.T) {
	src := `package foo

func a(n int) int {
	//lint:ignore * fixture: blanket directive with nothing to suppress
	return n + 1
}
`
	pkg := parseFixture(t, "mobilstm/internal/foo", "internal/foo/foo.go", src)
	if got := Analyze([]*Package{pkg}, []*Analyzer{Lookup("panicpolicy")}); len(got) != 0 {
		t.Fatalf("a * directive is unjudgeable under a partial run, got %v", got)
	}
	got := Analyze([]*Package{pkg}, All())
	wantLines(t, got, "stale", 4)
}

func TestNewLoaderFindsModule(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "mobilstm" {
		t.Errorf("ModulePath = %q, want mobilstm", l.ModulePath)
	}
}
