package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds the package-level call graph the summary engine runs
// its fixpoint over. The graph is per package: cross-package edges need
// no cycle handling because Go's import graph is acyclic, so a callee in
// another package always has its summaries fully computed (on demand)
// before the caller's package starts. Within a package, mutual recursion
// is real, and Tarjan's algorithm groups the declarations into strongly
// connected components emitted callees-first — exactly the order the
// fixpoint wants.

// funcInfo is one function declaration node of the call graph.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	// callees are the same-package functions this body may invoke,
	// including functions merely referenced as values (a conservative
	// edge: a stored function value can be called later).
	callees []*funcInfo

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// callGraph is the same-package call graph of one loaded package.
type callGraph struct {
	nodes []*funcInfo
	byObj map[*types.Func]*funcInfo
}

// buildCallGraph indexes every function declaration of pkg and records
// same-package call edges. Function literals are not separate nodes:
// their bodies belong to the enclosing declaration, so references inside
// them become edges of that declaration (which is what the summary
// fixpoint needs for termination; their facts are not summarized).
func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{byObj: map[*types.Func]*funcInfo{}}
	if pkg.Info == nil {
		return g
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj, decl: fd, index: -1}
			g.nodes = append(g.nodes, fi)
			g.byObj[obj] = fi
		}
	}
	for _, fi := range g.nodes {
		seen := map[*funcInfo]bool{}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if callee, ok := g.byObj[obj]; ok && !seen[callee] {
				seen[callee] = true
				fi.callees = append(fi.callees, callee)
			}
			return true
		})
	}
	return g
}

// sccs returns the strongly connected components of the graph in
// reverse topological order of the condensation: every component is
// emitted after all components it calls into, so processing the slice
// front-to-back sees callees before callers.
func (g *callGraph) sccs() [][]*funcInfo {
	var (
		out     [][]*funcInfo
		stack   []*funcInfo
		counter int
	)
	var strongconnect func(v *funcInfo)
	strongconnect = func(v *funcInfo) {
		v.index = counter
		v.lowlink = counter
		counter++
		stack = append(stack, v)
		v.onStack = true
		for _, w := range v.callees {
			if w.index < 0 {
				strongconnect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			var comp []*funcInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range g.nodes {
		if v.index < 0 {
			strongconnect(v)
		}
	}
	return out
}

// recursive reports whether the component calls back into itself — a
// multi-member SCC, or a single function with a self edge.
func recursive(comp []*funcInfo) bool {
	if len(comp) > 1 {
		return true
	}
	for _, w := range comp[0].callees {
		if w == comp[0] {
			return true
		}
	}
	return false
}
