package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// racecontract enforces the shared-struct guard contracts the serving
// path lives by: once a struct field is published to another goroutine,
// every access must happen under the same discipline that created it.
//
// The analyzer infers contracts instead of requiring annotations. A
// contract exists for field T.f when any write to x.f happens with a
// same-base guard in force — inside x.once.Do(...), or with x.mu held —
// because guarding one write is the programmer stating "this field is
// shared". Every other access to T.f in the package must then be
// exempt: under any same-base guard (guardedness, not guard identity —
// the engine does not prove two mutexes distinct), after a completed
// once.Do on the base (including bases bound from a callee whose
// summary proves its result settled — ResultSettled), or on a base the
// function provably allocated itself and has not yet published.
//
// The check is wrapper-aware through summaries: an unexported helper's
// unguarded accesses to a parameter's fields transfer to its call sites
// (FieldWrites/FieldReads), where they are re-checked under the
// caller's guard state — so engineSlot.build writing its fields inside
// engine()'s once.Do is the evidence, not a violation. Exported
// functions cannot lean on in-module callers and are checked locally.
//
// On top of the contract rule sit two publication rules fed by the MHP
// layer: a field write after the base value was published to another
// goroutine (go-capture, channel send, atomic store, spawn argument) is
// a finding, and a spawned goroutine's unguarded field write that can
// overlap an unguarded access to the same field in the spawning
// function is a finding. Reads after publication are deliberately not
// flagged — the reply-channel handoff idiom (send request, block on
// response, read results) is safe by the channel's happens-before edge
// and would drown the signal in false positives.
func init() {
	Register(&Analyzer{
		Name: "racecontract",
		Doc:  "published struct fields must keep their lock/once guard discipline on every access",
		Run:  runRaceContract,
	})
}

// fieldAccess is one struct-field access the scanner observed (or
// synthesized from a callee summary at a call site).
type fieldAccess struct {
	pos     token.Pos
	base    types.Object    // plain-identifier base of the selector
	owner   *types.TypeName // named struct type owning the field
	field   string
	write   bool
	guarded bool     // exempt: held guard, settled once, or unpublished local alloc
	guards  []string // the held lock/Do guards — evidence-grade when non-empty
	inSpawn bool     // inside a spawned goroutine's body
	synth   bool     // synthesized from a callee's FieldWrites/FieldReads

	spawnPos token.Pos // for inSpawn accesses: the spawn site
	transfer bool      // recorded into the summary instead of checked locally
}

// raceState is the per-path abstract state of the guard scanner.
type raceState struct {
	// held maps a base object to the set of its guard fields currently
	// held ("mu" after x.mu.Lock(), "once" inside x.once.Do(...)).
	held map[types.Object]map[string]bool
	// settled marks bases whose once.Do has completed on this path.
	settled map[types.Object]bool
	// published maps bases to the position where they became reachable
	// from another goroutine on this path.
	published map[types.Object]token.Pos
}

func newRaceState() *raceState {
	return &raceState{
		held:      map[types.Object]map[string]bool{},
		settled:   map[types.Object]bool{},
		published: map[types.Object]token.Pos{},
	}
}

func (st *raceState) clone() *raceState {
	out := newRaceState()
	for b, gs := range st.held {
		cp := make(map[string]bool, len(gs))
		for g := range gs {
			cp[g] = true
		}
		out.held[b] = cp
	}
	for b := range st.settled {
		out.settled[b] = true
	}
	for b, p := range st.published {
		out.published[b] = p
	}
	return out
}

func (st *raceState) replace(o *raceState) {
	st.held, st.settled, st.published = o.held, o.settled, o.published
}

// join merges two branch states: guards and settledness must hold on
// both paths (intersection); publication on either path is publication
// (union — a write after the join races with the publishing path).
func joinRaceStates(a, b *raceState) *raceState {
	out := newRaceState()
	for base, gs := range a.held {
		if ogs := b.held[base]; ogs != nil {
			both := map[string]bool{}
			for g := range gs {
				if ogs[g] {
					both[g] = true
				}
			}
			if len(both) > 0 {
				out.held[base] = both
			}
		}
	}
	for base := range a.settled {
		if b.settled[base] {
			out.settled[base] = true
		}
	}
	for base, p := range a.published {
		out.published[base] = p
	}
	for base, p := range b.published {
		if _, ok := out.published[base]; !ok {
			out.published[base] = p
		}
	}
	return out
}

func (st *raceState) hold(base types.Object, guard string) {
	gs := st.held[base]
	if gs == nil {
		gs = map[string]bool{}
		st.held[base] = gs
	}
	gs[guard] = true
}

func (st *raceState) release(base types.Object, guard string) {
	if gs := st.held[base]; gs != nil {
		delete(gs, guard)
		if len(gs) == 0 {
			delete(st.held, base)
		}
	}
}

// raceScanner walks one declaration with guard state, collecting field
// accesses, publication-rule findings, and the summary facts
// (FieldWrites/FieldReads/ResultSettled) the wrapper-awareness needs.
type raceScanner struct {
	pass    *Pass
	w       *dfWalker
	decl    *ast.FuncDecl
	params  map[types.Object]int
	nparams int
	nres    int
	locals  map[types.Object]bool // flow-insensitive fresh-allocation set

	accs []fieldAccess
	pubs []Finding // publication-rule (R2) findings

	retSeen    bool
	retSettled []bool
}

func newRaceScanner(pass *Pass, decl *ast.FuncDecl, params []*types.Var) *raceScanner {
	sc := &raceScanner{
		pass:    pass,
		w:       &dfWalker{pass: pass},
		decl:    decl,
		params:  map[types.Object]int{},
		nparams: len(params),
		locals:  map[types.Object]bool{},
	}
	for i, p := range params {
		sc.params[p] = i
	}
	if obj, ok := pass.Pkg.Info.Defs[decl.Name].(*types.Func); ok {
		if sig, ok := obj.Type().(*types.Signature); ok {
			sc.nres = sig.Results().Len()
		}
	}
	return sc
}

func (sc *raceScanner) run() {
	if sc.decl.Body == nil {
		return
	}
	sc.findLocals()
	st := newRaceState()
	sc.scanStmts(st, sc.decl.Body.List, false)
}

// findLocals marks every identifier the declaration binds to a fresh
// allocation (&T{}, T{}, new(T)) anywhere in its body — flow-insensitive
// on purpose: the exemption only suppresses findings, and a local that
// is fresh on any binding is owned until published.
func (sc *raceScanner) findLocals() {
	bind := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		// A fresh allocation is owned, and so is a struct value copy
		// (o := opt): assignment of a non-pointer struct clones its
		// storage, so the binding cannot alias the source.
		if !isFreshAlloc(ast.Unparen(rhs)) && !isStructValue(sc.pass.TypeOf(rhs)) {
			return
		}
		if obj := sc.w.objectOf(id); obj != nil {
			sc.locals[obj] = true
		}
	}
	ast.Inspect(sc.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
}

// isStructValue reports whether t is a struct held by value (not
// behind a pointer), so assignment copies it.
func isStructValue(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Struct)
	return ok
}

func isFreshAlloc(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new"
		}
	}
	return false
}

// --- statements -------------------------------------------------------

// scanStmts interprets a statement list, returning whether the path
// definitely terminates (return, branch, panic).
func (sc *raceScanner) scanStmts(st *raceState, list []ast.Stmt, inSpawn bool) bool {
	for _, s := range list {
		if sc.scanStmt(st, s, inSpawn) {
			return true
		}
	}
	return false
}

func (sc *raceScanner) scanStmt(st *raceState, s ast.Stmt, inSpawn bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		sc.scanExpr(st, s.X, inSpawn)
		return sc.terminates(s)
	case *ast.AssignStmt:
		sc.scanAssign(st, s, inSpawn)
	case *ast.IncDecStmt:
		sc.scanWrite(st, s.X, inSpawn)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sc.scanExpr(st, v, inSpawn)
					}
				}
			}
		}
	case *ast.DeferStmt:
		sc.scanDefer(st, s.Call, inSpawn)
	case *ast.GoStmt:
		sc.scanGo(st, s, inSpawn)
	case *ast.SendStmt:
		sc.scanExpr(st, s.Chan, inSpawn)
		sc.scanExpr(st, s.Value, inSpawn)
		sc.publishExpr(st, s.Value, s.Pos())
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			sc.scanExpr(st, r, inSpawn)
		}
		sc.recordReturn(st, s)
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.BlockStmt:
		return sc.scanStmts(st, s.List, inSpawn)
	case *ast.LabeledStmt:
		return sc.scanStmt(st, s.Stmt, inSpawn)
	case *ast.IfStmt:
		return sc.scanIf(st, s, inSpawn)
	case *ast.ForStmt:
		if s.Init != nil {
			sc.scanStmt(st, s.Init, inSpawn)
		}
		if s.Cond != nil {
			sc.scanExpr(st, s.Cond, inSpawn)
		}
		sc.scanLoopBody(st, func(body *raceState) {
			sc.scanStmts(body, s.Body.List, inSpawn)
			if s.Post != nil {
				sc.scanStmt(body, s.Post, inSpawn)
			}
		})
	case *ast.RangeStmt:
		sc.scanExpr(st, s.X, inSpawn)
		if s.Key != nil {
			sc.scanWrite(st, s.Key, inSpawn)
		}
		if s.Value != nil {
			sc.scanWrite(st, s.Value, inSpawn)
		}
		sc.scanLoopBody(st, func(body *raceState) {
			sc.scanStmts(body, s.Body.List, inSpawn)
		})
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.scanStmt(st, s.Init, inSpawn)
		}
		if s.Tag != nil {
			sc.scanExpr(st, s.Tag, inSpawn)
		}
		sc.scanClauses(st, s.Body, inSpawn)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			sc.scanStmt(st, s.Init, inSpawn)
		}
		sc.scanStmt(st, s.Assign, inSpawn)
		sc.scanClauses(st, s.Body, inSpawn)
	case *ast.SelectStmt:
		sc.scanClauses(st, s.Body, inSpawn)
	}
	return false
}

// scanLoopBody interprets a loop body twice on a branch state (so facts
// established in iteration one govern iteration two) and joins the
// result with the zero-iteration path.
func (sc *raceScanner) scanLoopBody(st *raceState, body func(*raceState)) {
	b := st.clone()
	body(b)
	body(b)
	st.replace(joinRaceStates(st, b))
}

// scanClauses interprets each clause of a switch/select body on its own
// branch state and joins the survivors with the entry state.
func (sc *raceScanner) scanClauses(st *raceState, body *ast.BlockStmt, inSpawn bool) {
	out := st.clone()
	for _, cl := range body.List {
		b := st.clone()
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				sc.scanExpr(b, e, inSpawn)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				sc.scanStmt(b, cl.Comm, inSpawn)
			}
			stmts = cl.Body
		}
		if !sc.scanStmts(b, stmts, inSpawn) {
			out.replace(joinRaceStates(out, b))
		}
	}
	st.replace(out)
}

func (sc *raceScanner) scanIf(st *raceState, s *ast.IfStmt, inSpawn bool) bool {
	if s.Init != nil {
		sc.scanStmt(st, s.Init, inSpawn)
	}
	sc.scanExpr(st, s.Cond, inSpawn)
	thenSt := st.clone()
	thenTerm := sc.scanStmts(thenSt, s.Body.List, inSpawn)
	if s.Else == nil {
		if !thenTerm {
			st.replace(joinRaceStates(st, thenSt))
		}
		return false
	}
	elseSt := st.clone()
	elseTerm := sc.scanStmt(elseSt, s.Else, inSpawn)
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		st.replace(elseSt)
	case elseTerm:
		st.replace(thenSt)
	default:
		st.replace(joinRaceStates(thenSt, elseSt))
	}
	return false
}

func (sc *raceScanner) terminates(s ast.Stmt) bool {
	fw := &factsWalker{pass: sc.pass}
	return fw.stmtTerminates(s)
}

func (sc *raceScanner) recordReturn(st *raceState, s *ast.ReturnStmt) {
	if sc.nres == 0 || len(s.Results) != sc.nres {
		if sc.nres > 0 {
			sc.retSeen = true
			sc.retSettled = make([]bool, sc.nres)
		}
		return
	}
	settled := make([]bool, sc.nres)
	for i, r := range s.Results {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok {
			if obj := sc.w.objectOf(id); obj != nil && st.settled[obj] {
				settled[i] = true
			}
		}
	}
	if !sc.retSeen {
		sc.retSeen = true
		sc.retSettled = settled
		return
	}
	for i := range sc.retSettled {
		sc.retSettled[i] = sc.retSettled[i] && settled[i]
	}
}

// --- assignment / calls ----------------------------------------------

func (sc *raceScanner) scanAssign(st *raceState, s *ast.AssignStmt, inSpawn bool) {
	for _, r := range s.Rhs {
		sc.scanExpr(st, r, inSpawn)
	}
	// x := helper(...) where the helper proves its result settled
	// (engine() returning a slot after once.Do) settles x.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if obj, _ := calleeFunc(sc.pass.Pkg.Info, call); obj != nil {
				if sum := sc.pass.program().summaryFor(obj); sum != nil {
					for i, lhs := range s.Lhs {
						if i >= len(sum.ResultSettled) || !sum.ResultSettled[i] {
							continue
						}
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							if o := sc.w.objectOf(id); o != nil {
								st.settled[o] = true
							}
						}
					}
				}
			}
		}
	}
	for _, l := range s.Lhs {
		sc.scanWrite(st, l, inSpawn)
	}
}

func (sc *raceScanner) scanDefer(st *raceState, call *ast.CallExpr, inSpawn bool) {
	// defer x.mu.Unlock() keeps the guard held for the rest of the
	// function; other deferred calls are scanned for accesses on a
	// throwaway state (they run later, but their receivers and
	// arguments are evaluated here).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
			if isMutexType(sc.pass.TypeOf(sel.X)) {
				return
			}
		}
	}
	sc.scanCall(st.clone(), call, inSpawn)
}

func (sc *raceScanner) scanGo(st *raceState, s *ast.GoStmt, inSpawn bool) {
	call := s.Call
	for _, arg := range call.Args {
		sc.scanExpr(st, arg, inSpawn)
		sc.publishExpr(st, arg, s.Pos())
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, v := range capturedVars(sc.w, lit) {
			if namedStructOf(v.Type()) != nil {
				st.published[v] = s.Pos()
			}
		}
		fresh := newRaceState()
		sc.scanSpawnBody(fresh, lit.Body.List, s.Pos())
		return
	}
	// go fn(args) / go x.m(args): the callee body runs concurrently —
	// synthesize its unguarded parameter-field accesses under a fresh
	// (nothing-held) spawned state.
	sc.synthesizeCall(newRaceState(), call, true, s.Pos())
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		sc.publishExpr(st, sel.X, s.Pos())
	}
}

// scanSpawnBody wraps scanStmts to stamp the spawn site on every access
// collected from a spawned literal's body.
func (sc *raceScanner) scanSpawnBody(st *raceState, list []ast.Stmt, spawnPos token.Pos) {
	mark := len(sc.accs)
	sc.scanStmts(st, list, true)
	var lo, hi token.Pos
	if len(list) > 0 {
		lo, hi = list[0].Pos(), list[len(list)-1].End()
	}
	for i := mark; i < len(sc.accs); i++ {
		a := &sc.accs[i]
		if a.inSpawn && a.spawnPos == token.NoPos {
			a.spawnPos = spawnPos
		}
		// A local declared inside the spawned body is the goroutine's
		// own storage, not shared state captured from the spawner.
		if !a.guarded && a.base != nil && sc.locals[a.base] &&
			a.base.Pos() >= lo && a.base.Pos() < hi {
			a.guarded = true
		}
	}
}

// publishExpr marks a plain-identifier struct value as published.
func (sc *raceScanner) publishExpr(st *raceState, e ast.Expr, pos token.Pos) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := sc.w.objectOf(id).(*types.Var)
	if !ok || namedStructOf(obj.Type()) == nil {
		return
	}
	if _, done := st.published[obj]; !done {
		st.published[obj] = pos
	}
}

func (sc *raceScanner) scanCall(st *raceState, call *ast.CallExpr, inSpawn bool) {
	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		recvT := sc.pass.TypeOf(sel.X)
		switch {
		case (name == "Lock" || name == "RLock") && isMutexType(recvT):
			if base, guard := sc.guardPath(sel.X); base != nil {
				st.hold(base, guard)
			}
			return
		case (name == "Unlock" || name == "RUnlock") && isMutexType(recvT):
			if base, guard := sc.guardPath(sel.X); base != nil {
				st.release(base, guard)
			}
			return
		case name == "Do" && isOnceType(recvT) && len(call.Args) == 1:
			base, guard := sc.guardPath(sel.X)
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				inner := st.clone()
				if base != nil {
					inner.hold(base, guard)
				}
				sc.scanStmts(inner, lit.Body.List, inSpawn)
			} else {
				sc.scanExpr(st, call.Args[0], inSpawn)
			}
			if base != nil {
				st.settled[base] = true
			}
			return
		case (name == "Store" || name == "Swap" || name == "CompareAndSwap") && isAtomicGuard(recvT):
			for _, arg := range call.Args {
				sc.scanExpr(st, arg, inSpawn)
				sc.publishExpr(st, arg, call.Pos())
			}
			sc.scanExpr(st, sel.X, inSpawn)
			return
		}
		sc.scanExpr(st, sel.X, inSpawn)
	}
	for i, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			if sc.argSpawned(call, i) {
				sc.scanSpawnBody(newRaceState(), lit.Body.List, call.Pos())
				for _, v := range capturedVars(sc.w, lit) {
					if namedStructOf(v.Type()) != nil {
						st.published[v] = call.Pos()
					}
				}
			} else {
				// Ordinary literal: inherits the state in force at its
				// creation (the bump-closure idiom reads settled fields).
				sc.scanStmts(st.clone(), lit.Body.List, inSpawn)
			}
			continue
		}
		sc.scanExpr(st, arg, inSpawn)
		if sc.argSpawned(call, i) {
			sc.publishExpr(st, arg, call.Pos())
			// A spawned method value (daemons.Go(s.batchLoop)) runs its
			// body concurrently on its receiver.
			if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
				if m, ok := sc.pass.Pkg.Info.Uses[sel.Sel].(*types.Func); ok {
					sc.synthesizeMethodValue(m, sel.X, call.Pos())
				}
				sc.publishExpr(st, sel.X, call.Pos())
			}
		}
	}
	sc.synthesizeCall(st, call, inSpawn, token.NoPos)
}

// argSpawned reports whether argument i of call is retained on a
// goroutine by the callee (SpawnsParam through summaries).
func (sc *raceScanner) argSpawned(call *ast.CallExpr, i int) bool {
	obj, rargs := calleeFunc(sc.pass.Pkg.Info, call)
	if obj == nil {
		return false
	}
	sum := sc.pass.program().summaryFor(obj)
	if sum == nil {
		return false
	}
	// Map the plain argument index onto the receiver-first list.
	off := len(rargs) - len(call.Args)
	j := i + off
	return j >= 0 && j < len(sum.SpawnsParam) && sum.SpawnsParam[j]
}

// synthesizeCall replays a callee's summarized unguarded field accesses
// against the caller's state at the call site: build() writing slot
// fields becomes an access to slot here, guarded by whatever guards
// slot at this point (that guard is then the contract evidence).
func (sc *raceScanner) synthesizeCall(st *raceState, call *ast.CallExpr, inSpawn bool, spawnPos token.Pos) {
	obj, rargs := calleeFunc(sc.pass.Pkg.Info, call)
	if obj == nil {
		return
	}
	sum := sc.pass.program().summaryFor(obj)
	if sum == nil || (sum.FieldWrites == nil && sum.FieldReads == nil) {
		return
	}
	for j, arg := range rargs {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		base, ok := sc.w.objectOf(id).(*types.Var)
		if !ok {
			continue
		}
		owner := namedStructOf(base.Type())
		if owner == nil {
			continue
		}
		if j < len(sum.FieldWrites) {
			for _, f := range sum.FieldWrites[j] {
				sc.record(st, call.Pos(), base, owner, f, true, inSpawn, spawnPos, true)
			}
		}
		if j < len(sum.FieldReads) {
			for _, f := range sum.FieldReads[j] {
				sc.record(st, call.Pos(), base, owner, f, false, inSpawn, spawnPos, true)
			}
		}
	}
}

// synthesizeMethodValue replays a spawned method value's summarized
// accesses on its receiver under a fresh spawned state.
func (sc *raceScanner) synthesizeMethodValue(m *types.Func, recv ast.Expr, spawnPos token.Pos) {
	sum := sc.pass.program().summaryFor(m)
	if sum == nil {
		return
	}
	id, ok := ast.Unparen(recv).(*ast.Ident)
	if !ok {
		return
	}
	base, ok := sc.w.objectOf(id).(*types.Var)
	if !ok {
		return
	}
	owner := namedStructOf(base.Type())
	if owner == nil {
		return
	}
	fresh := newRaceState()
	if len(sum.FieldWrites) > 0 {
		for _, f := range sum.FieldWrites[0] {
			sc.record(fresh, spawnPos, base, owner, f, true, true, spawnPos, true)
		}
	}
	if len(sum.FieldReads) > 0 {
		for _, f := range sum.FieldReads[0] {
			sc.record(fresh, spawnPos, base, owner, f, false, true, spawnPos, true)
		}
	}
}

// guardPath splits a guard access path (x.mu, x.once) into its
// plain-identifier base and guard field name. Guards not rooted at a
// plain identifier (package-level mutexes, nested paths) return nil —
// the scanner then simply knows less.
func (sc *raceScanner) guardPath(e ast.Expr) (types.Object, string) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, ""
	}
	obj, ok := sc.w.objectOf(id).(*types.Var)
	if !ok {
		return nil, ""
	}
	return obj, sel.Sel.Name
}

// --- expressions ------------------------------------------------------

func (sc *raceScanner) scanExpr(st *raceState, e ast.Expr, inSpawn bool) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sc.access(st, e, false, inSpawn)
		sc.scanExpr(st, e.X, inSpawn)
	case *ast.CallExpr:
		sc.scanCall(st, e, inSpawn)
	case *ast.FuncLit:
		sc.scanStmts(st.clone(), e.Body.List, inSpawn)
	case *ast.BinaryExpr:
		sc.scanExpr(st, e.X, inSpawn)
		sc.scanExpr(st, e.Y, inSpawn)
	case *ast.UnaryExpr:
		sc.scanExpr(st, e.X, inSpawn)
	case *ast.StarExpr:
		sc.scanExpr(st, e.X, inSpawn)
	case *ast.IndexExpr:
		sc.scanExpr(st, e.X, inSpawn)
		sc.scanExpr(st, e.Index, inSpawn)
	case *ast.IndexListExpr:
		sc.scanExpr(st, e.X, inSpawn)
	case *ast.SliceExpr:
		sc.scanExpr(st, e.X, inSpawn)
		sc.scanExpr(st, e.Low, inSpawn)
		sc.scanExpr(st, e.High, inSpawn)
		sc.scanExpr(st, e.Max, inSpawn)
	case *ast.TypeAssertExpr:
		sc.scanExpr(st, e.X, inSpawn)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				sc.scanExpr(st, kv.Value, inSpawn)
				continue
			}
			sc.scanExpr(st, el, inSpawn)
		}
	}
}

func (sc *raceScanner) scanWrite(st *raceState, e ast.Expr, inSpawn bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sc.access(st, e, true, inSpawn)
		sc.scanExpr(st, e.X, inSpawn)
	case *ast.IndexExpr:
		// Writing an element through a struct field (s.stats[k] = v)
		// mutates the field's referent: treated as a field write.
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			sc.access(st, sel, true, inSpawn)
			sc.scanExpr(st, sel.X, inSpawn)
		} else {
			sc.scanExpr(st, e.X, inSpawn)
		}
		sc.scanExpr(st, e.Index, inSpawn)
	case *ast.StarExpr:
		sc.scanExpr(st, e.X, inSpawn)
	}
}

// access records one struct-field access under the current state.
func (sc *raceScanner) access(st *raceState, sel *ast.SelectorExpr, write, inSpawn bool) {
	info := sc.pass.Pkg.Info
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	baseX := ast.Unparen(sel.X)
	id, ok := baseX.(*ast.Ident)
	if !ok {
		return
	}
	base, ok := sc.w.objectOf(id).(*types.Var)
	if !ok {
		return
	}
	owner := namedStructOf(base.Type())
	if owner == nil {
		return
	}
	// Guard-typed fields (mutexes, once, WaitGroup, atomics) are the
	// synchronization itself, not shared data.
	if lockBearing(v.Type()) || isAtomicGuard(v.Type()) {
		return
	}
	sc.record(st, sel.Pos(), base, owner, sel.Sel.Name, write, inSpawn, token.NoPos, false)
}

func (sc *raceScanner) record(st *raceState, pos token.Pos, base types.Object, owner *types.TypeName, field string, write, inSpawn bool, spawnPos token.Pos, synth bool) {
	var guards []string
	for g := range st.held[base] {
		guards = append(guards, g)
	}
	sort.Strings(guards)
	_, published := st.published[base]
	guarded := len(guards) > 0 || st.settled[base] ||
		(!inSpawn && !published && sc.locals[base])
	a := fieldAccess{
		pos:      pos,
		base:     base,
		owner:    owner,
		field:    field,
		write:    write,
		guarded:  guarded,
		guards:   guards,
		inSpawn:  inSpawn,
		spawnPos: spawnPos,
		synth:    synth,
	}
	// Publication rule (R2): a field write after the base escaped to
	// another goroutine, outside any guard, is a race regardless of
	// whether a contract exists for the field.
	if write && !guarded && !inSpawn && published {
		sc.pubs = append(sc.pubs, Finding{
			Analyzer: "racecontract",
			Pos:      sc.pass.Position(pos),
			Message: fmt.Sprintf(
				"write to %s.%s after %s was published to another goroutine at %s; guard it or use sync/atomic",
				owner.Name(), field, base.Name(),
				sc.pass.Position(st.published[base]).String()),
		})
	}
	// Transfer rule: an unexported function's unguarded accesses to a
	// parameter's fields are checked at call sites via the summary, not
	// here — the caller knows the guard state, this body does not.
	if _, isParam := sc.params[base]; isParam && !inSpawn && !sc.decl.Name.IsExported() {
		a.transfer = true
	}
	sc.accs = append(sc.accs, a)
}

// fill exports the scanner's facts into the summary: unguarded
// parameter-field accesses (receiver-first, deduplicated and sorted)
// and settled results.
func (sc *raceScanner) fill(s *FuncSummary) {
	writes := make([]map[string]bool, sc.nparams)
	reads := make([]map[string]bool, sc.nparams)
	for _, a := range sc.accs {
		i, ok := sc.params[a.base]
		if !ok || a.guarded || a.inSpawn {
			continue
		}
		m := &reads
		if a.write {
			m = &writes
		}
		if (*m)[i] == nil {
			(*m)[i] = map[string]bool{}
		}
		(*m)[i][a.field] = true
	}
	toLists := func(ms []map[string]bool) [][]string {
		out := make([][]string, len(ms))
		any := false
		for i, m := range ms {
			if len(m) == 0 {
				continue
			}
			any = true
			for f := range m {
				out[i] = append(out[i], f)
			}
			sort.Strings(out[i])
		}
		if !any {
			return nil
		}
		return out
	}
	s.FieldWrites = toLists(writes)
	s.FieldReads = toLists(reads)
	if sc.retSeen {
		any := false
		for _, b := range sc.retSettled {
			any = any || b
		}
		if any {
			s.ResultSettled = sc.retSettled
		}
	}
}

// --- the analyzer -----------------------------------------------------

// typeField keys a contract: one field of one named struct type.
type typeField struct {
	owner *types.TypeName
	field string
}

// contractEvidence is where and how a contract was established.
type contractEvidence struct {
	guards string
	pos    token.Pos
}

func runRaceContract(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	type declAccs struct {
		decl *ast.FuncDecl
		accs []fieldAccess
	}
	var (
		decls    []declAccs
		findings []Finding
	)
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, _ := obj.Type().(*types.Signature)
			if sig == nil {
				continue
			}
			sc := newRaceScanner(pass, fd, paramVarsOf(sig))
			sc.run()
			decls = append(decls, declAccs{decl: fd, accs: sc.accs})
			findings = append(findings, sc.pubs...)
		}
	}

	// Pass 1: infer contracts. Any write under a real same-base guard
	// (held mutex or once.Do context) is the programmer declaring the
	// field shared.
	contracts := map[typeField]contractEvidence{}
	for _, da := range decls {
		for _, a := range da.accs {
			if !a.write || len(a.guards) == 0 {
				continue
			}
			key := typeField{a.owner, a.field}
			if _, ok := contracts[key]; !ok {
				contracts[key] = contractEvidence{
					guards: strings.Join(a.guards, "/"),
					pos:    a.pos,
				}
			}
		}
	}

	// Pass 2: every non-exempt access to a contracted field is a
	// finding (R1), and a spawned goroutine's unguarded access that can
	// overlap an unguarded access to the same field in its spawning
	// function is one too (R2b) — both sides touch, neither holds
	// anything, and MHP is trivially true across a spawn edge.
	for _, da := range decls {
		for _, a := range da.accs {
			if a.guarded || a.transfer {
				continue
			}
			if ev, ok := contracts[typeField{a.owner, a.field}]; ok {
				kind := "read of"
				if a.write {
					kind = "write to"
				}
				findings = append(findings, Finding{
					Analyzer: "racecontract",
					Pos:      pass.Position(a.pos),
					Message: fmt.Sprintf(
						"unguarded %s %s.%s, which is guarded by %s at %s; take the guard, complete the once, or use sync/atomic",
						kind, a.owner.Name(), a.field, ev.guards,
						pass.Position(ev.pos).String()),
				})
				continue
			}
			if !a.inSpawn {
				continue
			}
			// R2b: pair a spawned access with a same-field unguarded
			// access after the spawn in the same declaration.
			for _, b := range da.accs {
				if b.inSpawn || b.guarded || b.base != a.base || b.field != a.field {
					continue
				}
				if !a.write && !b.write {
					continue
				}
				if a.spawnPos == token.NoPos || b.pos <= a.spawnPos {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: "racecontract",
					Pos:      pass.Position(a.pos),
					Message: fmt.Sprintf(
						"%s.%s is accessed on the goroutine spawned at %s and again at %s with no guard on either side",
						a.owner.Name(), a.field,
						pass.Position(a.spawnPos).String(),
						pass.Position(b.pos).String()),
				})
				break
			}
		}
	}

	// Loop bodies are interpreted twice and call sites can synthesize
	// the same access repeatedly: deduplicate by position + message.
	seen := map[string]bool{}
	var out []Finding
	for _, f := range findings {
		key := f.Pos.String() + "\x00" + f.Message
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}
