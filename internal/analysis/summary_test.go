package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// interprocHelpers is the helper suite appended to every interproc
// fixture: tensor-returning functions whose result dimensions only the
// summary engine can see at the call sites inside f.
const interprocHelpers = `
func gates(h int) tensor.Vector { return tensor.NewVector(4 * h) }

func gatesNamed(h int) (v tensor.Vector) {
	v = tensor.NewVector(4 * h)
	return
}

func pair(h int) (tensor.Vector, tensor.Vector) {
	return tensor.NewVector(h), tensor.NewVector(4 * h)
}

func united(h, e int) *tensor.Matrix {
	wf := tensor.NewMatrix(h, e)
	wi := tensor.NewMatrix(h, e)
	wc := tensor.NewMatrix(h, e)
	wo := tensor.NewMatrix(h, e)
	return tensor.Pack(wf, wi, wc, wo)
}

func ufic(m *tensor.Matrix, h int) *tensor.Matrix { return m.RowBlock(h, 4*h) }

func rec(h int) tensor.Vector {
	if h == 0 {
		return tensor.NewVector(1)
	}
	return rec(h - 1)
}

func mrA(h int) tensor.Vector { return mrB(h) }

func mrB(h int) tensor.Vector { return mrA(h + 1) }
`

// TestShapeCheckInterprocedural drives shapecheck through the summary
// engine: helper results carry concrete symbolic dimensions (4*h gate
// vectors, the 4h x e united pack, the 3h-row ufic view) into the
// checks at their call sites. The first body statement is line 6.
func TestShapeCheckInterprocedural(t *testing.T) {
	cases := []struct {
		name string
		body string
		want []int
	}{
		{
			name: "helper dims line up end to end",
			body: `
	W := united(h, e)
	g := gates(h)
	tensor.Gemv(g, W, tensor.NewVector(e))`,
			want: nil,
		},
		{
			name: "cross-function dst mismatch through gates",
			body: `
	U := tensor.NewMatrix(3*h, h)
	g := gates(h)
	tensor.Gemv(g, U, tensor.NewVector(h))`,
			want: []int{8},
		},
		{
			name: "named-result helper propagates through bare return",
			body: `
	g := gatesNamed(h)
	tensor.Gemv(g, tensor.NewMatrix(3*h, h), tensor.NewVector(h))`,
			want: []int{7},
		},
		{
			name: "multi-value helper results bind per position",
			body: `
	a, b := pair(h)
	tensor.Gemv(b, tensor.NewMatrix(3*h, h), a)`,
			want: []int{7},
		},
		{
			name: "united pack cols propagate to the x argument",
			body: `
	W := united(h, e)
	tensor.Gemv(tensor.NewVector(4*h), W, tensor.NewVector(2*e))`,
			want: []int{7},
		},
		{
			name: "chained helpers: ufic over united",
			body: `
	v := ufic(united(h, e), h)
	tensor.Gemv(tensor.NewVector(4*h), v, tensor.NewVector(e))`,
			want: []int{7},
		},
		{
			name: "interproc skip mask must tile the ufic view",
			body: `
	W := united(h, e)
	v := ufic(W, h)
	skip := make([]bool, 2*h)
	var dsts []tensor.Vector
	tensor.PackedGemvRows(dsts, v, tensor.NewVector(e), skip, 0)`,
			want: []int{10},
		},
		{
			name: "interproc skip mask that tiles stays clean",
			body: `
	W := united(h, e)
	v := ufic(W, h)
	skip := make([]bool, h)
	var dsts []tensor.Vector
	tensor.PackedGemvRows(dsts, v, tensor.NewVector(e), skip, 0)`,
			want: nil,
		},
		{
			name: "self-recursive helper widens to unknown and terminates",
			body: `
	g := rec(h)
	tensor.Gemv(g, tensor.NewMatrix(3*h, h), tensor.NewVector(h))`,
			want: nil,
		},
		{
			name: "mutually recursive helpers widen and terminate",
			body: `
	g := mrA(h)
	tensor.Gemv(g, tensor.NewMatrix(3*h, h), tensor.NewVector(h))`,
			want: nil,
		},
		{
			name: "packed dst segments must divide the united rows",
			body: `
	W := united(h, e)
	dsts := []tensor.Vector{tensor.NewVector(3 * h)}
	tensor.PackedGemv(dsts, W, tensor.NewVector(e))`,
			want: []int{8},
		},
		{
			name: "packed dst segments that divide stay clean",
			body: `
	W := united(h, e)
	dsts := []tensor.Vector{tensor.NewVector(h), tensor.NewVector(h)}
	tensor.PackedGemv(dsts, W, tensor.NewVector(e))`,
			want: nil,
		},
		{
			name: "packed gemm dst rows against xs count",
			body: `
	W := united(h, e)
	wx := tensor.NewMatrix(7, 4*h)
	xs := make([]tensor.Vector, 9)
	tensor.PackedGemm(wx, W, xs)`,
			want: []int{9},
		},
		{
			name: "packed gemm xs element length against m cols",
			body: `
	W := united(h, e)
	wx := tensor.NewMatrix(1, 4*h)
	xs := []tensor.Vector{tensor.NewVector(2 * e)}
	tensor.PackedGemm(wx, W, xs)`,
			want: []int{9},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package fix\n\nimport \"mobilstm/internal/tensor\"\n\nfunc f(h, e int, x tensor.Vector) {" +
				tc.body + "\n}\n" + interprocHelpers
			got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/fix", "internal/fix/fix.go", src)
			wantLines(t, got, "shapecheck", tc.want...)
		})
	}
}

// TestDumpSummariesRendersConcreteShapes locks the summary lattice's
// rendered form: a helper returning NewVector(4*h) must summarize as a
// vector of 4 times its first parameter, not an opaque symbol.
func TestDumpSummariesRendersConcreteShapes(t *testing.T) {
	src := "package fix\n\nimport \"mobilstm/internal/tensor\"\n" + interprocHelpers
	pkg := parseFixtureWith(t, "mobilstm/internal/fix", "internal/fix/fix.go", src)
	data, err := DumpSummaries([]*Package{pkg}, NewSummaryCache())
	if err != nil {
		t.Fatalf("DumpSummaries: %v", err)
	}
	out := string(data)
	for _, want := range []string{
		`"mobilstm/internal/fix.gates"`,
		`"vec[4*p0]"`,
		`"mat[4*p0 x p1]"`, // united
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary dump missing %s:\n%s", want, out)
		}
	}
}

// TestSummaryCacheInvalidation proves the source-fingerprint keying: a
// cached summary survives an identical reload but is recomputed when
// the helper's source changes, flipping the caller's finding off.
func TestSummaryCacheInvalidation(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.21\n")
	write("internal/tensor/tensor.go", tensorStub)
	appSrc := `package app

import "tmpmod/internal/tensor"

func buf(h int) tensor.Vector { return tensor.NewVector(%d * h) }

func Use(h int, x tensor.Vector) {
	U := tensor.NewMatrix(3*h, h)
	tensor.Gemv(buf(h), U, x)
}
`
	cache := NewSummaryCache()
	analyze := func() []Finding {
		t.Helper()
		l, err := NewLoader(root)
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		pkgs, err := l.Load()
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		return AnalyzeOptions(pkgs, []*Analyzer{Lookup("shapecheck")}, Options{Cache: cache})
	}
	write("internal/app/app.go", fmt.Sprintf(appSrc, 4))
	wantLines(t, analyze(), "shapecheck", 9)
	// An identical reload must answer from the cache and still flag.
	wantLines(t, analyze(), "shapecheck", 9)
	// Fixing the helper changes its package fingerprint: the stale
	// cached summary must not keep the finding alive.
	write("internal/app/app.go", fmt.Sprintf(appSrc, 3))
	wantLines(t, analyze(), "shapecheck")
}
