package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// --- racecontract -----------------------------------------------------

// TestRaceContractDoubleCheckedOnce is the seeded acceptance fixture:
// the Engine.Baseline shape from the serving engine's history, where a
// sync.Once guards the slow path but a bare fast-path read races with
// the Do body. Both unguarded reads — the condition and the early
// return — are findings; the post-Do read is settled and clean.
func TestRaceContractDoubleCheckedOnce(t *testing.T) {
	src := `package bad

import "sync"

type Model struct{ n int }

type Engine struct {
	once sync.Once
	base *Model
}

func (e *Engine) Baseline() *Model {
	if e.base != nil {
		return e.base
	}
	e.once.Do(func() {
		e.base = &Model{n: 1}
	})
	return e.base
}
`
	got := runFixture(t, Lookup("racecontract"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "racecontract", 13, 14)
	for _, want := range []string{"Engine.base", "once", "sync/atomic"} {
		if !strings.Contains(got[0].Message, want) {
			t.Errorf("message should name the contract (%q): %s", want, got[0].Message)
		}
	}
}

// TestRaceContractWrapperAware drives the contract through summaries: an
// unexported helper writes the field, so the guard evidence and the
// violations both live at call sites, not at the literal store.
func TestRaceContractWrapperAware(t *testing.T) {
	src := `package bad

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) fill() { s.n = 42 }

func (s *S) Init() {
	s.mu.Lock()
	s.fill()
	s.mu.Unlock()
}

func (s *S) Bad() int {
	s.fill()
	return s.n
}
`
	got := runFixture(t, Lookup("racecontract"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "racecontract", 19, 20)
}

// TestRaceContractPublishedWrite is the R2 rule: a write to a value
// already reachable from another goroutine needs a guard even when no
// package contract exists for the field.
func TestRaceContractPublishedWrite(t *testing.T) {
	src := `package bad

type W struct{ n int }

func Leak(w *W, ch chan *W) {
	ch <- w
	w.n = 1
}
`
	got := runFixture(t, Lookup("racecontract"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "racecontract", 7)
	if !strings.Contains(got[0].Message, "published") {
		t.Errorf("message should say the value was published: %s", got[0].Message)
	}
}

// TestRaceContractSpawnPair is the pair rule: a spawned goroutine's
// unguarded field access racing a same-field access positioned after
// the spawn, with at least one side writing.
func TestRaceContractSpawnPair(t *testing.T) {
	src := `package bad

type W struct{ n int }

func Pair(w *W) {
	go func() { w.n = 1 }()
	_ = w.n
}
`
	got := runFixture(t, Lookup("racecontract"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "racecontract", 6)
}

// TestRaceContractCleanPatterns covers the idioms the analyzer must not
// flag: lock-held writes and reads (defer included), owned locals,
// goroutine-private copies, and the reply-channel handoff where the
// spawned goroutine builds a fresh value and sends it exactly once.
func TestRaceContractCleanPatterns(t *testing.T) {
	src := `package good

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Set(v int) {
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
}

func (s *S) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func Fresh() *S {
	s := &S{}
	s.n = 1
	return s
}

type R struct{ n int }

func Reply() int {
	ch := make(chan *R)
	go func() {
		r := &R{}
		r.n = 1
		ch <- r
	}()
	out := <-ch
	return out.n
}

type Opt struct{ Trace []int }

func Copy(opt Opt, f func(func(int))) {
	f(func(i int) {
		o := opt
		o.Trace = nil
		_ = o
	})
}
`
	got := runFixture(t, Lookup("racecontract"), "mobilstm/internal/good", "internal/good/good.go", src)
	if len(got) != 0 {
		t.Fatalf("clean fixture produced findings:\n%v", got)
	}
}

// --- detfloat ---------------------------------------------------------

func TestDetFloatFlagsReductions(t *testing.T) {
	src := `package bad

func Sum(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x
	}
	return s
}

func Fma(a, b []float32) float32 {
	var s float32
	for i := range a {
		s = s + a[i]*b[i]
	}
	return s
}

func Elementwise(dst, a []float32) {
	for i := range dst {
		dst[i] += a[i]
	}
}

func Wide(xs []float32) float32 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return float32(s)
}

func LoopLocal(xs []float32) {
	for i := range xs {
		var t float32
		t += xs[i]
		_ = t
	}
}
`
	got := runFixture(t, Lookup("detfloat"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "detfloat", 6, 14)
	if !strings.Contains(got[1].Message, "FMA-shaped") {
		t.Errorf("multiply-accumulate should be called out as FMA-shaped: %s", got[1].Message)
	}
	if !strings.Contains(got[0].Message, "serial-equivalence") {
		t.Errorf("message should name the contract: %s", got[0].Message)
	}
}

// TestDetFloatExemptsCanonicalChain: dotRowGeneric in the tensor
// package IS the contract; the same loop under any other name is not.
func TestDetFloatExemptsCanonicalChain(t *testing.T) {
	src := `package tensor

func dotRowGeneric(row, x []float32) float32 {
	var s float32
	for i := range row {
		s += row[i] * x[i]
	}
	return s
}

func Sum(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x
	}
	return s
}
`
	got := runFixture(t, Lookup("detfloat"), "mobilstmfix/internal/tensor", "internal/tensor/kernel.go", src)
	wantLines(t, got, "detfloat", 14)
}

// TestDetFloatFlagsCallShapedFolds: s = f(..., s) is a serial reduction
// through a call — the shape of math.FMA wrappers — and is flagged like
// any other accumulation when it appears outside the sanctioned chains.
func TestDetFloatFlagsCallShapedFolds(t *testing.T) {
	src := `package bad

import "math"

func fold(a, b, acc float32) float32 {
	return float32(math.FMA(float64(a), float64(b), float64(acc)))
}

func Dot(row, x []float32) float32 {
	var s float32
	for i := range row {
		s = fold(row[i], x[i], s)
	}
	return s
}

func Fresh(row, x []float32) []float32 {
	out := make([]float32, len(row))
	for i := range row {
		out[i] = fold(row[i], x[i], 0)
	}
	return out
}
`
	got := runFixture(t, Lookup("detfloat"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "detfloat", 12)
	if !strings.Contains(got[0].Message, "call-shaped") {
		t.Errorf("call fold should be called out as call-shaped: %s", got[0].Message)
	}
}

// TestDetFloatExemptsWideChain: dotRowWideGeneric is the second
// sanctioned chain (the wide FMA fold behind KernelChain); the same
// loop under any other name is still a violation.
func TestDetFloatExemptsWideChain(t *testing.T) {
	src := `package tensor

import "math"

func fma32(a, b, acc float32) float32 {
	return float32(math.FMA(float64(a), float64(b), float64(acc)))
}

func dotRowWideGeneric(row, x []float32) float32 {
	var s float32
	for i := range row {
		s = fma32(row[i], x[i], s)
	}
	return s
}

func dotRowWider(row, x []float32) float32 {
	var s float32
	for i := range row {
		s = fma32(row[i], x[i], s)
	}
	return s
}
`
	got := runFixture(t, Lookup("detfloat"), "mobilstmfix/internal/tensor", "internal/tensor/kernel.go", src)
	wantLines(t, got, "detfloat", 20)
}

// --- goroutinejoin ----------------------------------------------------

func TestGoroutineJoinFlagsLeaks(t *testing.T) {
	src := `package bad

import "sync"

func Leak() {
	go func() {
		_ = 1
	}()
}

func AddAfter() {
	var wg sync.WaitGroup
	go func() { wg.Done() }()
	wg.Add(1)
	wg.Wait()
}
`
	got := runFixture(t, Lookup("goroutinejoin"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "goroutinejoin", 6, 13)
	if !strings.Contains(got[0].Message, "join path") {
		t.Errorf("message should explain the obligation: %s", got[0].Message)
	}
}

// TestGoroutineJoinCleanPatterns covers every join shape the repo uses:
// the Add/Done pair (deferred, direct, and handed to a helper), the
// result-channel handoff, close-as-completion, a channel-bounded body,
// and a spawned method whose receiver field bounds its lifetime (the
// serve worker-loop shape).
func TestGoroutineJoinCleanPatterns(t *testing.T) {
	src := `package good

import "sync"

func Join() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

func Named() {
	var wg sync.WaitGroup
	wg.Add(2)
	go worker(&wg)
	go func() { worker(&wg) }()
	wg.Wait()
}

func Handoff() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

func CloseJoin() {
	ch := make(chan int)
	go func() {
		close(ch)
	}()
	for range ch {
	}
}

func Bound(done chan struct{}) {
	go func() {
		<-done
	}()
}

type Srv struct {
	dispatch chan int
}

func (s *Srv) loop() {
	for range s.dispatch {
	}
}

func (s *Srv) Start() {
	go s.loop()
}
`
	got := runFixture(t, Lookup("goroutinejoin"), "mobilstm/internal/good", "internal/good/good.go", src)
	if len(got) != 0 {
		t.Fatalf("clean fixture produced findings:\n%v", got)
	}
}

// --- kernelcontracts --------------------------------------------------

func TestKernelContractsTensorCoverage(t *testing.T) {
	src := `package tensor

type Vector []float32

type Matrix struct {
	Rows, Cols int
	Data       []float32
}

func Gemv(dst Vector, m *Matrix, x Vector) {}

func FusedMagic(dst Vector, m *Matrix) {}

func Scale(x float32) float32 { return x }
`
	got := runFixture(t, Lookup("kernelcontracts"), "mobilstmfix/internal/tensor", "internal/tensor/tensor.go", src)
	wantLines(t, got, "kernelcontracts", 12)
	if !strings.Contains(got[0].Message, "FusedMagic") || !strings.Contains(got[0].Message, "shapecheck") {
		t.Errorf("message should name the kernel and the registry: %s", got[0].Message)
	}
}

func TestKernelContractsBuilderCoverage(t *testing.T) {
	src := `package kernels

type KernelSpec struct{ Name string }

type Builder struct{}

func (b *Builder) DRS(h, trivial int) KernelSpec { return KernelSpec{} }

func (b *Builder) FusedEW(h, t int) KernelSpec { return KernelSpec{} }

func (b *Builder) Batch(h int) []KernelSpec { return nil }

func (b *Builder) Tissue(h int) (KernelSpec, bool) { return KernelSpec{}, true }

func (b *Builder) helper(h int) KernelSpec { return KernelSpec{} }

func (b *Builder) Name() string { return "" }
`
	got := runFixture(t, Lookup("kernelcontracts"), "mobilstmfix/internal/kernels", "internal/kernels/kernels.go", src)
	wantLines(t, got, "kernelcontracts", 9, 11, 13)
	if !strings.Contains(got[0].Message, "kernelContracts") {
		t.Errorf("message should point at the contract table: %s", got[0].Message)
	}
}

// --- MHP / ConcurrencyInfo --------------------------------------------

// TestConcurrencyInfo checks the package-level map: spawn sites, value
// publications, and the transitive Concurrent/MHP closure over the call
// graph.
func TestConcurrencyInfo(t *testing.T) {
	src := `package conc

type Job struct{ n int }

func helper() {}

func spawned() { helper() }

func Main(ch chan *Job, j *Job) {
	go spawned()
	ch <- j
}

func Solo() {}
`
	pkg := parseFixture(t, "mobilstm/internal/conc", "internal/conc/conc.go", src)
	pass := &Pass{Pkg: pkg}
	ci := pass.Concurrency()

	if len(ci.Spawns) != 1 || !strings.Contains(ci.Spawns[0].Callee, "spawned") {
		t.Fatalf("spawn sites = %+v, want one naming spawned", ci.Spawns)
	}
	if len(ci.Publications) != 1 || ci.Publications[0].Kind != "send" ||
		!strings.Contains(ci.Publications[0].Type, "Job") {
		t.Fatalf("publications = %+v, want one send of *Job", ci.Publications)
	}

	fn := func(name string) *types.Func {
		obj, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("no function %s in fixture", name)
		}
		return obj
	}
	if !ci.Concurrent(fn("spawned")) {
		t.Error("spawned should be concurrent: it is a go target")
	}
	if !ci.Concurrent(fn("helper")) {
		t.Error("helper should be concurrent: spawned calls it")
	}
	if ci.Concurrent(fn("Main")) || ci.Concurrent(fn("Solo")) {
		t.Error("Main and Solo never leave the spawning goroutine")
	}
	if !ci.MHP(fn("Main"), fn("spawned")) {
		t.Error("Main and spawned may overlap: the spawner keeps running")
	}
	if ci.MHP(fn("Main"), fn("Solo")) {
		t.Error("two never-spawned functions are ordered by the call stack")
	}
	if ci.MHP(fn("spawned"), fn("spawned")) != true {
		t.Error("a concurrent function may overlap itself")
	}
}

// TestSummaryConcurrencyFacts checks the per-function facts the
// contract analyzers consume: Spawns, SpawnsParam, DonesParam,
// CtxWaits, and the field-access transfer of unexported helpers.
func TestSummaryConcurrencyFacts(t *testing.T) {
	src := `package facts

import "sync"

func runAsync(f func()) {
	go f()
}

func done(wg *sync.WaitGroup) {
	defer wg.Done()
}

func drain(ch chan int) {
	for range ch {
	}
}

type S struct{ n int }

func (s *S) fill() { s.n = 1 }
`
	pkg := parseFixture(t, "mobilstm/internal/facts", "internal/facts/facts.go", src)
	pass := &Pass{Pkg: pkg}
	sum := func(name string) *FuncSummary {
		obj, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
		s := pass.program().summaryFor(obj)
		if s == nil {
			t.Fatalf("no summary for %s", name)
		}
		return s
	}
	if s := sum("runAsync"); !s.Spawns || len(s.SpawnsParam) != 1 || !s.SpawnsParam[0] {
		t.Errorf("runAsync should spawn its parameter: %+v", s)
	}
	if s := sum("done"); len(s.DonesParam) != 1 || !s.DonesParam[0] {
		t.Errorf("done should Done its WaitGroup parameter: %+v", s)
	}
	if s := sum("drain"); len(s.CtxWaits) != 1 || !s.CtxWaits[0] {
		t.Errorf("drain should wait on its channel parameter: %+v", s)
	}
	obj, _, _ := types.LookupFieldOrMethod(pkg.Types.Scope().Lookup("S").Type(), true, pkg.Types, "fill")
	s := pass.program().summaryFor(obj.(*types.Func))
	if s == nil || len(s.FieldWrites) == 0 || len(s.FieldWrites[0]) != 1 || s.FieldWrites[0][0] != "n" {
		t.Errorf("fill should transfer its receiver field write: %+v", s)
	}
}
