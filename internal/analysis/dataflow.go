package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the intraprocedural dataflow layer the symbolic
// analyzers (shapecheck, float64leak) are built on: a small abstract
// interpreter over go/ast + go/types that propagates client-defined
// facts through local assignments, short variable declarations,
// branches and loops.
//
// The engine owns control flow and the binding environment; a dfClient
// owns the fact domain. Facts attach to refs — storage locations that
// can be named without side effects: plain identifiers (keyed by their
// types.Object) and simple access paths like l.Wf or xf[t] (keyed by a
// canonical spelling plus the root identifier, so reassigning the root
// invalidates them). Anything else (calls, complex indices) never
// carries a persistent fact.
//
// Join semantics are the client's choice via merge: a taint domain
// unions (tainted on either branch stays tainted), a shape domain
// intersects (a fact survives only if both branches agree). Loops are
// approximated by a bounded widening: a few silent trial passes let
// facts established in iteration k reach uses in iteration k+1, then
// one reporting pass runs with the widened environment. Function
// literals are interpreted separately with fresh environments.

// callResultClient is an optional dfClient extension: a client that can
// derive per-result facts for a multi-value call (x, y := f(...)) from
// interprocedural summaries. Returning nil means "no facts" and the
// walker falls back to killing every LHS.
type callResultClient interface {
	evalCallResults(ev *env, call *ast.CallExpr, n int) []any
}

// dfClient is the fact domain plugged into the dataflow walker.
type dfClient interface {
	// evalExpr derives the fact for an expression that is not bound in
	// the environment (constructors, conversions, arithmetic over
	// already-tracked values). Returning nil means "no fact".
	evalExpr(ev *env, e ast.Expr) any
	// merge joins two facts at a control-flow join point; either side
	// may be nil (fact absent on that path). Returning nil drops the
	// binding.
	merge(a, b any) any
	// scrub rewrites a fact after the given ref was reassigned. Facts
	// whose symbolic content mentioned the killed location must degrade
	// (or return nil to be dropped); unrelated facts pass through.
	scrub(f any, killed ref) any
	// check inspects one statement-level node with the environment in
	// force at that point. It runs only during the reporting pass, so
	// it fires exactly once per node.
	check(ev *env, n ast.Node)
}

// ref identifies a storage location facts can attach to.
type ref struct {
	obj   types.Object // non-nil for plain identifiers
	canon string       // canonical spelling of an access path ("l.Wf", "xf[t]")
	root  types.Object // base identifier of a canon path, for invalidation
}

// env is the binding environment at one program point.
type env struct {
	w     *dfWalker
	facts map[ref]any
}

func (w *dfWalker) newEnv() *env {
	return &env{w: w, facts: map[ref]any{}}
}

func (ev *env) clone() *env {
	out := ev.w.newEnv()
	for k, v := range ev.facts {
		out.facts[k] = v
	}
	return out
}

func (ev *env) replaceWith(o *env) { ev.facts = o.facts }

// eval returns the fact for e: a bound ref's fact when one exists,
// otherwise whatever the client derives from the expression itself.
func (ev *env) eval(e ast.Expr) any {
	e = ast.Unparen(e)
	if f, ok := ev.lookup(e); ok {
		return f
	}
	return ev.w.client.evalExpr(ev, e)
}

// lookup returns the fact bound to e's ref, if any, without consulting
// the client.
func (ev *env) lookup(e ast.Expr) (any, bool) {
	r, ok := ev.w.refFor(e)
	if !ok {
		return nil, false
	}
	f, ok := ev.facts[r]
	return f, ok
}

// canonOf exposes the walker's canonical access-path renderer to
// clients that key derived facts on spellings ("rows(l.Wf)").
func (ev *env) canonOf(e ast.Expr) (string, types.Object) {
	return ev.w.canon(e)
}

// loopTrialPasses bounds the widening iterations per loop. Facts here
// flow through plain bindings (no arithmetic growth), so chains longer
// than the bound across a single loop body are not expected; the bound
// trades a true fixpoint for guaranteed termination without fact
// equality tests.
const loopTrialPasses = 3

// dfWalker interprets function bodies for one client.
type dfWalker struct {
	pass      *Pass
	client    dfClient
	reporting bool
	queue     []*ast.FuncLit // literals scheduled for separate interpretation
}

// runDataflow applies the client to every function body in files. Each
// body — and each function literal within one — is interpreted with a
// fresh environment; package-level initializer expressions are checked
// against an empty environment.
func runDataflow(pass *Pass, files []*ast.File, client dfClient) {
	w := &dfWalker{pass: pass, client: client}
	for _, file := range files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					w.funcBody(d.Body)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					w.reporting = true
					ev := w.newEnv()
					for _, v := range vs.Values {
						w.checkExpr(ev, v)
					}
				}
			}
		}
	}
	for len(w.queue) > 0 {
		fl := w.queue[0]
		w.queue = w.queue[1:]
		w.funcBody(fl.Body)
	}
}

// runDataflowFunc interprets a single function body (plus any function
// literals it schedules). Summary extraction uses it to analyze one
// declaration at a time instead of whole files.
func runDataflowFunc(pass *Pass, body *ast.BlockStmt, client dfClient) {
	w := &dfWalker{pass: pass, client: client}
	w.funcBody(body)
	for len(w.queue) > 0 {
		fl := w.queue[0]
		w.queue = w.queue[1:]
		w.funcBody(fl.Body)
	}
}

func (w *dfWalker) funcBody(body *ast.BlockStmt) {
	w.reporting = true
	w.stmt(w.newEnv(), body)
}

func (w *dfWalker) stmt(ev *env, s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(ev, st)
		}
	case *ast.ExprStmt:
		w.checkExpr(ev, s.X)
	case *ast.SendStmt:
		w.checkExpr(ev, s.Chan)
		w.checkExpr(ev, s.Value)
	case *ast.IncDecStmt:
		w.checkNode(ev, s)
		w.kill(ev, s.X)
	case *ast.AssignStmt:
		w.assignStmt(ev, s)
	case *ast.DeclStmt:
		w.declStmt(ev, s)
	case *ast.ReturnStmt:
		// The whole statement is handed to the client so summary
		// extraction can see returns with the environment in force;
		// inspection still reaches every result expression.
		w.checkNode(ev, s)
		for _, r := range s.Results {
			w.killAddrOf(ev, r)
		}
	case *ast.IfStmt:
		w.stmt(ev, s.Init)
		w.checkExpr(ev, s.Cond)
		thenEnv := ev.clone()
		w.stmt(thenEnv, s.Body)
		elseEnv := ev.clone()
		w.stmt(elseEnv, s.Else)
		ev.replaceWith(w.mergeEnvs(thenEnv, elseEnv))
	case *ast.ForStmt:
		w.stmt(ev, s.Init)
		w.loop(ev, func(ev *env) {
			if s.Cond != nil {
				w.checkExpr(ev, s.Cond)
			}
			w.stmt(ev, s.Body)
			w.stmt(ev, s.Post)
		})
	case *ast.RangeStmt:
		w.checkExpr(ev, s.X)
		w.loop(ev, func(ev *env) {
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if e != nil {
					w.kill(ev, e)
				}
			}
			w.stmt(ev, s.Body)
		})
	case *ast.SwitchStmt:
		w.stmt(ev, s.Init)
		if s.Tag != nil {
			w.checkExpr(ev, s.Tag)
		}
		w.clauses(ev, s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(ev, s.Init)
		w.stmt(ev, s.Assign)
		w.clauses(ev, s.Body)
	case *ast.SelectStmt:
		w.clauses(ev, s.Body)
	case *ast.LabeledStmt:
		w.stmt(ev, s.Stmt)
	case *ast.GoStmt:
		w.checkExpr(ev, s.Call)
	case *ast.DeferStmt:
		w.checkExpr(ev, s.Call)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// Jump targets are not modelled; the conservative joins at the
		// enclosing loop/switch already cover early exits.
	}
}

// clauses interprets the case/comm clauses of a switch or select. Each
// clause runs against a copy of the entry environment, and the "no
// clause taken" path keeps the entry environment itself in the join.
func (w *dfWalker) clauses(ev *env, body *ast.BlockStmt) {
	merged := ev.clone()
	for _, cl := range body.List {
		ce := ev.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.checkExpr(ce, e)
			}
			for _, st := range cl.Body {
				w.stmt(ce, st)
			}
		case *ast.CommClause:
			w.stmt(ce, cl.Comm)
			for _, st := range cl.Body {
				w.stmt(ce, st)
			}
		}
		merged = w.mergeEnvs(merged, ce)
	}
	ev.replaceWith(merged)
}

// loop runs body to a bounded fixpoint approximation: silent trial
// passes widen the environment, then — if this invocation is the
// reporting pass — one final pass reports with the widened state. The
// zero-iteration path is preserved because every pass merges back into
// the entry environment instead of replacing it.
func (w *dfWalker) loop(ev *env, body func(*env)) {
	outer := w.reporting
	w.reporting = false
	for i := 0; i < loopTrialPasses; i++ {
		trial := ev.clone()
		body(trial)
		ev.replaceWith(w.mergeEnvs(ev, trial))
	}
	w.reporting = outer
	if !outer {
		return
	}
	trial := ev.clone()
	body(trial)
	ev.replaceWith(w.mergeEnvs(ev, trial))
}

func (w *dfWalker) assignStmt(ev *env, s *ast.AssignStmt) {
	w.checkNode(ev, s)
	for _, r := range s.Rhs {
		w.killAddrOf(ev, r)
	}
	switch {
	case s.Tok == token.DEFINE || s.Tok == token.ASSIGN:
		if len(s.Lhs) == len(s.Rhs) {
			// Evaluate every RHS before binding any LHS: a, b = b, a
			// must read the pre-assignment facts.
			vals := make([]any, len(s.Rhs))
			for i := range s.Rhs {
				vals[i] = ev.eval(s.Rhs[i])
			}
			for i, lh := range s.Lhs {
				w.bind(ev, lh, vals[i])
			}
		} else if vals, ok := w.callResults(ev, s.Rhs, len(s.Lhs)); ok {
			// Multi-value assignment from a call whose callee has a
			// summary: bind each LHS to the summarized result fact.
			for i, lh := range s.Lhs {
				w.bind(ev, lh, vals[i])
			}
		} else {
			// Multi-value assignment with no summary: no facts survive.
			for _, lh := range s.Lhs {
				w.kill(ev, lh)
			}
		}
	default:
		// Compound assignment x op= y: the client's join decides the
		// combined fact (union domains keep taint, intersection
		// domains drop disagreeing shapes).
		combined := w.client.merge(ev.eval(s.Lhs[0]), ev.eval(s.Rhs[0]))
		w.bind(ev, s.Lhs[0], combined)
	}
}

// callResults asks a summary-capable client for the per-result facts of
// a single multi-value call on the RHS of an assignment.
func (w *dfWalker) callResults(ev *env, rhs []ast.Expr, n int) ([]any, bool) {
	if len(rhs) != 1 {
		return nil, false
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	cc, ok := w.client.(callResultClient)
	if !ok {
		return nil, false
	}
	vals := cc.evalCallResults(ev, call, n)
	if len(vals) != n {
		return nil, false
	}
	return vals, true
}

func (w *dfWalker) declStmt(ev *env, s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			w.checkExpr(ev, v)
		}
		if len(vs.Values) == len(vs.Names) {
			for i, name := range vs.Names {
				w.bind(ev, name, ev.eval(vs.Values[i]))
			}
		} else if vals, ok := w.callResults(ev, vs.Values, len(vs.Names)); ok {
			for i, name := range vs.Names {
				w.bind(ev, name, vals[i])
			}
		} else {
			for _, name := range vs.Names {
				w.kill(ev, name)
			}
		}
	}
}

// bind assigns a fact to an lvalue, first invalidating whatever
// depended on its previous value.
func (w *dfWalker) bind(ev *env, lhs ast.Expr, fact any) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	w.kill(ev, lhs)
	if fact == nil {
		return
	}
	if r, ok := w.refFor(lhs); ok {
		ev.facts[r] = fact
	}
}

// kill removes the fact bound to lhs and invalidates dependents: refs
// rooted at the same identifier, canonical paths mentioning it, and
// facts whose symbolic content the client says referenced it.
func (w *dfWalker) kill(ev *env, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	r, ok := w.refFor(lhs)
	if !ok {
		return
	}
	delete(ev.facts, r)
	name := r.canon
	if r.obj != nil {
		name = r.obj.Name()
	}
	for k := range ev.facts {
		if r.obj != nil && (k.obj == r.obj || k.root == r.obj) {
			delete(ev.facts, k)
			continue
		}
		if k.canon != "" && canonMentions(k.canon, name) {
			delete(ev.facts, k)
		}
	}
	for k, f := range ev.facts {
		nf := w.client.scrub(f, r)
		if nf == nil {
			delete(ev.facts, k)
		} else {
			ev.facts[k] = nf
		}
	}
}

// killAddrOf invalidates locations whose address escapes in e: a
// callee holding &x may rewrite x behind the analysis' back.
func (w *dfWalker) killAddrOf(ev *env, e ast.Expr) {
	inspectNoFuncLit(e, func(n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return true
		}
		target := ast.Unparen(u.X)
		if ix, ok := target.(*ast.IndexExpr); ok {
			target = ix.X
		}
		w.kill(ev, target)
		return true
	})
}

// checkExpr runs the client check over an expression and applies its
// side effects (escaping addresses, scheduled function literals).
func (w *dfWalker) checkExpr(ev *env, e ast.Expr) {
	if e == nil {
		return
	}
	w.checkNode(ev, e)
	w.killAddrOf(ev, e)
}

func (w *dfWalker) checkNode(ev *env, n ast.Node) {
	if !w.reporting {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok {
			w.queue = append(w.queue, fl)
			return false
		}
		return true
	})
	w.client.check(ev, n)
}

// mergeEnvs joins two environments key-by-key through the client.
func (w *dfWalker) mergeEnvs(a, b *env) *env {
	out := w.newEnv()
	for k, fa := range a.facts {
		if m := w.client.merge(fa, b.facts[k]); m != nil {
			out.facts[k] = m
		}
	}
	for k, fb := range b.facts {
		if _, seen := a.facts[k]; seen {
			continue
		}
		if m := w.client.merge(nil, fb); m != nil {
			out.facts[k] = m
		}
	}
	return out
}

// refFor resolves an expression to a trackable storage location.
func (w *dfWalker) refFor(e ast.Expr) (ref, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return ref{}, false
		}
		if obj := w.objectOf(e); obj != nil {
			return ref{obj: obj}, true
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if c, root := w.canon(e); c != "" {
			return ref{canon: c, root: root}, true
		}
	}
	return ref{}, false
}

// canon renders a side-effect-free access path ("l.Wf", "xf[t]") as a
// canonical string plus its root identifier's object. Expressions
// containing calls or non-trivial indices are not canonical.
func (w *dfWalker) canon(e ast.Expr) (string, types.Object) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.objectOf(e)
		if obj == nil {
			return "", nil
		}
		return e.Name, obj
	case *ast.SelectorExpr:
		base, root := w.canon(e.X)
		if base == "" {
			return "", nil
		}
		return base + "." + e.Sel.Name, root
	case *ast.IndexExpr:
		base, root := w.canon(e.X)
		if base == "" {
			return "", nil
		}
		switch ix := ast.Unparen(e.Index).(type) {
		case *ast.Ident:
			return base + "[" + ix.Name + "]", root
		case *ast.BasicLit:
			return base + "[" + ix.Value + "]", root
		}
	case *ast.StarExpr:
		base, root := w.canon(e.X)
		if base == "" {
			return "", nil
		}
		return "*" + base, root
	}
	return "", nil
}

func (w *dfWalker) objectOf(id *ast.Ident) types.Object {
	info := w.pass.Pkg.Info
	if info == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// canonMentions reports whether the canonical spelling s names ident as
// one of its path segments ("xf[t]" mentions both xf and t).
func canonMentions(s, ident string) bool {
	if ident == "" {
		return false
	}
	for _, seg := range strings.FieldsFunc(s, func(r rune) bool {
		return r == '.' || r == '[' || r == ']' || r == '(' || r == ')' || r == '*' || r == ' '
	}) {
		if seg == ident {
			return true
		}
	}
	return false
}

// inspectNoFuncLit walks n without descending into function literals —
// their bodies are interpreted separately with fresh environments.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return fn(x)
	})
}
