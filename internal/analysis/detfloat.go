package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// detfloat is the bitwise-determinism guardrail for float32 reductions.
//
// The repo's logits are bitwise identical across kernels, run modes,
// and GOMAXPROCS because every output element is reduced through one
// canonical accumulation chain — dotRowGeneric in internal/tensor (and
// its SSE2 assembly twin, which implements the same 16-lane order). A
// float32 reduction written anywhere else picks its own association
// order, and float addition does not associate: the moment such a loop
// feeds the pipeline, "bitwise identical" silently degrades to
// "approximately equal". This matters most for the roadmap's AVX2/FMA
// fast mode — wider kernels must land as an explicitly gated mode, not
// as an innocuous-looking loop.
//
// A finding is any for/range loop body that accumulates into a float32
// variable declared outside the loop (s += x, s -= x, s = s + x —
// including FMA-shaped s += a*b, and call-shaped s = f(..., s) folds
// like math.FMA wrappers), outside the sanctioned chains. Indexed
// accumulators (dst[j] += ...) are element-wise updates, not
// reductions, and stay legal. Intentional serial reductions that never
// feed the deterministic pipeline (AbsRowSums' L1 norms) carry a
// lint:ignore with a reason.
func init() {
	Register(&Analyzer{
		Name: "detfloat",
		Doc:  "float32 reductions outside the canonical dotRow chain break bitwise determinism",
		Run:  runDetFloat,
	})
}

// detfloatExempt names the sanctioned accumulation chains — the places
// a float32 reduction loop IS the contract rather than a violation:
// the canonical 16-lane chain (dotRowGeneric, mirrored by the SSE2
// assembly) and the wide 32-lane FMA chain (dotRowWideGeneric,
// mirrored by the AVX2 assembly and gated behind KernelChain).
var detfloatExempt = map[string]bool{
	"dotRowGeneric":     true,
	"dotRowWideGeneric": true,
}

func runDetFloat(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	inTensor := strings.HasSuffix(pass.Pkg.ScopePath(), tensorPkgSuffix)
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inTensor && fd.Recv == nil && detfloatExempt[fd.Name.Name] {
				continue
			}
			df := &detFloatWalker{pass: pass, w: &dfWalker{pass: pass}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt:
					findings = append(findings, df.checkLoop(n, n.Body)...)
				case *ast.RangeStmt:
					findings = append(findings, df.checkLoop(n, n.Body)...)
				}
				return true
			})
		}
	}
	return findings
}

type detFloatWalker struct {
	pass *Pass
	w    *dfWalker
}

// checkLoop flags float32 accumulations in body whose accumulator is
// declared outside the loop statement.
func (df *detFloatWalker) checkLoop(loop ast.Node, body *ast.BlockStmt) []Finding {
	var findings []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Nested loops report against their own (innermost) body.
			if n != loop {
				return false
			}
		case *ast.AssignStmt:
			if f, ok := df.accumulation(n, loop); ok {
				findings = append(findings, f)
			}
		}
		return true
	})
	return findings
}

// accumulation recognizes s += x / s -= x / s = s ± x reductions into a
// float32 identifier declared before the loop.
func (df *detFloatWalker) accumulation(s *ast.AssignStmt, loop ast.Node) (Finding, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return Finding{}, false
	}
	id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return Finding{}, false
	}
	obj := df.w.objectOf(id)
	if obj == nil || obj.Pos() >= loop.Pos() {
		return Finding{}, false
	}
	if !isFloat32Basic(obj.Type()) {
		return Finding{}, false
	}
	callShaped := false
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
	case token.ASSIGN:
		switch rhs := ast.Unparen(s.Rhs[0]).(type) {
		case *ast.BinaryExpr:
			// s = s + x (or s + ... anywhere in an additive chain).
			if rhs.Op != token.ADD && rhs.Op != token.SUB {
				return Finding{}, false
			}
			if !mentionsIdent(rhs, obj, df.w) {
				return Finding{}, false
			}
		case *ast.CallExpr:
			// s = f(..., s): a fold through a call — the shape of
			// math.FMA/fma32 wrappers, and every bit as much a serial
			// reduction with its own association order.
			if !mentionsIdent(rhs, obj, df.w) {
				return Finding{}, false
			}
			callShaped = true
		default:
			return Finding{}, false
		}
	default:
		return Finding{}, false
	}
	shape := "float32 reduction"
	switch {
	case callShaped:
		shape = "call-shaped float32 fold"
	case hasMul(s.Rhs[0]):
		shape = "FMA-shaped float32 accumulation"
	}
	return Finding{
		Analyzer: "detfloat",
		Pos:      df.pass.Position(s.Pos()),
		Message: shape + " outside the sanctioned dotRow chains breaks the bitwise " +
			"serial-equivalence contract; reduce through internal/tensor's kernels " +
			"(Dot/Gemv) or gate it behind an explicit fast mode",
	}, true
}

func isFloat32Basic(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float32
}

func mentionsIdent(e ast.Expr, obj types.Object, w *dfWalker) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.objectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func hasMul(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if bin, ok := n.(*ast.BinaryExpr); ok && bin.Op == token.MUL {
			found = true
		}
		return !found
	})
	return found
}
