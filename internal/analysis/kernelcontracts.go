package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// kernelcontracts is the completeness check for shapecheck's contract
// tables. shapecheck verifies call sites against two registries — the
// tensor call-site switch and the kernels.Builder kernelContracts
// table — and a kernel added without a registry entry is silently
// unchecked: every call site type-checks, shapecheck stays green, and
// the first bad dimension surfaces as a runtime Panicf. This analyzer
// closes the gap from the definition side:
//
//   - an exported top-level function in internal/tensor taking kernel
//     data (a Vector or length-checked slice, a Matrix, or a slice of
//     vectors) must appear in tensorKernelCoverage — the names the
//     call-site switch handles, plus the shape-free reductions that
//     are deliberately exempt;
//   - an exported kernels.Builder cost constructor (a method returning
//     KernelSpec, (KernelSpec, bool), or []KernelSpec) must have a
//     kernelContracts row.
//
// Growing either package means updating the matching table in the same
// change, which is exactly the reminder this analyzer encodes.
func init() {
	Register(&Analyzer{
		Name: "kernelcontracts",
		Doc:  "every exported kernel must be registered in shapecheck's contract tables",
		Run:  runKernelContracts,
	})
}

// tensorKernelCoverage lists the exported tensor functions shapecheck
// accounts for: the call-site switch cases, the shape-deriving
// AbsRowSums (handled in vectorFact), and the shape-free single-vector
// reductions ArgMax and MaxAbs, which have no cross-argument dimension
// contract to check.
var tensorKernelCoverage = map[string]bool{
	"Gemv": true, "GemvRows": true, "ParallelGemv": true,
	"Gemm": true, "ParallelGemm": true,
	"PackedGemv": true, "PackedGemvRows": true,
	"PackedGemm": true, "PackedGemmRows": true,
	"WideGemv": true, "WideGemvRows": true,
	"WidePackedGemv": true, "WidePackedGemvRows": true,
	"WidePackedGemm": true, "WidePackedGemmRows": true,
	"Pack": true,
	"Add":  true, "Mul": true, "Axpy": true, "Dot": true,
	"SigmoidVec": true, "HardSigmoidVec": true, "TanhVec": true,
	"AbsRowSums": true,
	"ArgMax":     true, "MaxAbs": true,
}

func runKernelContracts(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	scope := pass.Pkg.ScopePath()
	switch {
	case strings.HasSuffix(scope, tensorPkgSuffix):
		return tensorCoverage(pass)
	case strings.HasSuffix(scope, kernelsPkgSuffix):
		return builderCoverage(pass)
	}
	return nil
}

// tensorCoverage flags exported top-level tensor functions that take
// kernel data but are unknown to shapecheck.
func tensorCoverage(pass *Pass) []Finding {
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			if tensorKernelCoverage[fd.Name.Name] || !takesKernelData(pass, fd) {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: "kernelcontracts",
				Pos:      pass.Position(fd.Pos()),
				Message: fmt.Sprintf("exported kernel tensor.%s is not covered by shapecheck: "+
					"add a call-site case (or a tensorKernelCoverage entry if it has no "+
					"cross-argument shape contract)", fd.Name.Name),
			})
		}
	}
	return findings
}

// takesKernelData reports whether any parameter carries kernel data: a
// length-checked slice, a tensor matrix, or a slice of vectors.
func takesKernelData(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isLengthChecked(t) || isTensorMatrix(t) || isVecSlice(t) {
			return true
		}
	}
	return false
}

// builderCoverage flags exported Builder cost constructors with no
// kernelContracts row.
func builderCoverage(pass *Pass) []Finding {
	var findings []Finding
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			if !isBuilderRecv(pass, fd) || !returnsKernelSpec(pass, fd) {
				continue
			}
			if _, covered := kernelContracts[fd.Name.Name]; covered {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: "kernelcontracts",
				Pos:      pass.Position(fd.Pos()),
				Message: fmt.Sprintf("Builder cost constructor %s has no kernelContracts row: "+
					"record its dimension contract so shapecheck can verify call sites", fd.Name.Name),
			})
		}
	}
	return findings
}

// isBuilderRecv reports whether fd's receiver is (a pointer to) a named
// type called Builder.
func isBuilderRecv(pass *Pass, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Builder"
}

// returnsKernelSpec recognizes the cost-constructor result shapes:
// KernelSpec, (KernelSpec, bool), or []KernelSpec. The spec type is
// matched by name alone so fixtures with a local KernelSpec type
// participate.
func returnsKernelSpec(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := obj.Type().(*types.Signature).Results()
	switch res.Len() {
	case 1:
		t := res.At(0).Type()
		if isKernelSpecNamed(t) {
			return true
		}
		if s, ok := t.Underlying().(*types.Slice); ok {
			return isKernelSpecNamed(s.Elem())
		}
	case 2:
		b, ok := res.At(1).Type().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Bool && isKernelSpecNamed(res.At(0).Type())
	}
	return false
}

func isKernelSpecNamed(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "KernelSpec"
}
