package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// --- fixture plumbing -------------------------------------------------

// tensorStub is a miniature mobilstm/internal/tensor: just enough
// surface for shapecheck fixtures to type-check against the real
// package's shape contracts.
const tensorStub = `package tensor

type Vector []float32

func NewVector(n int) Vector { return make(Vector, n) }

func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

type Matrix struct {
	Rows, Cols int
	Data       []float32
}

func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

func (m *Matrix) Clone() *Matrix { return &Matrix{Rows: m.Rows, Cols: m.Cols} }

func (m *Matrix) RowBlock(lo, hi int) *Matrix {
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

func AbsRowSums(m *Matrix) Vector { return NewVector(m.Rows) }

func Pack(ms ...*Matrix) *Matrix { return ms[0] }

func Gemv(dst Vector, m *Matrix, x Vector)                                  {}
func GemvRows(dst Vector, m *Matrix, x Vector, skip []bool, f float32)      {}
func Gemm(dst, a, b *Matrix)                                                {}
func PackedGemv(dsts []Vector, m *Matrix, x Vector)                         {}
func PackedGemvRows(dsts []Vector, m *Matrix, x Vector, s []bool, f float32) {}
func PackedGemm(dst *Matrix, m *Matrix, xs []Vector)                        {}
func PackedGemmRows(dst *Matrix, m *Matrix, xs []Vector, sk [][]bool, f float32) {}
func ParallelGemv(dst Vector, m *Matrix, x Vector)                          {}
func ParallelGemm(dst, a, b *Matrix)                                        {}
func WideGemv(dst Vector, m *Matrix, x Vector)                              {}
func WideGemvRows(dst Vector, m *Matrix, x Vector, skip []bool, f float32)  {}
func WidePackedGemv(dsts []Vector, m *Matrix, x Vector)                     {}
func WidePackedGemvRows(dsts []Vector, m *Matrix, x Vector, s []bool, f float32) {}
func WidePackedGemm(dst *Matrix, m *Matrix, xs []Vector)                    {}
func WidePackedGemmRows(dst *Matrix, m *Matrix, xs []Vector, sk [][]bool, f float32) {}
func Add(dst, a, b Vector)                                                  {}
func Mul(dst, a, b Vector)                                                  {}
func Axpy(dst Vector, alpha float32, x Vector)                              {}
func Dot(a, b Vector) float32                                               { return 0 }
func SigmoidVec(dst, x Vector)                                              {}
func TanhVec(dst, x Vector)                                                 {}
`

// kernelsStub is a miniature mobilstm/internal/kernels: the Builder
// cost constructors whose dimension contracts shapecheck enforces.
const kernelsStub = `package kernels

type KernelSpec struct{}

type DRSMode int

type Builder struct{}

func (b *Builder) DRS(h, trivial int) KernelSpec                         { return KernelSpec{} }
func (b *Builder) SgemvUfic(h, skipRows int, mode DRSMode) KernelSpec    { return KernelSpec{} }
func (b *Builder) SgemmTissueUfic(h, t, skipRows int) (KernelSpec, bool) { return KernelSpec{}, true }
func (b *Builder) SgemmWx(h, e, n int) KernelSpec                        { return KernelSpec{} }
func (b *Builder) RequestBatch(h, length, layers, batch int) []KernelSpec { return nil }
func (b *Builder) RequestBatchRagged(h, layers int, lens []int) []KernelSpec { return nil }
func (b *Builder) GRUDRS(h, trivial int) KernelSpec                       { return KernelSpec{} }
func (b *Builder) GRUSgemvUh(h, skipRows int, mode DRSMode) KernelSpec    { return KernelSpec{} }
func (b *Builder) GRUSgemmWx(h, e, n int) KernelSpec                      { return KernelSpec{} }
`

// reportStub is a miniature mobilstm/internal/report for maporder
// fixtures.
const reportStub = `package report

type Table struct{ rows [][]string }

func NewTable(title string, cols ...string) *Table { return &Table{} }

func (t *Table) AddRow(cells ...string) {}
`

// stubImporter resolves a fixed set of module-internal import paths
// from in-memory sources and everything else from the source importer.
type stubImporter struct {
	fset *token.FileSet
	std  types.Importer
	srcs map[string]string
	pkgs map[string]*types.Package
}

func newStubImporter(fset *token.FileSet) *stubImporter {
	return &stubImporter{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		srcs: map[string]string{
			"mobilstm/internal/tensor":  tensorStub,
			"mobilstm/internal/report":  reportStub,
			"mobilstm/internal/kernels": kernelsStub,
		},
		pkgs: map[string]*types.Package{},
	}
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.pkgs[path]; ok {
		return p, nil
	}
	src, ok := si.srcs[path]
	if !ok {
		return si.std.Import(path)
	}
	f, err := parser.ParseFile(si.fset, path+"/stub.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	cfg := types.Config{Importer: si}
	p, err := cfg.Check(path, si.fset, []*ast.File{f}, nil)
	if err != nil {
		return nil, err
	}
	si.pkgs[path] = p
	return p, nil
}

// parseFixtureWith type-checks a fixture that imports the in-memory
// tensor/report stubs.
func parseFixtureWith(t *testing.T, importPath, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := newInfo()
	cfg := types.Config{
		Importer: newStubImporter(fset),
		Error:    func(error) {}, // soft errors (unused vars) are fine in fixtures
	}
	pkgT, _ := cfg.Check(importPath, fset, []*ast.File{f}, info)
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      pkgT,
		Info:       info,
	}
}

func runFixtureWith(t *testing.T, a *Analyzer, importPath, filename, src string) []Finding {
	t.Helper()
	return a.Run(&Pass{Pkg: parseFixtureWith(t, importPath, filename, src)})
}

// --- shapecheck -------------------------------------------------------

func TestShapeCheckFiresOnDimMismatch(t *testing.T) {
	// The seeded acceptance fixture: dst allocated h long against the
	// united 4h×e matrix.
	src := `package bad

import "mobilstm/internal/tensor"

func f(h, e int, x tensor.Vector) {
	U := tensor.NewMatrix(4*h, e)
	dst := tensor.NewVector(h)
	tensor.Gemv(dst, U, x)
}
`
	got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "shapecheck", 8)
	for _, want := range []string{"Gemv", "dst length", "h", "4*h"} {
		if !strings.Contains(got[0].Message, want) {
			t.Errorf("message should report the inferred shapes (%q): %s", want, got[0].Message)
		}
	}
}

func TestShapeCheckFiresOnPackedMismatch(t *testing.T) {
	// The seeded united-kernel fixture: a GRU-style 3h united matrix
	// driven into an LSTM-sized 4h destination.
	src := `package bad

import "mobilstm/internal/tensor"

func f(h, e int, xs []tensor.Vector) {
	W := tensor.Pack(tensor.NewMatrix(h, e), tensor.NewMatrix(h, e), tensor.NewMatrix(h, e))
	wx := tensor.NewMatrix(7, 4*h)
	tensor.PackedGemm(wx, W, xs)
}
`
	got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "shapecheck", 8)
	for _, want := range []string{"PackedGemm", "dst cols", "4*h", "united rows", "3*h"} {
		if !strings.Contains(got[0].Message, want) {
			t.Errorf("message should report the united shapes (%q): %s", want, got[0].Message)
		}
	}
}

func TestShapeCheckFiresOnBatchGemmMismatch(t *testing.T) {
	// The batch-B recurrent kernel driven with a GRU-sized 3h united
	// matrix into an LSTM-sized 4h destination, plus a skip-mask set
	// sized for a different batch.
	src := `package bad

import "mobilstm/internal/tensor"

func f(h int) {
	U := tensor.Pack(tensor.NewMatrix(h, h), tensor.NewMatrix(h, h), tensor.NewMatrix(h, h))
	out := tensor.NewMatrix(7, 4*h)
	xs := make([]tensor.Vector, 7)
	sk := make([][]bool, 9)
	tensor.PackedGemmRows(out, U, xs, sk, 0)
}
`
	got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "shapecheck", 10, 10)
	for _, want := range []string{"PackedGemmRows", "dst cols", "4*h", "united rows", "3*h"} {
		if !strings.Contains(got[0].Message, want) {
			t.Errorf("message should report the united shapes (%q): %s", want, got[0].Message)
		}
	}
	for _, want := range []string{"skips count", "9", "xs count"} {
		if !strings.Contains(got[1].Message, want) {
			t.Errorf("message should report the mask-set size (%q): %s", want, got[1].Message)
		}
	}
}

func TestShapeCheckFiresOnWideKernelMismatch(t *testing.T) {
	// The Wide* family carries the same dimension contracts as the
	// canonical kernels; the switch must check it under its own names.
	src := `package bad

import "mobilstm/internal/tensor"

func f(h, e int, x tensor.Vector) {
	U := tensor.NewMatrix(4*h, e)
	dst := tensor.NewVector(h)
	tensor.WideGemv(dst, U, x)
	W := tensor.Pack(tensor.NewMatrix(h, e), tensor.NewMatrix(h, e), tensor.NewMatrix(h, e))
	wx := tensor.NewMatrix(7, 4*h)
	xs := make([]tensor.Vector, 7)
	tensor.WidePackedGemm(wx, W, xs)
}
`
	got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "shapecheck", 8, 12)
	for _, want := range []string{"WideGemv", "dst length", "h", "4*h"} {
		if !strings.Contains(got[0].Message, want) {
			t.Errorf("message should report the inferred shapes (%q): %s", want, got[0].Message)
		}
	}
	for _, want := range []string{"WidePackedGemm", "dst cols", "4*h", "united rows", "3*h"} {
		if !strings.Contains(got[1].Message, want) {
			t.Errorf("message should report the united shapes (%q): %s", want, got[1].Message)
		}
	}
}

func TestShapeCheckWideKernelClean(t *testing.T) {
	// Shape-consistent wide calls stay silent, including the batched
	// recurrent kernel with a per-member mask set.
	src := `package ok

import "mobilstm/internal/tensor"

func f(h, b int, x tensor.Vector) {
	uni := tensor.Pack(tensor.NewMatrix(h, h), tensor.NewMatrix(h, h),
		tensor.NewMatrix(h, h), tensor.NewMatrix(h, h))
	dst := tensor.NewVector(4 * h)
	tensor.WideGemv(dst, uni, x)
	gather := make([]tensor.Vector, b)
	masks := make([][]bool, b)
	out := tensor.NewMatrix(b, 4*h)
	tensor.WidePackedGemmRows(out, uni, gather, masks, 0)
}
`
	if got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("consistent wide kernel calls must pass: %v", got)
	}
}

func TestShapeCheckBatchArenaSlicingClean(t *testing.T) {
	// The batch arena pattern of the lstm/gru batch path: per-member
	// gates and masks carved out of flat slabs, the batched kernel views
	// re-headed over scratch storage. Everything is shape-consistent and
	// must stay silent — this is the fixture twin of the real
	// runLayerBatch hot loop.
	src := `package ok

import "mobilstm/internal/tensor"

func f(h, b int, U *tensor.Matrix, xs []tensor.Vector) {
	uni := tensor.Pack(tensor.NewMatrix(h, h), tensor.NewMatrix(h, h),
		tensor.NewMatrix(h, h), tensor.NewMatrix(h, h))
	maskBuf := make([]bool, b*h)
	masks := make([][]bool, b)
	gather := make([]tensor.Vector, b)
	for i := 0; i < b; i++ {
		masks[i] = maskBuf[i*h : (i+1)*h]
		gather[i] = tensor.NewVector(h)
	}
	out := tensor.NewMatrix(b, 4*h)
	tensor.PackedGemmRows(out, uni, gather, masks, 0)
	tensor.PackedGemmRows(out, uni, gather, nil, 0)
}
`
	if got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("consistent batch arena slicing must pass: %v", got)
	}
}

func TestShapeCheckTable(t *testing.T) {
	// Each case is the body of func f(h, e int, x, y tensor.Vector);
	// want lists the fixture lines (the first body statement is line 6)
	// expected to fire.
	cases := []struct {
		name string
		body string
		want []int
	}{
		{
			name: "clean pipeline with derived and allocated shapes",
			body: `
	U := tensor.NewMatrix(4*h, h)
	W := tensor.NewMatrix(4*h, e)
	hv := tensor.NewVector(h)
	gates := tensor.NewVector(4 * h)
	pre := tensor.NewVector(4 * h)
	tensor.Gemv(gates, U, hv)
	tensor.Gemv(pre, W, hv.Clone())
	tensor.Add(gates, gates, pre)
	row := U.Row(2)
	tensor.Mul(row, row, hv)`,
			want: nil,
		},
		{
			name: "gemv x against matrix cols",
			body: `
	U := tensor.NewMatrix(4*h, h)
	gates := tensor.NewVector(4 * h)
	wide := tensor.NewVector(2 * h)
	tensor.Gemv(gates, U, wide)`,
			want: []int{9},
		},
		{
			name: "gemvrows skip mask against rows",
			body: `
	U := tensor.NewMatrix(4*h, h)
	gates := tensor.NewVector(4 * h)
	hv := tensor.NewVector(h)
	skip := make([]bool, h)
	tensor.GemvRows(gates, U, hv, skip, 0)`,
			want: []int{10},
		},
		{
			name: "gemm inner and output shapes",
			body: `
	a := tensor.NewMatrix(4*h, h)
	b := tensor.NewMatrix(h, e)
	bad := tensor.NewMatrix(2*h, e)
	good := tensor.NewMatrix(4*h, e)
	tensor.Gemm(good, a, b)
	tensor.Gemm(bad, a, b)`,
			want: []int{11},
		},
		{
			name: "element-wise lengths",
			body: `
	a := tensor.NewVector(h)
	b := tensor.NewVector(2 * h)
	tensor.Mul(a, a, b)
	tensor.SigmoidVec(a, b)
	tensor.Axpy(a, 2, b)
	_ = tensor.Dot(a, b)`,
			want: []int{8, 9, 10, 11},
		},
		{
			name: "abs row sums and len() derive matching dims",
			body: `
	U := tensor.NewMatrix(4*h, h)
	d := tensor.AbsRowSums(U)
	gates := tensor.NewVector(U.Rows)
	tensor.Add(gates, gates, d)
	short := tensor.NewVector(len(d) / 2)
	_ = short`,
			want: nil,
		},
		{
			name: "incomparable bases stay silent",
			body: `
	U := tensor.NewMatrix(4*h, e)
	tensor.Gemv(x, U, y)`,
			want: nil,
		},
		{
			name: "reassigning the dimension variable kills stale shapes",
			body: `
	v := tensor.NewVector(h)
	h = 2 * h
	w := tensor.NewVector(h)
	tensor.Add(v, v, w)`,
			want: nil,
		},
		{
			name: "branch merge keeps agreeing shapes",
			body: `
	v := tensor.NewVector(h)
	if e > 0 {
		v = tensor.NewVector(h)
	}
	w := tensor.NewVector(2 * h)
	tensor.Add(v, v, w)`,
			want: []int{11},
		},
		{
			name: "branch merge drops disagreeing shapes",
			body: `
	v := tensor.NewVector(h)
	if e > 0 {
		v = tensor.NewVector(e)
	}
	w := tensor.NewVector(2 * h)
	tensor.Add(v, v, w)`,
			want: nil,
		},
		{
			name: "facts reach uses inside loops",
			body: `
	U := tensor.NewMatrix(4*h, h)
	hv := tensor.NewVector(h)
	for t := 0; t < e; t++ {
		tensor.Gemv(hv, U, hv)
	}`,
			want: []int{9},
		},
		{
			name: "facts reach uses inside nested loops, reported once",
			body: `
	U := tensor.NewMatrix(4*h, h)
	hv := tensor.NewVector(h)
	for t := 0; t < e; t++ {
		for s := 0; s < e; s++ {
			tensor.Gemv(hv, U, hv)
		}
	}`,
			want: []int{10},
		},
		{
			name: "united pack pipeline stays clean",
			body: `
	Wf := tensor.NewMatrix(h, e)
	Wi := tensor.NewMatrix(h, e)
	Wc := tensor.NewMatrix(h, e)
	Wo := tensor.NewMatrix(h, e)
	W := tensor.Pack(Wf, Wi, Wc, Wo)
	wx := tensor.NewMatrix(7, 4*h)
	var xs []tensor.Vector
	tensor.PackedGemm(wx, W, xs)
	ufic := W.RowBlock(h, 4*h)
	skip := make([]bool, h)
	var dsts []tensor.Vector
	tensor.PackedGemvRows(dsts, ufic, tensor.NewVector(e), skip, 0)`,
			want: nil,
		},
		{
			name: "packed gemm dst cols against united rows",
			body: `
	Wf := tensor.NewMatrix(h, e)
	Wi := tensor.NewMatrix(h, e)
	Wc := tensor.NewMatrix(h, e)
	W := tensor.Pack(Wf, Wi, Wc)
	bad := tensor.NewMatrix(7, 4*h)
	var xs []tensor.Vector
	tensor.PackedGemm(bad, W, xs)`,
			want: []int{12},
		},
		{
			name: "packed skip mask must tile the united matrix",
			body: `
	U := tensor.NewMatrix(4*h, h)
	ufic := U.RowBlock(h, 4*h)
	skip := make([]bool, 2*h)
	hv := tensor.NewVector(h)
	var dsts []tensor.Vector
	tensor.PackedGemvRows(dsts, ufic, hv, skip, 0)`,
			want: []int{11},
		},
		{
			name: "pack rejects disagreeing columns",
			body: `
	a := tensor.NewMatrix(h, e)
	b := tensor.NewMatrix(h, 2*e)
	u := tensor.Pack(a, b)
	_ = u`,
			want: []int{8},
		},
		{
			name: "parallel kernels check like their serial twins",
			body: `
	U := tensor.NewMatrix(4*h, h)
	dst := tensor.NewVector(h)
	tensor.ParallelGemv(dst, U, tensor.NewVector(h))`,
			want: []int{8},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(`package fix

import "mobilstm/internal/tensor"

func f(h, e int, x, y tensor.Vector) {%s
}
`, tc.body)
			got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/fix", "internal/fix/fix.go", src)
			wantLines(t, got, "shapecheck", tc.want...)
		})
	}
}

func TestShapeCheckSilentOnRepoIdioms(t *testing.T) {
	// Struct-field matrices against vectors allocated from their Rows:
	// the derived rows(n.Head) base must match on both sides.
	src := `package fix

import "mobilstm/internal/tensor"

type net struct{ Head *tensor.Matrix }

func f(n *net, last tensor.Vector) tensor.Vector {
	logits := tensor.NewVector(n.Head.Rows)
	tensor.Gemv(logits, n.Head, last)
	return logits
}
`
	got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/fix", "internal/fix/fix.go", src)
	wantLines(t, got, "shapecheck")
}

// --- float64leak on the dataflow engine -------------------------------

func TestFloat64LeakTaintTable(t *testing.T) {
	// Each case is the body of func f(x float32, n int) float64; want
	// lists the fixture lines (body starts at line 4) expected to fire.
	cases := []struct {
		name string
		body string
		want []int
	}{
		{
			name: "taint survives assignment chains",
			body: `
	y := float64(x)
	z := y
	w := z * 2
	return w`,
			want: []int{6},
		},
		{
			name: "reassignment kills taint",
			body: `
	y := float64(x)
	y = 1.5
	return y * 2`,
			want: nil,
		},
		{
			name: "float32 round-trip launders",
			body: `
	y := float64(float32(float64(x)))
	return y * 2`,
			want: []int{5},
		},
		{
			name: "taint joins across branches",
			body: `
	y := 1.0
	if n > 0 {
		y = float64(x)
	}
	return y * 2`,
			want: []int{8},
		},
		{
			name: "untainted on both branches stays clean",
			body: `
	y := 1.0
	if n > 0 {
		y = 2.0
	}
	return y * 2`,
			want: nil,
		},
		{
			name: "taint carries across loop iterations",
			body: `
	vals := []float64{1, 2}
	y := 1.0
	for i := 0; i < n; i++ {
		_ = y + vals[i]
		y = float64(x)
	}
	return 0`,
			want: []int{7},
		},
		{
			name: "taint from an outer iteration reaches nested loops",
			body: `
	y := 1.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			_ = y * 2
		}
		y = float64(x)
	}
	return 0`,
			want: []int{7},
		},
		{
			name: "compound assignment on a tainted accumulator",
			body: `
	acc := float64(x)
	acc += 1
	return 0`,
			want: []int{5},
		},
		{
			name: "function literals get fresh environments",
			body: `
	y := float64(x)
	f := func(y float64) float64 { return y * 2 }
	return f(y)`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := fmt.Sprintf(`package fix

func f(x float32, n int) float64 {%s
}
`, tc.body)
			got := runFixture(t, Lookup("float64leak"), "mobilstm/internal/fix", "internal/fix/fix.go", src)
			wantLines(t, got, "float64leak", tc.want...)
		})
	}
}

// --- maporder ---------------------------------------------------------

func TestMapOrderFires(t *testing.T) {
	src := `package bad

import "mobilstm/internal/report"

func Fig(scores map[string]float64) *report.Table {
	t := report.NewTable("fig")
	for k, v := range scores {
		_ = k
		_ = v
		t.AddRow(k)
	}
	return t
}
`
	got := runFixtureWith(t, Lookup("maporder"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "maporder", 7)
	if !strings.Contains(got[0].Message, "sorted") {
		t.Errorf("finding should tell the reader to sort: %s", got[0].Message)
	}
}

func TestMapOrderSilentWithoutReport(t *testing.T) {
	// Per-key accumulation in a function that never touches report
	// output is order-insensitive.
	src := `package ok

func total(scores map[string]float64) float64 {
	var s float64
	for _, v := range scores {
		s += v
	}
	return s
}
`
	got := runFixtureWith(t, Lookup("maporder"), "mobilstm/internal/ok", "internal/ok/ok.go", src)
	wantLines(t, got, "maporder")
}

func TestMapOrderExemptsReportPackage(t *testing.T) {
	src := `package report

type Table struct{}

func render(cells map[string]string, t *Table) {
	for k := range cells {
		_ = k
	}
}
`
	got := runFixtureWith(t, Lookup("maporder"), "mobilstm/internal/report", "internal/report/render.go", src)
	wantLines(t, got, "maporder")
}

// --- loader test-package support --------------------------------------

// writeTestModule lays out a throwaway module with in-package and
// external test files exercising the test-scoped analyzers.
func writeTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"internal/foo/foo.go": `package foo

func Double(x float32) float32 { return 2 * x }
`,
		"internal/foo/foo_test.go": `package foo

import (
	"math/rand"
	"testing"
)

func TestDouble(t *testing.T) {
	v := float32(rand.Intn(3))
	w := float64(Double(v)) * 2 // float64leak bait: must NOT fire in tests
	if w < 0 {
		panic("negative")
	}
}
`,
		"internal/foo/export_test.go": `package foo_test

import "testing"

func TestExternal(t *testing.T) {
	t.Log("xtest package loads too")
}
`,
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderIncludeTests(t *testing.T) {
	root := writeTestModule(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.IncludeTests = true
	pkgs, err := l.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	base := byPath["tmpmod/internal/foo"]
	tests := byPath["tmpmod/internal/foo [tests]"]
	xtests := byPath["tmpmod/internal/foo_test"]
	if base == nil || tests == nil || xtests == nil {
		t.Fatalf("want base, [tests] and _test packages, got %v", keysOf(byPath))
	}
	if base.ForTest != "" {
		t.Errorf("base package ForTest = %q, want empty", base.ForTest)
	}
	for _, p := range []*Package{tests, xtests} {
		if p.ForTest != "tmpmod/internal/foo" {
			t.Errorf("%s ForTest = %q, want tmpmod/internal/foo", p.ImportPath, p.ForTest)
		}
		if p.ScopePath() != "tmpmod/internal/foo" {
			t.Errorf("%s ScopePath = %q", p.ImportPath, p.ScopePath())
		}
		for _, terr := range p.TypeErrors {
			t.Errorf("%s type error: %v", p.ImportPath, terr)
		}
	}
	// The test package carries only the test files — the base sources
	// are type-checked with them but must not be re-analyzed.
	if len(tests.Files) != 1 {
		t.Fatalf("[tests] package has %d files, want 1 (only _test.go)", len(tests.Files))
	}

	findings := Analyze(pkgs, All())
	var names []string
	for _, f := range findings {
		names = append(names, f.Analyzer)
	}
	// globalrand (import + call) and panicpolicy fire inside the test
	// file; float64leak is not test-scoped, so its bait stays silent.
	want := []string{"globalrand", "globalrand", "panicpolicy"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("test-package findings = %v (%v), want analyzers %v", names, findings, want)
	}
}

func TestLoaderExcludesTestsByDefault(t *testing.T) {
	root := writeTestModule(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if p.ForTest != "" || strings.Contains(p.ImportPath, "test") {
			t.Errorf("test package %s loaded without IncludeTests", p.ImportPath)
		}
	}
}

func keysOf(m map[string]*Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// --- whole-repo regression gate ---------------------------------------

// TestRepoLintClean runs the full analyzer suite (test packages
// included) over the module itself: the tree must stay lint-clean, so
// any PR that introduces a finding — or an unreasoned suppression —
// fails here before CI even reaches the mobilstm-lint step.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	l.IncludeTests = true
	pkgs, err := l.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.ImportPath, terr)
		}
	}
	findings := Analyze(pkgs, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("repo is not lint-clean: %d finding(s); fix them or add //lint:ignore with a reason", len(findings))
	}
}

// --- shapecheck: kernel contract table --------------------------------

func TestShapeCheckKernelContracts(t *testing.T) {
	// Definite violations of the Builder contract table: a DRS trivial
	// count above h, a skipRows above the 3h united-matrix bound, and
	// literal shape arguments below one.
	src := `package bad

import "mobilstm/internal/kernels"

func f(b *kernels.Builder, h int) {
	b.DRS(h, 2*h)
	b.SgemvUfic(h, 4*h, 0)
	b.SgemmTissueUfic(h, 4, 3*h)
	b.RequestBatch(h, 16, 2, 0)
	b.SgemmWx(0, h, 16)
	b.DRS(h, -1)
	b.RequestBatchRagged(h, 0, nil)
}
`
	got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "shapecheck", 6, 7, 9, 10, 11, 12)
	for _, want := range []string{"kernels.DRS", "trivial", "2*h", "1*(h)"} {
		if !strings.Contains(got[0].Message, want) {
			t.Errorf("message should state the contract (%q): %s", want, got[0].Message)
		}
	}
	if !strings.Contains(got[2].Message, "batch = 0") {
		t.Errorf("literal minimum violation should name the argument: %s", got[2].Message)
	}
}

func TestShapeCheckKernelContractsSilentWhenLegal(t *testing.T) {
	// Legal calls and dataflow-unknown arguments (the sched call sites,
	// where skip counts come from measured statistics) stay silent.
	src := `package ok

import "mobilstm/internal/kernels"

func measured() int { return 3 }

func f(b *kernels.Builder, h int) {
	b.DRS(h, h)
	b.SgemvUfic(h, 3*h, 0)
	b.SgemvUfic(h, measured(), 0)
	b.SgemmTissueUfic(h, 4, measured())
	b.RequestBatch(h, 16, 2, 4)
	b.RequestBatchRagged(h, 2, nil)
	b.SgemmWx(h, h, 16)
}
`
	if got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/ok", "internal/ok/ok.go", src); len(got) != 0 {
		t.Fatalf("legal and unknown kernel dims must pass: %v", got)
	}
}

func TestShapeCheckGRUKernelContracts(t *testing.T) {
	// The GRU cost constructors carry the same contract shape as the
	// LSTM ones: trivial/skip row counts bounded by h, literal dims >= 1.
	// The last three calls are legal and must stay silent.
	src := `package bad

import "mobilstm/internal/kernels"

func f(b *kernels.Builder, h int) {
	b.GRUDRS(h, 2*h)
	b.GRUSgemvUh(h, 2*h, 0)
	b.GRUSgemmWx(0, h, 16)
	b.GRUDRS(h, h)
	b.GRUSgemvUh(h, h, 0)
	b.GRUSgemmWx(h, h, 16)
}
`
	got := runFixtureWith(t, Lookup("shapecheck"), "mobilstm/internal/bad", "internal/bad/bad.go", src)
	wantLines(t, got, "shapecheck", 6, 7, 8)
}
