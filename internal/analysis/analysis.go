// Package analysis is mobilstm's project-specific static-analysis
// framework: a stdlib-only (go/ast, go/parser, go/types, go/build — no
// golang.org/x/tools) driver core with a pluggable analyzer registry.
//
// The analyzers encode the repository's reproducibility contract: the
// simulator's headline numbers (Table I timing/energy, DRS accuracy per
// threshold set) are only trustworthy if randomness is seeded, float32
// numerics don't silently round-trip through float64, library code
// cannot crash the serving path, concurrency primitives aren't copied,
// and threshold constants live in one place. Each analyzer documents
// which of those invariants it guards.
//
// Findings can be suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or on its own line directly above it, or for a
// whole file with
//
//	//lint:file-ignore <analyzer> <reason>
//
// anywhere in the file. The reason is mandatory; a directive without
// one is itself reported (analyzer name "ignore"). <analyzer> may be a
// comma-separated list.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Analyzer is one registered check. Run inspects a single type-checked
// package and returns its findings; it must not mutate the Pass.
type Analyzer struct {
	// Name is the identifier used in -enable/-disable flags and
	// lint:ignore directives.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Tests marks analyzers that also run on _test.go packages.
	// Most analyzers guard production numerics and skip tests, where
	// deliberate panics and testing/quick's *math/rand.Rand signatures
	// are idiomatic; determinism rules (globalrand, panicpolicy) stay on.
	Tests bool
	// Run produces the findings for one package.
	Run func(*Pass) []Finding
}

// registry holds the analyzers in registration order.
var registry []*Analyzer

// Register adds an analyzer to the global registry. It is called from
// init functions of the analyzer files.
func Register(a *Analyzer) {
	registry = append(registry, a)
}

// All returns the registered analyzers in a stable order.
func All() []*Analyzer {
	out := append([]*Analyzer(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the registered analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range registry {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Options configures an Analyze run.
type Options struct {
	// Stale reports every lint:ignore directive that no longer
	// suppresses any finding, as analyzer "stale" at the directive's
	// position. A directive is exempt when an analyzer it names was not
	// part of the run (a "*" directive requires the full registry), so
	// partial runs don't cry stale over suppressions they cannot judge.
	Stale bool
	// Cache carries interprocedural summaries across runs, keyed by
	// package source fingerprints. Nil uses the process-wide default.
	Cache *SummaryCache
}

// Analyze runs the given analyzers over the packages, applies
// lint:ignore suppressions, and returns the surviving findings sorted
// by position. Malformed directives surface as findings themselves,
// and stale suppressions are reported by default.
func Analyze(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return AnalyzeOptions(pkgs, analyzers, Options{Stale: true})
}

// AnalyzeOptions is Analyze with explicit options.
func AnalyzeOptions(pkgs []*Package, analyzers []*Analyzer, opts Options) []Finding {
	var findings []Finding
	var sups []suppression
	prog := newProgram(pkgs, opts.Cache)
	for _, pkg := range pkgs {
		pass := &Pass{Pkg: pkg, prog: prog}
		for _, a := range analyzers {
			if pkg.ForTest != "" && !a.Tests {
				continue
			}
			findings = append(findings, a.Run(pass)...)
		}
		s, malformed := collectSuppressions(pkg.Fset, pkg.Files)
		for i := range s {
			s[i].fromTests = pkg.ForTest != ""
		}
		sups = append(sups, s...)
		findings = append(findings, malformed...)
	}
	findings = filterSuppressed(findings, sups)
	if opts.Stale {
		findings = append(findings, staleFindings(sups, analyzers)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}

// suppression is one parsed lint:ignore / lint:file-ignore directive.
type suppression struct {
	file      string
	analyzers []string // names, or ["*"]
	line      int      // effective target line; 0 for file-wide
	wholeFile bool
	pos       token.Position // the directive itself, for stale reporting
	fromTests bool           // collected from a _test.go package
	matched   bool           // suppressed at least one finding this run
}

func (s suppression) covers(f Finding) bool {
	if f.Pos.Filename != s.file {
		return false
	}
	if !s.wholeFile && f.Pos.Line != s.line {
		return false
	}
	for _, name := range s.analyzers {
		if name == "*" || name == f.Analyzer {
			return true
		}
	}
	return false
}

const (
	ignorePrefix     = "//lint:ignore"
	fileIgnorePrefix = "//lint:file-ignore"
)

// collectSuppressions parses lint directives out of the files'
// comments. A line directive written on its own line targets the next
// line; written at the end of a code line it targets that line.
// Directives missing an analyzer name or a reason are returned as
// "ignore" findings.
func collectSuppressions(fset *token.FileSet, files []*ast.File) ([]suppression, []Finding) {
	var sups []suppression
	var malformed []Finding
	for _, file := range files {
		// ownLine marks comment groups that start a line, so the
		// directive shifts down to the following line of code.
		lineHasCode := map[int]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
				return true
			}
			lineHasCode[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				wholeFile := strings.HasPrefix(text, fileIgnorePrefix+" ") || text == fileIgnorePrefix
				isLine := !wholeFile && (strings.HasPrefix(text, ignorePrefix+" ") || text == ignorePrefix)
				if !wholeFile && !isLine {
					continue
				}
				pos := fset.Position(c.Pos())
				prefix := ignorePrefix
				if wholeFile {
					prefix = fileIgnorePrefix
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
				parts := strings.SplitN(rest, " ", 2)
				if len(parts) < 2 || parts[0] == "" || strings.TrimSpace(parts[1]) == "" {
					malformed = append(malformed, Finding{
						Analyzer: "ignore",
						Pos:      pos,
						Message:  fmt.Sprintf("malformed %s directive: want %s <analyzer> <reason>", prefix, prefix),
					})
					continue
				}
				s := suppression{
					file:      pos.Filename,
					analyzers: strings.Split(parts[0], ","),
					wholeFile: wholeFile,
					pos:       pos,
				}
				if !wholeFile {
					s.line = pos.Line
					if !lineHasCode[pos.Line] {
						s.line = pos.Line + 1
					}
				}
				sups = append(sups, s)
			}
		}
	}
	return sups, malformed
}

// filterSuppressed drops covered findings and marks every suppression
// that matched at least one, so staleFindings can report the rest.
func filterSuppressed(findings []Finding, sups []suppression) []Finding {
	if len(sups) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for i := range sups {
			if sups[i].covers(f) {
				sups[i].matched = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// staleFindings reports every suppression that matched nothing, when
// the run was able to judge it: each named analyzer ran (on the kind of
// package the directive lives in), and a "*" directive requires the
// full registry. "ignore" and "stale" are driver-produced and always
// judgeable.
func staleFindings(sups []suppression, ran []*Analyzer) []Finding {
	ranByName := map[string]*Analyzer{}
	for _, a := range ran {
		ranByName[a.Name] = a
	}
	fullRegistry := true
	for _, a := range All() {
		if ranByName[a.Name] == nil {
			fullRegistry = false
			break
		}
	}
	var out []Finding
	for i := range sups {
		s := &sups[i]
		if s.matched || !staleEligible(s, ranByName, fullRegistry) {
			continue
		}
		directive := ignorePrefix
		if s.wholeFile {
			directive = fileIgnorePrefix
		}
		out = append(out, Finding{
			Analyzer: "stale",
			Pos:      s.pos,
			Message: fmt.Sprintf("%s %s no longer suppresses any finding; remove it",
				strings.TrimPrefix(directive, "//"), strings.Join(s.analyzers, ",")),
		})
	}
	return out
}

func staleEligible(s *suppression, ran map[string]*Analyzer, fullRegistry bool) bool {
	for _, name := range s.analyzers {
		switch name {
		case "*":
			if !fullRegistry {
				return false
			}
		case "ignore", "stale":
			// driver findings: always produced, always judgeable
		default:
			a := ran[name]
			if a == nil {
				return false
			}
			// A directive in a test file is only judgeable by analyzers
			// that run on test packages.
			if s.fromTests && !a.Tests {
				return false
			}
		}
	}
	return true
}
