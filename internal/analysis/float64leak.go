package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// float64leak flags float64 arithmetic performed on float32-origin
// values — the precision-drift hazard for the DRS near-zero comparisons
// and the relevance thresholds.
//
// The simulator's tensor data is float32 end to end (matching the
// mobile GPU's FP32 ALUs). A comparison like float64(o[j]) < alpha
// evaluates the threshold against a value carrying ~29 extra mantissa
// bits of round-off pattern; whether an element counts as "trivial"
// can then differ from the float32 pipeline that produced it, shifting
// skip fractions and therefore Table I. The designated home for
// intentional float64 excursions is internal/tensor/activation.go
// (transcendental wrappers, where math.Exp/math.Tanh require float64);
// anything else needs a lint:ignore with a reason.
//
// The analyzer runs as a taint domain on the dataflow engine: taint
// originates at a float64(float32-expr) conversion and survives local
// assignments, short variable declarations and arithmetic chains — so
// v := float64(x); d := v * v is flagged at the multiply even though
// the conversion happened two statements earlier. Taint clears when a
// value is converted back to float32. Conversions that merely cross an
// API boundary (plain assignment, return, non-math call argument) pass;
// each offending operation (arithmetic, comparison, negation, compound
// assignment, math.* argument) reports once, at its outermost node.
func init() {
	Register(&Analyzer{
		Name: "float64leak",
		Doc:  "flag float64 arithmetic on float32-origin values outside internal/tensor/activation.go",
		Run:  runFloat64Leak,
	})
}

// float64leakAllow are file suffixes where float32→float64 excursions
// are the point (transcendental activation wrappers).
var float64leakAllow = []string{"internal/tensor/activation.go"}

func runFloat64Leak(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	var files []*ast.File
	for _, file := range pass.Pkg.Files {
		if !allowedFile(pass.Position(file.Pos()).Filename, float64leakAllow) {
			files = append(files, file)
		}
	}
	c := &taintClient{pass: pass}
	runDataflow(pass, files, c)
	return c.findings
}

// taintFact marks a float64 value whose bits originated in a float32.
type taintFact struct{}

type taintClient struct {
	pass     *Pass
	findings []Finding
}

func (c *taintClient) evalExpr(ev *env, e ast.Expr) any {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if c.pass.f32to64(e) != nil {
			return taintFact{}
		}
		// A float64→float64 re-conversion keeps the origin; any other
		// conversion or call (including float32(x)) launders it.
		if conv, arg := c.conversion(e); conv != nil && isBasicKind(conv, types.Float64) {
			if c.tainted(ev, arg) {
				return taintFact{}
			}
		}
	case *ast.BinaryExpr:
		if arithOnly(e.Op) && (c.tainted(ev, e.X) || c.tainted(ev, e.Y)) {
			return taintFact{}
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB && c.tainted(ev, e.X) {
			return taintFact{}
		}
	}
	return nil
}

// merge unions: tainted on either path stays tainted.
func (c *taintClient) merge(a, b any) any {
	if a != nil {
		return a
	}
	return b
}

// scrub: taint carries no symbolic references to other locations.
func (c *taintClient) scrub(f any, killed ref) any { return f }

func (c *taintClient) check(ev *env, n ast.Node) {
	inspectNoFuncLit(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.BinaryExpr:
			if arithOrCompare(x.Op) && (c.tainted(ev, x.X) || c.tainted(ev, x.Y)) {
				c.report(x, opContext(x.Op))
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.SUB && c.tainted(ev, x.X) {
				c.report(x, "negation")
				return false
			}
		case *ast.AssignStmt:
			if compoundArith(x.Tok) && len(x.Lhs) == 1 && len(x.Rhs) == 1 &&
				(c.tainted(ev, x.Rhs[0]) || c.tainted(ev, x.Lhs[0])) {
				c.report(x, "compound assignment")
				return false
			}
		case *ast.CallExpr:
			if c.pass.isMathCall(x) {
				for _, a := range x.Args {
					if c.tainted(ev, a) {
						c.report(x, "math.* call")
						return false
					}
				}
			}
		}
		return true
	})
}

func (c *taintClient) tainted(ev *env, e ast.Expr) bool {
	_, ok := ev.eval(e).(taintFact)
	return ok
}

func (c *taintClient) report(n ast.Node, context string) {
	c.findings = append(c.findings, Finding{
		Analyzer: "float64leak",
		Pos:      c.pass.Position(n.Pos()),
		Message:  fmt.Sprintf("float64 %s on a float32-origin value risks threshold drift; keep the computation in float32 or route it through internal/tensor/activation.go", context),
	})
}

// conversion returns (target type, argument) when call is a type
// conversion, else (nil, nil).
func (c *taintClient) conversion(call *ast.CallExpr) (types.Type, ast.Expr) {
	if len(call.Args) != 1 {
		return nil, nil
	}
	tv, ok := c.pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, nil
	}
	return tv.Type, call.Args[0]
}

func allowedFile(name string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// f32to64 reports whether e (modulo parens) is a float64(x) conversion
// of a float32-typed x, returning the conversion call.
func (p *Pass) f32to64(e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isBasicKind(tv.Type, types.Float64) {
		return nil
	}
	if !isBasicKind(p.TypeOf(call.Args[0]), types.Float32) {
		return nil
	}
	return call
}

// isMathCall reports whether the call's callee is a function from the
// standard math package.
func (p *Pass) isMathCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Pkg.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "math"
}

func isBasicKind(t types.Type, kind types.BasicKind) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func arithOnly(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		return true
	}
	return false
}

func arithOrCompare(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func compoundArith(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		return true
	}
	return false
}

func opContext(op token.Token) string {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return "comparison"
	}
	return "arithmetic"
}
