package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// float64leak flags float64 arithmetic performed on values that were
// just converted from float32 — the precision-drift hazard for the DRS
// near-zero comparisons and the relevance thresholds.
//
// The simulator's tensor data is float32 end to end (matching the
// mobile GPU's FP32 ALUs). A comparison like float64(o[j]) < alpha
// evaluates the threshold against a value carrying ~29 extra mantissa
// bits of round-off pattern; whether an element counts as "trivial"
// can then differ from the float32 pipeline that produced it, shifting
// skip fractions and therefore Table I. The designated home for
// intentional float64 excursions is internal/tensor/activation.go
// (transcendental wrappers, where math.Exp/math.Tanh require float64);
// anything else needs a lint:ignore with a reason.
//
// The analysis is local to the conversion site: it flags a
// float64(float32-expr) conversion used as an operand of arithmetic or
// comparison, as a += style right-hand side, under unary minus, or as
// an argument to a math.* call. Conversions that merely cross an API
// boundary (plain assignment, return, non-math call argument) pass.
func init() {
	Register(&Analyzer{
		Name: "float64leak",
		Doc:  "flag float64 arithmetic on float32-origin values outside internal/tensor/activation.go",
		Run:  runFloat64Leak,
	})
}

// float64leakAllow are file suffixes where float32→float64 excursions
// are the point (transcendental activation wrappers).
var float64leakAllow = []string{"internal/tensor/activation.go"}

func runFloat64Leak(pass *Pass) []Finding {
	if pass.Pkg.Info == nil {
		return nil
	}
	var out []Finding
	report := func(conv *ast.CallExpr, context string) {
		out = append(out, Finding{
			Analyzer: "float64leak",
			Pos:      pass.Position(conv.Pos()),
			Message:  fmt.Sprintf("float64 %s on a float32-origin value risks threshold drift; keep the computation in float32 or route it through internal/tensor/activation.go", context),
		})
	}
	for _, file := range pass.Pkg.Files {
		name := pass.Position(file.Pos()).Filename
		if allowedFile(name, float64leakAllow) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !arithOrCompare(n.Op) {
					return true
				}
				for _, e := range []ast.Expr{n.X, n.Y} {
					if conv := pass.f32to64(e); conv != nil {
						report(conv, opContext(n.Op))
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.SUB {
					if conv := pass.f32to64(n.X); conv != nil {
						report(conv, "negation")
					}
				}
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
					return true
				}
				for _, e := range n.Rhs {
					if conv := pass.f32to64(e); conv != nil {
						report(conv, "compound assignment")
					}
				}
			case *ast.CallExpr:
				if !pass.isMathCall(n) {
					return true
				}
				for _, e := range n.Args {
					if conv := pass.f32to64(e); conv != nil {
						report(conv, "math.* call")
					}
				}
			}
			return true
		})
	}
	return out
}

func allowedFile(name string, suffixes []string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// f32to64 reports whether e (modulo parens) is a float64(x) conversion
// of a float32-typed x, returning the conversion call.
func (p *Pass) f32to64(e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isBasicKind(tv.Type, types.Float64) {
		return nil
	}
	if !isBasicKind(p.TypeOf(call.Args[0]), types.Float32) {
		return nil
	}
	return call
}

// isMathCall reports whether the call's callee is a function from the
// standard math package.
func (p *Pass) isMathCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Pkg.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "math"
}

func isBasicKind(t types.Type, kind types.BasicKind) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func arithOrCompare(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func opContext(op token.Token) string {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return "comparison"
	}
	return "arithmetic"
}
