// Package userstudy simulates the paper's 30-participant user study
// (§VI-E): each participant experiences replays of an NLP application
// under four schemes — baseline, AO, BPA, and the user-oriented UO that
// tunes the thresholds to the individual's preferences — and rates
// satisfaction 1..5 from the response delay and the output accuracy.
//
// The panel substitutes the in-person study (DESIGN.md §2): participants
// differ in delay tolerance, sensitivity to errors, the just-noticeable
// accuracy loss, and their preferred accuracy; ratings carry per-replay
// noise. The Fig. 18 ordering (UO > AO > baseline > BPA) is a consequence
// of the preference model, not an assertion.
package userstudy

import (
	"mobilstm/internal/rng"
	"mobilstm/internal/tradeoff"
)

// Participant models one study subject.
type Participant struct {
	// DelayWeight scales annoyance with response delay (in units of the
	// baseline delay).
	DelayWeight float64
	// ErrWeight scales annoyance per unit of perceived accuracy loss.
	ErrWeight float64
	// JND is the just-noticeable accuracy loss; losses below it do not
	// register (the paper's 2% is the population's typical value).
	JND float64
	// PrefAccuracy is the accuracy the participant asks of the UO
	// scheme.
	PrefAccuracy float64
}

// Panel draws n participants from the population distribution. A
// participant's preferred accuracy tracks their own just-noticeable loss:
// people ask the system for roughly the fidelity they can actually
// perceive, which is what makes per-user tuning (UO) effective.
func Panel(n int, r *rng.RNG) []Participant {
	out := make([]Participant, n)
	for i := range out {
		jnd := r.Uniform(0.012, 0.03)
		out[i] = Participant{
			DelayWeight:  r.Uniform(0.7, 1.7),
			ErrWeight:    r.Uniform(12, 32),
			JND:          jnd,
			PrefAccuracy: 1 - jnd*r.Uniform(0.9, 1.3),
		}
	}
	return out
}

// Scheme identifies a rated configuration.
type Scheme string

// The four schemes of Fig. 18.
const (
	SchemeBaseline Scheme = "baseline"
	SchemeAO       Scheme = "AO"
	SchemeBPA      Scheme = "BPA"
	SchemeUO       Scheme = "UO"
)

// Schemes lists the four schemes in display order.
func Schemes() []Scheme {
	return []Scheme{SchemeBaseline, SchemeAO, SchemeBPA, SchemeUO}
}

// Rate returns one replay's satisfaction score in [1, 5]: 5 minus the
// delay annoyance minus the perceived-error annoyance, with rating noise.
func (p Participant) Rate(delay, accuracy float64, r *rng.RNG) float64 {
	return p.rateWithNoise(delay, accuracy, r.Norm()*0.3)
}

// rateWithNoise scores with an externally supplied noise draw, enabling
// common-random-number comparisons across schemes.
func (p Participant) rateWithNoise(delay, accuracy, noise float64) float64 {
	s := p.Expected(delay, accuracy) + noise
	if s < 1 {
		s = 1
	}
	if s > 5 {
		s = 5
	}
	return s
}

// Expected is the participant's noise-free satisfaction for an operating
// point — what the UO controller maximizes when the user states their
// preferences.
func (p Participant) Expected(delay, accuracy float64) float64 {
	perceived := (1 - accuracy) - p.JND
	if perceived < 0 {
		perceived = 0
	}
	return 5 - p.DelayWeight*delay - p.ErrWeight*perceived
}

// UOSet returns the threshold set the user-oriented scheme selects for
// this participant: the set maximizing their expected satisfaction over
// the application's trade-off curve (§VI-E: the thresholds are tuned
// dynamically from the individual user's preferences).
func (p Participant) UOSet(curve tradeoff.Curve) int {
	best, bestV := 0, -1e18
	for _, pt := range curve {
		if pt.Speedup <= 0 {
			continue
		}
		if v := p.Expected(1/pt.Speedup, pt.Accuracy); v > bestV {
			best, bestV = pt.Set, v
		}
	}
	return best
}

// Result is the averaged study outcome for one application.
type Result struct {
	App    string
	Scores map[Scheme]float64
	// ChosenUOSet records the mean threshold set the UO scheme selected
	// across participants.
	ChosenUOSet float64
}

// Run executes the study for one application given its combined-mode
// trade-off curve: every participant rates `replays` replays per scheme
// (the paper uses 100 replays split 25 per scheme), and scores are
// averaged over the panel.
func Run(app string, curve tradeoff.Curve, panel []Participant, replays int, r *rng.RNG) Result {
	res := Result{App: app, Scores: make(map[Scheme]float64)}
	if len(curve) == 0 || replays <= 0 || len(panel) == 0 {
		return res
	}
	ao := curve.At(curve.AO())
	bpa := curve.At(curve.BPA())
	base := curve.At(0)
	perScheme := replays / len(Schemes())
	if perScheme < 1 {
		perScheme = 1
	}
	var uoSets float64
	for _, p := range panel {
		uo := curve.At(p.UOSet(curve))
		uoSets += float64(uo.Set)
		points := map[Scheme]tradeoff.Point{
			SchemeBaseline: base,
			SchemeAO:       ao,
			SchemeBPA:      bpa,
			SchemeUO:       uo,
		}
		// Common random numbers: every scheme is rated under the same
		// per-replay mood draw, so scheme comparisons reflect the
		// operating points rather than sampling luck.
		sums := map[Scheme]float64{}
		for k := 0; k < perScheme; k++ {
			noise := r.Norm() * 0.3
			for scheme, pt := range points {
				sums[scheme] += p.rateWithNoise(1/pt.Speedup, pt.Accuracy, noise)
			}
		}
		for scheme, sum := range sums {
			res.Scores[scheme] += sum / float64(perScheme)
		}
	}
	for s := range res.Scores {
		res.Scores[s] /= float64(len(panel))
	}
	res.ChosenUOSet = uoSets / float64(len(panel))
	return res
}
