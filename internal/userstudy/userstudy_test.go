package userstudy

import (
	"testing"

	"mobilstm/internal/rng"
	"mobilstm/internal/tradeoff"
)

func testCurve() tradeoff.Curve {
	return tradeoff.Curve{
		{Set: 0, Speedup: 1.0, Accuracy: 1.000},
		{Set: 1, Speedup: 1.3, Accuracy: 0.998},
		{Set: 2, Speedup: 1.6, Accuracy: 0.995},
		{Set: 3, Speedup: 1.9, Accuracy: 0.990},
		{Set: 4, Speedup: 2.2, Accuracy: 0.985},
		{Set: 5, Speedup: 2.5, Accuracy: 0.980},
		{Set: 6, Speedup: 2.8, Accuracy: 0.965},
		{Set: 7, Speedup: 3.1, Accuracy: 0.945},
		{Set: 8, Speedup: 3.4, Accuracy: 0.915},
		{Set: 9, Speedup: 3.7, Accuracy: 0.870},
		{Set: 10, Speedup: 4.0, Accuracy: 0.800},
	}
}

func TestPanelDistributions(t *testing.T) {
	panel := Panel(200, rng.New(1))
	if len(panel) != 200 {
		t.Fatalf("panel size %d", len(panel))
	}
	for _, p := range panel {
		if p.DelayWeight < 0.7 || p.DelayWeight >= 1.7 {
			t.Fatalf("delay weight %v", p.DelayWeight)
		}
		if p.JND < 0.012 || p.JND >= 0.03 {
			t.Fatalf("JND %v", p.JND)
		}
		if p.PrefAccuracy <= 0.9 || p.PrefAccuracy >= 1 {
			t.Fatalf("preferred accuracy %v", p.PrefAccuracy)
		}
	}
}

func TestRateBounds(t *testing.T) {
	r := rng.New(2)
	p := Participant{DelayWeight: 1.5, ErrWeight: 30, JND: 0.02, PrefAccuracy: 0.98}
	for i := 0; i < 500; i++ {
		s := p.Rate(r.Float64()*2, 0.7+0.3*r.Float64(), r)
		if s < 1 || s > 5 {
			t.Fatalf("score %v out of [1,5]", s)
		}
	}
}

func TestRatePrefersFastAccurate(t *testing.T) {
	// Deterministic comparison: average many ratings.
	p := Participant{DelayWeight: 1.2, ErrWeight: 25, JND: 0.02}
	mean := func(delay, acc float64, seed uint64) float64 {
		r := rng.New(seed)
		var s float64
		for i := 0; i < 2000; i++ {
			s += p.Rate(delay, acc, r)
		}
		return s / 2000
	}
	fast := mean(0.4, 0.99, 3)
	slow := mean(1.0, 0.99, 3)
	if fast <= slow {
		t.Fatalf("faster not preferred: %v vs %v", fast, slow)
	}
	accurate := mean(0.4, 0.995, 4)
	sloppy := mean(0.4, 0.85, 4)
	if accurate <= sloppy {
		t.Fatalf("more accurate not preferred: %v vs %v", accurate, sloppy)
	}
}

func TestImperceptibleLossNotPenalized(t *testing.T) {
	p := Participant{DelayWeight: 1, ErrWeight: 30, JND: 0.02}
	r1, r2 := rng.New(7), rng.New(7)
	exact := p.Rate(0.5, 1.0, r1)
	slight := p.Rate(0.5, 0.985, r2)
	if exact != slight {
		t.Fatalf("sub-JND loss penalized: %v vs %v", exact, slight)
	}
}

func TestRunFig18Ordering(t *testing.T) {
	r := rng.New(0x57ed)
	panel := Panel(30, r.Split())
	res := Run("test", testCurve(), panel, 100, r.Split())
	uo := res.Scores[SchemeUO]
	ao := res.Scores[SchemeAO]
	base := res.Scores[SchemeBaseline]
	bpa := res.Scores[SchemeBPA]
	// The paper's Fig. 18 ordering.
	if !(uo >= ao && ao > base && base > bpa) {
		t.Fatalf("ordering violated: UO %v AO %v base %v BPA %v", uo, ao, base, bpa)
	}
	if res.ChosenUOSet <= 0 {
		t.Fatal("UO never left the baseline set")
	}
}

func TestRunEmptyInputs(t *testing.T) {
	r := rng.New(1)
	if res := Run("x", nil, Panel(3, r), 10, r); len(res.Scores) != 0 {
		t.Fatal("empty curve produced scores")
	}
	if res := Run("x", testCurve(), nil, 10, r); len(res.Scores) != 0 {
		t.Fatal("empty panel produced scores")
	}
}

func TestSchemesList(t *testing.T) {
	if len(Schemes()) != 4 {
		t.Fatal("scheme list")
	}
}
