package intracell

import (
	"math"
	"testing"
	"testing/quick"

	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

func TestTrivialRowsBasic(t *testing.T) {
	o := tensor.Vector{0.01, 0.5, 0.09, 0.3}
	skip, n := TrivialRows(o, 0.1)
	if n != 2 || !skip[0] || skip[1] || !skip[2] || skip[3] {
		t.Fatalf("skip=%v n=%d", skip, n)
	}
}

func TestTrivialRowsDisabled(t *testing.T) {
	o := tensor.Vector{0.01, 0.5}
	if skip, n := TrivialRows(o, 0); skip != nil || n != 0 {
		t.Fatal("alpha 0 skipped rows")
	}
	if skip, n := TrivialRows(o, -1); skip != nil || n != 0 {
		t.Fatal("negative alpha skipped rows")
	}
}

func TestTrivialRowsBoundary(t *testing.T) {
	// Strictly-below semantics: o == alpha is kept.
	o := tensor.Vector{0.1}
	if _, n := TrivialRows(o, 0.1); n != 0 {
		t.Fatal("o == alpha skipped")
	}
}

func TestTissueTrivialRowsIntersection(t *testing.T) {
	os := []tensor.Vector{
		{0.01, 0.5, 0.05},
		{0.02, 0.02, 0.5},
	}
	skip, n := TissueTrivialRows(os, 0.1)
	// Only element 0 is trivial in every cell.
	if n != 1 || !skip[0] || skip[1] || skip[2] {
		t.Fatalf("skip=%v n=%d", skip, n)
	}
}

func TestTissueTrivialRowsSingleCellMatchesPerCell(t *testing.T) {
	r := rng.New(5)
	o := tensor.NewVector(64)
	for i := range o {
		o[i] = r.Float32()
	}
	s1, n1 := TrivialRows(o, 0.3)
	s2, n2 := TissueTrivialRows([]tensor.Vector{o}, 0.3)
	if n1 != n2 {
		t.Fatalf("counts differ: %d vs %d", n1, n2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("skip sets differ at %d", i)
		}
	}
}

func TestTissueTrivialRowsEmpty(t *testing.T) {
	if skip, n := TissueTrivialRows(nil, 0.1); skip != nil || n != 0 {
		t.Fatal("empty tissue skipped rows")
	}
}

// Property: the tissue intersection never skips more rows than any single
// cell would.
func TestTissueIntersectionSubsetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dim := 1 + r.Intn(40)
		cells := 1 + r.Intn(5)
		os := make([]tensor.Vector, cells)
		for c := range os {
			os[c] = tensor.NewVector(dim)
			for j := range os[c] {
				os[c][j] = r.Float32()
			}
		}
		alpha := 0.05 + 0.4*r.Float64()
		tSkip, tN := TissueTrivialRows(os, alpha)
		for _, o := range os {
			cSkip, cN := TrivialRows(o, alpha)
			if tN > cN {
				return false
			}
			for j := range tSkip {
				if tSkip[j] && !cSkip[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Values: quickSeedVals()}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipFraction(t *testing.T) {
	if f := SkipFraction(5, 10); f != 0.5 {
		t.Fatalf("SkipFraction = %v", f)
	}
	if f := SkipFraction(1, 0); f != 0 {
		t.Fatalf("SkipFraction div0 = %v", f)
	}
}

func TestPruneMatrix(t *testing.T) {
	m := tensor.NewMatrix(2, 2)
	copy(m.Data, []float32{0.05, -0.5, 0.2, -0.01})
	p, density := PruneMatrix(m, 0.1)
	if p.Data[0] != 0 || p.Data[3] != 0 {
		t.Fatalf("small elements kept: %v", p.Data)
	}
	if p.Data[1] != -0.5 || p.Data[2] != 0.2 {
		t.Fatalf("large elements changed: %v", p.Data)
	}
	if density != 0.5 {
		t.Fatalf("density %v", density)
	}
	// Original untouched.
	if m.Data[0] != 0.05 {
		t.Fatal("PruneMatrix mutated input")
	}
}

func TestPruneDensityConsistency(t *testing.T) {
	r := rng.New(7)
	m := tensor.NewMatrix(50, 50)
	for i := range m.Data {
		m.Data[i] = r.NormF32(0, 1)
	}
	_, d1 := PruneMatrix(m, 0.5)
	d2 := PruneDensity([]*tensor.Matrix{m}, 0.5)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("densities differ: %v vs %v", d1, d2)
	}
}

func TestPruneEpsForDensity(t *testing.T) {
	r := rng.New(9)
	ms := []*tensor.Matrix{tensor.NewMatrix(80, 80), tensor.NewMatrix(80, 80)}
	for _, m := range ms {
		for i := range m.Data {
			m.Data[i] = r.NormF32(0, 0.3)
		}
	}
	for _, target := range []float64{0.2, 0.315, 0.7} {
		eps := PruneEpsForDensity(ms, target)
		got := PruneDensity(ms, eps)
		if math.Abs(got-target) > 0.02 {
			t.Errorf("target %v: got density %v (eps %v)", target, got, eps)
		}
	}
}

func TestPruneEpsForDensityEdges(t *testing.T) {
	ms := []*tensor.Matrix{tensor.NewMatrix(4, 4)}
	if eps := PruneEpsForDensity(ms, 0); !math.IsInf(float64(eps), 1) {
		t.Fatalf("density 0 eps = %v", eps)
	}
	if eps := PruneEpsForDensity(ms, 1); eps != 0 {
		t.Fatalf("density 1 eps = %v", eps)
	}
}

// Gaussian weights pruned at ~1.016 sigma leave ~31.5% density — the
// calibration behind the paper's 37% data-movement reduction under
// value+index CSR (0.315 * 2 = 0.63).
func TestGaussianPruneMatchesAnalytic(t *testing.T) {
	r := rng.New(11)
	m := tensor.NewMatrix(200, 200)
	for i := range m.Data {
		m.Data[i] = r.NormF32(0, 1)
	}
	d := PruneDensity([]*tensor.Matrix{m}, 1.016)
	if math.Abs(d-0.315) > 0.02 {
		t.Fatalf("density at 1.016 sigma = %v, want ~0.315", d)
	}
}
