// Package intracell implements the paper's intra-cell level optimization
// (§V): Dynamic Row Skip (DRS), which identifies rows of the recurrent
// weight matrices U_f, U_i, U_c whose contribution to the cell output h_t
// is trivial because the corresponding output-gate element o_t[j] is near
// zero — h_t[j] = o_t[j]*tanh(c_t[j]) vanishes regardless of c_t[j].
// It also implements the element-granularity zero-pruning baseline
// [Han et al., Deep Compression] the paper compares against (Fig. 16).
package intracell

import (
	"math"

	"mobilstm/internal/tensor"
)

// TrivialRows returns skip[j] = (o[j] < alpha) and the number of trivial
// rows. skip[j] marks hidden element j, i.e. rows j of each of U_f, U_i,
// U_c (3 skipped matrix rows per marked element). With alpha <= 0 nothing
// is skipped and TrivialRows returns (nil, 0).
func TrivialRows(o tensor.Vector, alpha float64) ([]bool, int) {
	if alpha <= 0 {
		return nil, 0
	}
	a := float32(alpha)
	skip := make([]bool, len(o))
	count := 0
	for j, v := range o {
		if v < a {
			skip[j] = true
			count++
		}
	}
	return skip, count
}

// TissueTrivialRows returns the skip set shared by a whole tissue: a row
// may be disabled in the per-tissue Sgemm only if it is trivial for every
// cell in the tissue (the gemm computes each surviving row against all
// batched columns). Because row triviality is dominated by the
// output-gate bias, the intersection stays close to the per-cell rate.
func TissueTrivialRows(os []tensor.Vector, alpha float64) ([]bool, int) {
	if alpha <= 0 || len(os) == 0 {
		return nil, 0
	}
	return TissueTrivialRowsInto(make([]bool, len(os[0])), os, alpha)
}

// TissueTrivialRowsInto is TissueTrivialRows writing the mask into a
// caller-owned buffer of length len(os[0]), so per-tissue calls on the
// inference hot path do not allocate. Every element of dst is rewritten
// (stale contents from a previous tissue are harmless). It returns
// (nil, 0) when DRS is off, like TissueTrivialRows.
func TissueTrivialRowsInto(dst []bool, os []tensor.Vector, alpha float64) ([]bool, int) {
	if alpha <= 0 || len(os) == 0 {
		return nil, 0
	}
	a := float32(alpha)
	dim := len(os[0])
	if len(dst) != dim {
		tensor.Panicf("intracell: TissueTrivialRowsInto mask length %d, want %d", len(dst), dim)
	}
	count := 0
	for j := 0; j < dim; j++ {
		trivial := true
		for _, o := range os {
			if len(o) != dim {
				tensor.Panicf("intracell: TissueTrivialRows dimension mismatch")
			}
			if o[j] >= a {
				trivial = false
				break
			}
		}
		dst[j] = trivial
		if trivial {
			count++
		}
	}
	return dst, count
}

// SkipFraction returns count/len as a convenience for reporting.
func SkipFraction(count, dim int) float64 {
	if dim == 0 {
		return 0
	}
	return float64(count) / float64(dim)
}

// PruneMatrix returns a copy of m with every element of magnitude below
// eps zeroed — offline magnitude pruning as in [31]. The returned density
// is the surviving fraction.
func PruneMatrix(m *tensor.Matrix, eps float32) (*tensor.Matrix, float64) {
	out := m.Clone()
	kept := 0
	for i, v := range out.Data {
		if v > -eps && v < eps {
			out.Data[i] = 0
		} else {
			kept++
		}
	}
	if len(out.Data) == 0 {
		return out, 0
	}
	return out, float64(kept) / float64(len(out.Data))
}

// PruneDensity reports the surviving element fraction of the matrices
// under magnitude pruning at eps, without materializing pruned copies.
func PruneDensity(ms []*tensor.Matrix, eps float32) float64 {
	var total, kept int
	for _, m := range ms {
		total += len(m.Data)
		for _, v := range m.Data {
			if v <= -eps || v >= eps {
				kept++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(kept) / float64(total)
}

// PruneEpsForDensity searches the magnitude threshold that leaves
// approximately the target density of elements: the calibration knob the
// zero-pruning baseline exposes (the paper's configuration reduces data
// movement by ~37%, i.e. value+index CSR traffic at ~31.5% density).
func PruneEpsForDensity(ms []*tensor.Matrix, target float64) float32 {
	if target <= 0 {
		return float32(math.Inf(1))
	}
	if target >= 1 {
		return 0
	}
	lo, hi := float32(0), float32(0)
	for _, m := range ms {
		for _, v := range m.Data {
			a := v
			if a < 0 {
				a = -a
			}
			if a > hi {
				hi = a
			}
		}
	}
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if PruneDensity(ms, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
