//lint:file-ignore globalrand testing/quick's Values hooks take *math/rand.Rand by signature; all draws actually derive from the seeded internal/rng source
package intracell

import (
	"math/rand"
	"reflect"

	"mobilstm/internal/rng"
)

// quickSeedVals adapts the deterministic RNG to testing/quick.
func quickSeedVals() func([]reflect.Value, *rand.Rand) {
	r := rng.New(0xdead)
	return func(args []reflect.Value, _ *rand.Rand) {
		args[0] = reflect.ValueOf(r.Uint64())
	}
}
