package serve

import (
	"context"
	"testing"

	"mobilstm/internal/tensor"
)

// TestServeChainPlumbing pins the Config.Chain path end to end: the
// engine slot's run options carry the configured chain, requests are
// served under it, and the stats snapshot reports the resolved name.
func TestServeChainPlumbing(t *testing.T) {
	cfg := tinyConfig()
	cfg.Chain = tensor.ChainAVX2
	s := New(cfg)
	defer s.Close()

	resp, err := s.Submit(context.Background(), Request{Bench: "MR"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Bench != "MR" {
		t.Fatalf("bad response %+v", resp)
	}
	slot := s.engine("MR")
	if slot.err != nil {
		t.Fatalf("engine: %v", slot.err)
	}
	if slot.opts.Chain != tensor.ChainAVX2 {
		t.Fatalf("slot chain %v, want ChainAVX2", slot.opts.Chain)
	}
	if got := s.Stats().Chain; got != "avx2" {
		t.Fatalf("Stats().Chain = %q, want avx2", got)
	}
}

// TestServeChainArtifactNeutral pins the warm-cache contract: the
// published engine artifact carries no chain (a wide shard's cold build
// is adoptable by a canonical shard and vice versa), and each adopter
// stamps its own Config.Chain onto its run options at install time.
func TestServeChainArtifactNeutral(t *testing.T) {
	cache := NewEngineCache()

	wide := tinyConfig()
	wide.Chain = tensor.ChainAVX2
	wide.Cache = cache
	a := New(wide)
	if _, err := a.Submit(context.Background(), Request{Bench: "MR"}); err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	a.Close()

	art, ok := cache.Acquire(artifactKey("MR", wide))
	if !ok {
		t.Fatal("cold build did not publish an artifact")
	}
	if art.Opts.Chain != tensor.ChainAuto {
		t.Fatalf("published artifact carries chain %v, want ChainAuto (chain-neutral)", art.Opts.Chain)
	}

	canon := tinyConfig()
	canon.Chain = tensor.ChainSSE2
	canon.Cache = cache
	b := New(canon)
	defer b.Close()
	if _, err := b.Submit(context.Background(), Request{Bench: "MR"}); err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	slot := b.engine("MR")
	if !slot.installed {
		t.Fatal("second server did not adopt the cached artifact")
	}
	if slot.opts.Chain != tensor.ChainSSE2 {
		t.Fatalf("adopter chain %v, want ChainSSE2", slot.opts.Chain)
	}
}
