package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// allowedServeErr filters the error outcomes a racing client may
// legitimately see while the server is being hammered and closed:
// success, a full queue, a closed server, or its own context ending.
func allowedServeErr(err error) bool {
	return err == nil ||
		errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrQueueFull) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// TestConcurrentWarmSubmitStatsClose hammers every public entry point
// of one server at once — Warm, Submit, Stats/Report, and a Close
// racing all of them. Run under -race it pins the surface the fleet
// layer multiplies: the engine registry with charge-taking, the stats
// mutex with per-benchmark baselines, and the close/drain path.
func TestConcurrentWarmSubmitStatsClose(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = time.Millisecond
	s := New(cfg)
	benches := []string{"MR", "BABI"}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := s.Submit(ctx, Request{Bench: benches[(i+j)%len(benches)]})
				cancel()
				if !allowedServeErr(err) {
					t.Errorf("submit: %v", err)
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if err := s.Warm(benches[(i+j)%len(benches)]); err != nil {
					t.Errorf("warm: %v", err)
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				snap := s.Stats()
				if snap.Utilization < 0 {
					t.Errorf("negative utilization %v", snap.Utilization)
				}
				_ = snap.Report().String()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		s.Close()
	}()
	wg.Wait()
	s.Close()
}

// TestFleetConcurrentRace is the fleet-level interleaving test:
// concurrent routed submits, pre-warm propagation, fleet snapshots and
// a racing Close across heterogeneous shards sharing one engine cache.
func TestFleetConcurrentRace(t *testing.T) {
	cfg := tinyFleetConfig()
	cfg.Shards = 2
	cfg.Base.BatchWindow = time.Millisecond
	f := NewFleet(cfg)
	benches := []string{"MR", "BABI"}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				_, err := f.Submit(ctx, Request{Bench: benches[(i+j)%len(benches)]})
				cancel()
				if !allowedServeErr(err) {
					t.Errorf("fleet submit: %v", err)
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := f.Warm(benches[i%len(benches)]); err != nil {
				t.Errorf("fleet warm: %v", err)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 8; j++ {
			snap := f.Stats()
			if snap.ColdBuilds < 0 {
				t.Errorf("negative cold builds")
			}
			_ = snap.Report().String()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		f.Close()
	}()
	wg.Wait()
	f.Close()
}
