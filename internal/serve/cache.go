// Warm-engine artifact cache: the fleet-wide store that turns one
// shard's cold engine build into every peer's warm install, the
// GKM-style kernel-cache propagation mechanism applied to serving
// engines. An artifact packages everything a shard needs to serve a
// benchmark — the calibrated engine, its resolved threshold set and run
// options — all derived on the fleet's reference GPU, so an adopting
// shard classifies bitwise identically to the shard that built it and
// pays only the (much smaller) install cost of unpacking and uploading
// the weights on its own device class.
package serve

import (
	"sync"

	"mobilstm/internal/core"
	"mobilstm/internal/lstm"
)

// EngineArtifact is one benchmark's warm serving state, as published by
// the shard that built it cold.
type EngineArtifact struct {
	Eng  *core.Engine
	Set  int
	Opts lstm.RunOptions
}

// EngineCache is a shared, concurrency-safe artifact store keyed by
// artifactKey, with fleet-wide single-flight build semantics: the first
// shard to miss a key registers as its builder, and peers that miss the
// same key while the build is in flight block until it settles instead
// of paying a duplicate cold build — so even fully cold traffic with
// hot-benchmark rebalancing costs the fleet exactly one build per
// benchmark. A nil *EngineCache is valid and always misses — standalone
// servers run without one.
type EngineCache struct {
	mu       sync.Mutex
	arts     map[string]*EngineArtifact
	building map[string]chan struct{}
	hits     int64
	misses   int64
}

// NewEngineCache returns an empty cache, ready to share across shards.
func NewEngineCache() *EngineCache {
	return &EngineCache{
		arts:     make(map[string]*EngineArtifact),
		building: make(map[string]chan struct{}),
	}
}

// Acquire resolves a key: a hit returns the artifact; a miss with no
// build in flight registers the caller as the key's builder (the caller
// MUST settle with Store or Abort); a miss with a peer's build in
// flight blocks until that build settles and re-resolves — becoming the
// new builder itself if the peer aborted.
func (c *EngineCache) Acquire(key string) (*EngineArtifact, bool) {
	if c == nil {
		return nil, false
	}
	for {
		c.mu.Lock()
		if art, ok := c.arts[key]; ok {
			c.hits++
			c.mu.Unlock()
			return art, true
		}
		ch, busy := c.building[key]
		if !busy {
			c.building[key] = make(chan struct{})
			c.misses++
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Unlock()
		<-ch
	}
}

// Store publishes the builder's artifact and releases every peer
// blocked in Acquire. The first publish wins so every install adopts
// one consistent artifact.
func (c *EngineCache) Store(key string, art *EngineArtifact) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.arts[key]; !ok {
		c.arts[key] = art
	}
	if ch, ok := c.building[key]; ok {
		delete(c.building, key)
		close(ch)
	}
}

// Abort releases a failed builder's registration without publishing:
// blocked peers wake and the first one becomes the new builder — the
// cache-level counterpart of the retryable (non-sticky) engine slot.
func (c *EngineCache) Abort(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.building[key]; ok {
		delete(c.building, key)
		close(ch)
	}
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Artifacts int
	Hits      int64
	Misses    int64
}

// Stats snapshots the cache counters.
func (c *EngineCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Artifacts: len(c.arts), Hits: c.hits, Misses: c.misses}
}
