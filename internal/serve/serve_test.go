package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/sched"
	"mobilstm/internal/tensor"
)

// tinyConfig keeps serving tests fast: capped model shapes and an
// explicit threshold set (no AO sweep on engine build).
func tinyConfig() Config {
	return Config{
		GPU: gpu.TegraX1(),
		Profile: model.Profile{Name: "tiny", HiddenCap: 64, LengthCap: 16,
			AccSamples: 10, PredictorSamples: 3, StatSamples: 2},
		Mode:        sched.Combined,
		Set:         4,
		Workers:     2,
		QueueDepth:  64,
		MaxBatch:    4,
		BatchWindow: 2 * time.Millisecond,
	}
}

// TestServeConcurrent is the headline race test: many goroutines
// serving two benchmarks through one server, sharing lazily built
// engines. Run under -race it pins the engine registry, the batching
// window, and the stats counters.
func TestServeConcurrent(t *testing.T) {
	s := New(tinyConfig())
	defer s.Close()

	const perBench = 8
	var wg sync.WaitGroup
	for _, bench := range []string{"MR", "BABI"} {
		for i := 0; i < perBench; i++ {
			wg.Add(1)
			go func(bench string) {
				defer wg.Done()
				resp, err := s.Submit(context.Background(), Request{Bench: bench})
				if err != nil {
					t.Errorf("%s: %v", bench, err)
					return
				}
				if resp.Bench != bench || resp.Ref < 0 {
					t.Errorf("%s: bad response %+v", bench, resp)
				}
				if resp.LatencyMs < resp.GPUMs {
					t.Errorf("%s: latency %v < gpu %v", bench, resp.LatencyMs, resp.GPUMs)
				}
			}(bench)
		}
	}
	wg.Wait()

	snap := s.Stats()
	if len(snap.Benches) != 2 {
		t.Fatalf("stats cover %d benchmarks, want 2", len(snap.Benches))
	}
	for _, bs := range snap.Benches {
		if bs.Served != perBench {
			t.Errorf("%s: served %d, want %d", bs.Bench, bs.Served, perBench)
		}
		if bs.Scored != perBench {
			t.Errorf("%s: scored %d, want %d", bs.Bench, bs.Scored, perBench)
		}
		if bs.P95LatencyMs < bs.P50LatencyMs {
			t.Errorf("%s: p95 %v < p50 %v", bs.Bench, bs.P95LatencyMs, bs.P50LatencyMs)
		}
		if bs.Set != 4 {
			t.Errorf("%s: served at set %d, want 4", bs.Bench, bs.Set)
		}
	}
	if !strings.Contains(snap.Report().String(), "MR") {
		t.Error("report does not mention MR")
	}
}

// TestBatchBySize: with an effectively infinite window, the batch must
// form as soon as MaxBatch requests are queued.
func TestBatchBySize(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxBatch = 3
	cfg.BatchWindow = time.Hour
	s := New(cfg)
	defer s.Close()

	var wg sync.WaitGroup
	sizes := make(chan int, cfg.MaxBatch)
	for i := 0; i < cfg.MaxBatch; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{Bench: "MR"})
			if err != nil {
				t.Error(err)
				return
			}
			sizes <- resp.BatchSize
		}()
	}
	wg.Wait()
	close(sizes)
	for size := range sizes {
		if size != cfg.MaxBatch {
			t.Fatalf("batch size %d, want %d (size-triggered dispatch)", size, cfg.MaxBatch)
		}
	}
}

// TestBatchByDeadline: fewer requests than MaxBatch must still dispatch
// once the window deadline passes.
func TestBatchByDeadline(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxBatch = 8
	cfg.BatchWindow = 10 * time.Millisecond
	s := New(cfg)
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{Bench: "MR"})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.BatchSize >= cfg.MaxBatch {
				t.Errorf("batch size %d reached MaxBatch; want deadline dispatch", resp.BatchSize)
			}
		}()
	}
	wg.Wait()
}

// TestDrainOnClose: requests accepted before Close must be served, and
// Submit after Close must fail with ErrClosed.
func TestDrainOnClose(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = time.Hour // only Close's flush can dispatch these
	cfg.MaxBatch = 64
	s := New(cfg)

	const n = 3
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), Request{Bench: "MR"})
			errs <- err
		}()
	}
	// Wait until all three are counted as submitted, then Close: the
	// flush path must serve them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.Stats()
		if len(snap.Benches) == 1 && snap.Benches[0].Submitted == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests never registered as submitted")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("accepted request not drained: %v", err)
		}
	}

	if _, err := s.Submit(context.Background(), Request{Bench: "MR"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if got := s.Stats().Benches[0].Served; got != n {
		t.Fatalf("served %d, want %d", got, n)
	}
}

// TestContextCancellationMidQueue: a request cancelled while waiting in
// an open batching window returns the context error and is dropped from
// the batch before the GPU launch is sized.
func TestContextCancellationMidQueue(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = time.Hour
	cfg.MaxBatch = 64
	s := New(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Request{Bench: "MR"})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.Stats()
		if len(snap.Benches) == 1 && snap.Benches[0].Submitted == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never registered as submitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit returned %v, want context.Canceled", err)
	}
	s.Close() // flushes the window; the dead request must be dropped
	snap := s.Stats()
	if got := snap.Benches[0].Cancelled; got != 1 {
		t.Fatalf("cancelled count %d, want 1", got)
	}
	if got := snap.Benches[0].Served; got != 0 {
		t.Fatalf("served %d, want 0", got)
	}
}

// TestRequestTimeout: the configured per-request budget bounds a
// request stuck in a never-closing window.
func TestRequestTimeout(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = time.Hour
	cfg.MaxBatch = 64
	cfg.RequestTimeout = 20 * time.Millisecond
	s := New(cfg)
	defer s.Close()

	_, err := s.Submit(context.Background(), Request{Bench: "MR"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit returned %v, want deadline exceeded", err)
	}
}

// TestUnknownBenchmark: validation is error-returning, not panicking.
func TestUnknownBenchmark(t *testing.T) {
	s := New(tinyConfig())
	defer s.Close()
	if _, err := s.Submit(context.Background(), Request{Bench: "NOPE"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	} else if !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("error %q does not name the benchmark", err)
	}
}

// TestCallerSequence: a caller-supplied sequence with an unknown label
// serves unscored.
func TestCallerSequence(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = 0 // dispatch immediately
	s := New(cfg)
	defer s.Close()

	// Borrow a real corpus sequence so shapes are valid.
	warm, err := s.Submit(context.Background(), Request{Bench: "MR"})
	if err != nil {
		t.Fatal(err)
	}
	_ = warm
	s.mu.Lock()
	slot := s.engines["MR"]
	s.mu.Unlock()
	seqs, _ := slot.eng.Inst.AccSeqs()

	resp, err := s.Submit(context.Background(), Request{Bench: "MR", Seq: seqs[0], Ref: -1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ref != -1 {
		t.Fatalf("unscored request got ref %d", resp.Ref)
	}
	snap := s.Stats()
	if got := snap.Benches[0].Scored; got != 1 { // only the warm-up scored
		t.Fatalf("scored %d, want 1", got)
	}
}

// TestMalformedSequence: a shape-violating request costs one error
// response, not the process — the Guard/RunE serving-path contract.
func TestMalformedSequence(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = 0
	s := New(cfg)
	defer s.Close()

	_, err := s.Submit(context.Background(), Request{Bench: "MR", Seq: nil})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong input width: one float per step instead of Input().
	bad := tensor.NewVector(1)
	_, err = s.Submit(context.Background(), Request{Bench: "MR", Seq: []tensor.Vector{bad}, Ref: -1})
	if err == nil {
		t.Fatal("malformed sequence served without error")
	}
	// The server must still be live.
	if _, err := s.Submit(context.Background(), Request{Bench: "MR"}); err != nil {
		t.Fatalf("server dead after malformed request: %v", err)
	}
}

// TestCloseIdempotent guards the double-Close path.
func TestCloseIdempotent(t *testing.T) {
	s := New(tinyConfig())
	s.Close()
	s.Close()
}

// TestBatchWindowTimerStaleTick is the regression test for the
// Reset-without-drain timer bug: size-triggered dispatches racing a
// tight window deadline used to leave a stale tick in the timer
// channel, so a later iteration flushed against an old timestamp. The
// test hammers exactly that interleaving — full windows dispatched by
// size while a second benchmark relies on the deadline — and every
// request must still be served promptly.
func TestBatchWindowTimerStaleTick(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxBatch = 2
	cfg.BatchWindow = time.Millisecond
	s := New(cfg)
	defer s.Close()
	for _, bench := range []string{"MR", "BABI"} {
		if err := s.Warm(bench); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 25
	for i := 0; i < rounds; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		var wg sync.WaitGroup
		submit := func(bench string) {
			defer wg.Done()
			if _, err := s.Submit(ctx, Request{Bench: bench}); err != nil {
				t.Errorf("round %d %s: %v", i, bench, err)
			}
		}
		// Two MR requests fill a window (size-triggered dispatch, racing
		// the 1ms deadline); the lone BABI request can only dispatch by
		// deadline — a stale tick would strand or mistime it.
		wg.Add(3)
		go submit("MR")
		go submit("MR")
		go submit("BABI")
		wg.Wait()
		cancel()
		if t.Failed() {
			t.FailNow()
		}
	}

	for _, bs := range s.Stats().Benches {
		want := int64(rounds)
		if bs.Bench == "MR" {
			want = 2 * rounds
		}
		if bs.Served != want {
			t.Errorf("%s: served %d, want %d", bs.Bench, bs.Served, want)
		}
	}
}

// TestTransientBuildErrorRetries is the regression test for the sticky
// engine-build failure: a transient build error used to latch in the
// slot's sync.Once and poison the benchmark for the server's lifetime.
// Now the failed slot is evicted, so once the fault clears the same
// benchmark serves.
func TestTransientBuildErrorRetries(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	cfg := tinyConfig()
	cfg.BatchWindow = 0
	cfg.buildHook = func(string) error {
		if fail.Load() {
			return errors.New("transient build fault")
		}
		return nil
	}
	s := New(cfg)
	defer s.Close()

	if _, err := s.Submit(context.Background(), Request{Bench: "MR"}); err == nil {
		t.Fatal("request served through a failing build")
	}
	if err := s.Warm("MR"); err == nil {
		t.Fatal("Warm succeeded through a failing build")
	}

	fail.Store(false)
	resp, err := s.Submit(context.Background(), Request{Bench: "MR"})
	if err != nil {
		t.Fatalf("build failure latched; retry did not serve: %v", err)
	}
	if resp.Class < 0 {
		t.Fatalf("bad response %+v", resp)
	}
}

// TestWarmKeepsPerBenchBaselines is the two-benchmark regression test
// for the Warm uptime reset: warming BABI must not restart MR's
// activity window, so MR's Throughput cannot inflate (the old bug
// reset the global clock, deflating or distorting every
// already-serving benchmark's rate).
func TestWarmKeepsPerBenchBaselines(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = 0
	s := New(cfg)
	defer s.Close()

	if err := s.Warm("MR"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), Request{Bench: "MR"}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats().Benches[0]
	if before.Throughput <= 0 || before.WindowS <= 0 {
		t.Fatalf("MR not measuring: %+v", before)
	}

	time.Sleep(30 * time.Millisecond)
	if err := s.Warm("BABI"); err != nil {
		t.Fatal(err)
	}
	snap := s.Stats()
	var mr, babi BenchSnapshot
	for _, bs := range snap.Benches {
		switch bs.Bench {
		case "MR":
			mr = bs
		case "BABI":
			babi = bs
		}
	}
	if mr.WindowS < before.WindowS+0.025 {
		t.Fatalf("MR window shrank after warming BABI: %.3fs -> %.3fs", before.WindowS, mr.WindowS)
	}
	if mr.Throughput > before.Throughput {
		t.Fatalf("MR throughput inflated by warming BABI: %.2f -> %.2f", before.Throughput, mr.Throughput)
	}
	if babi.WindowS >= mr.WindowS {
		t.Fatalf("BABI window %.3fs not younger than MR's %.3fs", babi.WindowS, mr.WindowS)
	}
}

// TestColdStartCharge pins the cold-start accounting on a standalone
// server: the first served window after an under-traffic engine build
// absorbs the measured build cost, later windows are warm, and the
// stats split the two populations.
func TestColdStartCharge(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = 0
	s := New(cfg)
	defer s.Close()

	first, err := s.Submit(context.Background(), Request{Bench: "MR"})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Cold || first.ColdMs <= 0 {
		t.Fatalf("first response not cold-charged: %+v", first)
	}
	if first.LatencyMs < first.ColdMs {
		t.Fatalf("latency %.2f excludes cold charge %.2f", first.LatencyMs, first.ColdMs)
	}
	second, err := s.Submit(context.Background(), Request{Bench: "MR"})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cold || second.ColdMs != 0 {
		t.Fatalf("second response still charged: %+v", second)
	}

	b := s.Stats().Benches[0]
	if b.ColdBuilds != 1 || b.Installs != 0 {
		t.Fatalf("ColdBuilds=%d Installs=%d, want 1/0", b.ColdBuilds, b.Installs)
	}
	if b.ColdServed != 1 {
		t.Fatalf("ColdServed=%d, want 1", b.ColdServed)
	}
	if b.ColdP99Ms <= b.WarmP99Ms {
		t.Fatalf("cold p99 %.2f not above warm p99 %.2f", b.ColdP99Ms, b.WarmP99Ms)
	}
}
