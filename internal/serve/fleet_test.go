package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"mobilstm/internal/equivtest"
)

// tinyFleetConfig keeps fleet tests fast: three heterogeneous shards
// over the tiny serving profile.
func tinyFleetConfig() FleetConfig {
	return FleetConfig{Base: tinyConfig(), Shards: 3, PreWarm: true, HotQueue: 8}
}

// TestFleetClassEquivalence pins the tentpole's correctness contract:
// every shard — and the routed fleet path — classifies bitwise
// identically to a standalone single-device server, because all shards
// serve the shared reference-calibrated artifact and heterogeneity
// prices only the cost model.
func TestFleetClassEquivalence(t *testing.T) {
	single := New(tinyConfig())
	defer single.Close()
	f := NewFleet(tinyFleetConfig())
	defer f.Close()

	const n = 4
	for _, bench := range []string{"MR", "BABI"} {
		if err := f.Warm(bench); err != nil {
			t.Fatal(err)
		}
		slot := slotFor(t, single, bench)
		seqs, refs := slot.eng.Inst.AccSeqs()

		want := make([]int, n)
		for i := 0; i < n; i++ {
			resp, err := single.Submit(context.Background(), Request{Bench: bench, Seq: seqs[i], Ref: refs[i]})
			if err != nil {
				t.Fatal(err)
			}
			want[i] = resp.Class
		}

		// Every shard must agree, not just the one affinity picked.
		for shard, srv := range f.shards {
			got := make([]int, n)
			for i := 0; i < n; i++ {
				resp, err := srv.Submit(context.Background(), Request{Bench: bench, Seq: seqs[i], Ref: refs[i]})
				if err != nil {
					t.Fatal(err)
				}
				got[i] = resp.Class
			}
			equivtest.Classes(t, fmt.Sprintf("%s shard %d", bench, shard), got, want)
		}

		routed := make([]int, n)
		for i := 0; i < n; i++ {
			resp, err := f.Submit(context.Background(), Request{Bench: bench, Seq: seqs[i], Ref: refs[i]})
			if err != nil {
				t.Fatal(err)
			}
			routed[i] = resp.Class
		}
		equivtest.Classes(t, bench+" routed", routed, want)
	}
}

// TestFleetPreWarmSingleColdBuild pins the cache-propagation contract:
// warming a benchmark costs the fleet exactly one cold build — the home
// shard's — and every peer adopts the artifact as a warm install, so no
// request anywhere pays the cold charge afterwards.
func TestFleetPreWarmSingleColdBuild(t *testing.T) {
	f := NewFleet(tinyFleetConfig())
	defer f.Close()

	if err := f.Warm("MR"); err != nil {
		t.Fatal(err)
	}
	snap := f.Stats()
	if snap.ColdBuilds != 1 {
		t.Fatalf("fleet cold builds %d, want exactly 1", snap.ColdBuilds)
	}
	peers := int64(f.Shards() - 1)
	if snap.Installs != peers {
		t.Fatalf("fleet installs %d, want %d (every peer adopts)", snap.Installs, peers)
	}
	if snap.Cache.Artifacts != 1 || snap.Cache.Hits != peers || snap.Cache.Misses != 1 {
		t.Fatalf("cache %+v, want 1 artifact, %d hits, 1 miss", snap.Cache, peers)
	}

	for shard, srv := range f.shards {
		resp, err := srv.Submit(context.Background(), Request{Bench: "MR"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cold || resp.ColdMs != 0 {
			t.Fatalf("shard %d served a charged response after pre-warm: %+v", shard, resp)
		}
	}
}

// TestFleetColdTrafficChargesOnce: with no pre-warming at all, traffic
// itself triggers the build and the first served window absorbs a cold
// charge — but the shared cache still keeps the fleet at one cold build
// per benchmark, with later shards installing warm.
func TestFleetColdTrafficChargesOnce(t *testing.T) {
	cfg := tinyFleetConfig()
	cfg.PreWarm = false
	cfg.Base.BatchWindow = 0
	f := NewFleet(cfg)
	defer f.Close()

	first, err := f.Submit(context.Background(), Request{Bench: "MR"})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Cold || first.ColdMs <= 0 {
		t.Fatalf("first fleet response not cold-charged: %+v", first)
	}

	// Force a second shard to serve the same benchmark: it must hit the
	// cache and pay only the (cheaper) install charge.
	other := (first.Shard + 1) % f.Shards()
	peer, err := f.shards[other].Submit(context.Background(), Request{Bench: "MR"})
	if err != nil {
		t.Fatal(err)
	}
	if peer.Cold {
		t.Fatalf("peer shard paid a second cold build: %+v", peer)
	}
	if peer.ColdMs <= 0 || peer.ColdMs >= first.ColdMs {
		t.Fatalf("install charge %.2f ms, want in (0, cold %.2f)", peer.ColdMs, first.ColdMs)
	}

	snap := f.Stats()
	if snap.ColdBuilds != 1 || snap.Installs != 1 {
		t.Fatalf("ColdBuilds=%d Installs=%d, want 1/1", snap.ColdBuilds, snap.Installs)
	}
}

// TestFleetAffinityAndRebalance pins the routing layer: rendezvous
// order is deterministic per benchmark, pure affinity keeps every
// request home, and the hot-benchmark rule spills to the next shard in
// rendezvous order once the home queue depth hits HotQueue.
func TestFleetAffinityAndRebalance(t *testing.T) {
	cfg := tinyFleetConfig()
	cfg.HotQueue = 2
	f := NewFleet(cfg)
	defer f.Close()

	order := f.order("MR")
	if len(order) != f.Shards() {
		t.Fatalf("order covers %d shards, want %d", len(order), f.Shards())
	}
	for i := 0; i < 3; i++ {
		again := f.order("MR")
		for j := range order {
			if again[j] != order[j] {
				t.Fatalf("rendezvous order unstable: %v vs %v", again, order)
			}
		}
	}

	// Below the threshold: perfect affinity.
	s1, r1 := f.pick("MR")
	s2, r2 := f.pick("MR")
	if s1 != order[0] || s2 != order[0] || r1 || r2 {
		t.Fatalf("affinity picks %d,%d (rebalanced %v,%v), want home %d", s1, s2, r1, r2, order[0])
	}
	// At the threshold: spill to the next shard in rendezvous order.
	s3, r3 := f.pick("MR")
	if !r3 || s3 != order[1] {
		t.Fatalf("hot pick %d (rebalanced %v), want spill to %d", s3, r3, order[1])
	}
	f.done("MR", s1)
	f.done("MR", s2)
	f.done("MR", s3)

	snap := f.Stats()
	if len(snap.Rebalances) != 1 || snap.Rebalances[0].Bench != "MR" || snap.Rebalances[0].Count != 1 {
		t.Fatalf("rebalance counters %+v, want MR:1", snap.Rebalances)
	}
}

// TestFleetReport smoke-checks the fleet table: every shard row with
// its device class, plus the cache line in the title.
func TestFleetReport(t *testing.T) {
	f := NewFleet(tinyFleetConfig())
	defer f.Close()
	if err := f.Warm("MR"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(context.Background(), Request{Bench: "MR"}); err != nil {
		t.Fatal(err)
	}
	out := f.Stats().Report().String()
	for _, want := range []string{"3 shards", "1 artifacts", "Tegra"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet report missing %q:\n%s", want, out)
		}
	}
}
