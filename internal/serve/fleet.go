// Fleet-scale sharded serving: N per-shard Servers, each a
// heterogeneous simulated device class from the Table I platforms,
// behind per-benchmark rendezvous (highest-random-weight) affinity
// routing. The fleet owns one shared EngineCache, so the first shard to
// build a benchmark's engine pays the cold JIT build and every peer
// adopts the warm artifact for an install-sized charge — and because
// the artifact is calibrated once on the fleet's reference GPU, every
// routed request classifies bitwise identically to the single-device
// serving path no matter which shard serves it. Shard device classes
// shape only the cost model: batch GPU time, cold-start charge, and
// utilization.
package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mobilstm/internal/experiments"
	"mobilstm/internal/gpu"
	"mobilstm/internal/report"
)

// FleetConfig shapes a Fleet.
type FleetConfig struct {
	// Base is the per-shard serving configuration: reference GPU for
	// engine calibration, profile, mode/set policy, batching window and
	// worker pool. Each shard runs one Server built from Base with its
	// own Device class and the fleet's shared engine cache.
	Base Config
	// Shards is the fleet size (minimum 1).
	Shards int
	// Classes assigns a simulated device class per shard; empty defaults
	// to experiments.FleetClasses(Shards), the round-robin Table I mix.
	// Fewer classes than shards cycle.
	Classes []gpu.Config
	// PreWarm makes Fleet.Warm propagate a warmed benchmark's engine
	// artifact to every peer shard, so only the home shard pays the cold
	// build and the rest install warm.
	PreWarm bool
	// HotQueue is the rebalance-on-hot-benchmark threshold: when a
	// benchmark has at least HotQueue requests in flight on a shard, new
	// requests spill to the next shard in its rendezvous order. <= 0
	// disables rebalancing (pure affinity).
	HotQueue int
}

// DefaultFleetConfig is a three-shard fleet over the Table I platform
// mix with pre-warming on.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{Base: DefaultConfig(), Shards: 3, PreWarm: true, HotQueue: 8}
}

// Fleet is the sharded serving tier. Create with NewFleet, stop with
// Close.
type Fleet struct {
	cfg    FleetConfig
	cache  *EngineCache
	shards []*Server

	routeMu    sync.Mutex
	inflight   map[string][]int64
	rebalances map[string]int64
}

// NewFleet starts one Server per shard, all sharing one engine cache.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = experiments.FleetClasses(cfg.Shards)
	}
	f := &Fleet{
		cfg:        cfg,
		cache:      NewEngineCache(),
		inflight:   make(map[string][]int64),
		rebalances: make(map[string]int64),
	}
	for i := 0; i < cfg.Shards; i++ {
		sc := cfg.Base
		sc.Device = cfg.Classes[i%len(cfg.Classes)]
		sc.Cache = f.cache
		f.shards = append(f.shards, New(sc))
	}
	return f
}

// Shards reports the fleet size.
func (f *Fleet) Shards() int { return len(f.shards) }

// rendezvous is the highest-random-weight hash of (bench, shard):
// FNV-1a over the benchmark name and shard index, finished with a
// splitmix64-style avalanche so adjacent shard indices decorrelate.
func rendezvous(bench string, shard int) uint64 {
	h := uint64(1469598103934665603)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(bench); i++ {
		mix(bench[i])
	}
	mix(byte(shard))
	mix(byte(shard >> 8))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// order returns a benchmark's shard preference order: shards sorted by
// descending rendezvous weight. The first entry is the benchmark's home
// shard; the rebalance rule walks the rest in order. Rendezvous hashing
// keeps the order stable per benchmark and spreads homes evenly across
// shards without any coordination state.
func (f *Fleet) order(bench string) []int {
	type sw struct {
		shard int
		w     uint64
	}
	ws := make([]sw, len(f.shards))
	for i := range f.shards {
		ws[i] = sw{shard: i, w: rendezvous(bench, i)}
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].w != ws[b].w {
			return ws[a].w > ws[b].w
		}
		return ws[a].shard < ws[b].shard
	})
	out := make([]int, len(ws))
	for i, e := range ws {
		out[i] = e.shard
	}
	return out
}

// pick chooses the serving shard for one request and registers it in
// flight. The home shard is the benchmark's rendezvous winner; the
// rebalance-on-hot-benchmark rule spills to the next shard in
// rendezvous order once the benchmark's in-flight depth on a shard
// reaches HotQueue, so one hot benchmark stops monopolizing its home
// shard's queue while cold benchmarks keep perfect affinity. When every
// shard is hot the least-loaded one takes the request.
func (f *Fleet) pick(bench string) (shard int, rebalanced bool) {
	order := f.order(bench)
	f.routeMu.Lock()
	defer f.routeMu.Unlock()
	inf := f.inflight[bench]
	if inf == nil {
		inf = make([]int64, len(f.shards))
		f.inflight[bench] = inf
	}
	shard = order[0]
	if f.cfg.HotQueue > 0 && inf[shard] >= int64(f.cfg.HotQueue) {
		for _, alt := range order[1:] {
			if inf[alt] < int64(f.cfg.HotQueue) {
				shard, rebalanced = alt, true
				break
			}
		}
		if !rebalanced {
			best := order[0]
			for _, alt := range order[1:] {
				if inf[alt] < inf[best] {
					best = alt
				}
			}
			if best != order[0] {
				shard, rebalanced = best, true
			}
		}
		if rebalanced {
			f.rebalances[bench]++
		}
	}
	inf[shard]++
	return shard, rebalanced
}

// done releases a request's in-flight slot.
func (f *Fleet) done(bench string, shard int) {
	f.routeMu.Lock()
	defer f.routeMu.Unlock()
	if inf := f.inflight[bench]; inf != nil {
		inf[shard]--
	}
}

// Submit routes one request to its shard and serves it there. The
// response's Class is bitwise identical to the single-device serving
// path regardless of the shard chosen: every shard serves the shared
// reference-calibrated artifact, and the shard's device class prices
// only WaitMs/GPUMs/ColdMs.
func (f *Fleet) Submit(ctx context.Context, req Request) (*Response, error) {
	if _, err := experiments.Lookup(req.Bench); err != nil {
		return nil, err
	}
	shard, _ := f.pick(req.Bench)
	defer f.done(req.Bench, shard)
	resp, err := f.shards[shard].Submit(ctx, req)
	if resp != nil {
		resp.Shard = shard
	}
	return resp, err
}

// Warm builds bench's engine on its home shard — the one cold build the
// fleet pays — and, when PreWarm is on, propagates the warm artifact to
// every peer: each peer's build hits the shared cache and installs
// instead of rebuilding.
func (f *Fleet) Warm(bench string) error {
	order := f.order(bench)
	if err := f.shards[order[0]].Warm(bench); err != nil {
		return err
	}
	if !f.cfg.PreWarm {
		return nil
	}
	for _, i := range order[1:] {
		if err := f.shards[i].Warm(bench); err != nil {
			return err
		}
	}
	return nil
}

// Close drains and stops every shard. Safe to call more than once.
func (f *Fleet) Close() {
	for _, s := range f.shards {
		s.Close()
	}
}

// ShardSnapshot is one shard's view in a FleetSnapshot.
type ShardSnapshot struct {
	Shard int
	Snapshot
}

// BenchCount pairs a benchmark with a counter (name-ordered in
// snapshots).
type BenchCount struct {
	Bench string
	Count int64
}

// FleetSnapshot is a point-in-time view of the fleet's counters.
type FleetSnapshot struct {
	Shards []ShardSnapshot
	Cache  CacheStats
	// Rebalances counts requests the hot-benchmark rule spilled off
	// their home shard, per benchmark.
	Rebalances []BenchCount
	// ColdBuilds / Installs aggregate engine materializations fleet-wide:
	// with pre-warming, ColdBuilds is one per benchmark and every peer
	// shard contributes an install.
	ColdBuilds int64
	Installs   int64
}

// Stats snapshots every shard plus the shared cache and routing
// counters. Safe to call concurrently with serving.
func (f *Fleet) Stats() FleetSnapshot {
	snap := FleetSnapshot{Cache: f.cache.Stats()}
	for i, s := range f.shards {
		ss := ShardSnapshot{Shard: i, Snapshot: s.Stats()}
		snap.ColdBuilds += ss.ColdBuilds
		snap.Installs += ss.Installs
		snap.Shards = append(snap.Shards, ss)
	}
	f.routeMu.Lock()
	names := make([]string, 0, len(f.rebalances))
	for name := range f.rebalances {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Rebalances = append(snap.Rebalances, BenchCount{Bench: name, Count: f.rebalances[name]})
	}
	f.routeMu.Unlock()
	return snap
}

// Report renders the fleet snapshot as a per-shard table: device class,
// volume, utilization, engine materializations, and the cold vs warm
// p99 split.
func (snap FleetSnapshot) Report() *report.Table {
	var rebal int64
	for _, r := range snap.Rebalances {
		rebal += r.Count
	}
	t := report.NewTable(
		fmt.Sprintf("Fleet stats (%d shards, cache %d artifacts %d hits %d misses, %d rebalanced)",
			len(snap.Shards), snap.Cache.Artifacts, snap.Cache.Hits, snap.Cache.Misses, rebal),
		"Shard", "class", "served", "rej", "util", "cold/inst",
		"p99 cold", "p99 warm", "p95 ms")
	for _, ss := range snap.Shards {
		var served, rejected, coldServed int64
		for _, b := range ss.Benches {
			served += b.Served
			rejected += b.Rejected
			coldServed += b.ColdServed
		}
		t.AddRowf(fmt.Sprintf("%d", ss.Shard),
			ss.Device,
			fmt.Sprintf("%d", served),
			fmt.Sprintf("%d", rejected),
			fmt.Sprintf("%.1f%%", ss.Utilization*100),
			fmt.Sprintf("%d/%d", ss.ColdBuilds, ss.Installs),
			quantileCell(ss.ColdP99Ms, coldServed > 0),
			quantileCell(ss.WarmP99Ms, served > coldServed),
			quantileCell(ss.P95Ms, served > 0))
	}
	return t
}
