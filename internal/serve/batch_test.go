package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/tensor"
)

// slotFor warms a benchmark and returns its engine slot for
// white-box access to the corpus and network.
func slotFor(t *testing.T, s *Server, bench string) *engineSlot {
	t.Helper()
	if err := s.Warm(bench); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engines[bench]
}

// TestWindowDispatchesOneRunBatch pins the batched serving contract: a
// full window of N queued requests executes exactly one batched
// forward launch (RunBatches == 1) and every response carries the
// class the serial path would have produced for the same sequence.
func TestWindowDispatchesOneRunBatch(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxBatch = 4
	cfg.BatchWindow = time.Hour // size-triggered dispatch only
	s := New(cfg)
	defer s.Close()

	slot := slotFor(t, s, "MR")
	seqs, refs := slot.eng.Inst.AccSeqs()
	want := make([]int, cfg.MaxBatch)
	for i := 0; i < cfg.MaxBatch; i++ {
		class, err := slot.net().ClassifyE(seqs[i], slot.opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = class
	}

	var wg sync.WaitGroup
	got := make([]int, cfg.MaxBatch)
	for i := 0; i < cfg.MaxBatch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{Bench: "MR", Seq: seqs[i], Ref: refs[i]})
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = resp.Class
			if resp.BatchSize != cfg.MaxBatch {
				t.Errorf("batch size %d, want %d", resp.BatchSize, cfg.MaxBatch)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	equivtest.Classes(t, "window", got, want)

	snap := s.Stats()
	b := snap.Benches[0]
	if b.RunBatches != 1 {
		t.Fatalf("RunBatches %d, want exactly 1 batched launch for the window", b.RunBatches)
	}
	if b.Served != int64(cfg.MaxBatch) {
		t.Fatalf("served %d, want %d", b.Served, cfg.MaxBatch)
	}
	if b.MeanBatch != float64(cfg.MaxBatch) {
		t.Fatalf("mean batch %.1f, want %d", b.MeanBatch, cfg.MaxBatch)
	}
}

// TestRaggedWindowBatches pins the ragged window: members of unequal
// lengths batch in one launch, each classified as its serial run would
// be, with a positive ragged GPU cost.
func TestRaggedWindowBatches(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxBatch = 3
	cfg.BatchWindow = time.Hour
	s := New(cfg)
	defer s.Close()

	slot := slotFor(t, s, "MR")
	corpus, _ := slot.eng.Inst.AccSeqs()
	seqs := [][]tensor.Vector{corpus[0][:3], corpus[1][:5], corpus[2]}
	want := make([]int, len(seqs))
	for i, xs := range seqs {
		class, err := slot.net().ClassifyE(xs, slot.opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = class
	}

	var wg sync.WaitGroup
	got := make([]int, len(seqs))
	for i := range seqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), Request{Bench: "MR", Seq: seqs[i], Ref: -1})
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = resp.Class
			if resp.GPUMs <= 0 {
				t.Errorf("ragged batch GPU cost %.3f ms, want > 0", resp.GPUMs)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	equivtest.Classes(t, "ragged window", got, want)

	if b := s.Stats().Benches[0]; b.RunBatches != 1 {
		t.Fatalf("RunBatches %d, want 1", b.RunBatches)
	}
}

// TestMalformedMemberIsolated pins error isolation inside a window: a
// mis-shaped member gets its own error response while the rest of the
// batch is still served by the batched launch.
func TestMalformedMemberIsolated(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxBatch = 3
	cfg.BatchWindow = time.Hour
	s := New(cfg)
	defer s.Close()

	slot := slotFor(t, s, "MR")
	corpus, _ := slot.eng.Inst.AccSeqs()
	bad := []tensor.Vector{tensor.NewVector(len(corpus[0][0]) + 1)}

	var wg sync.WaitGroup
	var badErr error
	served := make([]int, 0, 2)
	var mu sync.Mutex
	submit := func(seq []tensor.Vector, wantErr bool) {
		defer wg.Done()
		resp, err := s.Submit(context.Background(), Request{Bench: "MR", Seq: seq, Ref: -1})
		mu.Lock()
		defer mu.Unlock()
		if wantErr {
			badErr = err
			return
		}
		if err != nil {
			t.Errorf("valid member failed: %v", err)
			return
		}
		served = append(served, resp.Class)
		if resp.BatchSize != 2 {
			t.Errorf("valid members saw batch size %d, want 2 after the bad member dropped", resp.BatchSize)
		}
	}
	wg.Add(3)
	go submit(corpus[0], false)
	go submit(corpus[1], false)
	go submit(bad, true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if badErr == nil {
		t.Fatal("malformed member served without error")
	}
	if len(served) != 2 {
		t.Fatalf("%d valid members served, want 2", len(served))
	}
	b := s.Stats().Benches[0]
	if b.RunBatches != 1 || b.Errors != 1 || b.Served != 2 {
		t.Fatalf("RunBatches=%d Errors=%d Served=%d, want 1/1/2", b.RunBatches, b.Errors, b.Served)
	}
}

// TestAllCancelledWindowDropped is the regression test for the
// accounting hole where a window whose members all cancelled returned
// early without touching the window counters: the dispatch must now be
// counted (and marked dropped) so MeanBatch reflects dispatch reality.
func TestAllCancelledWindowDropped(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = time.Hour
	cfg.MaxBatch = 64
	s := New(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	const n = 2
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Submit(ctx, Request{Bench: "MR"})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.Stats()
		if len(snap.Benches) == 1 && snap.Benches[0].Submitted == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests never registered as submitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	s.Close() // flushes the window; every member is already dead

	b := s.Stats().Benches[0]
	if b.Cancelled != n || b.Served != 0 {
		t.Fatalf("Cancelled=%d Served=%d, want %d/0", b.Cancelled, b.Served, n)
	}
	if b.Windows != 1 || b.DroppedWindows != 1 {
		t.Fatalf("Windows=%d DroppedWindows=%d, want 1/1 (dispatch must be counted)", b.Windows, b.DroppedWindows)
	}
	if b.RunBatches != 0 {
		t.Fatalf("RunBatches=%d, want 0 (nothing launched)", b.RunBatches)
	}
	if b.MeanBatch != 0 {
		t.Fatalf("MeanBatch=%.2f, want 0 over one empty dispatched window", b.MeanBatch)
	}
}

// TestAllMalformedWindowDropped: a window whose only member is
// mis-shaped serves nobody — it must count as a dispatched, dropped
// window rather than vanish from the batch statistics.
func TestAllMalformedWindowDropped(t *testing.T) {
	cfg := tinyConfig()
	cfg.BatchWindow = 0
	s := New(cfg)
	defer s.Close()

	slot := slotFor(t, s, "MR")
	corpus, _ := slot.eng.Inst.AccSeqs()
	bad := []tensor.Vector{tensor.NewVector(len(corpus[0][0]) + 1)}
	if _, err := s.Submit(context.Background(), Request{Bench: "MR", Seq: bad, Ref: -1}); err == nil {
		t.Fatal("malformed request served")
	}

	b := s.Stats().Benches[0]
	if b.Errors != 1 || b.Served != 0 {
		t.Fatalf("Errors=%d Served=%d, want 1/0", b.Errors, b.Served)
	}
	if b.Windows != 1 || b.DroppedWindows != 1 {
		t.Fatalf("Windows=%d DroppedWindows=%d, want 1/1", b.Windows, b.DroppedWindows)
	}
	if b.RunBatches != 0 {
		t.Fatalf("RunBatches=%d, want 0", b.RunBatches)
	}
}
