// Package serve is the concurrent inference front-end over the
// simulator: the production-shaped serving loop the ROADMAP's north
// star asks for, built so the paper's §II-C trade-off can be exercised
// as a running system rather than a one-shot table.
//
// A Server owns a registry of per-benchmark core.Engines (lazily built
// on the first request, then shared by every worker), a bounded request
// queue, and a batching window: requests for the same benchmark that
// arrive within Config.BatchWindow of each other execute as one exact
// batch-B GPU launch sequence (kernels.RequestBatch — the §II-C
// server-style weight reuse), so each request's simulated latency is
// its queueing wait plus its batch's GPU time. A worker pool drains the
// batches: each worker replays the batch cost model on the simulator
// and runs real per-request inference at the engine's serving operating
// point, scoring accuracy against the corpus reference labels.
//
// The serving path is error-returning end to end: request validation
// goes through experiments.Lookup, inference through
// lstm.Network.ClassifyE, and evaluation through core.Engine's
// EvaluateSetE, so a malformed request costs one error response instead
// of the process. Worker goroutines are registered in the Daemons
// registry (the locklint-sanctioned daemon pattern) and Close drains
// the queue gracefully: accepted requests are still served.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobilstm/internal/core"
	"mobilstm/internal/experiments"
	"mobilstm/internal/gpu"
	"mobilstm/internal/kernels"
	"mobilstm/internal/lstm"
	"mobilstm/internal/model"
	"mobilstm/internal/sched"
	"mobilstm/internal/tensor"
)

// Sentinel errors of the serving path.
var (
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrQueueFull reports that the bounded request queue was full — the
	// server is saturated and the caller should back off.
	ErrQueueFull = errors.New("serve: request queue full")
)

// AutoSet selects the serving threshold set automatically per
// benchmark: the accuracy-oriented set (§VI-C), the most aggressive one
// whose loss stays user-imperceptible.
const AutoSet = -1

// Config shapes a Server.
type Config struct {
	// GPU is the simulated platform the serving engine is calibrated
	// against (the fleet's reference device); Profile the model
	// evaluation profile (quick or full shapes).
	GPU     gpu.Config
	Profile model.Profile

	// Device, when set (non-empty Name), is the simulated device class
	// this server's *cost model* runs on: batch GPU time, cold-start
	// build cost and utilization are priced on Device while the
	// classification artifact stays calibrated on GPU. The fleet layer
	// uses this to model heterogeneous shards that serve one shared,
	// bitwise-identical engine artifact. Zero value means Device == GPU.
	Device gpu.Config

	// Cache, when non-nil, is a shared warm-engine cache: engine builds
	// consult it first (a hit adopts the artifact and pays only the
	// install cost), and a cold build publishes its artifact for peers —
	// the GKM-style cache-propagation mechanism behind fleet pre-warming.
	Cache *EngineCache

	// buildHook, when non-nil, runs at the start of every engine build
	// and aborts it when it errors. Test seam for transient build
	// failures; nil in production.
	buildHook func(bench string) error

	// Mode is the execution flow served (default Combined); Set the
	// threshold set, or AutoSet for the per-benchmark AO point.
	Mode sched.Mode
	Set  int

	// Chain selects the kernel chain requests execute under
	// (tensor.ChainAuto follows the process default, which honors
	// MOBILSTM_KERNEL_CHAIN). The engine artifact itself is
	// chain-neutral — thresholds, predictors and cached weights are
	// identical under every chain — so warm-cache hits stay valid
	// across shards serving different chains; only the per-request
	// run options carry the selection.
	Chain tensor.KernelChain

	// Workers is the worker-pool size; QueueDepth bounds the request
	// queue; MaxBatch caps the batching window's batch size; and
	// BatchWindow is how long a partial batch waits for company before
	// dispatching anyway (<= 0 dispatches immediately, i.e. no
	// batching).
	Workers     int
	QueueDepth  int
	MaxBatch    int
	BatchWindow time.Duration

	// RequestTimeout bounds each request's end-to-end time when > 0;
	// it composes with the caller's context.
	RequestTimeout time.Duration
}

// DefaultConfig serves the combined optimization at the AO point on the
// Tegra X1.
func DefaultConfig() Config {
	return Config{
		GPU:         gpu.TegraX1(),
		Profile:     model.Default(),
		Mode:        sched.Combined,
		Set:         AutoSet,
		Workers:     2,
		QueueDepth:  64,
		MaxBatch:    4,
		BatchWindow: 2 * time.Millisecond,
	}
}

// Request is one inference request.
type Request struct {
	// Bench names the Table II benchmark to serve.
	Bench string
	// Seq is the input sequence. A nil Seq asks the server to pick a
	// corpus sequence (round-robin over the benchmark's accuracy
	// samples), whose reference label it knows.
	Seq []tensor.Vector
	// Ref is the reference label of a caller-supplied Seq; negative
	// means unknown (the response is then not accuracy-scored). Ignored
	// when Seq is nil.
	Ref int
}

// Response is the served result of one request.
type Response struct {
	Bench string
	// Class is the classification the serving operating point produced.
	Class int
	// Ref is the reference label scored against, or -1 if unknown.
	Ref int
	// Set is the threshold set the benchmark is served at.
	Set int
	// BatchSize is the number of live requests in this request's batch.
	BatchSize int
	// WaitMs is the real queueing wait (arrival to dispatch); GPUMs the
	// simulated batch GPU time; ColdMs the engine-materialization cost
	// charged to this request's window (a cold JIT build, or the smaller
	// warm-artifact install, on the first window after the engine came
	// up under traffic; zero once the engine is warm); LatencyMs their
	// sum — the end-to-end response time of the §II-C batching trade
	// extended with the cold-start term.
	WaitMs    float64
	GPUMs     float64
	ColdMs    float64
	LatencyMs float64
	// Cold marks a response whose window paid a cold engine *build* (not
	// a warm install): the fleet's cold-start p99 is measured over these.
	Cold bool
	// Shard is the fleet shard that served the request; 0 on a
	// standalone server.
	Shard int
}

// request is the queued form of a Request.
type request struct {
	Request
	ctx     context.Context
	arrival time.Time
	resp    chan result
}

type result struct {
	r   *Response
	err error
}

// Server is the concurrent inference front-end. Create with New, stop
// with Close.
type Server struct {
	cfg   Config
	start time.Time

	queue    chan *request
	dispatch chan []*request
	daemons  Daemons

	mu      sync.Mutex
	closed  bool
	engines map[string]*engineSlot

	statsMu sync.Mutex
	stats   map[string]*benchStats
}

// New starts a server: one batching daemon plus the worker pool, all
// registered in the Daemons registry and collected by Close.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		queue:    make(chan *request, cfg.QueueDepth),
		dispatch: make(chan []*request),
		engines:  make(map[string]*engineSlot),
		stats:    make(map[string]*benchStats),
	}
	s.daemons.Go(s.batchLoop)
	for i := 0; i < cfg.Workers; i++ {
		s.daemons.Go(s.workerLoop)
	}
	return s
}

// Submit enqueues one request and blocks until its response, the
// context's end, or the configured request timeout. Unknown benchmark
// names are rejected immediately (error-returning, not panicking).
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	if _, err := experiments.Lookup(req.Bench); err != nil {
		return nil, err
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	r := &request{
		Request: req,
		ctx:     ctx,
		arrival: time.Now(),
		resp:    make(chan result, 1),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	// The enqueue attempt is non-blocking, so holding the lock here is
	// cheap; it is what makes close(s.queue) safe against late sends.
	select {
	case s.queue <- r:
		s.mu.Unlock()
		s.bump(req.Bench, func(st *benchStats) { st.submitted++ })
	default:
		s.mu.Unlock()
		s.bump(req.Bench, func(st *benchStats) { st.rejected++ })
		return nil, ErrQueueFull
	}

	select {
	case res := <-r.resp:
		return res.r, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Warm builds a benchmark's serving engine (including its AO threshold
// sweep when Set is AutoSet) ahead of traffic, so first-request latency
// reflects steady-state serving rather than engine construction: the
// pending engine-materialization charge is absorbed here instead of
// being billed to the first request window. It returns the build error,
// if any; concurrent Warm calls share one build, and a failed build is
// retried by the next Warm or request instead of poisoning the
// benchmark. Warm restarts only this benchmark's activity baseline, so
// its Stats throughput is measured over post-warm traffic — other
// benchmarks' windows are untouched (it used to reset the global uptime
// clock, silently deflating every already-serving benchmark's
// Throughput).
func (s *Server) Warm(bench string) error {
	if _, err := experiments.Lookup(bench); err != nil {
		return err
	}
	slot := s.engine(bench)
	if slot.err != nil {
		return slot.err
	}
	slot.takeCharge()
	s.bump(bench, func(st *benchStats) { st.first = time.Now() })
	return nil
}

// Close stops accepting requests, drains the queue and the batching
// window (every accepted request is still served), and waits for all
// daemons to exit. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.daemons.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.daemons.Wait()
}

// pendingBatch is one benchmark's open batching window.
type pendingBatch struct {
	reqs     []*request
	deadline time.Time
}

// batchLoop is the batching daemon: it groups queued requests by
// benchmark and dispatches a batch when it reaches MaxBatch or its
// window deadline — the queueing wait the §II-C analysis charges
// against server-style weight reuse. On queue close it flushes every
// open window so Close drains gracefully.
//
// The deadline timer follows the Stop-and-drain idiom: Reset on a timer
// whose tick already fired (a size-triggered dispatch raced the window
// deadline) would leave the stale tick in the channel, so a later
// select iteration would "fire" with the old timestamp and flush
// against a stale now. The timer is therefore disarmed (Stop + drain)
// before every Reset, left disarmed while no window is open, and flush
// always evaluates deadlines against a fresh time.Now().
func (s *Server) batchLoop() {
	defer close(s.dispatch)
	pending := make(map[string]*pendingBatch)
	timer := time.NewTimer(time.Hour)
	armed := true
	// disarm stops the timer and drains a tick that fired before the
	// Stop landed, so the channel is provably empty afterwards.
	disarm := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
	}
	disarm()

	flush := func(now time.Time, all bool) {
		for _, name := range sortedBatchKeys(pending) {
			pb := pending[name]
			if all || !pb.deadline.After(now) {
				delete(pending, name)
				s.dispatch <- pb.reqs
			}
		}
	}

	for {
		var timeC <-chan time.Time
		if next, ok := earliestDeadline(pending); ok {
			if armed {
				disarm()
			}
			timer.Reset(time.Until(next))
			armed = true
			timeC = timer.C
		} else if armed {
			disarm()
		}
		select {
		case r, ok := <-s.queue:
			if !ok {
				flush(time.Time{}, true)
				return
			}
			pb := pending[r.Bench]
			if pb == nil {
				pb = &pendingBatch{deadline: r.arrival.Add(s.cfg.BatchWindow)}
				pending[r.Bench] = pb
			}
			pb.reqs = append(pb.reqs, r)
			if len(pb.reqs) >= s.cfg.MaxBatch || s.cfg.BatchWindow <= 0 {
				delete(pending, r.Bench)
				s.dispatch <- pb.reqs
			}
		case <-timeC:
			// The tick is consumed, so the timer is disarmed by
			// definition; deadlines are re-evaluated against the wall
			// clock, not the (possibly delayed) tick timestamp.
			armed = false
			flush(time.Now(), false)
		}
	}
}

// earliestDeadline returns the soonest open-window deadline.
func earliestDeadline(pending map[string]*pendingBatch) (time.Time, bool) {
	var next time.Time
	found := false
	for _, pb := range pending {
		if !found || pb.deadline.Before(next) {
			next = pb.deadline
			found = true
		}
	}
	return next, found
}

// sortedBatchKeys keeps multi-benchmark dispatch order deterministic.
func sortedBatchKeys(pending map[string]*pendingBatch) []string {
	names := make([]string, 0, len(pending))
	for name := range pending {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// workerLoop serves dispatched batches until the batcher closes the
// dispatch channel.
func (s *Server) workerLoop() {
	for batch := range s.dispatch {
		s.serveBatch(batch)
	}
}

// serveBatch executes one batch: simulated batch-B GPU time for the
// launch sequence, then ONE real batched inference (ClassifyBatchE)
// covering every valid request in the window — the host-side
// counterpart of the §II-C server-style weight reuse the cost model
// charges, bitwise identical per member to the serial serving path.
// Requests whose context ended while queued are dropped (and counted)
// before the GPU launch is sized; malformed caller-supplied sequences
// get per-request error responses without sinking the rest of the
// batch.
//
// Accounting invariant: every dispatched window bumps batches exactly
// once; a window that serves nobody (all cancelled, all malformed, or
// an engine/classify error) additionally bumps dropped, so MeanBatch
// and the realized weight-reuse factor reflect dispatch reality instead
// of silently skipping empty windows.
func (s *Server) serveBatch(batch []*request) {
	bench := batch[0].Bench
	slot := s.engine(bench)
	if slot.err != nil {
		for _, r := range batch {
			r.resp <- result{err: slot.err}
		}
		s.bump(bench, func(st *benchStats) {
			st.errors += int64(len(batch))
			st.batches++
			st.dropped++
		})
		return
	}

	dispatched := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			s.bump(bench, func(st *benchStats) { st.cancelled++ })
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		s.bump(bench, func(st *benchStats) {
			st.batches++
			st.dropped++
		})
		return
	}

	// Resolve and validate every member before the batched launch:
	// corpus requests draw their round-robin sample in queue order, and
	// a malformed caller sequence is answered alone instead of failing
	// the whole window.
	seqs := make([][]tensor.Vector, 0, len(live))
	refs := make([]int, 0, len(live))
	lens := make([]int, 0, len(live))
	valid := live[:0]
	for _, r := range live {
		seq, ref := r.Seq, r.Ref
		if seq == nil {
			seq, ref = slot.corpus()
			// Corpus members run the profile-sized sample but are costed
			// at the benchmark's full Table II length like every exact
			// serving request.
			lens = append(lens, slot.eng.B.Length)
		} else {
			if err := slot.net().CheckSequence(seq); err != nil {
				r.resp <- result{err: err}
				s.bump(bench, func(st *benchStats) { st.errors++ })
				continue
			}
			if ref < 0 {
				ref = -1
			}
			lens = append(lens, len(seq))
		}
		seqs = append(seqs, seq)
		refs = append(refs, ref)
		valid = append(valid, r)
	}
	if len(valid) == 0 {
		s.bump(bench, func(st *benchStats) {
			st.batches++
			st.dropped++
		})
		return
	}

	gpuMs, err := slot.batchMsRagged(lens)
	if err == nil {
		var classes []int
		classes, err = slot.net().ClassifyBatchE(seqs, slot.opts)
		if err == nil {
			// The first successfully served window after the engine came
			// up absorbs the pending materialization charge: a cold JIT
			// build, or the smaller warm-artifact install. Warm engines
			// (and pre-warmed ones) carry no charge.
			coldMs, coldBuild := slot.takeCharge()
			for i, r := range valid {
				waitMs := dispatched.Sub(r.arrival).Seconds() * 1e3
				resp := &Response{
					Bench:     bench,
					Class:     classes[i],
					Ref:       refs[i],
					Set:       slot.set,
					BatchSize: len(valid),
					WaitMs:    waitMs,
					GPUMs:     gpuMs,
					ColdMs:    coldMs,
					Cold:      coldBuild,
					LatencyMs: waitMs + gpuMs + coldMs,
				}
				s.bump(bench, func(st *benchStats) {
					st.served++
					st.waitSum += resp.WaitMs
					st.gpuSum += resp.GPUMs
					st.latencies = append(st.latencies, resp.LatencyMs)
					if resp.Cold {
						st.coldLats = append(st.coldLats, resp.LatencyMs)
					} else {
						st.warmLats = append(st.warmLats, resp.LatencyMs)
					}
					st.set = slot.set
					if resp.Ref >= 0 {
						st.scored++
						if resp.Class == resp.Ref {
							st.correct++
						}
					}
				})
				r.resp <- result{r: resp}
			}
			s.bump(bench, func(st *benchStats) {
				st.batches++
				st.runBatches++
				st.sumBatch += int64(len(valid))
				st.busyMs += gpuMs + coldMs
			})
			return
		}
	}
	for _, r := range valid {
		r.resp <- result{err: err}
	}
	s.bump(bench, func(st *benchStats) {
		st.errors += int64(len(valid))
		st.batches++
		st.dropped++
	})
}

// engineSlot is one benchmark's shared serving state: the engine (built
// once, then shared by every worker), the resolved threshold set and
// its run options, the corpus cursor, the pending engine-materialization
// charge, and the per-batch-size GPU cost cache.
type engineSlot struct {
	once sync.Once
	err  error

	eng  *core.Engine
	set  int
	opts lstm.RunOptions

	// installed marks a slot that adopted a warm cache artifact instead
	// of paying the cold build.
	installed bool

	// chargeMs is the simulated engine-materialization cost on this
	// server's device class — the full JIT build on a cache miss, the
	// warm-artifact install on a hit. It is billed exactly once: charge
	// flips false when Warm or the first served window takes it.
	chargeMs   float64
	chargeCold bool
	charge     atomic.Bool

	cursor atomic.Int64

	costMu sync.Mutex
	costMs map[int]float64
	sim    *gpu.Simulator
	kb     *kernels.Builder
}

// takeCharge consumes the slot's pending engine-materialization charge:
// the milliseconds to add to the taking window's latency and whether
// that charge was a cold build (vs a warm-artifact install). At most
// one caller gets a non-zero charge.
func (slot *engineSlot) takeCharge() (ms float64, coldBuild bool) {
	if slot.charge.CompareAndSwap(true, false) {
		return slot.chargeMs, slot.chargeCold
	}
	return 0, false
}

// engine returns (building on first use) the slot for a benchmark. The
// sync.Once guard means concurrent first requests block on one build
// instead of racing — the failure mode the Engine.Baseline fix and its
// -race regression test pin down. A failed build is NOT latched: the
// poisoned slot is evicted from the registry, so the next request or
// Warm retries with a fresh slot instead of serving a transient
// EvaluateSetE failure for the server's lifetime.
func (s *Server) engine(bench string) *engineSlot {
	s.mu.Lock()
	slot, ok := s.engines[bench]
	if !ok {
		slot = &engineSlot{costMs: make(map[int]float64)}
		s.engines[bench] = slot
	}
	s.mu.Unlock()
	slot.once.Do(func() {
		slot.build(bench, s.cfg)
		switch {
		case slot.err != nil:
		case slot.installed:
			s.bump(bench, func(st *benchStats) { st.installs++ })
		default:
			s.bump(bench, func(st *benchStats) { st.coldBuilds++ })
		}
	})
	if slot.err != nil {
		s.mu.Lock()
		if s.engines[bench] == slot {
			delete(s.engines, bench)
		}
		s.mu.Unlock()
	}
	return slot
}

// artifactKey identifies an engine artifact in the shared cache: the
// artifact is a pure function of benchmark, evaluation profile, served
// mode and threshold-set policy (all calibrated on the fleet's
// reference GPU), never of the shard's device class.
func artifactKey(bench string, cfg Config) string {
	return fmt.Sprintf("%s|%s|%d|%d", bench, cfg.Profile.Name, cfg.Mode, cfg.Set)
}

func (slot *engineSlot) build(bench string, cfg Config) {
	if cfg.buildHook != nil {
		if err := cfg.buildHook(bench); err != nil {
			slot.err = err
			return
		}
	}
	b, err := experiments.Lookup(bench)
	if err != nil {
		slot.err = err
		return
	}
	// The cost model runs on the shard's device class; the
	// classification artifact stays calibrated on the reference GPU so
	// every shard serves bitwise-identical classes.
	dev := cfg.Device
	if dev.Name == "" {
		dev = cfg.GPU
	}
	slot.sim = gpu.NewSimulator(dev)
	slot.kb = kernels.NewBuilder(dev)

	key := artifactKey(bench, cfg)
	if art, ok := cfg.Cache.Acquire(key); ok {
		// Warm path: adopt the peer-built artifact and pay only the
		// install cost (weight upload + unpack) instead of the JIT build.
		slot.eng, slot.set, slot.opts = art.Eng, art.Set, art.Opts
		slot.opts.Chain = cfg.Chain
		slot.installed = true
		slot.chargeMs = slot.simMs(slot.kb.EngineInstall(b.Hidden, b.Layers))
		slot.chargeCold = false
		slot.charge.Store(true)
		return
	}
	// A miss registered this slot as the key's fleet-wide builder: every
	// exit below must settle the registration (Store on success, Abort on
	// failure) or peers block forever.
	slot.eng = core.NewEngine(b, cfg.Profile, cfg.GPU)
	slot.set = cfg.Set
	if slot.set == AutoSet {
		outs := make([]*core.Outcome, core.ThresholdSets)
		for i := range outs {
			o, err := slot.eng.EvaluateSetE(cfg.Mode, i)
			if err != nil {
				slot.err = err
				cfg.Cache.Abort(key)
				return
			}
			outs[i] = o
		}
		slot.set = core.AOSet(outs)
	}
	slot.opts = slot.eng.RunOptionsFor(cfg.Mode, slot.set)
	slot.chargeMs = slot.simMs(slot.kb.EngineBuild(b.Hidden, b.Layers))
	slot.chargeCold = true
	slot.charge.Store(true)
	// Publish the chain-neutral artifact before stamping this shard's
	// chain onto the local run options: peers adopting the artifact pick
	// their own chain.
	cfg.Cache.Store(key, &EngineArtifact{Eng: slot.eng, Set: slot.set, Opts: slot.opts})
	slot.opts.Chain = cfg.Chain
}

// simMs prices a launch sequence on the slot's device class. Only
// called from build (inside the slot's Once), so no cost-cache lock is
// needed.
func (slot *engineSlot) simMs(ks []gpu.KernelSpec) float64 {
	return slot.sim.Run(ks).Seconds * 1e3
}

func (slot *engineSlot) net() *lstm.Network { return slot.eng.Inst.Net }

// corpus returns the next round-robin accuracy sample and its reference
// label.
func (slot *engineSlot) corpus() ([]tensor.Vector, int) {
	seqs, refs := slot.eng.Inst.AccSeqs()
	i := int((slot.cursor.Add(1) - 1) % int64(len(seqs)))
	return seqs[i], refs[i]
}

// batchMs returns the simulated GPU milliseconds of one batch-B launch
// sequence at the benchmark's full Table II shape, cached per batch
// size.
func (slot *engineSlot) batchMs(batch int) (ms float64, err error) {
	slot.costMu.Lock()
	defer slot.costMu.Unlock()
	if ms, ok := slot.costMs[batch]; ok {
		return ms, nil
	}
	defer tensor.Guard(&err)
	b := slot.eng.B
	ks := slot.kb.RequestBatch(b.Hidden, b.Length, b.Layers, batch)
	ms = slot.sim.Run(ks).Seconds * 1e3
	slot.costMs[batch] = ms
	return ms, nil
}

// batchMsRagged is batchMs for a window of per-request lengths: equal
// lengths at the benchmark's Table II shape take the cached
// RequestBatch path; a ragged window replays the active-set launch
// sequence (RequestBatchRagged), uncached since its shape is the whole
// length vector.
func (slot *engineSlot) batchMsRagged(lens []int) (ms float64, err error) {
	b := slot.eng.B
	uniform := true
	for _, ln := range lens {
		if ln != b.Length {
			uniform = false
			break
		}
	}
	if uniform {
		return slot.batchMs(len(lens))
	}
	defer tensor.Guard(&err)
	slot.costMu.Lock()
	defer slot.costMu.Unlock()
	ks := slot.kb.RequestBatchRagged(b.Hidden, b.Layers, lens)
	return slot.sim.Run(ks).Seconds * 1e3, nil
}
