package serve

import (
	"fmt"
	"sort"
	"time"

	"mobilstm/internal/report"
	"mobilstm/internal/stats"
	"mobilstm/internal/tensor"
)

// benchStats is one benchmark's serving counters, guarded by the
// server's stats mutex.
type benchStats struct {
	// first is the benchmark's activity baseline: the earlier of its
	// first submitted request and its Warm call. Throughput is measured
	// over the window since first, per benchmark — NOT over the global
	// server uptime, which Warm used to reset for everybody.
	first time.Time

	submitted int64
	served    int64
	rejected  int64
	cancelled int64
	errors    int64

	batches    int64
	dropped    int64
	runBatches int64
	sumBatch   int64

	coldBuilds int64
	installs   int64

	scored  int64
	correct int64

	waitSum   float64
	gpuSum    float64
	busyMs    float64
	latencies []float64
	coldLats  []float64
	warmLats  []float64

	set int
}

// bump applies fn to a benchmark's counters under the stats lock. The
// first touch stamps the benchmark's activity baseline.
func (s *Server) bump(bench string, fn func(*benchStats)) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := s.stats[bench]
	if st == nil {
		st = &benchStats{set: -1}
		s.stats[bench] = st
	}
	if st.first.IsZero() {
		st.first = time.Now()
	}
	fn(st)
}

// BenchSnapshot is one benchmark's view in a Snapshot.
type BenchSnapshot struct {
	Bench string
	// Set is the threshold set the benchmark is served at (-1 until the
	// first batch resolves it).
	Set int

	// Counters over the snapshot's uptime.
	Submitted, Served, Rejected, Cancelled, Errors int64

	// MeanBatch is the mean served batch size across dispatched windows
	// (dropped windows count with size zero — dispatch reality, not just
	// the windows that happened to run).
	MeanBatch float64
	// Windows counts dispatched batching windows; DroppedWindows the
	// ones that served nobody (all members cancelled or malformed, or
	// the window failed outright).
	Windows        int64
	DroppedWindows int64
	// RunBatches counts batched forward launches (one ClassifyBatch per
	// successfully served window): Served/RunBatches is the realized
	// host-side weight-reuse factor of the §II-C batching trade.
	RunBatches int64
	// WindowS is the benchmark's activity window in seconds (since its
	// first submit or Warm); Throughput is served requests per second of
	// that window.
	WindowS    float64
	Throughput float64
	// ColdBuilds counts cold engine builds (full JIT) this benchmark
	// paid here; Installs counts warm-artifact installs adopted from the
	// shared cache instead.
	ColdBuilds int64
	Installs   int64
	// ColdServed counts responses whose window absorbed a cold build;
	// ColdP99Ms / WarmP99Ms split the p99 latency by cold vs warm — the
	// fleet's cold-start-vs-steady-state gap, made measurable.
	ColdServed int64
	ColdP99Ms  float64
	WarmP99Ms  float64
	// MeanWaitMs / MeanGPUMs split the mean latency into queueing wait
	// and simulated batch GPU time; P50/P95LatencyMs are end-to-end
	// (cold-start charges included).
	MeanWaitMs   float64
	MeanGPUMs    float64
	P50LatencyMs float64
	P95LatencyMs float64
	// Accuracy is the fraction of scored responses matching their
	// reference label; Scored how many responses had one.
	Accuracy float64
	Scored   int64
}

// Snapshot is a point-in-time view of the server's counters.
type Snapshot struct {
	Uptime time.Duration
	// Device names the simulated device class the server's cost model
	// runs on (the shard's hardware in a fleet).
	Device string
	// Chain names the resolved kernel chain requests execute under
	// (the server's Config.Chain after ChainAuto resolves to the
	// process default).
	Chain   string
	Benches []BenchSnapshot

	// GPUBusyMs sums simulated engine time (batch GPU launches plus
	// engine-materialization charges) across benchmarks; Utilization is
	// that busy time over wall-clock uptime — the per-shard load signal
	// the fleet report surfaces.
	GPUBusyMs   float64
	Utilization float64

	// Fleet-facing aggregates across this server's benchmarks.
	ColdBuilds int64
	Installs   int64
	ColdP99Ms  float64
	WarmP99Ms  float64
	P95Ms      float64
}

// device is the simulated device class the server's cost model runs on.
func (s *Server) device() string {
	if s.cfg.Device.Name != "" {
		return s.cfg.Device.Name
	}
	return s.cfg.GPU.Name
}

// Stats snapshots the serving counters. Safe to call concurrently with
// serving; benchmarks are ordered by name.
func (s *Server) Stats() Snapshot {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	now := time.Now()
	snap := Snapshot{
		Uptime: now.Sub(s.start),
		Device: s.device(),
		Chain:  tensor.ResolveChain(s.cfg.Chain).String(),
	}
	names := make([]string, 0, len(s.stats))
	for name := range s.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	var allLats, coldAll, warmAll []float64
	for _, name := range names {
		st := s.stats[name]
		bs := BenchSnapshot{
			Bench:          name,
			Set:            st.set,
			Submitted:      st.submitted,
			Served:         st.served,
			Rejected:       st.rejected,
			Cancelled:      st.cancelled,
			Errors:         st.errors,
			Scored:         st.scored,
			Windows:        st.batches,
			DroppedWindows: st.dropped,
			RunBatches:     st.runBatches,
			ColdBuilds:     st.coldBuilds,
			Installs:       st.installs,
			ColdServed:     int64(len(st.coldLats)),
		}
		if st.batches > 0 {
			bs.MeanBatch = float64(st.sumBatch) / float64(st.batches)
		}
		if !st.first.IsZero() {
			bs.WindowS = now.Sub(st.first).Seconds()
		}
		if bs.WindowS > 0 {
			bs.Throughput = float64(st.served) / bs.WindowS
		}
		if st.served > 0 {
			bs.MeanWaitMs = st.waitSum / float64(st.served)
			bs.MeanGPUMs = st.gpuSum / float64(st.served)
			bs.P50LatencyMs = stats.QuantileOf(st.latencies, 0.50)
			bs.P95LatencyMs = stats.QuantileOf(st.latencies, 0.95)
		}
		if len(st.coldLats) > 0 {
			bs.ColdP99Ms = stats.QuantileOf(st.coldLats, 0.99)
		}
		if len(st.warmLats) > 0 {
			bs.WarmP99Ms = stats.QuantileOf(st.warmLats, 0.99)
		}
		if st.scored > 0 {
			bs.Accuracy = float64(st.correct) / float64(st.scored)
		}
		snap.GPUBusyMs += st.busyMs
		snap.ColdBuilds += st.coldBuilds
		snap.Installs += st.installs
		allLats = append(allLats, st.latencies...)
		coldAll = append(coldAll, st.coldLats...)
		warmAll = append(warmAll, st.warmLats...)
		snap.Benches = append(snap.Benches, bs)
	}
	if up := snap.Uptime.Seconds(); up > 0 {
		snap.Utilization = snap.GPUBusyMs / (up * 1e3)
	}
	if len(coldAll) > 0 {
		snap.ColdP99Ms = stats.QuantileOf(coldAll, 0.99)
	}
	if len(warmAll) > 0 {
		snap.WarmP99Ms = stats.QuantileOf(warmAll, 0.99)
	}
	if len(allLats) > 0 {
		snap.P95Ms = stats.QuantileOf(allLats, 0.95)
	}
	return snap
}

// Report renders the snapshot as a per-benchmark serving table.
func (snap Snapshot) Report() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Serving stats (%s, %s chain, %.1fs uptime, %.1f%% busy)",
			snap.Device, snap.Chain, snap.Uptime.Seconds(), snap.Utilization*100),
		"Benchmark", "set", "served", "rej", "req/s", "batch", "drop",
		"cold", "wait ms", "gpu ms", "p50 ms", "p95 ms",
		"p99 cold", "p99 warm", "accuracy")
	for _, b := range snap.Benches {
		acc := "-"
		if b.Scored > 0 {
			acc = fmt.Sprintf("%.1f%%", b.Accuracy*100)
		}
		t.AddRowf(b.Bench,
			fmt.Sprintf("%d", b.Set),
			fmt.Sprintf("%d", b.Served),
			fmt.Sprintf("%d", b.Rejected),
			fmt.Sprintf("%.1f", b.Throughput),
			fmt.Sprintf("%.1f", b.MeanBatch),
			fmt.Sprintf("%d", b.DroppedWindows),
			fmt.Sprintf("%d/%d", b.ColdBuilds, b.Installs),
			fmt.Sprintf("%.2f", b.MeanWaitMs),
			fmt.Sprintf("%.2f", b.MeanGPUMs),
			fmt.Sprintf("%.2f", b.P50LatencyMs),
			fmt.Sprintf("%.2f", b.P95LatencyMs),
			quantileCell(b.ColdP99Ms, b.ColdServed > 0),
			quantileCell(b.WarmP99Ms, b.Served > b.ColdServed),
			acc)
	}
	return t
}

// quantileCell formats a latency quantile, or "-" when no sample backs
// it.
func quantileCell(ms float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.2f", ms)
}
