package serve

import (
	"fmt"
	"sort"
	"time"

	"mobilstm/internal/report"
	"mobilstm/internal/stats"
)

// benchStats is one benchmark's serving counters, guarded by the
// server's stats mutex.
type benchStats struct {
	submitted int64
	served    int64
	rejected  int64
	cancelled int64
	errors    int64

	batches    int64
	runBatches int64
	sumBatch   int64

	scored  int64
	correct int64

	waitSum   float64
	gpuSum    float64
	latencies []float64

	set int
}

// bump applies fn to a benchmark's counters under the stats lock.
func (s *Server) bump(bench string, fn func(*benchStats)) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	st := s.stats[bench]
	if st == nil {
		st = &benchStats{set: -1}
		s.stats[bench] = st
	}
	fn(st)
}

// BenchSnapshot is one benchmark's view in a Snapshot.
type BenchSnapshot struct {
	Bench string
	// Set is the threshold set the benchmark is served at (-1 until the
	// first batch resolves it).
	Set int

	// Counters over the snapshot's uptime.
	Submitted, Served, Rejected, Cancelled, Errors int64

	// MeanBatch is the mean live batch size across dispatched batches.
	MeanBatch float64
	// RunBatches counts batched forward launches (one ClassifyBatch per
	// dispatched window): Served/RunBatches is the realized host-side
	// weight-reuse factor of the §II-C batching trade.
	RunBatches int64
	// Throughput is served requests per second of uptime.
	Throughput float64
	// MeanWaitMs / MeanGPUMs split the mean latency into queueing wait
	// and simulated batch GPU time; P50/P95LatencyMs are end-to-end.
	MeanWaitMs   float64
	MeanGPUMs    float64
	P50LatencyMs float64
	P95LatencyMs float64
	// Accuracy is the fraction of scored responses matching their
	// reference label; Scored how many responses had one.
	Accuracy float64
	Scored   int64
}

// Snapshot is a point-in-time view of the server's counters.
type Snapshot struct {
	Uptime  time.Duration
	Benches []BenchSnapshot
}

// Stats snapshots the serving counters. Safe to call concurrently with
// serving; benchmarks are ordered by name.
func (s *Server) Stats() Snapshot {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	snap := Snapshot{Uptime: time.Since(s.start)}
	names := make([]string, 0, len(s.stats))
	for name := range s.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := s.stats[name]
		bs := BenchSnapshot{
			Bench:      name,
			Set:        st.set,
			Submitted:  st.submitted,
			Served:     st.served,
			Rejected:   st.rejected,
			Cancelled:  st.cancelled,
			Errors:     st.errors,
			Scored:     st.scored,
			RunBatches: st.runBatches,
		}
		if st.batches > 0 {
			bs.MeanBatch = float64(st.sumBatch) / float64(st.batches)
		}
		if up := snap.Uptime.Seconds(); up > 0 {
			bs.Throughput = float64(st.served) / up
		}
		if st.served > 0 {
			bs.MeanWaitMs = st.waitSum / float64(st.served)
			bs.MeanGPUMs = st.gpuSum / float64(st.served)
			bs.P50LatencyMs = stats.QuantileOf(st.latencies, 0.50)
			bs.P95LatencyMs = stats.QuantileOf(st.latencies, 0.95)
		}
		if st.scored > 0 {
			bs.Accuracy = float64(st.correct) / float64(st.scored)
		}
		snap.Benches = append(snap.Benches, bs)
	}
	return snap
}

// Report renders the snapshot as a per-benchmark serving table.
func (snap Snapshot) Report() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Serving stats (%.1fs uptime)", snap.Uptime.Seconds()),
		"Benchmark", "set", "served", "rej", "req/s", "batch",
		"wait ms", "gpu ms", "p50 ms", "p95 ms", "accuracy")
	for _, b := range snap.Benches {
		acc := "-"
		if b.Scored > 0 {
			acc = fmt.Sprintf("%.1f%%", b.Accuracy*100)
		}
		t.AddRowf(b.Bench,
			fmt.Sprintf("%d", b.Set),
			fmt.Sprintf("%d", b.Served),
			fmt.Sprintf("%d", b.Rejected),
			fmt.Sprintf("%.1f", b.Throughput),
			fmt.Sprintf("%.1f", b.MeanBatch),
			fmt.Sprintf("%.2f", b.MeanWaitMs),
			fmt.Sprintf("%.2f", b.MeanGPUMs),
			fmt.Sprintf("%.2f", b.P50LatencyMs),
			fmt.Sprintf("%.2f", b.P95LatencyMs),
			acc)
	}
	return t
}
