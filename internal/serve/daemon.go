package serve

import "sync"

// Daemons is the sanctioned registry for long-lived goroutines — the
// daemon pattern mobilstm-lint's locklint analyzer recognizes. The
// orphan-goroutine rule normally requires every `go` statement to have a
// collection point in the same function; a goroutine launched through
// Go is instead accounted in the registry's WaitGroup at launch time
// (the wg.Add is what locklint keys on), and the owner collects the
// whole fleet with Wait during shutdown. This keeps the serving loop's
// batcher and worker daemons lint:ignore-free while preserving the
// invariant the rule protects: no goroutine outlives its owner
// unobserved.
type Daemons struct {
	wg sync.WaitGroup
}

// Go launches fn as a registered daemon goroutine.
func (d *Daemons) Go(fn func()) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		fn()
	}()
}

// Wait blocks until every registered daemon has returned.
func (d *Daemons) Wait() {
	d.wg.Wait()
}
