package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(8)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestNormF32(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.NormF32(3, 0.5))
	}
	if m := sum / n; math.Abs(m-3) > 0.02 {
		t.Fatalf("NormF32 mean %v, want ~3", m)
	}
}

func TestUniform(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of [2,5): %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(12)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %v", rate)
	}
}
