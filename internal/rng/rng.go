// Package rng provides a small, fast, deterministic random number
// generator used by every stochastic component in mobilstm (weight
// synthesis, dataset generation, the simulated user panel).
//
// All experiments in the repository are seeded so that figures and tables
// regenerate bit-identically across runs. The generator is xoshiro256**,
// which has a 256-bit state, passes BigCrush, and is trivially splittable
// via Jump-free reseeding with splitmix64.
package rng

import "math"

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
	// spare holds a cached second normal deviate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// New returns a generator seeded from the given seed via splitmix64, so
// that nearby seeds produce uncorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's. It consumes one value from the receiver.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//lint:ignore panicpolicy rng is the dependency-free leaf package; importing tensor for Panicf would cycle through tensor's own tests, which seed via rng
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.spareOK = true
	return u * m
}

// NormF32 returns a normal deviate with the given mean and standard
// deviation as a float32.
func (r *RNG) NormF32(mean, std float64) float32 {
	return float32(mean + std*r.Norm())
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
