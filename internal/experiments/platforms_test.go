package experiments

import (
	"strings"
	"testing"

	"mobilstm/internal/gpu"
	"mobilstm/internal/intercell"
)

func TestCrossPlatformTable(t *testing.T) {
	s := tinySuite()
	out := s.CrossPlatform("MR").String()
	for _, cfg := range gpu.Platforms() {
		if !strings.Contains(out, cfg.Name) {
			t.Fatalf("missing platform %q in:\n%s", cfg.Name, out)
		}
	}
}

func TestMTSVariesAcrossPlatforms(t *testing.T) {
	// The point of the offline MTS discovery: the shared/DRAM roofline
	// crossover moves with the platform's bandwidth ratio, so at least
	// one platform must have a different MTS than the TX1.
	h := 512
	base := intercell.FindMTS(gpu.TegraX1(), h, 16)
	varied := false
	for _, cfg := range gpu.Platforms() {
		if intercell.FindMTS(cfg, h, 16) != base {
			varied = true
		}
	}
	if !varied {
		t.Fatal("MTS identical across all platform generations")
	}
}

func TestCrossPlatformPanicsOnUnknown(t *testing.T) {
	s := tinySuite()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown benchmark")
		}
	}()
	s.CrossPlatform("bogus")
}

func TestFleetClassesRoundRobin(t *testing.T) {
	plats := gpu.Platforms()
	classes := FleetClasses(2*len(plats) + 1)
	for i, c := range classes {
		if want := plats[i%len(plats)].Name; c.Name != want {
			t.Fatalf("shard %d class %q, want %q (deterministic round-robin)", i, c.Name, want)
		}
	}
	if got := FleetClasses(0); len(got) != 1 {
		t.Fatalf("FleetClasses(0) gave %d classes, want clamp to 1", len(got))
	}
}
