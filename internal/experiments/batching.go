package experiments

import (
	"fmt"

	"mobilstm/internal/gpu"
	"mobilstm/internal/kernels"
	"mobilstm/internal/report"
	"mobilstm/internal/sched"
)

// RequestBatching contrasts the two ways to reuse the united weight
// matrix: batching *across concurrent requests* (exact, but each request
// waits for B-1 others to arrive — hopeless for an interactive IPA with
// one user) versus the paper's tissues, which batch *across cells of the
// same request* at a small accuracy cost. The per-inference GPU time of
// batch-B converges to the tissue flow's, but its end-to-end latency
// includes the queueing wait.
func (s *Suite) RequestBatching(benchName string, interArrivalMs float64) *report.Table {
	b := mustLookup(benchName)
	cfg := s.cfg.GPU
	sim := gpu.NewSimulator(cfg)
	kb := kernels.NewBuilder(cfg)

	t := report.NewTable(
		fmt.Sprintf("Weight reuse: request batching vs tissues (%s, %.0f ms between requests)",
			benchName, interArrivalMs),
		"Execution", "GPU ms/request", "wait ms", "response ms", "accuracy")

	// Batch-B baseline: kernels.RequestBatch — one Sgemm(U, H_B) per
	// cell over the B requests' vectors. The serve worker pool charges
	// batches with the same model.
	batchGPU := func(batch int) float64 {
		ks := kb.RequestBatch(b.Hidden, b.Length, b.Layers, batch)
		return sim.Run(ks).Seconds * 1e3 / float64(batch)
	}

	for _, batch := range []int{1, 2, 4, 8} {
		gpuMs := batchGPU(batch)
		// The last request of a batch waits for the first to arrive.
		waitMs := float64(batch-1) * interArrivalMs
		name := fmt.Sprintf("request batch B=%d (exact)", batch)
		t.AddRowf(name,
			fmt.Sprintf("%.2f", gpuMs),
			fmt.Sprintf("%.0f", waitMs),
			fmt.Sprintf("%.2f", gpuMs*float64(batch)+waitMs),
			"100.0%")
	}

	// The paper's answer: tissue-batch the single request.
	ao := s.AOOutcome(benchName, sched.Combined)
	ms := ao.Result.Seconds * 1e3
	t.AddRowf("tissues + DRS at AO (this paper, B=1)",
		fmt.Sprintf("%.2f", ms), "0", fmt.Sprintf("%.2f", ms),
		fmt.Sprintf("%.1f%%", ao.Accuracy*100))
	return t
}

// BandwidthSensitivity sweeps the off-chip bandwidth and reports the
// baseline latency and the combined optimization's speedup: the paper's
// bottleneck analysis predicts the baseline is bandwidth-proportional and
// the optimizations matter most where bandwidth is scarce.
func (s *Suite) BandwidthSensitivity(benchName string) *report.Table {
	e := s.Engine(benchName)
	ao := s.AOOutcome(benchName, sched.Combined)
	t := report.NewTable(
		fmt.Sprintf("Off-chip bandwidth sensitivity (%s)", benchName),
		"DRAM bandwidth", "baseline ms", "combined ms", "speedup")
	for _, scale := range []float64{0.5, 1, 2, 4} {
		cfg := s.cfg.GPU
		cfg.DRAMBandwidth *= scale
		sim := gpu.NewSimulator(cfg)
		basePlan := sched.Plan{
			Cfg: cfg, Mode: sched.Baseline,
			Hidden: e.B.Hidden, Input: e.B.Hidden, Length: e.B.Length, Layers: e.B.Layers,
		}
		optPlan := basePlan
		optPlan.Mode = sched.Combined
		optPlan.MTS = e.MTS
		optPlan.Stats = ao.Stats
		optPlan.Seed = e.B.Seed ^ 0xfeed
		base := sim.Run(sched.Kernels(basePlan))
		opt := sim.Run(sched.Kernels(optPlan))
		t.AddRowf(fmt.Sprintf("%.1f GB/s", cfg.DRAMBandwidth/1e9),
			fmt.Sprintf("%.2f", base.Seconds*1e3),
			fmt.Sprintf("%.2f", opt.Seconds*1e3),
			report.X(base.Cycles/opt.Cycles))
	}
	return t
}
