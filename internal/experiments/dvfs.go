package experiments

import (
	"fmt"

	"mobilstm/internal/energy"
	"mobilstm/internal/gpu"
	"mobilstm/internal/report"
	"mobilstm/internal/sched"
)

// IsoLatencyDVFS spends the combined optimization's latency headroom on
// frequency scaling: drop to the lowest GPU clock state whose optimized
// latency still beats the baseline at full clock, and report the total
// energy saving. Memory-bound LSTM phases lose little speed at lower
// core clocks (the off-chip bandwidth is on its own rail), so most of
// the speedup converts into energy.
func (s *Suite) IsoLatencyDVFS(benchName string) *report.Table {
	e := s.Engine(benchName)
	base := e.Baseline()
	ao := s.AOOutcome(benchName, sched.Combined)

	t := report.NewTable(
		fmt.Sprintf("Iso-latency DVFS (%s, combined at AO)", benchName),
		"clock", "latency ms", "vs baseline", "system energy mJ", "saving")
	baseEnergy := base.Energy.Total()
	t.AddRowf(fmt.Sprintf("%.0f MHz (baseline flow)", s.cfg.GPU.ClockHz/1e6),
		fmt.Sprintf("%.2f", base.Result.Seconds*1e3), "1.00x",
		fmt.Sprintf("%.2f", baseEnergy*1e3), "-")

	for _, hz := range s.cfg.GPU.ClockStates() {
		cfg := s.cfg.GPU.AtClock(hz)
		sim := gpu.NewSimulator(cfg)
		plan := sched.Plan{
			Cfg: cfg, Mode: sched.Combined,
			Hidden: e.B.Hidden, Input: e.B.Hidden, Length: e.B.Length, Layers: e.B.Layers,
			MTS: e.MTS, Stats: ao.Stats, Seed: e.B.Seed ^ 0xfeed,
		}
		res := sim.Run(sched.Kernels(plan))
		v := gpu.VoltageScale(hz, s.cfg.GPU.ClockHz)
		br := energy.Of(s.cfg.Energy.AtVoltage(v), res, true)
		marker := ""
		if res.Seconds <= base.Result.Seconds {
			marker = fmt.Sprintf("%.1f%%", (1-br.Total()/baseEnergy)*100)
		} else {
			marker = "misses deadline"
		}
		t.AddRowf(fmt.Sprintf("%.0f MHz", hz/1e6),
			fmt.Sprintf("%.2f", res.Seconds*1e3),
			report.X(base.Result.Seconds/res.Seconds),
			fmt.Sprintf("%.2f", br.Total()*1e3),
			marker)
	}
	return t
}
