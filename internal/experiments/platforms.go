package experiments

import (
	"fmt"

	"mobilstm/internal/energy"
	"mobilstm/internal/gpu"
	"mobilstm/internal/intercell"
	"mobilstm/internal/report"
	"mobilstm/internal/sched"
)

// FleetClasses assigns a simulated device class to each of n fleet
// shards by round-robin over the Table I platform generations
// (gpu.Platforms: Tegra K1/X1/X2) — the ready-made heterogeneous
// hardware mix the ROADMAP's fleet-sharding item calls for. Shard i
// always gets the same class, so fleet layouts are reproducible across
// runs and the per-shard cost model (batch GPU time, cold-start build
// cost) is a pure function of the shard index.
func FleetClasses(n int) []gpu.Config {
	if n < 1 {
		n = 1
	}
	plats := gpu.Platforms()
	out := make([]gpu.Config, n)
	for i := range out {
		out[i] = plats[i%len(plats)]
	}
	return out
}

// CrossPlatform evaluates the framework across GPU generations (§IV-C:
// "the MTS is determined by the GPU configurations, a framework is needed
// to dynamically implement the LSTM layer reorganization scheme ... on
// different mobile GPUs"): the offline calibration re-discovers each
// platform's MTS and the optimizations re-tune, so the speedup carries
// over without manual retuning.
func (s *Suite) CrossPlatform(benchName string) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Cross-platform portability (%s, combined at fixed thresholds)", benchName),
		"Platform", "MTS", "baseline ms", "combined ms", "speedup", "energy saving")
	b := mustLookup(benchName)
	// Structural statistics are a property of the model and thresholds,
	// not the platform: measure them once on the suite's engine.
	e := s.Engine(benchName)
	ai, aa := e.Thresholds(6)
	stats := e.Structure(sched.Combined, ai, aa)
	for _, cfg := range gpu.Platforms() {
		mts := intercell.FindMTS(cfg, b.Hidden, 16)
		sim := gpu.NewSimulator(cfg)
		basePlan := sched.Plan{
			Cfg: cfg, Mode: sched.Baseline,
			Hidden: b.Hidden, Input: b.Hidden, Length: b.Length, Layers: b.Layers,
		}
		optPlan := basePlan
		optPlan.Mode = sched.Combined
		optPlan.MTS = mts
		optPlan.Stats = stats
		optPlan.Seed = b.Seed
		base := sim.Run(sched.Kernels(basePlan))
		opt := sim.Run(sched.Kernels(optPlan))
		saving := energy.Saving(
			energy.Of(s.cfg.Energy, base, false),
			energy.Of(s.cfg.Energy, opt, true))
		t.AddRowf(cfg.Name, fmt.Sprintf("%d", mts),
			fmt.Sprintf("%.2f", base.Seconds*1e3), fmt.Sprintf("%.2f", opt.Seconds*1e3),
			report.X(base.Cycles/opt.Cycles), report.Pct(saving))
	}
	return t
}
