package experiments

import (
	"fmt"

	"mobilstm/internal/energy"
	"mobilstm/internal/gpu"
	"mobilstm/internal/intercell"
	"mobilstm/internal/kernels"
	"mobilstm/internal/model"
	"mobilstm/internal/report"
	"mobilstm/internal/sched"
)

// TableI renders the platform specification (Table I).
func (s *Suite) TableI() *report.Table {
	t := report.NewTable("Table I: Platform Specifications", "Hardware", "Specification")
	cfg := s.cfg.GPU
	t.AddRowf("System", "Tegra X1 SoC (simulated; DESIGN.md §2)")
	t.AddRowf("CPU", "Cortex-A57 + Cortex-A53 (host model)")
	t.AddRowf("Memory", fmt.Sprintf("4GB LPDDR4, %.1fGB/s", cfg.DRAMBandwidth/1e9))
	t.AddRowf("GPU", fmt.Sprintf("Maxwell, %d Core, %.0fMHz", cfg.Cores(), cfg.ClockHz/1e6))
	t.AddRowf("L2 cache", fmt.Sprintf("%dKB, %d-way, %dB lines", cfg.L2Bytes>>10, cfg.L2Ways, cfg.L2LineBytes))
	t.AddRowf("Shared memory", fmt.Sprintf("%dKB/SM, %.0fB/cycle/SM", cfg.SharedBytesPerSM>>10, cfg.SharedBWBytesPerCycle))
	return t
}

// TableII renders the benchmark zoo (Table II).
func (s *Suite) TableII() *report.Table {
	t := report.NewTable("Table II: NLP applications", "Name", "Abbr.", "Hidden_Size", "Layers", "Length", "Classes")
	for _, b := range model.Zoo() {
		t.AddRow(b.Name, string(b.Task), b.Hidden, b.Layers, b.Length, b.Classes)
	}
	return t
}

// baselineResult simulates the full baseline flow of one benchmark.
func (s *Suite) baselineResult(name string) *gpu.Result {
	return s.Engine(name).Baseline().Result
}

// Fig4 reports the pipeline-stall breakdown of the Sgemv kernel per
// benchmark under the baseline flow — off-chip memory dominates.
func (s *Suite) Fig4() *report.Table {
	t := report.NewTable("Fig. 4: contribution to Sgemv pipeline stall cycles",
		"Benchmark", "off-chip", "on-chip", "barrier", "launch", "other", "sgemv share")
	for _, name := range BenchmarkNames() {
		res := s.baselineResult(name)
		fr := res.StallFractionsOf(kernels.NameSgemvU)
		t.AddRowf(name,
			report.Pct(fr[gpu.StallOffChip]), report.Pct(fr[gpu.StallOnChip]),
			report.Pct(fr[gpu.StallBarrier]), report.Pct(fr[gpu.StallLaunch]),
			report.Pct(fr[gpu.StallOther]),
			report.Pct(res.CycleShareOf(kernels.NameSgemvU)))
	}
	return t
}

// Fig5 quantifies the §III-A redundant-load observation with the L2 cache
// simulator: streaming the united U through the cache once per cell
// reloads the matrix from DRAM every time, so the actually-loaded bytes
// blow up by ~length x.
func (s *Suite) Fig5() *report.Table {
	t := report.NewTable("§III-A: actually-loaded vs original data size (one layer, L2 simulation)",
		"Benchmark", "U size", "unique data", "DRAM loaded", "blow-up")
	for _, b := range model.Zoo() {
		l2 := gpu.NewL2(s.cfg.GPU)
		uBytes := int64(16 * b.Hidden * b.Hidden)
		hBytes := int64(4 * b.Hidden)
		// Address space: U at 0, per-cell h vectors after it.
		var loaded int64
		for cell := 0; cell < b.Length; cell++ {
			loaded += l2.AccessRange(0, uBytes) * s.cfg.GPU.L2LineBytes
			hAddr := uBytes + int64(cell)*hBytes
			loaded += l2.AccessRange(hAddr, hBytes) * s.cfg.GPU.L2LineBytes
		}
		unique := uBytes + int64(b.Length)*hBytes
		t.AddRowf(b.Name,
			fmt.Sprintf("%.2fMB", float64(uBytes)/(1<<20)),
			fmt.Sprintf("%.2fMB", float64(unique)/(1<<20)),
			fmt.Sprintf("%.0fMB", float64(loaded)/(1<<20)),
			fmt.Sprintf("%.0fx", float64(loaded)/float64(unique)))
	}
	return t
}

// Fig6 reports off-chip vs on-chip bandwidth utilization during Sgemv.
func (s *Suite) Fig6() *report.Table {
	t := report.NewTable("Fig. 6: bandwidth utilization during Sgemv",
		"Benchmark", "off-chip util", "on-chip util")
	for _, name := range BenchmarkNames() {
		g := s.baselineResult(name).Group(kernels.NameSgemvU)
		t.AddRowf(name, report.Pct(g.DRAMUtil), report.Pct(g.SharedUtil))
	}
	return t
}

// Fig9 sweeps the tissue size for one layer of each benchmark: normalized
// performance rises until the shared-memory roofline saturates, then
// drops (the MTS), mirroring the paper's Fig. 9.
func (s *Suite) Fig9(maxT int) (*report.Figure, *report.Figure, map[string]int) {
	perf := report.NewFigure("Fig. 9a: normalized performance of one LSTM layer vs tissue size",
		"tissue size", "normalized performance")
	util := report.NewFigure("Fig. 9b: shared-memory bandwidth utilization vs tissue size",
		"tissue size", "utilization")
	mts := make(map[string]int)
	sim := gpu.NewSimulator(s.cfg.GPU)
	kb := kernels.NewBuilder(s.cfg.GPU)
	for _, b := range model.Zoo() {
		xs := make([]float64, 0, maxT)
		perfs := make([]float64, 0, maxT)
		utils := make([]float64, 0, maxT)
		var base float64
		for tt := 1; tt <= maxT; tt++ {
			tissues := (b.Length + tt - 1) / tt
			var ks []gpu.KernelSpec
			ks = append(ks, kb.SgemmWx(b.Hidden, b.Hidden, b.Length))
			for i := 0; i < tissues; i++ {
				k, _ := kb.SgemmTissue(b.Hidden, tt)
				ks = append(ks, k, kb.LstmEW(b.Hidden, tt))
			}
			res := sim.Run(ks)
			if tt == 1 {
				base = res.Cycles
			}
			g := res.Group(kernels.NameSgemmT)
			xs = append(xs, float64(tt))
			perfs = append(perfs, base/res.Cycles)
			utils = append(utils, g.SharedUtil)
		}
		perf.Add(b.Name, xs, perfs)
		util.Add(b.Name, xs, utils)
		mts[b.Name] = intercell.FindMTS(s.cfg.GPU, b.Hidden, maxT)
	}
	return perf, util, mts
}

// Fig14Row is one benchmark's headline result.
type Fig14Row struct {
	Benchmark string
	// Speedup and energy saving at the accuracy-oriented point per mode.
	Inter, Intra, Combined                   float64
	InterSaving, IntraSaving, CombinedSaving float64
	CombinedAccuracy                         float64
}

// Fig14 evaluates the headline result: speedup and energy saving of the
// inter-cell, intra-cell and combined optimizations at the 98% accuracy
// requirement, per benchmark plus the average.
func (s *Suite) Fig14() ([]Fig14Row, *report.Table) {
	rows := make([]Fig14Row, 0, 7)
	var avg Fig14Row
	for _, name := range BenchmarkNames() {
		inter := s.AOOutcome(name, sched.Inter)
		intra := s.AOOutcome(name, sched.Intra)
		comb := s.AOOutcome(name, sched.Combined)
		r := Fig14Row{
			Benchmark: name,
			Inter:     inter.Speedup, Intra: intra.Speedup, Combined: comb.Speedup,
			InterSaving: inter.EnergySaving, IntraSaving: intra.EnergySaving,
			CombinedSaving:   comb.EnergySaving,
			CombinedAccuracy: comb.Accuracy,
		}
		rows = append(rows, r)
		avg.Inter += r.Inter
		avg.Intra += r.Intra
		avg.Combined += r.Combined
		avg.InterSaving += r.InterSaving
		avg.IntraSaving += r.IntraSaving
		avg.CombinedSaving += r.CombinedSaving
		avg.CombinedAccuracy += r.CombinedAccuracy
	}
	n := float64(len(rows))
	avg.Benchmark = "average"
	avg.Inter /= n
	avg.Intra /= n
	avg.Combined /= n
	avg.InterSaving /= n
	avg.IntraSaving /= n
	avg.CombinedSaving /= n
	avg.CombinedAccuracy /= n
	rows = append(rows, avg)

	t := report.NewTable("Fig. 14: speedup and energy saving at the 98% accuracy requirement (AO)",
		"Benchmark", "inter x", "intra x", "combined x", "inter E%", "intra E%", "combined E%", "acc")
	for _, r := range rows {
		t.AddRowf(r.Benchmark,
			fmt.Sprintf("%.2f", r.Inter), fmt.Sprintf("%.2f", r.Intra), fmt.Sprintf("%.2f", r.Combined),
			fmt.Sprintf("%.1f", r.InterSaving*100), fmt.Sprintf("%.1f", r.IntraSaving*100),
			fmt.Sprintf("%.1f", r.CombinedSaving*100),
			fmt.Sprintf("%.3f", r.CombinedAccuracy))
	}
	return rows, t
}

// Fig15 reports per-layer speedup and energy saving of the inter-cell
// optimization at its AO point: earlier layers divide more and win more.
func (s *Suite) Fig15() *report.Table {
	t := report.NewTable("Fig. 15: per-layer inter-cell speedup / energy saving (AO point)",
		"Benchmark", "layer", "speedup", "energy saving", "break rate")
	sim := gpu.NewSimulator(s.cfg.GPU)
	for _, name := range BenchmarkNames() {
		e := s.Engine(name)
		curve := s.Curve(name, sched.Inter)
		ao := s.Outcome(name, sched.Inter, curve.AO())
		if len(ao.Stats) == 0 {
			continue
		}
		for layer, st := range ao.Stats {
			basePlan := sched.Plan{
				Cfg: s.cfg.GPU, Mode: sched.Baseline,
				Hidden: e.B.Hidden, Input: e.B.Hidden, Length: e.B.Length, Layers: 1,
			}
			interPlan := basePlan
			interPlan.Mode = sched.Inter
			interPlan.MTS = e.MTS
			interPlan.Stats = []sched.LayerStats{st}
			interPlan.Seed = e.B.Seed ^ uint64(layer)
			base := sim.Run(sched.Kernels(basePlan))
			opt := sim.Run(sched.Kernels(interPlan))
			saving := energy.Saving(
				energy.Of(s.cfg.Energy, base, false),
				energy.Of(s.cfg.Energy, opt, false))
			t.AddRowf(name, fmt.Sprintf("%d", layer+1),
				report.X(base.Cycles/opt.Cycles), report.Pct(saving),
				fmt.Sprintf("%.2f", st.BreakRate))
		}
	}
	return t
}

// Fig16Row is one benchmark's weight-compression comparison.
type Fig16Row struct {
	Benchmark string
	// Compression is moved-weight-bytes / dense-weight-bytes per cell.
	PruneCompression, DRSCompression   float64
	PruneSpeedup, SWSpeedup, HWSpeedup float64
	PruneSaving, SWSaving, HWSaving    float64
}

// Fig16 compares the zero-pruning baseline [31], pure-software DRS, and
// hardware DRS (with the CRM) on compression, speedup and energy saving.
func (s *Suite) Fig16() ([]Fig16Row, *report.Table) {
	rows := make([]Fig16Row, 0, 7)
	var avg Fig16Row
	// The zero-pruning configuration from the paper: ~37% data-movement
	// reduction under value+index CSR — 31.5% element density.
	const pruneDensity = 0.315
	for _, name := range BenchmarkNames() {
		e := s.Engine(name)
		prune := e.EvaluateZeroPrune(pruneDensity)
		hwCurve := s.Curve(name, sched.Intra)
		aoSet := hwCurve.AO()
		hw := s.Outcome(name, sched.Intra, aoSet)
		ai, aa := e.Thresholds(aoSet)
		sw := e.Evaluate(sched.IntraSW, ai, aa)

		skip := meanSkip(hw.Stats)
		r := Fig16Row{
			Benchmark:        name,
			PruneCompression: pruneDensity * 2, // value + index bytes
			DRSCompression:   0.25 + 0.75*(1-skip),
			PruneSpeedup:     prune.Speedup, SWSpeedup: sw.Speedup, HWSpeedup: hw.Speedup,
			PruneSaving: prune.EnergySaving, SWSaving: sw.EnergySaving, HWSaving: hw.EnergySaving,
		}
		rows = append(rows, r)
		avg.PruneCompression += r.PruneCompression
		avg.DRSCompression += r.DRSCompression
		avg.PruneSpeedup += r.PruneSpeedup
		avg.SWSpeedup += r.SWSpeedup
		avg.HWSpeedup += r.HWSpeedup
		avg.PruneSaving += r.PruneSaving
		avg.SWSaving += r.SWSaving
		avg.HWSaving += r.HWSaving
	}
	n := float64(len(rows))
	avg.Benchmark = "average"
	avg.PruneCompression /= n
	avg.DRSCompression /= n
	avg.PruneSpeedup /= n
	avg.SWSpeedup /= n
	avg.HWSpeedup /= n
	avg.PruneSaving /= n
	avg.SWSaving /= n
	avg.HWSaving /= n
	rows = append(rows, avg)

	t := report.NewTable("Fig. 16: weight compression schemes (zero-pruning vs software DRS vs hardware DRS)",
		"Benchmark", "prune bytes", "DRS bytes", "prune x", "sw-DRS x", "hw-DRS x",
		"prune E%", "sw E%", "hw E%")
	for _, r := range rows {
		t.AddRowf(r.Benchmark,
			report.Pct(r.PruneCompression), report.Pct(r.DRSCompression),
			fmt.Sprintf("%.2f", r.PruneSpeedup), fmt.Sprintf("%.2f", r.SWSpeedup),
			fmt.Sprintf("%.2f", r.HWSpeedup),
			fmt.Sprintf("%.1f", r.PruneSaving*100), fmt.Sprintf("%.1f", r.SWSaving*100),
			fmt.Sprintf("%.1f", r.HWSaving*100))
	}
	return rows, t
}

func meanSkip(stats []sched.LayerStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var s float64
	for _, st := range stats {
		s += st.SkipFrac
	}
	return s / float64(len(stats))
}

// Fig19 renders the full threshold sweep per application: speedup and
// accuracy of the combined optimizations across sets 0..10, with the AO
// and BPA points marked.
func (s *Suite) Fig19() (*report.Figure, *report.Figure, *report.Table) {
	speed := report.NewFigure("Fig. 19a: combined speedup vs threshold set", "set", "speedup")
	acc := report.NewFigure("Fig. 19b: accuracy vs threshold set", "set", "accuracy")
	marks := report.NewTable("Fig. 19: operating points", "Benchmark", "AO set", "AO speedup", "BPA set", "BPA speedup", "BPA acc")
	for _, name := range BenchmarkNames() {
		curve := s.Curve(name, sched.Combined)
		xs := make([]float64, len(curve))
		sp := make([]float64, len(curve))
		ac := make([]float64, len(curve))
		for i, p := range curve {
			xs[i] = float64(p.Set)
			sp[i] = p.Speedup
			ac[i] = p.Accuracy
		}
		speed.Add(name, xs, sp)
		acc.Add(name, xs, ac)
		ao, bpa := curve.AO(), curve.BPA()
		marks.AddRowf(name,
			fmt.Sprintf("%d", ao), report.X(curve.At(ao).Speedup),
			fmt.Sprintf("%d", bpa), report.X(curve.At(bpa).Speedup),
			fmt.Sprintf("%.3f", curve.At(bpa).Accuracy))
	}
	return speed, acc, marks
}

// Overheads reports the §VI-F overhead accounting measured from the
// simulated kernel streams.
func (s *Suite) Overheads() *report.Table {
	t := report.NewTable("§VI-F: measured overheads",
		"Benchmark", "inter perf ovh", "intra flow ovh", "CRM ovh")
	for _, name := range BenchmarkNames() {
		inter := s.AOOutcome(name, sched.Inter)
		intra := s.AOOutcome(name, sched.Intra)
		// Inter: relevance + predict kernels as share of optimized runtime.
		var interOvh float64
		if g := inter.Result.Group(kernels.NameRelevance); g != nil {
			interOvh += g.Cycles
		}
		if g := inter.Result.Group(kernels.NamePredict); g != nil {
			interOvh += g.Cycles
		}
		interOvh /= inter.Result.Cycles
		// Intra software-flow overhead: the DRS scan kernels plus the
		// extra launches of the split gemv, as share of runtime.
		var drsOvh float64
		if g := intra.Result.Group(kernels.NameDRS); g != nil {
			drsOvh += g.Cycles
		}
		drsOvh /= intra.Result.Cycles
		// CRM: the reorganization pipeline cycles (ExtraCycles of the
		// skipped gemv) as share of runtime.
		var crmOvh float64
		if g := intra.Result.Group(kernels.NameSgemvUfic); g != nil {
			crmOvh = float64(g.Launches) * estCRMCycles(s, name) / intra.Result.Cycles
		}
		t.AddRowf(name, report.Pct(interOvh), report.Pct(drsOvh), report.Pct(crmOvh))
	}
	return t
}

func estCRMCycles(s *Suite, name string) float64 {
	e := s.Engine(name)
	kb := kernels.NewBuilder(s.cfg.GPU)
	return kb.CRM().Reorganize(3*e.B.Hidden, 3*e.B.Hidden/2)
}

// RedundantLoadFactor returns the Fig. 5 blow-up factor for one benchmark
// (exposed for tests).
func (s *Suite) RedundantLoadFactor(name string) float64 {
	b, ok := model.ByName(name)
	if !ok {
		return 0
	}
	l2 := gpu.NewL2(s.cfg.GPU)
	uBytes := int64(16 * b.Hidden * b.Hidden)
	hBytes := int64(4 * b.Hidden)
	var loaded int64
	for cell := 0; cell < b.Length; cell++ {
		loaded += l2.AccessRange(0, uBytes) * s.cfg.GPU.L2LineBytes
		loaded += l2.AccessRange(uBytes+int64(cell)*hBytes, hBytes) * s.cfg.GPU.L2LineBytes
	}
	unique := uBytes + int64(b.Length)*hBytes
	return float64(loaded) / float64(unique)
}

// AverageOf extracts the averaged row from Fig14 rows (the last entry).
func AverageOf(rows []Fig14Row) Fig14Row {
	if len(rows) == 0 {
		return Fig14Row{}
	}
	return rows[len(rows)-1]
}
