package experiments

import (
	"fmt"

	"mobilstm/internal/gru"
	"mobilstm/internal/report"
	"mobilstm/internal/sched"
)

// ServerContrast reproduces the §II-C observation that motivates the
// whole paper: a server GPU (Tesla M40) can pipeline layers along the
// wavefront with several layers' weights resident on chip, while the
// mobile GPU must run layers sequentially and re-load the united weight
// matrix every cell. The mobile optimizations close part of that gap
// on-device — without shipping the user's voice to the cloud.
func (s *Suite) ServerContrast(benchName string) *report.Table {
	b := mustLookup(benchName)
	t := report.NewTable(
		fmt.Sprintf("§II-C: server wavefront vs mobile execution (%s)", benchName),
		"Execution", "latency ms", "vs mobile baseline")

	mobileCfg := s.cfg.GPU
	mobileBase := s.Engine(benchName).Baseline().Result
	t.AddRowf(fmt.Sprintf("mobile baseline (%s)", mobileCfg.Name),
		fmt.Sprintf("%.2f", mobileBase.Seconds*1e3), "1.00x")

	mobileOpt := s.AOOutcome(benchName, sched.Combined).Result
	t.AddRowf("mobile combined optimizations (this paper)",
		fmt.Sprintf("%.2f", mobileOpt.Seconds*1e3),
		report.X(mobileBase.Seconds/mobileOpt.Seconds))

	server := sched.TeslaM40()
	noRes := sched.Wavefront(sched.WavefrontPlan{
		Cfg: server, Hidden: b.Hidden, Input: b.Hidden,
		Length: b.Length, Layers: b.Layers,
	})
	t.AddRowf(fmt.Sprintf("server wavefront, streaming weights (%s)", server.Name),
		fmt.Sprintf("%.2f", noRes.Seconds*1e3),
		report.X(mobileBase.Seconds/noRes.Seconds))

	// Persistent-RNN regime [50]: recurrent weights live in the register
	// files of the many SMs (256 KB each on Maxwell) plus shared memory
	// and L2 — the storage class a mobile GPU simply does not have.
	registerFileBytes := int64(server.SMs) * (256 << 10)
	res := sched.Wavefront(sched.WavefrontPlan{
		Cfg: server, Hidden: b.Hidden, Input: b.Hidden,
		Length: b.Length, Layers: b.Layers,
		ResidentBudgetBytes: registerFileBytes +
			server.SharedBytesPerSM*int64(server.SMs) + server.L2Bytes,
	})
	t.AddRowf(fmt.Sprintf("server wavefront, %d resident layers", res.ResidentLayers),
		fmt.Sprintf("%.2f", res.Seconds*1e3),
		report.X(mobileBase.Seconds/res.Seconds))
	return t
}

// GRUSweep evaluates the §II-B GRU adjustment across threshold sets for
// every zoo GRU benchmark: the same accuracy-vs-speedup trade-off as
// Fig. 19, with the lower DRS ceiling the carry-based skip implies.
func (s *Suite) GRUSweep() *report.Table {
	t := report.NewTable("§II-B extension: GRU combined optimizations across threshold sets",
		"Benchmark", "set", "speedup", "accuracy", "break rate", "skip frac")
	for _, b := range gru.Zoo() {
		e := gru.NewEngine(b, gru.QuickProfile(), s.cfg.GPU)
		for _, set := range []int{0, 2, 4, 6, 8, 10} {
			o := e.Evaluate(set)
			t.AddRowf(b.Name, fmt.Sprintf("%d", set),
				report.X(o.Speedup), fmt.Sprintf("%.3f", o.Accuracy),
				fmt.Sprintf("%.2f", o.BreakRate), fmt.Sprintf("%.2f", o.SkipFrac))
		}
	}
	return t
}
