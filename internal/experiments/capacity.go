package experiments

import (
	"fmt"

	"mobilstm/internal/core"
	"mobilstm/internal/model"
	"mobilstm/internal/report"
	"mobilstm/internal/rng"
	"mobilstm/internal/sched"
	"mobilstm/internal/userstudy"
)

// Fig17 reproduces the model-capacity sensitivity study (§VI-D): the
// combined optimizations' performance-accuracy trade-off for BABI with
// (a) hidden sizes 128/256/512 at the paper's input length, and (b) input
// lengths 43/86/172 at the paper's hidden size. Each line is one
// (hidden - length) configuration's accuracy->speedup curve.
func (s *Suite) Fig17() *report.Figure {
	fig := report.NewFigure("Fig. 17: BABI performance-accuracy trade-offs vs model capacity",
		"accuracy", "speedup")
	base, _ := model.ByName("BABI")
	variants := []struct {
		hidden, length int
	}{
		{128, base.Length}, {256, base.Length}, {512, base.Length},
		{base.Hidden, 43}, {base.Hidden, 172},
	}
	for _, v := range variants {
		b := base
		b.Hidden = v.hidden
		b.Length = v.length
		b.Name = fmt.Sprintf("BABI-%d-%d", v.hidden, v.length)
		b.Seed = base.Seed ^ uint64(v.hidden*31+v.length)
		e := core.NewEngine(b, s.cfg.Profile, s.cfg.GPU)
		e.EnergyP = s.cfg.Energy
		accs := make([]float64, 0, core.ThresholdSets)
		speeds := make([]float64, 0, core.ThresholdSets)
		for set := 0; set < core.ThresholdSets; set++ {
			o := e.EvaluateSet(sched.Combined, set)
			accs = append(accs, o.Accuracy)
			speeds = append(speeds, o.Speedup)
		}
		fig.Add(fmt.Sprintf("(%d-%d)", v.hidden, v.length), accs, speeds)
	}
	return fig
}

// Fig18 reproduces the user study (§VI-E): a simulated panel of 30
// participants rates 100 replays per application under the baseline, AO,
// BPA and UO schemes.
func (s *Suite) Fig18() *report.Table {
	t := report.NewTable("Fig. 18: user satisfaction score (1-5) per scheme",
		"Benchmark", "baseline", "AO", "BPA", "UO", "mean UO set")
	r := rng.New(0x57ed)
	panel := userstudy.Panel(30, r.Split())
	totals := map[userstudy.Scheme]float64{}
	for _, name := range BenchmarkNames() {
		curve := s.Curve(name, sched.Combined)
		res := userstudy.Run(name, curve, panel, 100, r.Split())
		t.AddRowf(name,
			fmt.Sprintf("%.2f", res.Scores[userstudy.SchemeBaseline]),
			fmt.Sprintf("%.2f", res.Scores[userstudy.SchemeAO]),
			fmt.Sprintf("%.2f", res.Scores[userstudy.SchemeBPA]),
			fmt.Sprintf("%.2f", res.Scores[userstudy.SchemeUO]),
			fmt.Sprintf("%.1f", res.ChosenUOSet))
		for _, scheme := range userstudy.Schemes() {
			totals[scheme] += res.Scores[scheme]
		}
	}
	n := float64(len(BenchmarkNames()))
	t.AddRowf("average",
		fmt.Sprintf("%.2f", totals[userstudy.SchemeBaseline]/n),
		fmt.Sprintf("%.2f", totals[userstudy.SchemeAO]/n),
		fmt.Sprintf("%.2f", totals[userstudy.SchemeBPA]/n),
		fmt.Sprintf("%.2f", totals[userstudy.SchemeUO]/n),
		"")
	return t
}

// UserStudyResults exposes the raw per-app study results for tests.
func (s *Suite) UserStudyResults() []userstudy.Result {
	r := rng.New(0x57ed)
	panel := userstudy.Panel(30, r.Split())
	out := make([]userstudy.Result, 0, 6)
	for _, name := range BenchmarkNames() {
		curve := s.Curve(name, sched.Combined)
		out = append(out, userstudy.Run(name, curve, panel, 100, r.Split()))
	}
	return out
}
