// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI) from the reproduction's models: each exported method
// returns the same rows or series the paper reports, rendered through
// internal/report. The benchmark harness (bench_test.go) and the
// cmd/experiments CLI are thin wrappers over this package.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"mobilstm/internal/core"
	"mobilstm/internal/energy"
	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/sched"
	"mobilstm/internal/tensor"
	"mobilstm/internal/tradeoff"
)

// Config selects the platform and evaluation profile.
type Config struct {
	GPU     gpu.Config
	Profile model.Profile
	Energy  energy.Params
}

// DefaultConfig evaluates on the Tegra X1 with the profile selected by
// MOBILSTM_FULL.
func DefaultConfig() Config {
	return Config{GPU: gpu.TegraX1(), Profile: model.Default(), Energy: energy.TegraX1()}
}

// Suite caches engines and evaluated outcomes across experiments, since
// several figures share the same sweeps.
type Suite struct {
	cfg Config

	mu       sync.Mutex
	engines  map[string]*core.Engine
	outcomes map[outcomeKey]*core.Outcome
}

type outcomeKey struct {
	bench string
	mode  sched.Mode
	set   int
}

// NewSuite creates an experiment suite.
func NewSuite(cfg Config) *Suite {
	return &Suite{
		cfg:      cfg,
		engines:  make(map[string]*core.Engine),
		outcomes: make(map[outcomeKey]*core.Outcome),
	}
}

// Lookup resolves a zoo benchmark by name, reporting an unknown name as
// an error that lists the valid ones. It is the single lookup used by
// every experiment entry point — and by the serve layer, whose workers
// must reject bad request names without panicking.
func Lookup(name string) (model.Benchmark, error) {
	b, ok := model.ByName(name)
	if !ok {
		return model.Benchmark{}, fmt.Errorf(
			"experiments: unknown benchmark %q (have %s)",
			name, strings.Join(BenchmarkNames(), ", "))
	}
	return b, nil
}

// mustLookup is Lookup for the panic-world experiment methods, whose
// callers pass compile-time benchmark names.
func mustLookup(name string) model.Benchmark {
	b, err := Lookup(name)
	if err != nil {
		tensor.Panicf("%v", err)
	}
	return b
}

// Engine returns (building and caching on first use) the engine for a zoo
// benchmark.
func (s *Suite) Engine(name string) *core.Engine {
	s.mu.Lock()
	e, ok := s.engines[name]
	s.mu.Unlock()
	if ok {
		return e
	}
	b := mustLookup(name)
	e = core.NewEngine(b, s.cfg.Profile, s.cfg.GPU)
	e.EnergyP = s.cfg.Energy
	s.mu.Lock()
	s.engines[name] = e
	s.mu.Unlock()
	return e
}

// Outcome returns (evaluating and caching on first use) a benchmark's
// outcome for one mode and threshold set.
func (s *Suite) Outcome(bench string, mode sched.Mode, set int) *core.Outcome {
	key := outcomeKey{bench, mode, set}
	s.mu.Lock()
	o, ok := s.outcomes[key]
	s.mu.Unlock()
	if ok {
		return o
	}
	e := s.Engine(bench)
	o = e.EvaluateSet(mode, set)
	s.mu.Lock()
	s.outcomes[key] = o
	s.mu.Unlock()
	return o
}

// Curve sweeps all threshold sets for one benchmark and mode.
func (s *Suite) Curve(bench string, mode sched.Mode) tradeoff.Curve {
	curve := make(tradeoff.Curve, core.ThresholdSets)
	for set := 0; set < core.ThresholdSets; set++ {
		o := s.Outcome(bench, mode, set)
		curve[set] = tradeoff.Point{
			Set:          set,
			Speedup:      o.Speedup,
			EnergySaving: o.EnergySaving,
			Accuracy:     o.Accuracy,
		}
	}
	return curve
}

// AOOutcome returns the accuracy-oriented outcome for one benchmark and
// mode: the most aggressive threshold set whose loss stays within the
// user-imperceptible 2% (§VI-B fixes the requirement at 98%).
func (s *Suite) AOOutcome(bench string, mode sched.Mode) *core.Outcome {
	curve := s.Curve(bench, mode)
	return s.Outcome(bench, mode, curve.AO())
}

// BenchmarkNames lists the Table II applications in paper order.
func BenchmarkNames() []string {
	names := make([]string, 0, 6)
	for _, b := range model.Zoo() {
		names = append(names, b.Name)
	}
	return names
}
