package experiments

import (
	"strings"
	"testing"

	"mobilstm/internal/energy"
	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/sched"
)

// tinySuite runs the full experiment pipeline at the smallest numeric
// shapes that still exercise every code path.
func tinySuite() *Suite {
	return NewSuite(Config{
		GPU: gpu.TegraX1(),
		Profile: model.Profile{Name: "tiny", HiddenCap: 64, LengthCap: 16,
			AccSamples: 8, PredictorSamples: 2, StatSamples: 2},
		Energy: energy.TegraX1(),
	})
}

func TestTables(t *testing.T) {
	s := tinySuite()
	if out := s.TableI().String(); !strings.Contains(out, "25.6GB/s") {
		t.Fatalf("Table I: %s", out)
	}
	out := s.TableII().String()
	for _, name := range BenchmarkNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table II missing %s", name)
		}
	}
}

func TestBenchmarkNamesOrder(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 6 || names[0] != "IMDB" || names[5] != "MT" {
		t.Fatalf("names: %v", names)
	}
}

func TestEngineCaching(t *testing.T) {
	s := tinySuite()
	if s.Engine("MR") != s.Engine("MR") {
		t.Fatal("engines not cached")
	}
}

func TestOutcomeCaching(t *testing.T) {
	s := tinySuite()
	a := s.Outcome("MR", sched.Combined, 5)
	b := s.Outcome("MR", sched.Combined, 5)
	if a != b {
		t.Fatal("outcomes not cached")
	}
}

func TestFig4OffChipDominates(t *testing.T) {
	s := tinySuite()
	res := s.baselineResult("PTB")
	fr := res.StallFractionsOf("sgemv_u")
	if fr[gpu.StallOffChip] < 0.6 {
		t.Fatalf("off-chip stall fraction %v, want dominant", fr[gpu.StallOffChip])
	}
	// The §III claim: Sgemv over 90% of execution.
	if share := res.CycleShareOf("sgemv_u"); share < 0.9 {
		t.Fatalf("sgemv share %v", share)
	}
}

func TestFig5BlowUpScalesWithLength(t *testing.T) {
	s := tinySuite()
	mr := s.RedundantLoadFactor("MR")   // 22 cells
	ptb := s.RedundantLoadFactor("PTB") // 200 cells
	if mr < 15 || mr > 25 {
		t.Fatalf("MR blow-up %v, want ~22x", mr)
	}
	if ptb < 150 || ptb > 210 {
		t.Fatalf("PTB blow-up %v, want ~200x", ptb)
	}
}

func TestFig6Utilization(t *testing.T) {
	s := tinySuite()
	g := s.baselineResult("SNLI").Group("sgemv_u")
	if g.DRAMUtil < 0.9 {
		t.Fatalf("off-chip util %v", g.DRAMUtil)
	}
	if g.SharedUtil > 0.5 {
		t.Fatalf("on-chip util %v, want light", g.SharedUtil)
	}
}

func TestFig9ShapesAndMTS(t *testing.T) {
	s := tinySuite()
	perf, util, mts := s.Fig9(8)
	if len(perf.Series) != 6 || len(util.Series) != 6 {
		t.Fatalf("series counts: %d, %d", len(perf.Series), len(util.Series))
	}
	for name, m := range mts {
		if m < 3 || m > 8 {
			t.Fatalf("%s MTS %d outside the paper's 5-6 neighbourhood", name, m)
		}
	}
	// Performance must rise to a peak then not keep rising past it
	// (Fig. 9's droop), and utilization must be non-decreasing up to
	// the MTS.
	for _, series := range perf.Series {
		peak := 0
		for i, v := range series.Y {
			if v > series.Y[peak] {
				peak = i
			}
		}
		if peak == 0 {
			t.Fatalf("%s: no tissue benefit at all", series.Name)
		}
		if peak == len(series.Y)-1 {
			t.Fatalf("%s: no droop within sweep", series.Name)
		}
	}
}

func TestFig14OrderingAndRanges(t *testing.T) {
	s := tinySuite()
	rows, table := s.Fig14()
	if len(rows) != 7 {
		t.Fatalf("rows: %d", len(rows))
	}
	avg := AverageOf(rows)
	if avg.Benchmark != "average" {
		t.Fatalf("last row: %q", avg.Benchmark)
	}
	// The paper's qualitative claims: combined > inter > 1, combined >
	// intra > 1, and combined energy saving is substantial.
	if !(avg.Combined > avg.Inter && avg.Combined > avg.Intra) {
		t.Fatalf("combined not best: %+v", avg)
	}
	if avg.Inter <= 1.2 || avg.Intra <= 1.1 {
		t.Fatalf("optimizations ineffective: %+v", avg)
	}
	if avg.CombinedSaving < 0.25 || avg.CombinedSaving > 0.8 {
		t.Fatalf("combined saving %v out of plausible band", avg.CombinedSaving)
	}
	if avg.CombinedAccuracy < 0.97 {
		t.Fatalf("AO accuracy %v below the 98%% requirement band", avg.CombinedAccuracy)
	}
	if table.String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig16Shape(t *testing.T) {
	s := tinySuite()
	rows, _ := s.Fig16()
	avg := rows[len(rows)-1]
	// Zero-pruning moves fewer bytes but is slower than baseline;
	// hardware DRS beats software DRS.
	if avg.PruneCompression >= 1 {
		t.Fatalf("prune compression %v", avg.PruneCompression)
	}
	if avg.PruneSpeedup >= 1 {
		t.Fatalf("zero-pruning should degrade performance: %v", avg.PruneSpeedup)
	}
	if avg.HWSpeedup <= avg.SWSpeedup {
		t.Fatalf("hw DRS %v not better than sw %v", avg.HWSpeedup, avg.SWSpeedup)
	}
	if avg.DRSCompression <= 0.3 || avg.DRSCompression >= 0.9 {
		t.Fatalf("DRS compression %v", avg.DRSCompression)
	}
}

func TestFig19Curves(t *testing.T) {
	s := tinySuite()
	speed, acc, marks := s.Fig19()
	if len(speed.Series) != 6 || len(acc.Series) != 6 {
		t.Fatal("missing series")
	}
	for _, series := range speed.Series {
		if series.Y[0] != 1 {
			t.Fatalf("%s: set 0 speedup %v, want 1", series.Name, series.Y[0])
		}
		if series.Y[len(series.Y)-1] <= 1 {
			t.Fatalf("%s: max thresholds give no speedup", series.Name)
		}
	}
	for _, series := range acc.Series {
		if series.Y[0] != 1 {
			t.Fatalf("%s: set 0 accuracy %v, want 1", series.Name, series.Y[0])
		}
	}
	if marks.String() == "" {
		t.Fatal("no operating-point table")
	}
}

func TestFig18Ordering(t *testing.T) {
	s := tinySuite()
	for _, res := range s.UserStudyResults() {
		uo := res.Scores["UO"]
		ao := res.Scores["AO"]
		base := res.Scores["baseline"]
		bpa := res.Scores["BPA"]
		if !(uo >= ao-0.02 && ao > base) {
			t.Fatalf("%s: UO %v AO %v base %v", res.App, uo, ao, base)
		}
		// UO maximizes each user's expected score, so no fixed scheme
		// may beat it by more than rating noise.
		if bpa > uo+0.05 {
			t.Fatalf("%s: BPA %v beats UO %v beyond noise", res.App, bpa, uo)
		}
	}
}

func TestOverheadsSmall(t *testing.T) {
	s := tinySuite()
	out := s.Overheads().String()
	if out == "" {
		t.Fatal("empty overheads table")
	}
	// Inter-cell runtime overhead must stay in the few-percent band the
	// paper reports (2.23%).
	inter := s.AOOutcome("PTB", sched.Inter)
	var ovh float64
	if g := inter.Result.Group("relevance"); g != nil {
		ovh += g.Cycles
	}
	if g := inter.Result.Group("predict"); g != nil {
		ovh += g.Cycles
	}
	if frac := ovh / inter.Result.Cycles; frac > 0.08 {
		t.Fatalf("inter overhead %v, want few percent", frac)
	}
}
