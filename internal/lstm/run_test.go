package lstm

import (
	"math"
	"testing"

	"mobilstm/internal/intercell"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// zeroPredictors returns zero-vector predictors for every layer.
func zeroPredictors(n *Network) []intercell.Predictor {
	out := make([]intercell.Predictor, len(n.Layers))
	for i, l := range n.Layers {
		out[i] = intercell.Predictor{H: tensor.NewVector(l.Hidden), C: tensor.NewVector(l.Hidden)}
	}
	return out
}

func maxDiff(a, b tensor.Vector) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i] - b[i])); v > d {
			d = v
		}
	}
	return d
}

func TestInterAlphaZeroMatchesBaseline(t *testing.T) {
	// With alpha_inter = 0 no link is ever broken, so the tissue-parallel
	// flow must be numerically identical to the baseline.
	n := testNet(t, 12, 12, 2, 3, 21)
	xs := testSeqs(rng.New(22), 12, 15, 1)[0]
	base := n.Run(xs, Baseline())
	opt := n.Run(xs, RunOptions{Inter: true, AlphaInter: 0, MTS: 4, Predictors: zeroPredictors(n)})
	if d := maxDiff(base, opt); d > 1e-5 {
		t.Fatalf("inter(alpha=0) differs from baseline by %v", d)
	}
}

func TestIntraAlphaZeroMatchesBaseline(t *testing.T) {
	n := testNet(t, 12, 12, 2, 3, 23)
	xs := testSeqs(rng.New(24), 12, 15, 1)[0]
	base := n.Run(xs, Baseline())
	opt := n.Run(xs, RunOptions{Intra: true, AlphaIntra: 0})
	if d := maxDiff(base, opt); d > 1e-5 {
		t.Fatalf("intra(alpha=0) differs from baseline by %v", d)
	}
}

func TestIntraSkipsProduceZeros(t *testing.T) {
	// With a huge DRS threshold every row is trivial: all h become 0 and
	// the logits collapse to the head bias.
	n := testNet(t, 8, 8, 1, 2, 25)
	xs := testSeqs(rng.New(26), 8, 5, 1)[0]
	out := n.Run(xs, RunOptions{Intra: true, AlphaIntra: 2})
	for j := range out {
		if math.Abs(float64(out[j]-n.HeadBias[j])) > 1e-6 {
			t.Fatalf("logit %d = %v, want bias %v", j, out[j], n.HeadBias[j])
		}
	}
}

func TestIntraAccuracyDegradesMonotonically(t *testing.T) {
	// Coarser DRS thresholds may only move the output further from the
	// exact result (on average across a few inputs).
	n := testNet(t, 16, 16, 1, 4, 27)
	seqs := testSeqs(rng.New(28), 16, 12, 6)
	var prev float64 = -1
	for _, alpha := range []float64{0.05, 0.3, 0.8} {
		var dist float64
		for _, xs := range seqs {
			base := n.Run(xs, Baseline())
			opt := n.Run(xs, RunOptions{Intra: true, AlphaIntra: alpha})
			dist += maxDiff(base, opt)
		}
		if dist < prev-1e-6 {
			t.Fatalf("output distance decreased with larger alpha: %v -> %v", prev, dist)
		}
		prev = dist
	}
}

func TestTraceCollectsStructure(t *testing.T) {
	n := testNet(t, 12, 12, 2, 3, 29)
	xs := testSeqs(rng.New(30), 12, 15, 1)[0]
	tr := &Trace{}
	n.Run(xs, RunOptions{
		Inter: true, AlphaInter: 1e9, MTS: 4, Predictors: zeroPredictors(n),
		Intra: true, AlphaIntra: 0.1,
		Trace: tr,
	})
	if len(tr.Layers) != 2 {
		t.Fatalf("trace layers: %d", len(tr.Layers))
	}
	lt := tr.Layers[0]
	if lt.Cells != 15 {
		t.Fatalf("cells: %d", lt.Cells)
	}
	if len(lt.Relevance) != 14 {
		t.Fatalf("relevance entries: %d", len(lt.Relevance))
	}
	// alpha = +inf: every link broken.
	if len(lt.Breakpoints) != 14 {
		t.Fatalf("breakpoints: %d", len(lt.Breakpoints))
	}
	if lt.Sublayers() != 15 {
		t.Fatalf("sublayers: %d", lt.Sublayers())
	}
	for _, sz := range lt.TissueSizes {
		if sz > 4 {
			t.Fatalf("tissue above MTS: %d", sz)
		}
	}
	if len(lt.SkipCounts) != len(lt.TissueSizes) {
		t.Fatalf("skip counts %d for %d tissues", len(lt.SkipCounts), len(lt.TissueSizes))
	}
	if lt.MeanSkipFraction(12) < 0 || lt.MeanSkipFraction(12) > 1 {
		t.Fatal("mean skip fraction out of range")
	}
}

func TestFullDivisionStillClassifies(t *testing.T) {
	// Even with every link broken and predicted links injected, the
	// network must produce finite logits.
	n := testNet(t, 12, 12, 2, 3, 31)
	seqs := testSeqs(rng.New(32), 12, 15, 2)
	preds := CollectPredictors(n, seqs[:1])
	out := n.Run(seqs[1], RunOptions{Inter: true, AlphaInter: 1e9, MTS: 5, Predictors: preds})
	for _, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite logit: %v", v)
		}
	}
}

func TestCollectPredictorsMatchesBaselineStats(t *testing.T) {
	// The predictor must be the mean of the exact flow's (h, c) pairs:
	// for a single sequence and single layer, verify against a manual
	// accumulation via LinkStats on an identical exact run.
	n := testNet(t, 8, 8, 1, 2, 33)
	seqs := testSeqs(rng.New(34), 8, 10, 1)
	preds := CollectPredictors(n, seqs)
	if len(preds) != 1 {
		t.Fatalf("predictors: %d", len(preds))
	}
	// The mean |h| should be bounded by 1.
	for _, v := range preds[0].H {
		if v < -1 || v > 1 {
			t.Fatalf("predicted h element %v out of range", v)
		}
	}
	// And not all-zero (the network does produce activity).
	if tensor.MaxAbs(preds[0].H) == 0 && tensor.MaxAbs(preds[0].C) == 0 {
		t.Fatal("predictor is identically zero")
	}
}

func TestInterBreaksReduceCoupling(t *testing.T) {
	// Changing the first token must not affect cells after a broken
	// link. Force full division; then the final cell's output depends
	// only on its own input and the predicted link.
	n := testNet(t, 8, 8, 1, 8, 35)
	// Identity head to observe h directly.
	for i := range n.Head.Data {
		n.Head.Data[i] = 0
	}
	for j := 0; j < 8; j++ {
		n.Head.Set(j, j, 1)
		n.HeadBias[j] = 0
	}
	seqs := testSeqs(rng.New(36), 8, 6, 2)
	a, b := seqs[0], seqs[1]
	// b differs from a only in tokens 0..4; last token identical.
	b[5] = a[5]
	opts := RunOptions{Inter: true, AlphaInter: 1e9, MTS: 1, Predictors: zeroPredictors(n)}
	ha := n.Run(a, opts)
	hb := n.Run(b, opts)
	if d := maxDiff(ha, hb); d > 1e-6 {
		t.Fatalf("fully divided layer still couples cells: %v", d)
	}
}

// TestRunEErrors: the serving-path wrappers convert every Panicf
// validation (empty sequence, missing MTS, predictor mismatch) into an
// error, and the happy path matches Run exactly.
func TestRunEErrors(t *testing.T) {
	n := testNet(t, 8, 8, 2, 3, 31)
	xs := testSeqs(rng.New(32), 8, 6, 1)[0]

	cases := []struct {
		name string
		xs   []tensor.Vector
		opt  RunOptions
	}{
		{"empty sequence", nil, Baseline()},
		{"inter without MTS", xs, RunOptions{Inter: true, Predictors: zeroPredictors(n)}},
		{"predictor mismatch", xs, RunOptions{Inter: true, MTS: 4,
			Predictors: zeroPredictors(n)[:1]}},
	}
	for _, c := range cases {
		if _, err := n.RunE(c.xs, c.opt); err == nil {
			t.Errorf("%s: no error", c.name)
		}
		if _, err := n.ClassifyE(c.xs, c.opt); err == nil {
			t.Errorf("%s: ClassifyE no error", c.name)
		}
	}

	logits, err := n.RunE(xs, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(logits, n.Run(xs, Baseline())); d != 0 {
		t.Fatalf("RunE differs from Run by %v", d)
	}
	class, err := n.ClassifyE(xs, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if class != n.Classify(xs, Baseline()) {
		t.Fatal("ClassifyE differs from Classify")
	}
}

// TestGuardPassesForeignPanics: tensor.Guard only converts the typed
// Panicf violation; any other panic keeps propagating.
func TestGuardPassesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed by Guard")
		}
	}()
	func() (err error) {
		defer tensor.Guard(&err)
		var m map[int]int
		m[0] = 1 // runtime panic, not a Panicf violation
		return nil
	}()
}
