package lstm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mobilstm/internal/tensor"
)

// Binary network format: a little-endian stream with a magic/version
// header, the shape descriptor, and raw float32 weight data in a fixed
// order. The format is self-describing enough to validate on load and
// stable across runs, so calibrated synthetic models can be stored and
// shipped like trained checkpoints.
const (
	netMagic   = 0x4d4c5354 // "MLST"
	netVersion = 1
)

// WriteTo serializes the network.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	if err := n.Validate(); err != nil {
		return 0, fmt.Errorf("lstm: refusing to serialize invalid network: %w", err)
	}
	cw := &countWriter{w: bufio.NewWriter(w)}
	hdr := []uint32{
		netMagic, netVersion,
		uint32(n.Gate),
		uint32(len(n.Layers)),
		uint32(n.Input()), uint32(n.Hidden()), uint32(n.Classes()),
	}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	for _, l := range n.Layers {
		for _, m := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo, l.Uf, l.Ui, l.Uc, l.Uo} {
			if err := writeFloats(cw, m.Data); err != nil {
				return cw.n, err
			}
		}
		for _, b := range []tensor.Vector{l.Bf, l.Bi, l.Bc, l.Bo} {
			if err := writeFloats(cw, b); err != nil {
				return cw.n, err
			}
		}
	}
	if err := writeFloats(cw, n.Head.Data); err != nil {
		return cw.n, err
	}
	if err := writeFloats(cw, n.HeadBias); err != nil {
		return cw.n, err
	}
	bw := cw.w.(*bufio.Writer)
	return cw.n, bw.Flush()
}

// ReadNetwork deserializes a network written by WriteTo.
func ReadNetwork(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	var hdr [7]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("lstm: reading header: %w", err)
		}
	}
	if hdr[0] != netMagic {
		return nil, fmt.Errorf("lstm: bad magic %#x", hdr[0])
	}
	if hdr[1] != netVersion {
		return nil, fmt.Errorf("lstm: unsupported version %d", hdr[1])
	}
	gate := tensor.Activation(hdr[2])
	layers, input, hidden, classes := int(hdr[3]), int(hdr[4]), int(hdr[5]), int(hdr[6])
	const maxDim = 1 << 20
	if layers < 1 || layers > 1024 || input < 1 || input > maxDim ||
		hidden < 1 || hidden > maxDim || classes < 1 || classes > maxDim {
		return nil, fmt.Errorf("lstm: implausible shape %dx%dx%dx%d", layers, input, hidden, classes)
	}
	n := NewNetwork(input, hidden, layers, classes)
	n.Gate = gate
	for _, l := range n.Layers {
		for _, m := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo, l.Uf, l.Ui, l.Uc, l.Uo} {
			if err := readFloats(br, m.Data); err != nil {
				return nil, err
			}
		}
		for _, b := range []tensor.Vector{l.Bf, l.Bi, l.Bc, l.Bo} {
			if err := readFloats(br, b); err != nil {
				return nil, err
			}
		}
	}
	if err := readFloats(br, n.Head.Data); err != nil {
		return nil, err
	}
	if err := readFloats(br, n.HeadBias); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("lstm: loaded network invalid: %w", err)
	}
	return n, nil
}

func writeFloats(w io.Writer, xs []float32) error {
	buf := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, xs []float32) error {
	buf := make([]byte, 4*len(xs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("lstm: reading weights: %w", err)
	}
	for i := range xs {
		xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
