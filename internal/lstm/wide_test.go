package lstm

import (
	"runtime"
	"testing"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// The wide-chain determinism matrix: the fast mode (Chain: ChainAVX2)
// carries the same guarantees as the canonical chain, *within* the wide
// chain — wide Run is repeatable, wide RunBatch member i is bitwise
// identical to wide serial Run(seqs[i]) in every mode, at every batch B
// and GOMAXPROCS, cold or warm cache. Wide-vs-canonical equality is
// deliberately absent: the chains drift by design, and the drift is
// measured (TestWideChainULPDrift) rather than forbidden.

func wideModes(n *Network) map[string]RunOptions {
	modes := batchModes(n)
	for name, opt := range modes {
		opt.Chain = tensor.ChainAVX2
		modes[name] = opt
	}
	return modes
}

// TestWideRunBatchMatchesSerial is the wide twin of
// TestRunBatchMatchesSerial: mode × batch size × ragged lengths, all
// under the wide chain.
func TestWideRunBatchMatchesSerial(t *testing.T) {
	n := testNet(t, 24, 32, 2, 5, 401)
	r := rng.New(402)
	for name, opt := range wideModes(n) {
		for _, b := range []int{1, 2, 3, 5} {
			seqs := raggedSeqs(r, 24, 17, b)
			want := make([]tensor.Vector, b)
			for i, xs := range seqs {
				want[i] = n.Run(xs, opt)
			}
			got := n.RunBatch(seqs, opt)
			equivtest.Batch(t, "wide "+name+" B="+itoa(b), got, want)
		}
	}
}

// TestWideRunBitwiseIdenticalAcrossGOMAXPROCS pins wide-serial
// determinism: the wide kernels shard rows, never accumulation chains,
// so wide logits are scheduler-independent exactly like canonical ones.
func TestWideRunBitwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	n := testNet(t, 48, 64, 2, 5, 403)
	xs := testSeqs(rng.New(404), 48, 40, 1)[0]
	for name, opt := range wideModes(n) {
		ref := n.Run(xs, opt)
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := n.Run(xs, opt)
			runtime.GOMAXPROCS(prev)
			equivtest.Vectors(t, "wide "+name+" GOMAXPROCS="+itoa(procs), got, ref)
		}
	}
}

// TestWideRunBatchBitwiseIdenticalAcrossGOMAXPROCS extends the wide
// contract to the batched path across the scheduler sweep.
func TestWideRunBatchBitwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	n := testNet(t, 48, 64, 2, 5, 403)
	seqs := [][]tensor.Vector{
		testSeqs(rng.New(404), 48, 40, 1)[0],
		testSeqs(rng.New(405), 48, 23, 1)[0],
		testSeqs(rng.New(406), 48, 31, 1)[0],
		testSeqs(rng.New(407), 48, 40, 1)[0],
	}
	for name, opt := range wideModes(n) {
		want := make([]tensor.Vector, len(seqs))
		for i, xs := range seqs {
			want[i] = n.Run(xs, opt)
		}
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := n.RunBatch(seqs, opt)
			runtime.GOMAXPROCS(prev)
			equivtest.Batch(t, "wide "+name+" GOMAXPROCS="+itoa(procs), got, want)
		}
	}
}

// TestConcurrentWideRunsShareColdCache races first-use builds of the
// packed weight cache under the wide chain: the united cache is
// chain-neutral (it holds weights, not results), so concurrent wide
// and canonical first touches must both be safe. Run under -race.
func TestConcurrentWideRunsShareColdCache(t *testing.T) {
	n := testNet(t, 24, 32, 2, 4, 408)
	xs := testSeqs(rng.New(409), 24, 18, 1)[0]
	wide := RunOptions{Chain: tensor.ChainAVX2}
	ref := testNet(t, 24, 32, 2, 4, 408).Run(xs, wide)

	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const workers = 8
	results := make([]tensor.Vector, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			opt := Baseline()
			if w%2 == 0 {
				opt.Chain = tensor.ChainAVX2
			}
			results[w] = n.Run(xs, opt)
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w, got := range results {
		if w%2 != 0 {
			continue // canonical workers only exercise the shared cold build
		}
		equivtest.Vectors(t, "wide worker "+itoa(w), got, ref)
	}
}

// TestChainAutoFollowsProcessDefault pins the env/SetKernelChain path
// end to end: a ChainAuto run under a forced process default produces
// exactly the bits of the matching explicit selection.
func TestChainAutoFollowsProcessDefault(t *testing.T) {
	n := testNet(t, 16, 24, 2, 4, 410)
	xs := testSeqs(rng.New(411), 16, 12, 1)[0]
	explicit := n.Run(xs, RunOptions{Chain: tensor.ChainAVX2})
	canonical := n.Run(xs, Baseline())

	prev := tensor.ActiveKernelChain()
	tensor.SetKernelChain(tensor.ChainAVX2)
	auto := n.Run(xs, Baseline())
	tensor.SetKernelChain(prev)
	equivtest.Vectors(t, "auto-under-avx2-default", auto, explicit)

	after := n.Run(xs, Baseline())
	equivtest.Vectors(t, "auto-after-restore", after, canonical)
}

// TestWideChainULPDrift measures — not forbids — the wide chain's drift
// from the canonical chain on baseline logits. The bound is a loose
// sanity rail (three recurrent layers amplify the per-dot difference);
// the measured value is reported in EXPERIMENTS.md.
func TestWideChainULPDrift(t *testing.T) {
	n := testNet(t, 24, 32, 3, 5, 412)
	r := rng.New(413)
	var worst uint32
	for trial := 0; trial < 8; trial++ {
		xs := testSeqs(r, 24, 20, 1)[0]
		canon := n.Run(xs, Baseline())
		wide := n.Run(xs, RunOptions{Chain: tensor.ChainAVX2})
		if d := equivtest.MaxULP(t, "drift", wide, canon); d > worst {
			worst = d
		}
	}
	t.Logf("max ULP drift wide vs canonical over 8 sequences: %d", worst)
	if worst > 1<<16 {
		t.Fatalf("wide chain drifted %d ULP from canonical — beyond any plausible rounding divergence", worst)
	}
}
