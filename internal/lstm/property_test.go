//lint:file-ignore globalrand testing/quick's Values hooks take *math/rand.Rand by signature; all draws actually derive from the seeded internal/rng source
package lstm

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

func quickSeed(r *rng.RNG) func([]reflect.Value, *rand.Rand) {
	return func(args []reflect.Value, _ *rand.Rand) {
		args[0] = reflect.ValueOf(r.Uint64())
	}
}

// Property: for any random network and input, the tissue-parallel flow
// with alpha_inter = 0 (no breaks) and DRS with alpha_intra = 0 (no
// skips) reproduce the exact flow bit-for-bit — the optimizations are
// pure overlays.
func TestNoOpOptimizationsExactProperty(t *testing.T) {
	r := rng.New(0xabc)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		hidden := 4 + rr.Intn(12)
		layers := 1 + rr.Intn(3)
		length := 2 + rr.Intn(8)
		n := NewNetwork(hidden, hidden, layers, 2+rr.Intn(4))
		n.InitRandom(rr.Split(), nil, 0.5)
		xs := make([]tensor.Vector, length)
		for i := range xs {
			v := tensor.NewVector(hidden)
			for j := range v {
				v[j] = rr.NormF32(0, 1.5)
			}
			xs[i] = v
		}
		base := n.Run(xs, Baseline())
		zero := zeroPredictors(n)
		both := n.Run(xs, RunOptions{
			Inter: true, AlphaInter: 0, MTS: 1 + rr.Intn(5), Predictors: zero,
			Intra: true, AlphaIntra: 0,
		})
		for i := range base {
			if math.Abs(float64(base[i]-both[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Values: quickSeed(r)}); err != nil {
		t.Fatal(err)
	}
}

// Property: logits are always finite for any mode and threshold, however
// aggressive — the approximations degrade gracefully, never explode.
func TestFiniteLogitsProperty(t *testing.T) {
	r := rng.New(0xdef)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		hidden := 4 + rr.Intn(10)
		n := NewNetwork(hidden, hidden, 1+rr.Intn(2), 3)
		n.InitRandom(rr.Split(), nil, rr.Float64())
		xs := make([]tensor.Vector, 2+rr.Intn(6))
		for i := range xs {
			v := tensor.NewVector(hidden)
			for j := range v {
				v[j] = rr.NormF32(0, 3)
			}
			xs[i] = v
		}
		out := n.Run(xs, RunOptions{
			Inter: true, AlphaInter: rr.Float64() * 1e4, MTS: 1 + rr.Intn(6),
			Predictors: zeroPredictors(n),
			Intra:      true, AlphaIntra: rr.Float64(),
		})
		for _, v := range out {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Values: quickSeed(r)}); err != nil {
		t.Fatal(err)
	}
}

// Property: a layer's hidden outputs always stay in [-1, 1] under every
// mode — the §IV-A bound that justifies Algorithm 2's [-D, D] range.
func TestHiddenRangeProperty(t *testing.T) {
	r := rng.New(0x123)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		hidden := 4 + rr.Intn(10)
		n := NewNetwork(hidden, hidden, 1, hidden)
		n.InitRandom(rr.Split(), nil, 0.5)
		for i := range n.Head.Data {
			n.Head.Data[i] = 0
		}
		for j := 0; j < hidden; j++ {
			n.Head.Set(j, j, 1)
			n.HeadBias[j] = 0
		}
		xs := make([]tensor.Vector, 3+rr.Intn(6))
		for i := range xs {
			v := tensor.NewVector(hidden)
			for j := range v {
				v[j] = rr.NormF32(0, 4)
			}
			xs[i] = v
		}
		out := n.Run(xs, RunOptions{Intra: true, AlphaIntra: rr.Float64() * 0.4})
		for _, v := range out {
			if v < -1 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Values: quickSeed(r)}); err != nil {
		t.Fatal(err)
	}
}
