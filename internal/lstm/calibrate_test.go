package lstm

import (
	"math"
	"testing"

	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

func calSeqs(seed uint64, dim, length, count int) [][]tensor.Vector {
	return testSeqs(rng.New(seed), dim, length, count)
}

func preActivationRMS(l *Layer, seqs [][]tensor.Vector) float64 {
	var sumSq float64
	var n int64
	tmp := tensor.NewVector(l.Hidden)
	for _, xs := range seqs {
		for _, x := range xs {
			for _, w := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo} {
				tensor.Gemv(tmp, w, x)
				for _, v := range tmp {
					sumSq += float64(v) * float64(v)
				}
				n += int64(len(tmp))
			}
		}
	}
	return math.Sqrt(sumSq / float64(n))
}

func TestCalibrateHitsTargetSpread(t *testing.T) {
	n := testNet(t, 24, 24, 3, 4, 51)
	seqs := calSeqs(52, 24, 16, 3)
	Calibrate(n, seqs, func(l int) float64 { return 1.0 + 0.5*float64(l) })
	// Layer 0's spread is exactly normalizable (its inputs are fixed).
	if rms := preActivationRMS(n.Layers[0], seqs); math.Abs(rms-1.0) > 1e-3 {
		t.Fatalf("layer 0 spread %v, want 1.0", rms)
	}
}

func TestCalibrateDeepLayersUsable(t *testing.T) {
	// After calibration, deep layers' pre-activations must reach the
	// activation sensitive range — without it they sit near zero.
	n := testNet(t, 24, 24, 3, 4, 53)
	seqs := calSeqs(54, 24, 16, 3)
	// Deliberately shrink deep W to simulate the uncalibrated problem.
	for _, l := range n.Layers[1:] {
		for _, w := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo} {
			for i := range w.Data {
				w.Data[i] *= 0.01
			}
		}
	}
	Calibrate(n, seqs, func(int) float64 { return 1.2 })
	// Run the layers to get layer-2 inputs, then check its spread.
	cur := seqs
	for li := 0; li < 2; li++ {
		next := make([][]tensor.Vector, len(cur))
		for i, xs := range cur {
			next[i] = runLayerExact(n, n.Layers[li], xs)
		}
		cur = next
	}
	rms := preActivationRMS(n.Layers[2], cur)
	if rms < 0.8 || rms > 1.6 {
		t.Fatalf("deep layer spread %v, want ~1.2", rms)
	}
}

func TestCalibrateMarginTarget(t *testing.T) {
	n := testNet(t, 24, 24, 2, 8, 55)
	seqs := calSeqs(56, 24, 16, 6)
	Calibrate(n, seqs, func(int) float64 { return 1.2 })
	// Mean top-2 margin over the calibration final states ~ 0.8.
	var sum float64
	var cnt int
	for _, xs := range seqs {
		logits := n.Run(xs, Baseline())
		best := tensor.ArgMax(logits)
		m := math.Inf(1)
		for j, v := range logits {
			if j != best && float64(logits[best]-v) < m {
				m = float64(logits[best] - v)
			}
		}
		sum += m
		cnt++
	}
	mean := sum / float64(cnt)
	if mean < 0.5 || mean > 1.2 {
		t.Fatalf("mean margin %v, want ~0.8", mean)
	}
}

func TestCalibrateCoAdaptsHead(t *testing.T) {
	// Features with near-zero activity should carry much less head
	// weight than active ones after calibration.
	n := testNet(t, 24, 24, 1, 4, 57)
	seqs := calSeqs(58, 24, 16, 4)
	// Force a cluster of permanently-closed output gates.
	for j := 0; j < 8; j++ {
		n.Layers[0].Bo[j] = -12
	}
	Calibrate(n, seqs, func(int) float64 { return 1.2 })
	var dead, live float64
	for i := 0; i < n.Head.Rows; i++ {
		row := n.Head.Row(i)
		for j := 0; j < 8; j++ {
			dead += math.Abs(float64(row[j]))
		}
		for j := 8; j < 24; j++ {
			live += math.Abs(float64(row[j]))
		}
	}
	dead /= 8 * float64(n.Head.Rows)
	live /= 16 * float64(n.Head.Rows)
	if dead > 0.3*live {
		t.Fatalf("dead features keep %.3f head weight vs %.3f live", dead, live)
	}
}

func TestCalibratePanicsWithoutSeqs(t *testing.T) {
	n := testNet(t, 8, 8, 1, 2, 59)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Calibrate(n, nil, func(int) float64 { return 1 })
}
