package lstm

import (
	"bytes"
	"testing"
)

// FuzzReadNetwork feeds arbitrary bytes to the deserializer: it must
// reject garbage with an error, never panic or over-allocate.
func FuzzReadNetwork(f *testing.F) {
	// Seed with a valid serialized network and mutations of it.
	n := NewNetwork(3, 4, 1, 2)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadNetwork(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must validate and run.
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("deserializer accepted invalid network: %v", vErr)
		}
	})
}
