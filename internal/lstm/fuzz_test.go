package lstm

import (
	"bytes"
	"testing"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// FuzzRunBatchEquivalence drives the batched forward path with
// rng-derived batch shapes and modes: whatever the batch size, length
// raggedness or execution mode, every member must stay bitwise
// identical to its serial run. The seed corpus covers each mode once;
// the fuzzer then explores shape × mode combinations the table tests
// never enumerate.
func FuzzRunBatchEquivalence(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		r := rng.New(seed)
		n := testNet(t, 12, 16, 1+r.Intn(2), 4, r.Uint64())
		b := 1 + r.Intn(6)
		seqs := make([][]tensor.Vector, b)
		for i, ln := range equivtest.RaggedLengths(r, b, 9) {
			seqs[i] = testSeqs(r, 12, ln, 1)[0]
		}
		var opt RunOptions
		switch seed % 4 {
		case 1:
			opt = RunOptions{Intra: true, AlphaIntra: 0.02 + 0.2*r.Float64()}
		case 2:
			opt = RunOptions{Inter: true, AlphaInter: 4 * r.Float64(), MTS: 1 + r.Intn(4), Predictors: zeroPredictors(n)}
		case 3:
			opt = RunOptions{
				Inter: true, AlphaInter: 4 * r.Float64(), MTS: 1 + r.Intn(4), Predictors: zeroPredictors(n),
				Intra: true, AlphaIntra: 0.02 + 0.2*r.Float64(),
			}
		}
		got, err := n.RunBatchE(seqs, opt)
		if err != nil {
			t.Fatalf("RunBatchE: %v", err)
		}
		for i, xs := range seqs {
			equivtest.Vectors(t, "member "+itoa(i), got[i], n.Run(xs, opt))
		}
	})
}

// FuzzReadNetwork feeds arbitrary bytes to the deserializer: it must
// reject garbage with an error, never panic or over-allocate.
func FuzzReadNetwork(f *testing.F) {
	// Seed with a valid serialized network and mutations of it.
	n := NewNetwork(3, 4, 1, 2)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadNetwork(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must validate and run.
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("deserializer accepted invalid network: %v", vErr)
		}
	})
}
