package lstm

import (
	"mobilstm/internal/intracell"
	"mobilstm/internal/tensor"
)

// The batch-B forward path: RunBatch executes B sequences together so
// the recurrent united weights stream once per timestep for the whole
// batch (tensor.PackedGemmRows — the Appleyard-style GEMV→GEMM
// conversion), instead of B independent GEMV chains re-streaming
// U_{f,i,c,o} per member. The serving loop dispatches a drained
// batching window through this path as one call.
//
// The contract mirrors the packed kernels': output i of
// RunBatch(seqs...) is bitwise identical to serial Run(seqs[i]) in
// every mode, at every GOMAXPROCS, cold or warm cache. The batched
// kernels evaluate exactly the same dotRow chains and element-wise
// float32 expressions in the same order as the serial flow; batching
// only changes which loop walks them.
//
// Ragged lengths batch together in lockstep: at timestep t only the
// members with t < len(member) are active — the batch shrinks as short
// members finish, with no padding compute, and each member's logits
// come from its own final hidden state.

// RunBatch executes the network on a batch of input sequences and
// returns one logits vector per member, bitwise identical to calling
// Run on each member alone. Members may have different (non-zero)
// lengths. Tracing is per-sequence instrumentation: a non-nil
// opt.Trace rejects the batch — trace members serially instead.
//
// Inter mode's structure (breakpoints, sub-layers, tissues) is
// data-dependent per member, so Inter batches fall back to per-member
// execution over one shared arena; the batched lockstep kernels drive
// the baseline and DRS (Intra) flows, where the serving loop runs.
func (n *Network) RunBatch(seqs [][]tensor.Vector, opt RunOptions) []tensor.Vector {
	n.checkBatch(seqs, opt)
	if opt.Inter {
		return n.runBatchSerial(seqs, opt)
	}

	lens := make([]int, len(seqs))
	total := 0
	for i, xs := range seqs {
		lens[i] = len(xs)
		total += len(xs)
	}
	kf := kernelsFor(opt.Chain)
	sc := newBatchScratch(n.Hidden(), lens)

	// The flat cell list concatenates member sequences in member order;
	// member i's cell t lives at offs[i]+t in every flat slab.
	flat := make([]tensor.Vector, 0, total)
	for _, xs := range seqs {
		flat = append(flat, xs...)
	}
	seq := flat
	for _, l := range n.Layers {
		seq = n.runLayerBatch(l, seq, opt, sc, kf)
	}
	out := make([]tensor.Vector, len(seqs))
	for i := range seqs {
		out[i] = n.headLogits(seq[sc.offs[i]+sc.lens[i]-1], kf)
	}
	return out
}

// RunBatchE is the serving-path RunBatch: validation and shape
// violations report as an error instead of a panic.
func (n *Network) RunBatchE(seqs [][]tensor.Vector, opt RunOptions) (logits []tensor.Vector, err error) {
	defer tensor.Guard(&err)
	return n.RunBatch(seqs, opt), nil
}

// ClassifyBatch runs the batch and returns the argmax class per member.
func (n *Network) ClassifyBatch(seqs [][]tensor.Vector, opt RunOptions) []int {
	outs := n.RunBatch(seqs, opt)
	classes := make([]int, len(outs))
	for i, logits := range outs {
		classes[i] = tensor.ArgMax(logits)
	}
	return classes
}

// ClassifyBatchE is the error-returning ClassifyBatch (the serving
// loop's batch dispatch entry point).
func (n *Network) ClassifyBatchE(seqs [][]tensor.Vector, opt RunOptions) (classes []int, err error) {
	defer tensor.Guard(&err)
	return n.ClassifyBatch(seqs, opt), nil
}

// checkBatch applies Run's validation across the batch.
func (n *Network) checkBatch(seqs [][]tensor.Vector, opt RunOptions) {
	if len(seqs) == 0 {
		tensor.Panicf("lstm: empty batch")
	}
	for i, xs := range seqs {
		if len(xs) == 0 {
			tensor.Panicf("lstm: batch member %d is an empty input sequence", i)
		}
	}
	if opt.Trace != nil {
		tensor.Panicf("lstm: Trace is per-sequence; run batch members serially to trace")
	}
	if opt.Inter {
		if opt.MTS < 1 {
			tensor.Panicf("lstm: Inter mode requires MTS >= 1")
		}
		if len(opt.Predictors) != len(n.Layers) {
			tensor.Panicf("lstm: %d predictors for %d layers", len(opt.Predictors), len(n.Layers))
		}
	}
}

// runBatchSerial is the Inter-mode batch path: members run one at a
// time through the serial layer flow, sharing a single arena. Bitwise
// identity with Run holds by construction — it is the same code.
func (n *Network) runBatchSerial(seqs [][]tensor.Vector, opt RunOptions) []tensor.Vector {
	maxLen := 0
	for _, xs := range seqs {
		if len(xs) > maxLen {
			maxLen = len(xs)
		}
	}
	sc := newLayerScratch(n.Hidden(), maxLen)
	kf := kernelsFor(opt.Chain)
	out := make([]tensor.Vector, len(seqs))
	for i, xs := range seqs {
		seq := xs
		for li, l := range n.Layers {
			seq = n.runLayer(li, l, seq, opt, nil, sc, kf)
		}
		out[i] = n.headLogits(seq[len(seq)-1], kf)
	}
	return out
}

// batchScratch is the arena behind one batched forward pass. Flat slabs
// hold one row per cell of every member (wx, the hidden ping-pong);
// per-member slabs hold one row per batch member (states, output
// gates, DRS masks). Like layerScratch it is growth-only: slabs
// reallocate only when a later call sees a bigger shape.
type batchScratch struct {
	hid        int
	members    int
	capMembers int
	total      int // sum of member lengths
	capTotal   int

	lens []int // member lengths, fixed for the whole call
	offs []int // member cell offsets into the flat slabs

	wxFull *tensor.Matrix // capTotal × 4h united W·x slab
	wx     *tensor.Matrix // first `total` rows; row offs[i]+t = member i cell t

	// Batched recurrent products for the active members of one step:
	// row k is active member k's U_o·h (uoB, h wide) or U_{f,i,c}·h
	// (ficB, 3h wide). The views are re-headed per step so the hot loop
	// allocates nothing.
	uoBuf, ficBuf []float32
	uoB, ficB     tensor.Matrix

	os      []tensor.Vector // per-member output gates, views into osBuf
	osBuf   []float32
	masks   []([]bool) // per-member DRS mask buffers, views into maskBuf
	maskBuf []bool
	skips   [][]bool        // active members' masks for PackedGemmRows
	osOne   []tensor.Vector // single-cell tissue argument for the DRS scan

	hsA, hsB       []tensor.Vector // flat ping-pong per-cell hidden outputs
	hsABuf, hsBBuf []float32
	ping           bool

	states []cellState // per-member (h, c), views into stBuf
	stBuf  []float32

	active []int           // active member indices at the current step
	gather []tensor.Vector // active members' h_{t-1}
}

// newBatchScratch sizes an arena for the given member lengths.
func newBatchScratch(h int, lens []int) *batchScratch {
	sc := &batchScratch{}
	sc.reset(h, lens)
	return sc
}

// reset prepares the arena for a batch of the given shape, reallocating
// the slabs only when the shape outgrows them.
func (sc *batchScratch) reset(h int, lens []int) {
	members := len(lens)
	total := 0
	for _, ln := range lens {
		total += ln
	}
	if h != sc.hid || members > sc.capMembers || total > sc.capTotal {
		cm, ct := members, total
		if h == sc.hid {
			if cm < sc.capMembers {
				cm = sc.capMembers
			}
			if ct < sc.capTotal {
				ct = sc.capTotal
			}
		}
		sc.hid, sc.capMembers, sc.capTotal = h, cm, ct
		sc.wxFull = tensor.NewMatrix(ct, 4*h)
		sc.uoBuf = make([]float32, cm*h)
		sc.ficBuf = make([]float32, cm*3*h)
		sc.osBuf = make([]float32, cm*h)
		sc.maskBuf = make([]bool, cm*h)
		sc.os = make([]tensor.Vector, cm)
		sc.masks = make([][]bool, cm)
		for i := 0; i < cm; i++ {
			sc.os[i] = sc.osBuf[i*h : (i+1)*h]
			sc.masks[i] = sc.maskBuf[i*h : (i+1)*h]
		}
		sc.skips = make([][]bool, cm)
		sc.osOne = make([]tensor.Vector, 1)
		sc.hsABuf = make([]float32, ct*h)
		sc.hsBBuf = make([]float32, ct*h)
		sc.hsA = make([]tensor.Vector, ct)
		sc.hsB = make([]tensor.Vector, ct)
		for i := 0; i < ct; i++ {
			sc.hsA[i] = sc.hsABuf[i*h : (i+1)*h]
			sc.hsB[i] = sc.hsBBuf[i*h : (i+1)*h]
		}
		sc.stBuf = make([]float32, 2*cm*h)
		sc.states = make([]cellState, cm)
		sc.active = make([]int, cm)
		sc.gather = make([]tensor.Vector, cm)
		sc.lens = make([]int, 0, cm)
		sc.offs = make([]int, 0, cm)
		sc.wx = nil
	}
	sc.lens = append(sc.lens[:0], lens...)
	sc.offs = sc.offs[:0]
	off := 0
	for _, ln := range lens {
		sc.offs = append(sc.offs, off)
		off += ln
	}
	if sc.wx == nil || sc.wx.Rows != total {
		sc.wx = sc.wxFull.RowBlock(0, total)
	}
	sc.members, sc.total = members, total
}

// state binds member i's (h, c) pair to its arena slots.
func (sc *batchScratch) state(i int) *cellState {
	h := sc.hid
	sc.states[i] = cellState{
		h: sc.stBuf[2*i*h : (2*i+1)*h],
		c: sc.stBuf[(2*i+1)*h : (2*i+2)*h],
	}
	return &sc.states[i]
}

// nextHS flips the flat ping-pong and returns the per-cell hidden
// views of the current layer.
func (sc *batchScratch) nextHS() []tensor.Vector {
	sc.ping = !sc.ping
	if sc.ping {
		return sc.hsA[:sc.total]
	}
	return sc.hsB[:sc.total]
}

// uoView re-heads the scratch-owned U_o destination header over the
// first rows of its slab — the active-set view, without allocating.
func (sc *batchScratch) uoView(rows int) *tensor.Matrix {
	sc.uoB.Rows, sc.uoB.Cols, sc.uoB.Data = rows, sc.hid, sc.uoBuf[:rows*sc.hid]
	return &sc.uoB
}

// ficView is uoView for the 3h-wide U_{f,i,c} destination.
func (sc *batchScratch) ficView(rows int) *tensor.Matrix {
	cols := 3 * sc.hid
	sc.ficB.Rows, sc.ficB.Cols, sc.ficB.Data = rows, cols, sc.ficBuf[:rows*cols]
	return &sc.ficB
}

// runLayerBatch is the batched counterpart of runLayer's sequential
// flow: per timestep, the active members' recurrent products run as
// two batched united GEMMs (U_o, then U_{f,i,c} under the per-member
// DRS masks), and the element-wise state update walks each member with
// exactly the serial flow's expressions.
func (n *Network) runLayerBatch(l *Layer, xs []tensor.Vector, opt RunOptions, sc *batchScratch, kf *kernelFns) []tensor.Vector {
	h := l.Hidden
	pw := l.packedWeights()
	sc.reset(h, sc.lens)

	// Step 2 of Algorithm 1 across the whole batch: every cell of every
	// member is ready up-front, so one united packed GEMM streams
	// W_{f,i,c,o} once for all of them.
	kf.packedGemm(sc.wx, pw.w, xs)

	for i := range sc.lens {
		st := sc.state(i)
		st.h.Fill(0)
		st.c.Fill(0)
	}
	hs := sc.nextHS()
	maxLen := 0
	for _, ln := range sc.lens {
		if ln > maxLen {
			maxLen = ln
		}
	}
	for t := 0; t < maxLen; t++ {
		// The lockstep active set: members whose sequence still has a
		// cell at t. Short members simply drop out — no padding compute.
		act := sc.active[:0]
		for i, ln := range sc.lens {
			if t < ln {
				act = append(act, i)
			}
		}
		g := sc.gather[:len(act)]
		for k, i := range act {
			g[k] = sc.states[i].h
		}

		// o_t first (Algorithm 3 lines 4-6), batched: U_o streams once
		// for the whole active set.
		uoB := sc.uoView(len(act))
		kf.packedGemmRows(uoB, pw.uo, g, nil, 0)
		for k, i := range act {
			row := sc.wx.Row(sc.offs[i] + t)
			xo := row[3*h:]
			uo := uoB.Row(k)
			o := sc.os[i]
			for j := 0; j < h; j++ {
				o[j] = n.Gate.Apply(xo[j] + uo[j] + l.Bo[j])
			}
		}

		// Per-member DRS masks (each member is its own tissue of one,
		// exactly as in the serial sequential flow).
		skips := sc.skips[:len(act)]
		for k, i := range act {
			skips[k] = nil
			if opt.Intra {
				sc.osOne[0] = sc.os[i]
				skips[k], _ = intracell.TissueTrivialRowsInto(sc.masks[i], sc.osOne, opt.AlphaIntra)
			}
		}

		// The united U_{f,i,c} block for the active set under the masks:
		// each weight row streams once and is skipped per member.
		ficB := sc.ficView(len(act))
		kf.packedGemmRows(ficB, pw.ufic, g, skips, 0)

		// Element-wise state update per member — stepFIC's expressions.
		for k, i := range act {
			st := &sc.states[i]
			row := sc.wx.Row(sc.offs[i] + t)
			xf, xi, xc := row[:h], row[h:2*h], row[2*h:3*h]
			fr := ficB.Row(k)
			uf, ui, uc := fr[:h], fr[h:2*h], fr[2*h:]
			o := sc.os[i]
			skip := skips[k]
			for j := 0; j < h; j++ {
				if skip != nil && skip[j] {
					st.c[j] = 0
					st.h[j] = 0
					continue
				}
				f := n.Gate.Apply(xf[j] + uf[j] + l.Bf[j])
				in := n.Gate.Apply(xi[j] + ui[j] + l.Bi[j])
				cand := tensor.Tanh(xc[j] + uc[j] + l.Bc[j])
				c := f*st.c[j] + in*cand
				st.c[j] = c
				st.h[j] = o[j] * tensor.Tanh(c)
			}
			copy(hs[sc.offs[i]+t], st.h)
		}
	}
	return hs
}
