// Package lstm implements the LSTM inference library: cell math (Eqs. 1-5
// of the paper), multi-layer networks, and the four execution modes the
// paper evaluates — the baseline cuDNN-style flow (Algorithm 1), the
// inter-cell tissue-parallel flow (§IV), the intra-cell Dynamic Row Skip
// flow (Algorithm 3), and their combination.
//
// All modes run real float32 arithmetic, so accuracy under approximation
// is measured rather than asserted: the optimized flows produce genuinely
// different numbers and the accuracy harness scores them against the
// exact baseline.
package lstm

import (
	"fmt"
	"math"

	"mobilstm/internal/intercell"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// Layer holds the weights of one LSTM layer, shared by every unrolled
// cell of that layer (the sharing that makes the re-load problem).
type Layer struct {
	Hidden, Input int

	// W_g: input projections (Hidden x Input).
	Wf, Wi, Wc, Wo *tensor.Matrix
	// U_g: recurrent projections (Hidden x Hidden) — the united
	// U_{f,i,c,o} of the paper is their row-wise concatenation.
	Uf, Ui, Uc, Uo *tensor.Matrix
	// b_g: biases (Hidden).
	Bf, Bi, Bc, Bo tensor.Vector

	// packedCache lazily holds the united row-wise views of W_g and U_g
	// consumed by the packed kernels; see packed.go. Mutating any weight
	// matrix after construction requires Invalidate.
	packedCache
}

// NewLayer returns a zero-weight layer of the given shape.
func NewLayer(hidden, input int) *Layer {
	return &Layer{
		Hidden: hidden, Input: input,
		Wf: tensor.NewMatrix(hidden, input), Wi: tensor.NewMatrix(hidden, input),
		Wc: tensor.NewMatrix(hidden, input), Wo: tensor.NewMatrix(hidden, input),
		Uf: tensor.NewMatrix(hidden, hidden), Ui: tensor.NewMatrix(hidden, hidden),
		Uc: tensor.NewMatrix(hidden, hidden), Uo: tensor.NewMatrix(hidden, hidden),
		Bf: tensor.NewVector(hidden), Bi: tensor.NewVector(hidden),
		Bc: tensor.NewVector(hidden), Bo: tensor.NewVector(hidden),
	}
}

// UnitedUBytes is the footprint of the united recurrent matrix
// U_{f,i,c,o} — the per-cell re-load the inter-cell optimization targets.
func (l *Layer) UnitedUBytes() int64 {
	return 4 * int64(l.Hidden) * int64(l.Hidden) * 4
}

// UnitedWBytes is the footprint of the united input matrix W_{f,i,c,o}.
func (l *Layer) UnitedWBytes() int64 {
	return 4 * int64(l.Hidden) * int64(l.Input) * 4
}

// UMatrices returns the four recurrent matrices in f,i,c,o order.
func (l *Layer) UMatrices() []*tensor.Matrix {
	return []*tensor.Matrix{l.Uf, l.Ui, l.Uc, l.Uo}
}

// Analyzer builds the Algorithm 2 relevance analyzer for this layer.
func (l *Layer) Analyzer() *intercell.Analyzer {
	return intercell.NewAnalyzer(l.Uf, l.Ui, l.Uc, l.Uo, l.Bf, l.Bi, l.Bc, l.Bo)
}

// Network is a stack of LSTM layers with a linear classification head on
// the final hidden state.
type Network struct {
	Layers []*Layer
	// Head maps the last layer's final hidden state to class logits
	// (Classes x Hidden).
	Head     *tensor.Matrix
	HeadBias tensor.Vector
	// Gate is the activation used for the three gates; the paper
	// analyses both the exact sigmoid and the hard sigmoid (Fig. 7).
	Gate tensor.Activation
}

// NewNetwork builds a zero-weight network: layers stacked hidden->hidden
// after an input->hidden first layer, and a classification head.
func NewNetwork(input, hidden, layers, classes int) *Network {
	if layers < 1 || classes < 1 {
		tensor.Panicf("lstm: network needs at least one layer and one class")
	}
	n := &Network{Gate: tensor.ActSigmoid}
	in := input
	for i := 0; i < layers; i++ {
		n.Layers = append(n.Layers, NewLayer(hidden, in))
		in = hidden
	}
	n.Head = tensor.NewMatrix(classes, hidden)
	n.HeadBias = tensor.NewVector(classes)
	return n
}

// Hidden returns the hidden size (uniform across layers).
func (n *Network) Hidden() int { return n.Layers[0].Hidden }

// Input returns the first layer's input size.
func (n *Network) Input() int { return n.Layers[0].Input }

// Classes returns the head's output dimension.
func (n *Network) Classes() int { return n.Head.Rows }

// Params returns the total parameter count.
func (n *Network) Params() int64 {
	var p int64
	for _, l := range n.Layers {
		p += 4 * int64(l.Hidden) * int64(l.Input+l.Hidden+1)
	}
	p += int64(n.Head.Rows)*int64(n.Head.Cols) + int64(len(n.HeadBias))
	return p
}

// InitRandom fills the network with the synthetic "trained" weight
// distribution described in DESIGN.md §5. The generator knobs:
//
//   - linkScale controls the per-layer magnitude of the recurrent
//     matrices and therefore the D_g row norms Algorithm 2 sees; it grows
//     with depth (deeper layers carry stronger context links, the Fig. 15
//     observation).
//   - trivialFrac is the fraction of hidden units whose output-gate bias
//     sits deep in the sigmoid's low saturation, making their rows
//     DRS-trivial for most inputs (the Fig. 16 compression ratio).
func (n *Network) InitRandom(r *rng.RNG, linkScale func(layer int) float64, trivialFrac float64) {
	for li, l := range n.Layers {
		d := 1.0
		if linkScale != nil {
			d = linkScale(li)
		}
		// Expected RMS of this layer's inputs: the first layer sees raw
		// token embeddings (unit scale with occasional strong boundary
		// tokens), deeper layers see bounded hidden outputs. Trained
		// networks scale their input projections to use the activations'
		// sensitive range regardless; the generator does the same.
		inputRMS := 1.8
		if li > 0 {
			inputRMS = 0.25
		}
		initLayer(r.Split(), l, d, trivialFrac, inputRMS)
	}
	// Head: unit-variance rows give well-separated logits.
	hr := r.Split()
	scale := 1.4 / sqrtf(float64(n.Head.Cols))
	for i := range n.Head.Data {
		n.Head.Data[i] = hr.NormF32(0, scale)
	}
	for i := range n.HeadBias {
		n.HeadBias[i] = hr.NormF32(0, 0.1)
	}
}

func initLayer(r *rng.RNG, l *Layer, dTarget, trivialFrac, inputRMS float64) {
	defer l.Invalidate()
	h := float64(l.Hidden)
	// Recurrent matrices: choose sigma so the expected per-row L1 norm
	// E[D] = H * sigma * sqrt(2/pi) equals dTarget.
	sigmaU := dTarget / (h * 0.7979)
	for _, u := range l.UMatrices() {
		for i := range u.Data {
			u.Data[i] = r.NormF32(0, sigmaU)
		}
	}
	// Input projections: pre-activation contributions with spread ~1.2
	// at the layer's expected input magnitude, so cells land in a mix of
	// sensitive and saturated regions.
	sigmaW := 1.2 / (inputRMS * sqrtf(float64(l.Input)))
	for _, w := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo} {
		for i := range w.Data {
			w.Data[i] = r.NormF32(0, sigmaW)
		}
	}
	// Biases: the forget gate hovers near half-open so state memory
	// decays over a few cells (bounding how far a predicted-link error
	// propagates, as in trained LSTMs whose forget gates are selective);
	// input and candidate sit near zero. The output-gate bias is spread
	// so the trivial-row population grows smoothly with the DRS
	// threshold: its mean is placed so that P(o_t < 0.15) ~ trivialFrac
	// under the typical pre-activation spread sigma_total ~ 2.
	const sigmaTotal = 2.0
	muO := logit(0.15) - probit(trivialFrac)*sigmaTotal
	for j := 0; j < l.Hidden; j++ {
		l.Bf[j] = r.NormF32(0.4, 0.5)
		l.Bi[j] = r.NormF32(0, 0.3)
		l.Bc[j] = r.NormF32(0, 0.3)
		l.Bo[j] = r.NormF32(muO, 1.6)
	}
}

// logit is the inverse sigmoid.
func logit(p float64) float64 { return math.Log(p / (1 - p)) }

// probit is the standard normal quantile function.
func probit(p float64) float64 {
	if p <= 0 {
		return -8
	}
	if p >= 1 {
		return 8
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Sqrt(x)
}

// Validate checks internal shape consistency, returning a descriptive
// error for malformed networks (useful when loading external configs).
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("lstm: network has no layers")
	}
	in := n.Layers[0].Input
	for i, l := range n.Layers {
		if l.Input != in {
			return fmt.Errorf("lstm: layer %d input %d, want %d", i, l.Input, in)
		}
		for _, m := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo} {
			if m.Rows != l.Hidden || m.Cols != l.Input {
				return fmt.Errorf("lstm: layer %d W shape %dx%d, want %dx%d", i, m.Rows, m.Cols, l.Hidden, l.Input)
			}
		}
		for _, m := range l.UMatrices() {
			if m.Rows != l.Hidden || m.Cols != l.Hidden {
				return fmt.Errorf("lstm: layer %d U shape %dx%d, want %dx%d", i, m.Rows, m.Cols, l.Hidden, l.Hidden)
			}
		}
		for _, b := range []tensor.Vector{l.Bf, l.Bi, l.Bc, l.Bo} {
			if len(b) != l.Hidden {
				return fmt.Errorf("lstm: layer %d bias length %d, want %d", i, len(b), l.Hidden)
			}
		}
		in = l.Hidden
	}
	if n.Head.Cols != in {
		return fmt.Errorf("lstm: head cols %d, want %d", n.Head.Cols, in)
	}
	if len(n.HeadBias) != n.Head.Rows {
		return fmt.Errorf("lstm: head bias length %d, want %d", len(n.HeadBias), n.Head.Rows)
	}
	return nil
}
