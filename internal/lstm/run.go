package lstm

import (
	"mobilstm/internal/intercell"
	"mobilstm/internal/intracell"
	"mobilstm/internal/tensor"
)

// RunOptions selects the execution mode and its thresholds.
type RunOptions struct {
	// Inter enables the inter-cell optimization: layer division at links
	// with relevance below AlphaInter, predicted-link recovery, and
	// tissue re-organization bounded by MTS.
	Inter      bool
	AlphaInter float64
	// MTS is the platform's maximum tissue size (from intercell.FindMTS);
	// required when Inter is set.
	MTS int
	// Predictors supplies the Eq. 6 predicted context link per layer;
	// required when Inter is set (zero predictors are a valid cold
	// start, but accuracy suffers — exactly the trade the paper makes).
	Predictors []intercell.Predictor

	// Intra enables Dynamic Row Skip with the near-zero threshold
	// AlphaIntra on the output gate.
	Intra      bool
	AlphaIntra float64

	// Trace, when non-nil, collects the structural decisions of the run
	// (relevance values, breakpoints, tissue layout, skip counts) — the
	// information the paper's PyTorch stage exports to DeepBench, and
	// that our scheduler replays on the GPU model.
	Trace *Trace
}

// Baseline returns options for the exact Algorithm 1 flow.
func Baseline() RunOptions { return RunOptions{} }

// Trace records the structural decisions of one optimized run.
type Trace struct {
	Layers []LayerTrace
}

// LayerTrace is the per-layer record.
type LayerTrace struct {
	Layer int
	Cells int
	// Relevance[t-1] is the Algorithm 2 value S of the link into cell t.
	Relevance []float64
	// Breakpoints are the cell indices whose incoming link was cut.
	Breakpoints []int
	// SublayerSizes and TissueSizes describe the division and the
	// aligned re-organization.
	SublayerSizes []int
	TissueSizes   []int
	// SkipCounts[k] is the number of trivial hidden elements shared by
	// tissue k (combined mode) or of cell k (intra-only mode).
	SkipCounts []int
}

// Sublayers returns the number of sub-layers the layer divided into.
func (lt *LayerTrace) Sublayers() int { return len(lt.SublayerSizes) }

// MeanSkipFraction returns the average skipped fraction of hidden
// elements across the layer's execution units.
func (lt *LayerTrace) MeanSkipFraction(hidden int) float64 {
	if len(lt.SkipCounts) == 0 || hidden == 0 {
		return 0
	}
	var s int
	for _, c := range lt.SkipCounts {
		s += c
	}
	return float64(s) / float64(len(lt.SkipCounts)*hidden)
}

// Run executes the network on one input sequence and returns the class
// logits. The sequence is the layer input x_1..x_n (each of length
// Input()); every layer consumes the previous layer's hidden outputs.
func (n *Network) Run(xs []tensor.Vector, opt RunOptions) tensor.Vector {
	if len(xs) == 0 {
		tensor.Panicf("lstm: empty input sequence")
	}
	if opt.Inter {
		if opt.MTS < 1 {
			tensor.Panicf("lstm: Inter mode requires MTS >= 1")
		}
		if len(opt.Predictors) != len(n.Layers) {
			tensor.Panicf("lstm: %d predictors for %d layers", len(opt.Predictors), len(n.Layers))
		}
	}
	seq := xs
	for li, l := range n.Layers {
		var lt *LayerTrace
		if opt.Trace != nil {
			opt.Trace.Layers = append(opt.Trace.Layers, LayerTrace{Layer: li, Cells: len(seq)})
			lt = &opt.Trace.Layers[len(opt.Trace.Layers)-1]
		}
		seq = n.runLayer(li, l, seq, opt, lt)
	}
	last := seq[len(seq)-1]
	logits := tensor.NewVector(n.Head.Rows)
	tensor.Gemv(logits, n.Head, last)
	tensor.Add(logits, logits, n.HeadBias)
	return logits
}

// Classify runs the network and returns the argmax class.
func (n *Network) Classify(xs []tensor.Vector, opt RunOptions) int {
	return tensor.ArgMax(n.Run(xs, opt))
}

// RunE is the serving-path entry point of Run: the same validation
// (empty sequence, missing MTS, predictor/layer mismatch, shape
// violations in the cell math) reports as an error instead of a
// process-killing panic, so a server worker survives a malformed
// request. The happy path is identical to Run.
func (n *Network) RunE(xs []tensor.Vector, opt RunOptions) (logits tensor.Vector, err error) {
	defer tensor.Guard(&err)
	return n.Run(xs, opt), nil
}

// ClassifyE runs the network and returns the argmax class, reporting
// validation failures as errors (the serving-path Classify).
func (n *Network) ClassifyE(xs []tensor.Vector, opt RunOptions) (class int, err error) {
	defer tensor.Guard(&err)
	return tensor.ArgMax(n.Run(xs, opt)), nil
}

// layerScratch holds the per-cell working vectors reused across steps.
type layerScratch struct {
	uo, uf, ui, uc tensor.Vector
	pre            tensor.Vector
	gf, gi, gc     tensor.Vector
}

func newLayerScratch(h int) *layerScratch {
	return &layerScratch{
		uo: tensor.NewVector(h), uf: tensor.NewVector(h),
		ui: tensor.NewVector(h), uc: tensor.NewVector(h),
		pre: tensor.NewVector(h),
		gf:  tensor.NewVector(h), gi: tensor.NewVector(h), gc: tensor.NewVector(h),
	}
}

// cellState is the (h, c) pair carried along one sub-layer.
type cellState struct {
	h, c tensor.Vector
}

func (n *Network) runLayer(li int, l *Layer, xs []tensor.Vector, opt RunOptions, lt *LayerTrace) []tensor.Vector {
	nCells := len(xs)
	h := l.Hidden

	// Step 2 of Algorithm 1: the per-layer Sgemm(W_{f,i,c,o}, x). All
	// layer inputs are ready up-front on mobile GPUs (§II-C).
	xf := make([]tensor.Vector, nCells)
	xi := make([]tensor.Vector, nCells)
	xc := make([]tensor.Vector, nCells)
	xo := make([]tensor.Vector, nCells)
	for t, x := range xs {
		xf[t] = tensor.NewVector(h)
		xi[t] = tensor.NewVector(h)
		xc[t] = tensor.NewVector(h)
		xo[t] = tensor.NewVector(h)
		tensor.Gemv(xf[t], l.Wf, x)
		tensor.Gemv(xi[t], l.Wi, x)
		tensor.Gemv(xc[t], l.Wc, x)
		tensor.Gemv(xo[t], l.Wo, x)
	}

	// Layer division (Fig. 10 step 5): relevance per link, breakpoints,
	// sub-layers.
	var subs [][]int
	if opt.Inter && nCells > 1 {
		an := l.Analyzer()
		rel := make([]float64, nCells-1)
		for t := 1; t < nCells; t++ {
			rel[t-1] = an.Relevance(xf[t], xi[t], xc[t], xo[t])
		}
		breaks := intercell.Breakpoints(rel, opt.AlphaInter)
		subs = intercell.Sublayers(nCells, breaks)
		if lt != nil {
			lt.Relevance = rel
			lt.Breakpoints = breaks
		}
	} else {
		subs = intercell.Sublayers(nCells, nil)
	}

	// Tissue re-organization (Fig. 10 steps 7-8). Without the inter-cell
	// optimization every cell is its own tissue (strictly sequential).
	var tissues [][]int
	if opt.Inter {
		tissues = intercell.AlignTissues(subs, opt.MTS)
	} else {
		tissues = intercell.AlignTissues(subs, 1)
	}
	if lt != nil {
		lt.SublayerSizes = intercell.TissueSizes(subs)
		lt.TissueSizes = intercell.TissueSizes(tissues)
	}

	// Sub-layer lookup and initial states: sub-layer 0 starts from the
	// layer's zero initial state; every later sub-layer starts from the
	// predicted context link (Fig. 10 step 6).
	subOf := make([]int, nCells)
	for si, s := range subs {
		for _, c := range s {
			subOf[c] = si
		}
	}
	states := make([]cellState, len(subs))
	for si := range states {
		if si == 0 || !opt.Inter {
			states[si] = cellState{h: tensor.NewVector(h), c: tensor.NewVector(h)}
			continue
		}
		p := opt.Predictors[li]
		states[si] = cellState{h: p.H.Clone(), c: p.C.Clone()}
	}

	hs := make([]tensor.Vector, nCells)
	scratch := newLayerScratch(h)
	os := make([]tensor.Vector, 0, opt.MTS+1)

	for _, tissue := range tissues {
		// First the output gates of every cell in the tissue — in the
		// DRS flow o_t must exist before U_{f,i,c} is touched
		// (Algorithm 3 lines 4-6); in the combined flow the tissue's
		// shared skip set is the intersection across its cells.
		os = os[:0]
		for _, cell := range tissue {
			st := &states[subOf[cell]]
			tensor.Gemv(scratch.uo, l.Uo, st.h)
			o := tensor.NewVector(h)
			for j := 0; j < h; j++ {
				o[j] = n.Gate.Apply(xo[cell][j] + scratch.uo[j] + l.Bo[j])
			}
			os = append(os, o)
		}
		var skip []bool
		var skipCount int
		if opt.Intra {
			skip, skipCount = intracell.TissueTrivialRows(os, opt.AlphaIntra)
		}
		if lt != nil && (opt.Intra || opt.Inter) {
			lt.SkipCounts = append(lt.SkipCounts, skipCount)
		}
		// Then the f, i, c gates (with trivial rows disabled) and the
		// element-wise state update per cell.
		for ci, cell := range tissue {
			st := &states[subOf[cell]]
			n.stepFIC(l, st, xf[cell], xi[cell], xc[cell], os[ci], skip, scratch)
			hs[cell] = st.h.Clone()
		}
	}
	return hs
}

// stepFIC completes one cell given its output gate: computes f_t, i_t,
// the candidate, and updates (c, h) in place. Rows marked in skip are not
// computed; their c and h elements are approximated to zero (§V-A).
func (n *Network) stepFIC(l *Layer, st *cellState, xf, xi, xc, o tensor.Vector, skip []bool, s *layerScratch) {
	h := l.Hidden
	tensor.GemvRows(s.uf, l.Uf, st.h, skip, 0)
	tensor.GemvRows(s.ui, l.Ui, st.h, skip, 0)
	tensor.GemvRows(s.uc, l.Uc, st.h, skip, 0)
	for j := 0; j < h; j++ {
		if skip != nil && skip[j] {
			st.c[j] = 0
			st.h[j] = 0
			continue
		}
		f := n.Gate.Apply(xf[j] + s.uf[j] + l.Bf[j])
		i := n.Gate.Apply(xi[j] + s.ui[j] + l.Bi[j])
		g := tensor.Tanh(xc[j] + s.uc[j] + l.Bc[j])
		c := f*st.c[j] + i*g
		st.c[j] = c
		st.h[j] = o[j] * tensor.Tanh(c)
	}
}

// CollectPredictors executes the unmodified network over a set of
// sequences and returns the Eq. 6 predicted context link per layer — the
// offline step 4 of Fig. 10. Every observed (h_t, c_t) pair contributes;
// the paper collects the full link distribution, not only weak links.
func CollectPredictors(n *Network, samples [][]tensor.Vector) []intercell.Predictor {
	stats := make([]*intercell.LinkStats, len(n.Layers))
	for i, l := range n.Layers {
		stats[i] = intercell.NewLinkStats(l.Hidden)
	}
	for _, xs := range samples {
		seq := xs
		for li, l := range n.Layers {
			seq = observeLayer(n, l, seq, stats[li])
		}
	}
	out := make([]intercell.Predictor, len(n.Layers))
	for i, s := range stats {
		out[i] = s.Predictor()
	}
	return out
}

// observeLayer runs one layer exactly and feeds every context link to the
// accumulator, returning the hidden sequence for the next layer.
func observeLayer(n *Network, l *Layer, xs []tensor.Vector, ls *intercell.LinkStats) []tensor.Vector {
	h := l.Hidden
	st := cellState{h: tensor.NewVector(h), c: tensor.NewVector(h)}
	scratch := newLayerScratch(h)
	hs := make([]tensor.Vector, len(xs))
	xg := tensor.NewVector(h)
	for t, x := range xs {
		// o_t first (same math as Run, no skipping).
		tensor.Gemv(scratch.uo, l.Uo, st.h)
		tensor.Gemv(xg, l.Wo, x)
		o := tensor.NewVector(h)
		for j := 0; j < h; j++ {
			o[j] = n.Gate.Apply(xg[j] + scratch.uo[j] + l.Bo[j])
		}
		xfv, xiv, xcv := tensor.NewVector(h), tensor.NewVector(h), tensor.NewVector(h)
		tensor.Gemv(xfv, l.Wf, x)
		tensor.Gemv(xiv, l.Wi, x)
		tensor.Gemv(xcv, l.Wc, x)
		n.stepFIC(l, &st, xfv, xiv, xcv, o, nil, scratch)
		hs[t] = st.h.Clone()
		ls.Observe(st.h, st.c)
	}
	return hs
}
