package lstm

import (
	"fmt"

	"mobilstm/internal/intercell"
	"mobilstm/internal/intracell"
	"mobilstm/internal/tensor"
)

// RunOptions selects the execution mode and its thresholds.
type RunOptions struct {
	// Inter enables the inter-cell optimization: layer division at links
	// with relevance below AlphaInter, predicted-link recovery, and
	// tissue re-organization bounded by MTS.
	Inter      bool
	AlphaInter float64
	// MTS is the platform's maximum tissue size (from intercell.FindMTS);
	// required when Inter is set.
	MTS int
	// Predictors supplies the Eq. 6 predicted context link per layer;
	// required when Inter is set (zero predictors are a valid cold
	// start, but accuracy suffers — exactly the trade the paper makes).
	Predictors []intercell.Predictor

	// Intra enables Dynamic Row Skip with the near-zero threshold
	// AlphaIntra on the output gate.
	Intra      bool
	AlphaIntra float64

	// Chain selects the accumulation chain the GEMV/GEMM kernels run
	// (tensor.KernelChain). The zero value (ChainAuto) follows the
	// process default — the canonical bitwise-deterministic chain
	// unless tensor.SetKernelChain or MOBILSTM_KERNEL_CHAIN moved it.
	// ChainAVX2 opts this run into the wide FMA fast mode: logits keep
	// the same determinism guarantees within the wide chain
	// (Run≡RunBatch, any GOMAXPROCS) but drift a few ULP from the
	// canonical chain's bits (see EXPERIMENTS.md).
	Chain tensor.KernelChain

	// Trace, when non-nil, collects the structural decisions of the run
	// (relevance values, breakpoints, tissue layout, skip counts) — the
	// information the paper's PyTorch stage exports to DeepBench, and
	// that our scheduler replays on the GPU model.
	Trace *Trace
}

// Baseline returns options for the exact Algorithm 1 flow.
func Baseline() RunOptions { return RunOptions{} }

// Trace records the structural decisions of one optimized run.
type Trace struct {
	Layers []LayerTrace
}

// LayerTrace is the per-layer record.
type LayerTrace struct {
	Layer int
	Cells int
	// Relevance[t-1] is the Algorithm 2 value S of the link into cell t.
	Relevance []float64
	// Breakpoints are the cell indices whose incoming link was cut.
	Breakpoints []int
	// SublayerSizes and TissueSizes describe the division and the
	// aligned re-organization.
	SublayerSizes []int
	TissueSizes   []int
	// SkipCounts[k] is the number of trivial hidden elements shared by
	// tissue k (combined mode) or of cell k (intra-only mode).
	SkipCounts []int
}

// Sublayers returns the number of sub-layers the layer divided into.
func (lt *LayerTrace) Sublayers() int { return len(lt.SublayerSizes) }

// MeanSkipFraction returns the average skipped fraction of hidden
// elements across the layer's execution units.
func (lt *LayerTrace) MeanSkipFraction(hidden int) float64 {
	if len(lt.SkipCounts) == 0 || hidden == 0 {
		return 0
	}
	var s int
	for _, c := range lt.SkipCounts {
		s += c
	}
	return float64(s) / float64(len(lt.SkipCounts)*hidden)
}

// Run executes the network on one input sequence and returns the class
// logits. The sequence is the layer input x_1..x_n (each of length
// Input()); every layer consumes the previous layer's hidden outputs.
//
// The layer loop owns one scratch arena for the whole call: every
// per-cell buffer (gate pre-activations, output gates, hidden outputs,
// sub-layer states) lives in it, so the hot path performs no per-cell
// allocation and a Run's footprint is a handful of arena slabs.
func (n *Network) Run(xs []tensor.Vector, opt RunOptions) tensor.Vector {
	if len(xs) == 0 {
		tensor.Panicf("lstm: empty input sequence")
	}
	if opt.Inter {
		if opt.MTS < 1 {
			tensor.Panicf("lstm: Inter mode requires MTS >= 1")
		}
		if len(opt.Predictors) != len(n.Layers) {
			tensor.Panicf("lstm: %d predictors for %d layers", len(opt.Predictors), len(n.Layers))
		}
	}
	kf := kernelsFor(opt.Chain)
	sc := newLayerScratch(n.Hidden(), len(xs))
	seq := xs
	for li, l := range n.Layers {
		var lt *LayerTrace
		if opt.Trace != nil {
			opt.Trace.Layers = append(opt.Trace.Layers, LayerTrace{Layer: li, Cells: len(seq)})
			lt = &opt.Trace.Layers[len(opt.Trace.Layers)-1]
		}
		seq = n.runLayer(li, l, seq, opt, lt, sc, kf)
	}
	return n.headLogits(seq[len(seq)-1], kf)
}

// headLogits applies the linear head to a final hidden state, returning
// freshly allocated logits (never an arena view).
func (n *Network) headLogits(last tensor.Vector, kf *kernelFns) tensor.Vector {
	logits := tensor.NewVector(n.Head.Rows)
	kf.gemv(logits, n.Head, last)
	tensor.Add(logits, logits, n.HeadBias)
	return logits
}

// CheckSequence validates a caller-supplied input sequence against the
// network's input width without running it: a serving front-end uses it
// to reject one malformed batch member with its own error instead of
// failing the co-batched requests.
func (n *Network) CheckSequence(xs []tensor.Vector) error {
	if len(xs) == 0 {
		return fmt.Errorf("lstm: empty input sequence")
	}
	in := n.Input()
	for t, x := range xs {
		if len(x) != in {
			return fmt.Errorf("lstm: sequence element %d has length %d, want input width %d", t, len(x), in)
		}
	}
	return nil
}

// Classify runs the network and returns the argmax class.
func (n *Network) Classify(xs []tensor.Vector, opt RunOptions) int {
	return tensor.ArgMax(n.Run(xs, opt))
}

// RunE is the serving-path entry point of Run: the same validation
// (empty sequence, missing MTS, predictor/layer mismatch, shape
// violations in the cell math) reports as an error instead of a
// process-killing panic, so a server worker survives a malformed
// request. The happy path is identical to Run.
func (n *Network) RunE(xs []tensor.Vector, opt RunOptions) (logits tensor.Vector, err error) {
	defer tensor.Guard(&err)
	return n.Run(xs, opt), nil
}

// ClassifyE runs the network and returns the argmax class, reporting
// validation failures as errors (the serving-path Classify).
func (n *Network) ClassifyE(xs []tensor.Vector, opt RunOptions) (class int, err error) {
	defer tensor.Guard(&err)
	return tensor.ArgMax(n.Run(xs, opt)), nil
}

// layerScratch is the arena behind one forward pass: every buffer the
// layer loop touches per cell is carved out of a few slabs sized once
// (and re-sized only if a later call sees a bigger shape). Hidden
// outputs use two ping-pong slabs because layer k+1 reads layer k's
// outputs while producing its own.
type layerScratch struct {
	hid      int // hidden size the buffers are carved for
	cells    int // cells of the current layer
	capCells int // slab capacity in cells

	wxFull *tensor.Matrix // capCells × 4h united W·x slab
	wx     *tensor.Matrix // first `cells` rows of wxFull; row t = [xf|xi|xc|xo]

	uo         tensor.Vector   // U_o · h_{t-1}
	uf, ui, uc tensor.Vector   // U_{f,i,c} · h_{t-1}, views into one slab
	fic        []tensor.Vector // {uf, ui, uc}: the PackedGemvRows destinations

	os    []tensor.Vector // per-tissue output gates, views into osBuf
	osBuf []float32
	skip  []bool // DRS mask reused across tissues

	hsA, hsB       []tensor.Vector // ping-pong per-cell hidden outputs
	hsABuf, hsBBuf []float32
	ping           bool

	states []cellState // per-sub-layer (h, c), views into stBuf
	stBuf  []float32
	subOf  []int
}

func newLayerScratch(h, cells int) *layerScratch {
	sc := &layerScratch{}
	sc.reset(h, cells)
	return sc
}

// reset prepares the arena for a layer of the given shape, reallocating
// the slabs only when the shape outgrows them.
func (sc *layerScratch) reset(h, cells int) {
	if h != sc.hid || cells > sc.capCells {
		c := cells
		if h == sc.hid && c < sc.capCells {
			c = sc.capCells
		}
		sc.hid, sc.capCells = h, c
		sc.wxFull = tensor.NewMatrix(c, 4*h)
		sc.uo = tensor.NewVector(h)
		ficBuf := tensor.NewVector(3 * h)
		sc.uf, sc.ui, sc.uc = ficBuf[:h], ficBuf[h:2*h], ficBuf[2*h:]
		sc.fic = []tensor.Vector{sc.uf, sc.ui, sc.uc}
		sc.skip = make([]bool, h)
		sc.osBuf = make([]float32, c*h)
		sc.hsABuf = make([]float32, c*h)
		sc.hsBBuf = make([]float32, c*h)
		sc.os = make([]tensor.Vector, c)
		sc.hsA = make([]tensor.Vector, c)
		sc.hsB = make([]tensor.Vector, c)
		for i := 0; i < c; i++ {
			sc.os[i] = sc.osBuf[i*h : (i+1)*h]
			sc.hsA[i] = sc.hsABuf[i*h : (i+1)*h]
			sc.hsB[i] = sc.hsBBuf[i*h : (i+1)*h]
		}
		sc.stBuf = make([]float32, 2*c*h)
		sc.states = make([]cellState, c)
		sc.subOf = make([]int, c)
		sc.wx = nil
	}
	if sc.wx == nil || sc.wx.Rows != cells {
		sc.wx = sc.wxFull.RowBlock(0, cells)
	}
	sc.cells = cells
}

// state binds sub-layer si's (h, c) pair to its arena slots without
// initializing the contents.
func (sc *layerScratch) state(si int) *cellState {
	h := sc.hid
	sc.states[si] = cellState{
		h: sc.stBuf[2*si*h : (2*si+1)*h],
		c: sc.stBuf[(2*si+1)*h : (2*si+2)*h],
	}
	return &sc.states[si]
}

// zeroState binds and zeroes sub-layer si's state.
func (sc *layerScratch) zeroState(si int) *cellState {
	st := sc.state(si)
	st.h.Fill(0)
	st.c.Fill(0)
	return st
}

// nextHS flips the ping-pong and returns the hidden-output views for the
// current layer: the previous layer's outputs (this layer's inputs)
// stay valid in the other slab.
func (sc *layerScratch) nextHS() []tensor.Vector {
	sc.ping = !sc.ping
	if sc.ping {
		return sc.hsA[:sc.cells]
	}
	return sc.hsB[:sc.cells]
}

// cellState is the (h, c) pair carried along one sub-layer.
type cellState struct {
	h, c tensor.Vector
}

func (n *Network) runLayer(li int, l *Layer, xs []tensor.Vector, opt RunOptions, lt *LayerTrace, sc *layerScratch, kf *kernelFns) []tensor.Vector {
	nCells := len(xs)
	h := l.Hidden
	pw := l.packedWeights()
	sc.reset(h, nCells)

	// Step 2 of Algorithm 1: the per-layer Sgemm(W_{f,i,c,o}, x) as one
	// united packed GEMM — all layer inputs are ready up-front on mobile
	// GPUs (§II-C), so the whole layer's input projections are a single
	// weight stream. Row t of wx holds cell t's united pre-activation.
	kf.packedGemm(sc.wx, pw.w, xs)
	wrow := func(t int) (xf, xi, xc, xo tensor.Vector) {
		row := sc.wx.Row(t)
		return row[:h], row[h : 2*h], row[2*h : 3*h], row[3*h:]
	}

	if !opt.Inter {
		// Sequential flow: one sub-layer, every cell its own tissue. The
		// united recurrent stream is split per cell into the U_o view
		// (o_t first, Algorithm 3 lines 4-6) and the U_{f,i,c} block.
		if lt != nil {
			lt.SublayerSizes = []int{nCells}
			ts := make([]int, nCells)
			for i := range ts {
				ts[i] = 1
			}
			lt.TissueSizes = ts
		}
		st := sc.zeroState(0)
		hs := sc.nextHS()
		o := sc.os[0]
		for t := 0; t < nCells; t++ {
			xf, xi, xc, xo := wrow(t)
			kf.gemv(sc.uo, pw.uo, st.h)
			for j := 0; j < h; j++ {
				o[j] = n.Gate.Apply(xo[j] + sc.uo[j] + l.Bo[j])
			}
			var skip []bool
			var skipCount int
			if opt.Intra {
				skip, skipCount = intracell.TissueTrivialRowsInto(sc.skip, sc.os[:1], opt.AlphaIntra)
			}
			if lt != nil && opt.Intra {
				lt.SkipCounts = append(lt.SkipCounts, skipCount)
			}
			n.stepFIC(l, pw, st, xf, xi, xc, o, skip, sc, kf)
			copy(hs[t], st.h)
		}
		return hs
	}

	// Layer division (Fig. 10 step 5): relevance per link, breakpoints,
	// sub-layers.
	var subs [][]int
	if nCells > 1 {
		an := l.Analyzer()
		rel := make([]float64, nCells-1)
		for t := 1; t < nCells; t++ {
			xf, xi, xc, xo := wrow(t)
			rel[t-1] = an.Relevance(xf, xi, xc, xo)
		}
		breaks := intercell.Breakpoints(rel, opt.AlphaInter)
		subs = intercell.Sublayers(nCells, breaks)
		if lt != nil {
			lt.Relevance = rel
			lt.Breakpoints = breaks
		}
	} else {
		subs = intercell.Sublayers(nCells, nil)
	}

	// Tissue re-organization (Fig. 10 steps 7-8).
	tissues := intercell.AlignTissues(subs, opt.MTS)
	if lt != nil {
		lt.SublayerSizes = intercell.TissueSizes(subs)
		lt.TissueSizes = intercell.TissueSizes(tissues)
	}

	// Sub-layer lookup and initial states: sub-layer 0 starts from the
	// layer's zero initial state; every later sub-layer starts from the
	// predicted context link (Fig. 10 step 6).
	subOf := sc.subOf[:nCells]
	for si, s := range subs {
		for _, c := range s {
			subOf[c] = si
		}
	}
	states := sc.states[:len(subs)]
	for si := range states {
		if si == 0 {
			sc.zeroState(si)
			continue
		}
		st := sc.state(si)
		p := opt.Predictors[li]
		copy(st.h, p.H)
		copy(st.c, p.C)
	}

	hs := sc.nextHS()
	for _, tissue := range tissues {
		// First the output gates of every cell in the tissue — in the
		// DRS flow o_t must exist before U_{f,i,c} is touched
		// (Algorithm 3 lines 4-6); in the combined flow the tissue's
		// shared skip set is the intersection across its cells.
		os := sc.os[:len(tissue)]
		for oi, cell := range tissue {
			st := &states[subOf[cell]]
			_, _, _, xo := wrow(cell)
			kf.gemv(sc.uo, pw.uo, st.h)
			o := os[oi]
			for j := 0; j < h; j++ {
				o[j] = n.Gate.Apply(xo[j] + sc.uo[j] + l.Bo[j])
			}
		}
		var skip []bool
		var skipCount int
		if opt.Intra {
			skip, skipCount = intracell.TissueTrivialRowsInto(sc.skip, os, opt.AlphaIntra)
		}
		if lt != nil {
			lt.SkipCounts = append(lt.SkipCounts, skipCount)
		}
		// Then the f, i, c gates (with trivial rows disabled) and the
		// element-wise state update per cell.
		for ci, cell := range tissue {
			st := &states[subOf[cell]]
			xf, xi, xc, _ := wrow(cell)
			n.stepFIC(l, pw, st, xf, xi, xc, os[ci], skip, sc, kf)
			copy(hs[cell], st.h)
		}
	}
	return hs
}

// stepFIC completes one cell given its output gate: computes f_t, i_t,
// the candidate, and updates (c, h) in place. Rows marked in skip are not
// computed; their c and h elements are approximated to zero (§V-A). The
// three recurrent products are one united pass over the U_{f,i,c} block
// of the packed matrix — the recurrent input streams once across all
// three gates, and the skip mask disables a row in all of them at once.
func (n *Network) stepFIC(l *Layer, pw *packedWeights, st *cellState, xf, xi, xc, o tensor.Vector, skip []bool, s *layerScratch, kf *kernelFns) {
	h := l.Hidden
	kf.packedGemvRows(s.fic, pw.ufic, st.h, skip, 0)
	for j := 0; j < h; j++ {
		if skip != nil && skip[j] {
			st.c[j] = 0
			st.h[j] = 0
			continue
		}
		f := n.Gate.Apply(xf[j] + s.uf[j] + l.Bf[j])
		i := n.Gate.Apply(xi[j] + s.ui[j] + l.Bi[j])
		g := tensor.Tanh(xc[j] + s.uc[j] + l.Bc[j])
		c := f*st.c[j] + i*g
		st.c[j] = c
		st.h[j] = o[j] * tensor.Tanh(c)
	}
}

// CollectPredictors executes the unmodified network over a set of
// sequences and returns the Eq. 6 predicted context link per layer — the
// offline step 4 of Fig. 10. Every observed (h_t, c_t) pair contributes;
// the paper collects the full link distribution, not only weak links.
func CollectPredictors(n *Network, samples [][]tensor.Vector) []intercell.Predictor {
	stats := make([]*intercell.LinkStats, len(n.Layers))
	for i, l := range n.Layers {
		stats[i] = intercell.NewLinkStats(l.Hidden)
	}
	var sc *layerScratch
	for _, xs := range samples {
		if sc == nil {
			sc = newLayerScratch(n.Hidden(), len(xs))
		}
		seq := xs
		for li, l := range n.Layers {
			seq = observeLayer(n, l, seq, stats[li], sc)
		}
	}
	out := make([]intercell.Predictor, len(n.Layers))
	for i, s := range stats {
		out[i] = s.Predictor()
	}
	return out
}

// observeLayer runs one layer exactly and feeds every context link to the
// accumulator, returning the hidden sequence for the next layer (backed
// by the scratch ping-pong slab, valid until the layer after next).
func observeLayer(n *Network, l *Layer, xs []tensor.Vector, ls *intercell.LinkStats, sc *layerScratch) []tensor.Vector {
	h := l.Hidden
	pw := l.packedWeights()
	sc.reset(h, len(xs))
	tensor.PackedGemm(sc.wx, pw.w, xs)
	st := sc.zeroState(0)
	hs := sc.nextHS()
	o := sc.os[0]
	for t := range xs {
		row := sc.wx.Row(t)
		xf, xi, xc, xo := row[:h], row[h:2*h], row[2*h:3*h], row[3*h:]
		// o_t first (same math as Run, no skipping).
		tensor.Gemv(sc.uo, pw.uo, st.h)
		for j := 0; j < h; j++ {
			o[j] = n.Gate.Apply(xo[j] + sc.uo[j] + l.Bo[j])
		}
		n.stepFIC(l, pw, st, xf, xi, xc, o, nil, sc, &canonicalKernels)
		copy(hs[t], st.h)
		ls.Observe(st.h, st.c)
	}
	return hs
}
