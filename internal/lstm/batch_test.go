package lstm

import (
	"strings"
	"testing"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// raggedSeqs draws count sequences whose lengths come from the shared
// harness generator, so at least two members differ.
func raggedSeqs(r *rng.RNG, dim, maxLen, count int) [][]tensor.Vector {
	lens := equivtest.RaggedLengths(r, count, maxLen)
	out := make([][]tensor.Vector, count)
	for i, ln := range lens {
		out[i] = testSeqs(r, dim, ln, 1)[0]
	}
	return out
}

func batchModes(n *Network) map[string]RunOptions {
	return map[string]RunOptions{
		"baseline": Baseline(),
		"intra":    {Intra: true, AlphaIntra: 0.1},
		"inter":    {Inter: true, AlphaInter: 2, MTS: 4, Predictors: zeroPredictors(n)},
		"combined": {Inter: true, AlphaInter: 2, MTS: 4, Predictors: zeroPredictors(n), Intra: true, AlphaIntra: 0.1},
	}
}

// TestRunBatchMatchesSerial pins the batched-forward contract: member i
// of RunBatch is bitwise identical to serial Run(seqs[i]) in every
// mode, at every batch size, over ragged lengths.
func TestRunBatchMatchesSerial(t *testing.T) {
	n := testNet(t, 24, 32, 2, 5, 301)
	r := rng.New(302)
	for name, opt := range batchModes(n) {
		for _, b := range []int{1, 2, 3, 5} {
			seqs := raggedSeqs(r, 24, 17, b)
			want := make([]tensor.Vector, b)
			for i, xs := range seqs {
				want[i] = n.Run(xs, opt)
			}
			got := n.RunBatch(seqs, opt)
			equivtest.Batch(t, name+" B="+itoa(b), got, want)
		}
	}
}

func itoa(b int) string {
	return string([]byte{byte('0' + b)})
}

// TestClassifyBatchMatchesSerial pins the classification wrapper to the
// serial Classify per member.
func TestClassifyBatchMatchesSerial(t *testing.T) {
	n := testNet(t, 16, 24, 2, 6, 303)
	r := rng.New(304)
	for name, opt := range batchModes(n) {
		seqs := raggedSeqs(r, 16, 12, 4)
		want := make([]int, len(seqs))
		for i, xs := range seqs {
			want[i] = n.Classify(xs, opt)
		}
		got := n.ClassifyBatch(seqs, opt)
		equivtest.Classes(t, name, got, want)

		gotE, err := n.ClassifyBatchE(seqs, opt)
		if err != nil {
			t.Fatalf("%s: ClassifyBatchE: %v", name, err)
		}
		equivtest.Classes(t, name+" (E)", gotE, want)
	}
}

// TestRunBatchEValidation pins the error contract of the Guard
// boundary: malformed batches surface as errors, not panics.
func TestRunBatchEValidation(t *testing.T) {
	n := testNet(t, 8, 8, 2, 3, 305)
	good := testSeqs(rng.New(306), 8, 5, 1)[0]
	cases := []struct {
		name string
		seqs [][]tensor.Vector
		opt  RunOptions
		want string
	}{
		{"empty batch", nil, Baseline(), "empty batch"},
		{"empty member", [][]tensor.Vector{good, {}}, Baseline(), "empty input sequence"},
		{"trace", [][]tensor.Vector{good}, RunOptions{Trace: &Trace{}}, "per-sequence"},
		{"inter no mts", [][]tensor.Vector{good}, RunOptions{Inter: true}, "MTS"},
		{"inter predictors", [][]tensor.Vector{good}, RunOptions{Inter: true, MTS: 2}, "predictors"},
	}
	for _, tc := range cases {
		if _, err := n.RunBatchE(tc.seqs, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
		if _, err := n.ClassifyBatchE(tc.seqs, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s (classify): error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// A valid batch still succeeds after the failures above (the guard
	// must not poison shared state).
	if _, err := n.RunBatchE([][]tensor.Vector{good, good}, Baseline()); err != nil {
		t.Fatalf("valid batch after failures: %v", err)
	}
}

// TestCheckSequence pins the serve-facing per-member validator.
func TestCheckSequence(t *testing.T) {
	n := testNet(t, 8, 8, 1, 3, 307)
	good := testSeqs(rng.New(308), 8, 4, 1)[0]
	if err := n.CheckSequence(good); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	if err := n.CheckSequence(nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
	bad := [][]tensor.Vector{{tensor.NewVector(7)}, {good[0], tensor.NewVector(9)}}
	for _, xs := range bad {
		if err := n.CheckSequence(xs); err == nil {
			t.Fatalf("mis-sized sequence accepted: %v", xs)
		}
	}
}
