package lstm

import (
	"sync"
	"sync/atomic"

	"mobilstm/internal/tensor"
)

// packedWeights holds the united row-wise weight views of one layer —
// the host-side counterpart of the W_{f,i,c,o}/U_{f,i,c,o} concatenation
// the paper's GPU kernels consume. Packing once and caching it turns the
// four per-gate weight streams of every cell into one contiguous stream,
// and lets the hot path call the packed kernels without per-run copies.
type packedWeights struct {
	// w is the united input projection (4h × Input), rows [f|i|c|o] —
	// the order the wx scratch rows are sliced in.
	w *tensor.Matrix
	// u is the united recurrent matrix (4h × Hidden) packed [o|f|i|c]:
	// the output gate leads so the Algorithm 3 flow (o_t before
	// U_{f,i,c}) gets both of its operands as free row-block views.
	u *tensor.Matrix
	// uo and ufic alias u: rows [0,h) and [h,4h).
	uo, ufic *tensor.Matrix
}

// packedWeights returns the layer's cached united views, building them
// on first use. Reads are a lock-free atomic load so concurrent serve
// workers sharing one Network never contend; the build itself is
// serialized under a mutex with a double-check, so racing first callers
// agree on one cache.
func (l *Layer) packedWeights() *packedWeights {
	if p := l.packed.Load(); p != nil {
		return p
	}
	l.packedMu.Lock()
	defer l.packedMu.Unlock()
	if p := l.packed.Load(); p != nil {
		return p
	}
	p := &packedWeights{
		w: tensor.Pack(l.Wf, l.Wi, l.Wc, l.Wo),
		u: tensor.Pack(l.Uo, l.Uf, l.Ui, l.Uc),
	}
	p.uo = p.u.RowBlock(0, l.Hidden)
	p.ufic = p.u.RowBlock(l.Hidden, 4*l.Hidden)
	l.packed.Store(p)
	return p
}

// Invalidate drops the cached united weight views. Every code path that
// mutates W_g or U_g after construction (calibration rescaling, random
// re-initialization, tests poking weights directly) must call it, or
// later runs keep computing with the stale united copy.
func (l *Layer) Invalidate() { l.packed.Store(nil) }

// packedCache is the cache cell embedded in Layer. It is a separate
// named struct so the zero value is documented in one place: nil pointer
// means "not built", and the mutex only guards the build.
type packedCache struct {
	packedMu sync.Mutex
	packed   atomic.Pointer[packedWeights]
}
