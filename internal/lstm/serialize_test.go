package lstm

import (
	"bytes"
	"testing"

	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

func TestSerializeRoundTrip(t *testing.T) {
	n := testNet(t, 12, 20, 3, 5, 71)
	n.Gate = tensor.ActHardSigmoid
	var buf bytes.Buffer
	written, err := n.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
	}
	got, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gate != tensor.ActHardSigmoid {
		t.Fatal("gate activation lost")
	}
	// Bit-identical behaviour on a random input.
	xs := testSeqs(rng.New(72), 12, 7, 1)[0]
	a := n.Run(xs, Baseline())
	b := got.Run(xs, Baseline())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded network differs at logit %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSerializeSizeIsExact(t *testing.T) {
	n := testNet(t, 8, 8, 1, 2, 73)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// header 7*4 + params*4 bytes.
	want := 28 + int(n.Params())*4
	if buf.Len() != want {
		t.Fatalf("serialized %d bytes, want %d", buf.Len(), want)
	}
}

func TestReadNetworkRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a network"),
		{0, 0, 0, 0, 0, 0, 0, 0},
	}
	for i, c := range cases {
		if _, err := ReadNetwork(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadNetworkRejectsBadVersion(t *testing.T) {
	n := testNet(t, 4, 4, 1, 2, 74)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version field
	if _, err := ReadNetwork(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadNetworkRejectsTruncation(t *testing.T) {
	n := testNet(t, 6, 6, 2, 3, 75)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadNetwork(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestWriteToRejectsInvalid(t *testing.T) {
	n := testNet(t, 4, 4, 1, 2, 76)
	n.HeadBias = tensor.NewVector(99)
	var buf bytes.Buffer
	if _, err := n.WriteTo(&buf); err == nil {
		t.Fatal("invalid network serialized")
	}
}
