package lstm

import "mobilstm/internal/tensor"

// kernelFns binds the layer loop to one accumulation chain. A forward
// pass resolves RunOptions.Chain exactly once and then calls every
// chain-sensitive kernel through the same binding — the canonical and
// wide chains never mix within one run, which is what keeps each
// chain's bitwise contract (serial≡batch, any GOMAXPROCS) meaningful.
// Element-wise math (gates, state update) is chain-independent and
// stays direct. Calibration paths (CollectPredictors, the relevance
// analyzer) deliberately stay on the canonical chain: thresholds and
// predictors are offline artifacts shared across chains.
type kernelFns struct {
	gemv           func(tensor.Vector, *tensor.Matrix, tensor.Vector)
	packedGemm     func(*tensor.Matrix, *tensor.Matrix, []tensor.Vector)
	packedGemvRows func([]tensor.Vector, *tensor.Matrix, tensor.Vector, []bool, float32)
	packedGemmRows func(*tensor.Matrix, *tensor.Matrix, []tensor.Vector, [][]bool, float32)
}

var (
	canonicalKernels = kernelFns{
		gemv:           tensor.Gemv,
		packedGemm:     tensor.PackedGemm,
		packedGemvRows: tensor.PackedGemvRows,
		packedGemmRows: tensor.PackedGemmRows,
	}
	wideKernels = kernelFns{
		gemv:           tensor.WideGemv,
		packedGemm:     tensor.WidePackedGemm,
		packedGemvRows: tensor.WidePackedGemvRows,
		packedGemmRows: tensor.WidePackedGemmRows,
	}
)

// kernelsFor resolves a RunOptions chain selection to its kernel
// binding: the wide family for ChainAVX2, the canonical family for
// everything else (ChainGeneric/ChainSSE2 differ only in which body
// carries the canonical chain, which tensor dispatches internally).
func kernelsFor(c tensor.KernelChain) *kernelFns {
	if tensor.ResolveChain(c) == tensor.ChainAVX2 {
		return &wideKernels
	}
	return &canonicalKernels
}
