package lstm

import (
	"math"
	"testing"

	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

func testNet(t *testing.T, input, hidden, layers, classes int, seed uint64) *Network {
	t.Helper()
	n := NewNetwork(input, hidden, layers, classes)
	n.InitRandom(rng.New(seed), func(l int) float64 { return 1 + 0.2*float64(l) }, 0.5)
	if err := n.Validate(); err != nil {
		t.Fatalf("generated network invalid: %v", err)
	}
	return n
}

func testSeqs(r *rng.RNG, dim, length, count int) [][]tensor.Vector {
	out := make([][]tensor.Vector, count)
	for s := range out {
		xs := make([]tensor.Vector, length)
		for t := range xs {
			v := tensor.NewVector(dim)
			for j := range v {
				v[j] = r.NormF32(0, 1.5)
			}
			xs[t] = v
		}
		out[s] = xs
	}
	return out
}

func TestNewNetworkShapes(t *testing.T) {
	n := NewNetwork(10, 20, 3, 4)
	if len(n.Layers) != 3 {
		t.Fatalf("layers: %d", len(n.Layers))
	}
	if n.Layers[0].Input != 10 || n.Layers[1].Input != 20 || n.Layers[2].Input != 20 {
		t.Fatal("layer input chaining wrong")
	}
	if n.Hidden() != 20 || n.Input() != 10 || n.Classes() != 4 {
		t.Fatal("accessors wrong")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewNetworkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero layers")
		}
	}()
	NewNetwork(4, 4, 0, 2)
}

func TestParams(t *testing.T) {
	n := NewNetwork(10, 20, 1, 3)
	// 4 gates x 20 x (10 + 20 + 1) + head 3x20 + bias 3.
	want := int64(4*20*31 + 63)
	if p := n.Params(); p != want {
		t.Fatalf("params %d, want %d", p, want)
	}
}

func TestUnitedBytes(t *testing.T) {
	l := NewLayer(100, 50)
	if l.UnitedUBytes() != 4*100*100*4 {
		t.Fatalf("U bytes %d", l.UnitedUBytes())
	}
	if l.UnitedWBytes() != 4*100*50*4 {
		t.Fatalf("W bytes %d", l.UnitedWBytes())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	n := testNet(t, 8, 8, 2, 3, 8)
	n.Layers[1].Bf = tensor.NewVector(5)
	if err := n.Validate(); err == nil {
		t.Fatal("corrupted network validated")
	}
}

func TestRunDeterministic(t *testing.T) {
	n := testNet(t, 16, 16, 2, 4, 1)
	xs := testSeqs(rng.New(2), 16, 10, 1)[0]
	a := n.Run(xs, Baseline())
	b := n.Run(xs, Baseline())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("baseline run not deterministic")
		}
	}
}

func TestRunBoundedHidden(t *testing.T) {
	// h_t = o*tanh(c) must stay in [-1, 1] (the §IV-A bound the
	// relevance analysis depends on). Check via a single-layer network's
	// head input by making Head the identity.
	n := testNet(t, 12, 12, 1, 12, 3)
	for i := range n.Head.Data {
		n.Head.Data[i] = 0
	}
	for j := 0; j < 12; j++ {
		n.Head.Set(j, j, 1)
		n.HeadBias[j] = 0
	}
	xs := testSeqs(rng.New(4), 12, 20, 1)[0]
	out := n.Run(xs, Baseline())
	for j, v := range out {
		if v < -1 || v > 1 {
			t.Fatalf("h[%d] = %v out of [-1,1]", j, v)
		}
	}
}

func TestBaselineMatchesDirectEquations(t *testing.T) {
	// One layer, one cell: Run must equal a hand-computed Eqs. 1-5 step.
	n := NewNetwork(3, 2, 1, 2)
	l := n.Layers[0]
	r := rng.New(7)
	for _, m := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo, l.Uf, l.Ui, l.Uc, l.Uo} {
		for i := range m.Data {
			m.Data[i] = r.NormF32(0, 0.5)
		}
	}
	for _, b := range []tensor.Vector{l.Bf, l.Bi, l.Bc, l.Bo} {
		for i := range b {
			b[i] = r.NormF32(0, 0.5)
		}
	}
	for j := 0; j < 2; j++ {
		n.Head.Set(j, j, 1)
	}
	x := tensor.Vector{0.3, -0.7, 1.1}

	// Hand computation with h_0 = c_0 = 0.
	hand := make([]float64, 2)
	for j := 0; j < 2; j++ {
		wf := float64(l.Wf.At(j, 0))*0.3 + float64(l.Wf.At(j, 1))*-0.7 + float64(l.Wf.At(j, 2))*1.1
		wi := float64(l.Wi.At(j, 0))*0.3 + float64(l.Wi.At(j, 1))*-0.7 + float64(l.Wi.At(j, 2))*1.1
		wc := float64(l.Wc.At(j, 0))*0.3 + float64(l.Wc.At(j, 1))*-0.7 + float64(l.Wc.At(j, 2))*1.1
		wo := float64(l.Wo.At(j, 0))*0.3 + float64(l.Wo.At(j, 1))*-0.7 + float64(l.Wo.At(j, 2))*1.1
		sig := func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
		f := sig(wf + float64(l.Bf[j]))
		i := sig(wi + float64(l.Bi[j]))
		o := sig(wo + float64(l.Bo[j]))
		c := f*0 + i*math.Tanh(wc+float64(l.Bc[j]))
		hand[j] = o * math.Tanh(c)
	}
	got := n.Run([]tensor.Vector{x}, Baseline())
	for j := 0; j < 2; j++ {
		if math.Abs(float64(got[j])-hand[j]) > 1e-4 {
			t.Fatalf("h[%d] = %v, want %v", j, got[j], hand[j])
		}
	}
}

func TestRunEmptySequencePanics(t *testing.T) {
	n := testNet(t, 4, 4, 1, 2, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sequence")
		}
	}()
	n.Run(nil, Baseline())
}

func TestInterRequiresMTSAndPredictors(t *testing.T) {
	n := testNet(t, 4, 4, 1, 2, 10)
	xs := testSeqs(rng.New(11), 4, 3, 1)[0]
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic without MTS")
			}
		}()
		n.Run(xs, RunOptions{Inter: true})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic without predictors")
			}
		}()
		n.Run(xs, RunOptions{Inter: true, MTS: 3})
	}()
}

func TestHardSigmoidGateRuns(t *testing.T) {
	n := testNet(t, 8, 8, 1, 2, 12)
	n.Gate = tensor.ActHardSigmoid
	xs := testSeqs(rng.New(13), 8, 6, 1)[0]
	out := n.Run(xs, Baseline())
	if len(out) != 2 {
		t.Fatal("hard-sigmoid run failed")
	}
}

func TestInitRandomTrivialFraction(t *testing.T) {
	// The output-gate bias placement should make roughly trivialFrac of
	// units DRS-trivial at the mid threshold.
	n := NewNetwork(64, 256, 1, 2)
	n.InitRandom(rng.New(5), nil, 0.5)
	neg := 0
	for _, b := range n.Layers[0].Bo {
		if b < -1.73 { // logit(0.15)
			neg++
		}
	}
	frac := float64(neg) / 256
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("trivial-prone bias fraction %v, want ~0.5", frac)
	}
}
