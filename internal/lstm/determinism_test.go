package lstm

import (
	"runtime"
	"testing"

	"mobilstm/internal/equivtest"
	"mobilstm/internal/rng"
	"mobilstm/internal/tensor"
)

// TestRunBitwiseIdenticalAcrossGOMAXPROCS pins the determinism guarantee
// of the packed/parallel hot path at network level: the size-gated
// fork-join inside PackedGemm shards rows, never accumulation chains, so
// the logits of every execution mode must be identical to the last bit
// whatever the scheduler does.
func TestRunBitwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	// Big enough that the PackedGemm work gate (rows*cols products)
	// actually opens and goroutines fork at GOMAXPROCS > 1.
	n := testNet(t, 48, 64, 2, 5, 91)
	xs := testSeqs(rng.New(92), 48, 40, 1)[0]
	modes := map[string]RunOptions{
		"baseline": Baseline(),
		"intra":    {Intra: true, AlphaIntra: 0.1},
		"inter":    {Inter: true, AlphaInter: 2, MTS: 4, Predictors: zeroPredictors(n)},
		"combined": {Inter: true, AlphaInter: 2, MTS: 4, Predictors: zeroPredictors(n), Intra: true, AlphaIntra: 0.1},
	}
	for name, opt := range modes {
		ref := n.Run(xs, opt)
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := n.Run(xs, opt)
			runtime.GOMAXPROCS(prev)
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("%s: logit %d differs at GOMAXPROCS=%d: %v vs %v",
						name, j, procs, got[j], ref[j])
				}
			}
		}
	}
}

// TestRunRepeatable pins that back-to-back runs through the reused
// packed cache and scratch arenas are bitwise stable — a regression
// guard against scratch state leaking between calls.
func TestRunRepeatable(t *testing.T) {
	n := testNet(t, 16, 24, 3, 4, 93)
	seqs := testSeqs(rng.New(94), 16, 21, 2)
	for _, xs := range seqs {
		first := n.Run(xs, RunOptions{Intra: true, AlphaIntra: 0.08})
		for rep := 0; rep < 3; rep++ {
			again := n.Run(xs, RunOptions{Intra: true, AlphaIntra: 0.08})
			for j := range first {
				if again[j] != first[j] {
					t.Fatalf("rep %d: logit %d drifted: %v vs %v", rep, j, again[j], first[j])
				}
			}
		}
	}
}

// TestConcurrentRunsShareColdCache races first-use builds of the packed
// weight cache: a fresh network run from many goroutines at once (the
// serve-worker pattern) must agree on one united copy and produce
// bitwise identical logits. Run under -race in CI, this is the
// regression guard for the lock-free cache read.
func TestConcurrentRunsShareColdCache(t *testing.T) {
	n := testNet(t, 24, 32, 2, 4, 89)
	xs := testSeqs(rng.New(90), 24, 18, 1)[0]
	ref := testNet(t, 24, 32, 2, 4, 89).Run(xs, Baseline())

	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const workers = 8
	results := make([][]float32, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			results[w] = n.Run(xs, Baseline())
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w, got := range results {
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("worker %d: logit %d differs: %v vs %v", w, j, got[j], ref[j])
			}
		}
	}
}

// TestInvalidateRefreshesPackedCache documents the cache contract: a
// direct weight mutation without Invalidate leaves runs on the stale
// united copy; Invalidate picks the new weights up.
func TestInvalidateRefreshesPackedCache(t *testing.T) {
	n := testNet(t, 8, 8, 1, 3, 95)
	xs := testSeqs(rng.New(96), 8, 6, 1)[0]
	before := n.Run(xs, Baseline()) // builds the cache

	l := n.Layers[0]
	for i := range l.Wf.Data {
		l.Wf.Data[i] *= 1.5
	}
	stale := n.Run(xs, Baseline())
	for j := range before {
		if stale[j] != before[j] {
			t.Fatalf("mutation visible without Invalidate: logit %d %v vs %v", j, stale[j], before[j])
		}
	}

	l.Invalidate()
	fresh := n.Run(xs, Baseline())
	same := true
	for j := range before {
		if fresh[j] != before[j] {
			same = false
		}
	}
	if same {
		t.Fatal("Invalidate did not pick up the weight mutation")
	}
}

// TestRunBatchBitwiseIdenticalAcrossGOMAXPROCS extends the determinism
// guarantee to the batched forward path: the batch GEMMs shard united
// weight rows, never accumulation chains, so a ragged batch must match
// its per-member serial runs bit for bit whatever the scheduler does.
func TestRunBatchBitwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	n := testNet(t, 48, 64, 2, 5, 91)
	seqs := [][]tensor.Vector{
		testSeqs(rng.New(92), 48, 40, 1)[0],
		testSeqs(rng.New(93), 48, 23, 1)[0],
		testSeqs(rng.New(94), 48, 31, 1)[0],
		testSeqs(rng.New(95), 48, 40, 1)[0],
	}
	for name, opt := range batchModes(n) {
		want := make([]tensor.Vector, len(seqs))
		for i, xs := range seqs {
			want[i] = n.Run(xs, opt)
		}
		for _, procs := range []int{1, 2, 8} {
			prev := runtime.GOMAXPROCS(procs)
			got := n.RunBatch(seqs, opt)
			runtime.GOMAXPROCS(prev)
			equivtest.Batch(t, name+" GOMAXPROCS="+itoa(procs), got, want)
		}
	}
}

// TestConcurrentRunBatchSharesColdCache races first-use builds of the
// packed weight cache through the batch path: a fresh network batched
// from many goroutines at once must agree on one united copy and match
// the serial reference bitwise. Run under -race in CI.
func TestConcurrentRunBatchSharesColdCache(t *testing.T) {
	n := testNet(t, 24, 32, 2, 4, 89)
	seqs := [][]tensor.Vector{
		testSeqs(rng.New(90), 24, 18, 1)[0],
		testSeqs(rng.New(96), 24, 11, 1)[0],
		testSeqs(rng.New(97), 24, 18, 1)[0],
	}
	ref := testNet(t, 24, 32, 2, 4, 89)
	want := make([]tensor.Vector, len(seqs))
	for i, xs := range seqs {
		want[i] = ref.Run(xs, Baseline())
	}

	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const workers = 8
	results := make([][]tensor.Vector, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			results[w] = n.RunBatch(seqs, Baseline())
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w, got := range results {
		equivtest.Batch(t, "worker "+itoa(w), got, want)
	}
}
