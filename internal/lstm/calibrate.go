//lint:file-ignore float64leak calibration is offline weight synthesis: RMS/mean/margin statistics accumulate exactly-widened float32 samples in float64 on purpose, and nothing here feeds a runtime DRS comparison
package lstm

import (
	"math"

	"mobilstm/internal/tensor"
)

// Calibrate adjusts a randomly-initialized network the way training would,
// using a handful of representative input sequences:
//
//  1. Pre-activation normalization: each layer's input projections W_g are
//     rescaled so the spread (RMS) of W_g*x over the calibration data hits
//     targetSpread. Trained networks use their activations' sensitive
//     range regardless of the input magnitude of the layer; without this,
//     deep layers (whose inputs are bounded hidden vectors) would see
//     near-zero pre-activations and their context links could never
//     weaken — contradicting the paper's Fig. 15 observation that later
//     layers still divide, just less than earlier ones.
//
//  2. Co-adaptation: the columns of each deep layer's W and of the
//     classification head are scaled in proportion to the mean activity
//     E|h_j| of the feature they consume. Trained networks weight features
//     by usefulness, so features that are almost always ~0 (output gate
//     closed) carry little downstream weight — which is precisely why the
//     paper's DRS can skip their rows with user-imperceptible accuracy
//     loss on real trained models.
//
// The head is finally rescaled so logits have unit-order spread, keeping
// classification margins comparable across benchmarks.
func Calibrate(n *Network, seqs [][]tensor.Vector, spreadFor func(layer int) float64) {
	if len(seqs) == 0 {
		tensor.Panicf("lstm: Calibrate needs at least one sequence")
	}
	cur := seqs
	var act tensor.Vector // per-feature mean |h_j| of the previous layer
	for li, l := range n.Layers {
		if li > 0 {
			scaleColumns(l, act)
		}
		normalizeSpread(l, cur, spreadFor(li))
		cur, act = forwardAll(n, l, cur)
	}
	calibrateHead(n, cur, act)
}

// scaleColumns applies co-adaptation: column j of every W_g is scaled by
// the (mean-normalized) activity of input feature j, floored so no
// feature is cut off entirely.
func scaleColumns(l *Layer, act tensor.Vector) {
	defer l.Invalidate()
	var mean float64
	for _, a := range act {
		mean += float64(a)
	}
	mean /= float64(len(act))
	if mean <= 0 {
		return
	}
	const floor = 0.05
	for _, w := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo} {
		for i := 0; i < w.Rows; i++ {
			row := w.Row(i)
			for j := range row {
				s := float64(act[j]) / mean
				if s < floor {
					s = floor
				}
				row[j] *= float32(s)
			}
		}
	}
}

// normalizeSpread rescales all four W_g so the RMS of the gate
// pre-activations W_g*x over the calibration sequences equals
// targetSpread.
func normalizeSpread(l *Layer, seqs [][]tensor.Vector, targetSpread float64) {
	defer l.Invalidate()
	var sumSq float64
	var count int64
	tmp := tensor.NewVector(l.Hidden)
	for _, xs := range seqs {
		for _, x := range xs {
			for _, w := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo} {
				tensor.Gemv(tmp, w, x)
				for _, v := range tmp {
					sumSq += float64(v) * float64(v)
				}
				count += int64(len(tmp))
			}
		}
	}
	if count == 0 {
		return
	}
	rms := math.Sqrt(sumSq / float64(count))
	if rms == 0 {
		return
	}
	scale := float32(targetSpread / rms)
	for _, w := range []*tensor.Matrix{l.Wf, l.Wi, l.Wc, l.Wo} {
		for i := range w.Data {
			w.Data[i] *= scale
		}
	}
}

// forwardAll runs the layer exactly over every sequence, returning the
// hidden output sequences and the per-feature mean |h_j|.
func forwardAll(n *Network, l *Layer, seqs [][]tensor.Vector) ([][]tensor.Vector, tensor.Vector) {
	out := make([][]tensor.Vector, len(seqs))
	sumAbs := make([]float64, l.Hidden)
	var count int64
	for si, xs := range seqs {
		hs := runLayerExact(n, l, xs)
		out[si] = hs
		for _, h := range hs {
			for j, v := range h {
				sumAbs[j] += math.Abs(float64(v))
			}
			count++
		}
	}
	act := tensor.NewVector(l.Hidden)
	for j := range act {
		act[j] = float32(sumAbs[j] / float64(count))
	}
	return out, act
}

// runLayerExact is the unmodified per-layer forward used during
// calibration. Unlike the Run path it returns hidden vectors with their
// own backing store: forwardAll retains every sequence's outputs at
// once, so they cannot live in a reused scratch slab.
func runLayerExact(n *Network, l *Layer, xs []tensor.Vector) []tensor.Vector {
	h := l.Hidden
	pw := l.packedWeights()
	sc := newLayerScratch(h, len(xs))
	tensor.PackedGemm(sc.wx, pw.w, xs)
	st := sc.zeroState(0)
	o := sc.os[0]
	hsBuf := make([]float32, len(xs)*h)
	hs := make([]tensor.Vector, len(xs))
	for t := range xs {
		row := sc.wx.Row(t)
		xf, xi, xc, xo := row[:h], row[h:2*h], row[2*h:3*h], row[3*h:]
		tensor.Gemv(sc.uo, pw.uo, st.h)
		for j := 0; j < h; j++ {
			o[j] = n.Gate.Apply(xo[j] + sc.uo[j] + l.Bo[j])
		}
		n.stepFIC(l, pw, st, xf, xi, xc, o, nil, sc, &canonicalKernels)
		hs[t] = hsBuf[t*h : (t+1)*h]
		copy(hs[t], st.h)
	}
	return hs
}

// calibrateHead co-adapts the head columns to final-layer feature
// activity and normalizes the logit spread to unit order.
func calibrateHead(n *Network, seqs [][]tensor.Vector, act tensor.Vector) {
	var mean float64
	for _, a := range act {
		mean += float64(a)
	}
	mean /= float64(len(act))
	if mean > 0 {
		const floor = 0.05
		for i := 0; i < n.Head.Rows; i++ {
			row := n.Head.Row(i)
			for j := range row {
				s := float64(act[j]) / mean
				if s < floor {
					s = floor
				}
				row[j] *= float32(s)
			}
		}
	}
	// Margin normalization on the final hidden states: scale the head so
	// the mean top-2 logit margin hits a class-count-independent target.
	// Trained classifiers produce peaked, confident outputs whatever the
	// vocabulary size; without this, a 50-way head's raw Gaussian logits
	// would have vanishing margins and any approximation would flip
	// labels — matching neither the paper nor real models.
	const targetMargin = 0.8
	var marginSum float64
	var count int64
	logits := tensor.NewVector(n.Head.Rows)
	for _, hs := range seqs {
		if len(hs) == 0 {
			continue
		}
		tensor.Gemv(logits, n.Head, hs[len(hs)-1])
		best := tensor.ArgMax(logits)
		m := math.Inf(1)
		for j, v := range logits {
			if j != best && float64(logits[best]-v) < m {
				m = float64(logits[best] - v)
			}
		}
		if !math.IsInf(m, 1) {
			marginSum += m
			count++
		}
	}
	if count == 0 {
		return
	}
	meanMargin := marginSum / float64(count)
	if meanMargin <= 0 {
		return
	}
	scale := float32(targetMargin / meanMargin)
	for i := range n.Head.Data {
		n.Head.Data[i] *= scale
	}
}
