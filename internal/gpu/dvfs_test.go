package gpu

import (
	"math"
	"testing"
)

func TestClockStatesDescending(t *testing.T) {
	cfg := TegraX1()
	states := cfg.ClockStates()
	if len(states) < 3 {
		t.Fatalf("too few clock states: %d", len(states))
	}
	if states[0] != cfg.ClockHz {
		t.Fatal("first state must be the base clock")
	}
	for i := 1; i < len(states); i++ {
		if states[i] >= states[i-1] {
			t.Fatal("states not descending")
		}
		if states[i] <= 0 {
			t.Fatal("non-positive clock state")
		}
	}
}

func TestAtClockScalesOnlyCoreClock(t *testing.T) {
	cfg := TegraX1()
	low := cfg.AtClock(cfg.ClockHz / 2)
	if low.ClockHz != cfg.ClockHz/2 {
		t.Fatal("clock not applied")
	}
	if low.DRAMBandwidth != cfg.DRAMBandwidth {
		t.Fatal("memory rail must not scale with core clock")
	}
	// Bytes per core cycle doubles at half clock.
	if math.Abs(low.DRAMBytesPerCycle()-2*cfg.DRAMBytesPerCycle()) > 1e-9 {
		t.Fatalf("bytes/cycle: %v vs %v", low.DRAMBytesPerCycle(), cfg.DRAMBytesPerCycle())
	}
}

func TestMemoryBoundKernelToleratesDVFS(t *testing.T) {
	// A DRAM-bound kernel's wall time barely changes at half clock —
	// the mechanism the iso-latency DVFS analysis exploits.
	cfg := TegraX1()
	spec := KernelSpec{Name: "stream", DRAMBytes: 64 << 20}
	full := NewSimulator(cfg).Run([]KernelSpec{spec})
	half := NewSimulator(cfg.AtClock(cfg.ClockHz / 2)).Run([]KernelSpec{spec})
	ratio := half.Seconds / full.Seconds
	if ratio > 1.1 {
		t.Fatalf("memory-bound kernel slowed %vx at half clock", ratio)
	}
	// A compute-bound kernel, by contrast, doubles.
	cspec := KernelSpec{Name: "flops", FLOPs: 5.12e9}
	cfull := NewSimulator(cfg).Run([]KernelSpec{cspec})
	chalf := NewSimulator(cfg.AtClock(cfg.ClockHz / 2)).Run([]KernelSpec{cspec})
	if r := chalf.Seconds / cfull.Seconds; r < 1.8 {
		t.Fatalf("compute-bound kernel only slowed %vx at half clock", r)
	}
}

func TestVoltageScale(t *testing.T) {
	base := 998e6
	if v := VoltageScale(base, base); v != 1 {
		t.Fatalf("full clock voltage %v", v)
	}
	if v := VoltageScale(0, base); math.Abs(v-0.55) > 1e-12 {
		t.Fatalf("floor voltage %v", v)
	}
	if v := VoltageScale(2*base, base); v != 1 {
		t.Fatal("overclock voltage not clamped")
	}
	if !(VoltageScale(base/2, base) < 1 && VoltageScale(base/2, base) > 0.55) {
		t.Fatal("mid voltage out of band")
	}
}
