// Package gpu models the mobile GPU the paper evaluates on (NVIDIA Jetson
// TX1, Table I): an analytic, kernel-granularity timing model backed by a
// set-associative L2 cache simulator and DRAM / shared-memory bandwidth
// rooflines.
//
// The paper's results are memory-system effects — redundant DRAM re-loads
// of the united weight matrix across LSTM cells, shared-memory bandwidth
// saturation that bounds the tissue size, and warp divergence under row
// skipping. The model resolves exactly those resources per kernel and
// attributes pipeline stall cycles to their causes, reproducing the
// paper's Fig. 4 (stall breakdown), Fig. 6 (bandwidth utilization) and
// Fig. 9 (maximum tissue size) measurement methodology.
package gpu

// Config describes a mobile GPU platform. The fields mirror the resources
// the paper's analysis depends on; see TegraX1 for the values of Table I.
type Config struct {
	// Name identifies the platform in reports.
	Name string

	// SMs is the number of streaming multiprocessors.
	SMs int
	// CoresPerSM is the number of CUDA cores per SM.
	CoresPerSM int
	// ClockHz is the GPU core clock in Hertz.
	ClockHz float64

	// DRAMBandwidth is the peak off-chip memory bandwidth in bytes/second
	// (shared with the CPU on a mobile SoC).
	DRAMBandwidth float64
	// L2Bytes is the capacity of the last-level on-chip cache.
	L2Bytes int64
	// L2LineBytes is the cache line size.
	L2LineBytes int64
	// L2Ways is the L2 associativity.
	L2Ways int

	// SharedBytesPerSM is the shared-memory (on-chip scratchpad) capacity
	// per SM.
	SharedBytesPerSM int64
	// SharedBWBytesPerCycle is the shared-memory bandwidth per SM in
	// bytes per core clock cycle.
	SharedBWBytesPerCycle float64

	// WarpSize is the SIMT width; CTA sizes are multiples of it.
	WarpSize int
	// MaxThreadsPerSM bounds occupancy.
	MaxThreadsPerSM int

	// KernelLaunchCycles is the fixed host+GMU cost of launching one
	// kernel, in core cycles. On a mobile part with the CPU driving the
	// GPU this is substantial relative to small kernels.
	KernelLaunchCycles float64

	// BarrierCycles is the cost of one CTA-wide barrier synchronization.
	BarrierCycles float64
}

// TegraX1 returns the Jetson TX1 configuration of Table I: a Maxwell GPU
// with 256 cores at 998 MHz and 4 GB LPDDR4 at 25.6 GB/s.
func TegraX1() Config {
	return Config{
		Name:                  "Tegra X1 (Maxwell, 256 cores @ 998 MHz, LPDDR4 25.6 GB/s)",
		SMs:                   2,
		CoresPerSM:            128,
		ClockHz:               998e6,
		DRAMBandwidth:         25.6e9,
		L2Bytes:               256 << 10,
		L2LineBytes:           64,
		L2Ways:                16,
		SharedBytesPerSM:      64 << 10,
		SharedBWBytesPerCycle: 64,
		WarpSize:              32,
		MaxThreadsPerSM:       2048,
		KernelLaunchCycles:    2000,
		BarrierCycles:         40,
	}
}

// TegraK1 returns the previous-generation Jetson TK1: a single Kepler SM
// with 192 cores at 852 MHz and DDR3L at 14.9 GB/s — less off-chip
// bandwidth and a narrower shared-memory port, so the MTS shifts.
func TegraK1() Config {
	return Config{
		Name:                  "Tegra K1 (Kepler, 192 cores @ 852 MHz, DDR3L 14.9 GB/s)",
		SMs:                   1,
		CoresPerSM:            192,
		ClockHz:               852e6,
		DRAMBandwidth:         14.9e9,
		L2Bytes:               128 << 10,
		L2LineBytes:           64,
		L2Ways:                16,
		SharedBytesPerSM:      48 << 10,
		SharedBWBytesPerCycle: 64,
		WarpSize:              32,
		MaxThreadsPerSM:       2048,
		KernelLaunchCycles:    2500,
		BarrierCycles:         48,
	}
}

// TegraX2 returns a Pascal-generation successor: 256 cores at 1.3 GHz
// with LPDDR4 at 59.7 GB/s — much more off-chip bandwidth relative to its
// shared-memory port, so tissues saturate on-chip earlier (smaller MTS).
func TegraX2() Config {
	return Config{
		Name:                  "Tegra X2 (Pascal, 256 cores @ 1300 MHz, LPDDR4 59.7 GB/s)",
		SMs:                   2,
		CoresPerSM:            128,
		ClockHz:               1300e6,
		DRAMBandwidth:         59.7e9,
		L2Bytes:               512 << 10,
		L2LineBytes:           64,
		L2Ways:                16,
		SharedBytesPerSM:      64 << 10,
		SharedBWBytesPerCycle: 64,
		WarpSize:              32,
		MaxThreadsPerSM:       2048,
		KernelLaunchCycles:    1800,
		BarrierCycles:         36,
	}
}

// Platforms returns the built-in platform configurations.
func Platforms() []Config {
	return []Config{TegraK1(), TegraX1(), TegraX2()}
}

// Cores returns the total CUDA core count.
func (c Config) Cores() int { return c.SMs * c.CoresPerSM }

// PeakFLOPs returns the peak single-precision throughput in FLOP/s
// (each core retires one FMA = 2 FLOPs per cycle).
func (c Config) PeakFLOPs() float64 {
	return float64(c.Cores()) * 2 * c.ClockHz
}

// DRAMBytesPerCycle returns the off-chip bandwidth expressed in bytes per
// core clock cycle — the roofline denominator for memory-bound kernels.
func (c Config) DRAMBytesPerCycle() float64 {
	return c.DRAMBandwidth / c.ClockHz
}

// SharedBytesPerCycle returns the aggregate shared-memory bandwidth across
// all SMs in bytes per cycle.
func (c Config) SharedBytesPerCycle() float64 {
	return c.SharedBWBytesPerCycle * float64(c.SMs)
}

// CyclesToSeconds converts core cycles to wall-clock seconds.
func (c Config) CyclesToSeconds(cycles float64) float64 {
	return cycles / c.ClockHz
}
