package gpu

import "sort"

// Simulator executes sequences of kernel launches against one platform
// configuration and aggregates time, traffic and stall statistics.
type Simulator struct {
	cfg Config
}

// NewSimulator returns a simulator for the given platform.
func NewSimulator(cfg Config) *Simulator { return &Simulator{cfg: cfg} }

// Config returns the platform configuration.
func (s *Simulator) Config() Config { return s.cfg }

// KernelGroup aggregates all launches of kernels sharing a name.
type KernelGroup struct {
	Name     string
	Launches int
	Cycles   float64
	// ComputeCycles, DRAMBytes etc. are summed over launches.
	ComputeCycles float64
	DRAMBytes     float64
	L2HitBytes    float64
	SharedBytes   float64
	FLOPs         float64
	Stalls        [numStallCauses]float64
	// DRAMUtil / SharedUtil are cycle-weighted means over the group's
	// launches.
	DRAMUtil   float64
	SharedUtil float64
}

// Result is the aggregate outcome of running a kernel sequence.
type Result struct {
	Cfg Config
	// Cycles and Seconds are end-to-end execution time (the kernels run
	// back-to-back, as in the cuDNN flow of Algorithm 1).
	Cycles  float64
	Seconds float64
	// Totals over all kernels.
	FLOPs       float64
	DRAMBytes   float64
	L2HitBytes  float64
	SharedBytes float64
	Launches    int
	Stalls      [numStallCauses]float64

	groups map[string]*KernelGroup
}

// Run simulates the kernel sequence and returns the aggregate result.
func (s *Simulator) Run(kernels []KernelSpec) *Result {
	res := &Result{Cfg: s.cfg, groups: make(map[string]*KernelGroup)}
	for _, k := range kernels {
		kr := simulateKernel(s.cfg, k)
		res.accumulate(kr)
	}
	res.Seconds = s.cfg.CyclesToSeconds(res.Cycles)
	return res
}

// RunResults simulates the sequence and additionally returns the
// per-launch results, for callers that need kernel-level detail.
func (s *Simulator) RunResults(kernels []KernelSpec) (*Result, []KernelResult) {
	res := &Result{Cfg: s.cfg, groups: make(map[string]*KernelGroup)}
	out := make([]KernelResult, 0, len(kernels))
	for _, k := range kernels {
		kr := simulateKernel(s.cfg, k)
		res.accumulate(kr)
		out = append(out, kr)
	}
	res.Seconds = s.cfg.CyclesToSeconds(res.Cycles)
	return res, out
}

func (r *Result) accumulate(kr KernelResult) {
	r.Cycles += kr.Cycles
	r.FLOPs += kr.Spec.FLOPs
	r.DRAMBytes += kr.Spec.DRAMBytes
	r.L2HitBytes += kr.Spec.L2HitBytes
	r.SharedBytes += kr.Spec.SharedBytes
	r.Launches++
	for c := range kr.Stalls {
		r.Stalls[c] += kr.Stalls[c]
	}
	g := r.groups[kr.Spec.Name]
	if g == nil {
		g = &KernelGroup{Name: kr.Spec.Name}
		r.groups[kr.Spec.Name] = g
	}
	g.Launches++
	g.Cycles += kr.Cycles
	g.ComputeCycles += kr.ComputeCycles
	g.DRAMBytes += kr.Spec.DRAMBytes
	g.L2HitBytes += kr.Spec.L2HitBytes
	g.SharedBytes += kr.Spec.SharedBytes
	g.FLOPs += kr.Spec.FLOPs
	for c := range kr.Stalls {
		g.Stalls[c] += kr.Stalls[c]
	}
	// Cycle-weighted utilization means.
	g.DRAMUtil += kr.DRAMUtil * kr.Cycles
	g.SharedUtil += kr.SharedUtil * kr.Cycles
}

// Group returns the aggregate for kernels named name, or nil if none ran.
// Utilization fields are normalized to cycle-weighted means.
func (r *Result) Group(name string) *KernelGroup {
	g := r.groups[name]
	if g == nil {
		return nil
	}
	out := *g
	if g.Cycles > 0 {
		out.DRAMUtil = g.DRAMUtil / g.Cycles
		out.SharedUtil = g.SharedUtil / g.Cycles
	}
	return &out
}

// Groups returns all kernel groups sorted by descending cycles.
func (r *Result) Groups() []KernelGroup {
	out := make([]KernelGroup, 0, len(r.groups))
	for name := range r.groups {
		out = append(out, *r.Group(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}

// Stall returns the total stall cycles attributed to the cause.
func (r *Result) Stall(c StallCause) float64 { return r.Stalls[c] }

// StallFractions returns each cause's share of total stall cycles (summing
// to 1 when any stall occurred), in StallCauses order.
func (r *Result) StallFractions() []float64 {
	var total float64
	for _, v := range r.Stalls {
		total += v
	}
	out := make([]float64, numStallCauses)
	if total == 0 {
		return out
	}
	for c, v := range r.Stalls {
		out[c] = v / total
	}
	return out
}

// StallFractionsOf returns the stall-cause shares within one kernel group,
// the quantity Fig. 4 plots for Sgemv.
func (r *Result) StallFractionsOf(name string) []float64 {
	out := make([]float64, numStallCauses)
	g := r.groups[name]
	if g == nil {
		return out
	}
	var total float64
	for _, v := range g.Stalls {
		total += v
	}
	if total == 0 {
		return out
	}
	for c, v := range g.Stalls {
		out[c] = v / total
	}
	return out
}

// CycleShareOf returns the fraction of end-to-end cycles spent in the
// named kernel group (the paper's ">90% in Sgemv" observation).
func (r *Result) CycleShareOf(name string) float64 {
	g := r.groups[name]
	if g == nil || r.Cycles == 0 {
		return 0
	}
	return g.Cycles / r.Cycles
}
