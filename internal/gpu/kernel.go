package gpu

// StallCause labels a contributor to GPU pipeline stall cycles, matching
// the categories of the paper's Fig. 4.
type StallCause int

const (
	// StallOffChip is time the pipeline waits on off-chip (DRAM) memory.
	StallOffChip StallCause = iota
	// StallOnChip is time the pipeline waits on shared-memory bandwidth.
	StallOnChip
	// StallBarrier is time spent in CTA barrier synchronization.
	StallBarrier
	// StallLaunch is kernel launch / grid-management overhead.
	StallLaunch
	// StallOther is everything else (scoreboard, issue, ALU latency).
	StallOther

	numStallCauses
)

// String returns the Fig. 4 legend name of the cause.
func (s StallCause) String() string {
	switch s {
	case StallOffChip:
		return "off-chip memory"
	case StallOnChip:
		return "on-chip memory"
	case StallBarrier:
		return "barrier sync"
	case StallLaunch:
		return "kernel launch"
	case StallOther:
		return "other"
	default:
		return "unknown"
	}
}

// StallCauses lists all causes in display order.
func StallCauses() []StallCause {
	return []StallCause{StallOffChip, StallOnChip, StallBarrier, StallLaunch, StallOther}
}

// KernelSpec is the cost descriptor of one GPU kernel launch, produced by
// the internal/kernels package. The simulator turns it into cycles,
// traffic and stall attribution.
type KernelSpec struct {
	// Name tags the kernel for per-kernel aggregation ("sgemv_u",
	// "sgemm_wx", "lstm_ew", "drs", ...).
	Name string

	// FLOPs is the arithmetic work retired by the kernel.
	FLOPs float64
	// DRAMBytes is the off-chip traffic (L2 misses) the kernel generates.
	DRAMBytes float64
	// L2HitBytes is the on-chip L2 traffic served without DRAM access.
	L2HitBytes float64
	// SharedBytes is the shared-memory (scratchpad) traffic.
	SharedBytes float64

	// Threads is the number of software threads launched.
	Threads int
	// Barriers is the number of CTA-wide barrier waits on the critical
	// path.
	Barriers int

	// ComputeScale multiplies the ideal compute time; >1 models
	// inefficiency such as branch divergence (software DRS) or the
	// reduced register tiling of a reconfigured kernel (fat tissues).
	ComputeScale float64
	// EffectiveDRAMFrac derates the usable off-chip bandwidth; <1 models
	// un-coalesced access patterns such as CSR gather in the
	// zero-pruning baseline.
	EffectiveDRAMFrac float64

	// ExtraCycles is a fixed serial cost charged on top of the roofline
	// time (e.g. the CRM compaction pipeline, host-side list transfers).
	ExtraCycles float64

	// HostCycles is CPU-side work attributed to this kernel (threshold
	// bookkeeping, breakpoint search) in GPU-clock cycles; it extends
	// wall time but not GPU activity.
	HostCycles float64
}

// KernelResult is the simulated outcome of one kernel launch.
type KernelResult struct {
	Spec   KernelSpec
	Cycles float64
	// ComputeCycles is the ideal arithmetic time (after ComputeScale).
	ComputeCycles float64
	// DRAMCycles and SharedCycles are the roofline times of the two
	// memory resources.
	DRAMCycles   float64
	SharedCycles float64
	// Stalls attributes non-compute cycles to causes; the entries sum to
	// Cycles - ComputeCycles (clamped at 0).
	Stalls [numStallCauses]float64
	// DRAMUtil and SharedUtil are achieved/peak bandwidth ratios over the
	// kernel's execution window (Fig. 6 / Fig. 9 metrics).
	DRAMUtil   float64
	SharedUtil float64
}

// simulateKernel resolves one kernel against the platform rooflines.
//
// The timing model: the kernel's execution window is the maximum of its
// compute time, its DRAM roofline time and its shared-memory roofline time
// (the GPU overlaps them), plus serial costs (launch, barriers, extra
// pipeline stages, host work). Stall cycles — everything beyond ideal
// compute — are attributed proportionally to how far each memory resource
// extends past compute, which mirrors how profilers attribute issue-stall
// reasons.
func simulateKernel(cfg Config, k KernelSpec) KernelResult {
	cs := k.ComputeScale
	if cs <= 0 {
		cs = 1
	}
	df := k.EffectiveDRAMFrac
	if df <= 0 || df > 1 {
		df = 1
	}

	compute := k.FLOPs / (float64(cfg.Cores()) * 2) * cs
	dram := k.DRAMBytes / (cfg.DRAMBytesPerCycle() * df)
	shared := k.SharedBytes / cfg.SharedBytesPerCycle()

	window := compute
	if dram > window {
		window = dram
	}
	if shared > window {
		window = shared
	}

	launch := cfg.KernelLaunchCycles
	barrier := float64(k.Barriers) * cfg.BarrierCycles
	total := window + launch + barrier + k.ExtraCycles + k.HostCycles

	r := KernelResult{
		Spec:          k,
		Cycles:        total,
		ComputeCycles: compute,
		DRAMCycles:    dram,
		SharedCycles:  shared,
	}

	// Attribute the stall cycles.
	memStall := window - compute
	if memStall > 0 {
		dOver := dram - compute
		if dOver < 0 {
			dOver = 0
		}
		sOver := shared - compute
		if sOver < 0 {
			sOver = 0
		}
		den := dOver + sOver
		if den > 0 {
			r.Stalls[StallOffChip] = memStall * dOver / den
			r.Stalls[StallOnChip] = memStall * sOver / den
		}
	}
	r.Stalls[StallBarrier] = barrier
	r.Stalls[StallLaunch] = launch
	r.Stalls[StallOther] = k.ExtraCycles + k.HostCycles

	if total > 0 {
		r.DRAMUtil = dram / total
		r.SharedUtil = shared / total
	}
	return r
}
