package gpu

// DVFS support: mobile SoCs expose discrete GPU clock states and scale
// voltage with frequency. The optimizations' latency headroom can be
// spent by dropping to a lower state at the same user-visible deadline,
// converting speedup into further energy saving (the iso-latency
// analysis in BenchmarkExtDVFS).

// ClockStates returns the platform's supported GPU frequencies in Hz,
// highest first. For the Tegra X1 these mirror the board's gpufreq table.
func (c Config) ClockStates() []float64 {
	base := c.ClockHz
	return []float64{base, base * 0.77, base * 0.61, base * 0.46, base * 0.31}
}

// AtClock returns the configuration scaled to the given core frequency.
// Off-chip bandwidth is on a separate memory clock and stays fixed, so
// memory-bound kernels get *more* bytes per core cycle at lower clocks —
// the reason DVFS suits memory-bound phases.
func (c Config) AtClock(hz float64) Config {
	out := c
	out.ClockHz = hz
	return out
}

// VoltageScale approximates the relative supply voltage at a frequency
// (linear frequency-voltage curve with a 55% floor, typical for mobile
// GPU rails). Dynamic power scales with V^2 f; static with ~V^2.
func VoltageScale(hz, baseHz float64) float64 {
	f := hz / baseHz
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return 0.55 + 0.45*f
}
