package gpu

import (
	"math"
	"testing"
)

func TestTegraX1Config(t *testing.T) {
	cfg := TegraX1()
	if cfg.Cores() != 256 {
		t.Fatalf("cores = %d, want 256 (Table I)", cfg.Cores())
	}
	if cfg.DRAMBandwidth != 25.6e9 {
		t.Fatalf("DRAM BW = %v, want 25.6 GB/s (Table I)", cfg.DRAMBandwidth)
	}
	if got := cfg.PeakFLOPs(); math.Abs(got-512*998e6) > 1 {
		t.Fatalf("peak FLOPs = %v", got)
	}
	if bpc := cfg.DRAMBytesPerCycle(); math.Abs(bpc-25.6e9/998e6) > 1e-9 {
		t.Fatalf("bytes/cycle = %v", bpc)
	}
	if s := cfg.CyclesToSeconds(998e6); math.Abs(s-1) > 1e-9 {
		t.Fatalf("998M cycles = %v s, want 1", s)
	}
}

func TestComputeBoundKernel(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	k := KernelSpec{Name: "flops", FLOPs: 512e6} // 1e6 cycles of compute
	res := sim.Run([]KernelSpec{k})
	wantCompute := 512e6 / (256 * 2)
	if math.Abs(res.Cycles-(wantCompute+cfg.KernelLaunchCycles)) > 1 {
		t.Fatalf("cycles = %v, want %v", res.Cycles, wantCompute+cfg.KernelLaunchCycles)
	}
}

func TestMemoryBoundKernelStallAttribution(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	// Pure DRAM streaming: stall must be attributed to off-chip memory.
	k := KernelSpec{Name: "stream", DRAMBytes: 25.6e9 / 998e6 * 1e6} // 1e6 cycles of DRAM
	res := sim.Run([]KernelSpec{k})
	fr := res.StallFractionsOf("stream")
	if fr[StallOffChip] < 0.99 {
		t.Fatalf("off-chip stall fraction = %v, want ~1", fr[StallOffChip])
	}
}

func TestSharedBoundKernel(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	k := KernelSpec{Name: "smem", SharedBytes: cfg.SharedBytesPerCycle() * 1e6}
	_, krs := sim.RunResults([]KernelSpec{k})
	if math.Abs(krs[0].SharedCycles-1e6) > 1 {
		t.Fatalf("shared cycles = %v", krs[0].SharedCycles)
	}
	if krs[0].Stalls[StallOnChip] < 0.99e6 {
		t.Fatalf("on-chip stall = %v", krs[0].Stalls[StallOnChip])
	}
}

func TestOverlapTakesMax(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	// Compute and DRAM both 1e6 cycles: the window is 1e6, not 2e6.
	k := KernelSpec{
		Name:      "both",
		FLOPs:     512e6,
		DRAMBytes: cfg.DRAMBytesPerCycle() * 1e6,
	}
	res := sim.Run([]KernelSpec{k})
	if res.Cycles > 1e6+cfg.KernelLaunchCycles+1 {
		t.Fatalf("no overlap: %v cycles", res.Cycles)
	}
}

func TestComputeScaleAndDRAMDerating(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	base := KernelSpec{Name: "k", FLOPs: 512e6}
	scaled := base
	scaled.ComputeScale = 2
	r1 := sim.Run([]KernelSpec{base})
	r2 := sim.Run([]KernelSpec{scaled})
	if r2.Cycles-cfg.KernelLaunchCycles < 1.99*(r1.Cycles-cfg.KernelLaunchCycles) {
		t.Fatalf("ComputeScale ignored: %v vs %v", r2.Cycles, r1.Cycles)
	}
	mem := KernelSpec{Name: "m", DRAMBytes: cfg.DRAMBytesPerCycle() * 1e6}
	derated := mem
	derated.EffectiveDRAMFrac = 0.5
	r3 := sim.Run([]KernelSpec{mem})
	r4 := sim.Run([]KernelSpec{derated})
	if r4.Cycles-cfg.KernelLaunchCycles < 1.99*(r3.Cycles-cfg.KernelLaunchCycles) {
		t.Fatalf("EffectiveDRAMFrac ignored: %v vs %v", r4.Cycles, r3.Cycles)
	}
}

func TestBarrierAndExtraCycles(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	k := KernelSpec{Name: "b", Barriers: 3, ExtraCycles: 500, HostCycles: 250}
	res := sim.Run([]KernelSpec{k})
	want := 3*cfg.BarrierCycles + 500 + 250 + cfg.KernelLaunchCycles
	if math.Abs(res.Cycles-want) > 0.5 {
		t.Fatalf("cycles = %v, want %v", res.Cycles, want)
	}
}

func TestGroupsAggregation(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	ks := []KernelSpec{
		{Name: "a", FLOPs: 512e6, DRAMBytes: 100},
		{Name: "a", FLOPs: 512e6, DRAMBytes: 100},
		{Name: "b", FLOPs: 512e3},
	}
	res := sim.Run(ks)
	ga := res.Group("a")
	if ga == nil || ga.Launches != 2 {
		t.Fatalf("group a: %+v", ga)
	}
	if ga.DRAMBytes != 200 {
		t.Fatalf("group a DRAM bytes = %v", ga.DRAMBytes)
	}
	if res.Group("missing") != nil {
		t.Fatal("nonexistent group returned")
	}
	groups := res.Groups()
	if len(groups) != 2 || groups[0].Name != "a" {
		t.Fatalf("groups order: %+v", groups)
	}
	if res.Launches != 3 {
		t.Fatalf("launches = %d", res.Launches)
	}
}

func TestCycleShareSumsToOne(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	res := sim.Run([]KernelSpec{
		{Name: "a", FLOPs: 512e6},
		{Name: "b", DRAMBytes: 1 << 20},
	})
	s := res.CycleShareOf("a") + res.CycleShareOf("b")
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("cycle shares sum to %v", s)
	}
}

func TestStallFractionsSumToOne(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	res := sim.Run([]KernelSpec{{Name: "m", DRAMBytes: 1 << 20, Barriers: 2}})
	var s float64
	for _, f := range res.StallFractions() {
		s += f
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("stall fractions sum to %v", s)
	}
}

func TestStallCauseStrings(t *testing.T) {
	for _, c := range StallCauses() {
		if c.String() == "unknown" {
			t.Fatalf("cause %d unnamed", c)
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	cfg := TegraX1()
	sim := NewSimulator(cfg)
	_, krs := sim.RunResults([]KernelSpec{
		{Name: "m", DRAMBytes: 10 << 20, SharedBytes: 1 << 20, FLOPs: 1e6},
	})
	k := krs[0]
	if k.DRAMUtil <= 0 || k.DRAMUtil > 1 {
		t.Fatalf("DRAM util %v", k.DRAMUtil)
	}
	if k.SharedUtil <= 0 || k.SharedUtil > 1 {
		t.Fatalf("shared util %v", k.SharedUtil)
	}
	if k.SharedUtil >= k.DRAMUtil {
		t.Fatal("DRAM-bound kernel should have DRAM util above shared util")
	}
}
