package gpu

import (
	"testing"
	"testing/quick"
)

func TestCacheColdMiss(t *testing.T) {
	c := NewCache(1024, 64, 4)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next line hit cold")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-ish small cache: 2 sets x 2 ways x 64B lines = 256B.
	c := NewCache(256, 64, 2)
	// Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(4 * 64) // evicts line 0 (LRU)
	if c.Access(0 * 64) {
		t.Fatal("evicted line still present")
	}
	// Line 2 was the LRU victim of the previous fill; line 4 must
	// still hit.
	if !c.Access(4 * 64) {
		t.Fatal("recently filled line evicted")
	}
}

func TestCacheLRUTouchesRecency(t *testing.T) {
	c := NewCache(256, 64, 2)
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(0 * 64) // touch 0: now 2 is LRU
	c.Access(4 * 64) // should evict 2
	if !c.Access(0 * 64) {
		t.Fatal("recently touched line evicted")
	}
	if c.Access(2 * 64) {
		t.Fatal("LRU line not evicted")
	}
}

func TestCacheWorkingSetLargerThanCapacityThrashes(t *testing.T) {
	// The §III-A mechanism: streaming a buffer larger than the cache
	// twice yields ~zero reuse with LRU.
	c := NewCache(64<<10, 64, 16)
	const buf = 256 << 10
	m1 := c.AccessRange(0, buf)
	m2 := c.AccessRange(0, buf)
	if m1 != buf/64 {
		t.Fatalf("first pass misses %d, want %d", m1, buf/64)
	}
	if m2 != buf/64 {
		t.Fatalf("second pass misses %d, want %d (LRU thrash)", m2, buf/64)
	}
}

func TestCacheWorkingSetFitsIsRetained(t *testing.T) {
	c := NewCache(256<<10, 64, 16)
	const buf = 64 << 10
	c.AccessRange(0, buf)
	if m := c.AccessRange(0, buf); m != 0 {
		t.Fatalf("resident buffer missed %d lines", m)
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache(1024, 64, 4)
	c.AccessRange(0, 640) // 10 lines
	if c.Accesses() != 10 || c.Misses() != 10 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	if c.MissBytes() != 640 {
		t.Fatalf("miss bytes %d", c.MissBytes())
	}
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("reset did not clear stats")
	}
	if c.Access(0) {
		t.Fatal("reset did not invalidate lines")
	}
}

func TestCacheAccessRangeEdges(t *testing.T) {
	c := NewCache(1024, 64, 4)
	if m := c.AccessRange(10, 0); m != 0 {
		t.Fatalf("empty range missed %d", m)
	}
	// A 1-byte range crossing nothing touches exactly one line.
	if m := c.AccessRange(100, 1); m != 1 {
		t.Fatalf("1-byte range missed %d lines", m)
	}
	// A 2-byte range straddling a line boundary touches two.
	if m := c.AccessRange(127, 2); m != 1 { // line 1 already resident
		t.Fatalf("straddling range missed %d", m)
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero size")
		}
	}()
	NewCache(0, 64, 4)
}

// Property: miss count never exceeds access count, and re-walking a
// just-walked range that fits in capacity yields zero misses.
func TestCacheInvariantsQuick(t *testing.T) {
	f := func(sizeKB, lines uint8) bool {
		size := int64(sizeKB%64+1) << 10
		c := NewCache(size, 64, 4)
		n := int64(lines)*64 + 64
		c.AccessRange(0, n)
		if c.Misses() > c.Accesses() {
			return false
		}
		if n <= size {
			before := c.Misses()
			c.AccessRange(0, n)
			return c.Misses() == before
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
