package gpu

import "testing"

// FuzzCacheAccess drives the L2 simulator with arbitrary address streams:
// it must never panic and its statistics must stay consistent.
func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 128}, int64(1024))
	f.Add([]byte{7}, int64(64))
	f.Fuzz(func(t *testing.T, stream []byte, sizeHint int64) {
		size := sizeHint%(1<<20) + 1024
		if size < 1024 {
			size = 1024
		}
		size -= size % (64 * 4)
		if size == 0 {
			size = 64 * 4
		}
		c := NewCache(size, 64, 4)
		var addr int64
		for _, b := range stream {
			addr = addr*131 + int64(b)
			if addr < 0 {
				addr = -addr
			}
			c.Access(addr)
		}
		if c.Misses() > c.Accesses() {
			t.Fatalf("misses %d > accesses %d", c.Misses(), c.Accesses())
		}
		if c.Accesses() != int64(len(stream)) {
			t.Fatalf("accesses %d, want %d", c.Accesses(), len(stream))
		}
	})
}
