package crm

import "testing"

func TestReorganizeZeroThreads(t *testing.T) {
	m := Default()
	if c := m.Reorganize(0, 0); c != 0 {
		t.Fatalf("cost for empty kernel: %v", c)
	}
}

func TestReorganizeCostGrowsWithWarps(t *testing.T) {
	m := Default()
	small := m.Reorganize(64, 0)
	large := m.Reorganize(2048, 0)
	if large <= small {
		t.Fatalf("pipeline cost not monotone: %v vs %v", small, large)
	}
	// 2048 threads = 64 warps + 2 pipeline stages - 1 = 65 cycles.
	if large != 65 {
		t.Fatalf("2048-thread pipeline = %v cycles, want 65", large)
	}
}

func TestReorganizeTRBFill(t *testing.T) {
	m := Default()
	// 128 trivial rows x 4 B over a 16 B/cycle port = 32 fill cycles,
	// plus the pipeline for 2048 threads (65 cycles).
	if c := m.Reorganize(2048, 128); c != 32+65 {
		t.Fatalf("cost = %v, want 97", c)
	}
}

func TestReorganizeClampsTrivial(t *testing.T) {
	m := Default()
	if a, b := m.Reorganize(64, -5), m.Reorganize(64, 0); a != b {
		t.Fatal("negative trivial count not clamped")
	}
	if a, b := m.Reorganize(64, 100), m.Reorganize(64, 64); a != b {
		t.Fatal("excess trivial count not clamped")
	}
}

func TestCompactedThreadsWarpRounding(t *testing.T) {
	m := Default()
	cases := []struct {
		total, trivial, want int
	}{
		{256, 0, 256},
		{256, 128, 128},
		{256, 100, 160}, // 156 live -> 5 warps
		{256, 256, 0},
		{256, 300, 0}, // clamped
		{33, 0, 64},   // rounds up to whole warps
	}
	for _, c := range cases {
		if got := m.CompactedThreads(c.total, c.trivial); got != c.want {
			t.Errorf("CompactedThreads(%d, %d) = %d, want %d", c.total, c.trivial, got, c.want)
		}
	}
}

func TestCompactionRemovesDivergence(t *testing.T) {
	// The CRM's purpose: surviving threads occupy ceil(live/32) warps,
	// never more — i.e. no warp with a disabled lane remains scheduled.
	m := Default()
	for trivial := 0; trivial <= 512; trivial += 31 {
		live := 512 - trivial
		got := m.CompactedThreads(512, trivial)
		warps := (live + 31) / 32
		if got != warps*32 {
			t.Fatalf("trivial=%d: %d slots, want %d", trivial, got, warps*32)
		}
	}
}

func TestPowerOverheadWithinPaperBound(t *testing.T) {
	// §VI-F: the CRM costs <1% power.
	if PowerOverheadFrac >= 0.01 {
		t.Fatalf("CRM power overhead %v, paper bound <1%%", PowerOverheadFrac)
	}
}
