// Package crm models the CTA Reorganization Module the paper adds to the
// GPU's Grid Management Unit (Fig. 12) to support hardware Dynamic Row
// Skip. Given the trivial-row list R of a kernel launch, the CRM loads the
// row IDs into the Trivial Rows Buffer (TRB), decodes the disabled
// software-thread IDs (DTIDs), and runs a two-stage prefix-sum pipeline at
// warp granularity that maps each surviving software thread ID to a
// compacted hardware thread ID, so skipped rows consume no hardware thread
// slots and no divergent lanes.
//
// The paper evaluates the CRM with gate-level simulation and reports
// ~1.47% performance and <1% power overhead (§VI-F); this model computes
// the pipeline occupancy cycles from first principles (warp counts) and
// exposes the same overhead accounting.
package crm

// Module describes one CRM instance.
type Module struct {
	// WarpSize is the compaction granularity: the prefix-sum / shift
	// network processes one warp's 32 STIDs per stage per cycle.
	WarpSize int
	// TRBEntryBytes is the size of one trivial-row ID in the TRB.
	TRBEntryBytes int
	// TRBFillBytesPerCycle is the bandwidth of the LD module filling the
	// TRB from the kernel argument buffer.
	TRBFillBytesPerCycle int
	// PipelineStages is the depth of the STID→HTID pipeline (two dashed
	// boxes in Fig. 12: filter+prefix-sum, then sort+shift).
	PipelineStages int
}

// Default returns the module as sized in the paper's design: warp-width
// datapath, 4-byte row IDs, a 16 B/cycle TRB fill port, and the two-stage
// pipeline of Fig. 12.
func Default() Module {
	return Module{
		WarpSize:             32,
		TRBEntryBytes:        4,
		TRBFillBytesPerCycle: 16,
		PipelineStages:       2,
	}
}

// Reorganize returns the cycle cost of re-organizing the CTAs of one
// kernel launch with the given total software threads and trivial
// (disabled) thread count.
//
// Cost = TRB fill (trivialThreads IDs over the fill port) plus pipeline
// occupancy: one warp-group of STIDs enters per cycle and drains after
// PipelineStages cycles. The reorganization overlaps with the tail of the
// previous kernel in the hardware work queue, so the simulator charges it
// as a serial ExtraCycles term only on the launch it gates — which is
// exactly how the paper accounts for it.
func (m Module) Reorganize(totalThreads, trivialThreads int) float64 {
	if totalThreads <= 0 {
		return 0
	}
	if trivialThreads < 0 {
		trivialThreads = 0
	}
	if trivialThreads > totalThreads {
		trivialThreads = totalThreads
	}
	fill := float64(trivialThreads*m.TRBEntryBytes) / float64(m.TRBFillBytesPerCycle)
	warps := (totalThreads + m.WarpSize - 1) / m.WarpSize
	pipeline := float64(warps + m.PipelineStages - 1)
	return fill + pipeline
}

// CompactedThreads returns the number of hardware thread slots the
// reorganized kernel occupies, rounded up to whole warps: the surviving
// software threads are packed densely, which is the mechanism that removes
// the branch divergence of software DRS.
func (m Module) CompactedThreads(totalThreads, trivialThreads int) int {
	if trivialThreads < 0 {
		trivialThreads = 0
	}
	if trivialThreads > totalThreads {
		trivialThreads = totalThreads
	}
	live := totalThreads - trivialThreads
	warps := (live + m.WarpSize - 1) / m.WarpSize
	return warps * m.WarpSize
}

// PowerOverheadFrac is the module's share of GPU power from the paper's
// gate-level simulation ("<1%", §VI-F); the energy model adds it whenever
// hardware DRS is active.
const PowerOverheadFrac = 0.008
