// Package cyclesim is a cycle-level GPU kernel simulator used to validate
// the fast analytic timing model in package gpu. The paper's evaluation
// could not use an architectural simulator because GPGPU-Sim does not run
// the cuDNN-era libraries (§VI-A); this reproduction instead validates
// its analytic rooflines against an in-package warp-level model:
//
//   - each SM hosts resident warps and issues up to IssuePerCycle
//     instructions per cycle round-robin among ready warps;
//   - a warp's program interleaves compute instructions, warp-wide
//     shared-memory accesses (contending for the SM's shared port), and
//     DRAM line batches (contending for global bandwidth and paying
//     latency, during which the warp is descheduled);
//   - DRAM serves a fixed number of lines per cycle with a fixed
//     round-trip latency.
//
// Single kernels simulate in milliseconds, so the cross-validation suite
// (analytic vs cycle-level on the paper's kernel shapes) runs in tests;
// whole-network simulation stays on the analytic path.
package cyclesim

import (
	"fmt"

	"mobilstm/internal/tensor"
)

// Params is the machine description.
type Params struct {
	// SMs is the number of streaming multiprocessors.
	SMs int
	// WarpSlotsPerSM bounds resident warps per SM (occupancy).
	WarpSlotsPerSM int
	// IssuePerCycle is the per-SM issue width in warp-instructions.
	IssuePerCycle int
	// SharedAccessPerCycle is the per-SM shared-memory port width in
	// warp-wide accesses per cycle (one access = 32 lanes x 4 B).
	SharedAccessPerCycle int
	// DRAMLinesPerCycle is the global off-chip bandwidth in 64 B lines
	// per core cycle (fractional).
	DRAMLinesPerCycle float64
	// DRAMLatency is the round-trip latency of a line batch in cycles.
	DRAMLatency int
	// LaunchCycles is the fixed kernel launch cost.
	LaunchCycles int
}

// Workload describes one kernel at warp granularity.
type Workload struct {
	// Warps is the total warp count of the grid.
	Warps int
	// ComputePerWarp is the number of compute instructions each warp
	// retires.
	ComputePerWarp int
	// SharedPerWarp is the number of warp-wide shared accesses.
	SharedPerWarp int
	// DRAMLinesPerWarp is the number of 64 B lines each warp loads.
	DRAMLinesPerWarp int
	// MemBatch is the number of lines requested per memory instruction
	// (memory-level parallelism): the warp blocks once per batch.
	MemBatch int
}

// Result is the simulated outcome.
type Result struct {
	Cycles int
	// IssueBusy, SharedBusy and DRAMBusy count cycles where the
	// respective resource was saturated (aggregated over SMs for the
	// per-SM resources).
	IssueBusy  int
	SharedBusy int
	DRAMBusy   int
}

type opKind uint8

const (
	opCompute opKind = iota
	opShared
	opMem
	opDone
)

// warp is one resident warp's state machine. Its program interleaves the
// three op kinds proportionally via error diffusion, which mirrors how
// real gemv/gemm inner loops mix FMAs, shared loads and global loads.
type warp struct {
	compute, shared, mem int // remaining ops (mem in batches)
	accC, accS, accM     float64
	rateC, rateS, rateM  float64
	blockedUntil         int
}

func newWarp(w Workload) *warp {
	memBatches := 0
	if w.MemBatch > 0 {
		memBatches = (w.DRAMLinesPerWarp + w.MemBatch - 1) / w.MemBatch
	}
	total := w.ComputePerWarp + w.SharedPerWarp + memBatches
	wp := &warp{compute: w.ComputePerWarp, shared: w.SharedPerWarp, mem: memBatches}
	if total > 0 {
		wp.rateC = float64(w.ComputePerWarp) / float64(total)
		wp.rateS = float64(w.SharedPerWarp) / float64(total)
		wp.rateM = float64(memBatches) / float64(total)
	}
	return wp
}

// next picks the op kind whose error-diffusion accumulator is furthest
// behind its target rate, among kinds with remaining work.
func (w *warp) next() opKind {
	bestKind := opDone
	bestScore := -1e18
	if w.compute > 0 {
		if s := w.rateC - w.accC; s > bestScore {
			bestScore, bestKind = s, opCompute
		}
	}
	if w.shared > 0 {
		if s := w.rateS - w.accS; s > bestScore {
			bestScore, bestKind = s, opShared
		}
	}
	if w.mem > 0 {
		if s := w.rateM - w.accM; s > bestScore {
			bestScore, bestKind = s, opMem
		}
	}
	return bestKind
}

func (w *warp) retire(k opKind) {
	w.accC += w.rateC
	w.accS += w.rateS
	w.accM += w.rateM
	switch k {
	case opCompute:
		w.compute--
		w.accC--
	case opShared:
		w.shared--
		w.accS--
	case opMem:
		w.mem--
		w.accM--
	}
}

func (w *warp) done() bool { return w.compute == 0 && w.shared == 0 && w.mem == 0 }

// Simulate runs the workload to completion and returns the cycle count.
func Simulate(p Params, wl Workload) Result {
	if err := validate(p, wl); err != nil {
		tensor.Panicf("cyclesim: invalid workload: %v", err)
	}
	// Distribute warps across SMs; waves beyond the occupancy limit
	// start when a slot frees (modelled by giving each SM a queue).
	queues := make([][]*warp, p.SMs)
	for i := 0; i < wl.Warps; i++ {
		sm := i % p.SMs
		queues[sm] = append(queues[sm], newWarp(wl))
	}
	resident := make([][]*warp, p.SMs)
	for sm := range resident {
		n := p.WarpSlotsPerSM
		if n > len(queues[sm]) {
			n = len(queues[sm])
		}
		resident[sm] = append(resident[sm], queues[sm][:n]...)
		queues[sm] = queues[sm][n:]
	}

	var res Result
	// DRAM bandwidth accounting: a fractional line budget accrues per
	// cycle; requests drain it FIFO. completion = max(now, queueFree) +
	// latency.
	var dramFree float64 // cycle at which the DRAM pipe frees up
	remaining := wl.Warps

	cycle := 0
	for remaining > 0 {
		cycle++
		dramSaturated := false
		for sm := 0; sm < p.SMs; sm++ {
			issued := 0
			sharedUsed := 0
			ws := resident[sm]
			for i := 0; i < len(ws) && issued < p.IssuePerCycle; i++ {
				w := ws[i]
				if w.blockedUntil > cycle {
					continue
				}
				k := w.next()
				switch k {
				case opDone:
					continue
				case opShared:
					if sharedUsed >= p.SharedAccessPerCycle {
						continue // port busy this cycle
					}
					sharedUsed++
				case opMem:
					// Reserve bandwidth for the batch.
					batch := float64(wl.MemBatch)
					start := dramFree
					if c := float64(cycle); c > start {
						start = c
					}
					dramFree = start + batch/p.DRAMLinesPerCycle
					w.blockedUntil = int(dramFree) + p.DRAMLatency
					if dramFree > float64(cycle+1) {
						dramSaturated = true
					}
				}
				w.retire(k)
				issued++
				if w.done() {
					// Free the slot for the next queued warp.
					if len(queues[sm]) > 0 {
						ws[i] = queues[sm][0]
						queues[sm] = queues[sm][1:]
					} else {
						ws[i] = ws[len(ws)-1]
						ws = ws[:len(ws)-1]
						resident[sm] = ws
						i--
					}
					remaining--
				}
			}
			if issued >= p.IssuePerCycle {
				res.IssueBusy++
			}
			if sharedUsed >= p.SharedAccessPerCycle {
				res.SharedBusy++
			}
		}
		if dramSaturated {
			res.DRAMBusy++
		}
		// Fast-forward when every resident warp is blocked on memory.
		if next := earliestWakeup(resident, cycle); next > cycle+1 {
			cycle = next - 1
		}
	}
	res.Cycles = cycle + p.LaunchCycles
	return res
}

// earliestWakeup returns the soonest cycle at which any warp can make
// progress, or cycle+1 if someone is ready now.
func earliestWakeup(resident [][]*warp, cycle int) int {
	earliest := int(^uint(0) >> 1) // max int, portable to 32-bit targets
	anyReady := false
	anyWarp := false
	for _, ws := range resident {
		for _, w := range ws {
			if w.done() {
				continue
			}
			anyWarp = true
			if w.blockedUntil <= cycle {
				anyReady = true
			} else if w.blockedUntil < earliest {
				earliest = w.blockedUntil
			}
		}
	}
	if anyReady || !anyWarp {
		return cycle + 1
	}
	return earliest
}

func validate(p Params, wl Workload) error {
	if p.SMs < 1 || p.WarpSlotsPerSM < 1 || p.IssuePerCycle < 1 ||
		p.SharedAccessPerCycle < 1 || p.DRAMLinesPerCycle <= 0 || p.DRAMLatency < 0 {
		return fmt.Errorf("cyclesim: invalid params %+v", p)
	}
	if wl.Warps < 1 || wl.ComputePerWarp < 0 || wl.SharedPerWarp < 0 ||
		wl.DRAMLinesPerWarp < 0 || (wl.DRAMLinesPerWarp > 0 && wl.MemBatch < 1) {
		return fmt.Errorf("cyclesim: invalid workload %+v", wl)
	}
	return nil
}
