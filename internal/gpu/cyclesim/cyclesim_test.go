package cyclesim

import (
	"math"
	"testing"

	"mobilstm/internal/gpu"
	"mobilstm/internal/kernels"
)

func params() Params { return FromConfig(gpu.TegraX1()) }

func TestPureComputeBound(t *testing.T) {
	p := params()
	// 8 warps/SM of pure compute: cycles ~ warps*ops / (SMs*issue).
	wl := Workload{Warps: p.SMs * p.IssuePerCycle * 4, ComputePerWarp: 1000}
	r := Simulate(p, wl)
	ideal := wl.Warps * wl.ComputePerWarp / (p.SMs * p.IssuePerCycle)
	got := r.Cycles - p.LaunchCycles
	if got < ideal || got > ideal*12/10 {
		t.Fatalf("compute-bound cycles %d, ideal %d", got, ideal)
	}
	if r.IssueBusy == 0 {
		t.Fatal("issue never saturated on pure compute")
	}
}

func TestPureMemoryBound(t *testing.T) {
	p := params()
	wl := Workload{Warps: 64, DRAMLinesPerWarp: 4000, MemBatch: 8}
	r := Simulate(p, wl)
	ideal := float64(wl.Warps*wl.DRAMLinesPerWarp) / p.DRAMLinesPerCycle
	got := float64(r.Cycles - p.LaunchCycles)
	if got < ideal*0.97 || got > ideal*1.3 {
		t.Fatalf("memory-bound cycles %v, ideal %v", got, ideal)
	}
	if r.DRAMBusy == 0 {
		t.Fatal("DRAM never saturated on pure streaming")
	}
}

func TestSharedPortBound(t *testing.T) {
	p := params()
	wl := Workload{Warps: 128, SharedPerWarp: 2000}
	r := Simulate(p, wl)
	ideal := float64(wl.Warps*wl.SharedPerWarp) / float64(p.SMs*p.SharedAccessPerCycle)
	got := float64(r.Cycles - p.LaunchCycles)
	if got < ideal*0.9 || got > ideal*1.4 {
		t.Fatalf("shared-bound cycles %v, ideal %v", got, ideal)
	}
}

func TestLatencyHidingWithManyWarps(t *testing.T) {
	// With many resident warps the DRAM latency must be hidden: time
	// approaches the bandwidth bound, not warps * latency.
	p := params()
	few := Simulate(p, Workload{Warps: 2, DRAMLinesPerWarp: 400, MemBatch: 8})
	many := Simulate(p, Workload{Warps: 64, DRAMLinesPerWarp: 400, MemBatch: 8})
	// Same per-warp work: many warps pay bandwidth, few warps pay
	// latency serialization. Per-line cost must be far lower with many.
	fewPerLine := float64(few.Cycles-p.LaunchCycles) / (2 * 400)
	manyPerLine := float64(many.Cycles-p.LaunchCycles) / (64 * 400)
	if manyPerLine > fewPerLine/2 {
		t.Fatalf("no latency hiding: %.3f vs %.3f cycles/line", manyPerLine, fewPerLine)
	}
}

func TestMoreWavesTakeLonger(t *testing.T) {
	p := params()
	one := Simulate(p, Workload{Warps: p.SMs * p.WarpSlotsPerSM, ComputePerWarp: 200})
	two := Simulate(p, Workload{Warps: 2 * p.SMs * p.WarpSlotsPerSM, ComputePerWarp: 200})
	if two.Cycles < one.Cycles*3/2 {
		t.Fatalf("second wave too cheap: %d vs %d", two.Cycles, one.Cycles)
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid workload")
		}
	}()
	Simulate(params(), Workload{Warps: 0})
}

func TestMemWithoutBatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mem lines without batch size")
		}
	}()
	Simulate(params(), Workload{Warps: 1, DRAMLinesPerWarp: 10})
}

func TestDeterminism(t *testing.T) {
	p := params()
	wl := Workload{Warps: 40, ComputePerWarp: 300, SharedPerWarp: 200, DRAMLinesPerWarp: 150, MemBatch: 8}
	a := Simulate(p, wl)
	b := Simulate(p, wl)
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// Cross-validation: the analytic roofline model and the cycle-level model
// must agree on the paper's key kernels within a modelling band. This is
// the reproduction's substitute for validating against the real board.
func TestCrossValidateAnalyticModel(t *testing.T) {
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	kb := kernels.NewBuilder(cfg)

	cases := []struct {
		name string
		spec gpu.KernelSpec
		tol  float64
	}{
		{"sgemv_u_650", kb.SgemvU(650), 0.30},
		{"sgemv_u_256", kb.SgemvU(256), 0.30},
		{"sgemv_uo_650", kb.SgemvUo(650), 0.30},
		{"ufic_skip_650", kb.SgemvUfic(650, 3*650/2, kernels.DRSHardware), 0.35},
	}
	for _, c := range cases {
		analytic := sim.Run([]gpu.KernelSpec{c.spec}).Cycles
		cycle := float64(SimulateSpec(cfg, c.spec).Cycles)
		rel := math.Abs(cycle-analytic) / analytic
		if rel > c.tol {
			t.Errorf("%s: cycle-level %.0f vs analytic %.0f (%.0f%% apart)",
				c.name, cycle, analytic, rel*100)
		}
	}
}

// The tissue-size sweep must show the same qualitative crossover in both
// models: per-cell time falls with tissue size until the shared port
// saturates.
func TestCrossValidateTissueTrend(t *testing.T) {
	cfg := gpu.TegraX1()
	kb := kernels.NewBuilder(cfg)
	perCell := func(tt int) float64 {
		spec, _ := kb.SgemmTissue(512, tt)
		r := SimulateSpec(cfg, spec)
		return float64(r.Cycles) / float64(tt)
	}
	c1, c4 := perCell(1), perCell(4)
	if c4 >= c1 {
		t.Fatalf("cycle-level model shows no tissue benefit: %.0f vs %.0f per cell", c4, c1)
	}
	// Deep into saturation the benefit must flatten out or reverse.
	c4v, c10 := perCell(4), perCell(10)
	if c10 < c4v*0.7 {
		t.Fatalf("cycle-level model shows no shared-port saturation: T=10 %.0f vs T=4 %.0f", c10, c4v)
	}
}
